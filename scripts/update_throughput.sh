#!/usr/bin/env sh
# Append one fast-suite throughput sample to the committed trend
# file bench/BENCH_throughput.json and compare it with the previous
# entry. Each sample times the suite in both stepping modes
# (best-of-N wall clock per mode, minimum = least noise):
#   - cycle skipping on (the default), the headline number
#   - --no-skip, the per-cycle reference the equivalence gate runs
# so the trend records the event-driven speedup alongside raw
# throughput, commit by commit. Each sample also times the result
# cache (docs/SERVE.md): one cold --cache run into a fresh
# directory, then best-of-N warm re-runs (100% hits), so the trend
# records what memoization is worth on this suite.
#
# Usage: scripts/update_throughput.sh [--compare] [--allow-dirty]
#            [--max-regress PCT] [build-dir] [runs]
#   --compare  measure and report the delta against the last
#              committed trend entry without appending (the CI
#              mode: the working tree stays clean, the job log
#              carries the numbers)
#   --allow-dirty
#              permit appending from a dirty working tree. By
#              default appending refuses when the tree is dirty:
#              a trend entry tagged "<commit>+dirty" is not
#              reproducible from any commit, which defeats the
#              point of a committed trend. Measure-only
#              (--compare) runs never need this.
#   --max-regress PCT
#              with --compare: exit non-zero when the skip-mode
#              wall clock is more than PCT percent slower than
#              the last committed entry (the CI perf-smoke gate).
#              Wall clock is machine-dependent, so keep the
#              threshold generous; the committed entry should be
#              refreshed whenever the hot path changes speed on
#              purpose.
#   build-dir  defaults to ./build (must contain siwi-run)
#   runs       defaults to 5
#
# Extra siwi-run flags (e.g. chip overrides like
# "--set l2.slices=8 --set dram.channels=4") can be passed through
# the SIWI_RUN_FLAGS environment variable; they apply to both
# stepping modes so the speedup column stays apples-to-apples.

set -eu

compare_only=0
allow_dirty=0
max_regress=""
while [ "$#" -gt 0 ]; do
    case "$1" in
      --compare) compare_only=1; shift ;;
      --allow-dirty) allow_dirty=1; shift ;;
      --max-regress) max_regress="$2"; shift 2 ;;
      *) break ;;
    esac
done

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
runs="${2:-5}"
trend="$repo/bench/BENCH_throughput.json"

if [ ! -x "$build/siwi-run" ]; then
    echo "update_throughput: $build/siwi-run not found;" \
         "build first (cmake --build $build --target siwi-run)" >&2
    exit 1
fi

commit="$(git -C "$repo" rev-parse --short HEAD 2>/dev/null \
    || echo unknown)"
if ! git -C "$repo" diff --quiet 2>/dev/null; then
    commit="$commit+dirty"
    if [ "$compare_only" = 0 ] && [ "$allow_dirty" = 0 ]; then
        echo "update_throughput: working tree is dirty; a trend" \
             "entry must be reproducible from its commit." >&2
        echo "Commit first, or pass --allow-dirty to record" \
             "'$commit' anyway (or --compare to measure without" \
             "appending)." >&2
        exit 1
    fi
fi

measure() {
    # $1: extra siwi-run flags ('' or --no-skip). Prints best secs.
    best=""
    i=1
    while [ "$i" -le "$runs" ]; do
        # shellcheck disable=SC2086  # flags intentionally split
        "$build/siwi-run" --suite fast --quiet $1 \
            ${SIWI_RUN_FLAGS:-} \
            --throughput-json "$repo/.throughput.tmp.json" \
            >/dev/null
        secs="$(sed -n 's/.*"seconds": \([0-9.]*\).*/\1/p' \
            "$repo/.throughput.tmp.json")"
        if [ -z "$best" ] || awk "BEGIN{exit !($secs < $best)}"; then
            best="$secs"
        fi
        i=$((i + 1))
    done
    rm -f "$repo/.throughput.tmp.json"
    echo "$best"
}

echo "update_throughput: $runs run(s) per mode..."
skip_secs="$(measure '')"
echo "  skip:    best ${skip_secs}s"
noskip_secs="$(measure --no-skip)"
echo "  no-skip: best ${noskip_secs}s"

# Cold-vs-warm cache wall clock: the cold run populates a fresh
# cache (one run; it computes everything, so it prices a first
# sweep), the warm runs are all hits (best-of-N, they price a
# re-run / resume).
cache_dir="$repo/.throughput.cache.tmp"
rm -rf "$cache_dir"
cold_secs="$(runs=1; measure "--cache $cache_dir")"
echo "  cache cold: ${cold_secs}s"
warm_secs="$(measure "--cache $cache_dir")"
echo "  cache warm: best ${warm_secs}s"
rm -rf "$cache_dir"

SIWI_TREND="$trend" SIWI_COMMIT="$commit" \
SIWI_SKIP="$skip_secs" SIWI_NOSKIP="$noskip_secs" \
SIWI_CACHE_COLD="$cold_secs" SIWI_CACHE_WARM="$warm_secs" \
SIWI_COMPARE_ONLY="$compare_only" \
SIWI_MAX_REGRESS="$max_regress" \
python3 - <<'EOF'
import datetime
import json
import os
import sys

trend_path = os.environ["SIWI_TREND"]
skip_s = float(os.environ["SIWI_SKIP"])
noskip_s = float(os.environ["SIWI_NOSKIP"])
cold_s = float(os.environ["SIWI_CACHE_COLD"])
warm_s = float(os.environ["SIWI_CACHE_WARM"])
compare_only = os.environ["SIWI_COMPARE_ONLY"] == "1"
max_regress = os.environ.get("SIWI_MAX_REGRESS") or None

try:
    with open(trend_path) as f:
        trend = json.load(f)
except FileNotFoundError:
    trend = {"schema": 1, "suite": "fast", "entries": []}

prev = trend["entries"][-1] if trend["entries"] else None
entry = {
    "date": datetime.date.today().isoformat(),
    "commit": os.environ["SIWI_COMMIT"],
    "skip_seconds": round(skip_s, 4),
    "noskip_seconds": round(noskip_s, 4),
    "skip_speedup": round(noskip_s / skip_s, 3) if skip_s else None,
    "cache_cold_seconds": round(cold_s, 4),
    "cache_warm_seconds": round(warm_s, 4),
    "cache_warm_speedup": round(cold_s / warm_s, 1) if warm_s else None,
}
summary = (f"skip={entry['skip_seconds']}s "
           f"no-skip={entry['noskip_seconds']}s "
           f"speedup={entry['skip_speedup']}x "
           f"cache cold={entry['cache_cold_seconds']}s "
           f"warm={entry['cache_warm_seconds']}s "
           f"({entry['cache_warm_speedup']}x)")
if compare_only:
    print(f"measured: {entry['commit']} {summary} (not appended)")
else:
    trend["entries"].append(entry)
    with open(trend_path, "w") as f:
        json.dump(trend, f, indent=2)
        f.write("\n")
    print(f"appended: {entry['commit']} {summary}")
if prev:
    delta = (skip_s - prev["skip_seconds"]) / prev["skip_seconds"]
    print(f"vs last committed ({prev['commit']}, "
          f"{prev['skip_seconds']}s): "
          f"{delta:+.1%} wall clock", end="")
    print(" (slower)" if delta > 0.10 else
          " (faster)" if delta < -0.10 else " (within noise)")
    if max_regress is not None and delta * 100 > float(max_regress):
        print(f"FAIL: skip-mode wall clock regressed more than "
              f"{max_regress}% vs the committed trend entry")
        sys.exit(1)
elif max_regress is not None:
    print("no committed trend entry to gate against")
EOF
