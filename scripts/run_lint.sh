#!/usr/bin/env bash
# Shared lint entry point for CI and local use.
#
#   scripts/run_lint.sh [lint|format|tidy|tsan|all]
#
#   lint    build and run siwi-lint over the tree (needs only cmake
#           + a C++20 compiler; always available)
#   format  clang-format --dry-run --Werror over the normalized file
#           list (same list as CI)
#   tidy    full rebuild with SIWI_TIDY=ON: clang-tidy runs alongside
#           compilation with warnings-as-errors
#   tsan    build with -fsanitize=thread and run the multithreaded
#           runner + integration suites
#   all     everything above, in that order
#
# Tools that are not installed locally are skipped with a notice and
# exit 0 so the script stays usable on minimal machines; CI sets
# SIWI_LINT_STRICT=1, which turns a missing tool into a hard error
# instead — the gates never silently pass there.
set -euo pipefail
cd "$(dirname "$0")/.."

STRICT="${SIWI_LINT_STRICT:-0}"
JOBS="${SIWI_LINT_JOBS:-$(nproc)}"

missing_tool() {
    if [ "$STRICT" = "1" ]; then
        echo "run_lint.sh: $1 not found and SIWI_LINT_STRICT=1" >&2
        exit 2
    fi
    echo "run_lint.sh: $1 not found; skipping $2 (install it or run in CI)" >&2
}

# Pinned first: clang-format/clang-tidy output drifts across major
# versions, so CI installs the -18 packages; fall back to the bare
# name for local runs.
find_tool() {
    local name
    for name in "$1-18" "$1-19" "$1-20" "$1"; do
        if command -v "$name" >/dev/null 2>&1; then
            echo "$name"
            return 0
        fi
    done
    return 1
}

# The clang-format gate covers the normalized subsystems (see the
# comment in .github/workflows/ci.yml); keep this list in sync with
# docs/LINTING.md.
format_files() {
    # tools/siwi_lint/fixtures holds deliberately malformed sources
    # (seeded lint violations); they are test data, not code.
    find src/runner tools tests/runner tests/lint \
        src/common/json.hh src/common/json.cc \
        src/core/stats_io.hh src/core/stats_io.cc \
        -path '*/fixtures/*' -prune -o \
        \( -name '*.cc' -o -name '*.hh' -o -name '*.cpp' \) -print0
}

run_lint() {
    echo "== siwi-lint"
    cmake -B build-lint -S . -DCMAKE_BUILD_TYPE=Release \
        -DSIWI_BUILD_TESTS=OFF -DSIWI_BUILD_EXAMPLES=OFF \
        -DSIWI_BUILD_BENCH=OFF >/dev/null
    cmake --build build-lint --target siwi-lint -j "$JOBS"
    ./build-lint/siwi-lint --root .
}

run_format() {
    echo "== clang-format"
    local cf
    if ! cf="$(find_tool clang-format)"; then
        missing_tool clang-format "the format gate"
        return 0
    fi
    "$cf" --version
    format_files | xargs -0 "$cf" --dry-run --Werror
}

run_tidy() {
    echo "== clang-tidy (SIWI_TIDY=ON rebuild)"
    if ! find_tool clang-tidy >/dev/null; then
        missing_tool clang-tidy "the tidy gate"
        return 0
    fi
    cmake -B build-tidy -S . -DCMAKE_BUILD_TYPE=Debug \
        -DSIWI_TIDY=ON -DSIWI_BUILD_BENCH=OFF >/dev/null
    cmake --build build-tidy -j "$JOBS"
}

run_tsan() {
    echo "== ThreadSanitizer (runner + integration suites)"
    cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DSIWI_SANITIZE=thread >/dev/null
    cmake --build build-tsan -j "$JOBS"
    ctest --test-dir build-tsan -R 'runner|integration|serve' \
        --output-on-failure -j "$JOBS"
}

case "${1:-all}" in
    lint)   run_lint ;;
    format) run_format ;;
    tidy)   run_tidy ;;
    tsan)   run_tsan ;;
    all)    run_lint; run_format; run_tidy; run_tsan ;;
    *)
        echo "usage: scripts/run_lint.sh [lint|format|tidy|tsan|all]" >&2
        exit 2
        ;;
esac
