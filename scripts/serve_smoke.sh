#!/usr/bin/env bash
# End-to-end smoke for the serve layer (docs/SERVE.md), used by the
# CI serve-smoke job and runnable locally:
#
#   scripts/serve_smoke.sh [build-dir]
#
# Three legs, all over bench/specs/fast.json:
#
#   offline   siwi-run --cache: the second run must be 100% cache
#             hits and byte-identical to the first.
#   warm-hit  siwi-serve + siwi-run --submit twice: the second
#             submit must be all hits, byte-identical to the cold
#             one, and both must match bench/baseline.json at
#             tolerance 0.
#   resume    kill -9 the server mid-sweep, restart it on the same
#             cache, re-submit: every cell that finished before the
#             kill must come back as a hit, not be recomputed.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
RUN="$BUILD/siwi-run"
SERVE="$BUILD/siwi-serve"
SPEC=bench/specs/fast.json
BASELINE=bench/baseline.json

for bin in "$RUN" "$SERVE"; do
    if [ ! -x "$bin" ]; then
        echo "serve_smoke.sh: $bin not built" >&2
        exit 2
    fi
done

work=$(mktemp -d)
server_pid=""
cleanup() {
    if [ -n "$server_pid" ]; then
        kill "$server_pid" 2>/dev/null || true
        wait "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$work"
}
trap cleanup EXIT

fail() {
    echo "serve_smoke.sh: FAIL: $*" >&2
    exit 1
}

# start_server <cache-dir> <jobs>: sets server_pid and PORT.
start_server() {
    : > "$work/port.txt"
    "$SERVE" --cache "$1" -j "$2" --print-port \
        > "$work/port.txt" 2>> "$work/server.log" &
    server_pid=$!
    for _ in $(seq 1 100); do
        [ -s "$work/port.txt" ] && break
        kill -0 "$server_pid" 2>/dev/null \
            || fail "server died on startup (see server.log)"
        sleep 0.1
    done
    PORT=$(cat "$work/port.txt")
    [ -n "$PORT" ] || fail "server did not report a port"
}

stop_server() {
    kill "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
    server_pid=""
}

# submit <json-out> <stderr-out>: submit $SPEC to the running server.
submit() {
    "$RUN" --spec "$SPEC" --submit "127.0.0.1:$PORT" \
        --json "$1" --quiet 2> "$2"
}

# stat_from <file> <unit>: the count before "<unit>" in the
# summary line ("109 from cache", "0 computed", "109 hit(s)").
stat_from() {
    grep -oE "[0-9]+ $2" "$1" | head -n1 | cut -d' ' -f1
}

# ---------------------------------------------------------------
echo "== leg 1: offline --cache (cold, then 100% warm hits)"
"$RUN" --spec "$SPEC" --cache "$work/cache-off" \
    --json "$work/off1.json" --quiet 2> "$work/off1.log"
"$RUN" --spec "$SPEC" --cache "$work/cache-off" \
    --json "$work/off2.json" --quiet 2> "$work/off2.log"

hits=$(stat_from "$work/off2.log" 'hit')
computed=$(stat_from "$work/off2.log" 'computed')
[ "$computed" = "0" ] || fail "offline warm run computed $computed cell(s)"
[ "$hits" -ge 1 ] || fail "offline warm run had no cache hits"
cmp "$work/off1.json" "$work/off2.json" \
    || fail "offline warm run is not byte-identical to the cold run"
echo "   ok: $hits hits, 0 computed, byte-identical"

# ---------------------------------------------------------------
echo "== leg 2: server warm-hit + tolerance-0 baseline gate"
start_server "$work/cache-srv" "$(nproc)"

submit "$work/cold.json" "$work/cold.log"
cold_hits=$(stat_from "$work/cold.log" 'from cache')
cold_computed=$(stat_from "$work/cold.log" 'computed')
[ "$cold_hits" = "0" ] || fail "cold submit had $cold_hits unexpected hits"
[ "$cold_computed" -ge 1 ] || fail "cold submit computed nothing"

submit "$work/warm.json" "$work/warm.log"
warm_hits=$(stat_from "$work/warm.log" 'from cache')
warm_computed=$(stat_from "$work/warm.log" 'computed')
[ "$warm_computed" = "0" ] || fail "warm submit computed $warm_computed cell(s)"
[ "$warm_hits" = "$cold_computed" ] \
    || fail "warm submit hit $warm_hits of $cold_computed cells"
cmp "$work/cold.json" "$work/warm.json" \
    || fail "warm submit is not byte-identical to the cold one"

"$RUN" --compare "$BASELINE" "$work/cold.json" --tolerance 0 \
    || fail "cold submit deviates from $BASELINE"
"$RUN" --compare "$BASELINE" "$work/warm.json" --tolerance 0 \
    || fail "warm submit deviates from $BASELINE"
stop_server
echo "   ok: $warm_hits/$cold_computed hits, byte-identical, baseline clean"

# ---------------------------------------------------------------
echo "== leg 3: kill -9 mid-sweep, resume on the same cache"
# Few workers so the sweep outlives the kill window; poll the
# objects directory and kill as soon as some cells have landed.
start_server "$work/cache-resume" 2
submit "$work/dead.json" "$work/dead.log" &
client_pid=$!
for _ in $(seq 1 600); do
    n=$(find "$work/cache-resume/objects" -name '*.json' \
        ! -name '*.tmp.*' 2>/dev/null | wc -l)
    [ "$n" -ge 5 ] && break
    kill -0 "$client_pid" 2>/dev/null || break
    sleep 0.05
done
kill -9 "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
server_pid=""
wait "$client_pid" 2>/dev/null || true # the client fails; expected

stored=$(find "$work/cache-resume/objects" -name '*.json' \
    ! -name '*.tmp.*' | wc -l)
[ "$stored" -ge 1 ] || fail "no cells stored before the kill"

start_server "$work/cache-resume" "$(nproc)"
submit "$work/resumed.json" "$work/resumed.log"
res_hits=$(stat_from "$work/resumed.log" 'from cache')
[ "$res_hits" -ge "$stored" ] \
    || fail "resume recomputed finished cells ($res_hits hits < $stored stored)"
"$RUN" --compare "$BASELINE" "$work/resumed.json" --tolerance 0 \
    || fail "resumed run deviates from $BASELINE"
stop_server
echo "   ok: $stored cells survived the kill, $res_hits served from cache"

echo "serve_smoke.sh: all legs passed"
