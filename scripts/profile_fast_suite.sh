#!/usr/bin/env sh
# Measure fast-suite wall-clock (cells/sec), the simulator's
# throughput headline. Runs the suite N times and keeps the best
# run's BENCH_throughput.json (minimum wall-clock = least noise),
# mirroring what the CI bench-regression job uploads per run.
#
# Usage: scripts/profile_fast_suite.sh [--phases] [build-dir] [runs]
#   --phases   additionally print a per-phase CPU-time breakdown
#              (fetch / select / issue / mem-tick / sleep-wake /
#              exec / divergence) of the simulator hot loop. Uses a
#              dedicated -pg build in <repo>/build-profile (gprof;
#              configured and built on first use) and aggregates
#              the flat profile over all N runs, since one
#              fast-suite pass is too short for the 100 Hz sampler
#              alone. Sample-based: treat small buckets as noise;
#              the point is the shape (where do cycles go, and did
#              an optimization move them), not the third digit.
#   build-dir  defaults to ./build (must contain siwi-run;
#              configured Release by the default CMake setup).
#              Ignored by the --phases profile pass, which always
#              uses build-profile.
#   runs       defaults to 5
#
# Writes BENCH_throughput.json to the current directory and prints
# every sample so outliers are visible.

set -eu

phases=0
if [ "${1:-}" = "--phases" ]; then
    phases=1
    shift
fi

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
runs="${2:-5}"

if [ ! -x "$build/siwi-run" ]; then
    echo "profile_fast_suite: $build/siwi-run not found;" \
         "build first (cmake --build $build --target siwi-run)" >&2
    exit 1
fi

best=""
i=1
while [ "$i" -le "$runs" ]; do
    "$build/siwi-run" --suite fast --quiet \
        --throughput-json ".throughput.$i.json" >/dev/null
    secs="$(sed -n 's/.*"seconds": \([0-9.]*\).*/\1/p' \
        ".throughput.$i.json")"
    echo "run $i: ${secs}s"
    if [ -z "$best" ] || \
       awk "BEGIN{exit !($secs < $best)}"; then
        best="$secs"
        cp ".throughput.$i.json" BENCH_throughput.json
    fi
    rm -f ".throughput.$i.json"
    i=$((i + 1))
done

echo "best: ${best}s -> BENCH_throughput.json"
sed -n 's/^ *"cells_per_sec": \(.*\),*$/cells\/sec: \1/p' \
    BENCH_throughput.json

[ "$phases" = 1 ] || exit 0

# ------------------------------------------------------------------
# Per-phase breakdown (gprof).
# ------------------------------------------------------------------
if ! command -v gprof >/dev/null 2>&1; then
    echo "profile_fast_suite: --phases needs gprof on PATH" >&2
    exit 1
fi

pbuild="$repo/build-profile"
if [ ! -x "$pbuild/siwi-run" ]; then
    echo "configuring -pg profile build in $pbuild..."
    cmake -B "$pbuild" -S "$repo" -DCMAKE_BUILD_TYPE=Release \
        -DCMAKE_CXX_FLAGS=-pg -DCMAKE_EXE_LINKER_FLAGS=-pg \
        >/dev/null
fi
cmake --build "$pbuild" --target siwi-run -j >/dev/null

gdir="$(mktemp -d)"
trap 'rm -rf "$gdir"' EXIT
echo "profiling: $runs instrumented run(s)..."
i=1
while [ "$i" -le "$runs" ]; do
    # GMON_OUT_PREFIX makes glibc write gmon.<pid> per run so the
    # samples accumulate instead of each run clobbering gmon.out.
    (cd "$gdir" && GMON_OUT_PREFIX=gmon \
        "$pbuild/siwi-run" --suite fast --quiet >/dev/null)
    i=$((i + 1))
done

# Bucket the flat profile's self-time by pipeline phase. This is
# self-time, so shared helpers are charged to their own bucket, not
# split across callers: IBuffer/ctxView serve fetch, issue and the
# sleep predicate alike; Scoreboard serves issue and sleep.
gprof -b -p "$pbuild/siwi-run" "$gdir"/gmon.* | awk -v RUNS="$runs" '
    $1 ~ /^[0-9.]+$/ && $3 ~ /^[0-9.]+$/ {
        t = $3
        if (/SM::fetchStage|SM::tryFetch/)              b = "fetch"
        else if (/Policy|poolDomain|::pick|MaskLookup/) b = "select"
        else if (/::issue|Scoreboard::|SM::ready/)      b = "issue"
        else if (/sleepE|timedWakes|wakeWarp|auditSleeping|WarpSet/)\
                                                        b = "sleep-wake"
        else if (/siwi::mem::|MemorySystem/)            b = "mem-tick"
        else if (/siwi::exec::|siwi::isa::/)            b = "exec"
        else if (/siwi::divergence::/)                  b = "divergence"
        else if (/IBuffer::|ctxView|entryFor/)          b = "shared-ibuf-ctx"
        else                                            b = "other"
        self[b] += t; total += t
        next
    }
    END {
        if (!total) { print "no samples (run too short?)"; exit 1 }
        print ""
        printf "per-phase CPU self-time (gprof, %d run(s) pooled):\n", RUNS
        n = split("fetch select issue sleep-wake mem-tick exec " \
                  "divergence shared-ibuf-ctx other", order, " ")
        for (i = 1; i <= n; ++i) {
            b = order[i]
            if (b in self)
                printf "  %-16s %6.2fs  %5.1f%%\n", b, self[b],
                       100 * self[b] / total
        }
        printf "  %-16s %6.2fs\n", "total", total
    }'
