#!/usr/bin/env sh
# Measure fast-suite wall-clock (cells/sec), the simulator's
# throughput headline. Runs the suite N times and keeps the best
# run's BENCH_throughput.json (minimum wall-clock = least noise),
# mirroring what the CI bench-regression job uploads per run.
#
# Usage: scripts/profile_fast_suite.sh [build-dir] [runs]
#   build-dir  defaults to ./build (must contain siwi-run;
#              configured Release by the default CMake setup)
#   runs       defaults to 5
#
# Writes BENCH_throughput.json to the current directory and prints
# every sample so outliers are visible.

set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
runs="${2:-5}"

if [ ! -x "$build/siwi-run" ]; then
    echo "profile_fast_suite: $build/siwi-run not found;" \
         "build first (cmake --build $build --target siwi-run)" >&2
    exit 1
fi

best=""
i=1
while [ "$i" -le "$runs" ]; do
    "$build/siwi-run" --suite fast --quiet \
        --throughput-json ".throughput.$i.json" >/dev/null
    secs="$(sed -n 's/.*"seconds": \([0-9.]*\).*/\1/p' \
        ".throughput.$i.json")"
    echo "run $i: ${secs}s"
    if [ -z "$best" ] || \
       awk "BEGIN{exit !($secs < $best)}"; then
        best="$secs"
        cp ".throughput.$i.json" BENCH_throughput.json
    fi
    rm -f ".throughput.$i.json"
    i=$((i + 1))
done

echo "best: ${best}s -> BENCH_throughput.json"
sed -n 's/^ *"cells_per_sec": \(.*\),*$/cells\/sec: \1/p' \
    BENCH_throughput.json
