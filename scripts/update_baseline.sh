#!/usr/bin/env sh
# Regenerate bench/baseline.json, the committed reference the CI
# bench-regression gate compares every PR against.
#
# Run this when a PR *intentionally* changes simulated timing, and
# commit the result together with the change (the PR diff then
# shows exactly which cells moved). The simulator is deterministic,
# so the file is identical on every machine and thread count.
#
# Uses a dedicated build directory so it never reconfigures (and
# silently converts to Release) a developer's default build/.
#
# Usage: scripts/update_baseline.sh [build-dir]

set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-baseline}"

cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build" --target siwi-run -j
"$build/siwi-run" --spec "$repo/bench/specs/fast.json" --quiet \
    --json "$repo/bench/baseline.json"
echo "wrote $repo/bench/baseline.json"
