/**
 * @file
 * siwi-serve: the experiment grid as a long-running service.
 *
 * Serves the siwi-serve wire protocol (docs/SERVE.md): clients
 * submit experiment spec documents, the server shards their cells
 * across one worker pool, answers repeats from a persistent
 * content-addressed result cache, and streams per-cell results as
 * they complete. `siwi-run --submit HOST:PORT --spec f.json` is
 * the matching client; `siwi-run --cache DIR` shares the same
 * cache offline.
 *
 * Exit codes: 0 clean shutdown / clean fsck, 1 unhealthy fsck,
 * 3 usage error, 4 startup failure.
 */

#include <csignal>
#include <cstdio>
#include <string>

#include "runner/cli.hh"
#include "serve/server.hh"

using namespace siwi;

namespace {

constexpr int exit_ok = 0;
constexpr int exit_unhealthy = 1;
constexpr int exit_usage = 3;
constexpr int exit_startup = 4;

void
usage(FILE *out)
{
    std::fprintf(out,
"usage: siwi-serve --cache DIR [options]\n"
"\n"
"  --cache DIR        result cache directory (created when\n"
"                     absent); required\n"
"  --host HOST        bind address (default: 127.0.0.1)\n"
"  --port N           TCP port; 0 picks an ephemeral port\n"
"                     (default: 0)\n"
"  --print-port       print the bound port on stdout once\n"
"                     listening (scripts with --port 0)\n"
"  -j, --jobs N       worker threads (default: all cores)\n"
"  --max-entries N    evict oldest cache entries beyond N\n"
"                     (default: 0 = unbounded)\n"
"  --no-remote-shutdown  ignore {\"type\":\"shutdown\"} requests\n"
"  --fsck             validate every cache object and the index,\n"
"                     report problems, exit (no server)\n"
"  --repair           with --fsck: delete corrupt objects and\n"
"                     rebuild the index\n");
}

serve::Server *g_server = nullptr;

void
onSignal(int)
{
    // Server::stop() only stores an atomic flag, so it is safe
    // here; run() notices within one accept-poll interval.
    if (g_server)
        g_server->stop();
}

int
doFsck(const std::string &cache_dir, bool repair)
{
    serve::ResultCache cache;
    std::string err;
    if (!cache.open(cache_dir, 0, &err)) {
        std::fprintf(stderr, "siwi-serve: %s\n", err.c_str());
        return exit_startup;
    }
    serve::FsckReport rep = cache.fsck(repair);
    for (const std::string &p : rep.problems)
        std::fprintf(stderr, "siwi-serve: fsck: %s\n", p.c_str());
    std::printf("fsck %s: %llu object(s), %llu valid, %llu "
                "corrupt, %llu removed%s\n",
                cache_dir.c_str(),
                (unsigned long long)rep.scanned,
                (unsigned long long)rep.valid,
                (unsigned long long)rep.corrupt,
                (unsigned long long)rep.removed,
                rep.index_rebuilt ? ", index rebuilt" : "");
    if (rep.clean() || (repair && rep.corrupt == rep.removed))
        return exit_ok;
    return exit_unhealthy;
}

} // namespace

int
main(int argc, char **argv)
{
    runner::ArgList args(argc, argv);

    if (args.flag("--help") || args.flag("-h")) {
        usage(stdout);
        return exit_ok;
    }

    serve::ServerOptions opts;
    std::string cache_dir;
    args.option("--cache", &cache_dir);
    args.option("--host", &opts.host);
    unsigned port = 0;
    args.intOption("--port", &port);
    opts.port = port;
    unsigned jobs = 0;
    if (!args.intOption("--jobs", &jobs))
        args.intOption("-j", &jobs);
    opts.jobs = jobs;
    unsigned max_entries = 0;
    args.intOption("--max-entries", &max_entries);
    opts.cache_max_entries = max_entries;
    opts.allow_remote_shutdown =
        !args.flag("--no-remote-shutdown");
    bool print_port = args.flag("--print-port");
    bool fsck = args.flag("--fsck");
    bool repair = args.flag("--repair");

    if (!runner::finishArgs(args, "siwi-serve")) {
        usage(stderr);
        return exit_usage;
    }
    if (cache_dir.empty()) {
        std::fprintf(stderr,
                     "siwi-serve: --cache DIR is required\n");
        usage(stderr);
        return exit_usage;
    }
    if (repair && !fsck) {
        std::fprintf(stderr,
                     "siwi-serve: --repair requires --fsck\n");
        return exit_usage;
    }
    if (fsck)
        return doFsck(cache_dir, repair);

    opts.cache_dir = cache_dir;
    serve::Server server;
    std::string err;
    if (!server.start(opts, &err)) {
        std::fprintf(stderr, "siwi-serve: %s\n", err.c_str());
        return exit_startup;
    }
    g_server = &server;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    std::fprintf(stderr,
                 "siwi-serve: listening on %s:%u, cache %s "
                 "(%llu entr%s), %u worker(s)\n",
                 opts.host.c_str(), server.port(),
                 cache_dir.c_str(),
                 (unsigned long long)server.cache().entries(),
                 server.cache().entries() == 1 ? "y" : "ies",
                 runner::resolveJobs(opts.jobs));
    if (print_port) {
        std::printf("%u\n", server.port());
        std::fflush(stdout);
    }

    server.run();
    g_server = nullptr;
    std::fprintf(stderr, "siwi-serve: shut down\n");
    return exit_ok;
}
