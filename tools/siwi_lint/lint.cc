#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace fs = std::filesystem;

namespace siwi::lint {

namespace {

// ---------------------------------------------------------------
// Small helpers
// ---------------------------------------------------------------

bool
readFile(const fs::path &p, std::string *out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string cur;
    for (char c : text) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        lines.push_back(cur);
    return lines;
}

std::string
trim(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.starts_with(prefix);
}

/**
 * Blank comments and the contents of string/char literals while
 * preserving byte positions and newlines, so line numbers and
 * column structure survive. The quote characters themselves stay,
 * literal bodies become spaces. Handles //, multi-line comments
 * and escape sequences; raw strings are not used in this repo.
 */
std::string
stripCommentsAndStrings(const std::string &src)
{
    std::string out = src;
    enum class St { Code, Line, Block, Str, Chr } st = St::Code;
    for (size_t i = 0; i < src.size(); ++i) {
        char c = src[i];
        char n = i + 1 < src.size() ? src[i + 1] : '\0';
        switch (st) {
          case St::Code:
            if (c == '/' && n == '/') {
                st = St::Line;
                out[i] = out[i + 1] = ' ';
                ++i;
            } else if (c == '/' && n == '*') {
                st = St::Block;
                out[i] = out[i + 1] = ' ';
                ++i;
            } else if (c == '"') {
                st = St::Str;
            } else if (c == '\'') {
                st = St::Chr;
            }
            break;
          case St::Line:
            if (c == '\n')
                st = St::Code;
            else
                out[i] = ' ';
            break;
          case St::Block:
            if (c == '*' && n == '/') {
                out[i] = out[i + 1] = ' ';
                st = St::Code;
                ++i;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case St::Str:
          case St::Chr: {
            char quote = st == St::Str ? '"' : '\'';
            if (c == '\\' && i + 1 < src.size()) {
                out[i] = ' ';
                if (src[i + 1] != '\n')
                    out[i + 1] = ' ';
                ++i;
            } else if (c == quote) {
                st = St::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          }
        }
    }
    return out;
}

/** Word-ish containment: @p token bounded by non-identifier,
 *  non-dot characters (so "l2.ways" does not match inside
 *  "mem.l2.ways_ext"). */
bool
containsToken(const std::string &text, const std::string &token)
{
    auto isWordOrDot = [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) ||
               c == '_' || c == '.';
    };
    size_t pos = 0;
    while ((pos = text.find(token, pos)) != std::string::npos) {
        bool left_ok =
            pos == 0 || !isWordOrDot(text[pos - 1]);
        size_t end = pos + token.size();
        bool right_ok =
            end >= text.size() || !isWordOrDot(text[end]);
        if (left_ok && right_ok)
            return true;
        pos += 1;
    }
    return false;
}

// ---------------------------------------------------------------
// File discovery
// ---------------------------------------------------------------

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".hpp" || ext == ".h";
}

/**
 * Every source file under root/src and root/tools, as
 * root-relative forward-slash paths in sorted (deterministic)
 * order. The lint's own fixtures seed violations on purpose and
 * are excluded.
 */
std::vector<std::string>
collectSources(const fs::path &root, std::vector<std::string> *errs)
{
    std::vector<std::string> out;
    for (const char *top : {"src", "tools"}) {
        fs::path dir = root / top;
        if (!fs::exists(dir)) {
            if (std::string(top) == "src")
                errs->push_back("missing directory: " +
                                dir.string());
            continue;
        }
        for (auto it = fs::recursive_directory_iterator(dir);
             it != fs::recursive_directory_iterator(); ++it) {
            if (it->is_directory() &&
                it->path().filename() == "fixtures") {
                it.disable_recursion_pending();
                continue;
            }
            if (!it->is_regular_file() ||
                !isSourceFile(it->path()))
                continue;
            out.push_back(
                fs::relative(it->path(), root).generic_string());
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

// ---------------------------------------------------------------
// Allowlist
// ---------------------------------------------------------------

struct AllowEntry
{
    std::string check;
    std::string path;
    std::string match;
    std::string justification;
    int line = 0; //!< line in the allowlist file
    bool used = false;
};

std::vector<AllowEntry>
loadAllowlist(const fs::path &file, std::vector<std::string> *errs)
{
    std::vector<AllowEntry> entries;
    std::string text;
    if (!readFile(file, &text))
        return entries; // an absent allowlist is simply empty
    int lineno = 0;
    for (const std::string &raw : splitLines(text)) {
        ++lineno;
        std::string line = trim(raw);
        if (line.empty() || line[0] == '#')
            continue;
        AllowEntry e;
        e.line = lineno;
        size_t p1 = line.find('|');
        size_t p2 = p1 == std::string::npos
                        ? std::string::npos
                        : line.find('|', p1 + 1);
        size_t p3 = p2 == std::string::npos
                        ? std::string::npos
                        : line.find('|', p2 + 1);
        if (p3 == std::string::npos) {
            errs->push_back(
                file.string() + ":" + std::to_string(lineno) +
                ": allowlist entry needs 4 '|'-separated fields "
                "(check|path|match|justification)");
            continue;
        }
        e.check = trim(line.substr(0, p1));
        e.path = trim(line.substr(p1 + 1, p2 - p1 - 1));
        e.match = trim(line.substr(p2 + 1, p3 - p2 - 1));
        e.justification = trim(line.substr(p3 + 1));
        if (e.check.empty() || e.path.empty() || e.match.empty() ||
            e.justification.empty()) {
            errs->push_back(
                file.string() + ":" + std::to_string(lineno) +
                ": allowlist entry has an empty field; a "
                "justification is mandatory");
            continue;
        }
        entries.push_back(std::move(e));
    }
    return entries;
}

// ---------------------------------------------------------------
// Check 1: banned nondeterminism sources
// ---------------------------------------------------------------

struct BannedPattern
{
    std::regex re;
    const char *why;
};

const std::vector<BannedPattern> &
bannedPatterns()
{
    static const std::vector<BannedPattern> v = {
        {std::regex(R"(\bunordered_(map|set)\b)"),
         "unordered container: iteration order varies across "
         "libraries and runs; use std::map / a sorted vector, or "
         "allowlist a lookup-only use"},
        {std::regex(R"(\brandom_device\b)"),
         "std::random_device: nondeterministic seed source; use "
         "common/rng.hh with an explicit seed"},
        {std::regex(R"(\bs?rand\s*\()"),
         "rand()/srand(): hidden global RNG state; use "
         "common/rng.hh with an explicit seed"},
        {std::regex(
             R"(\b(system_clock|steady_clock|high_resolution_clock)\b)"),
         "wall clock: simulation state must depend only on "
         "simulated cycles, never on host time"},
        {std::regex(R"(\btime\s*\()"),
         "time(): host wall clock in simulation code"},
        {std::regex(R"(\bclock\s*\()"),
         "clock(): host CPU clock in simulation code"},
        {std::regex(R"(std::(map|set)\s*<[^<>,]*\*)"),
         "pointer-keyed ordered container: ordering follows "
         "allocation addresses, which vary run to run; key by a "
         "stable id instead"},
    };
    return v;
}

void
checkBannedSources(const fs::path &root,
                   const std::vector<std::string> &files,
                   std::vector<Finding> *findings,
                   std::vector<std::string> *flagged_lines,
                   std::vector<std::string> *errs)
{
    for (const std::string &rel : files) {
        std::string text;
        if (!readFile(root / rel, &text)) {
            errs->push_back("unreadable file: " + rel);
            continue;
        }
        const std::string stripped = stripCommentsAndStrings(text);
        const std::vector<std::string> raw = splitLines(text);
        const std::vector<std::string> code = splitLines(stripped);
        for (size_t i = 0; i < code.size(); ++i) {
            const std::string &line = code[i];
            // Preprocessor lines: the #include naming the header
            // is redundant with the use we flag.
            if (startsWith(trim(line), "#"))
                continue;
            for (const BannedPattern &p : bannedPatterns()) {
                if (!std::regex_search(line, p.re))
                    continue;
                Finding f;
                f.file = rel;
                f.line = int(i) + 1;
                f.check = "nondet";
                f.message = p.why;
                findings->push_back(std::move(f));
                flagged_lines->push_back(
                    i < raw.size() ? raw[i] : "");
            }
        }
    }
}

// ---------------------------------------------------------------
// Check 2: header hygiene
// ---------------------------------------------------------------

std::string
expectedGuard(const std::string &rel)
{
    std::string path = rel;
    if (startsWith(path, "src/"))
        path = path.substr(4);
    std::string guard = "SIWI_";
    for (char c : path) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            guard += char(
                std::toupper(static_cast<unsigned char>(c)));
        else
            guard += '_';
    }
    return guard;
}

void
checkHeaders(const fs::path &root,
             const std::vector<std::string> &files,
             std::vector<Finding> *findings,
             std::vector<std::string> *flagged_lines,
             std::vector<std::string> *errs)
{
    const std::regex ifndef_re(R"(^\s*#ifndef\s+([A-Za-z0-9_]+))");
    const std::regex define_re(R"(^\s*#define\s+([A-Za-z0-9_]+))");
    const std::regex using_re(R"(\busing\s+namespace\b)");
    for (const std::string &rel : files) {
        if (fs::path(rel).extension() != ".hh" &&
            fs::path(rel).extension() != ".h" &&
            fs::path(rel).extension() != ".hpp")
            continue;
        std::string text;
        if (!readFile(root / rel, &text)) {
            errs->push_back("unreadable file: " + rel);
            continue;
        }
        const std::string stripped = stripCommentsAndStrings(text);
        const std::vector<std::string> raw = splitLines(text);
        const std::vector<std::string> code = splitLines(stripped);

        const std::string guard = expectedGuard(rel);
        std::string got_ifndef, got_define;
        int guard_line = 0;
        for (size_t i = 0; i < code.size(); ++i) {
            std::smatch m;
            if (got_ifndef.empty() &&
                std::regex_search(code[i], m, ifndef_re)) {
                got_ifndef = m[1];
                guard_line = int(i) + 1;
                // The #define must follow on the next code line.
                for (size_t j = i + 1; j < code.size(); ++j) {
                    if (trim(code[j]).empty())
                        continue;
                    std::smatch md;
                    if (std::regex_search(code[j], md, define_re))
                        got_define = md[1];
                    break;
                }
                break;
            }
            if (!trim(code[i]).empty() &&
                !startsWith(trim(code[i]), "#"))
                break; // code before any guard
        }
        if (got_ifndef != guard || got_define != guard) {
            Finding f;
            f.file = rel;
            f.line = guard_line ? guard_line : 1;
            f.check = "header";
            f.message =
                got_ifndef.empty()
                    ? "missing include guard; expected #ifndef " +
                          guard + " / #define " + guard
                    : "include guard is '" + got_ifndef +
                          (got_define != got_ifndef
                               ? "' (#define says '" + got_define +
                                     "')"
                               : "'") +
                          "; expected '" + guard + "'";
            findings->push_back(std::move(f));
            flagged_lines->push_back(
                guard_line && guard_line <= int(raw.size())
                    ? raw[guard_line - 1]
                    : "");
        }

        for (size_t i = 0; i < code.size(); ++i) {
            if (std::regex_search(code[i], using_re)) {
                Finding f;
                f.file = rel;
                f.line = int(i) + 1;
                f.check = "header";
                f.message =
                    "'using namespace' in a header leaks into "
                    "every includer; qualify names instead";
                findings->push_back(std::move(f));
                flagged_lines->push_back(
                    i < raw.size() ? raw[i] : "");
            }
        }
    }
}

// ---------------------------------------------------------------
// Check 3: struct <-> serialization-table drift
// ---------------------------------------------------------------

struct Member
{
    std::string name;
    std::string type;
    int line = 0;
};

/**
 * Extract the data members of @p name from @p header_text.
 * Statement-level parse over comment-stripped text: functions,
 * static members and nested type definitions are skipped; brace
 * and paren contents are elided so multi-line declarations and
 * inline method bodies do not confuse the splitter.
 */
std::vector<Member>
parseStructMembers(const std::string &header_text,
                   const std::string &name, std::string *err)
{
    const std::string code = stripCommentsAndStrings(header_text);
    const std::regex decl_re("(struct|class)\\s+" + name +
                             "\\b([^;{]*)\\{");
    std::smatch m;
    if (!std::regex_search(code, m, decl_re)) {
        *err = "struct " + name + " not found";
        return {};
    }
    size_t body = size_t(m.position(0)) + m.length(0);
    int line = 1 + int(std::count(code.begin(),
                                  code.begin() + long(body), '\n'));

    std::vector<Member> members;
    std::string stmt;
    int stmt_line = 0;
    int depth = 1;
    bool saw_brace_group = false;

    auto flush = [&](bool terminated) {
        std::string s = trim(stmt);
        stmt.clear();
        saw_brace_group = false;
        if (!terminated || s.empty())
            return;
        s = std::regex_replace(
            s, std::regex(R"(^\s*(public|private|protected)\s*:)"),
            "");
        s = trim(s);
        if (s.empty() || s.find('(') != std::string::npos)
            return;
        for (const char *kw : {"static", "using", "friend",
                               "typedef", "struct", "class",
                               "enum", "template"})
            if (startsWith(s, kw))
                return;
        // Cut "= init" (a braced init's body was already elided
        // by the depth filter).
        size_t cut = s.find('=');
        if (cut != std::string::npos)
            s = trim(s.substr(0, cut));
        const std::regex ident_re(R"(([A-Za-z_]\w*)\s*$)");
        std::smatch im;
        std::string tail = s;
        if (!std::regex_search(tail, im, ident_re))
            return;
        Member mem;
        mem.name = im[1];
        mem.type = trim(tail.substr(0, size_t(im.position(1))));
        if (mem.type.empty())
            return;
        mem.line = stmt_line;
        members.push_back(std::move(mem));
    };

    for (size_t i = body; i < code.size() && depth > 0; ++i) {
        char c = code[i];
        if (c == '\n')
            ++line;
        if (c == '{') {
            ++depth;
            if (depth == 2)
                saw_brace_group = true;
            continue;
        }
        if (c == '}') {
            --depth;
            if (depth == 1 &&
                stmt.find('(') != std::string::npos) {
                stmt.clear(); // a method body just closed
                saw_brace_group = false;
            }
            continue;
        }
        if (depth != 1)
            continue;
        if (c == ';') {
            flush(true);
            continue;
        }
        if (trim(stmt).empty() && !std::isspace(
                static_cast<unsigned char>(c)))
            stmt_line = line;
        stmt += c;
    }
    return members;
}

/** Last identifier of a type spelling ("mem::MemConfig" ->
 *  "MemConfig"); templated types are treated as leaves. */
std::string
bareTypeName(const std::string &type)
{
    if (type.find('<') != std::string::npos)
        return "";
    const std::regex re(R"(([A-Za-z_]\w*)\s*$)");
    std::smatch m;
    if (std::regex_search(type, m, re))
        return m[1];
    return "";
}

struct TableSpec
{
    const char *struct_name;
    const char *header;     //!< declares the struct
    const char *table_file; //!< holds the field table
    bool stats_mode;        //!< SimStats (u64 table) vs ConfigField
    std::vector<std::string> skip; //!< members checked elsewhere
};

const std::vector<TableSpec> &
tableSpecs()
{
    static const std::vector<TableSpec> v = {
        {"SimStats", "src/core/stats.hh", "src/core/stats_io.cc",
         true, {}},
        {"SMConfig", "src/pipeline/config.hh",
         "src/pipeline/config_io.cc", false, {}},
        // GpuConfig.sm is serialized through the nested SMConfig
        // table, which the row above checks on its own.
        {"GpuConfig", "src/core/gpu.hh", "src/core/config_io.cc",
         false, {"sm"}},
    };
    return v;
}

/** Headers of the nested config structs dotted paths recurse
 *  through. */
const std::map<std::string, std::string> &
nestedStructHeaders()
{
    static const std::map<std::string, std::string> m = {
        {"SplitHeapConfig", "src/divergence/split_heap.hh"},
        {"MemConfig", "src/mem/memory_system.hh"},
        {"CacheConfig", "src/mem/cache.hh"},
        {"DramConfig", "src/mem/dram.hh"},
        {"L2Config", "src/mem/backend.hh"},
        {"NocConfig", "src/mem/banked_l2.hh"},
    };
    return m;
}

struct Leaf
{
    std::string path; //!< dotted from the root struct
    std::string type;
    std::string file; //!< header declaring the leaf member
    int line = 0;
};

void
expandLeaves(const fs::path &root, const std::string &struct_name,
             const std::string &header_rel,
             const std::string &prefix, int depth,
             const std::vector<std::string> &skip,
             std::vector<Leaf> *out, std::vector<std::string> *errs)
{
    if (depth > 4) {
        errs->push_back("table-drift: nesting too deep at " +
                        prefix);
        return;
    }
    std::string text;
    if (!readFile(root / header_rel, &text)) {
        errs->push_back("table-drift: cannot read " + header_rel +
                        " (struct " + struct_name + ")");
        return;
    }
    std::string perr;
    std::vector<Member> members =
        parseStructMembers(text, struct_name, &perr);
    if (!perr.empty()) {
        errs->push_back("table-drift: " + header_rel + ": " + perr);
        return;
    }
    for (const Member &m : members) {
        if (std::find(skip.begin(), skip.end(), m.name) !=
            skip.end())
            continue;
        const std::string bare = bareTypeName(m.type);
        auto nested = nestedStructHeaders().find(bare);
        if (nested != nestedStructHeaders().end()) {
            expandLeaves(root, bare, nested->second,
                         prefix + m.name + ".", depth + 1, {}, out,
                         errs);
        } else {
            out->push_back(
                {prefix + m.name, m.type, header_rel, m.line});
        }
    }
}

void
checkTableDrift(const fs::path &root,
                std::vector<Finding> *findings,
                std::vector<std::string> *flagged_lines,
                std::vector<std::string> *errs)
{
    for (const TableSpec &spec : tableSpecs()) {
        std::string table_text;
        if (!readFile(root / spec.table_file, &table_text)) {
            errs->push_back("table-drift: cannot read " +
                            std::string(spec.table_file));
            continue;
        }
        std::vector<Leaf> leaves;
        expandLeaves(root, spec.struct_name, spec.header, "", 0,
                     spec.skip, &leaves, errs);
        std::string header_text;
        readFile(root / spec.header, &header_text);
        const std::vector<std::string> header_lines =
            splitLines(header_text);
        for (const Leaf &leaf : leaves) {
            bool ok;
            std::string expect;
            if (spec.stats_mode && leaf.type == "u64") {
                expect = "&" + std::string(spec.struct_name) +
                         "::" + leaf.path;
                ok = table_text.find(expect) != std::string::npos;
            } else {
                expect = leaf.path;
                ok = containsToken(table_text, leaf.path);
            }
            if (ok)
                continue;
            Finding f;
            f.file = leaf.file;
            f.line = leaf.line;
            f.check = "table-drift";
            f.message = std::string(spec.struct_name) + "." +
                        leaf.path + " has no row in " +
                        spec.table_file +
                        " (expected " + expect +
                        "): the field is invisible to "
                        "serialization, operator== and the "
                        "determinism gates";
            findings->push_back(std::move(f));
            const std::vector<std::string> *lines = &header_lines;
            std::string nested_text;
            if (leaf.file != spec.header) {
                readFile(root / leaf.file, &nested_text);
            }
            std::vector<std::string> nested_lines;
            if (!nested_text.empty()) {
                nested_lines = splitLines(nested_text);
                lines = &nested_lines;
            }
            flagged_lines->push_back(
                leaf.line >= 1 && leaf.line <= int(lines->size())
                    ? (*lines)[leaf.line - 1]
                    : "");
        }
    }
}

// ---------------------------------------------------------------
// Check 4: serialized schema key pin
// ---------------------------------------------------------------

std::set<std::string>
extractSerializedKeys(const std::string &text)
{
    std::set<std::string> keys;
    static const std::regex res[] = {
        std::regex(R"re((?:\.|->)set\(\s*"([^"]+)")re"),
        std::regex(
            R"re(\bget(?:Int|Bool|String|Double)\(\s*"([^"]+)")re"),
        std::regex(R"re(\bfind\(\s*"([^"]+)")re"),
        std::regex(R"re(\{\s*"([^"]+)"\s*,\s*&SimStats::)re"),
    };
    for (const std::regex &re : res) {
        auto begin =
            std::sregex_iterator(text.begin(), text.end(), re);
        for (auto it = begin; it != std::sregex_iterator(); ++it)
            keys.insert((*it)[1]);
    }
    return keys;
}

void
checkSchemaPin(const fs::path &root, const Options &opts,
               std::vector<Finding> *findings,
               std::vector<std::string> *flagged_lines,
               std::vector<std::string> *errs)
{
    if (opts.schema_pin.empty())
        return;
    const char *version_hdr = "src/core/stats_io.hh";
    const std::vector<const char *> key_files = {
        "src/core/stats_io.cc", "src/runner/results.cc"};

    std::string hdr_text;
    if (!readFile(root / version_hdr, &hdr_text)) {
        errs->push_back(std::string("schema: cannot read ") +
                        version_hdr);
        return;
    }
    std::smatch vm;
    int version = -1;
    int version_line = 0;
    if (std::regex_search(
            hdr_text, vm,
            std::regex(
                R"(stats_schema_version\s*=\s*(\d+))"))) {
        version = std::stoi(vm[1]);
        version_line =
            1 + int(std::count(hdr_text.begin(),
                               hdr_text.begin() + vm.position(0),
                               '\n'));
    } else {
        errs->push_back(std::string("schema: no "
                                    "stats_schema_version in ") +
                        version_hdr);
        return;
    }

    std::set<std::string> keys;
    for (const char *kf : key_files) {
        std::string text;
        if (!readFile(root / kf, &text)) {
            errs->push_back(std::string("schema: cannot read ") +
                            kf);
            return;
        }
        std::set<std::string> k = extractSerializedKeys(text);
        keys.insert(k.begin(), k.end());
    }

    const fs::path pin_path = root / opts.schema_pin;
    if (opts.update_schema_pin) {
        std::ofstream out(pin_path);
        out << "# Serialized stats/results key set pinned to the "
               "schema version.\n"
            << "# Regenerate (after bumping stats_schema_version "
               "in core/stats_io.hh)\n"
            << "# with: siwi-lint --update-schema-pin\n"
            << "version " << version << "\n";
        for (const std::string &k : keys)
            out << "key " << k << "\n";
        if (!out) {
            errs->push_back("schema: cannot write " +
                            pin_path.string());
        }
        return;
    }

    std::string pin_text;
    if (!readFile(pin_path, &pin_text)) {
        Finding f;
        f.file = opts.schema_pin;
        f.line = 0;
        f.check = "schema";
        f.message = "schema pin file missing; generate it with "
                    "siwi-lint --update-schema-pin";
        findings->push_back(std::move(f));
        flagged_lines->push_back("");
        return;
    }
    int pin_version = -1;
    std::set<std::string> pin_keys;
    for (const std::string &raw : splitLines(pin_text)) {
        std::string line = trim(raw);
        if (line.empty() || line[0] == '#')
            continue;
        if (startsWith(line, "version "))
            pin_version = std::stoi(line.substr(8));
        else if (startsWith(line, "key "))
            pin_keys.insert(trim(line.substr(4)));
    }

    if (version != pin_version) {
        Finding f;
        f.file = version_hdr;
        f.line = version_line;
        f.check = "schema";
        f.message = "stats_schema_version is " +
                    std::to_string(version) + " but " +
                    opts.schema_pin + " pins v" +
                    std::to_string(pin_version) +
                    "; after a deliberate bump regenerate the pin "
                    "with siwi-lint --update-schema-pin";
        findings->push_back(std::move(f));
        flagged_lines->push_back("");
        return;
    }
    for (const std::string &k : keys) {
        if (pin_keys.count(k))
            continue;
        Finding f;
        f.file = version_hdr;
        f.line = version_line;
        f.check = "schema";
        f.message =
            "serialized key '" + k +
            "' is new but stats_schema_version is still " +
            std::to_string(version) +
            ": readers of existing artifacts would misparse; bump "
            "the version and regenerate the pin "
            "(siwi-lint --update-schema-pin)";
        findings->push_back(std::move(f));
        flagged_lines->push_back("");
    }
    for (const std::string &k : pin_keys) {
        if (keys.count(k))
            continue;
        Finding f;
        f.file = version_hdr;
        f.line = version_line;
        f.check = "schema";
        f.message =
            "serialized key '" + k +
            "' was removed but stats_schema_version is still " +
            std::to_string(version) +
            ": bump the version and regenerate the pin "
            "(siwi-lint --update-schema-pin)";
        findings->push_back(std::move(f));
        flagged_lines->push_back("");
    }
}

} // namespace

std::string
Finding::format() const
{
    return file + ":" + std::to_string(line) + ": [" + check +
           "] " + message;
}

Result
runLint(const Options &opts)
{
    Result res;
    const fs::path root(opts.root);
    if (!fs::exists(root)) {
        res.errors.push_back("root does not exist: " + opts.root);
        return res;
    }

    const std::vector<std::string> files =
        collectSources(root, &res.errors);

    // Findings and the raw text of the line each one flags, kept
    // index-parallel so allowlist entries can match either the
    // offending line or the message.
    std::vector<Finding> findings;
    std::vector<std::string> flagged;

    checkBannedSources(root, files, &findings, &flagged,
                       &res.errors);
    checkHeaders(root, files, &findings, &flagged, &res.errors);
    checkTableDrift(root, &findings, &flagged, &res.errors);
    checkSchemaPin(root, opts, &findings, &flagged, &res.errors);

    std::vector<AllowEntry> allow;
    if (!opts.allowlist.empty())
        allow = loadAllowlist(root / opts.allowlist, &res.errors);

    for (size_t i = 0; i < findings.size(); ++i) {
        bool suppressed = false;
        for (AllowEntry &e : allow) {
            if (e.check != findings[i].check ||
                e.path != findings[i].file)
                continue;
            if (flagged[i].find(e.match) == std::string::npos &&
                findings[i].message.find(e.match) ==
                    std::string::npos)
                continue;
            e.used = true;
            suppressed = true;
        }
        if (!suppressed)
            res.findings.push_back(findings[i]);
    }
    for (const AllowEntry &e : allow) {
        if (e.used)
            continue;
        Finding f;
        f.file = opts.allowlist;
        f.line = e.line;
        f.check = "allowlist";
        f.message = "stale allowlist entry (check '" + e.check +
                    "', path '" + e.path + "', match '" + e.match +
                    "') matches nothing; delete it or fix the "
                    "reference";
        res.findings.push_back(std::move(f));
    }

    std::sort(res.findings.begin(), res.findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.message < b.message;
              });
    return res;
}

} // namespace siwi::lint
