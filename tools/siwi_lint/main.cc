/**
 * @file
 * siwi-lint CLI. Exit codes: 0 clean, 1 findings, 2 usage or
 * infrastructure error (unreadable registered file, malformed
 * allowlist) — mirroring the compiler-like convention that a bad
 * invocation is distinct from a bad tree.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "lint.hh"

namespace {

void
usage(std::FILE *to)
{
    std::fputs(
        "usage: siwi-lint [--root DIR] [--allowlist FILE]\n"
        "                 [--schema-pin FILE] [--update-schema-pin]\n"
        "                 [--quiet]\n"
        "\n"
        "Repo-specific static analysis for the determinism\n"
        "contract (see docs/LINTING.md):\n"
        "  nondet       banned nondeterminism sources in src/+tools/\n"
        "  header       include-guard and using-namespace hygiene\n"
        "  table-drift  struct fields missing from ConfigField /\n"
        "               statsU64Fields tables\n"
        "  schema       serialized key set vs the pinned schema\n"
        "               version\n"
        "  allowlist    stale suppression entries\n"
        "\n"
        "Paths given to --allowlist/--schema-pin are relative to\n"
        "--root. --update-schema-pin rewrites the pin after a\n"
        "deliberate schema bump instead of comparing.\n",
        to);
}

} // namespace

int
main(int argc, char **argv)
{
    siwi::lint::Options opts;
    bool quiet = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "siwi-lint: %s needs a value\n",
                             flag);
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--root") {
            const char *v = value("--root");
            if (!v)
                return 2;
            opts.root = v;
        } else if (arg == "--allowlist") {
            const char *v = value("--allowlist");
            if (!v)
                return 2;
            opts.allowlist = v;
        } else if (arg == "--schema-pin") {
            const char *v = value("--schema-pin");
            if (!v)
                return 2;
            opts.schema_pin = v;
        } else if (arg == "--update-schema-pin") {
            opts.update_schema_pin = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else {
            std::fprintf(stderr, "siwi-lint: unknown option '%s'\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        }
    }

    const siwi::lint::Result res = siwi::lint::runLint(opts);
    for (const std::string &err : res.errors)
        std::fprintf(stderr, "siwi-lint: error: %s\n", err.c_str());
    for (const siwi::lint::Finding &f : res.findings)
        std::fprintf(stdout, "%s\n", f.format().c_str());
    if (!res.errors.empty())
        return 2;
    if (!res.findings.empty()) {
        std::fprintf(stderr,
                     "siwi-lint: %zu finding%s (allowlist: "
                     "%s; docs/LINTING.md explains each check)\n",
                     res.findings.size(),
                     res.findings.size() == 1 ? "" : "s",
                     opts.allowlist.c_str());
        return 1;
    }
    if (!quiet)
        std::fprintf(stderr, "siwi-lint: clean\n");
    return 0;
}
