// Fixture: wrong include guard and a file-scope using-namespace.
#ifndef WRONG_GUARD_HH
#define WRONG_GUARD_HH

#include <string>

using namespace std;

namespace siwi::common {

inline string
shout(const string &s)
{
    return s + "!";
}

} // namespace siwi::common

#endif // WRONG_GUARD_HH
