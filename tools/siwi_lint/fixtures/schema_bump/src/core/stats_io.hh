// Fixture: the schema version was bumped but the pin was not
// regenerated.
#ifndef SIWI_CORE_STATS_IO_HH
#define SIWI_CORE_STATS_IO_HH

namespace siwi::core {

constexpr int stats_schema_version = 2;

} // namespace siwi::core

#endif // SIWI_CORE_STATS_IO_HH
