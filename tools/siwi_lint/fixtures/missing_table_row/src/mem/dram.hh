// Fixture: nested config struct recursed into by table-drift.
#ifndef SIWI_MEM_DRAM_HH
#define SIWI_MEM_DRAM_HH

namespace siwi::mem {

struct DramConfig
{
    unsigned rate = 100; // expected as dram.rate in the SM table
};

} // namespace siwi::mem

#endif // SIWI_MEM_DRAM_HH
