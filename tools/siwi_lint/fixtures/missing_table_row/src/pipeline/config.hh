// Fixture: SMConfig with a nested config struct whose dotted leaf
// (dram.rate) has no table row.
#ifndef SIWI_PIPELINE_CONFIG_HH
#define SIWI_PIPELINE_CONFIG_HH

#include "mem/dram.hh"

namespace siwi::pipeline {

struct SMConfig
{
    unsigned warp_width = 32;
    unsigned num_warps = 32;
    mem::DramConfig dram;
};

} // namespace siwi::pipeline

#endif // SIWI_PIPELINE_CONFIG_HH
