// Fixture: SimStats grew a counter the table does not serialize.
#ifndef SIWI_CORE_STATS_HH
#define SIWI_CORE_STATS_HH

namespace siwi::core {

using u64 = unsigned long long;

struct SimStats
{
    u64 cycles = 0;
    u64 instructions = 0;
    u64 forgotten_counter = 0; // no table row: must be flagged
    unsigned extra = 0;

    double ipc() const
    {
        return cycles ? double(instructions) / double(cycles) : 0.0;
    }
};

} // namespace siwi::core

#endif // SIWI_CORE_STATS_HH
