// Fixture: a banned construct covered by an allowlist entry.
#include <unordered_map>

namespace siwi::core {

int
lookupOnly(int k)
{
    static std::unordered_map<int, int> cache; // allowlisted
    return cache[k];
}

} // namespace siwi::core
