// Fixture: minimal GpuConfig; "sm" is covered by its own table.
#ifndef SIWI_CORE_GPU_HH
#define SIWI_CORE_GPU_HH

#include "pipeline/config.hh"

namespace siwi::core {

struct GpuConfig
{
    pipeline::SMConfig sm;
    unsigned num_sms = 1;
    bool shared_backend = false;
};

} // namespace siwi::core

#endif // SIWI_CORE_GPU_HH
