// Fixture: schema version header.
#ifndef SIWI_CORE_STATS_IO_HH
#define SIWI_CORE_STATS_IO_HH

namespace siwi::core {

constexpr int stats_schema_version = 1;

} // namespace siwi::core

#endif // SIWI_CORE_STATS_IO_HH
