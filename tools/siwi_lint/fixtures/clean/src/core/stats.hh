// Fixture: minimal SimStats that matches its table exactly.
#ifndef SIWI_CORE_STATS_HH
#define SIWI_CORE_STATS_HH

namespace siwi::core {

using u64 = unsigned long long;

struct SimStats
{
    u64 cycles = 0;
    u64 instructions = 0;
    unsigned extra = 0;

    double ipc() const
    {
        return cycles ? double(instructions) / double(cycles) : 0.0;
    }
};

} // namespace siwi::core

#endif // SIWI_CORE_STATS_HH
