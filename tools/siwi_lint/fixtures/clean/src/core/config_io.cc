// Fixture: the GpuConfig chip field table.
#include "core/config_io.hh"

namespace siwi::core {

const int table[] = {
    F_U32("num_sms", num_sms, "SM instances on the chip"),
    F_BOOL("shared_backend", shared_backend, "shared L2 path"),
};

} // namespace siwi::core
