// Fixture: the stats field table, covering every SimStats member.
#include "core/stats_io.hh"

namespace siwi::core {

struct StatsField
{
    const char *name;
    u64 SimStats::*member;
};

constexpr StatsField u64_fields[] = {
    {"cycles", &SimStats::cycles},
    {"instructions", &SimStats::instructions},
};

void
statsToJson(const SimStats &st, Json *j)
{
    for (const StatsField &f : u64_fields)
        j->set(f.name, st.*f.member);
    j->set("extra", st.extra);
}

} // namespace siwi::core
