// Fixture: results serialization, contributing top-level keys.
#include "runner/results.hh"

namespace siwi::runner {

void
toJson(Json *j)
{
    j->set("schema_version", 1);
    j->set("cells", 0);
}

} // namespace siwi::runner
