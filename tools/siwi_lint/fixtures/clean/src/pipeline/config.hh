// Fixture: minimal SMConfig matching its ConfigField table.
#ifndef SIWI_PIPELINE_CONFIG_HH
#define SIWI_PIPELINE_CONFIG_HH

namespace siwi::pipeline {

struct SMConfig
{
    unsigned warp_width = 32;
    unsigned num_warps = 32;
};

} // namespace siwi::pipeline

#endif // SIWI_PIPELINE_CONFIG_HH
