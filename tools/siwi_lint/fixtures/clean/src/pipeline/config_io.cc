// Fixture: the SMConfig field table.
#include "pipeline/config_io.hh"

namespace siwi::pipeline {

const int table[] = {
    F_U32("warp_width", warp_width, "threads per warp"),
    F_U32("num_warps", num_warps, "resident warps per SM"),
};

} // namespace siwi::pipeline
