// Fixture: every banned nondeterminism source the lint must flag.
// Mentioning rand() in a comment must NOT trip the check.
#include <chrono>
#include <cstdlib>
#include <map>
#include <unordered_map>

namespace siwi::core {

int
evil()
{
    std::unordered_map<int, int> cache; // line 13: container
    cache[1] = rand();                  // line 14: rand()
    auto t = std::chrono::steady_clock::now(); // line 15: clock
    std::map<int *, int> by_ptr;        // line 16: pointer keys
    (void)t;
    (void)by_ptr;
    return cache[1];
}

} // namespace siwi::core
