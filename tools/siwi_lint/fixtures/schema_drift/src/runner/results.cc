// Fixture: a serialized key was added without bumping the schema
// version — the pin still records the old key set.
#include "runner/results.hh"

namespace siwi::runner {

void
toJson(Json *j)
{
    j->set("schema_version", 1);
    j->set("cells", 0);
    j->set("brand_new_key", 0); // not in the pin: must be flagged
}

} // namespace siwi::runner
