/* Fixture: the serve layer's single justified clock access point,
 * covered by an allowlist entry (latency/timeout measurement only,
 * never simulation state). */
#ifndef SIWI_SERVE_CLOCK_HH
#define SIWI_SERVE_CLOCK_HH

#include <chrono>

namespace siwi::serve {

inline unsigned long long
monoMillis()
{
    return (unsigned long long)
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
}

} // namespace siwi::serve

#endif // SIWI_SERVE_CLOCK_HH
