// Fixture: an unjustified clock read in serve code. Server code
// must route every wall-clock access through the allowlisted
// monoMillis() anchor; a direct read like this one has no
// allowlist entry and must be flagged.
#include <chrono>

namespace siwi::serve {

unsigned long long
sneakyNow()
{
    return (unsigned long long)
        std::chrono::steady_clock::now().time_since_epoch().count();
}

} // namespace siwi::serve
