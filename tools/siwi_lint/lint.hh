/**
 * @file
 * siwi-lint: repo-specific static analysis for the determinism
 * contract (docs/LINTING.md).
 *
 * The simulator's headline guarantee — bit-identical statistics at
 * any thread count, with cycle skipping on or off — rests on
 * invariants the compiler cannot see: no nondeterministic
 * containers or clocks feeding simulation state, ConfigField /
 * statsU64Fields tables that never drift from their structs, and a
 * schema version that moves whenever the serialized key set does.
 * This checker enforces them at analysis time, before a bug can
 * reach the runtime drift tests.
 */

#ifndef SIWI_TOOLS_SIWI_LINT_LINT_HH
#define SIWI_TOOLS_SIWI_LINT_LINT_HH

#include <string>
#include <vector>

namespace siwi::lint {

/** One rule violation, anchored to a source line. */
struct Finding
{
    std::string file; //!< path relative to the scanned root
    int line = 0;     //!< 1-based; 0 when file-scoped
    std::string check;
    std::string message;

    /** "file:line: [check] message" (editors can jump to it). */
    std::string format() const;
};

struct Options
{
    /** Repo root to scan (contains src/, tools/). */
    std::string root = ".";
    /** Allowlist path relative to root; empty disables. */
    std::string allowlist = "tools/siwi_lint/allowlist.txt";
    /** Schema pin path relative to root; empty disables. */
    std::string schema_pin = "tools/siwi_lint/schema.pin";
    /** Rewrite the schema pin instead of comparing against it. */
    bool update_schema_pin = false;
};

struct Result
{
    std::vector<Finding> findings;
    /** Infrastructure failures (unreadable files, bad allowlist). */
    std::vector<std::string> errors;

    bool clean() const
    {
        return findings.empty() && errors.empty();
    }
};

/** Run every check over @p opts.root. */
Result runLint(const Options &opts);

} // namespace siwi::lint

#endif // SIWI_TOOLS_SIWI_LINT_LINT_HH
