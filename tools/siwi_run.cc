/**
 * @file
 * siwi-run: parallel experiment-runner CLI.
 *
 * Runs named suites or individual figure sweeps across a thread
 * pool, prints the paper-style tables, emits machine-readable
 * JSON/CSV, and implements the CI bench-regression gate by
 * comparing result files against a committed baseline.
 *
 * Exit codes: 0 success, 1 verification failure, 2 regression
 * gate failed, 3 usage error, 4 I/O error.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/config_io.hh"
#include "frontend/registry.hh"
#include "pipeline/config_io.hh"
#include "runner/runner.hh"
#include "serve/cached_run.hh"
#include "serve/client.hh"

using namespace siwi;
using namespace siwi::runner;

namespace {

constexpr int exit_ok = 0;
constexpr int exit_verify = 1;
constexpr int exit_regression = 2;
constexpr int exit_usage = 3;
constexpr int exit_io = 4;

void
usage(FILE *out)
{
    std::fprintf(out,
"usage: siwi-run [options]\n"
"\n"
"run selection:\n"
"  --suite NAME       fast | fig7 | scaling | full "
"(default: fast)\n"
"  --figure NAME      fig7 | fig8a | fig8b | fig9 | policy |\n"
"                     scaling; repeatable, overrides --suite\n"
"  --spec PATH        run the experiment described by a JSON\n"
"                     spec file (see docs/CONFIG.md and\n"
"                     bench/specs/); excludes --suite/--figure\n"
"  --size SIZE        tiny | full | chip: override the sweep "
"size\n"
"  --machine NAME     keep only this machine (repeatable)\n"
"  --workload NAME    keep only this workload (repeatable)\n"
"  --sms N            override the SM-count axis of every\n"
"                     selected sweep (repeatable, e.g.\n"
"                     --sms 1 --sms 4)\n"
"  --policy NAME      override the scheduling-policy axis:\n"
"                     oldest | rr | gto | minpc (repeatable)\n"
"\n"
"configuration:\n"
"  --machine-file PATH  add a machine loaded from a JSON\n"
"                     machine file to every selected sweep\n"
"                     (repeatable; see docs/CONFIG.md)\n"
"  --set KEY=VALUE    override one config field on every\n"
"                     machine of every selected sweep\n"
"                     (repeatable; keys: --dump-schema). SM and\n"
"                     chip keys both work; chip keys accept a\n"
"                     dotted spelling (--set l2.slices=4)\n"
"  --dump-config      print the fully-resolved configuration\n"
"                     of every selected cell as JSON and exit\n"
"  --dump-schema      print the config field schema (keys,\n"
"                     types, defaults, docs) as JSON and exit\n"
"  --dry-run          expand and validate the selection, print\n"
"                     a summary, run nothing (CI spec gate)\n"
"\n"
"execution:\n"
"  -j, --jobs N       worker threads (default: all cores)\n"
"  --progress         per-cell progress lines on stderr\n"
"  --no-skip          step every cycle instead of event-driven\n"
"                     cycle skipping (bit-identical results;\n"
"                     the stepping-equivalence cross-check)\n"
"\n"
"result cache / remote execution (docs/SERVE.md):\n"
"  --cache DIR        read-through/write-through result cache:\n"
"                     cells already in DIR are served from it,\n"
"                     computed cells are stored into it (same\n"
"                     layout siwi-serve uses, so the cache is\n"
"                     shared in both directions)\n"
"  --submit HOST:PORT submit the --spec experiment to a running\n"
"                     siwi-serve and stream its results instead\n"
"                     of executing locally (requires --spec;\n"
"                     the spec is sent as-is, so selection,\n"
"                     --set, --size, --cache and --no-skip do\n"
"                     not apply)\n"
"\n"
"output:\n"
"  --json PATH        write results as JSON\n"
"  --csv PATH         write results as CSV\n"
"  --throughput-json PATH  write wall-clock / cells-per-second\n"
"                     of this run as JSON (perf trajectory)\n"
"  --quiet            suppress the result tables\n"
"  --list             print the selected cells and exit\n"
"  --list-suites      print known suites, figures, machines "
"and workloads\n"
"\n"
"regression gate:\n"
"  --baseline PATH    after running, compare against this "
"baseline\n"
"  --compare BASE CAND  compare two result files, do not run\n"
"  --tolerance PCT    relative IPC tolerance (default 2.0)\n"
"  --check PATH       load a result file (strict schema parse)\n"
"                     and gate on its health: every cell must\n"
"                     be verified, not timed out, and have\n"
"                     ipc > 0; do not run\n");
}

int
doCompare(const std::string &base_path,
          const std::string &cand_path, double tolerance)
{
    Results base, cand;
    std::string err;
    if (!Results::load(base_path, &base, &err) ||
        !Results::load(cand_path, &cand, &err)) {
        std::fprintf(stderr, "siwi-run: %s\n", err.c_str());
        return exit_io;
    }
    CompareReport rep = compareResults(base, cand, tolerance);
    std::fputs(rep.format().c_str(), stdout);
    return rep.pass() ? exit_ok : exit_regression;
}

int
doCheck(const std::string &path)
{
    // Results::load already refuses unknown schema versions and
    // malformed stats blocks; on top of that, gate on per-cell
    // health so CI smoke jobs fail loudly on a sick run.
    Results res;
    std::string err;
    if (!Results::load(path, &res, &err)) {
        std::fprintf(stderr, "siwi-run: %s\n", err.c_str());
        return exit_io;
    }
    size_t bad = 0;
    for (const CellResult &c : res.cells) {
        const char *why = nullptr;
        if (!c.verified)
            why = "failed verification";
        else if (c.timed_out)
            why = "timed out at the cycle cap";
        else if (!(c.ipc > 0.0))
            why = "has ipc <= 0";
        if (why) {
            ++bad;
            std::fprintf(stderr,
                         "siwi-run: --check %s: cell %s %s %s "
                         "%s\n",
                         path.c_str(), c.sweep.c_str(),
                         c.machine.c_str(), c.workload.c_str(),
                         why);
        }
    }
    if (bad) {
        std::fprintf(stderr,
                     "siwi-run: --check %s: %zu of %zu cell(s) "
                     "unhealthy\n",
                     path.c_str(), bad, res.cells.size());
        return exit_verify;
    }
    std::printf("check %s: %zu cell(s) healthy\n", path.c_str(),
                res.cells.size());
    return exit_ok;
}

/**
 * Shared tail of a completed run, local or submitted: tables,
 * artifact writes, the per-cell health gate and the baseline
 * regression gate. @p json_path is empty when the caller already
 * wrote the JSON artifact itself (the --submit path writes the
 * reassembled document verbatim).
 */
int
emitAndGate(const Results &res, bool quiet,
            const std::string &json_path,
            const std::string &csv_path,
            const std::string &baseline_path, double tolerance)
{
    if (!quiet) {
        for (const std::string &name : res.sweepNames()) {
            std::printf("\n=== %s ===\n", name.c_str());
            std::fputs(formatSweepTable(res, name).c_str(),
                       stdout);
        }
    }

    std::string err;
    if (!json_path.empty() && !res.save(json_path, &err)) {
        std::fprintf(stderr, "siwi-run: %s\n", err.c_str());
        return exit_io;
    }
    if (!csv_path.empty()) {
        std::FILE *f = std::fopen(csv_path.c_str(), "wb");
        if (!f) {
            std::fprintf(stderr, "siwi-run: cannot write %s\n",
                         csv_path.c_str());
            return exit_io;
        }
        std::string csv = res.toCsv();
        size_t written =
            std::fwrite(csv.data(), 1, csv.size(), f);
        if (std::fclose(f) != 0 || written != csv.size()) {
            std::fprintf(stderr, "siwi-run: write error on %s\n",
                         csv_path.c_str());
            return exit_io;
        }
    }

    if (res.verificationFailures()) {
        std::fprintf(stderr,
                     "siwi-run: %zu cell(s) failed verification\n",
                     res.verificationFailures());
        return exit_verify;
    }
    if (res.timeouts()) {
        std::fprintf(
            stderr,
            "siwi-run: %zu cell(s) timed out at the cycle cap "
            "(IPC not meaningful)\n",
            res.timeouts());
        return exit_verify;
    }

    if (!baseline_path.empty()) {
        Results base;
        if (!Results::load(baseline_path, &base, &err)) {
            std::fprintf(stderr, "siwi-run: %s\n", err.c_str());
            return exit_io;
        }
        CompareReport rep = compareResults(base, res, tolerance);
        std::fputs(rep.format().c_str(), stdout);
        if (!rep.pass())
            return exit_regression;
    }
    return exit_ok;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgList args(argc, argv);

    if (args.flag("--help") || args.flag("-h")) {
        usage(stdout);
        return exit_ok;
    }
    if (args.flag("--dump-schema")) {
        // Self-describing schema of the config field tables; the
        // reference tables in docs/CONFIG.md are generated from
        // this dump.
        Json j = Json::object();
        j.set("sm", pipeline::smConfigSchema());
        j.set("chip", core::gpuConfigSchema());
        std::fputs((j.dump(2) + "\n").c_str(), stdout);
        return exit_ok;
    }
    if (args.flag("--list-suites")) {
        std::printf("suites:");
        for (const std::string &s : knownSuites())
            std::printf(" %s", s.c_str());
        std::printf("\nfigures:");
        for (const std::string &f : knownFigures())
            std::printf(" %s", f.c_str());
        std::printf("\nmachines:");
        std::vector<std::string> machines;
        for (const std::string &f : knownFigures()) {
            for (const SweepSpec &s : figureSweeps(
                     f, workloads::SizeClass::Tiny)) {
                for (const MachineSpec &m : s.machines) {
                    if (std::find(machines.begin(),
                                  machines.end(),
                                  m.name) == machines.end())
                        machines.push_back(m.name);
                }
            }
        }
        for (const std::string &m : machines)
            std::printf(" %s", m.c_str());
        std::printf("\nworkloads:");
        for (const workloads::Workload *w :
             workloads::allWorkloads())
            std::printf(" %s", w->name());
        std::printf("\npolicies:");
        for (const frontend::PolicyEntry &p :
             frontend::policyRegistry())
            std::printf(" %s", p.name);
        std::printf("\n");
        return exit_ok;
    }

    double tolerance_pct = 2.0;
    args.doubleOption("--tolerance", &tolerance_pct);
    // Non-finite values would make every gate comparison false
    // (an unconditional PASS), so reject them with the negatives.
    bool bad_tolerance =
        !std::isfinite(tolerance_pct) || tolerance_pct < 0.0;
    if (!args.errors().empty() || bad_tolerance) {
        for (const std::string &e : args.errors())
            std::fprintf(stderr, "siwi-run: %s\n", e.c_str());
        if (bad_tolerance)
            std::fprintf(stderr,
                         "siwi-run: --tolerance must be a finite "
                         "value >= 0\n");
        return exit_usage;
    }
    double tolerance = tolerance_pct / 100.0;

    // Pure comparison mode: --compare BASE CAND.
    std::string compare_base;
    if (args.option("--compare", &compare_base)) {
        if (args.remaining().size() != 1) {
            std::fprintf(stderr,
                         "siwi-run: --compare takes exactly two "
                         "files\n");
            return exit_usage;
        }
        return doCompare(compare_base, args.remaining()[0],
                         tolerance);
    }

    // Pure health-gate mode: --check PATH.
    std::string check_path;
    if (args.option("--check", &check_path)) {
        if (!finishArgs(args, "siwi-run")) {
            usage(stderr);
            return exit_usage;
        }
        return doCheck(check_path);
    }

    std::string suite = "fast";
    bool have_suite = args.option("--suite", &suite);
    std::vector<std::string> figures = args.options("--figure");
    std::string spec_path;
    bool have_spec = args.option("--spec", &spec_path);
    std::vector<std::string> machine_files =
        args.options("--machine-file");
    std::vector<std::string> set_kvs = args.options("--set");
    bool dump_config = args.flag("--dump-config");
    bool dry_run = args.flag("--dry-run");
    std::string size_str;
    bool have_size = args.option("--size", &size_str);
    std::vector<std::string> machines = args.options("--machine");
    std::vector<std::string> wl_names = args.options("--workload");
    std::vector<unsigned> sms_axis;
    if (!smsAxisOption(args, "siwi-run", &sms_axis))
        return exit_usage;
    std::vector<frontend::SchedPolicyKind> policy_axis;
    for (const std::string &p : args.options("--policy")) {
        frontend::SchedPolicyKind kind;
        if (!frontend::parseSchedPolicy(p, &kind)) {
            std::fprintf(stderr, "siwi-run: bad --policy: %s\n",
                         p.c_str());
            return exit_usage;
        }
        policy_axis.push_back(kind);
    }
    unsigned jobs = 0;
    if (!args.intOption("--jobs", &jobs))
        args.intOption("-j", &jobs);
    bool progress = args.flag("--progress");
    bool no_skip = args.flag("--no-skip");
    bool quiet = args.flag("--quiet");
    bool list_only = args.flag("--list");
    std::string json_path, csv_path, baseline_path;
    std::string throughput_path;
    args.option("--json", &json_path);
    args.option("--csv", &csv_path);
    args.option("--baseline", &baseline_path);
    args.option("--throughput-json", &throughput_path);
    std::string cache_dir;
    args.option("--cache", &cache_dir);
    std::string submit_arg;
    bool have_submit = args.option("--submit", &submit_arg);

    if (!finishArgs(args, "siwi-run")) {
        usage(stderr);
        return exit_usage;
    }

    if (have_submit) {
        // Client mode: the spec document is sent as-is and the
        // server resolves it, so every local selection / mutation
        // flag would be silently ignored — reject them instead.
        if (!have_spec) {
            std::fprintf(stderr,
                         "siwi-run: --submit requires --spec\n");
            return exit_usage;
        }
        if (have_suite || !figures.empty() ||
            !machine_files.empty() || !set_kvs.empty() ||
            !machines.empty() || !wl_names.empty() ||
            !sms_axis.empty() || !policy_axis.empty() ||
            have_size || dump_config || dry_run || list_only ||
            no_skip || !cache_dir.empty()) {
            std::fprintf(
                stderr,
                "siwi-run: --submit sends the spec as-is; "
                "selection, --set, --size, --cache and --no-skip "
                "do not apply\n");
            return exit_usage;
        }
        std::string host, serr;
        unsigned port = 0;
        if (!serve::parseHostPort(submit_arg, &host, &port,
                                  &serr)) {
            std::fprintf(stderr, "siwi-run: --submit: %s\n",
                         serr.c_str());
            return exit_usage;
        }
        Json spec = Json::parseFile(spec_path, &serr);
        if (!serr.empty()) {
            std::fprintf(stderr, "siwi-run: %s\n", serr.c_str());
            return exit_io;
        }
        serve::SubmitProgress prog;
        if (progress) {
            prog = [](size_t done, size_t total,
                      const CellResult &c, bool cached) {
                std::fprintf(
                    stderr, "[%zu/%zu] %s %s %s  ipc %.2f%s%s%s\n",
                    done, total, c.sweep.c_str(),
                    c.machine.c_str(), c.workload.c_str(), c.ipc,
                    cached ? "  (cached)" : "",
                    c.verified ? "" : "  VERIFY FAIL",
                    c.timed_out ? "  TIMED OUT" : "");
            };
        }
        serve::SubmitOutcome o;
        if (!serve::submitSpec(host, port, spec, &o, &serr,
                               prog)) {
            std::fprintf(stderr, "siwi-run: %s\n", serr.c_str());
            return exit_io;
        }
        std::fprintf(
            stderr,
            "siwi-run: %llu cell(s) via %s:%u: %llu from cache, "
            "%llu computed, server %llu ms\n",
            (unsigned long long)o.cells, host.c_str(), port,
            (unsigned long long)o.hits,
            (unsigned long long)o.misses,
            (unsigned long long)o.server_ms);
        if (!json_path.empty() &&
            !o.document.writeFile(json_path, 2, &serr)) {
            std::fprintf(stderr, "siwi-run: %s\n", serr.c_str());
            return exit_io;
        }
        // The document is already written: byte-identical to a
        // local run of the same spec (serve/client.hh).
        return emitAndGate(o.results, quiet, "", csv_path,
                           baseline_path, tolerance);
    }

    // Resolve machine names against the registry: the built-in
    // paper machines plus any --machine-file machines, loaded in
    // order so a later file may base itself on an earlier one.
    MachineRegistry registry;
    std::vector<std::string> added_machines;
    for (const std::string &path : machine_files) {
        MachineSpec m;
        std::string merr;
        if (!loadMachineFile(path, registry, &m, &merr) ||
            !registry.add(m, &merr)) {
            std::fprintf(stderr, "siwi-run: %s\n", merr.c_str());
            return exit_usage;
        }
        added_machines.push_back(m.name);
    }

    // Build the sweep list.
    std::vector<SweepSpec> sweeps;
    std::string label;
    if (have_spec) {
        if (have_suite || !figures.empty()) {
            std::fprintf(stderr,
                         "siwi-run: --spec excludes --suite and "
                         "--figure\n");
            return exit_usage;
        }
        std::string serr;
        if (!loadSpecFile(spec_path, &registry, &sweeps, &label,
                          &serr)) {
            std::fprintf(stderr, "siwi-run: %s\n", serr.c_str());
            return exit_usage;
        }
    } else if (!figures.empty()) {
        // Figures default to Full size; the --size override below
        // applies to these sweeps like any others. Dedup repeats:
        // duplicate sweep names would corrupt the result tables.
        std::vector<std::string> seen;
        std::erase_if(figures, [&](const std::string &f) {
            if (std::find(seen.begin(), seen.end(), f) !=
                seen.end())
                return true;
            seen.push_back(f);
            return false;
        });
        for (const std::string &f : figures) {
            // The scaling figure needs chip-size grids (Full is
            // sized for one SM); paper figures default to Full.
            // An explicit --size below still overrides either.
            std::vector<SweepSpec> fs = figureSweeps(
                f, f == "scaling" ? workloads::SizeClass::Chip
                                  : workloads::SizeClass::Full);
            if (fs.empty()) {
                std::fprintf(stderr,
                             "siwi-run: unknown figure: %s\n",
                             f.c_str());
                return exit_usage;
            }
            for (SweepSpec &s : fs)
                sweeps.push_back(std::move(s));
            label += (label.empty() ? "" : ",") + f;
        }
    } else {
        sweeps = suiteSweeps(suite);
        if (sweeps.empty()) {
            std::fprintf(stderr, "siwi-run: unknown suite: %s\n",
                         suite.c_str());
            return exit_usage;
        }
        label = suite;
    }
    if (have_size) {
        workloads::SizeClass sz;
        if (size_str == "tiny") {
            sz = workloads::SizeClass::Tiny;
        } else if (size_str == "full") {
            sz = workloads::SizeClass::Full;
        } else if (size_str == "chip") {
            sz = workloads::SizeClass::Chip;
        } else {
            std::fprintf(stderr, "siwi-run: bad --size: %s\n",
                         size_str.c_str());
            return exit_usage;
        }
        for (SweepSpec &s : sweeps)
            s.size = sz;
    }
    // A --machine-file machine joins every selected sweep as an
    // extra column (combine with --machine to keep only it).
    for (SweepSpec &s : sweeps) {
        for (const std::string &name : added_machines) {
            bool clash = false;
            for (const MachineSpec &m : s.machines)
                clash = clash || m.name == name;
            if (clash) {
                std::fprintf(stderr,
                             "siwi-run: machine '%s' already in "
                             "sweep '%s'\n",
                             name.c_str(), s.name.c_str());
                return exit_usage;
            }
            s.machines.push_back(*registry.find(name));
        }
    }
    for (SweepSpec &s : sweeps) {
        s.filterMachines(machines);
        s.filterWorkloads(wl_names);
        if (!sms_axis.empty())
            s.sms = sms_axis;
        if (!policy_axis.empty())
            s.policies = policy_axis;
    }
    // --set mutations apply to every machine of every selected
    // sweep, through the same field table as spec files; the
    // result must still satisfy the config invariants.
    for (const std::string &kv : set_kvs) {
        if (kv.starts_with("mode=")) {
            std::fprintf(stderr,
                         "siwi-run: --set mode is fixed by the "
                         "base machine (use --machine or a "
                         "machine file instead)\n");
            return exit_usage;
        }
    }
    for (SweepSpec &s : sweeps) {
        for (MachineSpec &m : s.machines) {
            for (const std::string &kv : set_kvs) {
                // SM keys mutate the machine config; chip keys
                // (l2_slices, dram_channels, noc_*, ...) are
                // recorded for application on the resolved chip.
                std::string serr;
                if (!machineApplyKeyValue(&m, kv, &serr)) {
                    std::fprintf(stderr,
                                 "siwi-run: --set %s: %s\n",
                                 kv.c_str(), serr.c_str());
                    return exit_usage;
                }
            }
            std::string inv = m.config.checkInvariants();
            if (!inv.empty()) {
                std::fprintf(
                    stderr,
                    "siwi-run: machine '%s' in sweep '%s': %s\n",
                    m.name.c_str(), s.name.c_str(), inv.c_str());
                return exit_usage;
            }
        }
        // Identical columns never run twice; warn here so --list
        // and --dump-config show what will actually execute.
        s.dedupeMachines();
        std::string axes = s.checkAxes();
        if (!axes.empty()) {
            std::fprintf(stderr, "siwi-run: %s\n", axes.c_str());
            return exit_usage;
        }
        // Chip invariants (slice/channel topology vs cache
        // geometry) only materialize on the resolved per-cell
        // chip, after GpuConfig::make() and chip_sets.
        std::string chips = checkResolvedConfigs(s);
        if (!chips.empty()) {
            std::fprintf(stderr, "siwi-run: %s\n", chips.c_str());
            return exit_usage;
        }
    }
    std::erase_if(sweeps, [](const SweepSpec &s) {
        return s.cellCount() == 0;
    });
    if (sweeps.empty()) {
        std::fprintf(stderr,
                     "siwi-run: selection matches no cells\n");
        return exit_usage;
    }

    if (dump_config) {
        // The same resolved-config blocks a run would embed into
        // its results artifact (narrow with --machine/--workload
        // etc. to inspect a single cell).
        Json j = Json::object();
        j.set("machines", machinesToJson(machineRecords(sweeps)));
        std::fputs((j.dump(2) + "\n").c_str(), stdout);
        return exit_ok;
    }

    if (dry_run) {
        // Everything above already expanded machines, resolved
        // spec/machine files and validated invariants — report
        // and stop. CI runs this over every checked-in spec.
        size_t cells = 0;
        for (const SweepSpec &s : sweeps) {
            std::printf("%-16s %zu machine(s) x %zu workload(s)"
                        " x %zu sm-count(s) x %zu policy(ies) = "
                        "%zu cells (%s)\n",
                        s.name.c_str(), s.machines.size(),
                        s.wls.size(), s.sms.size(),
                        s.policies.size(), s.cellCount(),
                        sizeClassName(s.size));
            cells += s.cellCount();
        }
        std::printf("dry run: %zu cell(s) in %zu sweep(s), "
                    "configuration OK\n",
                    cells, sweeps.size());
        return exit_ok;
    }

    if (list_only) {
        for (const CellSpec &c : expandCells(sweeps)) {
            const SweepSpec &s = sweeps[c.sweep];
            std::printf(
                "%s %s %s %s %usm %s\n", s.name.c_str(),
                s.machines[c.machine].name.c_str(),
                s.wls[c.wl]->name(), sizeClassName(s.size),
                s.smsAt(c.sms),
                frontend::schedPolicyName(
                    effectivePolicy(s, c.machine, c.policy)));
        }
        return exit_ok;
    }

    RunOptions opts;
    opts.jobs = jobs;
    opts.progress = progress;
    opts.suite_label = label;
    opts.cycle_skip = !no_skip;

    size_t total = 0;
    for (const SweepSpec &s : sweeps)
        total += s.cellCount();
    serve::ResultCache cache;
    if (!cache_dir.empty()) {
        std::string cerr_;
        if (!cache.open(cache_dir, 0, &cerr_)) {
            std::fprintf(stderr, "siwi-run: %s\n", cerr_.c_str());
            return exit_io;
        }
    }
    serve::CachedRunCounters cc;
    auto t0 = std::chrono::steady_clock::now();
    Results res =
        cache_dir.empty()
            ? runSweeps(sweeps, opts)
            : serve::runSweepsCached(sweeps, opts, &cache, &cc);
    auto t1 = std::chrono::steady_clock::now();
    double secs =
        std::chrono::duration<double>(t1 - t0).count();
    std::fprintf(stderr,
                 "siwi-run: %zu cells on %u thread(s) in %.2fs\n",
                 total, effectiveJobs(jobs, total), secs);
    if (!cache_dir.empty())
        std::fprintf(stderr,
                     "siwi-run: cache %s: %llu hit(s), %llu "
                     "computed\n",
                     cache_dir.c_str(),
                     (unsigned long long)cc.hits,
                     (unsigned long long)cc.misses);

    if (!throughput_path.empty()) {
        // The perf-trajectory record CI uploads as an artifact:
        // wall-clock of the whole sweep, in cells per second.
        Json tj = Json::object();
        tj.set("suite", Json(label));
        tj.set("cells", Json(u64(total)));
        tj.set("jobs", Json(u64(effectiveJobs(jobs, total))));
        tj.set("cycle_skip", Json(!no_skip));
        tj.set("seconds", Json(secs));
        tj.set("cells_per_sec",
               Json(secs > 0.0 ? double(total) / secs : 0.0));
        if (!cache_dir.empty()) {
            tj.set("cache_hits", Json(cc.hits));
            tj.set("cache_misses", Json(cc.misses));
        }
        std::string terr;
        if (!tj.writeFile(throughput_path, 2, &terr)) {
            std::fprintf(stderr, "siwi-run: %s\n", terr.c_str());
            return exit_io;
        }
    }

    return emitAndGate(res, quiet, json_path, csv_path,
                       baseline_path, tolerance);
}
