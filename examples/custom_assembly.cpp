/**
 * @file
 * Authoring kernels in assembly text: assemble a hand-written
 * reduction kernel, compile it, run it, and read back the result.
 */

#include <cstdio>

#include "core/siwi.hh"

using namespace siwi;

namespace {

// Per-thread serial reduction over a strided slice, then a store;
// data-dependent early exit shows conditional branches in assembly.
const char *source = R"(
.kernel strided_sum
    s2r r0, %gtid
    s2r r1, %nctaid
    ; base address of this thread's slice
    shl r2, r0, #4        ; 4 words per thread
    shl r2, r2, #2
    iadd r2, r2, #0x10000
    movi r3, #0           ; accumulator
    movi r4, #0           ; i = 0
top:
    ld r5, [r2]
    iadd r3, r3, r5
    ; early exit when a zero sentinel is found
    bz r5, store
    iadd r2, r2, #4
    iadd r4, r4, #1
    isetlt r6, r4, #16
    bnz r6, top
store:
    shl r7, r0, #2
    iadd r7, r7, #0x40000
    st [r7+0], r3
    exit
)";

} // namespace

int
main()
{
    auto asm_result = isa::assemble(source);
    if (!asm_result.ok()) {
        std::fprintf(stderr, "assembly error: %s\n",
                     asm_result.error.c_str());
        return 1;
    }
    core::Kernel kernel = core::Kernel::compile(asm_result.program);
    std::printf("assembled + compiled %s: %u instructions, "
                "%u sync points\n",
                kernel.name().c_str(), kernel.program().size(),
                kernel.syncStats().sync_points);

    const unsigned threads = 256;
    core::Gpu gpu(
        pipeline::SMConfig::make(pipeline::PipelineMode::SBI));
    Rng rng(3);
    std::vector<u32> expected(threads, 0);
    for (unsigned t = 0; t < threads; ++t) {
        bool cut = false;
        for (unsigned i = 0; i < 16; ++i) {
            // Sprinkle zero sentinels to trigger the early exit.
            u32 v = rng.below(10) == 0 ? 0 : u32(rng.below(100));
            gpu.memory().write32(0x10000 + Addr(t * 16 + i) * 4, v);
            if (!cut) {
                expected[t] += v;
                if (v == 0)
                    cut = true;
            }
        }
    }

    core::LaunchConfig lc;
    lc.grid_blocks = 1;
    lc.block_threads = threads;
    core::SimStats st = gpu.launch(kernel, lc);

    unsigned bad = 0;
    for (unsigned t = 0; t < threads; ++t) {
        if (gpu.memory().read32(0x40000 + Addr(t) * 4) !=
            expected[t])
            ++bad;
    }
    std::printf("ran %llu cycles, IPC %.1f, %llu divergences; "
                "%u/%u results correct\n",
                (unsigned long long)st.cycles, st.ipc(),
                (unsigned long long)st.branch_divergences,
                threads - bad, threads);
    return bad == 0 ? 0 : 1;
}
