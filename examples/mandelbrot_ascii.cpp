/**
 * @file
 * Mandelbrot on the simulated GPU, rendered as ASCII art.
 *
 * Demonstrates escape-time divergence: threads in the set iterate
 * to the cap, neighbors escape early. Also shows the paper's
 * observation that the per-row block barrier prevents warp-splits
 * from running ahead across rows (compare split counts with the
 * barrier removed).
 */

#include <cstdio>

#include "core/siwi.hh"

using namespace siwi;
using pipeline::PipelineMode;

namespace {

constexpr unsigned width = 96;
constexpr unsigned rows = 24;
constexpr unsigned max_iter = 24;
constexpr Addr out = 0x400000;

isa::Program
mandelKernel(bool with_barrier)
{
    isa::KernelBuilder b("mandel");
    using isa::Imm;
    isa::Reg tid = b.reg(), cre = b.reg(), t = b.reg();
    b.s2r(tid, isa::SpecialReg::TID);
    b.i2f(cre, tid);
    b.fmovi(t, 3.2f / float(width));
    b.fmul(cre, cre, t);
    b.fmovi(t, -2.3f);
    b.fadd(cre, cre, t);

    isa::Reg row = b.reg(), rcond = b.reg();
    b.movi(row, 0);
    b.loop();
    {
        isa::Reg cim = b.reg();
        b.i2f(cim, row);
        b.fmovi(t, 2.2f / float(rows));
        b.fmul(cim, cim, t);
        b.fmovi(t, -1.1f);
        b.fadd(cim, cim, t);

        isa::Reg zr = b.reg(), zi = b.reg(), it = b.reg(),
                 icond = b.reg(), zr2 = b.reg(), zi2 = b.reg(),
                 mag = b.reg(), esc = b.reg(), tmp = b.reg(),
                 four = b.reg(), two = b.reg();
        b.fmovi(zr, 0.0f);
        b.fmovi(zi, 0.0f);
        b.fmovi(four, 4.0f);
        b.fmovi(two, 2.0f);
        b.movi(it, 0);
        b.loop();
        {
            b.fmul(zr2, zr, zr);
            b.fmul(zi2, zi, zi);
            b.fadd(mag, zr2, zi2);
            b.fsetgt(esc, mag, four);
            b.breakIf(esc);
            b.fmul(tmp, zr, zi);
            b.fsub(zr, zr2, zi2);
            b.fadd(zr, zr, cre);
            b.fmad(zi, tmp, two, cim);
            b.iadd(it, it, Imm(1));
            b.isetlt(icond, it, Imm(i32(max_iter)));
        }
        b.endLoopIf(icond);

        isa::Reg idx = b.reg(), oaddr = b.reg();
        b.imul(idx, row, Imm(i32(width)));
        b.iadd(idx, idx, tid);
        b.shl(oaddr, idx, Imm(2));
        b.iadd(oaddr, oaddr, Imm(i32(out)));
        b.st(oaddr, 0, it);
        if (with_barrier)
            b.bar();
        b.iadd(row, row, Imm(1));
        b.isetlt(rcond, row, Imm(i32(rows)));
    }
    b.endLoopIf(rcond);
    return b.build();
}

} // namespace

int
main()
{
    core::Gpu gpu(pipeline::SMConfig::make(PipelineMode::SBISWI));
    core::Kernel k = core::Kernel::compile(mandelKernel(true));
    core::LaunchConfig lc;
    lc.grid_blocks = 1;
    lc.block_threads = width;
    core::SimStats st = gpu.launch(k, lc);

    const char *shades = " .:-=+*#%@";
    for (unsigned r = 0; r < rows; ++r) {
        for (unsigned x = 0; x < width; ++x) {
            u32 it = gpu.memory().read32(
                out + Addr(r * width + x) * 4);
            unsigned shade = it * 9 / max_iter;
            std::putchar(it >= max_iter ? '@' : shades[shade]);
        }
        std::putchar('\n');
    }
    std::printf("\nSBI+SWI: %llu cycles, IPC %.1f, %llu warp "
                "splits, %llu merges, %llu barrier releases\n",
                (unsigned long long)st.cycles, st.ipc(),
                (unsigned long long)st.warp_splits,
                (unsigned long long)st.merges,
                (unsigned long long)st.barrier_releases);

    // The paper notes Mandelbrot's block barrier keeps warp-splits
    // from running ahead across rows; compare without it.
    core::Gpu gpu2(pipeline::SMConfig::make(PipelineMode::SBISWI));
    core::Kernel k2 = core::Kernel::compile(mandelKernel(false));
    core::SimStats st2 = gpu2.launch(k2, lc);
    std::printf("without the row barrier: %llu cycles, IPC %.1f, "
                "%llu splits\n",
                (unsigned long long)st2.cycles, st2.ipc(),
                (unsigned long long)st2.warp_splits);
    return 0;
}
