/**
 * @file
 * BFS on the simulated GPU: runs the level-synchronous BFS workload
 * on every pipeline configuration, prints the level histogram and
 * the divergence statistics that explain why interweaving helps.
 */

#include <cstdio>
#include <map>

#include "core/siwi.hh"

using namespace siwi;
using pipeline::PipelineMode;

int
main()
{
    const workloads::Workload *bfs = workloads::findWorkload("BFS");

    std::printf("BFS, 1024 nodes, data-dependent degrees "
                "(frontier expansion = unbalanced if).\n\n");
    std::printf("%-9s %8s %6s %8s %9s %8s %9s\n", "config",
                "cycles", "IPC", "splits", "merges", "l1hit%",
                "verified");

    double base_cycles = 0;
    for (PipelineMode m :
         {PipelineMode::Baseline, PipelineMode::Warp64,
          PipelineMode::SBI, PipelineMode::SWI,
          PipelineMode::SBISWI}) {
        auto res = workloads::runWorkload(
            *bfs, pipeline::SMConfig::make(m),
            workloads::SizeClass::Full);
        if (m == PipelineMode::Baseline)
            base_cycles = double(res.stats.cycles);
        std::printf("%-9s %8llu %6.2f %8llu %9llu %7.1f%% %9s"
                    "   (%.2fx)\n",
                    pipelineModeName(m),
                    (unsigned long long)res.stats.cycles,
                    res.stats.ipc(),
                    (unsigned long long)res.stats.warp_splits,
                    (unsigned long long)res.stats.merges,
                    100.0 * res.stats.l1HitRate(),
                    res.verified ? "yes" : "NO",
                    base_cycles / double(res.stats.cycles));
    }

    // Show the BFS result itself: level histogram.
    core::Gpu gpu(pipeline::SMConfig::make(PipelineMode::SBISWI));
    auto inst = bfs->instance(workloads::SizeClass::Full);
    bfs->init(gpu.memory(), workloads::SizeClass::Full);
    core::Kernel k = core::Kernel::compile(inst.raw, inst.compile);
    core::LaunchConfig lc;
    lc.grid_blocks = inst.grid_blocks;
    lc.block_threads = inst.block_threads;
    gpu.launch(k, lc);

    std::map<i32, unsigned> hist;
    for (unsigned i = 0; i < 1024; ++i)
        hist[i32(gpu.memory().read32(0x0400000 + Addr(i) * 4))]++;
    std::printf("\nBFS level histogram (level: nodes):\n");
    for (auto [level, count] : hist)
        std::printf("  %2d: %u\n", level, count);
    return 0;
}
