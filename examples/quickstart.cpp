/**
 * @file
 * Quickstart: build a kernel with the KernelBuilder, compile it,
 * run it on two SM configurations, verify the result, and compare
 * performance.
 *
 * The kernel is a divergent SAXPY: odd threads scale by 2a, even
 * threads by a -- a balanced if/else that SBI accelerates.
 */

#include <cstdio>

#include "core/siwi.hh"

using namespace siwi;

int
main()
{
    // ---- 1. Author a kernel ------------------------------------
    isa::KernelBuilder b("divergent_saxpy");
    isa::Reg gtid = b.reg(), x = b.reg(), y = b.reg(),
             a = b.reg(), odd = b.reg(), xa = b.reg(),
             ya = b.reg();
    b.s2r(gtid, isa::SpecialReg::GTID);
    b.shl(xa, gtid, isa::Imm(2));
    b.iadd(ya, xa, isa::Imm(0x20000));
    b.iadd(xa, xa, isa::Imm(0x10000));
    b.ld(x, xa);
    b.ld(y, ya);
    b.and_(odd, gtid, isa::Imm(1));
    b.fmovi(a, 1.5f);
    b.if_(odd);
    {
        b.fadd(a, a, a); // odd threads: 2a
        b.fmad(y, a, x, y);
    }
    b.else_();
    {
        b.fmad(y, a, x, y);
    }
    b.endIf();
    b.st(ya, 0, y);

    // ---- 2. Compile (thread-frontier layout + SYNC markers) ----
    core::Kernel kernel = core::Kernel::compile(b.build());
    std::printf("compiled %u instructions, %u sync points\n\n%s\n",
                kernel.program().size(),
                kernel.syncStats().sync_points,
                kernel.program().disassemble().c_str());

    // ---- 3. Run on the baseline and on SBI+SWI -----------------
    const unsigned n = 4096;
    for (auto mode : {pipeline::PipelineMode::Baseline,
                      pipeline::PipelineMode::SBISWI}) {
        core::Gpu gpu(pipeline::SMConfig::make(mode));
        for (unsigned i = 0; i < n; ++i) {
            gpu.memory().writeF32(0x10000 + Addr(i) * 4, float(i));
            gpu.memory().writeF32(0x20000 + Addr(i) * 4, 1.0f);
        }
        core::LaunchConfig lc;
        lc.grid_blocks = n / 1024;
        lc.block_threads = 1024;
        core::SimStats st = gpu.launch(kernel, lc);

        // ---- 4. Verify ------------------------------------------
        unsigned errors = 0;
        for (unsigned i = 0; i < n; ++i) {
            float af = (i & 1) ? 3.0f : 1.5f;
            float want = af * float(i) + 1.0f;
            float got = gpu.memory().readF32(0x20000 + Addr(i) * 4);
            if (want != got)
                ++errors;
        }
        std::printf("%-9s: %6llu cycles, IPC %5.1f, verified: %s\n",
                    pipeline::pipelineModeName(mode),
                    (unsigned long long)st.cycles, st.ipc(),
                    errors == 0 ? "yes" : "NO");
    }
    return 0;
}
