/**
 * @file
 * Pipeline visualization: renders per-cycle execution-unit
 * occupancy as an ASCII timeline for a divergent kernel, showing
 * how SBI fills idle lanes with the other branch path and SWI with
 * other warps (the intuition of the paper's Figure 2).
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "core/siwi.hh"

using namespace siwi;
using pipeline::PipelineMode;

namespace {

isa::Program
kernel()
{
    isa::KernelBuilder b("viz");
    isa::Reg tid = b.reg(), c = b.reg(), v = b.reg();
    b.s2r(tid, isa::SpecialReg::TID);
    b.and_(c, tid, isa::Imm(1));
    b.if_(c);
    for (int i = 0; i < 6; ++i)
        b.iadd(v, v, isa::Imm(1));
    b.else_();
    for (int i = 0; i < 6; ++i)
        b.isub(v, v, isa::Imm(1));
    b.endIf();
    b.iadd(v, v, isa::Imm(9));
    return b.build();
}

void
show(PipelineMode mode)
{
    auto cfg = pipeline::SMConfig::make(mode);
    core::Kernel k = core::Kernel::compile(kernel());

    mem::MemoryImage memimg;
    pipeline::SM sm(cfg, memimg);
    struct Ev
    {
        Cycle cycle;
        WarpId warp;
        unsigned filled;
        bool secondary;
    };
    std::vector<Ev> evs;
    sm.setTraceHook([&](const pipeline::IssueEvent &e) {
        evs.push_back(
            {e.cycle, e.warp, e.mask.count(), e.secondary});
    });
    sm.launch(k.program(), 2, cfg.warp_width);
    auto st = sm.run(100000);

    std::printf("\n=== %s: %llu cycles, IPC %.1f ===\n",
                pipelineModeName(mode),
                (unsigned long long)st.cycles, st.ipc());
    std::printf("issue timeline (one char per issue: "
                "P=primary, s=secondary; width = active lanes)\n");
    Cycle first = evs.empty() ? 0 : evs.front().cycle;
    std::map<Cycle, std::string> lines;
    for (const Ev &e : evs) {
        char tag = e.secondary ? 's' : 'P';
        char buf[64];
        std::snprintf(buf, sizeof buf, " [w%u %c x%u]",
                      unsigned(e.warp), tag, e.filled);
        lines[e.cycle] += buf;
    }
    for (auto &[cycle, text] : lines) {
        std::printf("  cyc %3llu:%s\n",
                    (unsigned long long)(cycle - first),
                    text.c_str());
    }
}

} // namespace

int
main()
{
    std::printf("Divergent if/else on 2 warps: watch the secondary "
                "scheduler fill idle lanes.\n");
    show(PipelineMode::Baseline);
    show(PipelineMode::SBI);
    show(PipelineMode::SBISWI);
    return 0;
}
