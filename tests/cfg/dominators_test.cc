/**
 * @file
 * Dominator / post-dominator tests on known control-flow shapes.
 */

#include <gtest/gtest.h>

#include "cfg/dominators.hh"
#include "isa/builder.hh"

namespace siwi::cfg {
namespace {

using isa::Imm;
using isa::KernelBuilder;
using isa::Reg;

/** Diamond: entry -> {then, else} -> join -> exit */
isa::Program
diamond()
{
    KernelBuilder b("d");
    Reg c = b.reg(), v = b.reg();
    b.movi(c, 1);
    b.if_(c);
    b.movi(v, 1);
    b.else_();
    b.movi(v, 2);
    b.endIf();
    b.movi(v, 3);
    return b.build();
}

TEST(Dominators, Diamond)
{
    Cfg cfg = Cfg::fromProgram(diamond());
    DominatorTree dom = DominatorTree::dominators(cfg);
    // entry=0, then=1, else=2, join=3
    EXPECT_EQ(dom.idom(1), 0u);
    EXPECT_EQ(dom.idom(2), 0u);
    EXPECT_EQ(dom.idom(3), 0u);
    EXPECT_TRUE(dom.dominates(0, 3));
    EXPECT_FALSE(dom.dominates(1, 3));
    EXPECT_TRUE(dom.dominates(3, 3));
}

TEST(Dominators, PostDiamond)
{
    Cfg cfg = Cfg::fromProgram(diamond());
    DominatorTree pdom = DominatorTree::postDominators(cfg);
    // join post-dominates everything.
    EXPECT_EQ(pdom.idom(0), 3u);
    EXPECT_EQ(pdom.idom(1), 3u);
    EXPECT_EQ(pdom.idom(2), 3u);
    EXPECT_TRUE(pdom.dominates(3, 0));
}

TEST(Dominators, NestedIf)
{
    KernelBuilder b("nested");
    Reg c1 = b.reg(), c2 = b.reg(), v = b.reg();
    b.if_(c1);
    {
        b.if_(c2);
        b.movi(v, 1);
        b.else_();
        b.movi(v, 2);
        b.endIf();
        b.movi(v, 3); // inner join
    }
    b.else_();
    b.movi(v, 4);
    b.endIf();
    b.movi(v, 5); // outer join
    isa::Program p = b.build();
    Cfg cfg = Cfg::fromProgram(p);
    DominatorTree dom = DominatorTree::dominators(cfg);
    DominatorTree pdom = DominatorTree::postDominators(cfg);

    // Find the two conditional-branch blocks.
    std::vector<u32> branch_blocks;
    for (u32 i = 0; i < cfg.numBlocks(); ++i) {
        const auto &bb = cfg.block(i);
        if (!bb.insts.empty() &&
            isa::isCondBranch(bb.insts.back().op)) {
            branch_blocks.push_back(i);
        }
    }
    ASSERT_EQ(branch_blocks.size(), 2u);
    u32 outer = branch_blocks[0], inner = branch_blocks[1];
    u32 inner_join = pdom.idom(inner);
    u32 outer_join = pdom.idom(outer);
    ASSERT_NE(inner_join, no_block);
    ASSERT_NE(outer_join, no_block);
    EXPECT_NE(inner_join, outer_join);
    // The inner join's immediate dominator is the inner branch
    // block (the paper's PCdiv choice).
    EXPECT_EQ(dom.idom(inner_join), inner);
    // Outer join post-dominates the inner join.
    EXPECT_TRUE(pdom.dominates(outer_join, inner_join));
}

TEST(Dominators, LoopExitPostDominates)
{
    KernelBuilder b("loop");
    Reg i = b.reg(), c = b.reg();
    b.movi(i, 0);
    b.loop();
    b.iadd(i, i, Imm(1));
    b.isetlt(c, i, Imm(4));
    b.endLoopIf(c);
    b.movi(i, 9);
    Cfg cfg = Cfg::fromProgram(b.build());
    DominatorTree pdom = DominatorTree::postDominators(cfg);
    // Body block (1) is post-dominated by exit block (2).
    EXPECT_EQ(pdom.idom(1), 2u);
}

TEST(Dominators, BranchWithBothPathsExiting)
{
    // if c: exit else: exit -- no common post-dominator block.
    KernelBuilder b("twoexits");
    Reg c = b.reg();
    auto lbl = b.label();
    b.bnz(c, lbl);
    b.exit_();
    b.bind(lbl);
    b.exit_();
    Cfg cfg = Cfg::fromProgram(b.build());
    DominatorTree pdom = DominatorTree::postDominators(cfg);
    EXPECT_EQ(pdom.idom(0), no_block);
}

TEST(Dominators, UnreachableBlockHandled)
{
    KernelBuilder b("unreach");
    Reg r = b.reg();
    auto skip = b.label();
    b.bra(skip);
    b.movi(r, 1); // unreachable
    b.bind(skip);
    b.exit_();
    Cfg cfg = Cfg::fromProgram(b.build());
    DominatorTree dom = DominatorTree::dominators(cfg);
    EXPECT_TRUE(dom.reachable(0));
    EXPECT_FALSE(dom.reachable(1));
    EXPECT_TRUE(dom.reachable(2));
}

TEST(Dominators, SelfLoop)
{
    KernelBuilder b("self");
    Reg c = b.reg();
    b.loop();
    b.isetlt(c, c, Imm(1));
    b.endLoopIfz(c);
    Cfg cfg = Cfg::fromProgram(b.build());
    DominatorTree dom = DominatorTree::dominators(cfg);
    // Loop body dominated by entry... body block is entry here.
    EXPECT_TRUE(dom.reachable(0));
    DominatorTree pdom = DominatorTree::postDominators(cfg);
    EXPECT_NE(pdom.idom(0), no_block);
}

} // namespace
} // namespace siwi::cfg
