/**
 * @file
 * Thread-frontier layout tests, including a randomized structured-
 * program property sweep.
 */

#include <gtest/gtest.h>

#include "cfg/compiler.hh"
#include "cfg/layout.hh"
#include "common/rng.hh"
#include "isa/builder.hh"

namespace siwi::cfg {
namespace {

using isa::Imm;
using isa::KernelBuilder;
using isa::Reg;

TEST(Layout, PreserveKeepsReachableOrder)
{
    KernelBuilder b("k");
    Reg c = b.reg(), v = b.reg();
    b.if_(c);
    b.movi(v, 1);
    b.endIf();
    Cfg cfg = Cfg::fromProgram(b.build());
    auto order = layoutOrder(cfg, LayoutMode::Preserve);
    ASSERT_FALSE(order.empty());
    EXPECT_EQ(order.front(), 0u);
    for (size_t i = 1; i < order.size(); ++i)
        EXPECT_GT(order[i], order[i - 1]);
}

TEST(Layout, PreserveDropsUnreachable)
{
    KernelBuilder b("k");
    Reg r = b.reg();
    auto skip = b.label();
    b.bra(skip);
    b.movi(r, 1); // dead
    b.bind(skip);
    b.exit_();
    Cfg cfg = Cfg::fromProgram(b.build());
    auto order = layoutOrder(cfg, LayoutMode::Preserve);
    for (u32 blk : order)
        EXPECT_NE(blk, 1u);
}

TEST(Layout, ThreadFrontierPlacesJoinAfterBranch)
{
    KernelBuilder b("k");
    Reg c = b.reg(), v = b.reg();
    b.if_(c);
    b.movi(v, 1);
    b.else_();
    b.movi(v, 2);
    b.endIf();
    b.movi(v, 3);
    CompiledKernel ck = compileKernel(b.build());
    EXPECT_EQ(ck.layout_violations, 0u);
    EXPECT_EQ(countLayoutViolations(ck.program), 0u);
}

/**
 * Generate a random structured program: nested if/else and do-while
 * loops up to a depth budget. The thread-frontier property must hold
 * for all of them after compilation.
 */
void
genBody(KernelBuilder &b, Rng &rng, Reg c, Reg v, int depth,
        int &budget)
{
    int stmts = 1 + int(rng.below(3));
    for (int s = 0; s < stmts && budget > 0; ++s) {
        --budget;
        switch (depth > 0 ? rng.below(4) : 0) {
          case 0:
            b.iadd(v, v, Imm(i32(rng.below(100))));
            break;
          case 1:
            b.if_(c);
            genBody(b, rng, c, v, depth - 1, budget);
            b.endIf();
            break;
          case 2:
            b.if_(c);
            genBody(b, rng, c, v, depth - 1, budget);
            b.else_();
            genBody(b, rng, c, v, depth - 1, budget);
            b.endIf();
            break;
          case 3: {
            b.loop();
            genBody(b, rng, c, v, depth - 1, budget);
            Reg lc = b.reg();
            b.isetlt(lc, v, Imm(3));
            b.endLoopIf(lc);
            break;
          }
        }
    }
}

class RandomStructured : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RandomStructured, ThreadFrontierPropertyHolds)
{
    Rng rng(GetParam() * 977 + 1);
    KernelBuilder b("rand");
    Reg c = b.reg(), v = b.reg();
    b.movi(v, 0);
    b.movi(c, 1);
    int budget = 30;
    genBody(b, rng, c, v, 3, budget);
    CompiledKernel ck = compileKernel(b.build());
    EXPECT_EQ(ck.layout_violations, 0u)
        << ck.program.disassemble();
    // Every divergent branch got a reconvergence annotation.
    EXPECT_EQ(ck.sync.unresolved, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStructured,
                         ::testing::Range(0u, 25u));

TEST(Layout, ViolationCounterDetectsBackwardReconv)
{
    // Hand-build: branch whose reconvergence annotation points
    // backward.
    isa::Program p("bad");
    isa::Instruction nop;
    nop.op = isa::Opcode::NOP;
    p.push(nop);
    isa::Instruction bnz;
    bnz.op = isa::Opcode::BNZ;
    bnz.sa = 0;
    bnz.target = 0;
    bnz.reconv = 0;
    p.push(bnz);
    isa::Instruction exit;
    exit.op = isa::Opcode::EXIT;
    p.push(exit);
    EXPECT_EQ(countLayoutViolations(p), 1u);
}

} // namespace
} // namespace siwi::cfg
