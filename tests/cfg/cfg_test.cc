/**
 * @file
 * CFG construction and linearization tests.
 */

#include <gtest/gtest.h>

#include "cfg/cfg.hh"
#include "isa/builder.hh"

namespace siwi::cfg {
namespace {

using isa::Imm;
using isa::KernelBuilder;
using isa::Opcode;
using isa::Reg;

isa::Program
ifElseProgram()
{
    KernelBuilder b("ifelse");
    Reg c = b.reg(), v = b.reg();
    b.movi(c, 1);
    b.if_(c);
    b.movi(v, 1);
    b.else_();
    b.movi(v, 2);
    b.endIf();
    b.movi(v, 3);
    return b.build();
}

TEST(Cfg, StraightLineSingleBlock)
{
    KernelBuilder b("line");
    Reg r = b.reg();
    b.movi(r, 1);
    b.iadd(r, r, Imm(2));
    Cfg cfg = Cfg::fromProgram(b.build());
    EXPECT_EQ(cfg.numBlocks(), 1u);
    EXPECT_TRUE(cfg.block(0).isExit());
    EXPECT_EQ(cfg.block(0).insts.size(), 3u);
}

TEST(Cfg, IfElseBlockStructure)
{
    Cfg cfg = Cfg::fromProgram(ifElseProgram());
    // entry(movi,bz) / then(movi,bra) / else(movi) / join(movi,exit)
    ASSERT_EQ(cfg.numBlocks(), 4u);
    const BasicBlock &entry = cfg.block(0);
    EXPECT_EQ(entry.taken, 2u);
    EXPECT_EQ(entry.fall, 1u);
    const BasicBlock &then_b = cfg.block(1);
    EXPECT_EQ(then_b.taken, 3u);
    EXPECT_EQ(then_b.fall, no_block);
    const BasicBlock &else_b = cfg.block(2);
    EXPECT_EQ(else_b.fall, 3u);
    EXPECT_TRUE(cfg.block(3).isExit());
}

TEST(Cfg, PredsComputed)
{
    Cfg cfg = Cfg::fromProgram(ifElseProgram());
    const BasicBlock &join = cfg.block(3);
    ASSERT_EQ(join.preds.size(), 2u);
}

TEST(Cfg, LoopBackEdge)
{
    KernelBuilder b("loop");
    Reg i = b.reg(), c = b.reg();
    b.movi(i, 0);
    b.loop();
    b.iadd(i, i, Imm(1));
    b.isetlt(c, i, Imm(4));
    b.endLoopIf(c);
    Cfg cfg = Cfg::fromProgram(b.build());
    // entry(movi) / body(iadd,isetlt,bnz) / exit(exit)
    ASSERT_EQ(cfg.numBlocks(), 3u);
    EXPECT_EQ(cfg.block(1).taken, 1u); // self loop
    EXPECT_EQ(cfg.block(1).fall, 2u);
}

TEST(Cfg, LinearizeIdentityRoundTrip)
{
    isa::Program p = ifElseProgram();
    Cfg cfg = Cfg::fromProgram(p);
    std::vector<u32> order;
    for (u32 i = 0; i < cfg.numBlocks(); ++i)
        order.push_back(i);
    isa::Program out = cfg.linearize(order);
    ASSERT_EQ(out.size(), p.size());
    for (Pc pc = 0; pc < p.size(); ++pc)
        EXPECT_EQ(out.at(pc).toString(), p.at(pc).toString());
}

TEST(Cfg, LinearizeReorderInsertsBra)
{
    isa::Program p = ifElseProgram();
    Cfg cfg = Cfg::fromProgram(p);
    // Swap then/else blocks: entry, else, then, join.
    std::vector<u32> order = {0, 2, 1, 3};
    isa::Program out = cfg.linearize(order);
    EXPECT_TRUE(out.validate().empty());
    // Both the entry (its fall-through 'then' moved away) and the
    // else block (its join moved away) need explicit BRAs.
    EXPECT_EQ(out.size(), p.size() + 2);
    EXPECT_EQ(out.at(1).op, Opcode::BZ);
    EXPECT_EQ(out.at(1).target, 3u);
    EXPECT_EQ(out.at(2).op, Opcode::BRA); // entry -> then
}

TEST(Cfg, LinearizedReorderedProgramIsValid)
{
    isa::Program p = ifElseProgram();
    Cfg cfg = Cfg::fromProgram(p);
    std::vector<u32> order = {0, 2, 1, 3};
    isa::Program out = cfg.linearize(order);
    // Every branch target must begin an equivalent block.
    for (Pc pc = 0; pc < out.size(); ++pc) {
        const isa::Instruction &inst = out.at(pc);
        if (isa::isBranch(inst.op)) {
            EXPECT_LT(inst.target, out.size());
        }
    }
}

TEST(Cfg, ToStringMentionsBlocks)
{
    Cfg cfg = Cfg::fromProgram(ifElseProgram());
    std::string s = cfg.toString();
    EXPECT_NE(s.find("B0"), std::string::npos);
    EXPECT_NE(s.find("B3"), std::string::npos);
}

} // namespace
} // namespace siwi::cfg
