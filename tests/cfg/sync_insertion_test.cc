/**
 * @file
 * Reconvergence analysis / SYNC insertion tests (paper 3.3).
 */

#include <gtest/gtest.h>

#include "cfg/compiler.hh"
#include "isa/builder.hh"

namespace siwi::cfg {
namespace {

using isa::Imm;
using isa::KernelBuilder;
using isa::Opcode;
using isa::Reg;

unsigned
countSyncs(const isa::Program &p)
{
    unsigned n = 0;
    for (Pc pc = 0; pc < p.size(); ++pc)
        n += p.at(pc).op == Opcode::SYNC ? 1 : 0;
    return n;
}

TEST(SyncInsertion, IfElseGetsOneSync)
{
    KernelBuilder b("k");
    Reg c = b.reg(), v = b.reg();
    b.if_(c);
    b.movi(v, 1);
    b.else_();
    b.movi(v, 2);
    b.endIf();
    b.movi(v, 3);
    CompiledKernel ck = compileKernel(b.build());
    EXPECT_EQ(ck.sync.divergent_branches, 1u);
    EXPECT_EQ(ck.sync.sync_points, 1u);
    EXPECT_EQ(countSyncs(ck.program), 1u);
}

TEST(SyncInsertion, SyncPayloadIsDivergencePoint)
{
    KernelBuilder b("k");
    Reg c = b.reg(), v = b.reg();
    b.movi(c, 0);
    b.if_(c);
    b.movi(v, 1);
    b.else_();
    b.movi(v, 2);
    b.endIf();
    b.movi(v, 3);
    CompiledKernel ck = compileKernel(b.build());
    const isa::Program &p = ck.program;

    // Locate the SYNC and the conditional branch.
    Pc sync_pc = invalid_pc, branch_pc = invalid_pc;
    for (Pc pc = 0; pc < p.size(); ++pc) {
        if (p.at(pc).op == Opcode::SYNC)
            sync_pc = pc;
        if (isa::isCondBranch(p.at(pc).op))
            branch_pc = pc;
    }
    ASSERT_NE(sync_pc, invalid_pc);
    ASSERT_NE(branch_pc, invalid_pc);
    // PCdiv = last instruction of the immediate dominator of the
    // reconvergence point = the branch itself here.
    EXPECT_EQ(p.at(sync_pc).div, branch_pc);
    // The branch's reconvergence annotation points at the SYNC.
    EXPECT_EQ(p.at(branch_pc).reconv, sync_pc);
    // Thread-frontier property: PCdiv < PCrec.
    EXPECT_LT(p.at(sync_pc).div, sync_pc);
}

TEST(SyncInsertion, SharedJoinSingleSync)
{
    // Two nested ifs reconverging at the same join still get one
    // SYNC each at their own reconvergence point.
    KernelBuilder b("k");
    Reg c1 = b.reg(), c2 = b.reg(), v = b.reg();
    b.if_(c1);
    {
        b.if_(c2);
        b.movi(v, 1);
        b.endIf();
    }
    b.endIf();
    CompiledKernel ck = compileKernel(b.build());
    EXPECT_EQ(ck.sync.divergent_branches, 2u);
    // Inner reconv == outer reconv block here (if-without-else
    // directly nested): insertion deduplicates per block.
    EXPECT_GE(ck.sync.sync_points, 1u);
    EXPECT_EQ(countSyncs(ck.program), ck.sync.sync_points);
}

TEST(SyncInsertion, LoopBranchAnnotated)
{
    KernelBuilder b("k");
    Reg i = b.reg(), c = b.reg();
    b.movi(i, 0);
    b.loop();
    b.iadd(i, i, Imm(1));
    b.isetlt(c, i, Imm(4));
    b.endLoopIf(c);
    b.movi(i, 9);
    CompiledKernel ck = compileKernel(b.build());
    const isa::Program &p = ck.program;
    for (Pc pc = 0; pc < p.size(); ++pc) {
        if (isa::isCondBranch(p.at(pc).op)) {
            // Reconverges at the loop exit (higher address).
            ASSERT_NE(p.at(pc).reconv, invalid_pc);
            EXPECT_GT(p.at(pc).reconv, pc);
        }
    }
    EXPECT_EQ(ck.sync.divergent_branches, 1u);
}

TEST(SyncInsertion, NoSyncWithoutDivergentBranches)
{
    KernelBuilder b("k");
    Reg v = b.reg();
    b.movi(v, 1);
    b.iadd(v, v, Imm(1));
    CompiledKernel ck = compileKernel(b.build());
    EXPECT_EQ(ck.sync.sync_points, 0u);
    EXPECT_EQ(countSyncs(ck.program), 0u);
}

TEST(SyncInsertion, BothPathsExitUnresolved)
{
    KernelBuilder b("k");
    Reg c = b.reg();
    auto lbl = b.label();
    b.bnz(c, lbl);
    b.exit_();
    b.bind(lbl);
    b.exit_();
    CompiledKernel ck = compileKernel(b.build());
    EXPECT_EQ(ck.sync.unresolved, 1u);
    EXPECT_EQ(ck.sync.sync_points, 0u);
}

TEST(SyncInsertion, DisabledByOption)
{
    KernelBuilder b("k");
    Reg c = b.reg(), v = b.reg();
    b.if_(c);
    b.movi(v, 1);
    b.endIf();
    CompileOptions opts;
    opts.insert_sync = false;
    CompiledKernel ck = compileKernel(b.build(), opts);
    EXPECT_EQ(countSyncs(ck.program), 0u);
}

TEST(SyncInsertion, CompiledProgramStaysValid)
{
    KernelBuilder b("k");
    Reg c = b.reg(), v = b.reg(), i = b.reg();
    b.movi(i, 0);
    b.loop();
    b.if_(c);
    b.iadd(v, v, Imm(1));
    b.else_();
    b.isub(v, v, Imm(1));
    b.endIf();
    b.iadd(i, i, Imm(1));
    Reg lc = b.reg();
    b.isetlt(lc, i, Imm(4));
    b.endLoopIf(lc);
    CompiledKernel ck = compileKernel(b.build());
    EXPECT_TRUE(ck.program.validate().empty());
    EXPECT_EQ(ck.layout_violations, 0u);
}

} // namespace
} // namespace siwi::cfg
