/**
 * @file
 * SM pipeline tests: issue timing, peak IPC, divergence behavior,
 * SBI co-issue, SWI gap filling, barriers, memory replay.
 */

#include <gtest/gtest.h>

#include "cfg/compiler.hh"
#include "common/log.hh"
#include "isa/builder.hh"
#include "mem/memory_image.hh"
#include "pipeline/sm.hh"

namespace siwi::pipeline {
namespace {

using isa::Imm;
using isa::KernelBuilder;
using isa::Reg;
using isa::SpecialReg;

isa::Program
compiled(isa::Program raw,
         cfg::LayoutMode layout = cfg::LayoutMode::ThreadFrontier)
{
    cfg::CompileOptions opts;
    opts.layout = layout;
    return cfg::compileKernel(raw, opts).program;
}

/** Long straight-line MAD chain without dependencies. */
isa::Program
madStream(unsigned n)
{
    KernelBuilder b("mads");
    std::vector<Reg> regs;
    for (int i = 0; i < 8; ++i)
        regs.push_back(b.reg());
    for (int i = 0; i < 8; ++i)
        b.movi(regs[size_t(i)], i + 1);
    for (unsigned i = 0; i < n; ++i) {
        // Rotate destinations to avoid WAW pressure.
        b.iadd(regs[i % 4], regs[4 + i % 4], regs[4 + (i + 1) % 4]);
    }
    return compiled(b.build());
}

core::SimStats
runOn(PipelineMode mode, const isa::Program &prog, unsigned blocks,
      unsigned threads,
      std::function<void(SMConfig &)> tweak = nullptr)
{
    SMConfig cfg = SMConfig::make(mode);
    if (tweak)
        tweak(cfg);
    mem::MemoryImage mem;
    SM sm(cfg, mem);
    sm.launch(prog, blocks, threads);
    core::SimStats st = sm.run(2'000'000);
    EXPECT_FALSE(st.timed_out);
    return st;
}

TEST(SmBasic, CompletesTrivialKernel)
{
    KernelBuilder b("t");
    Reg r = b.reg();
    b.movi(r, 1);
    auto st = runOn(PipelineMode::Baseline, compiled(b.build()), 1,
                    32);
    EXPECT_GT(st.cycles, 0u);
    EXPECT_EQ(st.threads_launched, 32u);
    EXPECT_EQ(st.blocks_launched, 1u);
    // movi + exit for one warp.
    EXPECT_EQ(st.instructions, 2u);
    EXPECT_EQ(st.thread_instructions, 64u);
}

TEST(SmBasic, MultiBlockGrid)
{
    KernelBuilder b("t");
    Reg r = b.reg();
    b.movi(r, 1);
    auto st = runOn(PipelineMode::Baseline, compiled(b.build()), 5,
                    64);
    EXPECT_EQ(st.blocks_launched, 5u);
    EXPECT_EQ(st.threads_launched, 320u);
    EXPECT_EQ(st.thread_instructions, 5u * 64 * 2);
}

TEST(SmBasic, PartialWarpMasksOut)
{
    KernelBuilder b("t");
    Reg r = b.reg();
    b.movi(r, 1);
    // 40 threads = one full + one half warp (baseline width 32).
    auto st = runOn(PipelineMode::Baseline, compiled(b.build()), 1,
                    40);
    EXPECT_EQ(st.thread_instructions, 80u);
}

TEST(SmPeak, BaselineDualIssueApproaches64)
{
    // Full occupancy, independent MADs: IPC must approach the
    // baseline peak of 64 (paper 5.1).
    auto st = runOn(PipelineMode::Baseline, madStream(200), 1,
                    1024);
    EXPECT_GT(st.ipc(), 50.0);
    EXPECT_LE(st.ipc(), 64.01);
}

TEST(SmPeak, Warp64MadBoundAlso64)
{
    auto st = runOn(PipelineMode::Warp64, madStream(200), 1, 1024);
    EXPECT_GT(st.ipc(), 48.0);
    EXPECT_LE(st.ipc(), 64.01);
}

TEST(SmPeak, MixedUnitsExceed64OnWideMachines)
{
    // MAD + LSU mix: the baseline is capped at 64 by its 2x32
    // issue bandwidth; the 64-wide machines overlap the MAD and
    // LSU groups and push past it (peak 104, paper 5.1). Use
    // independent destination registers so ILP isn't the limiter,
    // and cache-resident loads.
    KernelBuilder b("mix");
    Reg gtid = b.reg(), addr = b.reg();
    Reg d[6];
    for (auto &r : d)
        r = b.reg();
    b.s2r(gtid, SpecialReg::GTID);
    b.and_(addr, gtid, Imm(31));
    b.shl(addr, addr, Imm(2));
    // Warm the line, then stream: 2 ALU + 1 LD per round.
    b.ld(d[0], addr, 0);
    for (int i = 0; i < 60; ++i) {
        b.iadd(d[i % 3], gtid, Imm(i));
        b.iadd(d[3 + i % 3], gtid, Imm(i + 1));
        b.ld(d[i % 3], addr, 0);
    }
    isa::Program prog = compiled(b.build());
    auto base = runOn(PipelineMode::Baseline, prog, 1, 1024);
    auto swi = runOn(PipelineMode::SWI, prog, 1, 1024);
    EXPECT_LE(base.ipc(), 64.01);
    EXPECT_GT(swi.ipc(), base.ipc());
}

TEST(SmDivergence, BalancedIfElseHurtsBaseline)
{
    // if/else with heavy balanced work: stack runs paths serially.
    KernelBuilder b("balanced");
    Reg tid = b.reg(), c = b.reg(), v = b.reg();
    b.s2r(tid, SpecialReg::TID);
    b.and_(c, tid, Imm(1));
    b.if_(c);
    for (int i = 0; i < 24; ++i)
        b.iadd(v, v, Imm(i));
    b.else_();
    for (int i = 0; i < 24; ++i)
        b.isub(v, v, Imm(i));
    b.endIf();
    isa::Program prog = compiled(b.build());
    auto base = runOn(PipelineMode::Baseline, prog, 1, 1024);
    auto sbi = runOn(PipelineMode::SBI, prog, 1, 1024);
    // SBI co-issues the two paths: substantially faster.
    EXPECT_LT(sbi.cycles, base.cycles);
    EXPECT_GT(sbi.row_share_issues, 0u);
    EXPECT_GT(sbi.branch_divergences, 0u);
}

TEST(SmDivergence, FunctionalResultSameUnderDivergence)
{
    // Each thread stores tid*3+1 computed through divergent paths.
    KernelBuilder b("div");
    Reg tid = b.reg(), c = b.reg(), v = b.reg(), addr = b.reg();
    b.s2r(tid, SpecialReg::GTID);
    b.and_(c, tid, Imm(1));
    b.if_(c);
    b.imul(v, tid, Imm(3));
    b.iadd(v, v, Imm(1));
    b.else_();
    b.imul(v, tid, Imm(3));
    b.iadd(v, v, Imm(1));
    b.endIf();
    b.shl(addr, tid, Imm(2));
    b.iadd(addr, addr, Imm(0x10000));
    b.st(addr, 0, v);
    isa::Program prog = compiled(b.build());

    for (PipelineMode m :
         {PipelineMode::Baseline, PipelineMode::Warp64,
          PipelineMode::SBI, PipelineMode::SWI,
          PipelineMode::SBISWI}) {
        SMConfig cfg = SMConfig::make(m);
        mem::MemoryImage mem;
        SM sm(cfg, mem);
        sm.launch(prog, 1, 256);
        sm.run(1'000'000);
        for (u32 t = 0; t < 256; ++t)
            ASSERT_EQ(mem.read32(0x10000 + Addr(t) * 4), t * 3 + 1)
                << pipelineModeName(m);
    }
}

TEST(SmSbi, SecondaryIssuesFromCpc2)
{
    KernelBuilder b("sbi");
    Reg tid = b.reg(), c = b.reg(), v = b.reg();
    b.s2r(tid, SpecialReg::TID);
    b.and_(c, tid, Imm(1));
    b.if_(c);
    for (int i = 0; i < 16; ++i)
        b.iadd(v, v, Imm(1));
    b.else_();
    for (int i = 0; i < 16; ++i)
        b.isub(v, v, Imm(1));
    b.endIf();
    auto st = runOn(PipelineMode::SBI, compiled(b.build()), 1, 64);
    EXPECT_GT(st.secondary_issues, 0u);
    EXPECT_GT(st.row_share_issues, 0u);
    EXPECT_GT(st.merges, 0u);
}

TEST(SmSbi, FallbackDisabledReducesSecondaryIssues)
{
    // Mixed-unit regular code: the SBI fallback dual-issues another
    // warp's primary instruction to a different group (the MAD
    // group alone cannot be row-shared across warps, so a pure MAD
    // stream sees no fallback).
    KernelBuilder b("mix");
    Reg gtid = b.reg(), addr = b.reg(), v = b.reg(), t = b.reg();
    b.s2r(gtid, SpecialReg::GTID);
    b.and_(addr, gtid, Imm(31));
    b.shl(addr, addr, Imm(2));
    for (int i = 0; i < 40; ++i) {
        b.iadd(t, gtid, Imm(i));
        b.ld(v, addr, 0);
    }
    isa::Program prog = compiled(b.build());
    auto with = runOn(PipelineMode::SBI, prog, 1, 1024);
    auto without =
        runOn(PipelineMode::SBI, prog, 1, 1024, [](SMConfig &c) {
            c.sbi_secondary_fallback = false;
        });
    // Regular code has no CPC2 work; only the fallback produces
    // secondary issues.
    EXPECT_GT(with.fallback_issues, 0u);
    EXPECT_EQ(without.fallback_issues, 0u);
    EXPECT_LE(without.ipc(), with.ipc() * 1.001);
}

TEST(SmSwi, FillsGapsOfPartialWarps)
{
    // Unbalanced if without else: half of each warp idles. The
    // imbalance pattern is half-warp-granular (tid & 32), which the
    // XorRev lane shuffle maps to complementary lanes in half the
    // warps -- exactly the correlation-breaking of section 4.
    KernelBuilder b("gaps");
    Reg tid = b.reg(), c = b.reg(), v = b.reg();
    b.s2r(tid, SpecialReg::TID);
    b.and_(c, tid, Imm(32));
    b.if_(c);
    for (int i = 0; i < 32; ++i)
        b.iadd(v, v, Imm(1));
    b.endIf();
    isa::Program prog = compiled(b.build());
    auto w64 = runOn(PipelineMode::Warp64, prog, 1, 1024);
    auto swi = runOn(PipelineMode::SWI, prog, 1, 1024);
    EXPECT_GT(swi.row_share_issues, 0u);
    EXPECT_LT(swi.cycles, w64.cycles);
}

TEST(SmSwi, ConflictSquashAccounted)
{
    // Any cascaded run may squash primary picks; the counter must
    // stay consistent (<= secondary issues).
    auto st = runOn(PipelineMode::SWI, madStream(300), 2, 1024);
    EXPECT_LE(st.conflicts_squashed, st.secondary_issues);
}

TEST(SmBarrier, BarrierSynchronizesBlock)
{
    // Thread 0 writes, all threads barrier, then everyone reads.
    KernelBuilder b("bar");
    Reg tid = b.reg(), z = b.reg(), addr = b.reg(), v = b.reg(),
        out = b.reg();
    b.s2r(tid, SpecialReg::TID);
    b.iseteq(z, tid, Imm(0));
    b.movi(addr, 0x2000);
    b.if_(z);
    b.movi(v, 77);
    b.st(addr, 0, v);
    b.endIf();
    b.bar();
    b.ld(v, addr);
    b.shl(out, tid, Imm(2));
    b.iadd(out, out, Imm(0x3000));
    b.st(out, 0, v);
    isa::Program prog = compiled(b.build());

    for (PipelineMode m :
         {PipelineMode::Baseline, PipelineMode::SBI,
          PipelineMode::SBISWI}) {
        SMConfig cfg = SMConfig::make(m);
        mem::MemoryImage mem;
        SM sm(cfg, mem);
        sm.launch(prog, 1, 128);
        auto st = sm.run(1'000'000);
        EXPECT_FALSE(st.timed_out) << pipelineModeName(m);
        EXPECT_GE(st.barrier_releases, 1u);
        for (u32 t = 0; t < 128; ++t)
            ASSERT_EQ(mem.read32(0x3000 + Addr(t) * 4), 77u)
                << pipelineModeName(m) << " thread " << t;
    }
}

TEST(SmMemory, CoalescedLoadOneTransactionPerWarp)
{
    KernelBuilder b("ld");
    Reg tid = b.reg(), addr = b.reg(), v = b.reg();
    b.s2r(tid, SpecialReg::GTID);
    b.shl(addr, tid, Imm(2));
    b.iadd(addr, addr, Imm(0x8000));
    b.ld(v, addr);
    auto st = runOn(PipelineMode::Baseline, compiled(b.build()), 1,
                    128);
    // 4 warps x 1 block each.
    EXPECT_EQ(st.load_transactions, 4u);
}

TEST(SmMemory, StridedLoadReplays)
{
    KernelBuilder b("strided");
    Reg tid = b.reg(), addr = b.reg(), v = b.reg();
    b.s2r(tid, SpecialReg::GTID);
    b.shl(addr, tid, Imm(7)); // 128B stride: one block per lane
    b.iadd(addr, addr, Imm(0x8000));
    b.ld(v, addr);
    auto st = runOn(PipelineMode::Baseline, compiled(b.build()), 1,
                    32, [](SMConfig &c) {
                        c.split_on_memory_divergence = false;
                    });
    EXPECT_EQ(st.load_transactions, 32u);
}

TEST(SmMemory, MemoryDivergenceSplits)
{
    KernelBuilder b("msplit");
    Reg tid = b.reg(), addr = b.reg(), v = b.reg();
    b.s2r(tid, SpecialReg::GTID);
    b.shl(addr, tid, Imm(7));
    b.iadd(addr, addr, Imm(0x8000));
    b.ld(v, addr);
    b.iadd(v, v, Imm(1));
    auto st = runOn(PipelineMode::SBI, compiled(b.build()), 1, 64);
    EXPECT_GT(st.memory_splits, 0u);
}

TEST(SmScoreboard, DependentChainBoundByLatency)
{
    // Serial dependency chain: one warp, each op waits ~exec
    // latency; IPC per warp must be far below peak.
    KernelBuilder b("chain");
    Reg v = b.reg();
    b.movi(v, 1);
    for (int i = 0; i < 50; ++i)
        b.iadd(v, v, Imm(1));
    auto st = runOn(PipelineMode::Baseline, compiled(b.build()), 1,
                    32);
    // 50 dependent adds x ~9 cycles each.
    EXPECT_GT(st.cycles, 400u);
}

TEST(SmLimits, CycleLimitReported)
{
    KernelBuilder b("spin");
    Reg one = b.reg(), c = b.reg();
    b.movi(one, 1);
    b.loop();
    b.iadd(c, c, Imm(1)); // never terminates: c wraps
    b.endLoopIf(one);
    setLogQuiet(true);
    SMConfig cfg = SMConfig::make(PipelineMode::Baseline);
    mem::MemoryImage mem;
    SM sm(cfg, mem);
    sm.launch(compiled(b.build()), 1, 32);
    auto st = sm.run(5000);
    setLogQuiet(false);
    EXPECT_TRUE(st.timed_out);
}

TEST(SmTrace, HookSeesIssues)
{
    KernelBuilder b("t");
    Reg r = b.reg();
    b.movi(r, 1);
    SMConfig cfg = SMConfig::make(PipelineMode::Baseline);
    mem::MemoryImage mem;
    SM sm(cfg, mem);
    std::vector<IssueEvent> events;
    sm.setTraceHook(
        [&](const IssueEvent &e) { events.push_back(e); });
    sm.launch(compiled(b.build()), 1, 32);
    sm.run(10000);
    ASSERT_EQ(events.size(), 2u); // movi + exit
    EXPECT_EQ(events[0].mask.count(), 32u);
    EXPECT_EQ(events[0].unit.substr(0, 3), "MAD");
}

TEST(SmConstraints, SyncSuspensionOnlyWithConstraints)
{
    KernelBuilder b("sync");
    Reg tid = b.reg(), c = b.reg(), v = b.reg();
    b.s2r(tid, SpecialReg::TID);
    b.and_(c, tid, Imm(1));
    b.if_(c);
    for (int i = 0; i < 12; ++i)
        b.iadd(v, v, Imm(1));
    b.else_();
    b.isub(v, v, Imm(1));
    b.endIf();
    for (int i = 0; i < 4; ++i)
        b.iadd(v, v, Imm(3));
    isa::Program prog = compiled(b.build());
    auto with = runOn(PipelineMode::SBI, prog, 1, 1024);
    auto without =
        runOn(PipelineMode::SBI, prog, 1, 1024, [](SMConfig &c) {
            c.sbi_constraints = false;
        });
    EXPECT_GT(with.sync_suspensions, 0u);
    EXPECT_EQ(without.sync_suspensions, 0u);
    // Without constraints the short path runs ahead and re-issues
    // the tail redundantly: at least as many instructions.
    EXPECT_GE(without.instructions, with.instructions);
}

} // namespace
} // namespace siwi::pipeline
