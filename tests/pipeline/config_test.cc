/**
 * @file
 * SMConfig factory tests against the paper's Table 2.
 */

#include <gtest/gtest.h>

#include "pipeline/config.hh"

namespace siwi::pipeline {
namespace {

TEST(Config, BaselineMatchesTable2)
{
    SMConfig c = SMConfig::make(PipelineMode::Baseline);
    EXPECT_EQ(c.num_warps, 32u);
    EXPECT_EQ(c.warp_width, 32u);
    EXPECT_EQ(c.num_pools, 2u);
    EXPECT_EQ(c.reconv, ReconvMode::Stack);
    EXPECT_EQ(c.scheduler_latency, 1u);
    EXPECT_EQ(c.delivery_latency, 0u);
    EXPECT_EQ(c.exec_latency, 8u);
    EXPECT_EQ(c.scoreboard_entries, 6u);
    EXPECT_FALSE(c.sbi);
    EXPECT_FALSE(c.swi);
    EXPECT_EQ(c.maxThreads(), 1024u);
    EXPECT_FALSE(c.cascaded());
}

TEST(Config, SbiMatchesTable2)
{
    SMConfig c = SMConfig::make(PipelineMode::SBI);
    EXPECT_EQ(c.num_warps, 16u);
    EXPECT_EQ(c.warp_width, 64u);
    EXPECT_EQ(c.reconv, ReconvMode::ThreadFrontier);
    EXPECT_TRUE(c.sbi);
    EXPECT_FALSE(c.swi);
    EXPECT_EQ(c.scheduler_latency, 1u);
    EXPECT_EQ(c.delivery_latency, 1u);
    EXPECT_EQ(c.maxThreads(), 1024u);
}

TEST(Config, SwiMatchesTable2)
{
    SMConfig c = SMConfig::make(PipelineMode::SWI);
    EXPECT_EQ(c.warp_width, 64u);
    EXPECT_TRUE(c.swi);
    EXPECT_FALSE(c.sbi);
    EXPECT_EQ(c.scheduler_latency, 2u);
    EXPECT_EQ(c.delivery_latency, 1u);
    EXPECT_TRUE(c.cascaded());
    EXPECT_EQ(c.shuffle, LaneShufflePolicy::XorRev);
}

TEST(Config, SbiSwiCombinesBoth)
{
    SMConfig c = SMConfig::make(PipelineMode::SBISWI);
    EXPECT_TRUE(c.sbi);
    EXPECT_TRUE(c.swi);
    EXPECT_TRUE(c.cascaded());
}

TEST(Config, MemoryDefaultsMatchTable2)
{
    SMConfig c = SMConfig::make(PipelineMode::Baseline);
    EXPECT_EQ(c.mem.l1.size_bytes, 48u * 1024);
    EXPECT_EQ(c.mem.l1.ways, 6u);
    EXPECT_EQ(c.mem.l1.block_bytes, 128u);
    EXPECT_EQ(c.mem.l1.hit_latency, 3u);
    EXPECT_EQ(c.mem.dram.bytes_per_cycle_x10, 100u); // 10 GB/s
    EXPECT_EQ(c.mem.dram.latency_cycles, 330u);
}

TEST(Config, ExecGeometryPreservesLaneBudget)
{
    // All configurations keep 64 MAD lanes + 8 SFU + 32 LSU.
    for (PipelineMode m :
         {PipelineMode::Baseline, PipelineMode::Warp64,
          PipelineMode::SBI, PipelineMode::SWI,
          PipelineMode::SBISWI}) {
        SMConfig c = SMConfig::make(m);
        EXPECT_EQ(c.mad_groups * c.mad_width, 64u);
        EXPECT_EQ(c.sfu_width, 8u);
        EXPECT_EQ(c.lsu_width, 32u);
    }
}

TEST(Config, SummaryMentionsMode)
{
    SMConfig c = SMConfig::make(PipelineMode::SBISWI);
    std::string s = c.summary();
    EXPECT_NE(s.find("SBI+SWI"), std::string::npos);
    EXPECT_NE(s.find("thread frontier"), std::string::npos);
}

TEST(Config, ModeNames)
{
    EXPECT_STREQ(pipelineModeName(PipelineMode::Baseline),
                 "Baseline");
    EXPECT_STREQ(pipelineModeName(PipelineMode::SBISWI), "SBI+SWI");
    EXPECT_STREQ(laneShuffleName(LaneShufflePolicy::XorRev),
                 "XorRev");
}

TEST(Config, StackModeDisablesMemorySplits)
{
    SMConfig c = SMConfig::make(PipelineMode::Baseline);
    EXPECT_FALSE(c.split_on_memory_divergence);
    c = SMConfig::make(PipelineMode::SBI);
    EXPECT_TRUE(c.split_on_memory_divergence);
}

} // namespace
} // namespace siwi::pipeline
