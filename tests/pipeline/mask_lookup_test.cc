/**
 * @file
 * SWI mask-inclusion lookup tests: best-fit selection and
 * set-associative restriction (paper section 4, Figure 9).
 */

#include <gtest/gtest.h>

#include "pipeline/mask_lookup.hh"

namespace siwi::pipeline {
namespace {

LookupCandidate
cand(WarpId w, u64 mask, bool same_unit = true,
     bool other_free = false)
{
    LookupCandidate c;
    c.warp = w;
    c.mask = LaneMask(mask);
    c.same_unit = same_unit;
    c.other_unit_free = other_free;
    return c;
}

TEST(MaskLookup, PicksFittingCandidate)
{
    MaskLookup ml(16, 1);
    std::vector<LookupCandidate> cands = {
        cand(1, 0xf0), // fits in ~0x0f? free = 0xf0
    };
    auto r = ml.pick(0, LaneMask(0xf0), cands);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*r, 0u);
}

TEST(MaskLookup, RejectsOverlapping)
{
    MaskLookup ml(16, 1);
    std::vector<LookupCandidate> cands = {cand(1, 0x18)};
    auto r = ml.pick(0, LaneMask(0xf0), cands);
    EXPECT_FALSE(r.has_value());
}

TEST(MaskLookup, BestFitMaximizesOccupancy)
{
    MaskLookup ml(16, 1);
    std::vector<LookupCandidate> cands = {
        cand(1, 0x10), // 1 lane
        cand(2, 0x70), // 3 lanes -- best fit
        cand(3, 0x30), // 2 lanes
    };
    auto r = ml.pick(0, LaneMask(0xf0), cands);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*r, 1u);
}

TEST(MaskLookup, OtherUnitBypassesMaskCheck)
{
    MaskLookup ml(16, 1);
    // Overlapping mask but a different unit group is free.
    std::vector<LookupCandidate> cands = {
        cand(1, 0xff, /*same_unit=*/false, /*other_free=*/true)};
    auto r = ml.pick(0, LaneMask(0x0f), cands);
    ASSERT_TRUE(r.has_value());
}

TEST(MaskLookup, NoUnitNoFit)
{
    MaskLookup ml(16, 1);
    std::vector<LookupCandidate> cands = {
        cand(1, 0xff, false, false)};
    EXPECT_FALSE(ml.pick(0, LaneMask(0xff), cands).has_value());
}

TEST(MaskLookup, SetRestrictionFiltersWarps)
{
    MaskLookup ml(16, 4); // sets by warp % 4
    EXPECT_TRUE(ml.eligible(0, 4));
    EXPECT_TRUE(ml.eligible(0, 8));
    EXPECT_FALSE(ml.eligible(0, 1));
    EXPECT_FALSE(ml.eligible(3, 5));
    EXPECT_TRUE(ml.eligible(3, 7));

    std::vector<LookupCandidate> cands = {
        cand(1, 0x10), // wrong set
        cand(4, 0x20), // right set
    };
    auto r = ml.pick(0, LaneMask(0xf0), cands);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*r, 1u);
}

TEST(MaskLookup, FullyAssociativeSearchesAll)
{
    MaskLookup ml(16, 1);
    for (WarpId a = 0; a < 16; ++a) {
        for (WarpId b = 0; b < 16; ++b)
            EXPECT_TRUE(ml.eligible(a, b));
    }
}

TEST(MaskLookup, DirectMappedOnlySelf)
{
    MaskLookup ml(16, 16);
    EXPECT_TRUE(ml.eligible(5, 5));
    EXPECT_FALSE(ml.eligible(5, 6));
}

TEST(MaskLookup, TieBreakIsPseudoRandomButCovering)
{
    // Repeated equal-occupancy ties must eventually pick different
    // candidates (randomized tie-breaking, section 4).
    MaskLookup ml(16, 1, 7);
    std::vector<LookupCandidate> cands = {cand(1, 0x10),
                                          cand(2, 0x20)};
    bool saw0 = false, saw1 = false;
    for (int i = 0; i < 64; ++i) {
        auto r = ml.pick(0, LaneMask(0xf0), cands);
        ASSERT_TRUE(r.has_value());
        saw0 |= *r == 0;
        saw1 |= *r == 1;
    }
    EXPECT_TRUE(saw0);
    EXPECT_TRUE(saw1);
}

TEST(MaskLookup, StatsCountSearches)
{
    MaskLookup ml(16, 1);
    std::vector<LookupCandidate> cands = {cand(1, 0x10)};
    ml.pick(0, LaneMask(0xf0), cands);
    ml.pick(0, LaneMask(0xf0), cands);
    EXPECT_EQ(ml.searchesPerformed(), 2u);
    EXPECT_EQ(ml.entriesExamined(), 2u);
}

class Associativity : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(Associativity, EligibleCountMatchesWays)
{
    unsigned sets = GetParam();
    MaskLookup ml(16, sets);
    unsigned eligible = 0;
    for (WarpId w = 0; w < 16; ++w)
        eligible += ml.eligible(3, w) ? 1 : 0;
    EXPECT_EQ(eligible, 16 / sets);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Associativity,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

} // namespace
} // namespace siwi::pipeline
