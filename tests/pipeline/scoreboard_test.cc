/**
 * @file
 * Exact-mask scoreboard tests (RAW/WAW with lane-mask filtering).
 */

#include <gtest/gtest.h>

#include "pipeline/scoreboard.hh"

namespace siwi::pipeline {
namespace {

using isa::Instruction;
using isa::Opcode;

Instruction
add(RegIdx d, RegIdx a, RegIdx b)
{
    Instruction i;
    i.op = Opcode::IADD;
    i.dst = d;
    i.sa = a;
    i.sb = b;
    return i;
}

TEST(Scoreboard, StartsEmpty)
{
    Scoreboard sb(4, 6);
    EXPECT_TRUE(sb.hasFreeEntry(0));
    EXPECT_EQ(sb.used(0), 0u);
    EXPECT_FALSE(sb.conflicts(0, add(0, 1, 2), LaneMask(0xff)));
}

TEST(Scoreboard, RawDetected)
{
    Scoreboard sb(4, 6);
    sb.allocate(0, 5, LaneMask(0xff));
    EXPECT_TRUE(sb.conflicts(0, add(0, 5, 2), LaneMask(0xff)));
    EXPECT_TRUE(sb.conflicts(0, add(0, 2, 5), LaneMask(0xff)));
    EXPECT_FALSE(sb.conflicts(0, add(0, 1, 2), LaneMask(0xff)));
}

TEST(Scoreboard, WawDetected)
{
    Scoreboard sb(4, 6);
    sb.allocate(0, 5, LaneMask(0xff));
    EXPECT_TRUE(sb.conflicts(0, add(5, 1, 2), LaneMask(0xff)));
}

TEST(Scoreboard, DisjointMasksNeverConflict)
{
    // The paper's key scoreboard requirement (3.4): dependencies
    // between non-intersecting warp-splits are ignored.
    Scoreboard sb(4, 6);
    sb.allocate(0, 5, LaneMask(0x0f));
    EXPECT_FALSE(sb.conflicts(0, add(0, 5, 2), LaneMask(0xf0)));
    EXPECT_TRUE(sb.conflicts(0, add(0, 5, 2), LaneMask(0x18)));
}

TEST(Scoreboard, PerWarpIsolation)
{
    Scoreboard sb(4, 6);
    sb.allocate(0, 5, LaneMask(0xff));
    EXPECT_FALSE(sb.conflicts(1, add(0, 5, 2), LaneMask(0xff)));
}

TEST(Scoreboard, CapacityLimit)
{
    Scoreboard sb(2, 3);
    sb.allocate(0, 1, LaneMask(1));
    sb.allocate(0, 2, LaneMask(1));
    sb.allocate(0, 3, LaneMask(1));
    EXPECT_FALSE(sb.hasFreeEntry(0));
    EXPECT_EQ(sb.used(0), 3u);
    EXPECT_TRUE(sb.hasFreeEntry(1));
}

TEST(Scoreboard, ReleaseFreesEntry)
{
    Scoreboard sb(2, 2);
    unsigned a = sb.allocate(0, 1, LaneMask(0xff));
    sb.allocate(0, 2, LaneMask(0xff));
    EXPECT_FALSE(sb.hasFreeEntry(0));
    sb.release(0, a);
    EXPECT_TRUE(sb.hasFreeEntry(0));
    EXPECT_FALSE(sb.conflicts(0, add(0, 1, 3), LaneMask(0xff)));
    EXPECT_TRUE(sb.conflicts(0, add(0, 2, 3), LaneMask(0xff)));
}

TEST(Scoreboard, StoreSourcesChecked)
{
    Scoreboard sb(2, 4);
    sb.allocate(0, 7, LaneMask(0xff));
    Instruction st;
    st.op = Opcode::ST;
    st.sa = 7; // address base in flight
    st.sb = 1;
    EXPECT_TRUE(sb.conflicts(0, st, LaneMask(0xff)));
    st.sa = 1;
    st.sb = 7; // store value in flight
    EXPECT_TRUE(sb.conflicts(0, st, LaneMask(0xff)));
}

TEST(Scoreboard, BranchConditionChecked)
{
    Scoreboard sb(2, 4);
    sb.allocate(0, 3, LaneMask(0x0f));
    Instruction bnz;
    bnz.op = Opcode::BNZ;
    bnz.sa = 3;
    bnz.target = 0;
    EXPECT_TRUE(sb.conflicts(0, bnz, LaneMask(0x01)));
    EXPECT_FALSE(sb.conflicts(0, bnz, LaneMask(0x10)));
}

TEST(Scoreboard, FlushWarpClears)
{
    Scoreboard sb(2, 2);
    sb.allocate(0, 1, LaneMask(0xff));
    sb.allocate(0, 2, LaneMask(0xff));
    sb.flushWarp(0);
    EXPECT_TRUE(sb.hasFreeEntry(0));
    EXPECT_EQ(sb.used(0), 0u);
}

TEST(Scoreboard, ImmediateOperandNotARegister)
{
    Scoreboard sb(2, 4);
    sb.allocate(0, 2, LaneMask(0xff));
    Instruction i = add(0, 1, 2);
    i.b_is_imm = true; // rb field unused
    EXPECT_FALSE(sb.conflicts(0, i, LaneMask(0xff)));
}

} // namespace
} // namespace siwi::pipeline
