/**
 * @file
 * Lane-shuffle policy tests (paper Table 1): bijectivity,
 * involution, and the intended decorrelation behavior.
 */

#include <gtest/gtest.h>

#include "pipeline/lane_shuffle.hh"

namespace siwi::pipeline {
namespace {

const LaneShufflePolicy all_policies[] = {
    LaneShufflePolicy::Identity, LaneShufflePolicy::MirrorOdd,
    LaneShufflePolicy::MirrorHalf, LaneShufflePolicy::Xor,
    LaneShufflePolicy::XorRev,
};

class AllPolicies
    : public ::testing::TestWithParam<LaneShufflePolicy>
{
};

TEST_P(AllPolicies, BijectiveForEveryWarp)
{
    const unsigned width = 64, warps = 16;
    for (unsigned w = 0; w < warps; ++w) {
        u64 seen = 0;
        for (unsigned t = 0; t < width; ++t) {
            unsigned lane = laneOf(GetParam(), t, w, width, warps);
            ASSERT_LT(lane, width);
            seen |= u64(1) << lane;
        }
        EXPECT_EQ(seen, ~u64(0)) << "warp " << w;
    }
}

TEST_P(AllPolicies, Involution)
{
    const unsigned width = 32, warps = 32;
    for (unsigned w = 0; w < warps; ++w) {
        for (unsigned t = 0; t < width; ++t) {
            unsigned lane = laneOf(GetParam(), t, w, width, warps);
            EXPECT_EQ(threadOfLane(GetParam(), lane, w, width,
                                   warps),
                      t);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllPolicies, ::testing::ValuesIn(all_policies),
    [](const ::testing::TestParamInfo<LaneShufflePolicy> &info) {
        return laneShuffleName(info.param);
    });

TEST(LaneShuffle, IdentityIsIdentity)
{
    for (unsigned t = 0; t < 64; ++t)
        EXPECT_EQ(laneOf(LaneShufflePolicy::Identity, t, 5, 64, 16),
                  t);
}

TEST(LaneShuffle, MirrorOddFlipsOddWarps)
{
    EXPECT_EQ(laneOf(LaneShufflePolicy::MirrorOdd, 0, 0, 64, 16),
              0u);
    EXPECT_EQ(laneOf(LaneShufflePolicy::MirrorOdd, 0, 1, 64, 16),
              63u);
    EXPECT_EQ(laneOf(LaneShufflePolicy::MirrorOdd, 5, 3, 64, 16),
              58u);
}

TEST(LaneShuffle, MirrorHalfFlipsUpperWarps)
{
    EXPECT_EQ(laneOf(LaneShufflePolicy::MirrorHalf, 0, 7, 64, 16),
              0u);
    EXPECT_EQ(laneOf(LaneShufflePolicy::MirrorHalf, 0, 8, 64, 16),
              63u);
}

TEST(LaneShuffle, XorUsesWarpLowBits)
{
    EXPECT_EQ(laneOf(LaneShufflePolicy::Xor, 0, 3, 64, 16), 3u);
    EXPECT_EQ(laneOf(LaneShufflePolicy::Xor, 5, 3, 64, 16), 6u);
}

TEST(LaneShuffle, XorRevSpreadsAcrossHighLanes)
{
    // bitrev(1, 6) = 32: warp 1's thread 0 lands on lane 32.
    EXPECT_EQ(laneOf(LaneShufflePolicy::XorRev, 0, 1, 64, 16), 32u);
    EXPECT_EQ(laneOf(LaneShufflePolicy::XorRev, 0, 2, 64, 16), 16u);
}

TEST(LaneShuffle, DecorrelatesHeadOfWarpPattern)
{
    // The paper's motivation: "the first thread of each warp may
    // receive a larger share of work". With Identity, thread 0 of
    // every warp occupies lane 0 (total conflict). XorRev must
    // spread thread 0 of 16 warps over 16 distinct lanes.
    const unsigned width = 64, warps = 16;
    for (LaneShufflePolicy p :
         {LaneShufflePolicy::Xor, LaneShufflePolicy::XorRev}) {
        u64 lanes_used = 0;
        for (unsigned w = 0; w < warps; ++w)
            lanes_used |=
                u64(1) << laneOf(p, 0, w, width, warps);
        EXPECT_EQ(std::popcount(lanes_used), 16)
            << laneShuffleName(p);
    }
    // Identity: all collide on lane 0.
    u64 lanes_used = 0;
    for (unsigned w = 0; w < warps; ++w)
        lanes_used |= u64(1) << laneOf(LaneShufflePolicy::Identity,
                                       0, w, width, warps);
    EXPECT_EQ(std::popcount(lanes_used), 1);
}

TEST(LaneShuffle, ContiguousThreadsStayContiguousUnderMirror)
{
    // Mirror policies preserve adjacency (memory locality argument
    // in section 4): |lane(t+1) - lane(t)| == 1.
    for (unsigned t = 0; t + 1 < 64; ++t) {
        int a = int(laneOf(LaneShufflePolicy::MirrorOdd, t, 1, 64,
                           16));
        int b = int(laneOf(LaneShufflePolicy::MirrorOdd, t + 1, 1,
                           64, 16));
        EXPECT_EQ(std::abs(a - b), 1);
    }
}

} // namespace
} // namespace siwi::pipeline
