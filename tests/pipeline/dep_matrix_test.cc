/**
 * @file
 * Dependency-matrix scoreboard tests (paper 3.4, Figure 6),
 * including the conservativeness property against the exact-mask
 * scoreboard: the matrix design may add false dependencies via the
 * aggregated I3 slot, but must never miss a true dependency.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "pipeline/dep_matrix.hh"
#include "pipeline/scoreboard.hh"

namespace siwi::pipeline {
namespace {

using isa::Instruction;
using isa::Opcode;

Instruction
add(RegIdx d, RegIdx a, RegIdx b)
{
    Instruction i;
    i.op = Opcode::IADD;
    i.dst = d;
    i.sa = a;
    i.sb = b;
    return i;
}

using Masks = std::array<LaneMask, 3>;

TEST(DepMatrix, IdentityDiagonal)
{
    DepMatrix m = DepMatrix::identity();
    for (unsigned r = 0; r < 3; ++r) {
        for (unsigned c = 0; c < 3; ++c)
            EXPECT_EQ(m.get(r, c), r == c);
    }
}

TEST(DepMatrix, FromMasksIntersections)
{
    Masks t0 = {LaneMask(0x0f), LaneMask(0xf0), LaneMask{}};
    Masks t1 = {LaneMask(0x03), LaneMask(0x3c), LaneMask(0xc0)};
    DepMatrix m = DepMatrix::fromMasks(t0, t1);
    EXPECT_TRUE(m.get(0, 0));  // 0x0f & 0x03
    EXPECT_TRUE(m.get(0, 1));  // 0x0f & 0x3c
    EXPECT_FALSE(m.get(0, 2)); // 0x0f & 0xc0
    EXPECT_FALSE(m.get(1, 0));
    EXPECT_TRUE(m.get(1, 1));
    EXPECT_TRUE(m.get(1, 2));
    EXPECT_FALSE(m.get(2, 0)); // empty row
}

TEST(DepMatrix, BooleanProduct)
{
    DepMatrix a, b;
    a.set(0, 1);
    b.set(1, 2);
    DepMatrix c = a.multiply(b);
    EXPECT_TRUE(c.get(0, 2));
    EXPECT_FALSE(c.get(0, 1));
    EXPECT_FALSE(c.get(1, 2));
}

TEST(DepMatrix, ProductWithIdentity)
{
    DepMatrix a;
    a.set(0, 2);
    a.set(1, 0);
    EXPECT_EQ(a.multiply(DepMatrix::identity()).raw(), a.raw());
    EXPECT_EQ(DepMatrix::identity().multiply(a).raw(), a.raw());
}

TEST(DepMatrixScoreboard, PaperFigure6Example)
{
    // Figure 6: divergence then reconvergence; the instruction at
    // t-3 in the primary slot is a dependency of both slots after
    // the masks merge back.
    DepMatrixScoreboard sb(6);
    // t-3: primary {1,2} executes "brc" ... take the mul at 22 as
    // entry: issued from primary slot.
    Masks t3 = {LaneMask(0b0111), LaneMask(0b1000), LaneMask{}};
    unsigned e = sb.allocate(1, 0); // writes r1 from primary slot

    // Step to t-2: primary splits; thread sets move.
    Masks t2 = {LaneMask(0b0011), LaneMask(0b0100),
                LaneMask(0b1000)};
    sb.step(t3, t2);
    // Step to t-1: reconvergence pulls threads together.
    Masks t1 = {LaneMask(0b0111), LaneMask(0b1000), LaneMask{}};
    sb.step(t2, t1);

    // An instruction in the primary slot reading r1 depends.
    EXPECT_TRUE(sb.conflicts(add(2, 1, 3), 0));
    // The secondary slot holds threads {3} which never executed the
    // r1 write... but may have inherited it through I3 tracking;
    // exact answer: thread 3 was in slot1 at t-3, not slot0, so no
    // dependency.
    EXPECT_FALSE(sb.conflicts(add(2, 1, 3), 1));
    sb.release(e);
    EXPECT_FALSE(sb.conflicts(add(2, 1, 3), 0));
}

TEST(DepMatrixScoreboard, CapacityAndRelease)
{
    DepMatrixScoreboard sb(2);
    unsigned a = sb.allocate(1, 0);
    sb.allocate(2, 0);
    EXPECT_FALSE(sb.hasFreeEntry());
    EXPECT_EQ(sb.used(), 2u);
    sb.release(a);
    EXPECT_TRUE(sb.hasFreeEntry());
}

TEST(DepMatrixScoreboard, RegisterMismatchNoConflict)
{
    DepMatrixScoreboard sb(4);
    sb.allocate(1, 0);
    EXPECT_FALSE(sb.conflicts(add(2, 3, 4), 0));
    EXPECT_TRUE(sb.conflicts(add(1, 3, 4), 0)); // WAW
}

/**
 * Conservativeness property: simulate random warp-split evolutions;
 * wherever the exact-mask scoreboard reports a dependency, the
 * matrix scoreboard must too (it may over-approximate, never
 * under-approximate).
 */
class Conservative : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(Conservative, NeverMissesTrueDependency)
{
    Rng rng(GetParam() * 1337 + 5);
    const unsigned width = 8;

    // Slot masks evolve randomly but always partition the warp.
    auto random_masks = [&]() {
        Masks m;
        for (unsigned lane = 0; lane < width; ++lane) {
            unsigned slot = unsigned(rng.below(3));
            m[slot].set(lane);
        }
        return m;
    };

    Masks cur = random_masks();
    DepMatrixScoreboard matrix_sb(8);
    Scoreboard exact_sb(1, 8);

    struct Live
    {
        unsigned midx;
        unsigned eidx;
        RegIdx dst;
    };
    std::vector<Live> live;

    for (int step = 0; step < 40; ++step) {
        // Issue a write from a random non-empty slot.
        unsigned slot = unsigned(rng.below(2)); // only hot slots
        if (cur[slot].any() && matrix_sb.hasFreeEntry() &&
            exact_sb.hasFreeEntry(0)) {
            RegIdx dst = RegIdx(rng.below(8));
            Live l;
            l.dst = dst;
            l.midx = matrix_sb.allocate(dst, slot);
            l.eidx = exact_sb.allocate(0, dst, cur[slot]);
            live.push_back(l);
        }

        // Evolve the warp-split structure.
        Masks next = random_masks();
        matrix_sb.step(cur, next);
        cur = next;

        // Check conservativeness for reads from both hot slots.
        for (unsigned s = 0; s < 2; ++s) {
            if (cur[s].none())
                continue;
            for (RegIdx r = 0; r < 8; ++r) {
                Instruction probe = add(7, r, r);
                probe.op = Opcode::MOV;
                probe.dst = 7;
                probe.sa = r;
                bool exact =
                    exact_sb.conflicts(0, probe, cur[s]);
                bool approx = matrix_sb.conflicts(probe, s);
                if (exact) {
                    EXPECT_TRUE(approx)
                        << "step " << step << " slot " << s
                        << " reg " << unsigned(r);
                }
            }
        }

        // Occasionally retire the oldest write.
        if (!live.empty() && rng.below(3) == 0) {
            matrix_sb.release(live.front().midx);
            exact_sb.release(0, live.front().eidx);
            live.erase(live.begin());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Conservative,
                         ::testing::Range(0u, 20u));

} // namespace
} // namespace siwi::pipeline
