/**
 * @file
 * Tests for the SMConfig / GpuConfig field tables: every table
 * field must survive JSON write -> parse -> operator==, unknown
 * keys and bad enum names must be strict errors naming the
 * offender, and the --set style key=value applier must cover
 * malformed input. These tests enumerate the tables, so a new
 * field is covered the moment it is added.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/config_io.hh"
#include "frontend/sched_policy.hh"
#include "pipeline/config_io.hh"

using namespace siwi;
using core::GpuConfig;
using pipeline::PipelineMode;
using pipeline::SMConfig;

namespace {

const PipelineMode all_modes[] = {
    PipelineMode::Baseline, PipelineMode::Warp64,
    PipelineMode::SBI,      PipelineMode::SWI,
    PipelineMode::SBISWI,
};

TEST(SMConfigIo, RoundTripsEveryMode)
{
    for (PipelineMode m : all_modes) {
        SMConfig c = SMConfig::make(m);
        Json j = pipeline::smConfigToJson(c);
        SMConfig parsed; // defaults, overwritten by the full dump
        std::string err;
        ASSERT_TRUE(pipeline::smConfigApplyJson(j, &parsed, &err))
            << err;
        EXPECT_TRUE(parsed == c)
            << pipeline::pipelineModeName(m);
        EXPECT_FALSE(parsed != c);
    }
}

TEST(SMConfigIo, EveryFieldSurvivesMutatedRoundTrip)
{
    // Mutate each table field away from its default, one at a
    // time, and require the dump/parse cycle to reproduce the
    // mutation: a field serialized but not parsed (or vice
    // versa) fails here by construction.
    for (const ConfigField<SMConfig> &f :
         pipeline::smConfigFields()) {
        SMConfig c;
        u64 def = f.get(c);
        u64 alt;
        switch (f.type) {
          case ConfigFieldType::U32:
            alt = def + 1;
            break;
          case ConfigFieldType::Bool:
            alt = def ? 0 : 1;
            break;
          case ConfigFieldType::Enum:
            alt = (def + 1) % f.values.size();
            break;
        }
        f.set(c, alt);
        ASSERT_EQ(f.get(c), alt) << f.key;

        SMConfig parsed;
        std::string err;
        ASSERT_TRUE(pipeline::smConfigApplyJson(
            pipeline::smConfigToJson(c), &parsed, &err))
            << f.key << ": " << err;
        EXPECT_TRUE(parsed == c) << f.key;

        // The mutation must also be visible to operator==.
        EXPECT_FALSE(parsed == SMConfig{}) << f.key;
    }
}

TEST(SMConfigIo, UnknownKeyIsAStrictErrorNamingTheKey)
{
    std::string err;
    Json j = Json::object();
    j.set("hct_entries", Json(8)); // no such field
    SMConfig c;
    EXPECT_FALSE(pipeline::smConfigApplyJson(j, &c, &err));
    EXPECT_NE(err.find("hct_entries"), std::string::npos) << err;
    // A failed apply must leave the config untouched.
    EXPECT_TRUE(c == SMConfig{});
}

TEST(SMConfigIo, FailedApplyLeavesConfigUntouched)
{
    Json j = Json::object();
    j.set("lookup_sets", Json(4)); // valid...
    j.set("bogus", Json(1));       // ...then an error
    SMConfig c;
    std::string err;
    EXPECT_FALSE(pipeline::smConfigApplyJson(j, &c, &err));
    EXPECT_EQ(c.lookup_sets, SMConfig{}.lookup_sets);
}

TEST(SMConfigIo, EnumRejectsBadStringsListingValues)
{
    std::string err;
    Json j = Json::object();
    j.set("lane_shuffle", Json("diagonal"));
    SMConfig c;
    EXPECT_FALSE(pipeline::smConfigApplyJson(j, &c, &err));
    EXPECT_NE(err.find("lane_shuffle"), std::string::npos) << err;
    EXPECT_NE(err.find("XorRev"), std::string::npos) << err;
}

TEST(SMConfigIo, EnumNamesAreCaseInsensitive)
{
    SMConfig c;
    std::string err;
    Json j = Json::object();
    j.set("lane_shuffle", Json("xor"));
    j.set("mode", Json("sbi+swi"));
    ASSERT_TRUE(pipeline::smConfigApplyJson(j, &c, &err)) << err;
    EXPECT_EQ(c.shuffle, pipeline::LaneShufflePolicy::Xor);
    EXPECT_EQ(c.mode, PipelineMode::SBISWI);
}

TEST(SMConfigIo, TypeMismatchesAreErrors)
{
    SMConfig c;
    std::string err;
    Json j = Json::object();
    j.set("warp_width", Json(true));
    EXPECT_FALSE(pipeline::smConfigApplyJson(j, &c, &err));
    j = Json::object();
    j.set("sbi", Json(1));
    EXPECT_FALSE(pipeline::smConfigApplyJson(j, &c, &err));
    j = Json::object();
    j.set("warp_width", Json(-32));
    EXPECT_FALSE(pipeline::smConfigApplyJson(j, &c, &err));
}

TEST(SMConfigIo, KeyValueApplierParsesEveryFieldType)
{
    SMConfig c;
    std::string err;
    ASSERT_TRUE(pipeline::smConfigApplyKeyValue("lookup_sets=4",
                                                &c, &err))
        << err;
    EXPECT_EQ(c.lookup_sets, 4u);
    ASSERT_TRUE(
        pipeline::smConfigApplyKeyValue("sbi=true", &c, &err));
    EXPECT_TRUE(c.sbi);
    ASSERT_TRUE(
        pipeline::smConfigApplyKeyValue("sbi=0", &c, &err));
    EXPECT_FALSE(c.sbi);
    ASSERT_TRUE(pipeline::smConfigApplyKeyValue(
        "lane_shuffle=mirrorodd", &c, &err));
    EXPECT_EQ(c.shuffle, pipeline::LaneShufflePolicy::MirrorOdd);
    ASSERT_TRUE(pipeline::smConfigApplyKeyValue(
        "sched_policy=gto", &c, &err));
    EXPECT_EQ(c.sched_policy,
              frontend::SchedPolicyKind::GreedyThenOldest);
}

TEST(SMConfigIo, KeyValueApplierRejectsMalformedInput)
{
    SMConfig c;
    const char *bad[] = {
        "missing=",         // empty value
        "=value",           // empty key
        "noequalsign",      // no '='
        "unknown_key=3",    // unknown key
        "lookup_sets=abc",  // not a number
        "lookup_sets=-1",   // negative
        "sbi=maybe",        // not a bool
        "lane_shuffle=zig", // bad enum name
        "warp_width=99999999999", // overflows u32
    };
    for (const char *kv : bad) {
        std::string err;
        EXPECT_FALSE(
            pipeline::smConfigApplyKeyValue(kv, &c, &err))
            << kv;
        EXPECT_FALSE(err.empty()) << kv;
    }
    // Nothing may have leaked into the config.
    EXPECT_TRUE(c == SMConfig{});
}

TEST(SMConfigIo, EnumNameArraysMatchTheDisplayFunctions)
{
    // The field-table enum names are the single CLI/JSON
    // vocabulary; they must agree with the name functions the
    // rest of the simulator prints.
    for (const ConfigField<SMConfig> &f :
         pipeline::smConfigFields()) {
        if (f.type != ConfigFieldType::Enum)
            continue;
        for (size_t i = 0; i < f.values.size(); ++i) {
            SMConfig c;
            f.set(c, u64(i));
            if (std::string(f.key) == "mode") {
                EXPECT_STREQ(f.values[i],
                             pipeline::pipelineModeName(c.mode));
            } else if (std::string(f.key) == "lane_shuffle") {
                EXPECT_STREQ(
                    f.values[i],
                    pipeline::laneShuffleName(c.shuffle));
            } else if (std::string(f.key) == "sched_policy") {
                EXPECT_STREQ(
                    f.values[i],
                    frontend::schedPolicyName(c.sched_policy));
            }
        }
    }
}

TEST(SMConfigIo, SchemaDumpDescribesEveryField)
{
    Json schema = pipeline::smConfigSchema();
    ASSERT_TRUE(schema.isArray());
    ASSERT_EQ(schema.arr().size(),
              pipeline::smConfigFields().size());
    size_t i = 0;
    for (const ConfigField<SMConfig> &f :
         pipeline::smConfigFields()) {
        const Json &e = schema.arr()[i++];
        EXPECT_EQ(e.getString("key"), f.key);
        EXPECT_FALSE(e.getString("type").empty()) << f.key;
        EXPECT_FALSE(e.getString("doc").empty()) << f.key;
        EXPECT_NE(e.find("default"), nullptr) << f.key;
        if (f.type == ConfigFieldType::Enum) {
            const Json *vals = e.find("values");
            ASSERT_NE(vals, nullptr) << f.key;
            EXPECT_EQ(vals->arr().size(), f.values.size());
        }
    }
}

TEST(SMConfigIo, EqualityDistinguishesTheFiveMachines)
{
    for (PipelineMode a : all_modes) {
        for (PipelineMode b : all_modes) {
            SMConfig ca = SMConfig::make(a);
            SMConfig cb = SMConfig::make(b);
            if (a == b)
                EXPECT_TRUE(ca == cb);
            else
                EXPECT_TRUE(ca != cb)
                    << pipeline::pipelineModeName(a) << " vs "
                    << pipeline::pipelineModeName(b);
        }
    }
}

TEST(SMConfigIo, CheckInvariantsIsTheNonFatalValidate)
{
    // (A default-constructed SMConfig is not a machine — memory
    // splits require the heap — so start from a canonical one.)
    SMConfig c = SMConfig::make(PipelineMode::Baseline);
    EXPECT_TRUE(c.checkInvariants().empty());
    c.warp_width = 3;
    EXPECT_FALSE(c.checkInvariants().empty());
    c = SMConfig::make(PipelineMode::Baseline);
    c.swi = true; // without cascaded scheduling
    EXPECT_NE(c.checkInvariants().find("swi"),
              std::string::npos);
    // Zero-width units would panic deep inside the exec stage;
    // the non-fatal check must catch them at load time.
    for (const char *kv :
         {"mad_width=0", "sfu_width=0", "lsu_width=0",
          "mad_groups=0"}) {
        c = SMConfig::make(PipelineMode::Baseline);
        std::string err;
        ASSERT_TRUE(
            pipeline::smConfigApplyKeyValue(kv, &c, &err));
        EXPECT_FALSE(c.checkInvariants().empty()) << kv;
    }
    for (PipelineMode m : all_modes)
        EXPECT_TRUE(
            SMConfig::make(m).checkInvariants().empty());
    // L1 geometries the cache constructor would panic on must
    // already fail the non-fatal check (whole sets only).
    c = SMConfig::make(PipelineMode::Baseline);
    c.mem.l1.size_bytes = 1000; // not a multiple of ways*block
    EXPECT_NE(c.checkInvariants().find("l1_size_bytes"),
              std::string::npos);
    c = SMConfig::make(PipelineMode::Baseline);
    c.mem.l1.ways = 65536; // u32 ways*block would wrap
    c.mem.l1.block_bytes = 65536;
    EXPECT_FALSE(c.checkInvariants().empty());
}

TEST(GpuConfigIo, RoundTripAndEquality)
{
    GpuConfig c =
        GpuConfig::make(PipelineMode::SBISWI, /*num_sms=*/4);
    Json j = core::gpuConfigToJson(c);
    // The dump must nest the full SM block.
    ASSERT_NE(j.find("sm"), nullptr);
    GpuConfig parsed;
    std::string err;
    ASSERT_TRUE(core::gpuConfigApplyJson(j, &parsed, &err))
        << err;
    EXPECT_TRUE(parsed == c);

    parsed.l2.ways = 8;
    EXPECT_TRUE(parsed != c);
    parsed = c;
    parsed.sm.lookup_sets = 2; // nested SM fields count too
    EXPECT_TRUE(parsed != c);
}

TEST(GpuConfigIo, UnknownChipKeyIsAnError)
{
    GpuConfig c;
    std::string err;
    Json j = Json::object();
    j.set("l3_size_bytes", Json(1024));
    EXPECT_FALSE(core::gpuConfigApplyJson(j, &c, &err));
    EXPECT_NE(err.find("l3_size_bytes"), std::string::npos);
    // Errors inside the nested "sm" block propagate too.
    j = Json::object();
    Json sm = Json::object();
    sm.set("bogus_knob", Json(1));
    j.set("sm", std::move(sm));
    EXPECT_FALSE(core::gpuConfigApplyJson(j, &c, &err));
    EXPECT_NE(err.find("bogus_knob"), std::string::npos);
}

TEST(ConfigDocs, ConfigMdDocumentsEveryField)
{
    // docs/CONFIG.md is generated from the schema dump; this
    // gate catches a field added to a table without the doc
    // regenerated (see the note at the end of CONFIG.md).
    std::ifstream in(std::string(SIWI_SOURCE_DIR) +
                     "/docs/CONFIG.md");
    ASSERT_TRUE(in.is_open());
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string doc = buf.str();
    auto backticked = [](const char *key) {
        std::string needle = "`";
        needle += key;
        needle += '`';
        return needle;
    };
    for (const ConfigField<SMConfig> &f :
         pipeline::smConfigFields())
        EXPECT_NE(doc.find(backticked(f.key)), std::string::npos)
            << "docs/CONFIG.md is missing SM field " << f.key;
    for (const ConfigField<GpuConfig> &f :
         core::gpuConfigFields())
        EXPECT_NE(doc.find(backticked(f.key)), std::string::npos)
            << "docs/CONFIG.md is missing chip field " << f.key;
}

TEST(GpuConfigIo, MakeDerivesAValidChip)
{
    for (unsigned sms : {1u, 2u, 4u, 8u}) {
        GpuConfig c = GpuConfig::make(PipelineMode::SBI, sms);
        EXPECT_TRUE(c.checkInvariants().empty()) << sms;
        EXPECT_EQ(c.num_sms, sms);
    }
    GpuConfig c = GpuConfig::make(PipelineMode::SBI, 2);
    c.shared_backend = false; // multi-SM without shared backend
    EXPECT_FALSE(c.checkInvariants().empty());
}

} // namespace
