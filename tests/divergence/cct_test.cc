/**
 * @file
 * Cold Context Table tests: sideband sorter timing and the degraded
 * stack mode (paper 3.4).
 */

#include <gtest/gtest.h>

#include "divergence/cct.hh"

namespace siwi::divergence {
namespace {

TEST(Cct, StartsEmpty)
{
    Cct c(8, 1);
    EXPECT_TRUE(c.empty());
    EXPECT_FALSE(c.full());
    EXPECT_FALSE(c.pop(0).has_value());
    EXPECT_FALSE(c.minPc().has_value());
}

TEST(Cct, InsertTakesWalkTime)
{
    Cct c(8, 1);
    c.insert(1, 10, 0);
    // Parked in the sorter: counted in size, poppable as fallback.
    EXPECT_EQ(c.size(), 1u);
    c.tick(0);
    // Walk of 1 step completes at cycle 1.
    c.tick(1);
    auto e = c.pop(1);
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->id, 1u);
}

TEST(Cct, SortedOrderWhenSorterKeepsUp)
{
    Cct c(8, 4);
    Cycle t = 0;
    for (Pc pc : {30u, 10u, 20u}) {
        c.insert(pc, pc, t);
        t += 4; // let each walk finish
        c.tick(t);
    }
    EXPECT_EQ(c.pop(t)->pc, 10u);
    EXPECT_EQ(c.pop(t)->pc, 20u);
    EXPECT_EQ(c.pop(t)->pc, 30u);
}

TEST(Cct, DegradedModePushesHead)
{
    Cct c(8, 1);
    // First insert parks in the sorter; the second arrives while
    // busy and degrades to a head push (stack behavior).
    c.insert(1, 50, 0);
    c.insert(2, 10, 0);
    EXPECT_EQ(c.stats().degraded_inserts, 1u);
    // Pop returns the degraded head first (the "last inserted").
    auto e = c.pop(0);
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->id, 2u);
}

TEST(Cct, PopFallsBackToParkedEntry)
{
    Cct c(8, 1);
    c.insert(7, 42, 0);
    auto e = c.pop(0); // before the walk finishes
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->id, 7u);
    EXPECT_TRUE(c.empty());
}

TEST(Cct, MinPcScansEverything)
{
    Cct c(8, 1);
    c.insert(1, 50, 0);
    c.tick(5);
    c.insert(2, 10, 5); // parked
    auto min = c.minPc();
    ASSERT_TRUE(min.has_value());
    EXPECT_EQ(*min, 10u);
}

TEST(Cct, PopMinRemovesLowest)
{
    Cct c(8, 8);
    c.insert(1, 30, 0);
    c.tick(1);
    c.insert(2, 10, 1);
    c.tick(2);
    c.insert(3, 20, 2);
    c.tick(10);
    auto e = c.popMin(10);
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->pc, 10u);
    EXPECT_EQ(c.size(), 2u);
}

TEST(Cct, CapacityTracked)
{
    Cct c(2, 1);
    c.insert(1, 1, 0);
    c.insert(2, 2, 0);
    EXPECT_TRUE(c.full());
    EXPECT_EQ(c.stats().max_size, 2u);
}

TEST(Cct, StatsCountInsertsAndPops)
{
    Cct c(8, 1);
    c.insert(1, 1, 0);
    c.tick(2);
    c.insert(2, 2, 2);
    c.pop(3);
    c.pop(3);
    EXPECT_EQ(c.stats().inserts, 2u);
    EXPECT_EQ(c.stats().pops, 2u);
}

TEST(Cct, HeapOrderRestoredAfterDegradedBurst)
{
    // After a degraded burst, popMin still finds the true minimum
    // (the promotion rule in the SplitHeap relies on this).
    Cct c(8, 1);
    c.insert(1, 40, 0);
    c.insert(2, 30, 0); // degraded
    c.insert(3, 20, 0); // degraded
    c.insert(4, 10, 0); // degraded
    c.tick(10);
    EXPECT_EQ(c.popMin(10)->pc, 10u);
    EXPECT_EQ(c.popMin(10)->pc, 20u);
    EXPECT_EQ(c.popMin(10)->pc, 30u);
    EXPECT_EQ(c.popMin(10)->pc, 40u);
}

} // namespace
} // namespace siwi::divergence
