/**
 * @file
 * Baseline reconvergence-stack tests.
 */

#include <gtest/gtest.h>

#include "divergence/reconv_stack.hh"

namespace siwi::divergence {
namespace {

TEST(ReconvStack, StartsWithInitialMask)
{
    ReconvStack s(LaneMask(0xf), 0);
    EXPECT_FALSE(s.done());
    EXPECT_EQ(s.pc(), 0u);
    EXPECT_EQ(s.mask().bits(), 0xfu);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(ReconvStack, EmptyInitialMaskIsDone)
{
    ReconvStack s(LaneMask{}, 0);
    EXPECT_TRUE(s.done());
}

TEST(ReconvStack, AdvanceMovesTop)
{
    ReconvStack s(LaneMask(0xf), 0);
    s.advance(1);
    EXPECT_EQ(s.pc(), 1u);
}

TEST(ReconvStack, UniformBranchNoDivergence)
{
    ReconvStack s(LaneMask(0xf), 0);
    EXPECT_FALSE(s.branch(10, 1, 20, LaneMask(0xf)));
    EXPECT_EQ(s.pc(), 10u);
    EXPECT_EQ(s.depth(), 1u);
    EXPECT_FALSE(s.branch(5, 11, 20, LaneMask{}));
    EXPECT_EQ(s.pc(), 11u);
}

TEST(ReconvStack, DivergentIfElseReconverges)
{
    // Branch at 1: taken {lanes 0,1} -> 10, fall {2,3} -> 2,
    // reconvergence at 20.
    ReconvStack s(LaneMask(0xf), 1);
    EXPECT_TRUE(s.branch(10, 2, 20, LaneMask(0b0011)));
    EXPECT_EQ(s.depth(), 3u);
    // Taken path runs first.
    EXPECT_EQ(s.pc(), 10u);
    EXPECT_EQ(s.mask().bits(), 0b0011u);
    s.advance(20); // reaches reconvergence -> pop
    EXPECT_EQ(s.pc(), 2u);
    EXPECT_EQ(s.mask().bits(), 0b1100u);
    s.advance(20);
    // Full reconvergence: merged mask at 20.
    EXPECT_EQ(s.pc(), 20u);
    EXPECT_EQ(s.mask().bits(), 0xfu);
    EXPECT_EQ(s.depth(), 1u);
    EXPECT_EQ(s.reconvergences(), 2u);
}

TEST(ReconvStack, TakenTargetAtReconvPopsImmediately)
{
    // if-without-else: taken target IS the join. The taken path must
    // wait, not run ahead (regression test for the barrier deadlock).
    ReconvStack s(LaneMask(0xf), 1);
    EXPECT_TRUE(s.branch(20, 2, 20, LaneMask(0b0011)));
    // Fall-through path (the "then" body) executes first.
    EXPECT_EQ(s.pc(), 2u);
    EXPECT_EQ(s.mask().bits(), 0b1100u);
    s.advance(20);
    EXPECT_EQ(s.pc(), 20u);
    EXPECT_EQ(s.mask().bits(), 0xfu);
}

TEST(ReconvStack, NestedDivergence)
{
    ReconvStack s(LaneMask(0xf), 0);
    // Outer: {0,1} vs {2,3}, reconv 100.
    s.branch(10, 1, 100, LaneMask(0b0011));
    EXPECT_EQ(s.pc(), 10u);
    // Inner divergence on the taken path: {0} vs {1}, reconv 50.
    s.branch(20, 11, 50, LaneMask(0b0001));
    EXPECT_EQ(s.pc(), 20u);
    EXPECT_EQ(s.mask().bits(), 0b0001u);
    EXPECT_EQ(s.maxDepth(), 5u);
    s.advance(50);
    EXPECT_EQ(s.pc(), 11u);
    EXPECT_EQ(s.mask().bits(), 0b0010u);
    s.advance(50);
    EXPECT_EQ(s.pc(), 50u);
    EXPECT_EQ(s.mask().bits(), 0b0011u);
    s.advance(100);
    EXPECT_EQ(s.pc(), 1u);
    EXPECT_EQ(s.mask().bits(), 0b1100u);
    s.advance(100);
    EXPECT_EQ(s.pc(), 100u);
    EXPECT_EQ(s.mask().bits(), 0xfu);
}

TEST(ReconvStack, LoopDivergence)
{
    // Backward branch at 5 -> 2, exit at 6 (= reconv).
    ReconvStack s(LaneMask(0b11), 5);
    // Lane 0 loops again, lane 1 exits.
    EXPECT_TRUE(s.branch(2, 6, 6, LaneMask(0b01)));
    EXPECT_EQ(s.pc(), 2u);
    EXPECT_EQ(s.mask().bits(), 0b01u);
    // Lane 0 reaches the branch again; now exits too.
    s.advance(5);
    EXPECT_FALSE(s.branch(2, 6, 6, LaneMask{}));
    EXPECT_EQ(s.pc(), 6u);
    EXPECT_EQ(s.mask().bits(), 0b11u);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(ReconvStack, ExitRemovesThreadsEverywhere)
{
    ReconvStack s(LaneMask(0xf), 0);
    s.branch(10, 1, 20, LaneMask(0b0011));
    // Taken path exits entirely.
    s.exitThreads(LaneMask(0b0011));
    EXPECT_EQ(s.pc(), 1u);
    EXPECT_EQ(s.mask().bits(), 0b1100u);
    s.exitThreads(LaneMask(0b1100));
    EXPECT_TRUE(s.done());
}

TEST(ReconvStack, DivergenceWithoutReconvPoint)
{
    ReconvStack s(LaneMask(0xf), 0);
    EXPECT_TRUE(s.branch(10, 1, invalid_pc, LaneMask(0b0011)));
    EXPECT_EQ(s.pc(), 10u);
    // Taken path exits; the fall path surfaces.
    s.exitThreads(LaneMask(0b0011));
    EXPECT_EQ(s.pc(), 1u);
    EXPECT_EQ(s.mask().bits(), 0b1100u);
    s.exitThreads(LaneMask(0b1100));
    EXPECT_TRUE(s.done());
}

TEST(ReconvStack, VersionBumpsOnChange)
{
    ReconvStack s(LaneMask(0xf), 0);
    u32 v0 = s.version();
    s.advance(1);
    EXPECT_NE(s.version(), v0);
    u32 v1 = s.version();
    s.branch(5, 2, 9, LaneMask(0b0011));
    EXPECT_NE(s.version(), v1);
}

TEST(ReconvStack, MasksArePartitionedInvariant)
{
    // Property: at any time, the masks in the stack cover each lane
    // at most once *per level transition*; the top mask is a subset
    // of every deeper reconvergence entry's mask.
    ReconvStack s(LaneMask(0xff), 0);
    s.branch(10, 1, 100, LaneMask(0x0f));
    s.branch(20, 11, 50, LaneMask(0x03));
    EXPECT_TRUE(s.mask().subsetOf(LaneMask(0x0f)));
    EXPECT_TRUE(s.mask().subsetOf(LaneMask(0xff)));
}

} // namespace
} // namespace siwi::divergence
