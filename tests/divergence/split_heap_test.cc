/**
 * @file
 * Warp-split heap tests: splits, merges, spill/refill, promotion,
 * memory splits, barriers.
 */

#include <gtest/gtest.h>

#include "divergence/split_heap.hh"

namespace siwi::divergence {
namespace {

SplitHeapConfig
cfg(unsigned cap = 8)
{
    SplitHeapConfig c;
    c.cct_capacity = cap;
    c.cct_steps_per_cycle = 64; // instant sorter unless testing it
    return c;
}

TEST(SplitHeap, InitialState)
{
    SplitHeap h(cfg(), LaneMask(0xff), 0);
    EXPECT_FALSE(h.done());
    ASSERT_NE(h.hotId(0), no_ctx);
    EXPECT_EQ(h.hotId(1), no_ctx);
    EXPECT_EQ(h.ctx(h.hotId(0)).pc, 0u);
    EXPECT_EQ(h.cpc1(), 0u);
    EXPECT_EQ(h.liveMask().bits(), 0xffull);
    EXPECT_EQ(h.liveContexts(), 1u);
}

TEST(SplitHeap, AdvanceMovesPc)
{
    SplitHeap h(cfg(), LaneMask(0xff), 0);
    u32 id = h.hotId(0);
    u32 v = h.ctx(id).version;
    h.advance(id, 1, 0);
    EXPECT_EQ(h.ctx(id).pc, 1u);
    EXPECT_NE(h.ctx(id).version, v);
}

TEST(SplitHeap, UniformBranch)
{
    SplitHeap h(cfg(), LaneMask(0xff), 0);
    u32 id = h.hotId(0);
    h.branchResolve(id, 10, LaneMask(0xff), 0, LaneMask{}, 0);
    EXPECT_EQ(h.ctx(id).pc, 10u);
    EXPECT_EQ(h.liveContexts(), 1u);
    EXPECT_EQ(h.stats().splits, 0u);
}

TEST(SplitHeap, DivergentBranchSplitsSorted)
{
    SplitHeap h(cfg(), LaneMask(0xff), 5);
    u32 id = h.hotId(0);
    // Taken {0..3} -> 20, fall {4..7} -> 6.
    h.branchResolve(id, 20, LaneMask(0x0f), 6, LaneMask(0xf0), 0);
    EXPECT_EQ(h.liveContexts(), 2u);
    EXPECT_EQ(h.stats().splits, 1u);
    // Hot slots sorted by PC.
    EXPECT_EQ(h.ctx(h.hotId(0)).pc, 6u);
    EXPECT_EQ(h.ctx(h.hotId(0)).mask.bits(), 0xf0ull);
    EXPECT_EQ(h.ctx(h.hotId(1)).pc, 20u);
    EXPECT_EQ(h.cpc1(), 6u);
}

TEST(SplitHeap, ReconvergenceMergesEqualPc)
{
    SplitHeap h(cfg(), LaneMask(0xff), 5);
    u32 id = h.hotId(0);
    h.branchResolve(id, 20, LaneMask(0x0f), 6, LaneMask(0xf0), 0);
    // Advance the low split to the high split's PC.
    u32 low = h.hotId(0);
    h.advance(low, 20, 1);
    EXPECT_EQ(h.liveContexts(), 1u);
    EXPECT_EQ(h.ctx(h.hotId(0)).mask.bits(), 0xffull);
    EXPECT_EQ(h.stats().merges, 1u);
}

TEST(SplitHeap, ThirdSplitSpillsToColdStore)
{
    SplitHeap h(cfg(), LaneMask(0xff), 0);
    u32 id = h.hotId(0);
    h.branchResolve(id, 10, LaneMask(0x0f), 1, LaneMask(0xf0), 0);
    u32 low = h.hotId(0); // pc 1
    h.branchResolve(low, 30, LaneMask(0x30), 2, LaneMask(0xc0), 1);
    EXPECT_EQ(h.liveContexts(), 3u);
    // Hot = two lowest (2, 10); 30 spilled cold.
    EXPECT_EQ(h.ctx(h.hotId(0)).pc, 2u);
    EXPECT_EQ(h.ctx(h.hotId(1)).pc, 10u);
    EXPECT_EQ(h.cpc1(), 2u);
}

TEST(SplitHeap, ColdContextRefillsEmptiedSlot)
{
    SplitHeap h(cfg(), LaneMask(0xff), 0);
    u32 id = h.hotId(0);
    h.branchResolve(id, 10, LaneMask(0x0f), 1, LaneMask(0xf0), 0);
    u32 low = h.hotId(0);
    h.branchResolve(low, 30, LaneMask(0x30), 2, LaneMask(0xc0), 1);
    // Exit the pc=2 split: the cold pc=30 context must come back.
    h.exitResolve(h.hotId(0), 2);
    h.tick(3);
    EXPECT_EQ(h.liveContexts(), 2u);
    EXPECT_EQ(h.ctx(h.hotId(0)).pc, 10u);
    EXPECT_EQ(h.ctx(h.hotId(1)).pc, 30u);
}

TEST(SplitHeap, ExitAllThreadsDone)
{
    SplitHeap h(cfg(), LaneMask(0xff), 0);
    h.exitResolve(h.hotId(0), 0);
    EXPECT_TRUE(h.done());
    EXPECT_TRUE(h.liveMask().none());
}

TEST(SplitHeap, CanSplitBoundedByCapacity)
{
    SplitHeap h(cfg(2), LaneMask(0xff), 0);
    // Split repeatedly; capacity 2+2.
    Pc pc = 0;
    unsigned safe = 0;
    while (h.canSplit() && safe < 16) {
        u32 hot = h.hotId(0);
        LaneMask m = h.ctx(hot).mask;
        if (m.count() < 2)
            break;
        LaneMask half(m.bits() & (m.bits() >> 1));
        // Take one lane off.
        LaneMask one = LaneMask::lane(m.first());
        h.branchResolve(hot, pc + 100, one, h.ctx(hot).pc + 1,
                        m & ~one, pc);
        ++pc;
        ++safe;
    }
    EXPECT_LE(h.liveContexts(), 4u);
    EXPECT_FALSE(h.canSplit());
}

TEST(SplitHeap, MemorySplitAdvancesSubset)
{
    SplitHeap h(cfg(), LaneMask(0xff), 7);
    u32 id = h.hotId(0);
    h.memorySplit(id, LaneMask(0x0f), 8, 0);
    EXPECT_EQ(h.liveContexts(), 2u);
    // Remaining lanes replay at 7; advanced lanes at 8.
    EXPECT_EQ(h.ctx(h.hotId(0)).pc, 7u);
    EXPECT_EQ(h.ctx(h.hotId(0)).mask.bits(), 0xf0ull);
    EXPECT_EQ(h.ctx(h.hotId(1)).pc, 8u);
    EXPECT_EQ(h.ctx(h.hotId(1)).mask.bits(), 0x0full);
    EXPECT_EQ(h.stats().splits, 1u);
}

TEST(SplitHeap, BarrierBlockedDoNotMergeWithArriving)
{
    SplitHeap h(cfg(), LaneMask(0xff), 5);
    u32 id = h.hotId(0);
    h.branchResolve(id, 9, LaneMask(0x0f), 6, LaneMask(0xf0), 0);
    // The pc=9 split arrives at a barrier.
    u32 at9 = h.hotId(1);
    h.ctxMut(at9).barrier_blocked = true;
    // The other split advances to 9 but must NOT merge.
    h.advance(h.hotId(0), 9, 1);
    EXPECT_EQ(h.liveContexts(), 2u);
    // Once it also blocks (arrival counted), both may merge.
    u32 other = h.hotId(0) == at9 ? h.hotId(1) : h.hotId(0);
    h.ctxMut(other).barrier_blocked = true;
    h.tick(2);
    EXPECT_EQ(h.liveContexts(), 1u);
    EXPECT_TRUE(h.ctx(h.hotId(0)).barrier_blocked);
    EXPECT_EQ(h.ctx(h.hotId(0)).mask.bits(), 0xffull);
}

TEST(SplitHeap, BarrierReleaseAdvancesAllBlocked)
{
    SplitHeap h(cfg(), LaneMask(0xff), 5);
    u32 id = h.hotId(0);
    h.branchResolve(id, 9, LaneMask(0x0f), 6, LaneMask(0xf0), 0);
    h.ctxMut(h.hotId(0)).barrier_blocked = true;
    h.ctxMut(h.hotId(1)).barrier_blocked = true;
    h.barrierRelease(1);
    for (unsigned s = 0; s < 2; ++s) {
        if (h.hotId(s) == no_ctx)
            continue;
        EXPECT_FALSE(h.ctx(h.hotId(s)).barrier_blocked);
    }
    EXPECT_EQ(h.cpc1(), 7u);
}

TEST(SplitHeap, PromotionRestoresHeapOrder)
{
    // Force a low-PC context into the CCT via a degraded insert,
    // then check the promotion rule swaps it back hot.
    SplitHeapConfig c;
    c.cct_capacity = 8;
    c.cct_steps_per_cycle = 1; // slow sorter: degraded pushes
    SplitHeap h(c, LaneMask(0xff), 50);
    u32 id = h.hotId(0);
    h.branchResolve(id, 60, LaneMask(0x0f), 51, LaneMask(0xf0), 0);
    // Split the low one twice in the same cycle window so inserts
    // collide in the sorter.
    u32 low = h.hotId(0);
    h.branchResolve(low, 70, LaneMask(0x10), 52, LaneMask(0xe0), 0);
    low = h.hotId(0);
    h.branchResolve(low, 40, LaneMask(0x20), 53, LaneMask(0xc0), 0);
    // A pc=40 context now exists; after ticks it must surface hot.
    for (Cycle t = 1; t < 10; ++t)
        h.tick(t);
    EXPECT_EQ(h.cpc1(), 40u);
    EXPECT_EQ(h.ctx(h.hotId(0)).pc, 40u);
}

TEST(SplitHeap, LiveMaskInvariantUnderChurn)
{
    // Property: no threads appear or disappear through split /
    // merge / spill / promote churn.
    SplitHeap h(cfg(4), LaneMask(0xffff), 0);
    Cycle t = 0;
    for (int round = 0; round < 40; ++round) {
        u32 hot = h.hotId(0);
        if (hot == no_ctx)
            break;
        LaneMask m = h.ctx(hot).mask;
        Pc pc = h.ctx(hot).pc;
        if (m.count() >= 2 && h.canSplit() && round % 3 != 2) {
            LaneMask one = LaneMask::lane(m.first());
            h.branchResolve(hot, pc + 3, one, pc + 1, m & ~one, t);
        } else {
            h.advance(hot, pc + 1, t);
        }
        h.tick(++t);
        EXPECT_EQ(h.liveMask().bits(), 0xffffull) << "round "
                                                  << round;
    }
}

} // namespace
} // namespace siwi::divergence
