/**
 * @file
 * HCT sorter network tests (paper Figure 5(b)): sort, compact,
 * merge, spill, including a parameterized sweep over input
 * orderings.
 */

#include <gtest/gtest.h>

#include "divergence/hct.hh"

namespace siwi::divergence {
namespace {

SorterEntry
entry(Pc pc, u64 mask, u32 id, bool pinned = false,
      bool barrier = false)
{
    SorterEntry e;
    e.pc = pc;
    e.mask = LaneMask(mask);
    e.valid = true;
    e.pinned = pinned;
    e.barrier = barrier;
    e.id = id;
    return e;
}

TEST(HctSorter, EmptyInputs)
{
    SorterResult r = hctSort({}, {}, {});
    EXPECT_FALSE(r.hot[0].valid);
    EXPECT_FALSE(r.hot[1].valid);
    EXPECT_FALSE(r.spill.valid);
    EXPECT_TRUE(r.want_pop);
}

TEST(HctSorter, SingleEntryWantsPop)
{
    SorterResult r = hctSort(entry(5, 0xf, 1), {}, {});
    EXPECT_TRUE(r.hot[0].valid);
    EXPECT_EQ(r.hot[0].pc, 5u);
    EXPECT_FALSE(r.hot[1].valid);
    EXPECT_TRUE(r.want_pop);
}

TEST(HctSorter, TwoEntriesSorted)
{
    SorterResult r = hctSort(entry(9, 0x1, 1), entry(3, 0x2, 2), {});
    EXPECT_EQ(r.hot[0].pc, 3u);
    EXPECT_EQ(r.hot[1].pc, 9u);
    EXPECT_FALSE(r.want_pop);
    EXPECT_FALSE(r.spill.valid);
}

TEST(HctSorter, ThreeEntriesSpillHighest)
{
    SorterResult r = hctSort(entry(9, 0x1, 1), entry(3, 0x2, 2),
                             entry(6, 0x4, 3));
    EXPECT_EQ(r.hot[0].pc, 3u);
    EXPECT_EQ(r.hot[1].pc, 6u);
    ASSERT_TRUE(r.spill.valid);
    EXPECT_EQ(r.spill.pc, 9u);
    EXPECT_EQ(r.spill.id, 1u);
}

TEST(HctSorter, EqualPcMergesMasks)
{
    SorterResult r = hctSort(entry(4, 0x3, 1), entry(4, 0xc, 2), {});
    ASSERT_TRUE(r.hot[0].valid);
    EXPECT_EQ(r.hot[0].pc, 4u);
    EXPECT_EQ(r.hot[0].mask.bits(), 0xfu);
    EXPECT_FALSE(r.hot[1].valid);
    EXPECT_EQ(r.merges, 1u);
    EXPECT_TRUE(r.want_pop);
}

TEST(HctSorter, TripleMergeCollapsesToOne)
{
    SorterResult r = hctSort(entry(4, 0x1, 1), entry(4, 0x2, 2),
                             entry(4, 0x4, 3));
    ASSERT_TRUE(r.hot[0].valid);
    EXPECT_EQ(r.hot[0].mask.bits(), 0x7u);
    EXPECT_EQ(r.merges, 2u);
    EXPECT_FALSE(r.spill.valid);
}

TEST(HctSorter, PinnedEntryNeverMerges)
{
    SorterResult r = hctSort(entry(4, 0x3, 1, true),
                             entry(4, 0xc, 2), {});
    EXPECT_TRUE(r.hot[0].valid);
    EXPECT_TRUE(r.hot[1].valid);
    EXPECT_EQ(r.merges, 0u);
}

TEST(HctSorter, PinnedEntryNeverSpills)
{
    // Pinned entry has the highest PC; the unpinned one spills.
    SorterResult r = hctSort(entry(9, 0x1, 1, true),
                             entry(3, 0x2, 2), entry(6, 0x4, 3));
    ASSERT_TRUE(r.spill.valid);
    EXPECT_EQ(r.spill.id, 3u);
    // Pinned stays hot despite higher PC.
    bool pinned_hot = (r.hot[0].valid && r.hot[0].id == 1) ||
                      (r.hot[1].valid && r.hot[1].id == 1);
    EXPECT_TRUE(pinned_hot);
}

TEST(HctSorter, BarrierStatesMustMatchToMerge)
{
    // Arrived + not-arrived at the same PC: no merge.
    SorterResult r = hctSort(entry(4, 0x3, 1, false, true),
                             entry(4, 0xc, 2, false, false), {});
    EXPECT_EQ(r.merges, 0u);
    // Both arrived: merge (heap drain under barriers).
    r = hctSort(entry(4, 0x3, 1, false, true),
                entry(4, 0xc, 2, false, true), {});
    EXPECT_EQ(r.merges, 1u);
    EXPECT_TRUE(r.hot[0].barrier);
}

class HctSorterOrdering
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(HctSorterOrdering, OrderInvariant)
{
    // Property: the sorter result is the same regardless of which
    // input port carries which context.
    auto [a, b, c] = GetParam();
    SorterEntry e[3] = {entry(7, 0x1, 10), entry(2, 0x2, 20),
                        entry(5, 0x4, 30)};
    SorterResult r = hctSort(e[a], e[b], e[c]);
    EXPECT_EQ(r.hot[0].pc, 2u);
    EXPECT_EQ(r.hot[1].pc, 5u);
    ASSERT_TRUE(r.spill.valid);
    EXPECT_EQ(r.spill.pc, 7u);
}

INSTANTIATE_TEST_SUITE_P(
    Permutations, HctSorterOrdering,
    ::testing::Values(std::tuple{0, 1, 2}, std::tuple{0, 2, 1},
                      std::tuple{1, 0, 2}, std::tuple{1, 2, 0},
                      std::tuple{2, 0, 1}, std::tuple{2, 1, 0}));

TEST(HctSorter, MaskUnionPreserved)
{
    // Property: no threads are lost through the network.
    SorterEntry a = entry(7, 0x0f, 1);
    SorterEntry b = entry(7, 0xf0, 2);
    SorterEntry c = entry(3, 0xf00, 3);
    SorterResult r = hctSort(a, b, c);
    LaneMask all;
    for (const auto &h : r.hot) {
        if (h.valid)
            all |= h.mask;
    }
    if (r.spill.valid)
        all |= r.spill.mask;
    EXPECT_EQ(all.bits(), 0xfffull);
}

} // namespace
} // namespace siwi::divergence
