/**
 * @file
 * Cross-configuration determinism: the SIMT programming model
 * guarantees identical functional results regardless of the
 * microarchitecture. Random structured kernels must produce
 * bit-identical memory images on all five machines.
 */

#include <gtest/gtest.h>

#include "cfg/compiler.hh"
#include "common/rng.hh"
#include "core/gpu.hh"
#include "isa/builder.hh"

namespace siwi {
namespace {

using isa::Imm;
using isa::KernelBuilder;
using isa::Reg;
using isa::SpecialReg;
using pipeline::PipelineMode;

/**
 * Random race-free kernel generator: every thread works on its own
 * output cell; control flow depends on tid and loaded data.
 */
isa::Program
randomKernel(u64 seed)
{
    Rng rng(seed);
    KernelBuilder b("random");
    Reg gtid = b.reg(), v = b.reg(), w = b.reg(), c = b.reg(),
        addr = b.reg();
    b.s2r(gtid, SpecialReg::GTID);
    b.shl(addr, gtid, Imm(2));
    b.iadd(addr, addr, Imm(0x10000));
    b.ld(v, addr); // per-thread input
    b.mov(w, gtid);

    int depth = 0;
    int stmts = 6 + int(rng.below(8));
    for (int s = 0; s < stmts; ++s) {
        switch (rng.below(6)) {
          case 0:
            b.iadd(v, v, Imm(i32(rng.below(50))));
            break;
          case 1:
            b.imul(w, w, Imm(3));
            b.iadd(v, v, w);
            break;
          case 2:
            b.and_(c, gtid, Imm(i32(1 + rng.below(7))));
            b.if_(c);
            b.iadd(v, v, Imm(7));
            b.else_();
            b.isub(v, v, Imm(5));
            b.endIf();
            ++depth;
            break;
          case 3: {
            b.isetlt(c, v, Imm(i32(rng.below(1000))));
            b.if_(c);
            b.shl(v, v, Imm(1));
            b.endIf();
            break;
          }
          case 4: {
            Reg i = b.reg(), lc = b.reg();
            b.movi(i, 0);
            b.loop();
            b.iadd(v, v, Imm(1));
            b.iadd(i, i, Imm(1));
            b.isetlt(lc, i, Imm(i32(1 + rng.below(5))));
            b.endLoopIf(lc);
            break;
          }
          case 5:
            b.xor_(v, v, w);
            break;
        }
    }
    Reg out = b.reg();
    b.shl(out, gtid, Imm(2));
    b.iadd(out, out, Imm(0x40000));
    b.st(out, 0, v);
    return b.build();
}

class CrossConfig : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CrossConfig, IdenticalResultsOnAllMachines)
{
    isa::Program raw = randomKernel(GetParam() * 31 + 17);
    core::Kernel kernel = core::Kernel::compile(raw);

    const unsigned threads = 256;
    std::vector<u32> reference;
    for (PipelineMode m :
         {PipelineMode::Baseline, PipelineMode::Warp64,
          PipelineMode::SBI, PipelineMode::SWI,
          PipelineMode::SBISWI}) {
        core::Gpu gpu(pipeline::SMConfig::make(m));
        Rng data(99);
        for (unsigned i = 0; i < threads; ++i)
            gpu.memory().write32(0x10000 + Addr(i) * 4,
                                 u32(data.below(1 << 16)));
        core::LaunchConfig lc;
        lc.grid_blocks = 2;
        lc.block_threads = threads / 2;
        auto st = gpu.launch(kernel, lc);
        ASSERT_FALSE(st.timed_out)
            << pipeline::pipelineModeName(m);

        std::vector<u32> out =
            gpu.memory().readWords(0x40000, threads);
        if (reference.empty()) {
            reference = out;
        } else {
            for (unsigned i = 0; i < threads; ++i)
                ASSERT_EQ(out[i], reference[i])
                    << pipeline::pipelineModeName(m) << " thread "
                    << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossConfig,
                         ::testing::Range(0u, 12u));

TEST(CrossConfigKnobs, ConstraintVariantsAgreeFunctionally)
{
    isa::Program raw = randomKernel(4242);
    core::Kernel kernel = core::Kernel::compile(raw);
    std::vector<u32> reference;
    for (bool constraints : {true, false}) {
        for (bool mem_splits : {true, false}) {
            auto cfg =
                pipeline::SMConfig::make(PipelineMode::SBISWI);
            cfg.sbi_constraints = constraints;
            cfg.split_on_memory_divergence = mem_splits;
            core::Gpu gpu(cfg);
            for (unsigned i = 0; i < 128; ++i)
                gpu.memory().write32(0x10000 + Addr(i) * 4, i * 7);
            core::LaunchConfig lc;
            lc.block_threads = 128;
            gpu.launch(kernel, lc);
            auto out = gpu.memory().readWords(0x40000, 128);
            if (reference.empty())
                reference = out;
            else
                EXPECT_EQ(out, reference);
        }
    }
}

TEST(CrossConfigKnobs, ShufflePoliciesAgreeFunctionally)
{
    isa::Program raw = randomKernel(777);
    core::Kernel kernel = core::Kernel::compile(raw);
    std::vector<u32> reference;
    for (auto pol : {pipeline::LaneShufflePolicy::Identity,
                     pipeline::LaneShufflePolicy::MirrorOdd,
                     pipeline::LaneShufflePolicy::MirrorHalf,
                     pipeline::LaneShufflePolicy::Xor,
                     pipeline::LaneShufflePolicy::XorRev}) {
        auto cfg = pipeline::SMConfig::make(PipelineMode::SWI);
        cfg.shuffle = pol;
        core::Gpu gpu(cfg);
        for (unsigned i = 0; i < 128; ++i)
            gpu.memory().write32(0x10000 + Addr(i) * 4, i * 13);
        core::LaunchConfig lc;
        lc.block_threads = 128;
        gpu.launch(kernel, lc);
        auto out = gpu.memory().readWords(0x40000, 128);
        if (reference.empty())
            reference = out;
        else
            EXPECT_EQ(out, reference)
                << pipeline::laneShuffleName(pol);
    }
}

TEST(CrossConfigKnobs, AssociativityAgreesFunctionally)
{
    isa::Program raw = randomKernel(31337);
    core::Kernel kernel = core::Kernel::compile(raw);
    std::vector<u32> reference;
    for (unsigned sets : {1u, 2u, 8u, 16u}) {
        auto cfg = pipeline::SMConfig::make(PipelineMode::SWI);
        cfg.lookup_sets = sets;
        core::Gpu gpu(cfg);
        for (unsigned i = 0; i < 128; ++i)
            gpu.memory().write32(0x10000 + Addr(i) * 4, i);
        core::LaunchConfig lc;
        lc.block_threads = 128;
        gpu.launch(kernel, lc);
        auto out = gpu.memory().readWords(0x40000, 128);
        if (reference.empty())
            reference = out;
        else
            EXPECT_EQ(out, reference) << sets << " sets";
    }
}

} // namespace
} // namespace siwi
