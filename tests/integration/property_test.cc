/**
 * @file
 * System-level properties of the paper's mechanisms: performance
 * orderings, reconvergence guarantees, peak-IPC bounds, and stat
 * consistency invariants.
 */

#include <gtest/gtest.h>

#include "cfg/compiler.hh"
#include "core/gpu.hh"
#include "isa/builder.hh"
#include "workloads/workload.hh"

namespace siwi {
namespace {

using isa::Imm;
using isa::KernelBuilder;
using isa::Reg;
using isa::SpecialReg;
using pipeline::PipelineMode;
using workloads::SizeClass;

core::SimStats
statsFor(const char *workload, PipelineMode mode,
         std::function<void(pipeline::SMConfig &)> tweak = nullptr,
         SizeClass sc = SizeClass::Tiny)
{
    auto cfg = pipeline::SMConfig::make(mode);
    if (tweak)
        tweak(cfg);
    auto res = workloads::runWorkload(
        *workloads::findWorkload(workload), cfg, sc);
    EXPECT_TRUE(res.verified) << workload << ": "
                              << res.verify_msg;
    return res.stats;
}

TEST(Property, IpcNeverExceedsPeak)
{
    // Baseline peak 64, interweaving peak 104 (paper 5.1).
    for (const workloads::Workload *wl :
         workloads::allWorkloads()) {
        auto base = statsFor(wl->name(), PipelineMode::Baseline);
        EXPECT_LE(base.ipc(), 64.001) << wl->name();
        auto comb = statsFor(wl->name(), PipelineMode::SBISWI);
        EXPECT_LE(comb.ipc(), 104.001) << wl->name();
    }
}

TEST(Property, IssueCountsConsistent)
{
    for (PipelineMode m :
         {PipelineMode::Baseline, PipelineMode::SBI,
          PipelineMode::SWI, PipelineMode::SBISWI}) {
        auto st = statsFor("Eigenvalues", m);
        EXPECT_EQ(st.instructions,
                  st.primary_issues + st.secondary_issues)
            << pipeline::pipelineModeName(m);
        EXPECT_LE(st.row_share_issues, st.secondary_issues);
        EXPECT_GE(st.fetches, st.instructions);
    }
}

TEST(Property, SecondarySchedulerOnlyOnInterweavingModes)
{
    auto base = statsFor("Eigenvalues", PipelineMode::Baseline);
    auto w64 = statsFor("Eigenvalues", PipelineMode::Warp64);
    // Two-pool machines have two symmetric primaries.
    EXPECT_EQ(base.secondary_issues, 0u);
    EXPECT_EQ(w64.secondary_issues, 0u);
    auto sbi = statsFor("Eigenvalues", PipelineMode::SBI);
    EXPECT_GT(sbi.secondary_issues, 0u);
}

TEST(Property, BalancedDivergenceSbiBeatsWarp64)
{
    // Eigenvalues: balanced if/else -> branch-level parallelism.
    // Needs full occupancy (16 warps) for the co-issue bandwidth to
    // matter, so run the Full size.
    auto w64 = statsFor("Eigenvalues", PipelineMode::Warp64,
                        nullptr, SizeClass::Full);
    auto sbi = statsFor("Eigenvalues", PipelineMode::SBI, nullptr,
                        SizeClass::Full);
    EXPECT_LT(sbi.cycles, w64.cycles);
    EXPECT_GT(sbi.row_share_issues, 1000u);
}

TEST(Property, ThreadInstructionsConservedAcrossModes)
{
    // Without run-ahead effects, regular kernels execute the same
    // thread-instruction count everywhere.
    u64 counts[2];
    int i = 0;
    for (PipelineMode m :
         {PipelineMode::Baseline, PipelineMode::SBISWI}) {
        counts[i++] = statsFor("BlackScholes", m)
                          .thread_instructions;
    }
    EXPECT_EQ(counts[0], counts[1]);
}

TEST(Property, ConstraintsReduceIssuedInstructions)
{
    // Paper 5.1: "constraints reduce the number of instructions
    // issued" (redundant run-ahead re-execution).
    auto with = statsFor("Eigenvalues", PipelineMode::SBI);
    auto without = statsFor("Eigenvalues", PipelineMode::SBI,
                            [](pipeline::SMConfig &c) {
                                c.sbi_constraints = false;
                            });
    EXPECT_LE(with.instructions, without.instructions);
}

TEST(Property, AssociativityMonotonicOpportunities)
{
    // Fewer sets = more candidates visible = at least as many
    // row-share opportunities (statistically; use a divergent app).
    auto full = statsFor("BFS", PipelineMode::SWI,
                         [](pipeline::SMConfig &c) {
                             c.lookup_sets = 1;
                         });
    auto direct = statsFor("BFS", PipelineMode::SWI,
                           [](pipeline::SMConfig &c) {
                               c.lookup_sets = c.num_warps;
                           });
    EXPECT_LE(direct.cycles * 85 / 100, full.cycles)
        << "direct-mapped should stay within reach of full";
}

TEST(Property, HeapStatsOnlyOnHeapModes)
{
    auto base = statsFor("BFS", PipelineMode::Baseline);
    EXPECT_EQ(base.warp_splits, 0u);
    EXPECT_GT(base.max_stack_depth, 1u);
    auto sbi = statsFor("BFS", PipelineMode::SBI);
    EXPECT_GT(sbi.warp_splits, 0u);
    EXPECT_EQ(sbi.max_stack_depth, 0u);
}

TEST(Property, MemorySplitsOnlyWhenEnabled)
{
    auto on = statsFor("Histogram", PipelineMode::SBI);
    auto off = statsFor("Histogram", PipelineMode::SBI,
                        [](pipeline::SMConfig &c) {
                            c.split_on_memory_divergence = false;
                        });
    EXPECT_GT(on.memory_splits, 0u);
    EXPECT_EQ(off.memory_splits, 0u);
}

TEST(Property, BarrierReleaseCountsMatchKernelStructure)
{
    // Mandelbrot Tiny: 2 rows -> 2 barrier releases per block.
    auto st = statsFor("Mandelbrot", PipelineMode::SBISWI);
    EXPECT_EQ(st.barrier_releases, 2u);
}

TEST(Property, UnitUtilizationAccounted)
{
    auto st = statsFor("BlackScholes", PipelineMode::SBI);
    u64 unit_insts = 0;
    bool saw_sfu = false;
    for (const auto &u : st.units) {
        unit_insts += u.thread_instructions;
        if (u.name == "SFU")
            saw_sfu = u.thread_instructions > 0;
        EXPECT_LE(u.busy_cycles, st.cycles);
    }
    EXPECT_EQ(unit_insts, st.thread_instructions);
    EXPECT_TRUE(saw_sfu); // BlackScholes uses transcendentals
}

TEST(Property, CacheStatsSane)
{
    auto st = statsFor("MatrixMul", PipelineMode::Baseline);
    EXPECT_GT(st.l1_hits + st.l1_misses, 0u);
    EXPECT_EQ(st.l1_hits + st.l1_misses, st.load_transactions);
    EXPECT_GT(st.l1HitRate(), 0.3); // B matrix reuse
}

TEST(Property, DramTrafficBoundedByMisses)
{
    auto st = statsFor("Transpose", PipelineMode::Baseline);
    // Load fills plus (write-combined) store drains.
    EXPECT_LE(st.dram_transactions,
              st.l1_misses - st.mshr_merges +
                  st.store_transactions);
    EXPECT_GE(st.dram_transactions, st.l1_misses - st.mshr_merges);
}

TEST(Property, Tmd2BeatsTmd1OnThreadFrontierMachines)
{
    // The layout anomaly hurts thread-frontier reconvergence; with
    // the same workload shape, TMD2 (fixed layout) must not be
    // slower than TMD1 by any significant margin on TF machines,
    // while the stack baseline is indifferent to layout.
    auto t1 = statsFor("TMD1", PipelineMode::SBI);
    auto t2 = statsFor("TMD2", PipelineMode::SBI);
    EXPECT_LE(double(t2.cycles), double(t1.cycles) * 1.05);
}

} // namespace
} // namespace siwi
