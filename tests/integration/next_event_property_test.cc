/**
 * @file
 * Windowed-oracle property test for SM::step / SM::nextWake.
 *
 * The skip loop's soundness argument is local: after a quiet
 * step(), every cycle strictly before nextWake() must also be
 * quiet. This harness checks exactly that — an oracle SM steps
 * every cycle recording its per-cycle progress bit, and a skip SM
 * validates each skip window against the oracle's record before
 * jumping. A wake source missing from nextWake() (scoreboard
 * release, barrier arrival, MSHR free, CCT fold, group release)
 * fails here with the precise first cycle the bound missed,
 * rather than as a mysterious end-to-end stat diff. Barrier-heavy
 * and divergent workloads across all five pipeline modes exercise
 * every progress source, including warps parked on barriers and
 * randomized heap states.
 *
 * Per-warp sleep/wake gets the same treatment at warp granularity:
 * every run here executes under SM::setSleepAudit, which makes
 * step() re-verify each sleeping warp every cycle — still provably
 * non-issuable (sleepEligible holds) and the recorded wake bound
 * still conservative. The oracle SM steps every cycle, so each
 * slept warp is re-proven non-issuable for every cycle of its
 * slept window, not just at the endpoints. A violation panics
 * (aborts) with the warp, cycle and full SM debug state, which
 * gtest reports as a crashed test with that message.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/kernel.hh"
#include "mem/memory_image.hh"
#include "pipeline/sm.hh"
#include "workloads/workload.hh"

namespace siwi {
namespace {

using workloads::SizeClass;

/** Scope guard: per-warp sleep auditing on for the enclosed runs. */
struct SleepAuditScope
{
    SleepAuditScope() { pipeline::SM::setSleepAudit(true); }
    ~SleepAuditScope() { pipeline::SM::setSleepAudit(false); }
};

void
checkWindows(const workloads::Workload &wl,
             pipeline::PipelineMode mode)
{
    SCOPED_TRACE(std::string(wl.name()) + " on " +
                 pipeline::pipelineModeName(mode));
    SleepAuditScope audit;
    workloads::Instance inst = wl.instance(SizeClass::Tiny);
    core::Kernel kernel =
        core::Kernel::compile(inst.raw, inst.compile);
    pipeline::SMConfig cfg = pipeline::SMConfig::make(mode);
    const Cycle limit = 2'000'000;

    // Oracle: per-cycle stepping, one progress bit per cycle.
    mem::MemoryImage oracle_mem;
    wl.init(oracle_mem, SizeClass::Tiny);
    pipeline::SM oracle(cfg, oracle_mem);
    oracle.launch(kernel.program(), inst.grid_blocks,
                  inst.block_threads);
    std::vector<char> progressed;
    while (!oracle.done() && oracle.now() < limit)
        progressed.push_back(oracle.step() ? 1 : 0);
    ASSERT_TRUE(oracle.done()) << "oracle hit the cycle limit";

    // Skip run: the progress bit must agree cycle for cycle, and
    // every skip window must be quiet in the oracle's record.
    mem::MemoryImage skip_mem;
    wl.init(skip_mem, SizeClass::Tiny);
    pipeline::SM skipper(cfg, skip_mem);
    skipper.launch(kernel.program(), inst.grid_blocks,
                   inst.block_threads);
    while (!skipper.done() && skipper.now() < limit) {
        Cycle t = skipper.now();
        bool p = skipper.step();
        ASSERT_LT(t, progressed.size());
        ASSERT_EQ(bool(progressed[t]), p)
            << "progress bit diverged at cycle " << t;
        if (p)
            continue;
        Cycle wake = std::min(skipper.nextWake(), limit);
        for (Cycle c = skipper.now(); c < wake; ++c) {
            ASSERT_FALSE(c < progressed.size() && progressed[c])
                << "quiet at " << t << ", bound " << wake
                << ", but the oracle progressed at " << c;
        }
        if (wake > skipper.now())
            skipper.skipTo(wake);
    }
    ASSERT_TRUE(skipper.done());
    EXPECT_EQ(skipper.now(), oracle.now());
    EXPECT_TRUE(skipper.finalizeStats() == oracle.finalizeStats());
}

TEST(NextEventProperty, BarrierHeavyAllModes)
{
    const workloads::Workload *wl =
        workloads::findWorkload("FastWalshTransform");
    ASSERT_NE(wl, nullptr);
    for (pipeline::PipelineMode mode :
         {pipeline::PipelineMode::Baseline,
          pipeline::PipelineMode::Warp64,
          pipeline::PipelineMode::SBI, pipeline::PipelineMode::SWI,
          pipeline::PipelineMode::SBISWI})
        checkWindows(*wl, mode);
}

TEST(NextEventProperty, DivergentAllModes)
{
    const workloads::Workload *wl = workloads::findWorkload("BFS");
    ASSERT_NE(wl, nullptr);
    for (pipeline::PipelineMode mode :
         {pipeline::PipelineMode::Baseline,
          pipeline::PipelineMode::Warp64,
          pipeline::PipelineMode::SBI, pipeline::PipelineMode::SWI,
          pipeline::PipelineMode::SBISWI})
        checkWindows(*wl, mode);
}

TEST(NextEventProperty, SortingNetworkAllModes)
{
    const workloads::Workload *wl =
        workloads::findWorkload("SortingNetworks");
    ASSERT_NE(wl, nullptr);
    for (pipeline::PipelineMode mode :
         {pipeline::PipelineMode::Baseline,
          pipeline::PipelineMode::Warp64,
          pipeline::PipelineMode::SBI, pipeline::PipelineMode::SWI,
          pipeline::PipelineMode::SBISWI})
        checkWindows(*wl, mode);
}

} // namespace
} // namespace siwi
