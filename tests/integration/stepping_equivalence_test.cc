/**
 * @file
 * Differential stepping-equivalence harness.
 *
 * Event-driven cycle skipping (core::LaunchConfig::cycle_skip)
 * promises observational equivalence: the complete SimStats block —
 * cycle counts, IPC denominators, per-SM breakdowns, timeout flags
 * — must be bit-identical to stepping every cycle. These tests run
 * the whole fast suite plus randomized machine mutations both ways
 * and compare with SimStats::operator==, so any wake-bound bug that
 * changes *anything* observable fails loudly rather than skewing
 * results quietly.
 *
 * All runs here also execute under SM::setSleepAudit: with per-warp
 * sleep/wake, step() re-verifies every sleeping warp every cycle —
 * sleepEligible must still hold and the recorded wake bound must
 * still be conservative — so the --no-skip leg of each pair proves
 * every slept warp non-issuable for every cycle of its slept
 * window, across the whole fast suite and the randomized machine
 * mutations. An audit violation panics (aborts) with the warp,
 * cycle and full SM debug state rather than surfacing as an opaque
 * stat diff.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hh"
#include "pipeline/config_io.hh"
#include "pipeline/sm.hh"
#include "runner/runner.hh"
#include "workloads/workload.hh"

namespace siwi {
namespace {

using runner::CellSpec;
using runner::SweepSpec;
using workloads::RunResult;
using workloads::SizeClass;

/** Scope guard: per-warp sleep auditing on for the enclosed runs. */
struct SleepAuditScope
{
    SleepAuditScope() { pipeline::SM::setSleepAudit(true); }
    ~SleepAuditScope() { pipeline::SM::setSleepAudit(false); }
};

/** Run one (workload, config) both ways and compare everything. */
void
expectEquivalent(const workloads::Workload &wl,
                 const pipeline::SMConfig &cfg, SizeClass sc,
                 unsigned num_sms, const std::string &label)
{
    SleepAuditScope audit;
    RunResult skip = workloads::runWorkload(wl, cfg, sc, num_sms,
                                            /*cycle_skip=*/true);
    RunResult step = workloads::runWorkload(wl, cfg, sc, num_sms,
                                            /*cycle_skip=*/false);
    EXPECT_TRUE(skip.stats == step.stats)
        << label << ": SimStats differ between skip and no-skip "
        << "(skip cycles=" << skip.stats.cycles
        << " step cycles=" << step.stats.cycles << ")";
    EXPECT_EQ(skip.verified, step.verified) << label;
    EXPECT_EQ(skip.verify_msg, step.verify_msg) << label;
    EXPECT_EQ(step.skipped_cycles, 0u)
        << label << ": no-skip run must never fast-forward";
}

/**
 * Every cell of the fast suite: all five machines x the full
 * workload list at Tiny size, exactly what CI's bench gate runs.
 */
TEST(SteppingEquivalence, FastSuiteCells)
{
    SleepAuditScope audit;
    std::vector<SweepSpec> sweeps = runner::suiteSweeps("fast");
    ASSERT_FALSE(sweeps.empty());
    for (const CellSpec &cs : runner::expandCells(sweeps)) {
        const SweepSpec &s = sweeps[cs.sweep];
        runner::CellResult a =
            runner::runCell(s, cs.machine, cs.wl, cs.sms,
                            cs.policy, /*cycle_skip=*/true);
        runner::CellResult b =
            runner::runCell(s, cs.machine, cs.wl, cs.sms,
                            cs.policy, /*cycle_skip=*/false);
        EXPECT_TRUE(a.stats == b.stats)
            << s.name << " " << a.machine << " " << a.workload
            << ": SimStats differ between skip and no-skip";
        EXPECT_EQ(a.verified, b.verified) << a.workload;
        EXPECT_EQ(a.ipc, b.ipc) << a.workload;
    }
}

/**
 * Multi-SM chips take the lockstep skip path in Gpu::launchChip
 * (min wake across live SMs) rather than SM::run; cover it on
 * every pipeline mode.
 */
TEST(SteppingEquivalence, MultiSmChips)
{
    const workloads::Workload *wl =
        workloads::findWorkload("BFS");
    if (!wl)
        wl = workloads::allWorkloads().front();
    for (pipeline::PipelineMode mode :
         {pipeline::PipelineMode::Baseline,
          pipeline::PipelineMode::Warp64,
          pipeline::PipelineMode::SBI, pipeline::PipelineMode::SWI,
          pipeline::PipelineMode::SBISWI}) {
        pipeline::SMConfig cfg = pipeline::SMConfig::make(mode);
        expectEquivalent(*wl, cfg, SizeClass::Tiny, 4,
                         std::string("4-SM chip mode ") +
                             pipeline::pipelineModeName(mode));
    }
}

/**
 * Randomized machine mutations: start from each canonical machine,
 * apply a handful of random config key=value overrides (through
 * the same field table spec files use), keep only configurations
 * that pass checkInvariants, and demand stepping equivalence on a
 * barrier-heavy and a divergent workload. This sweeps wake-source
 * corner cases (tiny MSHR counts, deep latencies, small CCTs) that
 * the canonical machines never exercise.
 */
TEST(SteppingEquivalence, RandomizedMachines)
{
    struct KeyPool
    {
        const char *key;
        std::vector<const char *> values;
    };
    const std::vector<KeyPool> pool = {
        {"mshrs", {"1", "2", "4", "64"}},
        {"write_buffer_entries", {"1", "2", "8"}},
        {"l1_hit_latency", {"1", "3", "9"}},
        {"dram_latency_cycles", {"10", "100", "700"}},
        {"dram_bytes_per_cycle_x10", {"5", "40", "100"}},
        {"exec_latency", {"1", "8", "24"}},
        {"scoreboard_entries", {"1", "2", "6"}},
        {"cct_capacity", {"2", "8", "16"}},
        {"cct_steps_per_cycle", {"1", "2"}},
        {"scheduler_latency", {"1", "4"}},
        {"delivery_latency", {"0", "2"}},
        {"max_blocks_resident", {"1", "4", "8"}},
        {"lookup_sets", {"1", "2", "4"}},
        {"sched_policy", {"oldest", "rr", "gto", "minpc"}},
    };
    const workloads::Workload *barrier =
        workloads::findWorkload("FastWalshTransform");
    const workloads::Workload *divergent =
        workloads::findWorkload("BFS");
    ASSERT_NE(barrier, nullptr);
    ASSERT_NE(divergent, nullptr);

    Rng rng(20260808);
    int accepted = 0;
    for (int trial = 0; accepted < 12 && trial < 200; ++trial) {
        pipeline::PipelineMode mode = static_cast<
            pipeline::PipelineMode>(rng.below(5));
        pipeline::SMConfig cfg = pipeline::SMConfig::make(mode);
        unsigned muts = 1 + unsigned(rng.below(4));
        std::string label = std::string("mode ") +
                            pipeline::pipelineModeName(mode);
        for (unsigned m = 0; m < muts; ++m) {
            const KeyPool &kp = pool[rng.below(
                unsigned(pool.size()))];
            const char *val =
                kp.values[rng.below(unsigned(kp.values.size()))];
            std::string kv =
                std::string(kp.key) + "=" + val;
            std::string err;
            if (!pipeline::smConfigApplyKeyValue(kv, &cfg, &err))
                continue; // key invalid for this mode: skip it
            label += " " + kv;
        }
        if (!cfg.checkInvariants().empty())
            continue;
        ++accepted;
        const workloads::Workload *wl =
            (accepted % 2) ? barrier : divergent;
        expectEquivalent(*wl, cfg, SizeClass::Tiny, 1,
                         label + " on " + wl->name());
    }
    // The acceptance filter must not starve the test.
    EXPECT_GE(accepted, 8);
}

/**
 * The skip machinery must actually engage: a memory-bound kernel
 * spends most of its cycles waiting on DRAM, so a skip-enabled run
 * must fast-forward a significant share of them (this guards
 * against a silent regression that turns skipping into a no-op —
 * equivalence would still hold, speed would not).
 */
TEST(SteppingEquivalence, SkipEngagesOnMemoryBoundKernel)
{
    const workloads::Workload *wl =
        workloads::findWorkload("FastWalshTransform");
    ASSERT_NE(wl, nullptr);
    pipeline::SMConfig cfg =
        pipeline::SMConfig::make(pipeline::PipelineMode::Baseline);
    RunResult res = workloads::runWorkload(
        *wl, cfg, SizeClass::Tiny, 1, /*cycle_skip=*/true);
    ASSERT_TRUE(res.verified) << res.verify_msg;
    EXPECT_GT(res.skipped_cycles, res.stats.cycles / 4)
        << "cycle skipping barely engaged on a memory-bound "
           "kernel";
}

/**
 * Per-warp sleep must actually engage, and identically in both
 * stepping modes: warp_sleep_cycles counts warp-cycles parked off
 * the runnable active list and is accumulated at wake time from
 * the park cycle, so it is jump-invariant by construction. A run
 * with zero sleep cycles means the active list degenerated into
 * the old every-warp scan (equivalence would still hold; the
 * O(runnable) speedup would be silently gone).
 */
TEST(SteppingEquivalence, PerWarpSleepEngages)
{
    SleepAuditScope audit;
    const workloads::Workload *wl =
        workloads::findWorkload("FastWalshTransform");
    ASSERT_NE(wl, nullptr);
    pipeline::SMConfig cfg =
        pipeline::SMConfig::make(pipeline::PipelineMode::Baseline);
    RunResult skip = workloads::runWorkload(
        *wl, cfg, SizeClass::Tiny, 1, /*cycle_skip=*/true);
    RunResult step = workloads::runWorkload(
        *wl, cfg, SizeClass::Tiny, 1, /*cycle_skip=*/false);
    ASSERT_TRUE(skip.verified) << skip.verify_msg;
    EXPECT_GT(skip.stats.warp_sleep_cycles, 0u)
        << "no warp ever slept on a memory-bound kernel";
    EXPECT_GT(skip.stats.avg_runnable_warps_x10, 0u);
    EXPECT_EQ(skip.stats.warp_sleep_cycles,
              step.stats.warp_sleep_cycles)
        << "sleep accounting must be jump-invariant";
    EXPECT_EQ(skip.stats.runnable_warp_cycles,
              step.stats.runnable_warp_cycles);
}

} // namespace
} // namespace siwi
