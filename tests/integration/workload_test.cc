/**
 * @file
 * Workload-suite integration tests: every benchmark must verify
 * functionally on every pipeline configuration (105 combinations).
 */

#include <gtest/gtest.h>

#include "workloads/workload.hh"

namespace siwi::workloads {
namespace {

using pipeline::PipelineMode;

struct Combo
{
    const char *workload;
    PipelineMode mode;
};

std::vector<Combo>
allCombos()
{
    std::vector<Combo> out;
    for (const Workload *w : allWorkloads()) {
        for (PipelineMode m :
             {PipelineMode::Baseline, PipelineMode::Warp64,
              PipelineMode::SBI, PipelineMode::SWI,
              PipelineMode::SBISWI}) {
            out.push_back({w->name(), m});
        }
    }
    return out;
}

class EveryWorkloadEveryMode
    : public ::testing::TestWithParam<Combo>
{
};

TEST_P(EveryWorkloadEveryMode, VerifiesFunctionally)
{
    const Workload *wl = findWorkload(GetParam().workload);
    ASSERT_NE(wl, nullptr);
    auto cfg = pipeline::SMConfig::make(GetParam().mode);
    RunResult res = runWorkload(*wl, cfg, SizeClass::Tiny);
    EXPECT_FALSE(res.stats.timed_out);
    EXPECT_TRUE(res.verified) << res.verify_msg;
    EXPECT_GT(res.stats.ipc(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, EveryWorkloadEveryMode,
    ::testing::ValuesIn(allCombos()),
    [](const ::testing::TestParamInfo<Combo> &info) {
        std::string n = info.param.workload;
        n += "_";
        n += pipeline::pipelineModeName(info.param.mode);
        for (char &c : n) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return n;
    });

TEST(WorkloadRegistry, CountsMatchPaper)
{
    EXPECT_EQ(allWorkloads().size(), 21u);
    EXPECT_EQ(regularWorkloads().size(), 10u);
    EXPECT_EQ(irregularWorkloads().size(), 11u);
}

TEST(WorkloadRegistry, TmdExcludedFromMeans)
{
    unsigned excluded = 0;
    for (const Workload *w : allWorkloads())
        excluded += w->excludedFromMeans() ? 1 : 0;
    EXPECT_EQ(excluded, 2u);
    EXPECT_TRUE(findWorkload("TMD1")->excludedFromMeans());
    EXPECT_TRUE(findWorkload("TMD2")->excludedFromMeans());
    EXPECT_FALSE(findWorkload("BFS")->excludedFromMeans());
}

TEST(WorkloadRegistry, LookupByName)
{
    EXPECT_NE(findWorkload("Mandelbrot"), nullptr);
    EXPECT_EQ(findWorkload("NotABenchmark"), nullptr);
}

TEST(WorkloadRegistry, Tmd1HasLayoutViolations)
{
    // The paper's TMD1 anomaly: non-thread-frontier code layout.
    auto cfg = pipeline::SMConfig::make(PipelineMode::Baseline);
    RunResult t1 = runWorkload(*findWorkload("TMD1"), cfg,
                               SizeClass::Tiny);
    RunResult t2 = runWorkload(*findWorkload("TMD2"), cfg,
                               SizeClass::Tiny);
    EXPECT_GT(t1.layout_violations, 0u);
    EXPECT_EQ(t2.layout_violations, 0u);
}

TEST(WorkloadRegistry, IrregularWorkloadsDiverge)
{
    // Sanity: irregular workloads must actually create divergence
    // on the heap configurations.
    auto cfg = pipeline::SMConfig::make(PipelineMode::SBI);
    for (const char *name :
         {"BFS", "Eigenvalues", "Mandelbrot", "SortingNetworks"}) {
        RunResult res = runWorkload(*findWorkload(name), cfg,
                                    SizeClass::Tiny);
        EXPECT_GT(res.stats.branch_divergences, 0u) << name;
        EXPECT_GT(res.stats.warp_splits, 0u) << name;
    }
}

TEST(WorkloadRegistry, RegularWorkloadsMostlyConvergent)
{
    auto cfg = pipeline::SMConfig::make(PipelineMode::SBI);
    for (const char *name : {"BlackScholes", "MatrixMul"}) {
        RunResult res = runWorkload(*findWorkload(name), cfg,
                                    SizeClass::Tiny);
        EXPECT_EQ(res.stats.branch_divergences, 0u) << name;
    }
}

} // namespace
} // namespace siwi::workloads
