/**
 * @file
 * MemorySystem (L1 + MSHR + DRAM glue) tests.
 */

#include <gtest/gtest.h>

#include "mem/memory_system.hh"

namespace siwi::mem {
namespace {

TEST(MemorySystem, ColdMissThenHit)
{
    MemorySystem ms{MemConfig{}};
    Cycle miss = ms.load(0, 0x1000);
    EXPECT_GT(miss, Cycle(330)); // went to DRAM
    // After the fill retires, the block hits.
    ms.tick(miss + 1);
    Cycle hit = ms.load(miss + 1, 0x1000);
    EXPECT_EQ(hit, miss + 1 + 3);
    EXPECT_EQ(ms.cacheStats().hits, 1u);
    EXPECT_EQ(ms.cacheStats().misses, 1u);
}

TEST(MemorySystem, MshrMergesSameBlock)
{
    MemorySystem ms{MemConfig{}};
    Cycle a = ms.load(0, 0x2000);
    Cycle b = ms.load(1, 0x2000);
    // Second request merges: same data-ready time, without a
    // second DRAM transaction.
    EXPECT_EQ(b, a);
    EXPECT_EQ(ms.stats().mshr_merges, 1u);
    EXPECT_EQ(ms.dramStats().transactions, 1u);
}

TEST(MemorySystem, DistinctBlocksQueueOnBandwidth)
{
    MemorySystem ms{MemConfig{}};
    Cycle a = ms.load(0, 0x0);
    Cycle b = ms.load(0, 0x80);
    EXPECT_GT(b, a);
}

TEST(MemorySystem, StoreIsFireAndForget)
{
    MemorySystem ms{MemConfig{}};
    Cycle done = ms.store(5, 0x3000, 128);
    EXPECT_EQ(done, Cycle(6));
    EXPECT_EQ(ms.stats().store_transactions, 1u);
    // Parked in the write-combining buffer; drains on eviction.
    EXPECT_EQ(ms.dramStats().transactions, 0u);
    ms.invalidate();
    EXPECT_EQ(ms.dramStats().transactions, 1u);
}

TEST(MemorySystem, WriteCombiningMergesRepeatedStores)
{
    MemorySystem ms{MemConfig{}};
    for (int i = 0; i < 50; ++i)
        ms.store(Cycle(i), 0x3000, 4);
    EXPECT_EQ(ms.stats().write_combines, 49u);
    ms.invalidate();
    EXPECT_EQ(ms.dramStats().transactions, 1u);
    EXPECT_LE(ms.dramStats().bytes, 128u);
}

TEST(MemorySystem, WriteBufferEvictsLru)
{
    MemConfig cfg;
    cfg.write_buffer_entries = 2;
    MemorySystem ms(cfg);
    ms.store(0, 0x000, 4);
    ms.store(1, 0x080, 4);
    ms.store(2, 0x100, 4); // evicts 0x000
    EXPECT_EQ(ms.dramStats().transactions, 1u);
    ms.store(3, 0x080, 4); // still resident: combines
    EXPECT_EQ(ms.stats().write_combines, 1u);
}

TEST(MemorySystem, StoreDoesNotAllocate)
{
    MemorySystem ms{MemConfig{}};
    ms.store(0, 0x3000, 128);
    ms.tick(1000);
    Cycle c = ms.load(1000, 0x3000);
    EXPECT_GT(c, Cycle(1000 + 3)); // still a miss
}

TEST(MemorySystem, MshrExhaustionQueues)
{
    MemConfig cfg;
    cfg.mshrs = 2;
    MemorySystem ms(cfg);
    Cycle a = ms.load(0, 0x000);
    (void)a;
    ms.load(0, 0x080);
    Cycle c = ms.load(0, 0x100); // third miss: queues
    EXPECT_EQ(ms.stats().mshr_stalls, 1u);
    EXPECT_GT(c, Cycle(330 + 13));
}

TEST(MemorySystem, InvalidateDropsResidency)
{
    MemorySystem ms{MemConfig{}};
    Cycle a = ms.load(0, 0x1000);
    ms.tick(a + 1);
    ms.invalidate();
    Cycle b = ms.load(a + 1, 0x1000);
    EXPECT_GT(b, a + 1 + 3); // miss again
}

TEST(MemorySystem, BandwidthBoundStreaming)
{
    // Property: streaming N distinct blocks takes at least
    // N * 12.8 cycles of DRAM bandwidth.
    MemorySystem ms{MemConfig{}};
    const unsigned n = 50;
    Cycle last = 0;
    for (unsigned i = 0; i < n; ++i)
        last = std::max(last, ms.load(0, Addr(i) * 128));
    EXPECT_GE(last, Cycle(n * 128 / 10));
}

} // namespace
} // namespace siwi::mem
