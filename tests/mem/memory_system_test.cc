/**
 * @file
 * MemorySystem (L1 + MSHR + DRAM glue) tests.
 */

#include <gtest/gtest.h>

#include "mem/memory_system.hh"

namespace siwi::mem {
namespace {

TEST(MemorySystem, ColdMissThenHit)
{
    MemorySystem ms{MemConfig{}};
    Cycle miss = ms.load(0, 0x1000);
    EXPECT_GT(miss, Cycle(330)); // went to DRAM
    // After the fill retires, the block hits.
    ms.tick(miss + 1);
    Cycle hit = ms.load(miss + 1, 0x1000);
    EXPECT_EQ(hit, miss + 1 + 3);
    EXPECT_EQ(ms.cacheStats().hits, 1u);
    EXPECT_EQ(ms.cacheStats().misses, 1u);
}

TEST(MemorySystem, MshrMergesSameBlock)
{
    MemorySystem ms{MemConfig{}};
    Cycle a = ms.load(0, 0x2000);
    Cycle b = ms.load(1, 0x2000);
    // Second request merges: same data-ready time, without a
    // second DRAM transaction.
    EXPECT_EQ(b, a);
    EXPECT_EQ(ms.stats().mshr_merges, 1u);
    EXPECT_EQ(ms.dramStats().transactions, 1u);
}

TEST(MemorySystem, DistinctBlocksQueueOnBandwidth)
{
    MemorySystem ms{MemConfig{}};
    Cycle a = ms.load(0, 0x0);
    Cycle b = ms.load(0, 0x80);
    EXPECT_GT(b, a);
}

TEST(MemorySystem, StoreIsFireAndForget)
{
    MemorySystem ms{MemConfig{}};
    Cycle done = ms.store(5, 0x3000, 128);
    EXPECT_EQ(done, Cycle(6));
    EXPECT_EQ(ms.stats().store_transactions, 1u);
    // Parked in the write-combining buffer; drains on eviction.
    EXPECT_EQ(ms.dramStats().transactions, 0u);
    ms.invalidate(6);
    EXPECT_EQ(ms.dramStats().transactions, 1u);
}

TEST(MemorySystem, WriteCombiningMergesRepeatedStores)
{
    MemorySystem ms{MemConfig{}};
    for (int i = 0; i < 50; ++i)
        ms.store(Cycle(i), 0x3000, 4);
    EXPECT_EQ(ms.stats().write_combines, 49u);
    ms.invalidate(50);
    EXPECT_EQ(ms.dramStats().transactions, 1u);
    EXPECT_LE(ms.dramStats().bytes, 128u);
}

TEST(MemorySystem, WriteBufferEvictsLru)
{
    MemConfig cfg;
    cfg.write_buffer_entries = 2;
    MemorySystem ms(cfg);
    ms.store(0, 0x000, 4);
    ms.store(1, 0x080, 4);
    ms.store(2, 0x100, 4); // evicts 0x000
    EXPECT_EQ(ms.dramStats().transactions, 1u);
    ms.store(3, 0x080, 4); // still resident: combines
    EXPECT_EQ(ms.stats().write_combines, 1u);
}

TEST(MemorySystem, WriteBufferForwardsLoads)
{
    // A load to a block resident in the write-combining buffer is
    // served on chip at hit latency, without a DRAM round trip.
    MemorySystem ms{MemConfig{}};
    ms.store(0, 0x3000, 128);
    ms.tick(1000);
    Cycle c = ms.load(1000, 0x3000);
    EXPECT_EQ(c, Cycle(1000 + 3));
    EXPECT_EQ(ms.stats().write_forwards, 1u);
    EXPECT_EQ(ms.dramStats().transactions, 0u);
}

TEST(MemorySystem, StoreDoesNotAllocate)
{
    // Once the write buffer has drained, the store left no L1
    // residency behind (write-through no-allocate): a later load
    // is a full miss.
    MemorySystem ms{MemConfig{}};
    ms.store(0, 0x3000, 128);
    ms.invalidate(10); // drains the buffer
    ms.tick(1000);
    Cycle c = ms.load(1000, 0x3000);
    EXPECT_GT(c, Cycle(1000 + 3)); // miss
    EXPECT_EQ(ms.stats().write_forwards, 0u);
}

TEST(MemorySystem, MshrExhaustionQueues)
{
    MemConfig cfg;
    cfg.mshrs = 2;
    MemorySystem ms(cfg);
    Cycle a = ms.load(0, 0x000);
    (void)a;
    ms.load(0, 0x080);
    Cycle c = ms.load(0, 0x100); // third miss: queues
    EXPECT_EQ(ms.stats().mshr_stalls, 1u);
    EXPECT_GT(c, Cycle(330 + 13));
}

TEST(MemorySystem, MshrOccupancyBoundedUnderMissStorm)
{
    // The over-admission bug: with every MSHR busy, each queued
    // miss waited behind the same earliest slot and the in-flight
    // set grew past cfg.mshrs. Storm the system with misses and
    // check the slot model holds the bound at every admission.
    MemConfig cfg;
    cfg.mshrs = 4;
    MemorySystem ms(cfg);
    std::vector<Cycle> ready;
    Cycle last = 0;
    for (unsigned i = 0; i < 64; ++i) {
        Cycle done = ms.load(0, Addr(i) * 0x80);
        // Data-ready times strictly increase: every miss occupies
        // its own slot and its own slice of DRAM bandwidth.
        EXPECT_GT(done, last);
        last = done;
        ready.push_back(done);
    }
    EXPECT_EQ(ms.stats().mshr_stalls, 64u - cfg.mshrs);

    // The occupancy bound holds at every instant; sample it at
    // cycle 0 and around every fill edge.
    EXPECT_LE(ms.mshrOccupancy(0), cfg.mshrs);
    for (Cycle r : ready) {
        EXPECT_LE(ms.mshrOccupancy(r - 1), cfg.mshrs);
        EXPECT_LE(ms.mshrOccupancy(r), cfg.mshrs);
    }

    // Occupancy decays back to zero as fills complete.
    EXPECT_EQ(ms.mshrOccupancy(last), 0u);
}

TEST(MemorySystem, MshrQueuedMissesSpreadAcrossSlots)
{
    // With 2 MSHRs and 4 misses at cycle 0, the 3rd and 4th must
    // start when the 1st and 2nd fill respectively — not both
    // behind the 1st (the earliest-slot bug).
    MemConfig cfg;
    cfg.mshrs = 2;
    MemorySystem ms(cfg);
    Cycle f1 = ms.load(0, 0x000);
    Cycle f2 = ms.load(0, 0x080);
    Cycle f3 = ms.load(0, 0x100);
    Cycle f4 = ms.load(0, 0x180);
    Cycle lat = 3; // hit latency added on top of the fill
    EXPECT_GE(f3, f1 - lat + 330);  // waited for slot 1 to free
    EXPECT_GE(f4, f2 - lat + 330);  // waited for slot 2, not 1
    EXPECT_GT(f4, f3);
}

TEST(MemorySystem, InvalidateDropsResidency)
{
    MemorySystem ms{MemConfig{}};
    Cycle a = ms.load(0, 0x1000);
    ms.tick(a + 1);
    ms.invalidate(a + 1);
    Cycle b = ms.load(a + 1, 0x1000);
    EXPECT_GT(b, a + 1 + 3); // miss again
}

TEST(MemorySystem, InvalidateDrainsAtCurrentCycle)
{
    // The retroactive-drain bug: invalidate() issued the write
    // buffer's DRAM traffic at cycle 0, i.e. in the past, where it
    // consumed bandwidth for free. The drain must compete for
    // bandwidth from the invalidation cycle onward.
    MemConfig cfg;
    cfg.write_buffer_entries = 4;
    const Cycle t = 100'000;

    MemorySystem drained(cfg);
    for (Addr b = 0; b < 4; ++b)
        drained.store(0, b * 0x80, 128);
    drained.invalidate(t);
    EXPECT_EQ(drained.dramStats().transactions, 4u);
    u64 stall_before = drained.dramStats().stall_tenths;
    Cycle after_drain = drained.load(t, 0x10000);

    MemorySystem fresh(cfg);
    Cycle no_drain = fresh.load(t, 0x10000);

    // The drain booked the channel at t, so a load right behind it
    // queues; with the cycle-0 bug both loads would finish at the
    // same time.
    EXPECT_GT(after_drain, no_drain);
    EXPECT_GE(drained.dramStats().stall_tenths, stall_before);
}

TEST(MemorySystem, BandwidthBoundStreaming)
{
    // Property: streaming N distinct blocks takes at least
    // N * 12.8 cycles of DRAM bandwidth.
    MemorySystem ms{MemConfig{}};
    const unsigned n = 50;
    Cycle last = 0;
    for (unsigned i = 0; i < n; ++i)
        last = std::max(last, ms.load(0, Addr(i) * 128));
    EXPECT_GE(last, Cycle(n * 128 / 10));
}

} // namespace
} // namespace siwi::mem
