/**
 * @file
 * Property tests for nextWake over the banked chip backend: the
 * mirror of next_wake_property_test.cc with a BankedL2 (per-slice
 * MSHR files, bounded channel queues, a contended NoC) behind the
 * MemorySystem instead of the private DRAM pipe.
 *
 * The banked backend adds a second autonomous timed structure —
 * slice MSHR entries with a channel-issue cycle (start) and a fill
 * cycle — and MemorySystem::nextWake must fold its bounds in, or
 * the chip skip loop would sleep across a slice occupancy change
 * or a queued request's issue. Checked the same two ways: lazy
 * ticking at the reported bounds must be indistinguishable from
 * eager per-cycle ticking, and nothing observable (L1 MSHR
 * occupancy, any slice's MSHR occupancy, any returned latency)
 * may change strictly before the reported wake.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hh"
#include "mem/banked_l2.hh"
#include "mem/memory_system.hh"

namespace siwi::mem {
namespace {

struct ChipConfig
{
    MemConfig mem;
    L2Config l2;
    DramConfig dram;
    NocConfig noc;
};

ChipConfig
randomConfig(Rng &rng)
{
    ChipConfig c;
    c.mem.l1.size_bytes = 128 * (8u << rng.below(4));
    c.mem.l1.block_bytes = 128;
    c.mem.l1.ways = 2;
    c.mem.l1.hit_latency = 1 + rng.below(6);
    c.mem.mshrs = 1 + rng.below(8);
    c.mem.write_buffer_entries = 1 + rng.below(8);
    c.l2.size_bytes = 16 * 1024;
    c.l2.hit_latency = 1 + rng.below(30);
    c.l2.slices = 1u << rng.below(3);
    // Tiny MSHR files force slot waits (queued-but-unissued
    // channel requests), the interesting case for the bound.
    c.l2.mshrs_per_slice = 1 + rng.below(4);
    c.l2.tag_cycles = rng.below(3);
    c.dram.latency_cycles = 5 + rng.below(400);
    c.dram.bytes_per_cycle_x10 = 5 + rng.below(200);
    c.dram.channels = 1u << rng.below(2);
    c.dram.queue_depth = rng.below(5);
    c.noc.request_latency = rng.below(4);
    c.noc.response_latency = rng.below(4);
    c.noc.port_bytes_per_cycle_x10 =
        rng.below(2) ? 0 : 40 + rng.below(200);
    return c;
}

struct Req
{
    Cycle when;
    bool is_load;
    Addr block;
};

std::vector<Req>
randomStream(Rng &rng, unsigned count, Cycle span)
{
    std::vector<Req> reqs;
    reqs.reserve(count);
    for (unsigned i = 0; i < count; ++i) {
        Req r;
        r.when = rng.below(u32(span));
        r.is_load = rng.below(3) != 0;
        r.block = Addr(rng.below(12)) * 128;
        reqs.push_back(r);
    }
    std::sort(reqs.begin(), reqs.end(),
              [](const Req &a, const Req &b) {
                  return a.when < b.when;
              });
    return reqs;
}

/**
 * Lazy ticking at the reported wake bounds only must be
 * observationally identical to eager per-cycle ticking — for the
 * L1 observables and for every slice's MSHR occupancy.
 */
TEST(BankedNextWakeProperty, LazyTickMatchesEagerTick)
{
    Rng rng(3);
    for (int round = 0; round < 50; ++round) {
        ChipConfig cfg = randomConfig(rng);
        BankedL2 eager_l2(cfg.l2, cfg.dram, cfg.noc, 1);
        BankedL2 lazy_l2(cfg.l2, cfg.dram, cfg.noc, 1);
        MemorySystem eager(cfg.mem, eager_l2, 0);
        MemorySystem lazy(cfg.mem, lazy_l2, 0);
        std::vector<Req> reqs = randomStream(
            rng, 40, 2000 + rng.below(2000));

        size_t next = 0;
        const Cycle horizon = reqs.back().when + 3000;
        for (Cycle c = 0; c < horizon; ++c) {
            eager.tick(c);
            if (lazy.nextWake(c) <= c)
                lazy.tick(c);
            EXPECT_EQ(eager.mshrOccupancy(c), lazy.mshrOccupancy(c))
                << "round " << round << " cycle " << c;
            for (u32 s = 0; s < eager_l2.numSlices(); ++s) {
                EXPECT_EQ(eager_l2.sliceMshrOccupancy(s, c),
                          lazy_l2.sliceMshrOccupancy(s, c))
                    << "round " << round << " cycle " << c
                    << " slice " << s;
            }
            while (next < reqs.size() && reqs[next].when == c) {
                const Req &r = reqs[next++];
                if (r.is_load) {
                    EXPECT_EQ(eager.load(c, r.block),
                              lazy.load(c, r.block))
                        << "round " << round << " cycle " << c;
                } else {
                    EXPECT_EQ(eager.store(c, r.block, 128),
                              lazy.store(c, r.block, 128))
                        << "round " << round << " cycle " << c;
                }
            }
        }
        EXPECT_EQ(eager.stats().mshr_stalls,
                  lazy.stats().mshr_stalls);
        EXPECT_EQ(eager.cacheStats().hits,
                  lazy.cacheStats().hits);
        EXPECT_EQ(eager.cacheStats().misses,
                  lazy.cacheStats().misses);
        EXPECT_EQ(eager_l2.stats(), lazy_l2.stats());
        EXPECT_EQ(eager_l2.dramStats(), lazy_l2.dramStats());
        for (u32 s = 0; s < eager_l2.numSlices(); ++s)
            EXPECT_EQ(eager_l2.sliceStats(s),
                      lazy_l2.sliceStats(s))
                << "round " << round << " slice " << s;
    }
}

/**
 * The bound is never late: after arbitrary traffic, neither the
 * L1 MSHR occupancy nor any slice's MSHR occupancy may change on
 * a cycle strictly before nextWake(). The wake chain must make
 * strict progress and drain both levels.
 */
TEST(BankedNextWakeProperty, WakeNeverLaterThanFirstChange)
{
    Rng rng(4);
    for (int round = 0; round < 50; ++round) {
        ChipConfig cfg = randomConfig(rng);
        BankedL2 l2(cfg.l2, cfg.dram, cfg.noc, 1);
        MemorySystem sys(cfg.mem, l2, 0);
        std::vector<Req> reqs = randomStream(rng, 30, 1500);

        Cycle now = 0;
        for (const Req &r : reqs) {
            for (; now <= r.when; ++now)
                sys.tick(now);
            if (r.is_load)
                sys.load(r.when, r.block);
            else
                sys.store(r.when, r.block, 128);
        }

        auto sliceOcc = [&](Cycle c) {
            std::vector<unsigned> occ;
            for (u32 s = 0; s < l2.numSlices(); ++s)
                occ.push_back(l2.sliceMshrOccupancy(s, c));
            return occ;
        };

        Cycle wake = sys.nextWake(now);
        if (wake == no_wake) {
            EXPECT_EQ(sys.mshrOccupancy(now), 0u);
            for (unsigned o : sliceOcc(now))
                EXPECT_EQ(o, 0u);
            continue;
        }
        ASSERT_GE(wake, now);
        unsigned occ = sys.mshrOccupancy(now);
        std::vector<unsigned> slice_occ = sliceOcc(now);
        for (Cycle c = now; c < wake; ++c) {
            sys.tick(c);
            EXPECT_EQ(sys.mshrOccupancy(c), occ)
                << "round " << round << ": L1 state changed at "
                << c << " before the reported wake " << wake;
            EXPECT_EQ(sliceOcc(c), slice_occ)
                << "round " << round
                << ": slice state changed at " << c
                << " before the reported wake " << wake;
        }
        unsigned hops = 0;
        Cycle last = wake;
        while (wake != no_wake) {
            ASSERT_LT(++hops, 10000u) << "wake chain diverges";
            sys.tick(wake);
            last = wake;
            Cycle next_wake = sys.nextWake(wake);
            ASSERT_TRUE(next_wake == no_wake || next_wake > wake)
                << "round " << round << ": wake chain stuck at "
                << wake;
            wake = next_wake;
        }
        EXPECT_EQ(sys.mshrOccupancy(last + 1), 0u)
            << "round " << round
            << ": L1 fills stranded after the wake chain drained";
        for (unsigned o : sliceOcc(last + 1))
            EXPECT_EQ(o, 0u)
                << "round " << round
                << ": slice fills stranded after the wake chain "
                   "drained";
    }
}

} // namespace
} // namespace siwi::mem
