/**
 * @file
 * Property tests for MemorySystem::nextWake.
 *
 * The skip loop relies on two promises: (1) ticking only at the
 * reported wake bounds is indistinguishable from ticking every
 * cycle, for every observable (load latencies, MSHR occupancy,
 * statistics); (2) the bound is never late — nothing observable
 * changes strictly before it. Both are checked here against a
 * cycle-by-cycle oracle over randomized request streams and
 * machine geometries (tiny MSHR counts force stalls, small write
 * buffers force drains).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hh"
#include "mem/memory_system.hh"

namespace siwi::mem {
namespace {

MemConfig
randomConfig(Rng &rng)
{
    MemConfig cfg;
    cfg.l1.size_bytes = 128 * (8u << rng.below(4));
    cfg.l1.block_bytes = 128;
    cfg.l1.ways = 2;
    cfg.l1.hit_latency = 1 + rng.below(6);
    cfg.dram.latency_cycles = 5 + rng.below(400);
    cfg.dram.bytes_per_cycle_x10 = 5 + rng.below(200);
    cfg.mshrs = 1 + rng.below(8);
    cfg.write_buffer_entries = 1 + rng.below(8);
    return cfg;
}

/** One randomized request: a load or store at a given cycle. */
struct Req
{
    Cycle when;
    bool is_load;
    Addr block;
};

std::vector<Req>
randomStream(Rng &rng, unsigned count, Cycle span)
{
    std::vector<Req> reqs;
    reqs.reserve(count);
    for (unsigned i = 0; i < count; ++i) {
        Req r;
        r.when = rng.below(u32(span));
        r.is_load = rng.below(3) != 0;
        // A small block pool provokes merges, forwards and reuse.
        r.block = Addr(rng.below(12)) * 128;
        reqs.push_back(r);
    }
    std::sort(reqs.begin(), reqs.end(),
              [](const Req &a, const Req &b) {
                  return a.when < b.when;
              });
    return reqs;
}

/**
 * Lazy ticking at the reported wake bounds only must be
 * observationally identical to eager per-cycle ticking.
 */
TEST(MemNextWakeProperty, LazyTickMatchesEagerTick)
{
    Rng rng(1);
    for (int round = 0; round < 50; ++round) {
        MemConfig cfg = randomConfig(rng);
        MemorySystem eager(cfg);
        MemorySystem lazy(cfg);
        std::vector<Req> reqs = randomStream(
            rng, 40, 2000 + rng.below(2000));

        size_t next = 0;
        const Cycle horizon = reqs.back().when + 3000;
        for (Cycle c = 0; c < horizon; ++c) {
            eager.tick(c);
            // The lazy twin ticks only when its own estimate says
            // this cycle can change something.
            if (lazy.nextWake(c) <= c)
                lazy.tick(c);
            EXPECT_EQ(eager.mshrOccupancy(c), lazy.mshrOccupancy(c))
                << "round " << round << " cycle " << c;
            while (next < reqs.size() && reqs[next].when == c) {
                const Req &r = reqs[next++];
                if (r.is_load) {
                    EXPECT_EQ(eager.load(c, r.block),
                              lazy.load(c, r.block))
                        << "round " << round << " cycle " << c;
                } else {
                    EXPECT_EQ(eager.store(c, r.block, 128),
                              lazy.store(c, r.block, 128))
                        << "round " << round << " cycle " << c;
                }
            }
        }
        EXPECT_EQ(eager.stats().mshr_stalls,
                  lazy.stats().mshr_stalls);
        EXPECT_EQ(eager.stats().write_forwards,
                  lazy.stats().write_forwards);
        EXPECT_EQ(eager.cacheStats().hits,
                  lazy.cacheStats().hits);
        EXPECT_EQ(eager.cacheStats().misses,
                  lazy.cacheStats().misses);
    }
}

/**
 * The bound is never late: after arbitrary traffic, nothing
 * observable may change on any cycle strictly before nextWake().
 * The wake chain must also make strict progress (each tick at a
 * reported wake pushes the next bound strictly later) and drain
 * to no_wake with empty MSHRs — a too-early bound would spin, a
 * too-late one would strand fills.
 */
TEST(MemNextWakeProperty, WakeNeverLaterThanFirstChange)
{
    Rng rng(2);
    for (int round = 0; round < 50; ++round) {
        MemConfig cfg = randomConfig(rng);
        MemorySystem sys(cfg);
        std::vector<Req> reqs = randomStream(rng, 30, 1500);

        Cycle now = 0;
        for (const Req &r : reqs) {
            for (; now <= r.when; ++now)
                sys.tick(now);
            if (r.is_load)
                sys.load(r.when, r.block);
            else
                sys.store(r.when, r.block, 128);
        }

        Cycle wake = sys.nextWake(now);
        if (wake == no_wake) {
            // Nothing in flight: occupancy must already be zero
            // and stay zero forever.
            EXPECT_EQ(sys.mshrOccupancy(now), 0u);
            continue;
        }
        ASSERT_GE(wake, now);
        unsigned occ = sys.mshrOccupancy(now);
        for (Cycle c = now; c < wake; ++c) {
            sys.tick(c);
            EXPECT_EQ(sys.mshrOccupancy(c), occ)
                << "round " << round
                << ": state changed at " << c
                << " before the reported wake " << wake;
        }
        // Follow the wake chain: strictly increasing (a queued
        // miss promoted into the slot freed at the wake may keep
        // occupancy flat, but the next bound must move) and
        // finite, ending with every MSHR drained.
        unsigned hops = 0;
        Cycle last = wake;
        while (wake != no_wake) {
            ASSERT_LT(++hops, 10000u) << "wake chain diverges";
            sys.tick(wake);
            last = wake;
            Cycle next_wake = sys.nextWake(wake);
            ASSERT_TRUE(next_wake == no_wake || next_wake > wake)
                << "round " << round << ": wake chain stuck at "
                << wake;
            wake = next_wake;
        }
        EXPECT_EQ(sys.mshrOccupancy(last + 1), 0u)
            << "round " << round
            << ": fills stranded after the wake chain drained";
    }
}

} // namespace
} // namespace siwi::mem
