/**
 * @file
 * MemoryBackend tests: the private DRAM channel and the
 * chip-shared L2.
 */

#include <gtest/gtest.h>

#include "mem/backend.hh"
#include "mem/memory_system.hh"

namespace siwi::mem {
namespace {

TEST(DramBackend, MatchesPrivateChannelTiming)
{
    DramConfig cfg;
    DramBackend be(cfg);
    Dram ref(cfg);
    EXPECT_EQ(be.read(0, 0x1000, 128, 0), ref.serve(0, 128));
    be.write(100, 0x2000, 64, 0);
    EXPECT_EQ(be.dramStats().transactions, 2u);
    EXPECT_EQ(be.dramStats().bytes, 192u);
}

TEST(SharedL2, MissThenHit)
{
    SharedL2 l2(L2Config{}, DramConfig{});
    Cycle miss = l2.read(0, 0x1000, 128, 0);
    // Lookup + DRAM round trip.
    EXPECT_GT(miss, Cycle(l2.config().hit_latency + 330));
    Cycle hit = l2.read(miss, 0x1000, 128, 0);
    EXPECT_EQ(hit, miss + l2.config().hit_latency);
    EXPECT_EQ(l2.stats().hits, 1u);
    EXPECT_EQ(l2.stats().misses, 1u);
    EXPECT_EQ(l2.dramStats().transactions, 1u);
}

TEST(SharedL2, InvalidateDropsResidency)
{
    SharedL2 l2(L2Config{}, DramConfig{});
    l2.read(0, 0x1000, 128, 0);
    l2.invalidate();
    l2.read(1000, 0x1000, 128, 0);
    EXPECT_EQ(l2.stats().misses, 2u);
    EXPECT_EQ(l2.stats().hits, 0u);
}

TEST(SharedL2, WritesPassThroughToDram)
{
    SharedL2 l2(L2Config{}, DramConfig{});
    l2.write(0, 0x3000, 128, 0);
    EXPECT_EQ(l2.stats().writes, 1u);
    EXPECT_EQ(l2.dramStats().transactions, 1u);
    // No-allocate: a later read still misses.
    l2.read(1000, 0x3000, 128, 0);
    EXPECT_EQ(l2.stats().misses, 1u);
}

TEST(SharedL2, SharedAcrossMemorySystems)
{
    // Two SMs' MemorySystems on one L2: the second SM's miss to a
    // block the first already pulled is an L2 hit and returns much
    // sooner than a full DRAM trip.
    SharedL2 l2(L2Config{}, DramConfig{});
    MemConfig mcfg;
    MemorySystem sm0(mcfg, l2);
    MemorySystem sm1(mcfg, l2);

    Cycle first = sm0.load(0, 0x4000);
    Cycle start = first + 1;
    Cycle second = sm1.load(start, 0x4000);
    EXPECT_EQ(l2.stats().hits, 1u);
    EXPECT_EQ(l2.stats().misses, 1u);
    EXPECT_EQ(l2.dramStats().transactions, 1u);
    // L2 hit: lookup latency + L1 hit latency, no DRAM leg.
    EXPECT_EQ(second, start + l2.config().hit_latency +
                          mcfg.l1.hit_latency);

    // Both clients see the same chip-level DRAM statistics.
    EXPECT_EQ(&sm0.dramStats(), &sm1.dramStats());
    EXPECT_FALSE(sm0.ownsBackend());
    EXPECT_TRUE(MemorySystem(mcfg).ownsBackend());
}

} // namespace
} // namespace siwi::mem
