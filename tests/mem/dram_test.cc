/**
 * @file
 * DRAM bandwidth/latency model tests (10 GB/s, 330 ns at 1 GHz).
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"

namespace siwi::mem {
namespace {

TEST(Dram, SingleAccessLatency)
{
    Dram d{DramConfig{}};
    // 128 bytes at 10 B/cycle = 12.8 cycles transfer + 330 latency.
    Cycle done = d.serve(0, 128);
    EXPECT_EQ(done, Cycle(13 + 330));
}

TEST(Dram, BandwidthSerializesBacklog)
{
    Dram d{DramConfig{}};
    // Two 128-byte transfers issued the same cycle: the second
    // completes 12.8 cycles after the first (25.6 total transfer).
    Cycle a = d.serve(0, 128);
    Cycle b = d.serve(0, 128);
    EXPECT_EQ(a, Cycle(13 + 330));
    EXPECT_EQ(b, Cycle(26 + 330));
}

TEST(Dram, ExactTenthAccounting)
{
    Dram d{DramConfig{}};
    // Ten 128B transfers = exactly 128 cycles of bandwidth.
    Cycle last = 0;
    for (int i = 0; i < 10; ++i)
        last = d.serve(0, 128);
    EXPECT_EQ(last, Cycle(128 + 330));
}

TEST(Dram, IdleGapsNotAccumulated)
{
    Dram d{DramConfig{}};
    d.serve(0, 128);
    // Pipe idle well past the first transfer; a request at cycle
    // 1000 sees only its own transfer time.
    Cycle done = d.serve(1000, 128);
    EXPECT_EQ(done, Cycle(1000 + 13 + 330));
}

TEST(Dram, StatsTracked)
{
    Dram d{DramConfig{}};
    d.serve(0, 128);
    d.serve(0, 64);
    EXPECT_EQ(d.stats().transactions, 2u);
    EXPECT_EQ(d.stats().bytes, 192u);
    EXPECT_GT(d.stats().stall_tenths, 0u);
}

TEST(Dram, CustomBandwidth)
{
    DramConfig cfg;
    cfg.bytes_per_cycle_x10 = 1280; // 128 B/cycle
    cfg.latency_cycles = 100;
    Dram d(cfg);
    EXPECT_EQ(d.serve(0, 128), Cycle(1 + 100));
}

TEST(Dram, SmallTransfersRoundUp)
{
    Dram d{DramConfig{}};
    // 4 bytes = 0.4 cycles of bandwidth; completion ceils.
    Cycle done = d.serve(0, 4);
    EXPECT_EQ(done, Cycle(1 + 330));
}

} // namespace
} // namespace siwi::mem
