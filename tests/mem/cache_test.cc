/**
 * @file
 * L1 cache tag/LRU model tests.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace siwi::mem {
namespace {

CacheConfig
smallCache()
{
    CacheConfig c;
    c.size_bytes = 4 * 128 * 2; // 2 sets x 4 ways
    c.ways = 4;
    c.block_bytes = 128;
    return c;
}

TEST(Cache, GeometryFromConfig)
{
    L1Cache c(smallCache());
    EXPECT_EQ(c.numSets(), 2u);
    // Paper configuration: 48K / 6-way / 128B = 64 sets.
    L1Cache paper{CacheConfig{}};
    EXPECT_EQ(paper.numSets(), 64u);
}

TEST(Cache, MissThenHit)
{
    L1Cache c(smallCache());
    EXPECT_FALSE(c.access(0x0));
    c.fill(0x0);
    EXPECT_TRUE(c.access(0x0));
    EXPECT_EQ(c.stats().hits, 1u);
    EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, ProbeDoesNotTouchLru)
{
    L1Cache c(smallCache());
    c.fill(0x0);
    EXPECT_TRUE(c.probe(0x0));
    EXPECT_EQ(c.stats().hits, 0u);
    EXPECT_EQ(c.stats().misses, 0u);
}

TEST(Cache, LruEviction)
{
    L1Cache c(smallCache());
    // Fill one set (same set index: stride = sets*block = 256).
    for (Addr i = 0; i < 4; ++i)
        c.fill(i * 256);
    // Touch block 0 so block 1*256 is LRU.
    EXPECT_TRUE(c.access(0));
    c.fill(4 * 256);
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(1 * 256)); // evicted
    EXPECT_TRUE(c.probe(2 * 256));
    EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(Cache, SetsAreIndependent)
{
    L1Cache c(smallCache());
    // Fill 4 ways of set 0 and one of set 1; no eviction.
    for (Addr i = 0; i < 4; ++i)
        c.fill(i * 256);
    c.fill(128);
    EXPECT_EQ(c.stats().evictions, 0u);
    for (Addr i = 0; i < 4; ++i)
        EXPECT_TRUE(c.probe(i * 256));
    EXPECT_TRUE(c.probe(128));
}

TEST(Cache, DoubleFillIsIdempotent)
{
    L1Cache c(smallCache());
    c.fill(0);
    c.fill(0);
    EXPECT_EQ(c.stats().evictions, 0u);
    EXPECT_TRUE(c.probe(0));
}

TEST(Cache, InvalidateAll)
{
    L1Cache c(smallCache());
    c.fill(0);
    c.fill(256);
    c.invalidateAll();
    EXPECT_FALSE(c.probe(0));
    EXPECT_FALSE(c.probe(256));
}

TEST(Cache, WorkingSetWithinCapacityAllHits)
{
    L1Cache c{CacheConfig{}};
    unsigned blocks = 48 * 1024 / 128;
    for (Addr i = 0; i < blocks; ++i)
        c.fill(i * 128);
    for (Addr i = 0; i < blocks; ++i)
        EXPECT_TRUE(c.access(i * 128));
    EXPECT_EQ(c.stats().misses, 0u);
}

TEST(Cache, ThrashingWorkingSet)
{
    L1Cache c(smallCache());
    // 8-block working set in a 4-way set: every access misses when
    // cycled round-robin (LRU pathological case).
    for (int round = 0; round < 3; ++round) {
        for (Addr i = 0; i < 8; ++i) {
            if (!c.access(i * 256))
                c.fill(i * 256);
        }
    }
    EXPECT_EQ(c.stats().hits, 0u);
}

} // namespace
} // namespace siwi::mem
