/**
 * @file
 * BankedL2 unit tests: interleaving bijection, MSHR occupancy
 * bounds, NoC/channel contention, and the legacy-equivalence gate
 * (one slice + one channel + free interconnect == SharedL2,
 * bit-identically).
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hh"
#include "mem/banked_l2.hh"

namespace siwi::mem {
namespace {

constexpr u32 blk = 128;

/**
 * Any aligned window of slices*channels consecutive blocks must
 * cover every (slice, channel) pair exactly once — that is what
 * makes strided streams spread over both levels. Swept over
 * topologies and window positions, including strides: a stream of
 * stride S*C lands every element on the same pair, a stride-1
 * stream round-robins over all of them.
 */
TEST(BankedL2Interleave, WindowOfBlocksIsABijection)
{
    for (u32 slices : {1u, 2u, 4u, 8u}) {
        for (u32 channels : {1u, 2u, 4u}) {
            const u32 window = slices * channels;
            for (u64 base : {u64(0), u64(7), u64(1000),
                             u64(123456)}) {
                std::set<std::pair<u32, u32>> seen;
                for (u64 i = 0; i < window; ++i) {
                    Addr block = Addr((base * window + i) * blk);
                    u32 s = BankedL2::sliceOf(block, blk, slices);
                    u32 c = BankedL2::channelOf(block, blk,
                                                slices, channels);
                    ASSERT_LT(s, slices);
                    ASSERT_LT(c, channels);
                    seen.insert({s, c});
                }
                EXPECT_EQ(seen.size(), size_t(window))
                    << slices << "x" << channels << " @" << base;
            }
        }
    }
}

/** Strided sweeps stay balanced across slices (no bank camping). */
TEST(BankedL2Interleave, PowerOfTwoStridesStayBalanced)
{
    const u32 slices = 4, channels = 2;
    for (u32 stride : {1u, 2u, 4u, 8u, 16u}) {
        std::vector<unsigned> per_slice(slices, 0);
        const unsigned n = 256;
        for (unsigned i = 0; i < n; ++i) {
            Addr block = Addr(u64(i) * stride * blk);
            per_slice[BankedL2::sliceOf(block, blk, slices)]++;
        }
        for (u32 s = 0; s < slices; ++s)
            EXPECT_EQ(per_slice[s], n / slices)
                << "stride " << stride << " slice " << s;
    }
}

/** Randomized request stream shared by the equivalence tests. */
struct Req
{
    Cycle when;
    bool is_read;
    Addr block;
    u32 bytes;
};

std::vector<Req>
randomStream(Rng &rng, unsigned count)
{
    std::vector<Req> reqs;
    Cycle now = 0;
    for (unsigned i = 0; i < count; ++i) {
        now += rng.below(40);
        reqs.push_back({now, rng.below(3) != 0,
                        Addr(rng.below(64)) * blk,
                        blk >> rng.below(2)});
    }
    return reqs;
}

/**
 * The bit-identity gate behind the committed multi-SM baselines:
 * one slice, one channel, no MSHR file, no tag pipe and a free
 * interconnect must reproduce SharedL2's returned cycles and
 * statistics exactly, call for call.
 */
TEST(BankedL2, DefaultTopologyMatchesSharedL2BitExactly)
{
    Rng rng(7);
    for (int round = 0; round < 20; ++round) {
        L2Config l2;
        l2.size_bytes = 16 * 1024;
        l2.hit_latency = 1 + rng.below(40);
        DramConfig dram;
        dram.latency_cycles = 5 + rng.below(300);
        dram.bytes_per_cycle_x10 = 5 + rng.below(200);
        SharedL2 ref(l2, dram);
        BankedL2 banked(l2, dram, NocConfig{}, 4);

        for (const Req &r : randomStream(rng, 200)) {
            unsigned port = unsigned(r.block / blk) % 4;
            if (r.is_read) {
                EXPECT_EQ(ref.read(r.when, r.block, r.bytes, 0),
                          banked.read(r.when, r.block, r.bytes,
                                      port))
                    << "round " << round << " cycle " << r.when;
            } else {
                ref.write(r.when, r.block, r.bytes, 0);
                banked.write(r.when, r.block, r.bytes, port);
            }
        }
        EXPECT_EQ(ref.stats(), banked.stats());
        EXPECT_EQ(ref.dramStats(), banked.dramStats());
    }
}

/** Per-slice and per-channel breakdowns must sum to the totals. */
TEST(BankedL2, BreakdownsSumToTotals)
{
    L2Config l2;
    l2.size_bytes = 64 * 1024;
    l2.slices = 4;
    l2.mshrs_per_slice = 4;
    l2.tag_cycles = 1;
    DramConfig dram;
    dram.channels = 2;
    NocConfig noc;
    noc.port_bytes_per_cycle_x10 = 80;
    BankedL2 banked(l2, dram, noc, 2);

    Rng rng(11);
    for (const Req &r : randomStream(rng, 400)) {
        unsigned port = unsigned(r.block / blk) % 2;
        if (r.is_read)
            banked.read(r.when, r.block, r.bytes, port);
        else
            banked.write(r.when, r.block, r.bytes, port);
    }

    L2SliceStats sum;
    for (u32 s = 0; s < banked.numSlices(); ++s) {
        sum.hits += banked.sliceStats(s).hits;
        sum.misses += banked.sliceStats(s).misses;
        sum.writes += banked.sliceStats(s).writes;
    }
    EXPECT_EQ(sum.hits, banked.stats().hits);
    EXPECT_EQ(sum.misses, banked.stats().misses);
    EXPECT_EQ(sum.writes, banked.stats().writes);
    EXPECT_GT(banked.stats().hits + banked.stats().misses, 0u);

    u64 tx = 0, bytes = 0;
    for (u32 c = 0; c < banked.numChannels(); ++c) {
        tx += banked.channelStats(c).transactions;
        bytes += banked.channelStats(c).bytes;
        EXPECT_GT(banked.channelStats(c).transactions, 0u)
            << "channel " << c << " never used";
    }
    EXPECT_EQ(tx, banked.dramStats().transactions);
    EXPECT_EQ(bytes, banked.dramStats().bytes);
}

/**
 * Slice MSHR occupancy never exceeds the configured capacity, and
 * a full file makes later misses wait (mshr_stalls counted).
 */
TEST(BankedL2, SliceMshrOccupancyNeverExceedsCapacity)
{
    L2Config l2;
    l2.size_bytes = 16 * 1024;
    l2.slices = 2;
    l2.mshrs_per_slice = 2;
    DramConfig dram;
    dram.latency_cycles = 200;
    dram.bytes_per_cycle_x10 = 10;
    BankedL2 banked(l2, dram, NocConfig{}, 1);

    // A burst of distinct-block misses, all at cycle 0.
    Cycle last_ready = 0;
    for (unsigned i = 0; i < 12; ++i) {
        Cycle ready =
            banked.read(0, Addr(i) * blk, blk, 0);
        EXPECT_GE(ready, last_ready);
        last_ready = ready;
    }
    u64 stalls = 0;
    for (u32 s = 0; s < banked.numSlices(); ++s)
        stalls += banked.sliceStats(s).mshr_stalls;
    EXPECT_GT(stalls, 0u);
    for (Cycle c = 0; c <= last_ready + 1; ++c) {
        for (u32 s = 0; s < banked.numSlices(); ++s)
            ASSERT_LE(banked.sliceMshrOccupancy(s, c),
                      l2.mshrs_per_slice)
                << "slice " << s << " cycle " << c;
    }
    // Everything drains eventually.
    for (u32 s = 0; s < banked.numSlices(); ++s)
        EXPECT_EQ(banked.sliceMshrOccupancy(s, last_ready + 1),
                  0u);
}

/**
 * Same-block requests merge onto the outstanding fill instead of
 * issuing a second channel transfer.
 */
TEST(BankedL2, InFlightMissesMergeSameBlockRequests)
{
    L2Config l2;
    l2.size_bytes = 16 * 1024;
    l2.mshrs_per_slice = 8;
    DramConfig dram;
    dram.latency_cycles = 300;
    BankedL2 banked(l2, dram, NocConfig{}, 1);

    Cycle first = banked.read(0, 0, blk, 0);
    Cycle second = banked.read(1, 0, blk, 0);
    EXPECT_EQ(first, second);
    EXPECT_EQ(banked.sliceStats(0).mshr_merges, 1u);
    EXPECT_EQ(banked.dramStats().transactions, 1u);
}

/**
 * A bounded channel queue pushes a deep burst's start times back
 * (queue_full_stall_tenths) relative to an unbounded queue.
 */
TEST(BankedL2, ChannelQueueDepthThrottlesDeepBursts)
{
    L2Config l2;
    l2.size_bytes = 16 * 1024;
    // Latency far above the per-transfer bandwidth time, so the
    // flat-latency window (not the pipe) is what backs up a
    // 2-deep queue.
    DramConfig unbounded;
    unbounded.latency_cycles = 100;
    unbounded.bytes_per_cycle_x10 = 100;
    DramConfig bounded = unbounded;
    bounded.queue_depth = 2;
    BankedL2 free_q(l2, unbounded, NocConfig{}, 1);
    BankedL2 tight_q(l2, bounded, NocConfig{}, 1);

    Cycle free_last = 0, tight_last = 0;
    for (unsigned i = 0; i < 8; ++i) {
        free_last = free_q.read(0, Addr(i) * blk, blk, 0);
        tight_last = tight_q.read(0, Addr(i) * blk, blk, 0);
        EXPECT_GE(tight_last, free_last);
    }
    EXPECT_GT(tight_last, free_last);
    EXPECT_EQ(free_q.dramStats().queue_full_stall_tenths, 0u);
    EXPECT_GT(tight_q.dramStats().queue_full_stall_tenths, 0u);
}

/**
 * Port injection bandwidth serializes one SM's transfers while
 * leaving another SM's port untouched.
 */
TEST(BankedL2, PortBandwidthSerializesPerPort)
{
    L2Config l2;
    l2.size_bytes = 16 * 1024;
    DramConfig dram;
    NocConfig noc;
    noc.port_bytes_per_cycle_x10 = 10; // 1 byte/cycle: very tight
    BankedL2 banked(l2, dram, noc, 2);

    // Warm the tags so the timed reads below are hits: hits never
    // touch the shared channel, isolating the port pipe.
    banked.read(0, 0 * blk, blk, 0);
    banked.read(0, 1 * blk, blk, 0);
    banked.read(0, 2 * blk, blk, 1);

    Cycle a = banked.read(10000, 0 * blk, blk, 0);
    Cycle b = banked.read(10000, 1 * blk, blk, 0);
    Cycle c = banked.read(10000, 2 * blk, blk, 1);
    // Same port: the second transfer waits ~128 cycles behind the
    // first; a fresh port sees no serialization at all.
    EXPECT_GT(b, a);
    EXPECT_EQ(c, a);
    EXPECT_GT(banked.portStats(0).stall_tenths, 0u);
    EXPECT_EQ(banked.portStats(1).stall_tenths, 0u);
    EXPECT_EQ(banked.portStats(0).requests, 4u);
    EXPECT_EQ(banked.portStats(1).requests, 2u);
}

/**
 * The NoC latency legs add to every access, hit or miss, and the
 * tag pipe serializes back-to-back lookups on one slice.
 */
TEST(BankedL2, NocLatencyAndTagPipeAddCycles)
{
    L2Config l2;
    l2.size_bytes = 16 * 1024;
    l2.hit_latency = 10;
    DramConfig dram;
    BankedL2 plain(l2, dram, NocConfig{}, 1);
    NocConfig noc;
    noc.request_latency = 3;
    noc.response_latency = 4;
    BankedL2 routed(l2, dram, noc, 1);

    EXPECT_EQ(routed.read(0, 0, blk, 0),
              plain.read(0, 0, blk, 0) + 3 + 4);

    // Tag pipe: two same-cycle hits to one slice serialize.
    L2Config piped = l2;
    piped.tag_cycles = 2;
    BankedL2 serial(piped, dram, NocConfig{}, 1);
    serial.read(0, 0, blk, 0); // install
    Cycle h1 = serial.read(100, 0, blk, 0);
    Cycle h2 = serial.read(100, 0, blk, 0);
    EXPECT_EQ(h2, h1 + piped.tag_cycles);
    EXPECT_GT(serial.sliceStats(0).tag_stall_cycles, 0u);
}

/** invalidate() drops tags and forgets in-flight fills. */
TEST(BankedL2, InvalidateDropsTagsAndInflight)
{
    L2Config l2;
    l2.size_bytes = 16 * 1024;
    l2.slices = 2;
    l2.mshrs_per_slice = 4;
    DramConfig dram;
    dram.latency_cycles = 500;
    BankedL2 banked(l2, dram, NocConfig{}, 1);

    banked.read(0, 0, blk, 0);
    banked.read(0, blk, blk, 0);
    banked.invalidate();
    for (u32 s = 0; s < banked.numSlices(); ++s)
        EXPECT_EQ(banked.sliceMshrOccupancy(s, 1), 0u);
    EXPECT_EQ(banked.nextWake(0), no_wake);
}

} // namespace
} // namespace siwi::mem
