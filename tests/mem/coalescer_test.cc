/**
 * @file
 * Coalescer tests: the LSU's 128-byte transaction formation.
 */

#include <gtest/gtest.h>

#include "mem/coalescer.hh"

namespace siwi::mem {
namespace {

std::vector<LaneAccess>
unitStride(unsigned lanes, Addr base)
{
    std::vector<LaneAccess> v;
    for (unsigned l = 0; l < lanes; ++l)
        v.push_back({l, base + l * 4});
    return v;
}

TEST(Coalescer, FullyCoalescedWarp32)
{
    auto txns = coalesce(unitStride(32, 0x1000), 128);
    ASSERT_EQ(txns.size(), 1u);
    EXPECT_EQ(txns[0].block, 0x1000u);
    EXPECT_EQ(txns[0].lanes.count(), 32u);
}

TEST(Coalescer, Warp64UnitStrideIsTwoTransactions)
{
    auto txns = coalesce(unitStride(64, 0x1000), 128);
    ASSERT_EQ(txns.size(), 2u);
    EXPECT_EQ(txns[0].block, 0x1000u);
    EXPECT_EQ(txns[1].block, 0x1080u);
    EXPECT_EQ(txns[0].lanes.count(), 32u);
    EXPECT_EQ(txns[1].lanes.count(), 32u);
}

TEST(Coalescer, MisalignedStraddlesTwoBlocks)
{
    auto txns = coalesce(unitStride(32, 0x1040), 128);
    ASSERT_EQ(txns.size(), 2u);
    EXPECT_EQ(txns[0].block, 0x1000u);
    EXPECT_EQ(txns[1].block, 0x1080u);
}

TEST(Coalescer, BroadcastSingleTransaction)
{
    std::vector<LaneAccess> v;
    for (unsigned l = 0; l < 32; ++l)
        v.push_back({l, 0x2000});
    auto txns = coalesce(v, 128);
    ASSERT_EQ(txns.size(), 1u);
    EXPECT_EQ(txns[0].lanes.count(), 32u);
}

TEST(Coalescer, StridedWorstCase)
{
    // Stride of one block per lane: fully divergent.
    std::vector<LaneAccess> v;
    for (unsigned l = 0; l < 32; ++l)
        v.push_back({l, Addr(l) * 128});
    auto txns = coalesce(v, 128);
    EXPECT_EQ(txns.size(), 32u);
}

TEST(Coalescer, TransactionsInFirstLaneOrder)
{
    std::vector<LaneAccess> v = {
        {0, 0x3080}, {1, 0x3000}, {2, 0x3080}, {3, 0x3000}};
    auto txns = coalesce(v, 128);
    ASSERT_EQ(txns.size(), 2u);
    EXPECT_EQ(txns[0].block, 0x3080u); // first touched
    EXPECT_EQ(txns[0].lanes.bits(), 0b0101u);
    EXPECT_EQ(txns[1].lanes.bits(), 0b1010u);
}

TEST(Coalescer, EmptyInput)
{
    EXPECT_TRUE(coalesce({}, 128).empty());
}

TEST(Coalescer, LanesPartitionAcrossTransactions)
{
    // Property: every lane appears in exactly one transaction.
    std::vector<LaneAccess> v;
    for (unsigned l = 0; l < 48; ++l)
        v.push_back({l, Addr(l % 7) * 64});
    auto txns = coalesce(v, 128);
    LaneMask all;
    unsigned total = 0;
    for (const auto &t : txns) {
        EXPECT_FALSE(all.intersects(t.lanes));
        all |= t.lanes;
        total += t.lanes.count();
    }
    EXPECT_EQ(total, 48u);
}

class CoalescerStride
    : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CoalescerStride, TransactionCountMatchesStride)
{
    // 32 lanes, stride s words: expect ceil(32*s*4 / 128) blocks
    // when accesses are dense and aligned.
    unsigned stride_words = GetParam();
    std::vector<LaneAccess> v;
    for (unsigned l = 0; l < 32; ++l)
        v.push_back({l, Addr(l) * stride_words * 4});
    auto txns = coalesce(v, 128);
    unsigned span_bytes = 32 * stride_words * 4;
    unsigned expect = (span_bytes + 127) / 128;
    EXPECT_EQ(txns.size(), std::max(1u, expect));
}

INSTANTIATE_TEST_SUITE_P(Strides, CoalescerStride,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u,
                                           32u));

} // namespace
} // namespace siwi::mem
