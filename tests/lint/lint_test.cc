/**
 * Fixture tests for siwi-lint (tools/siwi_lint/).
 *
 * Each fixture under tools/siwi_lint/fixtures/ is a miniature repo
 * root. "clean" is complete and must pass; every other fixture is
 * an overlay of seeded violations applied on top of a temp copy of
 * clean, and must fail with findings that carry an actionable
 * file:line anchor. The last test runs the checker over the real
 * tree, which the committed allowlist and schema pin must keep
 * green.
 */

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.hh"

namespace fs = std::filesystem;
using siwi::lint::Finding;
using siwi::lint::Options;
using siwi::lint::Result;

namespace {

const fs::path kFixtures =
    fs::path(SIWI_SOURCE_DIR) / "tools/siwi_lint/fixtures";

/** Copy clean/, overlay @p overlay (if any), return the temp root. */
class FixtureTree
{
  public:
    explicit FixtureTree(const std::string &overlay)
    {
        root_ = fs::temp_directory_path() /
                ("siwi_lint_" +
                 std::string(
                     ::testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name()));
        fs::remove_all(root_);
        fs::copy(kFixtures / "clean", root_,
                 fs::copy_options::recursive);
        if (!overlay.empty())
            fs::copy(kFixtures / overlay, root_,
                     fs::copy_options::recursive |
                         fs::copy_options::overwrite_existing);
    }

    ~FixtureTree() { fs::remove_all(root_); }

    std::string path() const { return root_.string(); }

  private:
    fs::path root_;
};

Result
lintTree(const FixtureTree &tree)
{
    Options opts;
    opts.root = tree.path();
    return siwi::lint::runLint(opts);
}

bool
hasFinding(const Result &res, const std::string &check,
           const std::string &file, int line,
           const std::string &msg_part = "")
{
    return std::any_of(
        res.findings.begin(), res.findings.end(),
        [&](const Finding &f) {
            return f.check == check && f.file == file &&
                   (line == 0 || f.line == line) &&
                   f.message.find(msg_part) != std::string::npos;
        });
}

std::string
dump(const Result &res)
{
    std::string out;
    for (const std::string &e : res.errors)
        out += "error: " + e + "\n";
    for (const Finding &f : res.findings)
        out += f.format() + "\n";
    return out;
}

TEST(LintFixtures, CleanTreePasses)
{
    FixtureTree tree("");
    Result res = lintTree(tree);
    EXPECT_TRUE(res.clean()) << dump(res);
}

TEST(LintFixtures, BannedCallsReportedWithFileAndLine)
{
    FixtureTree tree("banned_call");
    Result res = lintTree(tree);
    ASSERT_TRUE(res.errors.empty()) << dump(res);
    EXPECT_TRUE(hasFinding(res, "nondet", "src/core/evil.cc", 13,
                           "unordered container"))
        << dump(res);
    EXPECT_TRUE(hasFinding(res, "nondet", "src/core/evil.cc", 14,
                           "rand()"))
        << dump(res);
    EXPECT_TRUE(hasFinding(res, "nondet", "src/core/evil.cc", 15,
                           "wall clock"))
        << dump(res);
    EXPECT_TRUE(hasFinding(res, "nondet", "src/core/evil.cc", 16,
                           "pointer-keyed"))
        << dump(res);
    // The comment mentioning rand() on line 2 must not be flagged.
    EXPECT_FALSE(hasFinding(res, "nondet", "src/core/evil.cc", 2))
        << dump(res);
    // Findings format as clickable file:line references.
    ASSERT_FALSE(res.findings.empty());
    EXPECT_NE(res.findings[0].format().find(
                  "src/core/evil.cc:13:"),
              std::string::npos);
}

TEST(LintFixtures, MissingTableRowIsAnError)
{
    FixtureTree tree("missing_table_row");
    Result res = lintTree(tree);
    ASSERT_TRUE(res.errors.empty()) << dump(res);
    // A u64 counter added to SimStats without a statsU64Fields row.
    EXPECT_TRUE(hasFinding(res, "table-drift",
                           "src/core/stats.hh", 13,
                           "SimStats.forgotten_counter"))
        << dump(res);
    // A nested config leaf (SMConfig.dram.rate) without a
    // ConfigField row, anchored at the leaf's declaration.
    EXPECT_TRUE(hasFinding(res, "table-drift", "src/mem/dram.hh", 9,
                           "SMConfig.dram.rate"))
        << dump(res);
}

TEST(LintFixtures, NewSerializedKeyWithoutBumpFails)
{
    FixtureTree tree("schema_drift");
    Result res = lintTree(tree);
    ASSERT_TRUE(res.errors.empty()) << dump(res);
    EXPECT_TRUE(hasFinding(res, "schema", "src/core/stats_io.hh", 0,
                           "brand_new_key"))
        << dump(res);
}

TEST(LintFixtures, VersionBumpWithoutPinRegenFails)
{
    FixtureTree tree("schema_bump");
    Result res = lintTree(tree);
    ASSERT_TRUE(res.errors.empty()) << dump(res);
    EXPECT_TRUE(hasFinding(res, "schema", "src/core/stats_io.hh", 0,
                           "pins v1"))
        << dump(res);
}

TEST(LintFixtures, UpdateSchemaPinMakesDriftClean)
{
    FixtureTree tree("schema_drift");
    Options opts;
    opts.root = tree.path();
    opts.update_schema_pin = true;
    Result update = siwi::lint::runLint(opts);
    ASSERT_TRUE(update.errors.empty()) << dump(update);
    Result res = lintTree(tree);
    EXPECT_TRUE(res.clean()) << dump(res);
}

TEST(LintFixtures, BadHeaderGuardAndUsingNamespace)
{
    FixtureTree tree("bad_header");
    Result res = lintTree(tree);
    ASSERT_TRUE(res.errors.empty()) << dump(res);
    EXPECT_TRUE(hasFinding(res, "header", "src/common/bad.hh", 0,
                           "SIWI_COMMON_BAD_HH"))
        << dump(res);
    EXPECT_TRUE(hasFinding(res, "header", "src/common/bad.hh", 7,
                           "using namespace"))
        << dump(res);
}

TEST(LintFixtures, AllowlistedFindingIsSuppressed)
{
    FixtureTree tree("allowed");
    Result res = lintTree(tree);
    EXPECT_TRUE(res.clean()) << dump(res);
}

TEST(LintFixtures, ServeClockOutsideAnchorIsFlagged)
{
    // src/serve/ is inside the scanned tree like any other source
    // directory: the designated clock anchor (clock.hh) is
    // suppressed by its justified allowlist entry, but a direct
    // steady_clock read anywhere else in serve code is a finding.
    FixtureTree tree("serve_clock");
    Result res = lintTree(tree);
    ASSERT_TRUE(res.errors.empty()) << dump(res);
    EXPECT_TRUE(hasFinding(res, "nondet",
                           "src/serve/evil_clock.cc", 13,
                           "wall clock"))
        << dump(res);
    EXPECT_FALSE(hasFinding(res, "nondet", "src/serve/clock.hh", 0))
        << dump(res);
    // The anchor's entry matched, so it is not reported stale.
    EXPECT_FALSE(hasFinding(res, "allowlist",
                            "tools/siwi_lint/allowlist.txt", 0))
        << dump(res);
}

TEST(LintFixtures, StaleAllowlistEntryIsReported)
{
    FixtureTree tree("stale_allow");
    Result res = lintTree(tree);
    ASSERT_TRUE(res.errors.empty()) << dump(res);
    EXPECT_TRUE(hasFinding(res, "allowlist",
                           "tools/siwi_lint/allowlist.txt", 3,
                           "stale allowlist entry"))
        << dump(res);
}

TEST(LintTree, RealSourcesAreClean)
{
    Options opts;
    opts.root = SIWI_SOURCE_DIR;
    Result res = siwi::lint::runLint(opts);
    EXPECT_TRUE(res.clean()) << dump(res);
}

} // namespace
