/**
 * @file
 * Hardware inventory tests against the paper's Table 3.
 */

#include <gtest/gtest.h>

#include "core/hardware_inventory.hh"

namespace siwi::core {
namespace {

using pipeline::PipelineMode;

const StorageItem &
item(const std::vector<StorageItem> &inv, const std::string &name)
{
    for (const StorageItem &it : inv) {
        if (it.component == name)
            return it;
    }
    ADD_FAILURE() << "missing component " << name;
    static StorageItem dummy;
    return dummy;
}

TEST(Inventory, BaselineMatchesTable3)
{
    auto inv = hardwareInventory(PipelineMode::Baseline);
    EXPECT_EQ(item(inv, "Scoreboard").geometry, "2x 24x 48-bit");
    EXPECT_EQ(item(inv, "Scoreboard").bits, 2u * 24 * 48);
    EXPECT_EQ(item(inv, "Warp pool/HCT").geometry, "2x 24x 64-bit");
    EXPECT_EQ(item(inv, "Stack/CCT").geometry, "144x 256-bit");
    EXPECT_EQ(item(inv, "Insn. buffer").geometry, "48x 64-bit");
    EXPECT_EQ(item(inv, "RF").geometry, "single-decoder");
}

TEST(Inventory, SbiMatchesTable3)
{
    auto inv = hardwareInventory(PipelineMode::SBI);
    EXPECT_EQ(item(inv, "Scoreboard").geometry, "24x 144-bit");
    EXPECT_EQ(item(inv, "Warp pool/HCT").geometry, "24x 201-bit");
    EXPECT_EQ(item(inv, "Stack/CCT").geometry, "128x 104-bit");
    EXPECT_EQ(item(inv, "Insn. buffer").geometry, "48x 64-bit");
    EXPECT_EQ(item(inv, "RF").geometry, "segmented");
}

TEST(Inventory, SwiMatchesTable3)
{
    auto inv = hardwareInventory(PipelineMode::SWI);
    EXPECT_EQ(item(inv, "Scoreboard").geometry, "2x 24x 48-bit");
    EXPECT_EQ(item(inv, "Warp pool/HCT").geometry, "24x 104-bit");
    EXPECT_EQ(item(inv, "Insn. buffer").geometry, "24x 64-bit");
    EXPECT_EQ(item(inv, "Insn. buffer").note, "dual-ported");
    EXPECT_EQ(item(inv, "Scheduler").geometry,
              "associative lookup");
}

TEST(Inventory, SbiSwiMatchesTable3)
{
    auto inv = hardwareInventory(PipelineMode::SBISWI);
    EXPECT_EQ(item(inv, "Scoreboard").geometry, "24x 288-bit");
    EXPECT_EQ(item(inv, "Warp pool/HCT").geometry, "24x 201-bit");
    EXPECT_EQ(item(inv, "Warp pool/HCT").note, "banked");
    EXPECT_EQ(item(inv, "Insn. buffer").geometry, "48x 64-bit");
}

TEST(Inventory, Warp64SharesBaselineFrontEnd)
{
    EXPECT_EQ(inventoryTotalBits(PipelineMode::Warp64),
              inventoryTotalBits(PipelineMode::Baseline));
}

TEST(Inventory, HeapDesignsShrinkDivergenceStorage)
{
    // The paper's point: CCT (128x104) is much smaller than the
    // baseline's fully provisioned stacks (144x256).
    auto base = hardwareInventory(PipelineMode::Baseline);
    auto sbi = hardwareInventory(PipelineMode::SBI);
    EXPECT_LT(item(sbi, "Stack/CCT").bits,
              item(base, "Stack/CCT").bits);
}

TEST(Inventory, ScalesWithThreadCount)
{
    InventoryParams small;
    small.threads = 768;
    auto inv = hardwareInventory(PipelineMode::Baseline, small);
    EXPECT_EQ(item(inv, "Scoreboard").geometry, "2x 12x 48-bit");
}

TEST(Inventory, FormattedTableContainsAllColumns)
{
    std::string t = formatInventoryTable();
    EXPECT_NE(t.find("Baseline"), std::string::npos);
    EXPECT_NE(t.find("SBI+SWI"), std::string::npos);
    EXPECT_NE(t.find("24x 288-bit"), std::string::npos);
    EXPECT_NE(t.find("Total bits"), std::string::npos);
}

} // namespace
} // namespace siwi::core
