/**
 * @file
 * Public-API (Gpu / Kernel) tests.
 */

#include <gtest/gtest.h>

#include "core/gpu.hh"
#include "isa/assembler.hh"
#include "isa/builder.hh"

namespace siwi::core {
namespace {

using isa::Imm;
using isa::KernelBuilder;
using isa::Reg;
using isa::SpecialReg;

Kernel
saxpyKernel()
{
    KernelBuilder b("saxpy");
    Reg gtid = b.reg(), xaddr = b.reg(), yaddr = b.reg(),
        x = b.reg(), y = b.reg(), a = b.reg();
    b.s2r(gtid, SpecialReg::GTID);
    b.shl(xaddr, gtid, Imm(2));
    b.iadd(yaddr, xaddr, Imm(0x2000));
    b.iadd(xaddr, xaddr, Imm(0x1000));
    b.ld(x, xaddr);
    b.ld(y, yaddr);
    b.fmovi(a, 2.0f);
    b.fmad(y, a, x, y);
    b.st(yaddr, 0, y);
    return Kernel::compile(b.build());
}

TEST(Gpu, LaunchRunsToCompletion)
{
    Gpu gpu(pipeline::SMConfig::make(pipeline::PipelineMode::SBI));
    for (unsigned i = 0; i < 64; ++i) {
        gpu.memory().writeF32(0x1000 + Addr(i) * 4, float(i));
        gpu.memory().writeF32(0x2000 + Addr(i) * 4, 1.0f);
    }
    LaunchConfig lc;
    lc.grid_blocks = 1;
    lc.block_threads = 64;
    SimStats st = gpu.launch(saxpyKernel(), lc);
    EXPECT_FALSE(st.hit_cycle_limit);
    EXPECT_GT(st.ipc(), 0.0);
    for (unsigned i = 0; i < 64; ++i) {
        EXPECT_FLOAT_EQ(gpu.memory().readF32(0x2000 + Addr(i) * 4),
                        2.0f * float(i) + 1.0f);
    }
}

TEST(Gpu, MemoryPersistsAcrossLaunches)
{
    Gpu gpu(
        pipeline::SMConfig::make(pipeline::PipelineMode::Baseline));
    for (unsigned i = 0; i < 32; ++i) {
        gpu.memory().writeF32(0x1000 + Addr(i) * 4, 1.0f);
        gpu.memory().writeF32(0x2000 + Addr(i) * 4, 0.0f);
    }
    LaunchConfig lc;
    lc.block_threads = 32;
    gpu.launch(saxpyKernel(), lc);
    gpu.launch(saxpyKernel(), lc); // y += 2x twice
    EXPECT_FLOAT_EQ(gpu.memory().readF32(0x2000), 4.0f);
}

TEST(Gpu, TracedLaunchDeliversEvents)
{
    Gpu gpu(
        pipeline::SMConfig::make(pipeline::PipelineMode::Baseline));
    LaunchConfig lc;
    lc.block_threads = 32;
    unsigned events = 0;
    gpu.launchTraced(saxpyKernel(), lc,
                     [&](const pipeline::IssueEvent &) {
                         ++events;
                     });
    EXPECT_GT(events, 5u);
}

TEST(Kernel, CompileReportsSyncStats)
{
    KernelBuilder b("k");
    Reg c = b.reg(), v = b.reg();
    b.if_(c);
    b.movi(v, 1);
    b.else_();
    b.movi(v, 2);
    b.endIf();
    Kernel k = Kernel::compile(b.build());
    EXPECT_EQ(k.syncStats().divergent_branches, 1u);
    EXPECT_EQ(k.layoutViolations(), 0u);
    EXPECT_EQ(k.name(), "k");
}

TEST(Kernel, FromProgramSkipsCompilation)
{
    auto res = isa::assemble("movi r0, #5\nexit\n");
    ASSERT_TRUE(res.ok());
    Kernel k = Kernel::fromProgram(res.program);
    EXPECT_EQ(k.program().size(), 2u);
}

TEST(Gpu, AssembledKernelRuns)
{
    const char *src = R"(
.kernel store_tid
    s2r r0, %gtid
    shl r1, r0, #2
    iadd r1, r1, #0x4000
    st [r1+0], r0
    exit
)";
    auto res = isa::assemble(src);
    ASSERT_TRUE(res.ok()) << res.error;
    Kernel k = Kernel::compile(res.program);
    Gpu gpu(
        pipeline::SMConfig::make(pipeline::PipelineMode::SBISWI));
    LaunchConfig lc;
    lc.grid_blocks = 2;
    lc.block_threads = 128;
    gpu.launch(k, lc);
    for (u32 t = 0; t < 256; ++t)
        ASSERT_EQ(gpu.memory().read32(0x4000 + Addr(t) * 4), t);
}

} // namespace
} // namespace siwi::core
