/**
 * @file
 * Public-API (Gpu / Kernel) tests.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/gpu.hh"
#include "core/hardware_inventory.hh"
#include "isa/assembler.hh"
#include "isa/builder.hh"

namespace siwi::core {
namespace {

using isa::Imm;
using isa::KernelBuilder;
using isa::Reg;
using isa::SpecialReg;

Kernel
saxpyKernel()
{
    KernelBuilder b("saxpy");
    Reg gtid = b.reg(), xaddr = b.reg(), yaddr = b.reg(),
        x = b.reg(), y = b.reg(), a = b.reg();
    b.s2r(gtid, SpecialReg::GTID);
    b.shl(xaddr, gtid, Imm(2));
    b.iadd(yaddr, xaddr, Imm(0x2000));
    b.iadd(xaddr, xaddr, Imm(0x1000));
    b.ld(x, xaddr);
    b.ld(y, yaddr);
    b.fmovi(a, 2.0f);
    b.fmad(y, a, x, y);
    b.st(yaddr, 0, y);
    return Kernel::compile(b.build());
}

TEST(Gpu, LaunchRunsToCompletion)
{
    Gpu gpu(pipeline::SMConfig::make(pipeline::PipelineMode::SBI));
    for (unsigned i = 0; i < 64; ++i) {
        gpu.memory().writeF32(0x1000 + Addr(i) * 4, float(i));
        gpu.memory().writeF32(0x2000 + Addr(i) * 4, 1.0f);
    }
    LaunchConfig lc;
    lc.grid_blocks = 1;
    lc.block_threads = 64;
    SimStats st = gpu.launch(saxpyKernel(), lc);
    EXPECT_FALSE(st.timed_out);
    EXPECT_GT(st.ipc(), 0.0);
    for (unsigned i = 0; i < 64; ++i) {
        EXPECT_FLOAT_EQ(gpu.memory().readF32(0x2000 + Addr(i) * 4),
                        2.0f * float(i) + 1.0f);
    }
}

TEST(Gpu, MemoryPersistsAcrossLaunches)
{
    Gpu gpu(
        pipeline::SMConfig::make(pipeline::PipelineMode::Baseline));
    for (unsigned i = 0; i < 32; ++i) {
        gpu.memory().writeF32(0x1000 + Addr(i) * 4, 1.0f);
        gpu.memory().writeF32(0x2000 + Addr(i) * 4, 0.0f);
    }
    LaunchConfig lc;
    lc.block_threads = 32;
    gpu.launch(saxpyKernel(), lc);
    gpu.launch(saxpyKernel(), lc); // y += 2x twice
    EXPECT_FLOAT_EQ(gpu.memory().readF32(0x2000), 4.0f);
}

TEST(Gpu, TracedLaunchDeliversEvents)
{
    Gpu gpu(
        pipeline::SMConfig::make(pipeline::PipelineMode::Baseline));
    LaunchConfig lc;
    lc.block_threads = 32;
    unsigned events = 0;
    gpu.launchTraced(saxpyKernel(), lc,
                     [&](const pipeline::IssueEvent &) {
                         ++events;
                     });
    EXPECT_GT(events, 5u);
}

TEST(Kernel, CompileReportsSyncStats)
{
    KernelBuilder b("k");
    Reg c = b.reg(), v = b.reg();
    b.if_(c);
    b.movi(v, 1);
    b.else_();
    b.movi(v, 2);
    b.endIf();
    Kernel k = Kernel::compile(b.build());
    EXPECT_EQ(k.syncStats().divergent_branches, 1u);
    EXPECT_EQ(k.layoutViolations(), 0u);
    EXPECT_EQ(k.name(), "k");
}

TEST(Kernel, FromProgramSkipsCompilation)
{
    auto res = isa::assemble("movi r0, #5\nexit\n");
    ASSERT_TRUE(res.ok());
    Kernel k = Kernel::fromProgram(res.program);
    EXPECT_EQ(k.program().size(), 2u);
}

TEST(GpuConfig, MakeBuildsChips)
{
    GpuConfig one =
        GpuConfig::make(pipeline::PipelineMode::SBISWI, 1);
    EXPECT_EQ(one.num_sms, 1u);
    EXPECT_FALSE(one.shared_backend);
    EXPECT_EQ(one.dram.bytes_per_cycle_x10,
              one.sm.mem.dram.bytes_per_cycle_x10);

    GpuConfig chip =
        GpuConfig::make(pipeline::PipelineMode::SBISWI, 8);
    EXPECT_EQ(chip.num_sms, 8u);
    EXPECT_TRUE(chip.shared_backend);
    // The chip channel saturates at 4x the per-SM bandwidth.
    EXPECT_EQ(chip.dram.bytes_per_cycle_x10,
              4 * chip.sm.mem.dram.bytes_per_cycle_x10);
}

TEST(Gpu, MultiSmProducesCorrectResults)
{
    // The same saxpy grid on 1 and on 4 SMs must compute the same
    // memory image: CTA distribution is a scheduling concern only.
    const unsigned blocks = 8, threads = 64;
    const unsigned n = blocks * threads;

    for (unsigned sms : {1u, 4u}) {
        Gpu gpu(GpuConfig::make(pipeline::PipelineMode::SBISWI,
                                sms));
        for (unsigned i = 0; i < n; ++i) {
            gpu.memory().writeF32(0x1000 + Addr(i) * 4, float(i));
            gpu.memory().writeF32(0x2000 + Addr(i) * 4, 1.0f);
        }
        LaunchConfig lc;
        lc.grid_blocks = blocks;
        lc.block_threads = threads;
        SimStats st = gpu.launch(saxpyKernel(), lc);
        EXPECT_FALSE(st.timed_out);
        EXPECT_EQ(st.blocks_launched, u64(blocks));
        for (unsigned i = 0; i < n; ++i) {
            ASSERT_FLOAT_EQ(
                gpu.memory().readF32(0x2000 + Addr(i) * 4),
                2.0f * float(i) + 1.0f)
                << "sms=" << sms << " i=" << i;
        }
    }
}

TEST(Gpu, MultiSmLaunchIsDeterministic)
{
    auto run = [] {
        Gpu gpu(GpuConfig::make(pipeline::PipelineMode::SBI, 4));
        for (unsigned i = 0; i < 512; ++i) {
            gpu.memory().writeF32(0x1000 + Addr(i) * 4, float(i));
            gpu.memory().writeF32(0x2000 + Addr(i) * 4, 1.0f);
        }
        LaunchConfig lc;
        lc.grid_blocks = 8;
        lc.block_threads = 64;
        return gpu.launch(saxpyKernel(), lc);
    };
    SimStats a = run();
    SimStats b = run();
    EXPECT_EQ(a, b); // field-wise, including the per-SM vector
}

TEST(Gpu, PerSmStatsSumToChipAggregate)
{
    Gpu gpu(GpuConfig::make(pipeline::PipelineMode::SBISWI, 4));
    for (unsigned i = 0; i < 512; ++i) {
        gpu.memory().writeF32(0x1000 + Addr(i) * 4, float(i));
        gpu.memory().writeF32(0x2000 + Addr(i) * 4, 1.0f);
    }
    LaunchConfig lc;
    lc.grid_blocks = 8;
    lc.block_threads = 64;
    SimStats st = gpu.launch(saxpyKernel(), lc);

    EXPECT_EQ(st.num_sms, 4u);
    ASSERT_EQ(st.per_sm.size(), 4u);

    u64 insts = 0, tinsts = 0, loads = 0, stores = 0, blocks = 0,
        threads = 0;
    Cycle max_cycles = 0;
    unsigned active_sms = 0;
    for (const SimStats &s : st.per_sm) {
        insts += s.instructions;
        tinsts += s.thread_instructions;
        loads += s.load_transactions;
        stores += s.store_transactions;
        blocks += s.blocks_launched;
        threads += s.threads_launched;
        max_cycles = std::max(max_cycles, s.cycles);
        active_sms += s.blocks_launched > 0;
        // Shared-backend counters are chip-level only.
        EXPECT_EQ(s.dram_transactions, 0u);
        EXPECT_EQ(s.l2_hits + s.l2_misses, 0u);
        EXPECT_TRUE(s.per_sm.empty());
    }
    EXPECT_EQ(st.instructions, insts);
    EXPECT_EQ(st.thread_instructions, tinsts);
    EXPECT_EQ(st.load_transactions, loads);
    EXPECT_EQ(st.store_transactions, stores);
    EXPECT_EQ(st.blocks_launched, blocks);
    EXPECT_EQ(st.threads_launched, threads);
    EXPECT_EQ(st.cycles, max_cycles);

    // 8 CTAs on 4 SMs, round-robin dispatch: every SM got work.
    EXPECT_EQ(active_sms, 4u);
    // The chip really used its shared backend.
    EXPECT_GT(st.l2_hits + st.l2_misses, 0u);
    EXPECT_GT(st.dram_transactions, 0u);
}

TEST(Gpu, ChipInventoryAddsSharedL2)
{
    using pipeline::PipelineMode;
    u64 one = inventoryTotalBits(PipelineMode::SBISWI);
    std::vector<StorageItem> chip =
        chipInventory(PipelineMode::SBISWI, 4);
    u64 total = chipInventoryTotalBits(PipelineMode::SBISWI, 4);
    EXPECT_GT(total, 4 * one); // 4 SMs + the L2 tag array
    EXPECT_EQ(chip.back().component, "Shared L2 tags");
    // Single-SM chips are exactly Table 3.
    EXPECT_EQ(chipInventoryTotalBits(PipelineMode::SBISWI, 1), one);
}

TEST(Gpu, AssembledKernelRuns)
{
    const char *src = R"(
.kernel store_tid
    s2r r0, %gtid
    shl r1, r0, #2
    iadd r1, r1, #0x4000
    st [r1+0], r0
    exit
)";
    auto res = isa::assemble(src);
    ASSERT_TRUE(res.ok()) << res.error;
    Kernel k = Kernel::compile(res.program);
    Gpu gpu(
        pipeline::SMConfig::make(pipeline::PipelineMode::SBISWI));
    LaunchConfig lc;
    lc.grid_blocks = 2;
    lc.block_threads = 128;
    gpu.launch(k, lc);
    for (u32 t = 0; t < 256; ++t)
        ASSERT_EQ(gpu.memory().read32(0x4000 + Addr(t) * 4), t);
}

} // namespace
} // namespace siwi::core
