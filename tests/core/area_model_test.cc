/**
 * @file
 * Area-model calibration tests against the paper's Table 4.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/area_model.hh"

namespace siwi::core {
namespace {

using pipeline::PipelineMode;

double
componentArea(const AreaReport &r, const std::string &name)
{
    for (const AreaItem &it : r.items) {
        if (it.component == name)
            return it.area_kum2;
    }
    ADD_FAILURE() << "missing " << name;
    return 0.0;
}

/** Paper Table 4 values (x1000 um^2). */
struct PaperColumn
{
    PipelineMode mode;
    double rf, sb, sched, hct, cct, ib, total, overhead;
};

const PaperColumn paper[] = {
    {PipelineMode::Baseline, 0, 87.6, 0, 66.8, 584.4, 52.8, 791.6,
     0},
    {PipelineMode::SBI, 570, 65.6, 0, 88.8, 480.8, 52.8, 1258,
     466.4},
    {PipelineMode::SWI, 570, 87.6, 27.4, 43.8, 480.8, 33.4, 1243,
     451.4},
    {PipelineMode::SBISWI, 570, 131.2, 27.4, 88.8, 480.8, 67.4,
     1365.6, 574},
};

class Table4 : public ::testing::TestWithParam<PaperColumn>
{
};

TEST_P(Table4, ComponentsWithinOnePercent)
{
    AreaModel model;
    AreaReport r = model.report(GetParam().mode);
    auto close = [](double got, double want) {
        if (want == 0.0)
            return got == 0.0;
        return std::fabs(got - want) / want < 0.011;
    };
    EXPECT_TRUE(close(componentArea(r, "RF"), GetParam().rf));
    EXPECT_TRUE(close(componentArea(r, "Scoreboard"),
                      GetParam().sb))
        << componentArea(r, "Scoreboard") << " vs " << GetParam().sb;
    EXPECT_TRUE(close(componentArea(r, "Scheduler"),
                      GetParam().sched));
    EXPECT_TRUE(close(componentArea(r, "HCT"), GetParam().hct))
        << componentArea(r, "HCT") << " vs " << GetParam().hct;
    EXPECT_TRUE(close(componentArea(r, "CCT"), GetParam().cct))
        << componentArea(r, "CCT") << " vs " << GetParam().cct;
    EXPECT_TRUE(close(componentArea(r, "Insn. buffer"),
                      GetParam().ib))
        << componentArea(r, "Insn. buffer") << " vs "
        << GetParam().ib;
    EXPECT_TRUE(close(r.total_kum2, GetParam().total))
        << r.total_kum2 << " vs " << GetParam().total;
}

INSTANTIATE_TEST_SUITE_P(
    Columns, Table4, ::testing::ValuesIn(paper),
    [](const ::testing::TestParamInfo<PaperColumn> &info) {
        return std::string(pipelineModeName(info.param.mode)) ==
                       "SBI+SWI"
                   ? "SBISWI"
                   : pipelineModeName(info.param.mode);
    });

TEST(AreaModel, OverheadPercentagesMatchPaper)
{
    // Paper 5.2: "the respective area overheads of SBI, SWI and
    // both are 3.0%, 2.9% and 3.7%".
    AreaModel model;
    EXPECT_NEAR(model.report(PipelineMode::SBI).overhead_percent,
                3.0, 0.1);
    EXPECT_NEAR(model.report(PipelineMode::SWI).overhead_percent,
                2.9, 0.1);
    EXPECT_NEAR(model.report(PipelineMode::SBISWI).overhead_percent,
                3.7, 0.1);
}

TEST(AreaModel, BaselineHasNoOverhead)
{
    AreaModel model;
    AreaReport r = model.report(PipelineMode::Baseline);
    EXPECT_EQ(r.overhead_kum2, 0.0);
    EXPECT_EQ(r.overhead_percent, 0.0);
}

TEST(AreaModel, FormattedTableComplete)
{
    AreaModel model;
    std::string t = model.formatTable();
    EXPECT_NE(t.find("Scoreboard"), std::string::npos);
    EXPECT_NE(t.find("Overhead"), std::string::npos);
    EXPECT_NE(t.find("15.6mm2"), std::string::npos);
}

TEST(AreaModel, ScalesWithGeometry)
{
    // Halving the thread count must shrink storage-driven area.
    InventoryParams small;
    small.threads = 768;
    AreaModel big, little(small);
    EXPECT_LT(
        componentArea(little.report(PipelineMode::SBI),
                      "Scoreboard"),
        componentArea(big.report(PipelineMode::SBI), "Scoreboard"));
}

} // namespace
} // namespace siwi::core
