/**
 * @file
 * Tests for the front-end seams: factory dispatch, stack vs.
 * interweave front-end parity on straight-line code, and
 * policy-driven schedule changes at the SM level.
 */

#include <gtest/gtest.h>

#include <map>

#include "cfg/compiler.hh"
#include "common/log.hh"
#include "frontend/front_end.hh"
#include "isa/builder.hh"
#include "mem/memory_image.hh"
#include "pipeline/sm.hh"
#include "workloads/workload.hh"

using namespace siwi;
using namespace siwi::pipeline;

namespace {

using isa::Imm;
using isa::KernelBuilder;
using isa::Reg;
using isa::SpecialReg;

isa::Program
compiled(isa::Program raw)
{
    cfg::CompileOptions opts;
    opts.layout = cfg::LayoutMode::ThreadFrontier;
    return cfg::compileKernel(raw, opts).program;
}

/** Straight-line independent-MAD stream (no branches). */
isa::Program
madStream(unsigned n)
{
    KernelBuilder b("mads");
    std::vector<Reg> regs;
    for (int i = 0; i < 8; ++i)
        regs.push_back(b.reg());
    for (int i = 0; i < 8; ++i)
        b.movi(regs[size_t(i)], i + 1);
    for (unsigned i = 0; i < n; ++i)
        b.iadd(regs[i % 4], regs[4 + i % 4], regs[4 + (i + 1) % 4]);
    return compiled(b.build());
}

core::SimStats
runConfig(const SMConfig &cfg, const isa::Program &prog,
          unsigned blocks, unsigned threads)
{
    mem::MemoryImage mem;
    SM sm(cfg, mem);
    sm.launch(prog, blocks, threads);
    core::SimStats st = sm.run(2'000'000);
    EXPECT_FALSE(st.timed_out);
    return st;
}

TEST(FrontEndFactory, DispatchesOnConfiguration)
{
    mem::MemoryImage mem;
    {
        SM sm(SMConfig::make(PipelineMode::Baseline), mem);
        EXPECT_NE(dynamic_cast<const frontend::StackFrontEnd *>(
                      &sm.frontEnd()),
                  nullptr);
    }
    for (PipelineMode m : {PipelineMode::Warp64, PipelineMode::SBI,
                           PipelineMode::SWI,
                           PipelineMode::SBISWI}) {
        SM sm(SMConfig::make(m), mem);
        EXPECT_NE(
            dynamic_cast<const frontend::InterweaveFrontEnd *>(
                &sm.frontEnd()),
            nullptr)
            << pipelineModeName(m);
    }
}

TEST(FrontEndParity, StackAndInterweaveMatchOnStraightLine)
{
    // Same machine geometry, only the divergence substrate (and
    // with it the front-end class) differs. Straight-line code
    // never diverges, so both front-ends must schedule the same
    // instruction stream: identical issue counts and work.
    SMConfig tf = SMConfig::make(PipelineMode::Warp64);

    SMConfig stack = tf;
    stack.reconv = ReconvMode::Stack;
    stack.split_on_memory_divergence = false; // stack cannot split
    stack.validate();

    isa::Program prog = madStream(60);
    core::SimStats a = runConfig(stack, prog, 4, 512);
    core::SimStats b = runConfig(tf, prog, 4, 512);

    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.thread_instructions, b.thread_instructions);
    EXPECT_EQ(a.fetches, b.fetches);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.branch_divergences, 0u);
    EXPECT_EQ(b.warp_splits, 0u);
}

TEST(FrontEndPolicy, PoliciesAreDeterministic)
{
    isa::Program prog = compiled([] {
        KernelBuilder b("t");
        Reg r = b.reg();
        b.movi(r, 1);
        return b.build();
    }());
    for (frontend::SchedPolicyKind k :
         frontend::allSchedPolicies()) {
        SMConfig cfg = SMConfig::make(PipelineMode::SBISWI);
        cfg.sched_policy = k;
        core::SimStats once = runConfig(cfg, prog, 2, 128);
        core::SimStats twice = runConfig(cfg, prog, 2, 128);
        EXPECT_EQ(once, twice)
            << frontend::schedPolicyName(k);
    }
}

TEST(FrontEndPolicy, PoliciesProduceDistinctSchedules)
{
    // A real divergent workload with enough concurrent warps that
    // the primary ordering actually changes the schedule (cycle
    // count) for at least one non-oldest policy, while every
    // policy still verifies.
    setLogQuiet(true);
    const workloads::Workload *wl =
        workloads::findWorkload("Histogram");
    ASSERT_NE(wl, nullptr);

    SMConfig base = SMConfig::make(PipelineMode::Baseline);
    std::map<frontend::SchedPolicyKind, core::SimStats> stats;
    for (frontend::SchedPolicyKind k :
         frontend::allSchedPolicies()) {
        SMConfig cfg = base;
        cfg.sched_policy = k;
        workloads::RunResult res = workloads::runWorkload(
            *wl, cfg, workloads::SizeClass::Tiny);
        EXPECT_TRUE(res.verified)
            << frontend::schedPolicyName(k) << ": "
            << res.verify_msg;
        stats[k] = res.stats;
    }
    const core::SimStats &oldest =
        stats[frontend::SchedPolicyKind::OldestFirst];
    unsigned distinct = 0;
    for (const auto &[k, st] : stats) {
        // Same work under every ordering...
        EXPECT_EQ(st.thread_instructions,
                  oldest.thread_instructions)
            << frontend::schedPolicyName(k);
        if (st.cycles != oldest.cycles)
            ++distinct;
    }
    // ...but not the same schedule.
    EXPECT_GE(distinct, 1u);
}

} // namespace
