/**
 * @file
 * Unit tests for the SchedPolicy strategies, against a scripted
 * mock FrontEndHost: selection order, cursor/greedy state, and
 * the registry.
 */

#include <gtest/gtest.h>

#include <map>
#include <utility>

#include "frontend/front_end.hh"
#include "frontend/registry.hh"
#include "frontend/sched_policy.hh"
#include "pipeline/config.hh"

using namespace siwi;
using namespace siwi::frontend;

namespace {

/**
 * A host whose candidate readiness / age / PC is a scripted
 * table, so policy selection can be tested in isolation from the
 * pipeline.
 */
class MockHost final : public FrontEndHost
{
  public:
    struct Slot
    {
        bool ready = false;
        u64 seq = 0;
        Pc pc = 0;
    };

    MockHost()
    {
        cfg_ = pipeline::SMConfig::make(
            pipeline::PipelineMode::Baseline);
    }

    Slot &slot(WarpId w, unsigned s) { return slots_[{w, s}]; }

    const pipeline::SMConfig &config() const override
    {
        return cfg_;
    }
    Cycle now() const override { return 0; }
    unsigned numWarps() const override { return num_warps_; }
    void setNumWarps(unsigned n) { num_warps_ = n; }

    CtxView ctxView(WarpId, unsigned) const override
    {
        return CtxView{};
    }

    const pipeline::IBufEntry *entryFor(
        WarpId w, unsigned s) const override
    {
        auto it = slots_.find({w, s});
        if (it == slots_.end() || !it->second.ready)
            return nullptr;
        entry_.seq = it->second.seq;
        entry_.pc = it->second.pc;
        return &entry_;
    }
    pipeline::IBufEntry *entryFor(WarpId w, unsigned s) override
    {
        return const_cast<pipeline::IBufEntry *>(
            std::as_const(*this).entryFor(w, s));
    }
    pipeline::IBufEntry *findCtx(WarpId, u32) override
    {
        return nullptr;
    }

    bool ready(WarpId w, unsigned s, bool) const override
    {
        auto it = slots_.find({w, s});
        return it != slots_.end() && it->second.ready;
    }

    // The mock never parks warps: every warp is always awake.
    const pipeline::WarpSet &awakeWarps() const override
    {
        awake_.reset(num_warps_);
        for (WarpId w = 0; w < num_warps_; ++w)
            awake_.insert(w);
        return awake_;
    }

    pipeline::ExecGroup *freeGroup(isa::UnitClass) override
    {
        return nullptr;
    }
    bool issueCand(WarpId, unsigned, bool, PrimaryIssueInfo *,
                   bool) override
    {
        return false;
    }
    const PrimaryIssueInfo &lastPrimary() const override
    {
        return last_;
    }
    void clearLastPrimary() override
    {
        last_ = PrimaryIssueInfo{};
    }
    core::SimStats &stats() override { return stats_; }

  private:
    pipeline::SMConfig cfg_;
    unsigned num_warps_ = 4;
    mutable pipeline::WarpSet awake_;
    std::map<std::pair<WarpId, unsigned>, Slot> slots_;
    // entryFor returns a view of the scripted slot through one
    // reusable entry (the policies only look at seq/pc).
    mutable pipeline::IBufEntry entry_;
    PrimaryIssueInfo last_;
    core::SimStats stats_;
};

std::vector<Cand>
domain(unsigned warps)
{
    std::vector<Cand> d;
    for (WarpId w = 0; w < warps; ++w)
        d.push_back({w, 0});
    return d;
}

TEST(SchedPolicyRegistry, NamesRoundTrip)
{
    for (SchedPolicyKind k : allSchedPolicies()) {
        SchedPolicyKind back;
        ASSERT_TRUE(parseSchedPolicy(schedPolicyName(k), &back));
        EXPECT_EQ(back, k);
    }
    SchedPolicyKind k;
    EXPECT_FALSE(parseSchedPolicy("nope", &k));
    EXPECT_STREQ(schedPolicyName(SchedPolicyKind::OldestFirst),
                 "oldest");
}

TEST(SchedPolicyRegistry, MachineAndPolicyTables)
{
    EXPECT_EQ(machineRegistry().size(), 5u);
    ASSERT_NE(findMachineEntry("SBI+SWI"), nullptr);
    EXPECT_EQ(findMachineEntry("SBI+SWI")->mode,
              pipeline::PipelineMode::SBISWI);
    EXPECT_EQ(findMachineEntry("nope"), nullptr);

    EXPECT_EQ(policyRegistry().size(), 4u);
    ASSERT_NE(findPolicyEntry("gto"), nullptr);
    EXPECT_EQ(findPolicyEntry("gto")->kind,
              SchedPolicyKind::GreedyThenOldest);
    EXPECT_EQ(findPolicyEntry("nope"), nullptr);
}

TEST(SchedPolicy, OldestFirstPicksMinimumSeq)
{
    MockHost host;
    auto p = makeSchedPolicy(SchedPolicyKind::OldestFirst, 4);
    host.slot(1, 0) = {true, 30, 5};
    host.slot(2, 0) = {true, 10, 9};
    host.slot(3, 0) = {true, 20, 1};
    auto c = p->select(host, domain(4), true);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->w, 2u);

    host.slot(2, 0).ready = false;
    c = p->select(host, domain(4), true);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->w, 3u);

    for (WarpId w = 0; w < 4; ++w)
        host.slot(w, 0).ready = false;
    EXPECT_FALSE(p->select(host, domain(4), true).has_value());
}

TEST(SchedPolicy, RoundRobinAdvancesPastIssuedWarp)
{
    MockHost host;
    auto p = makeSchedPolicy(SchedPolicyKind::RoundRobin, 4);
    for (WarpId w = 0; w < 4; ++w)
        host.slot(w, 0) = {true, u64(100 - w), 0}; // ages decorrelated

    auto c = p->select(host, domain(4), true);
    ASSERT_TRUE(c);
    EXPECT_EQ(c->w, 0u); // cursor starts at warp 0
    p->notifyIssued(*c);

    c = p->select(host, domain(4), true);
    ASSERT_TRUE(c);
    EXPECT_EQ(c->w, 1u); // cursor moved past warp 0
    p->notifyIssued(*c);

    host.slot(2, 0).ready = false; // loose: skip stalled warp
    c = p->select(host, domain(4), true);
    ASSERT_TRUE(c);
    EXPECT_EQ(c->w, 3u);
    p->notifyIssued(*c);

    c = p->select(host, domain(4), true); // wraps to warp 0
    ASSERT_TRUE(c);
    EXPECT_EQ(c->w, 0u);
}

TEST(SchedPolicy, GtoSticksWithLastWarpThenOldest)
{
    MockHost host;
    auto p = makeSchedPolicy(SchedPolicyKind::GreedyThenOldest, 4);
    host.slot(0, 0) = {true, 50, 0};
    host.slot(2, 0) = {true, 10, 0};

    // No last warp yet: oldest (warp 2) wins.
    auto c = p->select(host, domain(4), true);
    ASSERT_TRUE(c);
    EXPECT_EQ(c->w, 2u);
    p->notifyIssued(*c);

    // Warp 2 still ready: greedy keeps it even when another warp
    // holds the older instruction now.
    host.slot(0, 0).seq = 1;
    c = p->select(host, domain(4), true);
    ASSERT_TRUE(c);
    EXPECT_EQ(c->w, 2u);
    p->notifyIssued(*c);

    // Last warp dries up: fall back to oldest.
    host.slot(2, 0).ready = false;
    c = p->select(host, domain(4), true);
    ASSERT_TRUE(c);
    EXPECT_EQ(c->w, 0u);
}

TEST(SchedPolicy, MinPcPrefersTrailingPcWithAgeTieBreak)
{
    MockHost host;
    auto p = makeSchedPolicy(SchedPolicyKind::MinPc, 4);
    host.slot(0, 0) = {true, 5, 40};
    host.slot(1, 0) = {true, 9, 12};
    host.slot(2, 0) = {true, 3, 12};
    host.slot(3, 0) = {true, 1, 90};

    auto c = p->select(host, domain(4), true);
    ASSERT_TRUE(c);
    EXPECT_EQ(c->w, 2u); // pc 12, and older than warp 1
}

} // namespace
