/**
 * @file
 * Tests for the parallel experiment runner: sweep expansion,
 * filtering, suite definitions, and — the load-bearing property —
 * thread-count independence of the results.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "runner/experiment_runner.hh"
#include "runner/suites.hh"
#include "runner/table.hh"

using namespace siwi;
using namespace siwi::runner;
using workloads::SizeClass;

namespace {

/** A 2-machine x 2-workload grid small enough for unit tests. */
SweepSpec
tinyGrid()
{
    SweepSpec s = fig7Sweep(false, SizeClass::Tiny);
    s.name = "grid";
    s.filterMachines({"Baseline", "SBI"});
    s.filterWorkloads({"BFS", "Histogram"});
    return s;
}

TEST(Sweep, ExpandsInCanonicalOrder)
{
    SweepSpec s = tinyGrid();
    ASSERT_EQ(s.cellCount(), 4u);
    std::vector<CellSpec> cells = expandCells({s});
    ASSERT_EQ(cells.size(), 4u);
    // Workload-major, machine-minor.
    EXPECT_EQ(cells[0].wl, 0u);
    EXPECT_EQ(cells[0].machine, 0u);
    EXPECT_EQ(cells[1].wl, 0u);
    EXPECT_EQ(cells[1].machine, 1u);
    EXPECT_EQ(cells[2].wl, 1u);
    EXPECT_EQ(cells[2].machine, 0u);
}

TEST(Sweep, FiltersDropUnknownNames)
{
    SweepSpec s = fig7Sweep(false, SizeClass::Tiny);
    size_t all = s.machines.size();
    s.filterMachines({"Baseline", "NoSuchMachine"});
    EXPECT_EQ(s.machines.size(), 1u);
    s = fig7Sweep(false, SizeClass::Tiny);
    s.filterMachines({});
    EXPECT_EQ(s.machines.size(), all); // empty filter keeps all
}

TEST(Suites, FigureAndSuiteRegistry)
{
    for (const std::string &f : knownFigures()) {
        std::vector<SweepSpec> sweeps =
            figureSweeps(f, SizeClass::Tiny);
        EXPECT_EQ(sweeps.size(), 2u) << f;
        for (const SweepSpec &s : sweeps) {
            EXPECT_GT(s.machines.size(), 0u) << f;
            EXPECT_GT(s.wls.size(), 0u) << f;
        }
    }
    EXPECT_TRUE(figureSweeps("nope", SizeClass::Tiny).empty());
    for (const std::string &s : knownSuites())
        EXPECT_FALSE(suiteSweeps(s).empty()) << s;
    EXPECT_TRUE(suiteSweeps("nope").empty());
}

TEST(Suites, FastSuiteIsTinyFig7)
{
    std::vector<SweepSpec> sweeps = suiteSweeps("fast");
    ASSERT_EQ(sweeps.size(), 2u);
    for (const SweepSpec &s : sweeps) {
        EXPECT_EQ(s.size, SizeClass::Tiny);
        EXPECT_EQ(s.machines.size(), 5u);
    }
}

TEST(Runner, RunCellMatchesRunWorkload)
{
    SweepSpec s = tinyGrid();
    CellResult c = runCell(s, 1, 0);
    EXPECT_EQ(c.machine, "SBI");
    EXPECT_EQ(c.workload, "BFS");
    EXPECT_EQ(c.size, "tiny");
    EXPECT_TRUE(c.verified) << c.verify_msg;
    workloads::RunResult ref = workloads::runWorkload(
        *s.wls[0], s.machines[1].config, s.size);
    EXPECT_EQ(c.stats, ref.stats);
    EXPECT_DOUBLE_EQ(c.ipc, ref.stats.ipc());
}

TEST(Runner, ResultsIdenticalAcrossThreadCounts)
{
    setLogQuiet(true);
    const std::vector<SweepSpec> sweeps = {tinyGrid()};

    RunOptions serial;
    serial.jobs = 1;
    serial.suite_label = "determinism";
    Results a = runSweeps(sweeps, serial);

    RunOptions parallel = serial;
    parallel.jobs = 2;
    Results b = runSweeps(sweeps, parallel);

    ASSERT_EQ(a.cells.size(), 4u);
    EXPECT_EQ(a, b);
    // Including the serialized bytes the CI gate diffs.
    EXPECT_EQ(a.toJsonText(), b.toJsonText());
    EXPECT_EQ(a.toCsv(), b.toCsv());

    RunOptions wide = serial;
    wide.jobs = 8; // more threads than cells
    EXPECT_EQ(runSweeps(sweeps, wide), a);
}

TEST(Runner, CellOrderIndependentOfJobCount)
{
    setLogQuiet(true);
    const std::vector<SweepSpec> sweeps = {tinyGrid()};
    RunOptions opts;
    opts.jobs = 3;
    Results r = runSweeps(sweeps, opts);
    ASSERT_EQ(r.cells.size(), 4u);
    EXPECT_EQ(r.cells[0].machine, "Baseline");
    EXPECT_EQ(r.cells[0].workload, "BFS");
    EXPECT_EQ(r.cells[1].machine, "SBI");
    EXPECT_EQ(r.cells[1].workload, "BFS");
    EXPECT_EQ(r.cells[2].machine, "Baseline");
    EXPECT_EQ(r.cells[2].workload, "Histogram");
}

TEST(Table, FormatsSweepWithGmeanRow)
{
    setLogQuiet(true);
    RunOptions opts;
    opts.jobs = 2;
    Results r = runSweeps({tinyGrid()}, opts);
    std::string table = formatSweepTable(r, "grid");
    EXPECT_NE(table.find("Baseline"), std::string::npos);
    EXPECT_NE(table.find("SBI"), std::string::npos);
    EXPECT_NE(table.find("BFS"), std::string::npos);
    EXPECT_NE(table.find("Gmean"), std::string::npos);
}

} // namespace
