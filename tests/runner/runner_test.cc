/**
 * @file
 * Tests for the parallel experiment runner: sweep expansion,
 * filtering, suite definitions, and — the load-bearing property —
 * thread-count independence of the results.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "runner/experiment_runner.hh"
#include "runner/suites.hh"
#include "runner/table.hh"

using namespace siwi;
using namespace siwi::runner;
using workloads::SizeClass;

namespace {

/** A 2-machine x 2-workload grid small enough for unit tests. */
SweepSpec
tinyGrid()
{
    SweepSpec s = fig7Sweep(false, SizeClass::Tiny);
    s.name = "grid";
    s.filterMachines({"Baseline", "SBI"});
    s.filterWorkloads({"BFS", "Histogram"});
    return s;
}

TEST(Sweep, ExpandsInCanonicalOrder)
{
    SweepSpec s = tinyGrid();
    ASSERT_EQ(s.cellCount(), 4u);
    std::vector<CellSpec> cells = expandCells({s});
    ASSERT_EQ(cells.size(), 4u);
    // Workload-major, machine-minor.
    EXPECT_EQ(cells[0].wl, 0u);
    EXPECT_EQ(cells[0].machine, 0u);
    EXPECT_EQ(cells[1].wl, 0u);
    EXPECT_EQ(cells[1].machine, 1u);
    EXPECT_EQ(cells[2].wl, 1u);
    EXPECT_EQ(cells[2].machine, 0u);
}

TEST(Sweep, FiltersDropUnknownNames)
{
    SweepSpec s = fig7Sweep(false, SizeClass::Tiny);
    size_t all = s.machines.size();
    s.filterMachines({"Baseline", "NoSuchMachine"});
    EXPECT_EQ(s.machines.size(), 1u);
    s = fig7Sweep(false, SizeClass::Tiny);
    s.filterMachines({});
    EXPECT_EQ(s.machines.size(), all); // empty filter keeps all
}

TEST(Suites, FigureAndSuiteRegistry)
{
    for (const std::string &f : knownFigures()) {
        std::vector<SweepSpec> sweeps =
            figureSweeps(f, SizeClass::Tiny);
        // Paper figures come as a regular/irregular panel pair;
        // the scaling study pairs the legacy single-pipe chip
        // with the banked-memory chip over one mixed panel.
        EXPECT_EQ(sweeps.size(), 2u) << f;
        for (const SweepSpec &s : sweeps) {
            EXPECT_GT(s.machines.size(), 0u) << f;
            EXPECT_GT(s.wls.size(), 0u) << f;
            EXPECT_GT(s.sms.size(), 0u) << f;
        }
    }
    EXPECT_TRUE(figureSweeps("nope", SizeClass::Tiny).empty());
    for (const std::string &s : knownSuites())
        EXPECT_FALSE(suiteSweeps(s).empty()) << s;
    EXPECT_TRUE(suiteSweeps("nope").empty());
}

TEST(Suites, FastSuiteIsTinyFig7PlusMultiSmSmoke)
{
    std::vector<SweepSpec> sweeps = suiteSweeps("fast");
    ASSERT_EQ(sweeps.size(), 3u);
    for (size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(sweeps[i].size, SizeClass::Tiny);
        EXPECT_EQ(sweeps[i].machines.size(), 5u);
        EXPECT_EQ(sweeps[i].sms, std::vector<unsigned>{1u});
    }
    // The regression gate also watches the shared-L2 chip path;
    // Full size, because Tiny grids are a single CTA and would
    // leave every SM but one idle.
    const SweepSpec &smoke = sweeps[2];
    EXPECT_EQ(smoke.name, "scaling_smoke");
    EXPECT_EQ(smoke.size, SizeClass::Full);
    EXPECT_EQ(smoke.sms, (std::vector<unsigned>{2u, 4u}));
}

TEST(Suites, ScalingSweepCoversTheAcceptanceGrid)
{
    SweepSpec s = scalingSweep(SizeClass::Tiny);
    EXPECT_EQ(s.sms, (std::vector<unsigned>{1u, 2u, 4u, 8u}));
    EXPECT_GE(s.wls.size(), 4u);
    EXPECT_EQ(s.machines.size(), 2u);

    SweepSpec b = scalingBankedSweep(SizeClass::Tiny);
    EXPECT_EQ(b.sms, (std::vector<unsigned>{1u, 2u, 4u, 8u, 16u,
                                            32u, 64u}));
    EXPECT_EQ(b.machines.size(), 2u);
    for (const MachineSpec &m : b.machines) {
        EXPECT_FALSE(m.chip_sets.empty()) << m.name;
        // The overrides must survive resolution onto the chip.
        core::GpuConfig chip =
            resolvedCellConfig(b, 0, b.sms.size() - 1, 0);
        EXPECT_EQ(chip.l2.slices, 8u);
        EXPECT_EQ(chip.dram.channels, 4u);
        EXPECT_EQ(chip.num_sms, 64u);
        // Aggregate DRAM bandwidth is pinned per channel, exempt
        // from the legacy min(num_sms, 4) scaling.
        EXPECT_EQ(chip.dram.bytes_per_cycle_x10, 100u);
        EXPECT_TRUE(chip.checkInvariants().empty())
            << chip.checkInvariants();
    }
}

TEST(Runner, RunCellMatchesRunWorkload)
{
    SweepSpec s = tinyGrid();
    CellResult c = runCell(s, 1, 0);
    EXPECT_EQ(c.machine, "SBI");
    EXPECT_EQ(c.workload, "BFS");
    EXPECT_EQ(c.size, "tiny");
    EXPECT_TRUE(c.verified) << c.verify_msg;
    workloads::RunResult ref = workloads::runWorkload(
        *s.wls[0], s.machines[1].config, s.size);
    EXPECT_EQ(c.stats, ref.stats);
    EXPECT_DOUBLE_EQ(c.ipc, ref.stats.ipc());
}

TEST(Runner, ResultsIdenticalAcrossThreadCounts)
{
    setLogQuiet(true);
    const std::vector<SweepSpec> sweeps = {tinyGrid()};

    RunOptions serial;
    serial.jobs = 1;
    serial.suite_label = "determinism";
    Results a = runSweeps(sweeps, serial);

    RunOptions parallel = serial;
    parallel.jobs = 2;
    Results b = runSweeps(sweeps, parallel);

    ASSERT_EQ(a.cells.size(), 4u);
    EXPECT_EQ(a, b);
    // Including the serialized bytes the CI gate diffs.
    EXPECT_EQ(a.toJsonText(), b.toJsonText());
    EXPECT_EQ(a.toCsv(), b.toCsv());

    RunOptions wide = serial;
    wide.jobs = 8; // more threads than cells
    EXPECT_EQ(runSweeps(sweeps, wide), a);
}

TEST(Sweep, SmsAxisExpandsCells)
{
    SweepSpec s = tinyGrid();
    s.sms = {1, 2};
    EXPECT_EQ(s.cellCount(), 8u);
    std::vector<CellSpec> cells = expandCells({s});
    ASSERT_EQ(cells.size(), 8u);
    // Workload-major, then SM count, then machine.
    EXPECT_EQ(cells[0].sms, 0u);
    EXPECT_EQ(cells[1].sms, 0u);
    EXPECT_EQ(cells[2].sms, 1u);
    EXPECT_EQ(cells[2].machine, 0u);
    EXPECT_EQ(cells[2].wl, 0u);
    EXPECT_EQ(cells[4].wl, 1u);
}

TEST(Runner, MultiSmCellCarriesLabelAndCount)
{
    setLogQuiet(true);
    SweepSpec s = tinyGrid();
    s.sms = {1, 2};
    CellResult c = runCell(s, 1, 0, 1);
    EXPECT_EQ(c.machine, "SBI@2sm");
    EXPECT_EQ(c.num_sms, 2u);
    EXPECT_TRUE(c.verified) << c.verify_msg;
    EXPECT_EQ(c.stats.num_sms, 2u);
    ASSERT_EQ(c.stats.per_sm.size(), 2u);

    // Single-SM cells keep the plain label (baseline continuity).
    CellResult one = runCell(s, 1, 0, 0);
    EXPECT_EQ(one.machine, "SBI");
    EXPECT_EQ(one.num_sms, 1u);
    EXPECT_TRUE(one.stats.per_sm.empty());
}

TEST(Runner, MultiSmSweepIdenticalAcrossThreadCounts)
{
    setLogQuiet(true);
    SweepSpec grid = tinyGrid();
    grid.sms = {1, 2, 4};
    const std::vector<SweepSpec> sweeps = {grid};

    RunOptions serial;
    serial.jobs = 1;
    serial.suite_label = "multi-sm determinism";
    Results a = runSweeps(sweeps, serial);

    RunOptions parallel = serial;
    parallel.jobs = 8;
    Results b = runSweeps(sweeps, parallel);

    ASSERT_EQ(a.cells.size(), 12u);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.toJsonText(), b.toJsonText());
    for (const CellResult &c : a.cells)
        EXPECT_TRUE(c.verified)
            << c.machine << " " << c.workload << ": "
            << c.verify_msg;
}

TEST(Runner, BankedChipIdenticalAcrossThreadCounts)
{
    setLogQuiet(true);
    // 16-SM cells over the banked chip topology (8 L2 slices, 4
    // DRAM channels, contended NoC) — the configuration class the
    // scaling CI smoke runs. Identity across worker-thread counts
    // gates that the lockstep SM stepping order (port order = SM
    // index order) and the passive banked backend leave cells
    // pure: no shared state, no run-order sensitivity.
    SweepSpec s = scalingBankedSweep(SizeClass::Full);
    s.name = "banked_grid";
    s.filterWorkloads({"MatrixMul", "ConvolutionSeparable"});
    s.sms = {4, 16};
    const std::vector<SweepSpec> sweeps = {s};

    RunOptions serial;
    serial.jobs = 1;
    serial.suite_label = "banked determinism";
    Results a = runSweeps(sweeps, serial);

    RunOptions parallel = serial;
    parallel.jobs = 8;
    Results b = runSweeps(sweeps, parallel);

    ASSERT_EQ(a.cells.size(), 8u);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.toJsonText(), b.toJsonText());
    for (const CellResult &c : a.cells) {
        EXPECT_TRUE(c.verified)
            << c.machine << " " << c.workload << ": "
            << c.verify_msg;
        // Schema-v5 topology breakdowns, sized by the resolved
        // chip and summing to the chip-level scalars.
        ASSERT_EQ(c.stats.l2_slices.size(), 8u);
        ASSERT_EQ(c.stats.dram_channels.size(), 4u);
        ASSERT_EQ(c.stats.noc_ports.size(), size_t(c.num_sms));
        u64 hits = 0, misses = 0, tx = 0;
        for (const mem::L2SliceStats &sl : c.stats.l2_slices) {
            hits += sl.hits;
            misses += sl.misses;
        }
        for (const mem::DramStats &ch : c.stats.dram_channels)
            tx += ch.transactions;
        EXPECT_EQ(hits, c.stats.l2_hits);
        EXPECT_EQ(misses, c.stats.l2_misses);
        EXPECT_EQ(tx, c.stats.dram_transactions);
    }
}

TEST(Runner, CellOrderIndependentOfJobCount)
{
    setLogQuiet(true);
    const std::vector<SweepSpec> sweeps = {tinyGrid()};
    RunOptions opts;
    opts.jobs = 3;
    Results r = runSweeps(sweeps, opts);
    ASSERT_EQ(r.cells.size(), 4u);
    EXPECT_EQ(r.cells[0].machine, "Baseline");
    EXPECT_EQ(r.cells[0].workload, "BFS");
    EXPECT_EQ(r.cells[1].machine, "SBI");
    EXPECT_EQ(r.cells[1].workload, "BFS");
    EXPECT_EQ(r.cells[2].machine, "Baseline");
    EXPECT_EQ(r.cells[2].workload, "Histogram");
}

TEST(Sweep, PolicyAxisExpandsCells)
{
    SweepSpec s = tinyGrid();
    s.policies = {frontend::SchedPolicyKind::OldestFirst,
                  frontend::SchedPolicyKind::GreedyThenOldest};
    EXPECT_EQ(s.cellCount(), 8u);
    std::vector<CellSpec> cells = expandCells({s});
    ASSERT_EQ(cells.size(), 8u);
    // Workload-major, then policy, then machine.
    EXPECT_EQ(cells[0].policy, 0u);
    EXPECT_EQ(cells[1].policy, 0u);
    EXPECT_EQ(cells[2].policy, 1u);
    EXPECT_EQ(cells[2].machine, 0u);
    EXPECT_EQ(cells[2].wl, 0u);
    EXPECT_EQ(cells[4].wl, 1u);
}

TEST(Runner, PolicyCellCarriesLabelAndName)
{
    setLogQuiet(true);
    SweepSpec s = tinyGrid();
    s.policies = {frontend::SchedPolicyKind::OldestFirst,
                  frontend::SchedPolicyKind::RoundRobin};
    CellResult c = runCell(s, 1, 0, 0, 1);
    EXPECT_EQ(c.machine, "SBI/rr");
    EXPECT_EQ(c.policy, "rr");
    EXPECT_TRUE(c.verified) << c.verify_msg;

    // Oldest-first cells keep the plain label (baseline
    // continuity) but still record their policy.
    CellResult plain = runCell(s, 1, 0, 0, 0);
    EXPECT_EQ(plain.machine, "SBI");
    EXPECT_EQ(plain.policy, "oldest");
}

TEST(Runner, GoldenMachinePolicyGridDeterministic)
{
    // The golden-stats grid: one small workload under all five
    // paper machines x all four scheduling policies, identical
    // for any -j, all verified, with the oldest-first column
    // reproducing the plain fig7 cells bit-exactly.
    setLogQuiet(true);
    SweepSpec s = fig7Sweep(false, SizeClass::Tiny);
    s.name = "golden";
    s.filterWorkloads({"BFS"});
    s.policies.clear();
    for (frontend::SchedPolicyKind k :
         frontend::allSchedPolicies())
        s.policies.push_back(k);
    ASSERT_EQ(s.cellCount(), 20u);

    RunOptions serial;
    serial.jobs = 1;
    serial.suite_label = "golden";
    Results a = runSweeps({s}, serial);

    RunOptions parallel = serial;
    parallel.jobs = 4;
    Results b = runSweeps({s}, parallel);

    ASSERT_EQ(a.cells.size(), 20u);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.toJsonText(), b.toJsonText());
    EXPECT_EQ(a.toCsv(), b.toCsv());

    unsigned distinct_from_oldest = 0;
    for (const CellResult &c : a.cells) {
        EXPECT_TRUE(c.verified)
            << c.machine << ": " << c.verify_msg;
        EXPECT_FALSE(c.timed_out) << c.machine;
        if (c.policy == "oldest") {
            // Bit-identical to the plain fig7 cell.
            SweepSpec plain = fig7Sweep(false, SizeClass::Tiny);
            plain.filterWorkloads({"BFS"});
            size_t mi = 0;
            while (plain.machines[mi].name != c.machine)
                ++mi;
            CellResult ref = runCell(plain, mi, 0);
            EXPECT_EQ(c.stats, ref.stats) << c.machine;
        } else {
            const CellResult *oldest = a.find(
                "golden",
                c.machine.substr(0, c.machine.find('/')), "BFS");
            ASSERT_NE(oldest, nullptr) << c.machine;
            EXPECT_EQ(c.stats.threads_launched,
                      oldest->stats.threads_launched);
            if (c.stats.cycles != oldest->stats.cycles)
                ++distinct_from_oldest;
        }
    }
    // The policy axis must actually change schedules somewhere in
    // the grid, or it is not a real axis.
    EXPECT_GE(distinct_from_oldest, 3u);
}

TEST(Table, FormatsSweepWithGmeanRow)
{
    setLogQuiet(true);
    RunOptions opts;
    opts.jobs = 2;
    Results r = runSweeps({tinyGrid()}, opts);
    std::string table = formatSweepTable(r, "grid");
    EXPECT_NE(table.find("Baseline"), std::string::npos);
    EXPECT_NE(table.find("SBI"), std::string::npos);
    EXPECT_NE(table.find("BFS"), std::string::npos);
    EXPECT_NE(table.find("Gmean"), std::string::npos);
}

TEST(Table, TimedOutCellRendersToMarkerNotIpc)
{
    Results r;
    CellResult a;
    a.sweep = "s";
    a.machine = "M";
    a.workload = "A";
    a.verified = true;
    a.ipc = 5.0;
    CellResult b = a;
    b.workload = "B";
    b.timed_out = true;
    b.ipc = 3.33; // plausible-looking, must not be printed
    r.cells = {a, b};

    std::string table = formatSweepTable(r, "s");
    EXPECT_NE(table.find("T/O"), std::string::npos);
    EXPECT_EQ(table.find("3.33"), std::string::npos);
    EXPECT_NE(table.find("timed out"), std::string::npos);
}

} // namespace
