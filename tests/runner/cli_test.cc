/**
 * @file
 * Tests for the consumable argument list used by siwi-run and the
 * benches.
 */

#include <gtest/gtest.h>

#include "runner/cli.hh"

using namespace siwi::runner;

namespace {

ArgList
makeArgs(std::vector<std::string> argv)
{
    std::vector<char *> ptrs = {const_cast<char *>("prog")};
    for (std::string &a : argv)
        ptrs.push_back(a.data());
    return ArgList(int(ptrs.size()), ptrs.data());
}

TEST(ArgList, FlagsAndOptionsConsume)
{
    ArgList args = makeArgs({"--x", "--json", "out.json", "tail"});
    EXPECT_TRUE(args.flag("--x"));
    EXPECT_FALSE(args.flag("--x")); // consumed
    std::string v;
    ASSERT_TRUE(args.option("--json", &v));
    EXPECT_EQ(v, "out.json");
    EXPECT_EQ(args.remaining(),
              (std::vector<std::string>{"tail"}));
    EXPECT_TRUE(args.errors().empty());
}

TEST(ArgList, RepeatedOptionsCollect)
{
    ArgList args =
        makeArgs({"--m", "a", "--other", "--m", "b"});
    EXPECT_EQ(args.options("--m"),
              (std::vector<std::string>{"a", "b"}));
    EXPECT_TRUE(args.flag("--other"));
    EXPECT_TRUE(args.remaining().empty());
}

TEST(ArgList, MissingValueIsAnError)
{
    ArgList args = makeArgs({"--json"});
    std::string v = "untouched";
    EXPECT_FALSE(args.option("--json", &v));
    EXPECT_EQ(v, "untouched");
    ASSERT_EQ(args.errors().size(), 1u);
}

TEST(ArgList, IntOptionValidates)
{
    ArgList args = makeArgs({"-j", "8", "--bad", "3x"});
    unsigned n = 0;
    EXPECT_TRUE(args.intOption("-j", &n));
    EXPECT_EQ(n, 8u);
    EXPECT_FALSE(args.intOption("--bad", &n));
    EXPECT_EQ(args.errors().size(), 1u);
}

TEST(ArgList, IntOptionRejectsNegativeAndEmpty)
{
    ArgList args = makeArgs({"-j", "-1", "--n", ""});
    unsigned n = 7;
    EXPECT_FALSE(args.intOption("-j", &n)); // strtoul would wrap
    EXPECT_FALSE(args.intOption("--n", &n));
    EXPECT_EQ(n, 7u);
    EXPECT_EQ(args.errors().size(), 2u);
}

TEST(ArgList, DoubleOptionValidates)
{
    ArgList args =
        makeArgs({"--tol", "2.5", "--bad", "abc", "--pct", "2%"});
    double d = 0.0;
    EXPECT_TRUE(args.doubleOption("--tol", &d));
    EXPECT_DOUBLE_EQ(d, 2.5);
    EXPECT_FALSE(args.doubleOption("--bad", &d));
    EXPECT_FALSE(args.doubleOption("--pct", &d));
    EXPECT_DOUBLE_EQ(d, 2.5); // untouched by failed parses
    EXPECT_EQ(args.errors().size(), 2u);
}

TEST(FinishArgs, ReportsLeftoversAndErrors)
{
    ArgList clean = makeArgs({"--x"});
    EXPECT_TRUE(clean.flag("--x"));
    EXPECT_TRUE(finishArgs(clean, "test"));

    ArgList leftover = makeArgs({"--unknown"});
    EXPECT_FALSE(finishArgs(leftover, "test"));

    ArgList bad = makeArgs({"--json"});
    std::string v;
    bad.option("--json", &v);
    EXPECT_FALSE(finishArgs(bad, "test"));
}

} // namespace
