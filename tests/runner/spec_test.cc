/**
 * @file
 * Tests for the SimSpec layer: the runtime machine registry,
 * machine files, spec-file expansion (including the drift gates
 * that pin every checked-in bench spec file to the compiled
 * suite it mirrors), machine-column deduplication, and the
 * resolved-config block embedded into results.
 */

#include <gtest/gtest.h>

#include <fstream>

#include "common/log.hh"
#include "core/config_io.hh"
#include "pipeline/config_io.hh"
#include "runner/runner.hh"

using namespace siwi;
using namespace siwi::runner;
using workloads::SizeClass;

namespace {

std::string
specPath(const std::string &name)
{
    return std::string(SIWI_SOURCE_DIR) + "/bench/specs/" + name;
}

Json
parseJson(const std::string &text)
{
    std::string err;
    Json j = Json::parse(text, &err);
    EXPECT_TRUE(err.empty()) << err;
    return j;
}

/** Full structural equality of two sweep lists. */
void
expectSameSweeps(const std::vector<SweepSpec> &got,
                 const std::vector<SweepSpec> &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
        const SweepSpec &g = got[i], &w = want[i];
        EXPECT_EQ(g.name, w.name);
        EXPECT_EQ(g.size, w.size);
        EXPECT_EQ(g.sms, w.sms) << g.name;
        EXPECT_EQ(g.policies, w.policies) << g.name;
        ASSERT_EQ(g.machines.size(), w.machines.size())
            << g.name;
        for (size_t m = 0; m < g.machines.size(); ++m) {
            EXPECT_EQ(g.machines[m].name, w.machines[m].name)
                << g.name;
            EXPECT_TRUE(g.machines[m].config ==
                        w.machines[m].config)
                << g.name << "/" << g.machines[m].name;
            EXPECT_EQ(g.machines[m].chip_sets,
                      w.machines[m].chip_sets)
                << g.name << "/" << g.machines[m].name;
        }
        ASSERT_EQ(g.wls.size(), w.wls.size()) << g.name;
        for (size_t wl = 0; wl < g.wls.size(); ++wl)
            EXPECT_STREQ(g.wls[wl]->name(), w.wls[wl]->name())
                << g.name;
    }
}

TEST(MachineRegistry, SeedsThePaperMachinesCaseInsensitively)
{
    MachineRegistry reg;
    EXPECT_EQ(reg.machines().size(), 5u);
    ASSERT_NE(reg.find("SBI+SWI"), nullptr);
    ASSERT_NE(reg.find("sbi+swi"), nullptr);
    ASSERT_NE(reg.find("baseline"), nullptr);
    EXPECT_EQ(reg.find("NoSuchMachine"), nullptr);
    EXPECT_TRUE(reg.find("sbi+swi")->config ==
                pipeline::SMConfig::make(
                    pipeline::PipelineMode::SBISWI));
}

TEST(MachineRegistry, RejectsDuplicateNames)
{
    MachineRegistry reg;
    std::string err;
    EXPECT_TRUE(reg.add({"Custom", pipeline::SMConfig{}}, &err));
    EXPECT_FALSE(reg.add({"custom", pipeline::SMConfig{}}, &err));
    EXPECT_NE(err.find("custom"), std::string::npos);
    EXPECT_FALSE(
        reg.add({"baseline", pipeline::SMConfig{}}, &err));
}

TEST(MachineFromJson, BasePlusSetBuildsADerivedMachine)
{
    MachineRegistry reg;
    MachineSpec m;
    std::string err;
    Json j = parseJson(R"({"name": "X", "base": "swi",
                           "set": {"lookup_sets": 8}})");
    ASSERT_TRUE(machineFromJson(j, "", reg, &m, &err)) << err;
    EXPECT_EQ(m.name, "X");
    EXPECT_EQ(m.config.lookup_sets, 8u);
    pipeline::SMConfig want =
        pipeline::SMConfig::make(pipeline::PipelineMode::SWI);
    want.lookup_sets = 8;
    EXPECT_TRUE(m.config == want);
}

TEST(MachineFromJson, ErrorsNameTheProblem)
{
    MachineRegistry reg;
    MachineSpec m;
    std::string err;

    Json j = parseJson(R"({"name": "X", "base": "fermi"})");
    EXPECT_FALSE(machineFromJson(j, "", reg, &m, &err));
    EXPECT_NE(err.find("fermi"), std::string::npos);
    EXPECT_NE(err.find("Baseline"), std::string::npos); // known

    j = parseJson(R"({"base": "swi"})");
    EXPECT_FALSE(machineFromJson(j, "", reg, &m, &err));
    EXPECT_NE(err.find("name"), std::string::npos);

    j = parseJson(R"({"name": "X", "base": "swi",
                      "set": {"hct_entries": 8}})");
    EXPECT_FALSE(machineFromJson(j, "", reg, &m, &err));
    EXPECT_NE(err.find("hct_entries"), std::string::npos);

    // A set that violates the config invariants is caught at
    // load time, not by a simulator panic later.
    j = parseJson(R"({"name": "X", "base": "swi",
                      "set": {"scheduler_latency": 1}})");
    EXPECT_FALSE(machineFromJson(j, "", reg, &m, &err));
    EXPECT_NE(err.find("cascaded"), std::string::npos) << err;

    j = parseJson(R"({"name": "X", "base": "swi",
                      "flavor": "mild"})");
    EXPECT_FALSE(machineFromJson(j, "", reg, &m, &err));
    EXPECT_NE(err.find("flavor"), std::string::npos);
}

TEST(MachineFile, LoadsTheCheckedInExample)
{
    MachineRegistry reg;
    MachineSpec m;
    std::string err;
    ASSERT_TRUE(loadMachineFile(
        specPath("machines/sbi_swi_cct16_xor.json"), reg, &m,
        &err))
        << err;
    EXPECT_EQ(m.name, "SBI+SWI-cct16-xor");
    EXPECT_EQ(m.config.heap.cct_capacity, 16u);
    EXPECT_EQ(m.config.shuffle,
              pipeline::LaneShufflePolicy::Xor);
    EXPECT_TRUE(m.config.sbi);
    EXPECT_TRUE(m.config.swi);
}

TEST(MachineFile, NameDefaultsToTheFileStem)
{
    std::string path = testing::TempDir() + "my_swi.json";
    {
        std::ofstream out(path);
        out << R"({"base": "swi", "set": {"lookup_sets": 2}})";
    }
    MachineRegistry reg;
    MachineSpec m;
    std::string err;
    ASSERT_TRUE(loadMachineFile(path, reg, &m, &err)) << err;
    EXPECT_EQ(m.name, "my_swi");
    EXPECT_EQ(m.config.lookup_sets, 2u);
}

TEST(MachineFile, RejectsFileToFileIndirection)
{
    std::string path = testing::TempDir() + "indirect.json";
    {
        std::ofstream out(path);
        out << R"({"file": "other.json"})";
    }
    MachineRegistry reg;
    MachineSpec m;
    std::string err;
    EXPECT_FALSE(loadMachineFile(path, reg, &m, &err));
    EXPECT_NE(err.find("cannot reference"), std::string::npos)
        << err;
}

TEST(SpecFile, CheckedInSpecsMatchTheCompiledSuites)
{
    // The drift gates: every bench/specs file must expand to
    // exactly the grid its compiled counterpart builds. A change
    // to either side without the other fails here.
    struct Case
    {
        const char *file;
        const char *label;
        std::vector<SweepSpec> want;
    };
    const Case cases[] = {
        {"fast.json", "fast", suiteSweeps("fast")},
        {"fig7.json", "fig7",
         figureSweeps("fig7", SizeClass::Full)},
        {"fig8a.json", "fig8a",
         figureSweeps("fig8a", SizeClass::Full)},
        {"fig8b.json", "fig8b",
         figureSweeps("fig8b", SizeClass::Full)},
        {"fig9.json", "fig9",
         figureSweeps("fig9", SizeClass::Full)},
        {"policy.json", "policy",
         figureSweeps("policy", SizeClass::Full)},
        {"scaling.json", "scaling",
         figureSweeps("scaling", SizeClass::Chip)},
    };
    for (const Case &c : cases) {
        SCOPED_TRACE(c.file);
        MachineRegistry reg;
        std::vector<SweepSpec> sweeps;
        std::string label, err;
        ASSERT_TRUE(loadSpecFile(specPath(c.file), &reg, &sweeps,
                                 &label, &err))
            << err;
        EXPECT_EQ(label, c.label);
        expectSameSweeps(sweeps, c.want);
    }
}

TEST(SpecFile, StrictErrorsNameTheOffender)
{
    auto load = [](const std::string &text, std::string *err) {
        MachineRegistry reg;
        std::vector<SweepSpec> sweeps;
        std::string label;
        return sweepsFromSpecJson(parseJson(text), "", &reg,
                                  &sweeps, &label, err);
    };
    std::string err;

    EXPECT_FALSE(load(R"({"name": "x", "sweeps": [],
                          "color": "red"})",
                      &err));
    EXPECT_NE(err.find("color"), std::string::npos);

    EXPECT_FALSE(load(R"({"name": "x", "sweeps": [
        {"name": "s", "machines": ["SBI"],
         "workloads": ["NoSuchBench"]}]})",
                      &err));
    EXPECT_NE(err.find("NoSuchBench"), std::string::npos);

    EXPECT_FALSE(load(R"({"name": "x", "sweeps": [
        {"name": "s", "machines": ["Fermi2"],
         "workloads": ["regular"]}]})",
                      &err));
    EXPECT_NE(err.find("Fermi2"), std::string::npos);

    EXPECT_FALSE(load(R"({"name": "x", "sweeps": [
        {"name": "s", "machines": ["SBI"],
         "workloads": ["regular"],
         "policies": ["fifo"]}]})",
                      &err));
    EXPECT_NE(err.find("oldest"), std::string::npos) << err;

    EXPECT_FALSE(load(R"({"name": "x", "sweeps": [
        {"name": "s", "machines": ["SBI", "sbi"],
         "workloads": ["regular"]}]})",
                      &err));
    EXPECT_NE(err.find("duplicate machine"), std::string::npos);

    EXPECT_FALSE(load(R"({"name": "x", "sweeps": [
        {"name": "s", "machines": ["SBI"],
         "workloads": ["regular"], "sms": [0]}]})",
                      &err));
    EXPECT_NE(err.find("sms"), std::string::npos);

    // Duplicate axis entries would expand to duplicate cells
    // with colliding labels.
    EXPECT_FALSE(load(R"({"name": "x", "sweeps": [
        {"name": "s", "machines": ["SBI"],
         "workloads": ["regular"], "sms": [2, 2]}]})",
                      &err));
    EXPECT_NE(err.find("duplicate sms"), std::string::npos);
    EXPECT_FALSE(load(R"({"name": "x", "sweeps": [
        {"name": "s", "machines": ["SBI"],
         "workloads": ["regular"],
         "policies": ["gto", "gto"]}]})",
                      &err));
    EXPECT_NE(err.find("twice"), std::string::npos) << err;
    // ...including via the oldest entry resolving to a machine's
    // own sched_policy.
    EXPECT_FALSE(load(R"({"name": "x", "sweeps": [
        {"name": "s",
         "machines": [{"name": "G", "base": "SBI",
                       "set": {"sched_policy": "gto"}}],
         "workloads": ["regular"],
         "policies": ["oldest", "gto"]}]})",
                      &err));
    EXPECT_NE(err.find("twice"), std::string::npos) << err;

    // The mode tag is fixed by the base machine.
    EXPECT_FALSE(load(R"({"name": "x", "sweeps": [
        {"name": "s",
         "machines": [{"name": "M", "base": "Baseline",
                       "set": {"mode": "SBI+SWI"}}],
         "workloads": ["regular"]}]})",
                      &err));
    EXPECT_NE(err.find("mode"), std::string::npos) << err;
    EXPECT_FALSE(load(R"({"name": "x", "sweeps": [
        {"name": "s", "machines": ["SBI"],
         "workloads": ["regular"],
         "set": {"mode": "SWI"}}]})",
                      &err));
    EXPECT_NE(err.find("mode"), std::string::npos) << err;

    EXPECT_FALSE(load(R"({"name": "x", "sweeps": [
        {"name": "s", "machines": ["SBI"],
         "workloads": ["regular"]},
        {"name": "s", "machines": ["SWI"],
         "workloads": ["regular"]}]})",
                      &err));
    EXPECT_NE(err.find("duplicate sweep"), std::string::npos);
}

TEST(SpecFile, SweepLevelSetAppliesToEveryMachine)
{
    MachineRegistry reg;
    std::vector<SweepSpec> sweeps;
    std::string label, err;
    ASSERT_TRUE(sweepsFromSpecJson(
        parseJson(R"({"name": "x", "sweeps": [
            {"name": "s", "machines": ["Baseline", "SBI+SWI"],
             "workloads": ["BFS"], "size": "tiny",
             "set": {"mshrs": 16}}]})"),
        "", &reg, &sweeps, &label, &err))
        << err;
    ASSERT_EQ(sweeps.size(), 1u);
    for (const MachineSpec &m : sweeps[0].machines)
        EXPECT_EQ(m.config.mem.mshrs, 16u) << m.name;
    // The registry rows themselves must stay pristine.
    EXPECT_EQ(reg.find("Baseline")->config.mem.mshrs,
              pipeline::SMConfig{}.mem.mshrs);
}

TEST(SpecFile, InlineMachinesAndSpecMachinesSection)
{
    MachineRegistry reg;
    std::vector<SweepSpec> sweeps;
    std::string label, err;
    ASSERT_TRUE(sweepsFromSpecJson(
        parseJson(R"({"name": "x",
            "machines": [{"name": "SWI-dm", "base": "SWI",
                          "set": {"lookup_sets": 16}}],
            "sweeps": [
              {"name": "s",
               "machines": ["SWI-dm",
                            {"name": "SWI-2way", "base": "SWI",
                             "set": {"lookup_sets": 8}}],
               "workloads": ["BFS"], "size": "tiny"}]})"),
        "", &reg, &sweeps, &label, &err))
        << err;
    ASSERT_EQ(sweeps[0].machines.size(), 2u);
    EXPECT_EQ(sweeps[0].machines[0].name, "SWI-dm");
    EXPECT_EQ(sweeps[0].machines[0].config.lookup_sets, 16u);
    EXPECT_EQ(sweeps[0].machines[1].name, "SWI-2way");
    EXPECT_EQ(sweeps[0].machines[1].config.lookup_sets, 8u);
    // The spec "machines" section registered its row.
    EXPECT_NE(reg.find("SWI-dm"), nullptr);
}

TEST(Dedupe, IdenticalMachineColumnsCollapseWithAWarning)
{
    setLogQuiet(true);
    SweepSpec s = fig7Sweep(false, SizeClass::Tiny);
    s.filterMachines({"Baseline", "SBI"});
    MachineSpec twin = s.machines[0];
    twin.name = "Baseline-again"; // same config, new name
    s.machines.push_back(twin);
    ASSERT_EQ(s.machines.size(), 3u);
    s.dedupeMachines();
    ASSERT_EQ(s.machines.size(), 2u);
    EXPECT_EQ(s.machines[0].name, "Baseline");
    EXPECT_EQ(s.machines[1].name, "SBI");
}

TEST(Dedupe, RunSweepsNeverRunsADuplicateColumn)
{
    setLogQuiet(true);
    SweepSpec s = fig7Sweep(false, SizeClass::Tiny);
    s.name = "dup";
    s.filterMachines({"Baseline"});
    s.filterWorkloads({"BFS"});
    MachineSpec twin = s.machines[0];
    twin.name = "Copy";
    s.machines.push_back(twin);
    Results res = runSweeps({s});
    EXPECT_EQ(res.cells.size(), 1u);
    EXPECT_EQ(res.machines.size(), 1u);
    EXPECT_EQ(res.cells[0].machine, "Baseline");
}

TEST(Results, EmbedsTheResolvedMachineConfigs)
{
    setLogQuiet(true);
    MachineRegistry reg;
    MachineSpec custom;
    std::string err;
    ASSERT_TRUE(loadMachineFile(
        specPath("machines/sbi_swi_cct16_xor.json"), reg,
        &custom, &err))
        << err;

    SweepSpec s;
    s.name = "custom";
    s.size = SizeClass::Tiny;
    s.machines = {custom};
    s.wls = {workloads::findWorkload("BFS")};
    s.sms = {2};
    Results res = runSweeps({s});

    ASSERT_EQ(res.machines.size(), 1u);
    const MachineRecord &r = res.machines[0];
    EXPECT_EQ(r.sweep, "custom");
    EXPECT_EQ(r.machine, "SBI+SWI-cct16-xor@2sm");
    EXPECT_EQ(r.config.num_sms, 2u);
    EXPECT_TRUE(r.config.shared_backend);
    EXPECT_EQ(r.config.sm.heap.cct_capacity, 16u);
    EXPECT_EQ(r.config.sm.shuffle,
              pipeline::LaneShufflePolicy::Xor);
    ASSERT_EQ(res.cells.size(), 1u);
    EXPECT_EQ(res.cells[0].machine, r.machine);
    EXPECT_NE(res.findMachine("custom", res.cells[0].machine),
              nullptr);

    // The config block must appear verbatim in the JSON and
    // survive a full round trip.
    Json j = res.toJson();
    const Json *jm = j.find("machines");
    ASSERT_NE(jm, nullptr);
    ASSERT_EQ(jm->arr().size(), 1u);
    const Json *cfg = jm->arr()[0].find("config");
    ASSERT_NE(cfg, nullptr);
    EXPECT_EQ(*cfg, core::gpuConfigToJson(r.config));

    Results parsed;
    ASSERT_TRUE(Results::fromJson(j, &parsed, &err)) << err;
    EXPECT_TRUE(parsed == res);
}

TEST(Results, MachineLevelSchedPolicyIsHonored)
{
    // A sched_policy configured on the machine itself (a machine
    // file's "set", or --set) must actually run under the
    // default oldest-first policy axis — and show up in the cell
    // label and the resolved config.
    setLogQuiet(true);
    SweepSpec s = fig7Sweep(false, SizeClass::Tiny);
    s.name = "polfield";
    s.filterMachines({"Baseline"});
    s.filterWorkloads({"BFS"});
    std::string err;
    ASSERT_TRUE(pipeline::smConfigApplyKeyValue(
        "sched_policy=gto", &s.machines[0].config, &err))
        << err;
    EXPECT_EQ(effectivePolicy(s, 0, 0),
              frontend::SchedPolicyKind::GreedyThenOldest);

    Results res = runSweeps({s});
    ASSERT_EQ(res.cells.size(), 1u);
    EXPECT_EQ(res.cells[0].machine, "Baseline/gto");
    EXPECT_EQ(res.cells[0].policy, "gto");
    ASSERT_EQ(res.machines.size(), 1u);
    EXPECT_EQ(res.machines[0].config.sm.sched_policy,
              frontend::SchedPolicyKind::GreedyThenOldest);

    // ...and match what an explicit policy-axis run produces.
    SweepSpec axis = fig7Sweep(false, SizeClass::Tiny);
    axis.name = "polfield";
    axis.filterMachines({"Baseline"});
    axis.filterWorkloads({"BFS"});
    axis.policies = {frontend::SchedPolicyKind::GreedyThenOldest};
    Results want = runSweeps({axis});
    EXPECT_EQ(res.cells[0], want.cells[0]);

    // An explicit non-default axis entry still overrides the
    // machine field.
    s.policies = {frontend::SchedPolicyKind::RoundRobin};
    EXPECT_EQ(effectivePolicy(s, 0, 0),
              frontend::SchedPolicyKind::RoundRobin);
}

TEST(Results, MachineRecordsFollowCanonicalOrder)
{
    SweepSpec s = fig7Sweep(false, SizeClass::Tiny);
    s.filterMachines({"Baseline", "SBI"});
    s.filterWorkloads({"BFS"});
    s.sms = {1, 2};
    std::vector<MachineRecord> recs = machineRecords({s});
    ASSERT_EQ(recs.size(), 4u);
    EXPECT_EQ(recs[0].machine, "Baseline");
    EXPECT_EQ(recs[1].machine, "SBI");
    EXPECT_EQ(recs[2].machine, "Baseline@2sm");
    EXPECT_EQ(recs[3].machine, "SBI@2sm");
    EXPECT_EQ(recs[2].config.num_sms, 2u);
}

} // namespace
