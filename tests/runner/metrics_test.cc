/**
 * @file
 * Tests for the shared summary metrics (geomean and the paper's
 * TMD exclusion rule).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "runner/metrics.hh"

using namespace siwi::runner;

namespace {

TEST(Geomean, EmptyVectorIsZero)
{
    EXPECT_EQ(geomean({}), 0.0);
}

TEST(Geomean, SingleValue)
{
    EXPECT_DOUBLE_EQ(geomean({7.5}), 7.5);
}

TEST(Geomean, KnownValues)
{
    EXPECT_DOUBLE_EQ(geomean({2.0, 8.0}), 4.0);
    EXPECT_DOUBLE_EQ(geomean({1.0, 1.0, 1.0}), 1.0);
    EXPECT_NEAR(geomean({2.0, 4.0, 8.0}), 4.0, 1e-12);
}

TEST(Geomean, ZeroValueYieldsZeroNotNan)
{
    double g = geomean({2.0, 0.0, 8.0});
    EXPECT_EQ(g, 0.0);
    EXPECT_FALSE(std::isnan(g));
}

TEST(Geomean, NegativeValueYieldsZeroNotNan)
{
    double g = geomean({2.0, -1.0});
    EXPECT_EQ(g, 0.0);
    EXPECT_FALSE(std::isnan(g));
}

TEST(ExcludeFromMeans, FiltersFlaggedEntries)
{
    std::vector<double> vals = {1.0, 2.0, 3.0, 4.0};
    std::vector<bool> excl = {false, true, false, true};
    EXPECT_EQ(excludeFromMeans(vals, excl),
              (std::vector<double>{1.0, 3.0}));
}

TEST(ExcludeFromMeans, AllKeptAndAllDropped)
{
    std::vector<double> vals = {1.0, 2.0};
    EXPECT_EQ(excludeFromMeans(vals, {false, false}), vals);
    EXPECT_TRUE(excludeFromMeans(vals, {true, true}).empty());
    EXPECT_TRUE(excludeFromMeans({}, {}).empty());
}

} // namespace
