/**
 * @file
 * Tests for the minimal JSON value type: parsing, deterministic
 * serialization, and round-tripping.
 */

#include <gtest/gtest.h>

#include "common/json.hh"

using namespace siwi;

namespace {

Json
parseOk(const std::string &text)
{
    std::string err;
    Json j = Json::parse(text, &err);
    EXPECT_EQ(err, "") << "parsing: " << text;
    return j;
}

std::string
parseErr(const std::string &text)
{
    std::string err;
    Json::parse(text, &err);
    EXPECT_NE(err, "") << "expected failure parsing: " << text;
    return err;
}

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(parseOk("null").isNull());
    EXPECT_EQ(parseOk("true").boolean(), true);
    EXPECT_EQ(parseOk("false").boolean(), false);
    EXPECT_EQ(parseOk("42").integer(), 42);
    EXPECT_EQ(parseOk("-7").integer(), -7);
    EXPECT_DOUBLE_EQ(parseOk("2.5").number(), 2.5);
    EXPECT_DOUBLE_EQ(parseOk("-1e3").number(), -1000.0);
    EXPECT_EQ(parseOk("\"hi\"").str(), "hi");
}

TEST(Json, IntAndDoubleAreDistinct)
{
    EXPECT_TRUE(parseOk("3").isInt());
    EXPECT_FALSE(parseOk("3").isDouble());
    EXPECT_TRUE(parseOk("3.0").isDouble());
    EXPECT_TRUE(parseOk("3").isNumber());
    EXPECT_TRUE(parseOk("3.0").isNumber());
}

TEST(Json, ParsesContainers)
{
    Json j = parseOk("{\"a\": [1, 2.5, \"x\"], \"b\": {}}");
    ASSERT_TRUE(j.isObject());
    const Json *a = j.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    EXPECT_EQ(a->arr().size(), 3u);
    EXPECT_EQ(a->arr()[0].integer(), 1);
    const Json *b = j.find("b");
    ASSERT_NE(b, nullptr);
    EXPECT_TRUE(b->isObject());
    EXPECT_EQ(j.find("missing"), nullptr);
}

TEST(Json, StringEscapes)
{
    Json j = parseOk("\"a\\n\\t\\\"\\\\b\\u0041\"");
    EXPECT_EQ(j.str(), "a\n\t\"\\bA");
    // Control characters are re-escaped on output.
    EXPECT_EQ(Json("a\nb").dump(), "\"a\\nb\"");
}

TEST(Json, RejectsMalformedInput)
{
    parseErr("");
    parseErr("{");
    parseErr("[1,");
    parseErr("{\"a\" 1}");
    parseErr("tru");
    parseErr("1 2");
    parseErr("\"unterminated");
    parseErr("{\"a\":}");
    parseErr("[01x]");
}

TEST(Json, DeepNestingIsAParseErrorNotAStackOverflow)
{
    std::string deep(100000, '[');
    parseErr(deep);
    // Sibling containers do not accumulate depth.
    std::string wide = "[";
    for (int i = 0; i < 300; ++i)
        wide += "{},";
    wide += "[]]";
    parseOk(wide);
}

TEST(Json, ObjectsPreserveInsertionOrder)
{
    Json j = Json::object();
    j.set("z", Json(1));
    j.set("a", Json(2));
    EXPECT_EQ(j.dump(), "{\"z\":1,\"a\":2}");
}

TEST(Json, DumpParseRoundTrip)
{
    Json j = Json::object();
    j.set("name", Json("fig7"));
    j.set("count", Json(u64(1234567890123ull)));
    j.set("ipc", Json(38.119999999999997));
    j.set("flags", Json(true));
    Json arr = Json::array();
    arr.push(Json(1));
    arr.push(Json(2.25));
    arr.push(Json(nullptr));
    j.set("values", std::move(arr));

    for (int indent : {-1, 2}) {
        std::string text = j.dump(indent);
        std::string err;
        Json back = Json::parse(text, &err);
        EXPECT_EQ(err, "");
        EXPECT_EQ(back, j) << text;
        // Serialization is deterministic.
        EXPECT_EQ(back.dump(indent), text);
    }
}

TEST(Json, DoublesRoundTripExactly)
{
    for (double d : {0.1, 1.0 / 3.0, 38.12, 1e-300, -2.5e17}) {
        std::string text = Json(d).dump();
        std::string err;
        Json back = Json::parse(text, &err);
        EXPECT_EQ(err, "");
        EXPECT_EQ(back.number(), d) << text;
    }
}

TEST(Json, TypedAccessorsWithDefaults)
{
    Json j = parseOk(
        "{\"i\": 3, \"d\": 2.5, \"b\": true, \"s\": \"x\"}");
    EXPECT_EQ(j.getInt("i"), 3);
    EXPECT_EQ(j.getInt("d"), 2);
    EXPECT_EQ(j.getInt("missing", -1), -1);
    EXPECT_DOUBLE_EQ(j.getDouble("i"), 3.0);
    EXPECT_DOUBLE_EQ(j.getDouble("d"), 2.5);
    EXPECT_EQ(j.getBool("b"), true);
    EXPECT_EQ(j.getBool("missing", true), true);
    EXPECT_EQ(j.getString("s"), "x");
    EXPECT_EQ(j.getString("i", "def"), "def");
}

} // namespace
