/**
 * @file
 * Golden spec-file test: the checked-in bench/specs/fast.json —
 * the grid the CI regression gate runs — must produce JSON
 * byte-identical to the legacy compiled fastSuite() path, at one
 * worker and at eight. This pins the spec-file route as a drop-in
 * replacement for hand-written SweepSpec construction before the
 * compiled path is retired, and exercises determinism of the
 * whole spec -> expand -> run -> serialize pipeline.
 */

#include <gtest/gtest.h>

#include "runner/runner.hh"

using namespace siwi;
using namespace siwi::runner;

namespace {

TEST(SpecGolden, FastSpecMatchesLegacyFastSuiteByteForByte)
{
    MachineRegistry reg;
    std::vector<SweepSpec> spec_sweeps;
    std::string label, err;
    ASSERT_TRUE(loadSpecFile(std::string(SIWI_SOURCE_DIR) +
                                 "/bench/specs/fast.json",
                             &reg, &spec_sweeps, &label, &err))
        << err;
    ASSERT_EQ(label, "fast");

    RunOptions legacy_opts;
    legacy_opts.jobs = 1;
    legacy_opts.suite_label = "fast";
    std::string legacy =
        runSweeps(suiteSweeps("fast"), legacy_opts).toJsonText();

    for (unsigned jobs : {1u, 8u}) {
        RunOptions opts;
        opts.jobs = jobs;
        opts.suite_label = label;
        std::string spec_json =
            runSweeps(spec_sweeps, opts).toJsonText();
        EXPECT_EQ(spec_json, legacy) << "jobs=" << jobs;
    }
}

} // namespace
