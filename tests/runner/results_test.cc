/**
 * @file
 * Tests for Results serialization (JSON round-trip, CSV, schema
 * versioning) and the baseline comparison gate.
 */

#include <gtest/gtest.h>

#include "core/stats_io.hh"
#include "runner/baseline.hh"
#include "runner/results.hh"

using namespace siwi;
using namespace siwi::runner;

namespace {

core::SimStats
sampleStats(u64 seed)
{
    core::SimStats st;
    st.cycles = 1000 + seed;
    st.instructions = 2000 + seed;
    st.thread_instructions = 64000 + seed;
    st.primary_issues = 1500 + seed;
    st.secondary_issues = 500 + seed;
    st.branch_divergences = 17 + seed;
    st.warp_splits = 5 + seed;
    st.l1_hits = 900 + seed;
    st.l1_misses = 100 + seed;
    st.dram_transactions = 42 + seed;
    st.dram_bytes = 42 * 128 + seed;
    st.threads_launched = 1024;
    st.blocks_launched = 4;
    st.max_stack_depth = 3;
    st.max_live_contexts = 9;
    st.units.push_back({"MAD0", 10 + seed, 20 + seed, 30 + seed});
    st.units.push_back({"LSU", 1 + seed, 2 + seed, 3 + seed});
    return st;
}

CellResult
sampleCell(const std::string &sweep, const std::string &machine,
           const std::string &workload, double ipc)
{
    CellResult c;
    c.sweep = sweep;
    c.machine = machine;
    c.workload = workload;
    c.size = "tiny";
    c.policy = "oldest";
    c.verified = true;
    c.ipc = ipc;
    c.stats = sampleStats(u64(ipc * 10));
    return c;
}

Results
sampleResults()
{
    Results r;
    r.suite = "fast";
    r.cells.push_back(sampleCell("fig7", "Baseline", "BFS", 20.5));
    r.cells.push_back(sampleCell("fig7", "SBI", "BFS", 28.25));
    CellResult bad = sampleCell("fig7", "SBI", "LUD", 10.0);
    bad.verified = false;
    bad.verify_msg = "mismatch at word 3";
    bad.excluded_from_means = true;
    r.cells.push_back(bad);
    return r;
}

TEST(StatsIo, RoundTrip)
{
    core::SimStats st = sampleStats(7);
    st.timed_out = true;
    core::SimStats back;
    std::string err;
    ASSERT_TRUE(core::statsFromJson(statsToJson(st), &back, &err))
        << err;
    EXPECT_EQ(back, st);
}

TEST(StatsIo, MissingFieldsDefaultToZero)
{
    std::string err;
    Json j = Json::parse("{\"cycles\": 5}", &err);
    ASSERT_EQ(err, "");
    core::SimStats st;
    ASSERT_TRUE(core::statsFromJson(j, &st, &err)) << err;
    EXPECT_EQ(st.cycles, 5u);
    EXPECT_EQ(st.instructions, 0u);
    EXPECT_TRUE(st.units.empty());
}

TEST(StatsIo, RejectsNonObject)
{
    core::SimStats st;
    std::string err;
    EXPECT_FALSE(core::statsFromJson(Json(3), &st, &err));
    EXPECT_NE(err, "");
}

TEST(Results, JsonRoundTrip)
{
    Results r = sampleResults();
    Results back;
    std::string err;
    ASSERT_TRUE(Results::fromJson(r.toJson(), &back, &err)) << err;
    EXPECT_EQ(back, r);
    // The serialized text is stable, too.
    EXPECT_EQ(back.toJsonText(), r.toJsonText());
}

TEST(Results, SchemaVersionMismatchIsRejected)
{
    Json j = sampleResults().toJson();
    for (auto &m : j.obj()) {
        if (m.first == "schema_version")
            m.second = Json(core::stats_schema_version + 1);
    }
    Results back;
    std::string err;
    EXPECT_FALSE(Results::fromJson(j, &back, &err));
    EXPECT_NE(err.find("schema_version"), std::string::npos);
}

TEST(Results, FindAndHelpers)
{
    Results r = sampleResults();
    ASSERT_NE(r.find("fig7", "SBI", "BFS"), nullptr);
    EXPECT_DOUBLE_EQ(r.find("fig7", "SBI", "BFS")->ipc, 28.25);
    EXPECT_EQ(r.find("fig7", "SWI", "BFS"), nullptr);
    EXPECT_EQ(r.sweepNames(),
              (std::vector<std::string>{"fig7"}));
    EXPECT_EQ(r.verificationFailures(), 1u);
}

TEST(Results, CsvHasHeaderAndOneRowPerCell)
{
    Results r = sampleResults();
    std::string csv = r.toCsv();
    size_t lines = 0;
    for (char c : csv)
        lines += c == '\n';
    EXPECT_EQ(lines, 1 + r.cells.size());
    EXPECT_EQ(csv.find("sweep,machine,workload"), 0u);
    EXPECT_NE(
        csv.find("fig7,SBI,BFS,tiny,1,oldest,0,1,0,28.25"),
        std::string::npos);
}

TEST(Results, TimedOutCellsAreCountedAndRoundTrip)
{
    Results r = sampleResults();
    r.cells[1].timed_out = true;
    EXPECT_EQ(r.timeouts(), 1u);

    Results back;
    std::string err;
    ASSERT_TRUE(Results::fromJson(r.toJson(), &back, &err))
        << err;
    EXPECT_EQ(back, r);
    EXPECT_TRUE(back.cells[1].timed_out);
    EXPECT_EQ(back.cells[1].policy, "oldest");
}

TEST(Compare, TimedOutCandidateFailsTheGate)
{
    Results base = sampleResults();
    base.cells.pop_back(); // drop the unverified cell
    Results cand = base;
    cand.cells[0].timed_out = true;
    CompareReport rep = compareResults(base, cand, 0.02);
    EXPECT_FALSE(rep.pass());
    ASSERT_EQ(rep.timed_out.size(), 1u);
    EXPECT_NE(rep.format().find("TIMED-OUT"), std::string::npos);
}

TEST(Compare, IdenticalResultsPass)
{
    Results r = sampleResults();
    r.cells.pop_back(); // drop the unverified cell
    CompareReport rep = compareResults(r, r, 0.02);
    EXPECT_TRUE(rep.pass());
    EXPECT_EQ(rep.deltas.size(), r.cells.size());
    EXPECT_TRUE(rep.regressions.empty());
    EXPECT_NE(rep.format().find("PASS"), std::string::npos);
}

TEST(Compare, RegressionBeyondToleranceFails)
{
    Results base = sampleResults();
    base.cells.pop_back();
    Results cand = base;
    cand.cells[0].ipc *= 0.90; // -10%
    CompareReport rep = compareResults(base, cand, 0.02);
    EXPECT_FALSE(rep.pass());
    ASSERT_EQ(rep.regressions.size(), 1u);
    EXPECT_EQ(rep.regressions[0].workload, "BFS");
    EXPECT_NEAR(rep.regressions[0].relative, -0.10, 1e-12);
    EXPECT_NE(rep.format().find("FAIL"), std::string::npos);
}

TEST(Compare, RegressionWithinToleranceLegal)
{
    Results base = sampleResults();
    base.cells.pop_back();
    Results cand = base;
    cand.cells[0].ipc *= 0.99; // -1%, tolerance 2%
    EXPECT_TRUE(compareResults(base, cand, 0.02).pass());
}

TEST(Compare, ImprovementIsReportedNotFatal)
{
    Results base = sampleResults();
    base.cells.pop_back();
    Results cand = base;
    cand.cells[0].ipc *= 1.5;
    CompareReport rep = compareResults(base, cand, 0.02);
    EXPECT_TRUE(rep.pass());
    EXPECT_EQ(rep.improvements.size(), 1u);
}

TEST(Compare, MissingCellFails)
{
    Results base = sampleResults();
    base.cells.pop_back();
    Results cand = base;
    cand.cells.pop_back();
    CompareReport rep = compareResults(base, cand, 0.02);
    EXPECT_FALSE(rep.pass());
    ASSERT_EQ(rep.missing.size(), 1u);
    EXPECT_TRUE(rep.added.empty());
}

TEST(Compare, UnverifiedCandidateCellFails)
{
    Results base = sampleResults();
    base.cells.pop_back();
    Results cand = sampleResults(); // includes unverified LUD cell
    CompareReport rep = compareResults(base, cand, 0.02);
    EXPECT_FALSE(rep.pass());
    EXPECT_EQ(rep.unverified.size(), 1u);
    EXPECT_EQ(rep.added.size(), 1u);
}

TEST(Compare, ZeroBaselineIpcDoesNotDivide)
{
    Results base = sampleResults();
    base.cells.resize(1);
    base.cells[0].ipc = 0.0;
    Results cand = base;
    EXPECT_TRUE(compareResults(base, cand, 0.02).pass());
    cand.cells[0].ipc = 1.0;
    CompareReport rep = compareResults(base, cand, 0.02);
    ASSERT_EQ(rep.deltas.size(), 1u);
    EXPECT_DOUBLE_EQ(rep.deltas[0].relative, 1.0);
}

} // namespace
