/**
 * @file
 * The persistent result cache: store/lookup round-trips exactly,
 * corruption of any blob byte is detected and served as a miss
 * (never as a wrong result), eviction is deterministic
 * oldest-first, and fsck finds — and with repair, fixes — both
 * corrupt objects and index drift.
 */

#include <filesystem>
#include <fstream>

#include <unistd.h>

#include <gtest/gtest.h>

#include "core/stats_io.hh"
#include "serve/cache_key.hh"
#include "serve/result_cache.hh"

using namespace siwi;
using namespace siwi::serve;

namespace fs = std::filesystem;

namespace {

class ResultCacheTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("siwi_cache_test_" +
                std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::remove_all(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    /** A distinct, fully-populated cell per @p n. */
    static runner::CellResult makeCell(unsigned n)
    {
        runner::CellResult c;
        c.sweep = "sweep" + std::to_string(n);
        c.machine = "M" + std::to_string(n);
        c.workload = "BFS";
        c.size = "tiny";
        c.num_sms = 1 + n % 4;
        c.policy = "oldest";
        c.verified = true;
        c.ipc = 1.25 + double(n);
        c.stats.cycles = 1000 + n;
        c.stats.instructions = 500 + n;
        return c;
    }

    /** 64-hex-digit pseudo key, distinct per @p n. */
    static std::string makeKey(unsigned n)
    {
        std::string k(64, 'a');
        std::string tail = std::to_string(n);
        k.replace(k.size() - tail.size(), tail.size(), tail);
        return k;
    }

    std::string path() const { return dir_.string(); }

    fs::path dir_;
};

} // namespace

TEST_F(ResultCacheTest, StoreLookupRoundTripIsExact)
{
    ResultCache cache;
    std::string err;
    ASSERT_TRUE(cache.open(path(), 0, &err)) << err;

    runner::CellResult in = makeCell(1);
    ASSERT_TRUE(cache.store(makeKey(1), in, &err)) << err;

    runner::CellResult out;
    ASSERT_TRUE(cache.lookup(makeKey(1), &out));
    EXPECT_EQ(in, out);
    EXPECT_EQ(cache.counters().hits, 1u);
    EXPECT_EQ(cache.counters().stores, 1u);
}

TEST_F(ResultCacheTest, AbsentKeyIsAMissNotAnError)
{
    ResultCache cache;
    std::string err;
    ASSERT_TRUE(cache.open(path(), 0, &err)) << err;
    runner::CellResult out;
    std::string why;
    EXPECT_FALSE(cache.lookup(makeKey(7), &out, &why));
    EXPECT_EQ(why, "absent");
    EXPECT_EQ(cache.counters().misses, 1u);
    EXPECT_EQ(cache.counters().corrupt, 0u);
}

TEST_F(ResultCacheTest, SurvivesReopen)
{
    std::string err;
    {
        ResultCache cache;
        ASSERT_TRUE(cache.open(path(), 0, &err)) << err;
        ASSERT_TRUE(cache.store(makeKey(1), makeCell(1), &err));
    }
    ResultCache cache;
    ASSERT_TRUE(cache.open(path(), 0, &err)) << err;
    EXPECT_EQ(cache.entries(), 1u);
    runner::CellResult out;
    EXPECT_TRUE(cache.lookup(makeKey(1), &out));
    EXPECT_EQ(out, makeCell(1));
}

TEST_F(ResultCacheTest, EveryFlippedBitIsDetected)
{
    ResultCache cache;
    std::string err;
    ASSERT_TRUE(cache.open(path(), 0, &err)) << err;
    ASSERT_TRUE(cache.store(makeKey(1), makeCell(1), &err));

    const std::string obj = path() + "/objects/" +
                            makeKey(1).substr(0, 2) + "/" +
                            makeKey(1).substr(2) + ".json";
    std::string pristine;
    {
        std::ifstream in(obj, std::ios::binary);
        pristine.assign(std::istreambuf_iterator<char>(in), {});
        ASSERT_FALSE(pristine.empty());
    }

    // Flip one bit at a spread of positions across the blob —
    // header, key, checksum and payload regions all included.
    // Every single one must surface as a miss, never as a hit
    // with altered data.
    for (size_t pos = 0; pos < pristine.size();
         pos += 1 + pristine.size() / 64) {
        std::string bad = pristine;
        bad[pos] = char(bad[pos] ^ 0x08);
        {
            std::ofstream out(obj, std::ios::binary |
                                       std::ios::trunc);
            out.write(bad.data(), std::streamsize(bad.size()));
        }
        runner::CellResult out_cell;
        std::string why;
        bool hit = cache.lookup(makeKey(1), &out_cell, &why);
        if (hit) {
            // A flip inside JSON whitespace or a member name can
            // still parse to the identical value; a hit is only
            // acceptable when the payload is bit-exact.
            EXPECT_EQ(out_cell, makeCell(1))
                << "corrupt blob served at byte " << pos;
        }
    }

    {
        std::ofstream out(obj,
                          std::ios::binary | std::ios::trunc);
        out.write(pristine.data(),
                  std::streamsize(pristine.size()));
    }
    runner::CellResult out_cell;
    EXPECT_TRUE(cache.lookup(makeKey(1), &out_cell));
}

TEST_F(ResultCacheTest, StaleSchemaIsAMiss)
{
    ResultCache cache;
    std::string err;
    ASSERT_TRUE(cache.open(path(), 0, &err)) << err;
    ASSERT_TRUE(cache.store(makeKey(1), makeCell(1), &err));

    // Rewrite the blob claiming an older schema; the pin must
    // turn it into a miss even though the payload is intact.
    const std::string obj = path() + "/objects/" +
                            makeKey(1).substr(0, 2) + "/" +
                            makeKey(1).substr(2) + ".json";
    std::string perr;
    Json blob = Json::parseFile(obj, &perr);
    ASSERT_TRUE(perr.empty()) << perr;
    for (Json::Member &m : blob.obj()) {
        if (m.first == "schema_version")
            m.second = Json(core::stats_schema_version - 1);
    }
    ASSERT_TRUE(blob.writeFile(obj, 2, &err)) << err;

    runner::CellResult out;
    std::string why;
    EXPECT_FALSE(cache.lookup(makeKey(1), &out, &why));
    EXPECT_NE(why.find("stale stats schema"), std::string::npos)
        << why;
}

TEST_F(ResultCacheTest, EvictionIsOldestFirstAndBounded)
{
    ResultCache cache;
    std::string err;
    ASSERT_TRUE(cache.open(path(), 3, &err)) << err;
    for (unsigned n = 1; n <= 5; ++n)
        ASSERT_TRUE(cache.store(makeKey(n), makeCell(n), &err));
    EXPECT_EQ(cache.entries(), 3u);
    EXPECT_EQ(cache.counters().evictions, 2u);
    runner::CellResult out;
    EXPECT_FALSE(cache.lookup(makeKey(1), &out));
    EXPECT_FALSE(cache.lookup(makeKey(2), &out));
    EXPECT_TRUE(cache.lookup(makeKey(3), &out));
    EXPECT_TRUE(cache.lookup(makeKey(4), &out));
    EXPECT_TRUE(cache.lookup(makeKey(5), &out));
}

TEST_F(ResultCacheTest, NoStrayTempFilesAfterStores)
{
    ResultCache cache;
    std::string err;
    ASSERT_TRUE(cache.open(path(), 0, &err)) << err;
    for (unsigned n = 1; n <= 8; ++n)
        ASSERT_TRUE(cache.store(makeKey(n), makeCell(n), &err));
    for (const auto &e :
         fs::recursive_directory_iterator(path())) {
        if (e.is_regular_file())
            EXPECT_EQ(e.path().extension(), ".json")
                << "stray file: " << e.path();
    }
}

TEST_F(ResultCacheTest, FsckFindsAndRepairsCorruption)
{
    ResultCache cache;
    std::string err;
    ASSERT_TRUE(cache.open(path(), 0, &err)) << err;
    for (unsigned n = 1; n <= 4; ++n)
        ASSERT_TRUE(cache.store(makeKey(n), makeCell(n), &err));

    // Corrupt one object and plant one the index never saw.
    const std::string obj = path() + "/objects/" +
                            makeKey(2).substr(0, 2) + "/" +
                            makeKey(2).substr(2) + ".json";
    {
        std::ofstream out(obj,
                          std::ios::binary | std::ios::trunc);
        out << "{\"garbage\": true}\n";
    }

    FsckReport rep = cache.fsck(/*repair=*/false);
    EXPECT_EQ(rep.scanned, 4u);
    EXPECT_EQ(rep.valid, 3u);
    EXPECT_EQ(rep.corrupt, 1u);
    EXPECT_EQ(rep.removed, 0u);
    EXPECT_FALSE(rep.clean());

    rep = cache.fsck(/*repair=*/true);
    EXPECT_EQ(rep.corrupt, 1u);
    EXPECT_EQ(rep.removed, 1u);
    EXPECT_TRUE(rep.index_rebuilt);

    rep = cache.fsck(/*repair=*/false);
    EXPECT_TRUE(rep.clean()) << "fsck not clean after repair";
    EXPECT_EQ(cache.entries(), 3u);
}

TEST_F(ResultCacheTest, LostIndexIsRebuiltFromObjects)
{
    std::string err;
    {
        ResultCache cache;
        ASSERT_TRUE(cache.open(path(), 0, &err)) << err;
        for (unsigned n = 1; n <= 3; ++n)
            ASSERT_TRUE(
                cache.store(makeKey(n), makeCell(n), &err));
    }
    fs::remove(path() + "/index.json");

    ResultCache cache;
    ASSERT_TRUE(cache.open(path(), 0, &err)) << err;
    // Objects stay the truth: lookups work without any index.
    runner::CellResult out;
    EXPECT_TRUE(cache.lookup(makeKey(2), &out));
    // fsck notices the drift and restores the index.
    FsckReport rep = cache.fsck(/*repair=*/true);
    EXPECT_TRUE(rep.index_rebuilt);
    EXPECT_EQ(cache.entries(), 3u);
    EXPECT_TRUE(cache.fsck(false).clean());
}
