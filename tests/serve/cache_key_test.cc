/**
 * @file
 * Cache-key canonicalization: the key must be a pure function of
 * what a cell computes — the fully-resolved chip configuration,
 * the workload, the size class and the stats schema — and of
 * nothing else. Equal cells hash equal no matter how they were
 * described (builtin registry name, machine file, --set-style
 * mutation); any field-table mutation, schema bump or axis change
 * hashes different. The field sweeps enumerate the SMConfig and
 * GpuConfig tables, so a new knob that joins a table is covered
 * automatically.
 */

#include <gtest/gtest.h>

#include "core/config_io.hh"
#include "core/stats_io.hh"
#include "pipeline/config_io.hh"
#include "runner/results.hh"
#include "runner/spec.hh"
#include "serve/cache_key.hh"
#include "workloads/workload.hh"

using namespace siwi;
using namespace siwi::serve;

namespace {

runner::SweepSpec
oneCellSweep(const runner::MachineSpec &m)
{
    runner::SweepSpec s;
    s.name = "key_test";
    s.machines = {m};
    s.wls = {workloads::findWorkload("BFS")};
    s.size = workloads::SizeClass::Tiny;
    return s;
}

runner::CellSpec
firstCell()
{
    return runner::CellSpec{};
}

/** Mutate one field to a different value through its numeric
 *  view; false when the field has no other value to take. */
template <typename Cfg>
bool
perturbField(const ConfigField<Cfg> &f, Cfg *c)
{
    u64 cur = f.get(*c);
    switch (f.type) {
      case ConfigFieldType::U32:
        f.set(*c, cur + 1);
        return true;
      case ConfigFieldType::Bool:
        f.set(*c, cur ? 0 : 1);
        return true;
      case ConfigFieldType::Enum: {
        if (f.values.size() < 2)
            return false;
        f.set(*c, (cur + 1) % f.values.size());
        return true;
      }
    }
    return false;
}

} // namespace

TEST(CacheKey, StableAndWellFormed)
{
    runner::MachineRegistry reg;
    runner::SweepSpec s =
        oneCellSweep(*reg.find("SBI+SWI"));
    std::string k1 = cellCacheKey(s, firstCell());
    std::string k2 = cellCacheKey(s, firstCell());
    EXPECT_EQ(k1, k2);
    ASSERT_EQ(k1.size(), 64u);
    for (char c : k1)
        EXPECT_TRUE((c >= '0' && c <= '9') ||
                    (c >= 'a' && c <= 'f'))
            << "non-hex digit in key: " << c;
}

TEST(CacheKey, EverySmFieldChangesTheKey)
{
    runner::MachineRegistry reg;
    runner::SweepSpec s =
        oneCellSweep(*reg.find("SBI+SWI"));
    core::GpuConfig base = runner::resolvedCellConfig(s, 0, 0, 0);
    const std::string base_key =
        cellCacheKey(base, "BFS", "tiny");
    size_t perturbed = 0;
    for (const ConfigField<pipeline::SMConfig> &f :
         pipeline::smConfigFields()) {
        core::GpuConfig mut = base;
        if (!perturbField(f, &mut.sm))
            continue;
        ++perturbed;
        EXPECT_NE(cellCacheKey(mut, "BFS", "tiny"), base_key)
            << "sm field '" << f.key
            << "' does not reach the cache key";
    }
    // The sweep must actually cover the table; a handful of
    // single-valued enums may legitimately be skipped.
    EXPECT_GE(perturbed, pipeline::smConfigFields().size() - 2);
}

TEST(CacheKey, EveryChipFieldChangesTheKey)
{
    runner::MachineRegistry reg;
    runner::SweepSpec s = oneCellSweep(*reg.find("SBI"));
    core::GpuConfig base = runner::resolvedCellConfig(s, 0, 0, 0);
    const std::string base_key =
        cellCacheKey(base, "BFS", "tiny");
    size_t perturbed = 0;
    for (const ConfigField<core::GpuConfig> &f :
         core::gpuConfigFields()) {
        core::GpuConfig mut = base;
        if (!perturbField(f, &mut))
            continue;
        ++perturbed;
        EXPECT_NE(cellCacheKey(mut, "BFS", "tiny"), base_key)
            << "chip field '" << f.key
            << "' does not reach the cache key";
    }
    EXPECT_GE(perturbed, core::gpuConfigFields().size() - 2);
}

TEST(CacheKey, SchemaBumpIsAMiss)
{
    runner::MachineRegistry reg;
    runner::SweepSpec s = oneCellSweep(*reg.find("SBI"));
    core::GpuConfig cfg = runner::resolvedCellConfig(s, 0, 0, 0);
    EXPECT_NE(cellCacheKey(cfg, "BFS", "tiny",
                           core::stats_schema_version + 1),
              cellCacheKey(cfg, "BFS", "tiny"));
}

TEST(CacheKey, WorkloadAndSizeChangeTheKey)
{
    runner::MachineRegistry reg;
    runner::SweepSpec s = oneCellSweep(*reg.find("SBI"));
    core::GpuConfig cfg = runner::resolvedCellConfig(s, 0, 0, 0);
    const std::string base = cellCacheKey(cfg, "BFS", "tiny");
    EXPECT_NE(cellCacheKey(cfg, "Mandelbrot", "tiny"), base);
    EXPECT_NE(cellCacheKey(cfg, "BFS", "full"), base);
}

TEST(CacheKey, AxisEntriesChangeTheKey)
{
    runner::MachineRegistry reg;
    runner::SweepSpec s = oneCellSweep(*reg.find("SBI"));
    s.sms = {1, 4};
    s.policies = {frontend::SchedPolicyKind::OldestFirst,
                  frontend::SchedPolicyKind::RoundRobin};
    runner::CellSpec base = firstCell();
    runner::CellSpec multi_sm = base;
    multi_sm.sms = 1;
    runner::CellSpec other_policy = base;
    other_policy.policy = 1;
    const std::string base_key = cellCacheKey(s, base);
    EXPECT_NE(cellCacheKey(s, multi_sm), base_key);
    EXPECT_NE(cellCacheKey(s, other_policy), base_key);
}

TEST(CacheKey, CycleSkipIsNotPartOfTheIdentity)
{
    // cycle_skip is a launch-time knob with bit-identical results
    // (core/gpu.hh), deliberately excluded from the key: a cell
    // computed with --no-skip must hit for a skipping run. The
    // key JSON being free of it is the structural guarantee.
    runner::MachineRegistry reg;
    runner::SweepSpec s = oneCellSweep(*reg.find("SBI"));
    core::GpuConfig cfg = runner::resolvedCellConfig(s, 0, 0, 0);
    std::string dump = cellKeyJson(cfg, "BFS", "tiny").dump(-1);
    EXPECT_EQ(dump.find("cycle_skip"), std::string::npos);
}

TEST(CacheKey, MachineFileSetAndRegistryRoutesAgree)
{
    // The same cell described three ways: a registry machine
    // mutated via the --set path, a machine-file style JSON
    // object with a "set" block, and a whole spec document. All
    // three must resolve to the same key.
    runner::MachineRegistry reg;

    runner::MachineSpec via_set = *reg.find("SBI+SWI");
    std::string err;
    ASSERT_TRUE(runner::machineApplyKeyValue(
        &via_set, "cct_capacity=16", &err))
        << err;

    Json jm = Json::object();
    jm.set("name", Json("tweaked"));
    jm.set("base", Json("SBI+SWI"));
    Json set = Json::object();
    set.set("cct_capacity", Json(16));
    jm.set("set", std::move(set));
    runner::MachineSpec via_file;
    ASSERT_TRUE(runner::machineFromJson(jm, ".", reg, &via_file,
                                        &err))
        << err;

    std::string spec_text = R"({
        "name": "key_test",
        "sweeps": [{
            "name": "key_test",
            "machines": [{"name": "tweaked", "base": "SBI+SWI",
                          "set": {"cct_capacity": 16}}],
            "workloads": ["BFS"],
            "size": "tiny"
        }]
    })";
    Json jspec = Json::parse(spec_text, &err);
    ASSERT_TRUE(err.empty()) << err;
    runner::MachineRegistry spec_reg;
    std::vector<runner::SweepSpec> spec_sweeps;
    std::string label;
    ASSERT_TRUE(runner::sweepsFromSpecJson(
        jspec, ".", &spec_reg, &spec_sweeps, &label, &err))
        << err;
    ASSERT_EQ(spec_sweeps.size(), 1u);

    const std::string k_set =
        cellCacheKey(oneCellSweep(via_set), firstCell());
    const std::string k_file =
        cellCacheKey(oneCellSweep(via_file), firstCell());
    const std::string k_spec =
        cellCacheKey(spec_sweeps[0], firstCell());
    EXPECT_EQ(k_set, k_file);
    EXPECT_EQ(k_set, k_spec);

    // And the mutation mattered: the untweaked machine differs.
    EXPECT_NE(k_set, cellCacheKey(
                         oneCellSweep(*reg.find("SBI+SWI")),
                         firstCell()));
}
