/**
 * @file
 * End-to-end siwi-serve: an in-process server on an ephemeral
 * port, driven through the real TCP client. Covers the submit
 * stream (cold compute, warm all-hits, byte-identity with a local
 * run), resume across a server restart on the same cache,
 * poisoned-blob recomputation, cross-submission in-flight dedupe
 * and the single-shot request types.
 */

#include <filesystem>
#include <fstream>
#include <thread>

#include <unistd.h>

#include <gtest/gtest.h>

#include "runner/experiment_runner.hh"
#include "runner/spec.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"

using namespace siwi;
using namespace siwi::serve;

namespace fs = std::filesystem;

namespace {

/** A 2-cell experiment: small enough for a unit test, two
 *  machines so hit/miss accounting is non-trivial. */
const char *kSpecText = R"({
    "name": "serve_test",
    "sweeps": [{
        "name": "serve_test",
        "machines": ["SBI", "SBI+SWI"],
        "workloads": ["BFS"],
        "size": "tiny"
    }]
})";

class ServeTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("siwi_serve_test_" +
                std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::remove_all(dir_);
        std::string err;
        spec_ = Json::parse(kSpecText, &err);
        ASSERT_TRUE(err.empty()) << err;
        startServer();
    }

    void TearDown() override
    {
        stopServer();
        fs::remove_all(dir_);
    }

    void startServer()
    {
        server_ = std::make_unique<Server>();
        ServerOptions opts;
        opts.cache_dir = dir_.string();
        opts.jobs = 2;
        std::string err;
        ASSERT_TRUE(server_->start(opts, &err)) << err;
        port_ = server_->port();
        thread_ = std::thread([this] { server_->run(); });
    }

    void stopServer()
    {
        if (!server_)
            return;
        server_->stop();
        thread_.join();
        server_.reset();
    }

    bool submit(SubmitOutcome *out, std::string *err)
    {
        return submitSpec("127.0.0.1", port_, spec_, out, err);
    }

    /** The same experiment executed locally, no cache. */
    runner::Results localRun()
    {
        runner::MachineRegistry reg;
        std::vector<runner::SweepSpec> sweeps;
        std::string label, err;
        EXPECT_TRUE(runner::sweepsFromSpecJson(
            spec_, ".", &reg, &sweeps, &label, &err))
            << err;
        runner::RunOptions opts;
        opts.jobs = 2;
        opts.suite_label = label;
        return runner::runSweeps(sweeps, opts);
    }

    fs::path dir_;
    Json spec_;
    std::unique_ptr<Server> server_;
    std::thread thread_;
    unsigned port_ = 0;
};

} // namespace

TEST_F(ServeTest, ColdComputesWarmHitsByteIdentical)
{
    SubmitOutcome cold;
    std::string err;
    ASSERT_TRUE(submit(&cold, &err)) << err;
    EXPECT_EQ(cold.cells, 2u);
    EXPECT_EQ(cold.hits, 0u);
    EXPECT_EQ(cold.misses, 2u);
    EXPECT_EQ(cold.verify_failures, 0u);

    SubmitOutcome warm;
    ASSERT_TRUE(submit(&warm, &err)) << err;
    EXPECT_EQ(warm.hits, 2u);
    EXPECT_EQ(warm.misses, 0u);

    // Byte-identity, all three ways: cold vs warm, and both vs a
    // plain local run of the same spec.
    EXPECT_EQ(cold.document.dump(2), warm.document.dump(2));
    EXPECT_EQ(cold.results.toJsonText(),
              localRun().toJsonText());
    EXPECT_EQ(cold.document.dump(2) + "\n",
              cold.results.toJsonText());
}

TEST_F(ServeTest, ProgressStreamsEveryCell)
{
    size_t calls = 0, last_total = 0;
    SubmitOutcome o;
    std::string err;
    ASSERT_TRUE(submitSpec(
        "127.0.0.1", port_, spec_, &o, &err,
        [&](size_t done, size_t total,
            const runner::CellResult &c, bool) {
            ++calls;
            last_total = total;
            EXPECT_EQ(done, calls);
            EXPECT_TRUE(c.verified);
        }))
        << err;
    EXPECT_EQ(calls, 2u);
    EXPECT_EQ(last_total, 2u);
}

TEST_F(ServeTest, ResumeAfterRestartRecomputesNothing)
{
    SubmitOutcome cold;
    std::string err;
    ASSERT_TRUE(submit(&cold, &err)) << err;

    // Bounce the server: a new instance on the same cache
    // directory is the kill-and-resume scenario — finished cells
    // must come back as hits.
    stopServer();
    startServer();

    SubmitOutcome resumed;
    ASSERT_TRUE(submit(&resumed, &err)) << err;
    EXPECT_EQ(resumed.hits, 2u);
    EXPECT_EQ(resumed.misses, 0u);
    EXPECT_EQ(resumed.document.dump(2), cold.document.dump(2));
    EXPECT_EQ(server_->status().cells_computed, 0u);
}

TEST_F(ServeTest, PoisonedBlobIsRecomputedNotServed)
{
    SubmitOutcome cold;
    std::string err;
    ASSERT_TRUE(submit(&cold, &err)) << err;

    // Flip one payload bit in one stored blob.
    std::string victim;
    for (const auto &e : fs::recursive_directory_iterator(
             dir_ / "objects")) {
        if (e.is_regular_file()) {
            victim = e.path().string();
            break;
        }
    }
    ASSERT_FALSE(victim.empty());
    std::string data;
    {
        std::ifstream in(victim, std::ios::binary);
        data.assign(std::istreambuf_iterator<char>(in), {});
    }
    size_t pos = data.find("\"ipc\"");
    ASSERT_NE(pos, std::string::npos);
    data[pos + 7] = char(data[pos + 7] ^ 0x01);
    {
        std::ofstream out(victim,
                          std::ios::binary | std::ios::trunc);
        out.write(data.data(), std::streamsize(data.size()));
    }

    SubmitOutcome again;
    ASSERT_TRUE(submit(&again, &err)) << err;
    EXPECT_EQ(again.hits, 1u);
    EXPECT_EQ(again.misses, 1u) << "poisoned blob not detected";
    EXPECT_EQ(again.document.dump(2), cold.document.dump(2))
        << "recomputed cell differs from the original";
}

TEST_F(ServeTest, ConcurrentIdenticalSubmissionsShareWork)
{
    SubmitOutcome a, b;
    std::string ea, eb;
    std::thread ta([&] { submitSpec("127.0.0.1", port_, spec_,
                                    &a, &ea); });
    std::thread tb([&] { submitSpec("127.0.0.1", port_, spec_,
                                    &b, &eb); });
    ta.join();
    tb.join();
    ASSERT_TRUE(ea.empty()) << ea;
    ASSERT_TRUE(eb.empty()) << eb;
    EXPECT_EQ(a.document.dump(2), b.document.dump(2));
    // Whatever the interleaving (in-flight join, cache hit, or
    // one side finishing first), each distinct cell is computed
    // at most once.
    EXPECT_LE(server_->status().cells_computed, 2u);
}

TEST_F(ServeTest, SingleShotRequestsAnswer)
{
    Json reply;
    std::string err;
    Json ping = Json::object();
    ping.set("type", Json("ping"));
    ASSERT_TRUE(request("127.0.0.1", port_, ping, &reply, &err))
        << err;
    EXPECT_EQ(reply.getString("type"), "pong");
    EXPECT_EQ(reply.getInt("protocol"), protocol_version);

    Json status = Json::object();
    status.set("type", Json("status"));
    ASSERT_TRUE(request("127.0.0.1", port_, status, &reply,
                        &err))
        << err;
    EXPECT_EQ(reply.getString("type"), "status");

    Json fsck = Json::object();
    fsck.set("type", Json("fsck"));
    ASSERT_TRUE(request("127.0.0.1", port_, fsck, &reply, &err))
        << err;
    EXPECT_EQ(reply.getString("type"), "fsck_report");
}

TEST_F(ServeTest, MalformedSubmissionsAreRejected)
{
    Json bad = Json::object();
    bad.set("type", Json("submit"));
    Json reply;
    std::string err;
    EXPECT_FALSE(request("127.0.0.1", port_, bad, &reply, &err));
    EXPECT_NE(err.find("spec"), std::string::npos) << err;

    std::string perr;
    Json broken = Json::parse(
        R"({"name":"x","sweeps":[{"name":"x",
            "machines":["NoSuchMachine"],
            "workloads":["BFS"]}]})",
        &perr);
    ASSERT_TRUE(perr.empty()) << perr;
    SubmitOutcome o;
    EXPECT_FALSE(submitSpec("127.0.0.1", port_, broken, &o,
                            &err));
    EXPECT_NE(err.find("NoSuchMachine"), std::string::npos)
        << err;

    Json nonsense = Json::object();
    nonsense.set("type", Json("frobnicate"));
    EXPECT_FALSE(request("127.0.0.1", port_, nonsense, &reply,
                         &err));
    EXPECT_NE(err.find("unknown request type"),
              std::string::npos)
        << err;
}
