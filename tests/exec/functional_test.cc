/**
 * @file
 * Functional semantics tests for every opcode.
 */

#include <bit>
#include <cmath>

#include <gtest/gtest.h>

#include "exec/functional.hh"
#include "isa/builder.hh"

namespace siwi::exec {
namespace {

using isa::Instruction;
using isa::Opcode;
using isa::SpecialReg;

class Functional : public ::testing::Test
{
  protected:
    Functional() : warp(4)
    {
        for (unsigned l = 0; l < 4; ++l) {
            warp.info(l).valid = true;
            warp.info(l).tid = i32(l);
        }
        mask = LaneMask::firstN(4);
    }

    void
    setF(unsigned lane, RegIdx r, float v)
    {
        warp.setReg(lane, r, std::bit_cast<u32>(v));
    }

    float
    getF(unsigned lane, RegIdx r)
    {
        return std::bit_cast<float>(warp.reg(lane, r));
    }

    Instruction
    bin(Opcode op, RegIdx d, RegIdx a, RegIdx b)
    {
        Instruction i;
        i.op = op;
        i.dst = d;
        i.sa = a;
        i.sb = b;
        return i;
    }

    WarpState warp;
    LaneMask mask;
    mem::MemoryImage memory;
};

TEST_F(Functional, IntegerAluBasics)
{
    warp.setReg(0, 1, u32(i32(7)));
    warp.setReg(0, 2, u32(i32(-3)));
    executeAlu(bin(Opcode::IADD, 0, 1, 2), warp, LaneMask::lane(0));
    EXPECT_EQ(i32(warp.reg(0, 0)), 4);
    executeAlu(bin(Opcode::ISUB, 0, 1, 2), warp, LaneMask::lane(0));
    EXPECT_EQ(i32(warp.reg(0, 0)), 10);
    executeAlu(bin(Opcode::IMUL, 0, 1, 2), warp, LaneMask::lane(0));
    EXPECT_EQ(i32(warp.reg(0, 0)), -21);
    executeAlu(bin(Opcode::IMIN, 0, 1, 2), warp, LaneMask::lane(0));
    EXPECT_EQ(i32(warp.reg(0, 0)), -3);
    executeAlu(bin(Opcode::IMAX, 0, 1, 2), warp, LaneMask::lane(0));
    EXPECT_EQ(i32(warp.reg(0, 0)), 7);
}

TEST_F(Functional, ImmediateOperand)
{
    warp.setReg(0, 1, 10);
    Instruction i = bin(Opcode::IADD, 0, 1, 0);
    i.b_is_imm = true;
    i.imm = -4;
    executeAlu(i, warp, LaneMask::lane(0));
    EXPECT_EQ(i32(warp.reg(0, 0)), 6);
}

TEST_F(Functional, MaskedLanesUntouched)
{
    warp.setReg(0, 1, 5);
    warp.setReg(1, 1, 5);
    warp.setReg(0, 0, 99);
    warp.setReg(1, 0, 99);
    Instruction i = bin(Opcode::IADD, 0, 1, 0);
    i.b_is_imm = true;
    i.imm = 1;
    executeAlu(i, warp, LaneMask::lane(1));
    EXPECT_EQ(warp.reg(0, 0), 99u); // untouched
    EXPECT_EQ(warp.reg(1, 0), 6u);
}

TEST_F(Functional, ShiftsAndLogic)
{
    warp.setReg(0, 1, 0xff00ff00u);
    warp.setReg(0, 2, 4);
    executeAlu(bin(Opcode::SHL, 0, 1, 2), warp, LaneMask::lane(0));
    EXPECT_EQ(warp.reg(0, 0), 0xf00ff000u);
    executeAlu(bin(Opcode::SHR, 0, 1, 2), warp, LaneMask::lane(0));
    EXPECT_EQ(warp.reg(0, 0), 0x0ff00ff0u);
    warp.setReg(0, 1, u32(i32(-16)));
    executeAlu(bin(Opcode::SRA, 0, 1, 2), warp, LaneMask::lane(0));
    EXPECT_EQ(i32(warp.reg(0, 0)), -1);
    warp.setReg(0, 1, 0b1100);
    warp.setReg(0, 2, 0b1010);
    executeAlu(bin(Opcode::AND, 0, 1, 2), warp, LaneMask::lane(0));
    EXPECT_EQ(warp.reg(0, 0), 0b1000u);
    executeAlu(bin(Opcode::OR, 0, 1, 2), warp, LaneMask::lane(0));
    EXPECT_EQ(warp.reg(0, 0), 0b1110u);
    executeAlu(bin(Opcode::XOR, 0, 1, 2), warp, LaneMask::lane(0));
    EXPECT_EQ(warp.reg(0, 0), 0b0110u);
    executeAlu(bin(Opcode::NOT, 0, 1, 0), warp, LaneMask::lane(0));
    EXPECT_EQ(warp.reg(0, 0), ~u32(0b1100));
}

TEST_F(Functional, Compares)
{
    warp.setReg(0, 1, u32(i32(-2)));
    warp.setReg(0, 2, u32(i32(3)));
    auto run = [&](Opcode op) {
        executeAlu(bin(op, 0, 1, 2), warp, LaneMask::lane(0));
        return warp.reg(0, 0);
    };
    EXPECT_EQ(run(Opcode::ISETLT), 1u);
    EXPECT_EQ(run(Opcode::ISETLE), 1u);
    EXPECT_EQ(run(Opcode::ISETEQ), 0u);
    EXPECT_EQ(run(Opcode::ISETNE), 1u);
    EXPECT_EQ(run(Opcode::ISETGE), 0u);
    EXPECT_EQ(run(Opcode::ISETGT), 0u);
}

TEST_F(Functional, Select)
{
    warp.setReg(0, 1, 1);
    warp.setReg(0, 2, 100);
    warp.setReg(0, 3, 200);
    Instruction i;
    i.op = Opcode::SEL;
    i.dst = 0;
    i.sa = 1;
    i.sb = 2;
    i.sc = 3;
    executeAlu(i, warp, LaneMask::lane(0));
    EXPECT_EQ(warp.reg(0, 0), 100u);
    warp.setReg(0, 1, 0);
    executeAlu(i, warp, LaneMask::lane(0));
    EXPECT_EQ(warp.reg(0, 0), 200u);
}

TEST_F(Functional, FloatOps)
{
    setF(0, 1, 2.5f);
    setF(0, 2, -1.5f);
    executeAlu(bin(Opcode::FADD, 0, 1, 2), warp, LaneMask::lane(0));
    EXPECT_FLOAT_EQ(getF(0, 0), 1.0f);
    executeAlu(bin(Opcode::FMUL, 0, 1, 2), warp, LaneMask::lane(0));
    EXPECT_FLOAT_EQ(getF(0, 0), -3.75f);
    executeAlu(bin(Opcode::FMIN, 0, 1, 2), warp, LaneMask::lane(0));
    EXPECT_FLOAT_EQ(getF(0, 0), -1.5f);
    executeAlu(bin(Opcode::FMAX, 0, 1, 2), warp, LaneMask::lane(0));
    EXPECT_FLOAT_EQ(getF(0, 0), 2.5f);

    Instruction mad;
    mad.op = Opcode::FMAD;
    mad.dst = 0;
    mad.sa = 1;
    mad.sb = 2;
    mad.sc = 3;
    setF(0, 3, 10.0f);
    executeAlu(mad, warp, LaneMask::lane(0));
    EXPECT_FLOAT_EQ(getF(0, 0), 2.5f * -1.5f + 10.0f);

    executeAlu(bin(Opcode::FABS, 0, 2, 0), warp, LaneMask::lane(0));
    EXPECT_FLOAT_EQ(getF(0, 0), 1.5f);
    executeAlu(bin(Opcode::FNEG, 0, 1, 0), warp, LaneMask::lane(0));
    EXPECT_FLOAT_EQ(getF(0, 0), -2.5f);
}

TEST_F(Functional, Conversions)
{
    warp.setReg(0, 1, u32(i32(-7)));
    executeAlu(bin(Opcode::I2F, 0, 1, 0), warp, LaneMask::lane(0));
    EXPECT_FLOAT_EQ(getF(0, 0), -7.0f);
    setF(0, 1, 3.9f);
    executeAlu(bin(Opcode::F2I, 0, 1, 0), warp, LaneMask::lane(0));
    EXPECT_EQ(i32(warp.reg(0, 0)), 3); // truncation
    setF(0, 1, -3.9f);
    executeAlu(bin(Opcode::F2I, 0, 1, 0), warp, LaneMask::lane(0));
    EXPECT_EQ(i32(warp.reg(0, 0)), -3);
}

TEST_F(Functional, SfuOps)
{
    setF(0, 1, 4.0f);
    executeAlu(bin(Opcode::RCP, 0, 1, 0), warp, LaneMask::lane(0));
    EXPECT_FLOAT_EQ(getF(0, 0), 0.25f);
    executeAlu(bin(Opcode::RSQ, 0, 1, 0), warp, LaneMask::lane(0));
    EXPECT_FLOAT_EQ(getF(0, 0), 0.5f);
    executeAlu(bin(Opcode::SQRT, 0, 1, 0), warp, LaneMask::lane(0));
    EXPECT_FLOAT_EQ(getF(0, 0), 2.0f);
    executeAlu(bin(Opcode::EXP2, 0, 1, 0), warp, LaneMask::lane(0));
    EXPECT_FLOAT_EQ(getF(0, 0), 16.0f);
    executeAlu(bin(Opcode::LOG2, 0, 1, 0), warp, LaneMask::lane(0));
    EXPECT_FLOAT_EQ(getF(0, 0), 2.0f);
    setF(0, 1, 0.0f);
    executeAlu(bin(Opcode::SIN, 0, 1, 0), warp, LaneMask::lane(0));
    EXPECT_FLOAT_EQ(getF(0, 0), 0.0f);
    executeAlu(bin(Opcode::COS, 0, 1, 0), warp, LaneMask::lane(0));
    EXPECT_FLOAT_EQ(getF(0, 0), 1.0f);
}

TEST_F(Functional, SpecialRegisters)
{
    warp.info(2).tid = 42;
    warp.info(2).ctaid = 3;
    warp.info(2).gtid = 1066;
    warp.info(2).lane = 2;
    Instruction i;
    i.op = Opcode::S2R;
    i.dst = 0;
    i.sreg = SpecialReg::TID;
    executeAlu(i, warp, LaneMask::lane(2));
    EXPECT_EQ(warp.reg(2, 0), 42u);
    i.sreg = SpecialReg::GTID;
    executeAlu(i, warp, LaneMask::lane(2));
    EXPECT_EQ(warp.reg(2, 0), 1066u);
    i.sreg = SpecialReg::LANE;
    executeAlu(i, warp, LaneMask::lane(2));
    EXPECT_EQ(warp.reg(2, 0), 2u);
}

TEST_F(Functional, BranchEvaluation)
{
    Instruction bnz;
    bnz.op = Opcode::BNZ;
    bnz.sa = 1;
    bnz.target = 0;
    warp.setReg(0, 1, 0);
    warp.setReg(1, 1, 5);
    warp.setReg(2, 1, 0);
    warp.setReg(3, 1, 1);
    LaneMask taken = evalBranch(bnz, warp, mask);
    EXPECT_EQ(taken.bits(), 0b1010u);

    Instruction bz = bnz;
    bz.op = Opcode::BZ;
    EXPECT_EQ(evalBranch(bz, warp, mask).bits(), 0b0101u);

    Instruction bra;
    bra.op = Opcode::BRA;
    bra.target = 0;
    EXPECT_EQ(evalBranch(bra, warp, mask), mask);
}

TEST_F(Functional, BranchRespectsMask)
{
    Instruction bnz;
    bnz.op = Opcode::BNZ;
    bnz.sa = 1;
    warp.setReg(0, 1, 1);
    warp.setReg(1, 1, 1);
    LaneMask taken = evalBranch(bnz, warp, LaneMask::lane(0));
    EXPECT_EQ(taken.bits(), 0b0001u);
}

TEST_F(Functional, MemAddressesAndLoadStore)
{
    for (unsigned l = 0; l < 4; ++l)
        warp.setReg(l, 1, 0x1000 + l * 4);
    Instruction st;
    st.op = Opcode::ST;
    st.sa = 1;
    st.sb = 2;
    st.imm = 8;
    for (unsigned l = 0; l < 4; ++l)
        warp.setReg(l, 2, 100 + l);
    executeMem(st, warp, mask, memory);
    for (unsigned l = 0; l < 4; ++l)
        EXPECT_EQ(memory.read32(0x1008 + l * 4), 100 + l);

    Instruction ld;
    ld.op = Opcode::LD;
    ld.dst = 3;
    ld.sa = 1;
    ld.imm = 8;
    executeMem(ld, warp, mask, memory);
    for (unsigned l = 0; l < 4; ++l)
        EXPECT_EQ(warp.reg(l, 3), 100 + l);

    auto reqs = memAddresses(ld, warp, LaneMask(0b0110));
    ASSERT_EQ(reqs.size(), 2u);
    EXPECT_EQ(reqs[0].lane, 1u);
    EXPECT_EQ(reqs[0].addr, 0x100cu);
}

TEST_F(Functional, IabsAndMov)
{
    warp.setReg(0, 1, u32(i32(-9)));
    executeAlu(bin(Opcode::IABS, 0, 1, 0), warp, LaneMask::lane(0));
    EXPECT_EQ(i32(warp.reg(0, 0)), 9);
    executeAlu(bin(Opcode::MOV, 2, 0, 0), warp, LaneMask::lane(0));
    EXPECT_EQ(i32(warp.reg(0, 2)), 9);
    Instruction movi;
    movi.op = Opcode::MOVI;
    movi.dst = 5;
    movi.imm = -1234;
    movi.b_is_imm = true;
    executeAlu(movi, warp, LaneMask::lane(0));
    EXPECT_EQ(i32(warp.reg(0, 5)), -1234);
}

} // namespace
} // namespace siwi::exec
