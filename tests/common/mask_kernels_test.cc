/**
 * @file
 * Unit tests for the batched mask kernels: exhaustive over all
 * small widths against a scalar reference, randomized over full
 * 64-bit masks, plus the MaskLookup equivalence the kernels must
 * preserve (identical pick, counters, and RNG draw sequence as
 * the per-candidate loop they replaced).
 */

#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "common/mask_kernels.hh"
#include "common/rng.hh"
#include "pipeline/mask_lookup.hh"

namespace siwi {
namespace {

/** Scalar reference: one inclusion test at a time. */
u64
referenceBitmap(u64 free, const u64 *masks, size_t n)
{
    u64 bm = 0;
    for (size_t i = 0; i < n; ++i) {
        if ((masks[i] & ~free) == 0)
            bm |= u64(1) << i;
    }
    return bm;
}

/**
 * Exhaustive over every width w <= 8: all 2^w free masks against
 * the full population of 2^w candidate masks at once.
 */
TEST(MaskKernels, ExhaustiveSmallWidths)
{
    for (unsigned width = 0; width <= 8; ++width) {
        const u64 space = u64(1) << width;
        std::vector<u64> masks(space, 0);
        for (u64 m = 0; m < space; ++m)
            masks[size_t(m)] = m;
        for (u64 free = 0; free < space; ++free) {
            // Batch in chunks of 64 (space is 256 at width 8).
            for (size_t base = 0; base < masks.size(); base += 64) {
                size_t n =
                    std::min<size_t>(64, masks.size() - base);
                EXPECT_EQ(maskInclusionBitmap(free,
                                              masks.data() + base,
                                              n),
                          referenceBitmap(free,
                                          masks.data() + base, n))
                    << "width " << width << " free " << free
                    << " base " << base;
            }
        }
    }
}

TEST(MaskKernels, RandomizedFullWidth)
{
    Rng rng(3);
    for (int round = 0; round < 2000; ++round) {
        u64 free = rng.next();
        size_t n = rng.below(65);
        std::vector<u64> masks(n);
        for (u64 &m : masks) {
            switch (rng.below(4)) {
              case 0:
                m = rng.next();
                break;
              case 1:
                // Guaranteed subset of free: must always fit.
                m = rng.next() & free;
                break;
              case 2:
                m = 0;
                break;
              default:
                m = ~u64(0);
                break;
            }
        }
        EXPECT_EQ(maskInclusionBitmap(free, masks.data(), n),
                  referenceBitmap(free, masks.data(), n))
            << "round " << round;
        std::vector<u8> counts(n);
        maskPopcounts(masks.data(), n, counts.data());
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(counts[i], std::popcount(masks[i]));
    }
}

TEST(MaskKernels, EdgeCases)
{
    EXPECT_EQ(maskInclusionBitmap(0, nullptr, 0), 0u);
    u64 zero = 0, full = ~u64(0);
    // The empty mask fits in anything, the full mask only in full.
    EXPECT_EQ(maskInclusionBitmap(0, &zero, 1), 1u);
    EXPECT_EQ(maskInclusionBitmap(0, &full, 1), 0u);
    EXPECT_EQ(maskInclusionBitmap(full, &full, 1), 1u);
    // All 64 result bits, including bit 63.
    std::vector<u64> masks(64, 0);
    EXPECT_EQ(maskInclusionBitmap(0, masks.data(), 64), ~u64(0));
    masks.assign(64, full);
    EXPECT_EQ(maskInclusionBitmap(1, masks.data(), 64), 0u);
}

/**
 * The batched pick must replay the scalar algorithm exactly: same
 * selections, same examined counts, same RNG consumption. This
 * reference reimplements the original per-candidate loop with an
 * identically-seeded RNG and cross-checks long randomized runs
 * (any divergence in the draw sequence desynchronizes every later
 * tie-break, so a single run covers thousands of decisions).
 */
TEST(MaskKernels, LookupMatchesScalarReference)
{
    const unsigned num_warps = 16;
    for (unsigned sets : {1u, 2u, 4u}) {
        pipeline::MaskLookup lookup(num_warps, sets, 77);
        Rng ref_rng(77);
        Rng gen(500 + sets);
        u64 ref_examined = 0;
        for (int round = 0; round < 3000; ++round) {
            WarpId prim = WarpId(gen.below(num_warps));
            LaneMask free(gen.next());
            std::vector<pipeline::LookupCandidate> cands(
                gen.below(12));
            for (size_t i = 0; i < cands.size(); ++i) {
                cands[i].key = u32(i);
                cands[i].warp = WarpId(gen.below(num_warps));
                // Small popcount range provokes count ties, which
                // is what exercises the RNG stream.
                cands[i].mask =
                    LaneMask(gen.next() & gen.next() &
                             gen.next());
                cands[i].same_unit = gen.below(2) != 0;
                cands[i].other_unit_free = gen.below(4) == 0;
            }

            // Scalar reference with its own RNG stream.
            std::optional<size_t> ref;
            unsigned best_count = 0, ties = 0;
            for (size_t i = 0; i < cands.size(); ++i) {
                const pipeline::LookupCandidate &c = cands[i];
                if (prim % sets != c.warp % sets)
                    continue;
                ++ref_examined;
                bool fits_row =
                    c.same_unit && c.mask.subsetOf(free);
                if (!fits_row && !c.other_unit_free)
                    continue;
                unsigned count = c.mask.count();
                if (!ref || count > best_count) {
                    ref = i;
                    best_count = count;
                    ties = 1;
                } else if (count == best_count) {
                    ++ties;
                    if (ref_rng.below(ties) == 0)
                        ref = i;
                }
            }

            EXPECT_EQ(lookup.pick(prim, free, cands), ref)
                << "sets " << sets << " round " << round;
        }
        EXPECT_EQ(lookup.entriesExamined(), ref_examined);
        EXPECT_EQ(lookup.searchesPerformed(), 3000u);
    }
}

} // namespace
} // namespace siwi
