/**
 * @file
 * Determinism and range tests for the xorshift RNG.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace siwi {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 16; ++i)
        any_diff |= a.next() != b.next();
    EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowInRange)
{
    Rng r(99);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        i64 v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        float v = r.uniform();
        EXPECT_GE(v, 0.0f);
        EXPECT_LT(v, 1.0f);
    }
}

TEST(Rng, UniformBounds)
{
    Rng r(8);
    for (int i = 0; i < 1000; ++i) {
        float v = r.uniform(2.0f, 4.0f);
        EXPECT_GE(v, 2.0f);
        EXPECT_LT(v, 4.0f);
    }
}

TEST(Rng, ZeroSeedWorks)
{
    Rng r(0);
    EXPECT_NE(r.next(), 0u);
}

} // namespace
} // namespace siwi
