/**
 * @file
 * Bit-utility tests (log2, bit reversal for XorRev shuffling).
 */

#include <gtest/gtest.h>

#include "common/bits.hh"

namespace siwi {
namespace {

TEST(Bits, Log2Ceil)
{
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(2), 1u);
    EXPECT_EQ(log2Ceil(3), 2u);
    EXPECT_EQ(log2Ceil(4), 2u);
    EXPECT_EQ(log2Ceil(5), 3u);
    EXPECT_EQ(log2Ceil(64), 6u);
    EXPECT_EQ(log2Ceil(65), 7u);
}

TEST(Bits, Log2Floor)
{
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(2), 1u);
    EXPECT_EQ(log2Floor(3), 1u);
    EXPECT_EQ(log2Floor(64), 6u);
    EXPECT_EQ(log2Floor(127), 6u);
}

TEST(Bits, IsPow2)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_TRUE(isPow2(64));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(3));
    EXPECT_FALSE(isPow2(96));
}

TEST(Bits, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(4, 4), 1u);
    EXPECT_EQ(divCeil(5, 4), 2u);
    EXPECT_EQ(divCeil(128, 10), 13u);
}

TEST(Bits, BitReverseKnown)
{
    EXPECT_EQ(bitReverse(0b001, 3), 0b100u);
    EXPECT_EQ(bitReverse(0b011, 3), 0b110u);
    EXPECT_EQ(bitReverse(0b100, 3), 0b001u);
    EXPECT_EQ(bitReverse(0, 6), 0u);
    EXPECT_EQ(bitReverse(0b111111, 6), 0b111111u);
}

TEST(Bits, BitReverseIsInvolution)
{
    for (u64 x = 0; x < 64; ++x)
        EXPECT_EQ(bitReverse(bitReverse(x, 6), 6), x);
}

TEST(Bits, BitReverseIsBijection)
{
    u64 seen = 0;
    for (u64 x = 0; x < 32; ++x)
        seen |= u64(1) << bitReverse(x, 5);
    EXPECT_EQ(seen, 0xffffffffull);
}

} // namespace
} // namespace siwi
