/**
 * @file
 * FIPS 180-4 known-answer vectors for the cache-key hash. The
 * serve layer's content addressing rests on this implementation
 * being exactly SHA-256, so the official test vectors (empty
 * string, "abc", the two-block standard message) plus padding
 * boundary cases are pinned here.
 */

#include <string>

#include <gtest/gtest.h>

#include "common/sha256.hh"

using namespace siwi;

TEST(Sha256, FipsKnownAnswers)
{
    EXPECT_EQ(sha256Hex(""),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e464"
              "9b934ca495991b7852b855");
    EXPECT_EQ(sha256Hex("abc"),
              "ba7816bf8f01cfea414140de5dae2223b00361a396"
              "177a9cb410ff61f20015ad");
    EXPECT_EQ(sha256Hex("abcdbcdecdefdefgefghfghighijhijkijkl"
                        "jklmklmnlmnomnopnopq"),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964"
              "ff2167f6ecedd419db06c1");
}

TEST(Sha256, PaddingBoundaries)
{
    // 55, 56 and 64 bytes straddle the length-field boundary of
    // the final block (one- vs two-block padding).
    EXPECT_EQ(sha256Hex(std::string(55, 'a')),
              "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5"
              "258e241c9f1e910f734318");
    EXPECT_EQ(sha256Hex(std::string(56, 'a')),
              "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1b"
              "de7090ef7970686ec6738a");
    EXPECT_EQ(sha256Hex(std::string(64, 'a')),
              "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db4"
              "3d0ba5997337df154668eb");
}

TEST(Sha256, OneMillionA)
{
    EXPECT_EQ(sha256Hex(std::string(1000000, 'a')),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a4"
              "97200e046d39ccc7112cd0");
}

TEST(Sha256, RawDigestMatchesHex)
{
    auto digest = sha256("abc");
    std::string hex;
    for (u8 b : digest) {
        static const char k[] = "0123456789abcdef";
        hex += k[b >> 4];
        hex += k[b & 0xf];
    }
    EXPECT_EQ(hex, sha256Hex("abc"));
}
