/**
 * @file
 * Unit tests for LaneMask set algebra.
 */

#include <gtest/gtest.h>

#include "common/lane_mask.hh"

namespace siwi {
namespace {

TEST(LaneMask, DefaultEmpty)
{
    LaneMask m;
    EXPECT_TRUE(m.none());
    EXPECT_FALSE(m.any());
    EXPECT_EQ(m.count(), 0u);
}

TEST(LaneMask, FirstN)
{
    EXPECT_EQ(LaneMask::firstN(0).bits(), 0u);
    EXPECT_EQ(LaneMask::firstN(1).bits(), 1u);
    EXPECT_EQ(LaneMask::firstN(4).bits(), 0xfu);
    EXPECT_EQ(LaneMask::firstN(32).bits(), 0xffffffffull);
    EXPECT_EQ(LaneMask::firstN(64).bits(), ~u64(0));
}

TEST(LaneMask, SetClearTest)
{
    LaneMask m;
    m.set(5);
    m.set(63);
    EXPECT_TRUE(m.test(5));
    EXPECT_TRUE(m.test(63));
    EXPECT_FALSE(m.test(4));
    EXPECT_EQ(m.count(), 2u);
    m.clear(5);
    EXPECT_FALSE(m.test(5));
    EXPECT_EQ(m.count(), 1u);
}

TEST(LaneMask, SubsetOf)
{
    LaneMask a(0b0110);
    LaneMask b(0b1110);
    EXPECT_TRUE(a.subsetOf(b));
    EXPECT_FALSE(b.subsetOf(a));
    EXPECT_TRUE(a.subsetOf(a));
    EXPECT_TRUE(LaneMask().subsetOf(a));
}

TEST(LaneMask, Intersects)
{
    EXPECT_TRUE(LaneMask(0b0110).intersects(LaneMask(0b0100)));
    EXPECT_FALSE(LaneMask(0b0110).intersects(LaneMask(0b1001)));
    EXPECT_FALSE(LaneMask().intersects(LaneMask(0xff)));
}

TEST(LaneMask, FirstLast)
{
    LaneMask m(0b0110'1000);
    EXPECT_EQ(m.first(), 3u);
    EXPECT_EQ(m.last(), 6u);
    EXPECT_EQ(LaneMask().first(), 64u);
    EXPECT_EQ(LaneMask::lane(63).last(), 63u);
}

TEST(LaneMask, Wave)
{
    LaneMask m = LaneMask::firstN(64);
    EXPECT_EQ(m.wave(0, 8).count(), 8u);
    EXPECT_EQ(m.wave(7, 8).count(), 8u);
    EXPECT_EQ(m.wave(1, 8).first(), 8u);

    LaneMask sparse;
    sparse.set(3);
    sparse.set(40);
    EXPECT_EQ(sparse.wave(0, 32).count(), 1u);
    EXPECT_EQ(sparse.wave(1, 32).first(), 40u);
}

TEST(LaneMask, Operators)
{
    LaneMask a(0b1100), b(0b1010);
    EXPECT_EQ((a & b).bits(), 0b1000u);
    EXPECT_EQ((a | b).bits(), 0b1110u);
    EXPECT_EQ((a ^ b).bits(), 0b0110u);
    EXPECT_EQ((~a & LaneMask::firstN(4)).bits(), 0b0011u);
    LaneMask c = a;
    c &= b;
    EXPECT_EQ(c.bits(), 0b1000u);
    c |= a;
    EXPECT_EQ(c.bits(), 0b1100u);
}

TEST(LaneMask, ToString)
{
    LaneMask m;
    m.set(0);
    m.set(2);
    EXPECT_EQ(m.toString(4), "1010");
}

class LaneMaskWaveParam : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(LaneMaskWaveParam, WavesPartitionFullMask)
{
    // Property: the waves of any mask partition it exactly.
    unsigned width = GetParam();
    LaneMask m(0xdeadbeefcafef00dull);
    LaneMask acc;
    for (unsigned w = 0; w < 64 / width; ++w) {
        LaneMask part = m.wave(w, width);
        EXPECT_FALSE(acc.intersects(part));
        acc |= part;
    }
    EXPECT_EQ(acc, m);
}

INSTANTIATE_TEST_SUITE_P(Widths, LaneMaskWaveParam,
                         ::testing::Values(8u, 16u, 32u, 64u));

} // namespace
} // namespace siwi
