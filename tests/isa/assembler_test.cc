/**
 * @file
 * Assembler tests including disassemble/assemble round-trips.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/builder.hh"

namespace siwi::isa {
namespace {

TEST(Assembler, MinimalProgram)
{
    auto res = assemble(".kernel tiny\n    exit\n");
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_EQ(res.program.name(), "tiny");
    EXPECT_EQ(res.program.size(), 1u);
    EXPECT_EQ(res.program.at(0).op, Opcode::EXIT);
}

TEST(Assembler, AllOperandForms)
{
    const char *src = R"(
.kernel forms
    s2r r0, %gtid
    movi r1, #42
    iadd r2, r0, r1
    iadd r2, r0, #-3
    imad r3, r0, r1, r2
    mov r4, r3
    ld r5, [r2+16]
    ld r6, [r2]
    st [r2+4], r5
top:
    bnz r1, top
    bra done
done:
    exit
)";
    auto res = assemble(src);
    ASSERT_TRUE(res.ok()) << res.error;
    const Program &p = res.program;
    EXPECT_EQ(p.at(0).sreg, SpecialReg::GTID);
    EXPECT_EQ(p.at(1).imm, 42);
    EXPECT_FALSE(p.at(2).b_is_imm);
    EXPECT_TRUE(p.at(3).b_is_imm);
    EXPECT_EQ(p.at(3).imm, -3);
    EXPECT_EQ(p.at(6).imm, 16);
    EXPECT_EQ(p.at(7).imm, 0);
    EXPECT_EQ(p.at(9).target, 9u);
    EXPECT_EQ(p.at(10).target, 11u);
}

TEST(Assembler, CommentsAndBlankLines)
{
    auto res = assemble("; leading comment\n\n  exit // trailing\n");
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_EQ(res.program.size(), 1u);
}

TEST(Assembler, HexImmediates)
{
    auto res = assemble("movi r1, #0x10\nexit\n");
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_EQ(res.program.at(0).imm, 16);
}

TEST(Assembler, ReconvAnnotation)
{
    auto res = assemble("top:\nbnz r1, top, !j\nj:\nexit\n");
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_EQ(res.program.at(0).reconv, 1u);
}

TEST(Assembler, SyncPayload)
{
    auto res = assemble("d:\nmovi r0, #1\nsync @d\nexit\n");
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_EQ(res.program.at(1).op, Opcode::SYNC);
    EXPECT_EQ(res.program.at(1).div, 0u);
}

TEST(Assembler, ErrorUnknownMnemonic)
{
    auto res = assemble("frobnicate r1, r2\n");
    EXPECT_FALSE(res.ok());
    EXPECT_NE(res.error.find("line 1"), std::string::npos);
}

TEST(Assembler, ErrorUndefinedLabel)
{
    auto res = assemble("bra nowhere\nexit\n");
    EXPECT_FALSE(res.ok());
}

TEST(Assembler, ErrorRedefinedLabel)
{
    auto res = assemble("a:\nexit\na:\nexit\n");
    EXPECT_FALSE(res.ok());
}

TEST(Assembler, ErrorBadRegister)
{
    auto res = assemble("iadd r64, r0, r1\nexit\n");
    EXPECT_FALSE(res.ok());
}

TEST(Assembler, ErrorTrailingJunk)
{
    auto res = assemble("exit garbage\n");
    EXPECT_FALSE(res.ok());
}

TEST(Assembler, ErrorMissingExit)
{
    auto res = assemble("movi r0, #1\n");
    EXPECT_FALSE(res.ok());
}

TEST(Assembler, DisassembleRoundTrip)
{
    KernelBuilder b("roundtrip");
    Reg c = b.reg(), v = b.reg(), addr = b.reg();
    b.s2r(c, SpecialReg::TID);
    b.movi(addr, 0x1000);
    b.ld(v, addr, 8);
    b.if_(c);
    b.iadd(v, v, Imm(1));
    b.else_();
    b.isub(v, v, Imm(1));
    b.endIf();
    b.st(addr, 8, v);
    Program p1 = b.build();

    auto res = assemble(p1.disassemble());
    ASSERT_TRUE(res.ok()) << res.error;
    const Program &p2 = res.program;
    ASSERT_EQ(p1.size(), p2.size());
    for (Pc pc = 0; pc < p1.size(); ++pc)
        EXPECT_EQ(p1.at(pc).toString(), p2.at(pc).toString())
            << "pc " << pc;
}

TEST(Assembler, NumericLabelFallback)
{
    // Lnn labels resolve to PC nn even without definition, matching
    // the disassembler's naming scheme.
    auto res = assemble("movi r0, #1\nbra L2\nexit\n");
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_EQ(res.program.at(1).target, 2u);
}

} // namespace
} // namespace siwi::isa
