/**
 * @file
 * KernelBuilder structured-control and label tests.
 */

#include <gtest/gtest.h>

#include "isa/builder.hh"

namespace siwi::isa {
namespace {

TEST(Builder, AppendsExitWhenMissing)
{
    KernelBuilder b("k");
    Reg r = b.reg();
    b.movi(r, 1);
    Program p = b.build();
    ASSERT_EQ(p.size(), 2u);
    EXPECT_EQ(p.at(1).op, Opcode::EXIT);
}

TEST(Builder, KeepsTrailingExit)
{
    KernelBuilder b("k");
    b.exit_();
    Program p = b.build();
    EXPECT_EQ(p.size(), 1u);
}

TEST(Builder, RegistersAreSequential)
{
    KernelBuilder b("k");
    EXPECT_EQ(b.reg().idx, 0);
    EXPECT_EQ(b.reg().idx, 1);
    EXPECT_EQ(b.regsAllocated(), 2u);
}

TEST(Builder, IfWithoutElseTargetsJoin)
{
    KernelBuilder b("k");
    Reg c = b.reg(), v = b.reg();
    b.movi(c, 1);
    b.if_(c);
    b.movi(v, 42);
    b.endIf();
    b.movi(v, 7);
    Program p = b.build();
    // movi c; bz c,L; movi v; (join) movi v; exit
    ASSERT_EQ(p.size(), 5u);
    EXPECT_EQ(p.at(1).op, Opcode::BZ);
    EXPECT_EQ(p.at(1).target, 3u);
}

TEST(Builder, IfElseShape)
{
    KernelBuilder b("k");
    Reg c = b.reg(), v = b.reg();
    b.movi(c, 0);
    b.if_(c);
    b.movi(v, 1); // then
    b.else_();
    b.movi(v, 2); // else
    b.endIf();
    Program p = b.build();
    // 0: movi c; 1: bz c,else(4); 2: movi v,1; 3: bra end(5);
    // 4: movi v,2; 5: exit
    ASSERT_EQ(p.size(), 6u);
    EXPECT_EQ(p.at(1).op, Opcode::BZ);
    EXPECT_EQ(p.at(1).target, 4u);
    EXPECT_EQ(p.at(3).op, Opcode::BRA);
    EXPECT_EQ(p.at(3).target, 5u);
}

TEST(Builder, LoopBranchesBack)
{
    KernelBuilder b("k");
    Reg i = b.reg(), c = b.reg();
    b.movi(i, 0);
    b.loop();
    b.iadd(i, i, Imm(1));
    b.isetlt(c, i, Imm(10));
    b.endLoopIf(c);
    Program p = b.build();
    // 0: movi; 1: iadd; 2: isetlt; 3: bnz c,1; 4: exit
    EXPECT_EQ(p.at(3).op, Opcode::BNZ);
    EXPECT_EQ(p.at(3).target, 1u);
}

TEST(Builder, BreakTargetsLoopEnd)
{
    KernelBuilder b("k");
    Reg i = b.reg(), c = b.reg(), brk = b.reg();
    b.movi(i, 0);
    b.loop();
    b.breakIf(brk);
    b.iadd(i, i, Imm(1));
    b.isetlt(c, i, Imm(10));
    b.endLoopIf(c);
    b.movi(i, 99);
    Program p = b.build();
    // break: bnz brk -> instruction after the backward branch
    EXPECT_EQ(p.at(1).op, Opcode::BNZ);
    EXPECT_EQ(p.at(1).target, 5u);
    EXPECT_EQ(p.at(4).op, Opcode::BNZ);
    EXPECT_EQ(p.at(4).target, 1u);
}

TEST(Builder, NestedIfInsideLoop)
{
    KernelBuilder b("k");
    Reg i = b.reg(), c = b.reg(), d = b.reg();
    b.movi(i, 0);
    b.loop();
    b.if_(d);
    b.iadd(i, i, Imm(2));
    b.else_();
    b.iadd(i, i, Imm(1));
    b.endIf();
    b.isetlt(c, i, Imm(10));
    b.endLoopIf(c);
    Program p = b.build();
    EXPECT_TRUE(p.validate().empty());
}

TEST(Builder, RawLabelsForwardAndBackward)
{
    KernelBuilder b("k");
    Reg r = b.reg();
    Label fwd = b.label();
    Label back = b.label();
    b.bind(back);
    b.movi(r, 1);
    b.bnz(r, fwd);
    b.bz(r, back);
    b.bind(fwd);
    b.movi(r, 2);
    Program p = b.build();
    EXPECT_EQ(p.at(1).target, 3u); // forward
    EXPECT_EQ(p.at(2).target, 0u); // backward
}

TEST(Builder, FmoviStoresBitPattern)
{
    KernelBuilder b("k");
    Reg r = b.reg();
    b.fmovi(r, 1.5f);
    Program p = b.build();
    EXPECT_EQ(u32(p.at(0).imm), 0x3fc00000u);
}

TEST(Builder, ValidatesBuiltProgram)
{
    KernelBuilder b("k");
    Reg a = b.reg(), c = b.reg();
    b.movi(a, 3);
    b.if_(c);
    b.iadd(a, a, Imm(1));
    b.endIf();
    Program p = b.build();
    EXPECT_TRUE(p.validate().empty());
}

} // namespace
} // namespace siwi::isa
