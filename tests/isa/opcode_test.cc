/**
 * @file
 * Opcode metadata tests, parameterized over the full opcode set.
 */

#include <gtest/gtest.h>

#include "isa/opcode.hh"

namespace siwi::isa {
namespace {

class AllOpcodes : public ::testing::TestWithParam<unsigned>
{
  protected:
    Opcode op() const { return static_cast<Opcode>(GetParam()); }
};

TEST_P(AllOpcodes, NameRoundTrips)
{
    EXPECT_EQ(opFromName(opName(op())), op());
}

TEST_P(AllOpcodes, NameIsLowerCaseNonEmpty)
{
    auto name = opName(op());
    ASSERT_FALSE(name.empty());
    for (char c : name)
        EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9'));
}

TEST_P(AllOpcodes, UnitClassConsistent)
{
    const OpInfo &info = opInfo(op());
    if (isBranch(op()) || op() == Opcode::SYNC ||
        op() == Opcode::BAR || op() == Opcode::EXIT) {
        EXPECT_EQ(info.unit, UnitClass::CTRL);
    }
    if (isMemory(op())) {
        EXPECT_EQ(info.unit, UnitClass::LSU);
    }
}

TEST_P(AllOpcodes, ControlNeverWritesDst)
{
    if (opInfo(op()).unit == UnitClass::CTRL) {
        EXPECT_FALSE(opInfo(op()).writes_dst);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllOpcodes, ::testing::Range(0u, num_opcodes),
    [](const ::testing::TestParamInfo<unsigned> &info) {
        return std::string(
            opName(static_cast<Opcode>(info.param)));
    });

TEST(Opcode, UnknownNameRejected)
{
    EXPECT_EQ(opFromName("bogus"), Opcode::NumOpcodes);
    EXPECT_EQ(opFromName(""), Opcode::NumOpcodes);
    EXPECT_EQ(opFromName("IADD"), Opcode::NumOpcodes); // case
}

TEST(Opcode, BranchPredicates)
{
    EXPECT_TRUE(isBranch(Opcode::BRA));
    EXPECT_TRUE(isBranch(Opcode::BNZ));
    EXPECT_TRUE(isBranch(Opcode::BZ));
    EXPECT_FALSE(isBranch(Opcode::SYNC));
    EXPECT_FALSE(isCondBranch(Opcode::BRA));
    EXPECT_TRUE(isCondBranch(Opcode::BNZ));
    EXPECT_TRUE(isCondBranch(Opcode::BZ));
}

TEST(Opcode, SpecialRegNames)
{
    for (unsigned i = 0; i < num_special_regs; ++i) {
        SpecialReg sr = static_cast<SpecialReg>(i);
        EXPECT_EQ(sregFromName(sregName(sr)), sr);
    }
    EXPECT_EQ(sregFromName("nope"), SpecialReg::NumSpecialRegs);
}

TEST(Opcode, SfuOpsAreSfuClass)
{
    for (Opcode op : {Opcode::RCP, Opcode::RSQ, Opcode::SQRT,
                      Opcode::SIN, Opcode::COS, Opcode::EXP2,
                      Opcode::LOG2}) {
        EXPECT_EQ(opInfo(op).unit, UnitClass::SFU);
    }
}

} // namespace
} // namespace siwi::isa
