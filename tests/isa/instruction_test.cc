/**
 * @file
 * Instruction formatting / source-register extraction tests.
 */

#include <gtest/gtest.h>

#include "isa/instruction.hh"

namespace siwi::isa {
namespace {

Instruction
makeBin(Opcode op, RegIdx d, RegIdx a, RegIdx b)
{
    Instruction i;
    i.op = op;
    i.dst = d;
    i.sa = a;
    i.sb = b;
    return i;
}

TEST(Instruction, SrcRegsBinary)
{
    Instruction i = makeBin(Opcode::IADD, 1, 2, 3);
    auto srcs = i.srcRegs();
    ASSERT_EQ(srcs.size(), 2u);
    EXPECT_EQ(srcs[0], 2);
    EXPECT_EQ(srcs[1], 3);
}

TEST(Instruction, SrcRegsImmediateSkipsSb)
{
    Instruction i = makeBin(Opcode::IADD, 1, 2, 3);
    i.b_is_imm = true;
    i.imm = 7;
    auto srcs = i.srcRegs();
    ASSERT_EQ(srcs.size(), 1u);
    EXPECT_EQ(srcs[0], 2);
}

TEST(Instruction, SrcRegsTernary)
{
    Instruction i;
    i.op = Opcode::FMAD;
    i.dst = 0;
    i.sa = 1;
    i.sb = 2;
    i.sc = 3;
    auto srcs = i.srcRegs();
    ASSERT_EQ(srcs.size(), 3u);
    EXPECT_EQ(srcs[2], 3);
}

TEST(Instruction, SrcRegsStore)
{
    Instruction i;
    i.op = Opcode::ST;
    i.sa = 4;
    i.sb = 5;
    auto srcs = i.srcRegs();
    ASSERT_EQ(srcs.size(), 2u);
}

TEST(Instruction, SrcRegsCondBranch)
{
    Instruction i;
    i.op = Opcode::BNZ;
    i.sa = 9;
    i.target = 0;
    auto srcs = i.srcRegs();
    ASSERT_EQ(srcs.size(), 1u);
    EXPECT_EQ(srcs[0], 9);
}

TEST(Instruction, SrcRegsNone)
{
    Instruction i;
    i.op = Opcode::BAR;
    EXPECT_TRUE(i.srcRegs().empty());
    i.op = Opcode::MOVI;
    EXPECT_TRUE(i.srcRegs().empty());
}

TEST(Instruction, ToStringForms)
{
    Instruction i = makeBin(Opcode::IADD, 1, 2, 3);
    EXPECT_EQ(i.toString(), "iadd r1, r2, r3");

    i.b_is_imm = true;
    i.imm = -5;
    EXPECT_EQ(i.toString(), "iadd r1, r2, #-5");

    Instruction ld;
    ld.op = Opcode::LD;
    ld.dst = 4;
    ld.sa = 2;
    ld.imm = 16;
    EXPECT_EQ(ld.toString(), "ld r4, [r2+16]");

    Instruction st;
    st.op = Opcode::ST;
    st.sa = 2;
    st.sb = 5;
    st.imm = 0;
    EXPECT_EQ(st.toString(), "st [r2+0], r5");

    Instruction bra;
    bra.op = Opcode::BRA;
    bra.target = 12;
    EXPECT_EQ(bra.toString(), "bra L12");

    Instruction bnz;
    bnz.op = Opcode::BNZ;
    bnz.sa = 1;
    bnz.target = 8;
    EXPECT_EQ(bnz.toString(), "bnz r1, L8");
    bnz.reconv = 10;
    EXPECT_EQ(bnz.toString(), "bnz r1, L8, !L10");

    Instruction sync;
    sync.op = Opcode::SYNC;
    sync.div = 3;
    EXPECT_EQ(sync.toString(), "sync @L3");

    Instruction s2r;
    s2r.op = Opcode::S2R;
    s2r.dst = 0;
    s2r.sreg = SpecialReg::GTID;
    EXPECT_EQ(s2r.toString(), "s2r r0, %gtid");
}

TEST(Instruction, UnitDelegation)
{
    Instruction i;
    i.op = Opcode::LD;
    EXPECT_EQ(i.unit(), UnitClass::LSU);
    i.op = Opcode::SIN;
    EXPECT_EQ(i.unit(), UnitClass::SFU);
    i.op = Opcode::BRA;
    EXPECT_EQ(i.unit(), UnitClass::CTRL);
}

} // namespace
} // namespace siwi::isa
