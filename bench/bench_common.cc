#include "bench_common.hh"

#include <cmath>
#include <cstdio>

namespace siwi::bench {

Cell
runCell(const workloads::Workload &wl, const pipeline::SMConfig &cfg)
{
    workloads::RunResult res = workloads::runWorkload(
        wl, cfg, workloads::SizeClass::Full);
    Cell c;
    c.stats = res.stats;
    c.ipc = res.stats.ipc();
    c.verified = res.verified;
    if (!res.verified) {
        std::fprintf(stderr,
                     "VERIFICATION FAILED: %s on %s: %s\n",
                     wl.name(), pipelineModeName(cfg.mode),
                     res.verify_msg.c_str());
    }
    return c;
}

double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : v)
        acc += std::log(x);
    return std::exp(acc / double(v.size()));
}

namespace {

void
printTable(const std::vector<const workloads::Workload *> &wls,
           const std::vector<std::string> &col_names,
           const std::vector<std::vector<double>> &cols,
           const char *fmt)
{
    std::printf("%-22s", "");
    for (const std::string &n : col_names)
        std::printf("%12s", n.c_str());
    std::printf("\n");

    for (size_t r = 0; r < wls.size(); ++r) {
        std::printf("%-22s", wls[r]->name());
        for (const auto &col : cols)
            std::printf(fmt, col[r]);
        std::printf("\n");
    }

    // Geomean over non-excluded workloads (paper: TMD not counted).
    std::printf("%-22s", "Gmean");
    for (const auto &col : cols) {
        std::vector<double> vals;
        for (size_t r = 0; r < wls.size(); ++r) {
            if (!wls[r]->excludedFromMeans())
                vals.push_back(col[r]);
        }
        std::printf(fmt, geomean(vals));
    }
    std::printf("\n");
}

} // namespace

void
printIpcTable(const std::vector<const workloads::Workload *> &wls,
              const std::vector<std::string> &col_names,
              const std::vector<std::vector<double>> &cols)
{
    printTable(wls, col_names, cols, "%12.2f");
}

void
printRatioTable(const std::vector<const workloads::Workload *> &wls,
                const std::vector<std::string> &col_names,
                const std::vector<std::vector<double>> &cols)
{
    printTable(wls, col_names, cols, "%12.3f");
}

bool
hasFlag(int argc, char **argv, const std::string &flag)
{
    for (int i = 1; i < argc; ++i) {
        if (flag == argv[i])
            return true;
    }
    return false;
}

} // namespace siwi::bench
