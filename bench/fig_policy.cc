/**
 * @file
 * Scheduling-policy study (beyond the paper): the Figure 7
 * machines under every primary scheduling policy of the frontend
 * registry — oldest-first (the paper), loose round-robin,
 * greedy-then-oldest (GTO) and minimum-PC.
 *
 * Prints, per machine, the IPC of each policy and its ratio to
 * oldest-first, over the Figure 7 applications. Oldest-first
 * cells are bit-identical to the fig7 reproduction, so any drift
 * here is a front-end bug, not a policy effect.
 *
 * Flags: --regular (use the regular apps), --machine NAME
 * (default SBI+SWI; repeatable), -j N, --json PATH.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "frontend/registry.hh"
#include "runner/runner.hh"

using namespace siwi;
using namespace siwi::runner;

int
main(int argc, char **argv)
{
    ArgList args(argc, argv);
    bool include_regular = args.flag("--regular");
    RunOptions opts;
    args.intOption("-j", &opts.jobs);
    std::string json_path;
    args.option("--json", &json_path);
    std::vector<std::string> machines =
        args.options("--machine");
    if (!finishArgs(args, "fig_policy"))
        return 2;
    if (machines.empty())
        machines = {"SBI+SWI"};

    std::printf("Scheduling-policy study: primary-scheduler "
                "policies across the Figure 7 applications\n"
                "(oldest = the paper's machines; rr / gto / minpc "
                "are beyond-the-paper variants)\n\n");

    SweepSpec sweep = policySweep(
        include_regular, workloads::SizeClass::Full);
    sweep.filterMachines(machines);
    if (sweep.cellCount() == 0) {
        std::fprintf(stderr, "fig_policy: no such machine\n");
        return 2;
    }
    opts.suite_label = "fig_policy";
    Results res = runSweeps({sweep}, opts);
    const std::string sname = sweep.name;

    for (const MachineSpec &m : sweep.machines) {
        // Columns of this machine: one per policy, labels
        // "<machine>" (oldest) and "<machine>/<policy>".
        std::vector<std::string> cols;
        std::vector<std::string> col_names;
        for (const frontend::PolicyEntry &p :
             frontend::policyRegistry()) {
            std::string label = m.name;
            if (p.kind != frontend::SchedPolicyKind::OldestFirst)
                label += std::string("/") + p.name;
            cols.push_back(std::move(label));
            col_names.push_back(p.name);
        }

        std::printf("=== %s: IPC by policy ===\n", m.name.c_str());
        std::vector<std::vector<double>> ipc_cols;
        std::vector<std::vector<bool>> timed_out;
        for (const std::string &c : cols) {
            SweepColumnData col = sweepColumnData(res, sname, c);
            ipc_cols.push_back(std::move(col.ipc));
            timed_out.push_back(std::move(col.timed_out));
        }
        std::fputs(formatIpcTable(sweepRows(res, sname), col_names,
                                  ipc_cols, &timed_out)
                       .c_str(),
                   stdout);

        std::printf("\n=== %s: speedup vs oldest ===\n",
                    m.name.c_str());
        std::vector<std::string> ratio_names;
        std::vector<std::vector<double>> ratio_cols;
        std::vector<std::vector<bool>> ratio_invalid;
        const std::vector<double> &oldest = ipc_cols[0];
        for (size_t i = 1; i < ipc_cols.size(); ++i) {
            ratio_names.push_back(col_names[i]);
            std::vector<double> r = ipc_cols[i];
            std::vector<bool> inv(r.size(), false);
            for (size_t j = 0; j < r.size(); ++j) {
                // A ratio over a truncated run is meaningless in
                // either position.
                inv[j] = timed_out[0][j] || timed_out[i][j];
                r[j] = oldest[j] != 0.0 ? r[j] / oldest[j] : 0.0;
            }
            ratio_cols.push_back(std::move(r));
            ratio_invalid.push_back(std::move(inv));
        }
        std::fputs(formatRatioTable(sweepRows(res, sname),
                                    ratio_names, ratio_cols,
                                    &ratio_invalid)
                       .c_str(),
                   stdout);
        std::printf("\n");
    }

    return finishBench(res, json_path);
}
