/**
 * @file
 * Figure 2 reproduction: pipeline contents while executing an
 * if-then-else block with 2 warps of 4 threads, under classic SIMT,
 * SBI (with and without reconvergence constraints), SWI, and
 * SBI+SWI.
 *
 * Prints, per cycle, which (warp, pc, mask) issued on which
 * execution group -- the textual equivalent of the paper's colored
 * pipeline diagrams. With --json PATH the issue traces of all five
 * configurations are written as one machine-readable document.
 */

#include <cstdio>
#include <vector>

#include "common/json.hh"
#include "core/siwi.hh"
#include "runner/cli.hh"

using namespace siwi;
using pipeline::PipelineMode;
using pipeline::SMConfig;

namespace {

/**
 * The paper's example: instructions numbered 1..6; the if-branch
 * holds 2..4, the else-branch 5, reconvergence at 6. Odd threads
 * take the if path.
 */
isa::Program
figure2Kernel()
{
    isa::KernelBuilder b("fig2");
    isa::Reg tid = b.reg(), c = b.reg(), v = b.reg();
    b.s2r(tid, isa::SpecialReg::TID);     // "1"
    b.and_(c, tid, isa::Imm(1));
    b.if_(c);
    b.iadd(v, v, isa::Imm(2));            // "2"
    b.iadd(v, v, isa::Imm(3));            // "3"
    b.iadd(v, v, isa::Imm(4));            // "4"
    b.else_();
    b.isub(v, v, isa::Imm(5));            // "5"
    b.endIf();
    b.iadd(v, v, isa::Imm(6));            // "6"
    return b.build();
}

void
runAndPrint(const char *title, SMConfig cfg, Json *trace_doc)
{
    cfg.warp_width = 4;
    cfg.num_warps = 2;
    cfg.mad_width = 4;
    if (cfg.mode == PipelineMode::Baseline) {
        cfg.mad_groups = 2;
    } else {
        cfg.mad_groups = 1;
    }
    cfg.sfu_width = 4;
    cfg.lsu_width = 4;
    cfg.validate();

    core::Kernel kernel = core::Kernel::compile(figure2Kernel());

    mem::MemoryImage memimg;
    pipeline::SM sm(cfg, memimg);
    struct Ev
    {
        Cycle cycle;
        std::string unit;
        WarpId warp;
        Pc pc;
        std::string mask;
        bool secondary;
    };
    std::vector<Ev> evs;
    sm.setTraceHook([&](const pipeline::IssueEvent &e) {
        evs.push_back({e.cycle, std::string(e.unit), e.warp, e.pc,
                       e.mask.toString(4), e.secondary});
    });
    sm.launch(kernel.program(), 2, 4);
    auto st = sm.run(100000);

    std::printf("\n--- %s (%llu cycles, %llu issues) ---\n", title,
                (unsigned long long)st.cycles,
                (unsigned long long)st.instructions);
    std::printf("cycle  unit  sched  warp  pc  lanes(0..3)\n");
    for (const Ev &e : evs) {
        std::printf("%5llu  %-4s  %-5s  w%u    %2u  %s\n",
                    (unsigned long long)e.cycle, e.unit.c_str(),
                    e.secondary ? "sec" : "prim", unsigned(e.warp),
                    e.pc, e.mask.c_str());
    }

    if (!trace_doc)
        return;
    Json jevs = Json::array();
    for (const Ev &e : evs) {
        Json je = Json::object();
        je.set("cycle", Json(e.cycle));
        je.set("unit", Json(e.unit));
        je.set("scheduler",
               Json(e.secondary ? "secondary" : "primary"));
        je.set("warp", Json(unsigned(e.warp)));
        je.set("pc", Json(e.pc));
        je.set("lanes", Json(e.mask));
        jevs.push(std::move(je));
    }
    Json jc = Json::object();
    jc.set("cycles", Json(st.cycles));
    jc.set("issues", Json(st.instructions));
    jc.set("events", std::move(jevs));
    trace_doc->set(title, std::move(jc));
}

} // namespace

int
main(int argc, char **argv)
{
    runner::ArgList args(argc, argv);
    std::string json_path;
    args.option("--json", &json_path);
    if (!runner::finishArgs(args, "fig2_pipeline"))
        return 2;
    Json trace_doc = Json::object();
    Json *trace = json_path.empty() ? nullptr : &trace_doc;

    std::printf("Reproduction of Figure 2: execution pipeline for "
                "an if-then-else block,\n2 warps of 4 threads "
                "(odd threads take the if path).\n");

    runAndPrint("(a) SIMT baseline",
                SMConfig::make(PipelineMode::Baseline), trace);

    {
        SMConfig c = SMConfig::make(PipelineMode::SBI);
        c.sbi_constraints = false;
        runAndPrint("(b) SBI, no reconvergence constraints", c,
                    trace);
    }
    runAndPrint("(c) SBI with constraints",
                SMConfig::make(PipelineMode::SBI), trace);
    runAndPrint("(d) SWI", SMConfig::make(PipelineMode::SWI),
                trace);
    runAndPrint("(e) SBI+SWI",
                SMConfig::make(PipelineMode::SBISWI), trace);

    std::string err;
    if (!json_path.empty() &&
        !trace_doc.writeFile(json_path, 2, &err)) {
        std::fprintf(stderr, "%s\n", err.c_str());
        return 1;
    }
    return 0;
}
