/**
 * @file
 * Figure 2 reproduction: pipeline contents while executing an
 * if-then-else block with 2 warps of 4 threads, under classic SIMT,
 * SBI (with and without reconvergence constraints), SWI, and
 * SBI+SWI.
 *
 * Prints, per cycle, which (warp, pc, mask) issued on which
 * execution group -- the textual equivalent of the paper's colored
 * pipeline diagrams.
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "core/siwi.hh"

using namespace siwi;
using pipeline::PipelineMode;
using pipeline::SMConfig;

namespace {

/**
 * The paper's example: instructions numbered 1..6; the if-branch
 * holds 2..4, the else-branch 5, reconvergence at 6. Odd threads
 * take the if path.
 */
isa::Program
figure2Kernel()
{
    isa::KernelBuilder b("fig2");
    isa::Reg tid = b.reg(), c = b.reg(), v = b.reg();
    b.s2r(tid, isa::SpecialReg::TID);     // "1"
    b.and_(c, tid, isa::Imm(1));
    b.if_(c);
    b.iadd(v, v, isa::Imm(2));            // "2"
    b.iadd(v, v, isa::Imm(3));            // "3"
    b.iadd(v, v, isa::Imm(4));            // "4"
    b.else_();
    b.isub(v, v, isa::Imm(5));            // "5"
    b.endIf();
    b.iadd(v, v, isa::Imm(6));            // "6"
    return b.build();
}

void
runAndPrint(const char *title, SMConfig cfg)
{
    cfg.warp_width = 4;
    cfg.num_warps = cfg.num_pools == 2 ? 2 : 2;
    cfg.mad_width = 4;
    if (cfg.mode == PipelineMode::Baseline) {
        cfg.mad_groups = 2;
    } else {
        cfg.mad_groups = 1;
    }
    cfg.sfu_width = 4;
    cfg.lsu_width = 4;
    cfg.validate();

    core::Kernel kernel = core::Kernel::compile(figure2Kernel());

    mem::MemoryImage memimg;
    pipeline::SM sm(cfg, memimg);
    struct Ev
    {
        Cycle cycle;
        std::string unit;
        WarpId warp;
        Pc pc;
        std::string mask;
        bool secondary;
    };
    std::vector<Ev> evs;
    sm.setTraceHook([&](const pipeline::IssueEvent &e) {
        evs.push_back({e.cycle, e.unit, e.warp, e.pc,
                       e.mask.toString(4), e.secondary});
    });
    sm.launch(kernel.program(), 2, 4);
    auto st = sm.run(100000);

    std::printf("\n--- %s (%llu cycles, %llu issues) ---\n", title,
                (unsigned long long)st.cycles,
                (unsigned long long)st.instructions);
    std::printf("cycle  unit  sched  warp  pc  lanes(0..3)\n");
    for (const Ev &e : evs) {
        std::printf("%5llu  %-4s  %-5s  w%u    %2u  %s\n",
                    (unsigned long long)e.cycle, e.unit.c_str(),
                    e.secondary ? "sec" : "prim", unsigned(e.warp),
                    e.pc, e.mask.c_str());
    }
}

} // namespace

int
main()
{
    std::printf("Reproduction of Figure 2: execution pipeline for "
                "an if-then-else block,\n2 warps of 4 threads "
                "(odd threads take the if path).\n");

    runAndPrint("(a) SIMT baseline",
                SMConfig::make(PipelineMode::Baseline));

    {
        SMConfig c = SMConfig::make(PipelineMode::SBI);
        c.sbi_constraints = false;
        runAndPrint("(b) SBI, no reconvergence constraints", c);
    }
    runAndPrint("(c) SBI with constraints",
                SMConfig::make(PipelineMode::SBI));
    runAndPrint("(d) SWI", SMConfig::make(PipelineMode::SWI));
    runAndPrint("(e) SBI+SWI",
                SMConfig::make(PipelineMode::SBISWI));
    return 0;
}
