/**
 * @file
 * Table 3 reproduction: storage requirements of each technique.
 * With --json PATH the inventory is also written as a
 * machine-readable document.
 */

#include <cstdio>

#include "common/json.hh"
#include "core/siwi.hh"
#include "runner/cli.hh"

using namespace siwi;

int
main(int argc, char **argv)
{
    runner::ArgList args(argc, argv);
    std::string json_path;
    args.option("--json", &json_path);
    if (!runner::finishArgs(args, "table3_storage"))
        return 2;

    std::printf("Reproduction of Table 3: hardware requirements "
                "per configuration\n(1536-thread SM geometry, as "
                "in the paper's area study)\n\n");
    std::printf("%s", core::formatInventoryTable().c_str());
    std::printf("\nPaper Table 3 reference geometries:\n"
                "  Scoreboard:    2x24x48 | 24x144 | 2x24x48 | "
                "24x288 bits\n"
                "  Warp pool/HCT: 2x24x64 | 24x201 | 24x104  | "
                "24x201 banked\n"
                "  Stack/CCT:     144x256 | 128x104 x3\n"
                "  Insn buffer:   48x64 | 48x64 | 24x64 dual | "
                "48x64 dual\n");

    if (!json_path.empty()) {
        Json doc = Json::object();
        for (pipeline::PipelineMode m :
             {pipeline::PipelineMode::Baseline,
              pipeline::PipelineMode::SBI,
              pipeline::PipelineMode::SWI,
              pipeline::PipelineMode::SBISWI}) {
            Json items = Json::array();
            for (const core::StorageItem &it :
                 core::hardwareInventory(m)) {
                Json ji = Json::object();
                ji.set("component", Json(it.component));
                ji.set("geometry", Json(it.geometry));
                ji.set("bits", Json(it.bits));
                ji.set("note", Json(it.note));
                items.push(std::move(ji));
            }
            Json jm = Json::object();
            jm.set("items", std::move(items));
            jm.set("total_bits",
                   Json(core::inventoryTotalBits(m)));
            doc.set(pipeline::pipelineModeName(m),
                    std::move(jm));
        }
        std::string err;
        if (!doc.writeFile(json_path, 2, &err)) {
            std::fprintf(stderr, "%s\n", err.c_str());
            return 1;
        }
    }
    return 0;
}
