/**
 * @file
 * Table 3 reproduction: storage requirements of each technique.
 */

#include <cstdio>

#include "core/siwi.hh"

using namespace siwi;

int
main()
{
    std::printf("Reproduction of Table 3: hardware requirements "
                "per configuration\n(1536-thread SM geometry, as "
                "in the paper's area study)\n\n");
    std::printf("%s", core::formatInventoryTable().c_str());
    std::printf("\nPaper Table 3 reference geometries:\n"
                "  Scoreboard:    2x24x48 | 24x144 | 2x24x48 | "
                "24x288 bits\n"
                "  Warp pool/HCT: 2x24x64 | 24x201 | 24x104  | "
                "24x201 banked\n"
                "  Stack/CCT:     144x256 | 128x104 x3\n"
                "  Insn buffer:   48x64 | 48x64 | 24x64 dual | "
                "48x64 dual\n");
    return 0;
}
