/**
 * @file
 * Component microbenchmarks (google-benchmark): HCT sorter network,
 * CCT insertion, mask-inclusion lookup, scoreboard checks, cache
 * accesses, and end-to-end simulator throughput.
 */

#include <benchmark/benchmark.h>

#include "core/siwi.hh"
#include "divergence/hct.hh"
#include "mem/cache.hh"
#include "pipeline/mask_lookup.hh"
#include "pipeline/scoreboard.hh"

using namespace siwi;

namespace {

void
BM_HctSorter(benchmark::State &state)
{
    divergence::SorterEntry a, b, c;
    a.pc = 7;
    a.mask = LaneMask(0x0f);
    a.valid = true;
    a.id = 1;
    b.pc = 3;
    b.mask = LaneMask(0xf0);
    b.valid = true;
    b.id = 2;
    c.pc = 7;
    c.mask = LaneMask(0xf00);
    c.valid = true;
    c.id = 3;
    for (auto _ : state) {
        auto r = divergence::hctSort(a, b, c);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_HctSorter);

void
BM_MaskLookup(benchmark::State &state)
{
    unsigned sets = unsigned(state.range(0));
    pipeline::MaskLookup ml(16, sets);
    std::vector<pipeline::LookupCandidate> cands;
    Rng rng(1);
    for (WarpId w = 0; w < 16; ++w) {
        pipeline::LookupCandidate c;
        c.warp = w;
        c.mask = LaneMask(rng.next() & 0xffffull);
        c.same_unit = true;
        c.other_unit_free = (w % 3) == 0;
        cands.push_back(c);
    }
    for (auto _ : state) {
        auto r = ml.pick(3, LaneMask(0xff00ull), cands);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_MaskLookup)->Arg(1)->Arg(2)->Arg(8)->Arg(16);

void
BM_ScoreboardConflictCheck(benchmark::State &state)
{
    pipeline::Scoreboard sb(16, 6);
    for (unsigned i = 0; i < 6; ++i)
        sb.allocate(3, RegIdx(i), LaneMask(0xffull << i));
    isa::Instruction inst;
    inst.op = isa::Opcode::IMAD;
    inst.dst = 7;
    inst.sa = 2;
    inst.sb = 4;
    inst.sc = 5;
    for (auto _ : state) {
        bool c = sb.conflicts(3, inst, LaneMask(0xf0f0ull));
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_ScoreboardConflictCheck);

void
BM_CacheAccess(benchmark::State &state)
{
    mem::L1Cache cache{mem::CacheConfig{}};
    for (Addr a = 0; a < 48 * 1024; a += 128)
        cache.fill(a);
    Addr a = 0;
    for (auto _ : state) {
        bool hit = cache.access(a % (48 * 1024));
        benchmark::DoNotOptimize(hit);
        a += 128;
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_SimulatorThroughput(benchmark::State &state)
{
    // End-to-end simulated-cycles-per-second on a divergent kernel.
    auto mode = state.range(0) == 0 ? pipeline::PipelineMode::Baseline
                                    : pipeline::PipelineMode::SBISWI;
    const workloads::Workload *wl =
        workloads::findWorkload("Eigenvalues");
    u64 cycles = 0;
    for (auto _ : state) {
        auto res = workloads::runWorkload(
            *wl, pipeline::SMConfig::make(mode),
            workloads::SizeClass::Tiny);
        cycles += res.stats.cycles;
        benchmark::DoNotOptimize(res.stats.cycles);
    }
    state.counters["sim_cycles/s"] = benchmark::Counter(
        double(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorThroughput)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
