/**
 * @file
 * Figure 9 reproduction: slowdown of set-associative SWI mask
 * lookup relative to the fully-associative CAM, on the irregular
 * applications.
 *
 * Paper: even direct-mapped achieves >= 85% of fully-associative on
 * irregular apps (96% on regular); direct-mapped SWI still speeds
 * the baseline up by 26% (vs 34% fully associative).
 */

#include <cstdio>

#include "bench_common.hh"

using namespace siwi;
using namespace siwi::bench;
using pipeline::PipelineMode;
using pipeline::SMConfig;

int
main(int argc, char **argv)
{
    std::printf("Reproduction of Figure 9: SWI lookup "
                "associativity, slowdown vs fully-associative\n");
    std::printf("(16 warps per pool: sets 1/2/8/16 stand in for "
                "the paper's full/11-way/3-way/direct)\n\n");

    bool include_regular = hasFlag(argc, argv, "--regular");
    auto wls = include_regular ? workloads::regularWorkloads()
                               : workloads::irregularWorkloads();

    struct Variant
    {
        const char *name;
        unsigned sets;
    };
    const Variant variants[] = {{"11-way", 2},
                                {"3-way", 8},
                                {"DirectMap", 16}};

    std::vector<double> full;
    std::vector<double> baseline;
    for (const workloads::Workload *wl : wls) {
        SMConfig cfg = SMConfig::make(PipelineMode::SWI);
        cfg.lookup_sets = 1;
        full.push_back(runCell(*wl, cfg).ipc);
        baseline.push_back(
            runCell(*wl,
                    SMConfig::make(PipelineMode::Baseline))
                .ipc);
    }

    std::vector<std::string> names;
    std::vector<std::vector<double>> cols;
    std::vector<std::vector<double>> ipcs;
    for (const Variant &v : variants) {
        names.push_back(v.name);
        std::vector<double> col, ipccol;
        for (size_t i = 0; i < wls.size(); ++i) {
            SMConfig cfg = SMConfig::make(PipelineMode::SWI);
            cfg.lookup_sets = v.sets;
            double ipc = runCell(*wls[i], cfg).ipc;
            col.push_back(ipc / full[i]);
            ipccol.push_back(ipc);
        }
        cols.push_back(col);
        ipcs.push_back(ipccol);
    }

    printRatioTable(wls, names, cols);

    // Speedup over baseline per associativity (paper: 34% -> 26%).
    std::printf("\nSWI speedup vs Baseline by associativity "
                "(gmean, TMD excluded):\n");
    auto gm = [&](const std::vector<double> &v) {
        std::vector<double> kept;
        for (size_t i = 0; i < wls.size(); ++i) {
            if (!wls[i]->excludedFromMeans())
                kept.push_back(v[i]);
        }
        return geomean(kept);
    };
    std::printf("  %-12s %+6.1f%%\n", "full",
                100.0 * (gm(full) / gm(baseline) - 1.0));
    for (size_t v = 0; v < 3; ++v) {
        std::printf("  %-12s %+6.1f%%\n", names[v].c_str(),
                    100.0 * (gm(ipcs[v]) / gm(baseline) - 1.0));
    }
    return 0;
}
