/**
 * @file
 * Figure 9 reproduction: slowdown of set-associative SWI mask
 * lookup relative to the fully-associative CAM, executed
 * concurrently by the experiment runner.
 *
 * Paper: even direct-mapped achieves >= 85% of fully-associative on
 * irregular apps (96% on regular); direct-mapped SWI still speeds
 * the baseline up by 26% (vs 34% fully associative).
 *
 * Flags: --regular (use the regular apps), -j N, --json PATH.
 */

#include <cstdio>

#include "runner/runner.hh"

using namespace siwi;
using namespace siwi::runner;

int
main(int argc, char **argv)
{
    ArgList args(argc, argv);
    bool include_regular = args.flag("--regular");
    RunOptions opts;
    args.intOption("-j", &opts.jobs);
    std::string json_path;
    args.option("--json", &json_path);
    if (!finishArgs(args, "fig9_associativity"))
        return 2;

    std::printf("Reproduction of Figure 9: SWI lookup "
                "associativity, slowdown vs fully-associative\n");
    std::printf("(16 warps per pool: sets 1/2/8/16 stand in for "
                "the paper's full/11-way/3-way/direct)\n\n");

    const std::vector<SweepSpec> sweeps = {fig9Sweep(
        include_regular, workloads::SizeClass::Full)};
    opts.suite_label = "fig9";
    Results res = runSweeps(sweeps, opts);

    const std::string sweep = sweeps[0].name;
    std::vector<TableRow> rows = sweepRows(res, sweep);
    std::vector<double> full =
        sweepColumn(res, sweep, "SWI-full");
    std::vector<double> baseline =
        sweepColumn(res, sweep, "Baseline");

    const std::vector<std::string> variants = {
        "SWI-11way", "SWI-3way", "SWI-direct"};
    std::vector<std::vector<double>> slowdown;
    for (const std::string &v : variants) {
        std::vector<double> col = sweepColumn(res, sweep, v);
        for (size_t i = 0; i < col.size(); ++i)
            col[i] /= full[i];
        slowdown.push_back(std::move(col));
    }
    std::fputs(
        formatRatioTable(rows, variants, slowdown).c_str(),
        stdout);

    // Speedup over baseline per associativity (paper: 34% -> 26%).
    std::printf("\nSWI speedup vs Baseline by associativity "
                "(gmean, TMD excluded):\n");
    std::vector<bool> excluded;
    for (const TableRow &r : rows)
        excluded.push_back(r.excluded);
    auto gm = [&](const std::vector<double> &v) {
        return geomean(excludeFromMeans(v, excluded));
    };
    double base_gm = gm(baseline);
    std::printf("  %-12s %+6.1f%%\n", "full",
                100.0 * (gm(full) / base_gm - 1.0));
    for (const std::string &v : variants) {
        std::printf(
            "  %-12s %+6.1f%%\n", v.c_str(),
            100.0 * (gm(sweepColumn(res, sweep, v)) / base_gm -
                     1.0));
    }

    return finishBench(res, json_path);
}
