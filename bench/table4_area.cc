/**
 * @file
 * Table 4 reproduction: area of each front-end component and the
 * total overhead relative to a 15.6 mm^2 Fermi SM (40 nm). With
 * --json PATH the per-component areas are also written as a
 * machine-readable document.
 *
 * The per-bit densities are calibrated against the paper's RTL
 * synthesis (see core/area_model.hh and docs/DESIGN.md substitutions);
 * the inventory geometry and all arithmetic are modeled.
 */

#include <cstdio>

#include "common/json.hh"
#include "core/siwi.hh"
#include "runner/cli.hh"

using namespace siwi;

int
main(int argc, char **argv)
{
    runner::ArgList args(argc, argv);
    std::string json_path;
    args.option("--json", &json_path);
    if (!runner::finishArgs(args, "table4_area"))
        return 2;

    std::printf("Reproduction of Table 4: area of each component "
                "(x1000 um^2, 40nm)\n\n");
    core::AreaModel model;
    std::printf("%s", model.formatTable().c_str());
    std::printf("\nPaper Table 4 reference:\n"
                "  Totals: 791.6 | 1258 | 1243 | 1365.6\n"
                "  Overheads: - | 466.4 | 451.4 | 574\n"
                "  %% of SM:  - | 3.0 | 2.9 | 3.7\n");

    if (!json_path.empty()) {
        Json doc = Json::object();
        for (pipeline::PipelineMode m :
             {pipeline::PipelineMode::Baseline,
              pipeline::PipelineMode::SBI,
              pipeline::PipelineMode::SWI,
              pipeline::PipelineMode::SBISWI}) {
            core::AreaReport rep = model.report(m);
            Json items = Json::array();
            for (const core::AreaItem &it : rep.items) {
                Json ji = Json::object();
                ji.set("component", Json(it.component));
                ji.set("area_kum2", Json(it.area_kum2));
                items.push(std::move(ji));
            }
            Json jm = Json::object();
            jm.set("items", std::move(items));
            jm.set("total_kum2", Json(rep.total_kum2));
            jm.set("overhead_kum2", Json(rep.overhead_kum2));
            jm.set("overhead_percent",
                   Json(rep.overhead_percent));
            doc.set(pipeline::pipelineModeName(m),
                    std::move(jm));
        }
        std::string err;
        if (!doc.writeFile(json_path, 2, &err)) {
            std::fprintf(stderr, "%s\n", err.c_str());
            return 1;
        }
    }
    return 0;
}
