/**
 * @file
 * Table 4 reproduction: area of each front-end component and the
 * total overhead relative to a 15.6 mm^2 Fermi SM (40 nm).
 *
 * The per-bit densities are calibrated against the paper's RTL
 * synthesis (see core/area_model.hh and docs/DESIGN.md substitutions);
 * the inventory geometry and all arithmetic are modeled.
 */

#include <cstdio>

#include "core/siwi.hh"

using namespace siwi;

int
main()
{
    std::printf("Reproduction of Table 4: area of each component "
                "(x1000 um^2, 40nm)\n\n");
    core::AreaModel model;
    std::printf("%s", model.formatTable().c_str());
    std::printf("\nPaper Table 4 reference:\n"
                "  Totals: 791.6 | 1258 | 1243 | 1365.6\n"
                "  Overheads: - | 466.4 | 451.4 | 574\n"
                "  %% of SM:  - | 3.0 | 2.9 | 3.7\n");
    return 0;
}
