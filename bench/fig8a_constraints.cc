/**
 * @file
 * Figure 8(a) reproduction: effect of SBI reconvergence constraints
 * (section 3.3) on the irregular applications -- speedup of the
 * constrained configuration over the unconstrained one, for SBI and
 * SBI+SWI, plus the issued-instruction reduction the paper reports
 * (1.3% regular / 5.5% irregular). Cells run concurrently on the
 * experiment runner.
 *
 * Flags: -j N (worker threads), --json PATH.
 */

#include <cstdio>

#include "common/log.hh"
#include "runner/runner.hh"

using namespace siwi;
using namespace siwi::runner;

int
main(int argc, char **argv)
{
    ArgList args(argc, argv);
    RunOptions opts;
    args.intOption("-j", &opts.jobs);
    std::string json_path;
    args.option("--json", &json_path);
    if (!finishArgs(args, "fig8a_constraints"))
        return 2;

    std::printf("Reproduction of Figure 8(a): SBI reconvergence "
                "constraints (irregular apps)\n");
    std::printf("Paper: <0.1%% perf effect on SBI alone; "
                "SortingNetworks +2.4%% on SBI+SWI;\n"
                "BFS/Histogram held back; issued instructions "
                "reduced 1.3%% (reg) / 5.5%% (irr).\n\n");

    const std::vector<SweepSpec> sweeps = {
        fig8aSweep(false, workloads::SizeClass::Full),
        fig8aSweep(true, workloads::SizeClass::Full),
    };
    opts.suite_label = "fig8a";
    Results res = runSweeps(sweeps, opts);

    const std::string irr = "fig8a_irregular";
    std::vector<TableRow> rows = sweepRows(res, irr);

    // Checked lookup: fails loudly if a machine label in
    // fig8aSweep() drifts from the names used here.
    auto cell = [&](const std::string &sweep,
                    const std::string &machine,
                    const std::string &wl) -> const CellResult & {
        const CellResult *c = res.find(sweep, machine, wl);
        siwi_assert(c, "missing cell ", sweep, "/", machine, "/",
                    wl);
        return *c;
    };

    auto ratio = [&](const std::string &sweep, const char *on,
                     const char *off) {
        std::vector<double> a = sweepColumn(res, sweep, on);
        std::vector<double> b = sweepColumn(res, sweep, off);
        std::vector<double> r;
        for (size_t i = 0; i < a.size(); ++i)
            r.push_back(a[i] / b[i]);
        return r;
    };

    std::printf("speedup of constraints ON vs OFF:\n");
    std::fputs(
        formatRatioTable(rows, {"SBI", "SBI+SWI"},
                         {ratio(irr, "SBI", "SBI-nc"),
                          ratio(irr, "SBI+SWI", "SBI+SWI-nc")})
            .c_str(),
        stdout);

    // Issued-instruction reduction from the constraints (SBI).
    auto issue_reduction = [&](const std::string &sweep) {
        std::vector<double> red;
        for (const TableRow &r : sweepRows(res, sweep)) {
            const CellResult &on = cell(sweep, "SBI", r.name);
            const CellResult &off =
                cell(sweep, "SBI-nc", r.name);
            red.push_back(1.0 -
                          double(on.stats.instructions) /
                              double(off.stats.instructions));
        }
        return red;
    };

    std::printf("\nissued-instruction reduction from constraints "
                "(SBI):\n");
    std::vector<double> irr_red = issue_reduction(irr);
    for (size_t i = 0; i < rows.size(); ++i)
        std::printf("  %-22s %+6.2f%%\n", rows[i].name.c_str(),
                    100.0 * irr_red[i]);

    // Regular-application issue reduction for the text's 1.3%.
    std::vector<double> reg_red =
        issue_reduction("fig8a_regular");
    double mean = 0;
    for (double v : reg_red)
        mean += v;
    mean /= double(reg_red.size());
    std::printf("\nmean issued-instruction reduction, regular "
                "apps: %+.2f%% (paper: 1.3%%)\n",
                100.0 * mean);

    return finishBench(res, json_path);
}
