/**
 * @file
 * Figure 8(a) reproduction: effect of SBI reconvergence constraints
 * (section 3.3) on the irregular applications -- speedup of the
 * constrained configuration over the unconstrained one, for SBI and
 * SBI+SWI, plus the issued-instruction reduction the paper reports
 * (1.3% regular / 5.5% irregular).
 */

#include <cstdio>

#include "bench_common.hh"

using namespace siwi;
using namespace siwi::bench;
using pipeline::PipelineMode;
using pipeline::SMConfig;

namespace {

struct Row
{
    double speedup_sbi;
    double speedup_comb;
    double issue_reduction_sbi;
};

} // namespace

int
main()
{
    std::printf("Reproduction of Figure 8(a): SBI reconvergence "
                "constraints (irregular apps)\n");
    std::printf("Paper: <0.1%% perf effect on SBI alone; "
                "SortingNetworks +2.4%% on SBI+SWI;\n"
                "BFS/Histogram held back; issued instructions "
                "reduced 1.3%% (reg) / 5.5%% (irr).\n\n");

    auto wls = workloads::irregularWorkloads();

    std::vector<std::vector<double>> cols(2);
    std::vector<double> issue_red;
    for (const workloads::Workload *wl : wls) {
        SMConfig sbi_on = SMConfig::make(PipelineMode::SBI);
        SMConfig sbi_off = sbi_on;
        sbi_off.sbi_constraints = false;
        SMConfig comb_on = SMConfig::make(PipelineMode::SBISWI);
        SMConfig comb_off = comb_on;
        comb_off.sbi_constraints = false;

        Cell c_on = runCell(*wl, sbi_on);
        Cell c_off = runCell(*wl, sbi_off);
        Cell k_on = runCell(*wl, comb_on);
        Cell k_off = runCell(*wl, comb_off);

        cols[0].push_back(c_on.ipc / c_off.ipc);
        cols[1].push_back(k_on.ipc / k_off.ipc);
        issue_red.push_back(
            1.0 - double(c_on.stats.instructions) /
                      double(c_off.stats.instructions));
    }

    std::printf("speedup of constraints ON vs OFF:\n");
    printRatioTable(wls, {"SBI", "SBI+SWI"}, cols);

    std::printf("\nissued-instruction reduction from constraints "
                "(SBI):\n");
    for (size_t i = 0; i < wls.size(); ++i)
        std::printf("  %-22s %+6.2f%%\n", wls[i]->name(),
                    100.0 * issue_red[i]);

    // Regular-application issue reduction for the text's 1.3%.
    std::vector<double> reg_red;
    for (const workloads::Workload *wl :
         workloads::regularWorkloads()) {
        SMConfig on = SMConfig::make(PipelineMode::SBI);
        SMConfig off = on;
        off.sbi_constraints = false;
        Cell a = runCell(*wl, on);
        Cell b = runCell(*wl, off);
        reg_red.push_back(1.0 - double(a.stats.instructions) /
                                    double(b.stats.instructions));
    }
    double mean = 0;
    for (double v : reg_red)
        mean += v;
    mean /= double(reg_red.size());
    std::printf("\nmean issued-instruction reduction, regular "
                "apps: %+.2f%% (paper: 1.3%%)\n",
                100.0 * mean);
    return 0;
}
