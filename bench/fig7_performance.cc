/**
 * @file
 * Figure 7 reproduction: IPC of the regular (7a) and irregular (7b)
 * workloads under Baseline, SBI, SWI, SBI+SWI and the 64-wide
 * thread-frontier reference.
 *
 * Flags:
 *   --regular / --irregular  restrict to one sub-figure
 *   --ablate-sbi-fallback    add an SBI column without the
 *                            secondary-front-end fallback
 *                            (docs/DESIGN.md interpretation note)
 *   --no-mem-splits          disable DWS-style memory splits
 */

#include <cstdio>

#include "bench_common.hh"

using namespace siwi;
using namespace siwi::bench;
using pipeline::PipelineMode;
using pipeline::SMConfig;

namespace {

void
runSet(const std::vector<const workloads::Workload *> &wls,
       const char *title, bool ablate_fallback, bool no_mem_splits)
{
    std::vector<std::string> names = {"Baseline", "SBI", "SWI",
                                      "SBI+SWI", "Warp64"};
    std::vector<SMConfig> cfgs = {
        SMConfig::make(PipelineMode::Baseline),
        SMConfig::make(PipelineMode::SBI),
        SMConfig::make(PipelineMode::SWI),
        SMConfig::make(PipelineMode::SBISWI),
        SMConfig::make(PipelineMode::Warp64),
    };
    if (ablate_fallback) {
        SMConfig c = SMConfig::make(PipelineMode::SBI);
        c.sbi_secondary_fallback = false;
        names.push_back("SBI-nofb");
        cfgs.push_back(c);
    }
    if (no_mem_splits) {
        for (SMConfig &c : cfgs)
            c.split_on_memory_divergence = false;
    }

    std::vector<std::vector<double>> cols(cfgs.size());
    for (size_t c = 0; c < cfgs.size(); ++c) {
        for (const workloads::Workload *wl : wls)
            cols[c].push_back(runCell(*wl, cfgs[c]).ipc);
    }

    std::printf("\n=== Figure 7: %s applications (IPC) ===\n",
                title);
    printIpcTable(wls, names, cols);

    // Speedups vs baseline, the paper's headline numbers.
    std::printf("\n--- speedup vs Baseline (gmean, TMD excluded) "
                "---\n");
    std::vector<double> base;
    for (size_t r = 0; r < wls.size(); ++r) {
        if (!wls[r]->excludedFromMeans())
            base.push_back(cols[0][r]);
    }
    double base_gm = geomean(base);
    for (size_t c = 1; c < cfgs.size(); ++c) {
        std::vector<double> vals;
        for (size_t r = 0; r < wls.size(); ++r) {
            if (!wls[r]->excludedFromMeans())
                vals.push_back(cols[c][r]);
        }
        std::printf("  %-10s %+6.1f%%\n", names[c].c_str(),
                    100.0 * (geomean(vals) / base_gm - 1.0));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool regular = hasFlag(argc, argv, "--regular");
    bool irregular = hasFlag(argc, argv, "--irregular");
    bool ablate = hasFlag(argc, argv, "--ablate-sbi-fallback");
    bool no_splits = hasFlag(argc, argv, "--no-mem-splits");
    if (!regular && !irregular)
        regular = irregular = true;

    std::printf("Reproduction of Figure 7 (Brunie, Collange, "
                "Diamos, ISCA 2012)\n");
    std::printf("Paper reference gmean speedups vs baseline:\n"
                "  regular:   SBI +15%%, SWI +25%%, SBI+SWI +23%%\n"
                "  irregular: SBI +41%%, SWI +33%%, SBI+SWI "
                "+40%%\n");

    if (regular) {
        runSet(workloads::regularWorkloads(), "regular", ablate,
               no_splits);
    }
    if (irregular) {
        runSet(workloads::irregularWorkloads(), "irregular", ablate,
               no_splits);
    }
    return 0;
}
