/**
 * @file
 * Figure 7 reproduction: IPC of the regular (7a) and irregular (7b)
 * workloads under Baseline, SBI, SWI, SBI+SWI and the 64-wide
 * thread-frontier reference, executed concurrently by the
 * experiment runner.
 *
 * Flags:
 *   --regular / --irregular  restrict to one sub-figure
 *   --ablate-sbi-fallback    add an SBI column without the
 *                            secondary-front-end fallback
 *                            (docs/DESIGN.md interpretation note)
 *   --no-mem-splits          disable DWS-style memory splits
 *   -j N                     worker threads (default: all cores)
 *   --json PATH              write machine-readable results
 */

#include <cstdio>

#include "runner/runner.hh"

using namespace siwi;
using namespace siwi::runner;

namespace {

void
printSet(const Results &res, const std::string &sweep,
         const char *title)
{
    std::printf("\n=== Figure 7: %s applications (IPC) ===\n",
                title);
    std::fputs(formatSweepTable(res, sweep).c_str(), stdout);

    // Speedups vs baseline, the paper's headline numbers.
    std::printf("\n--- speedup vs Baseline (gmean, TMD excluded) "
                "---\n");
    std::vector<TableRow> rows = sweepRows(res, sweep);
    std::vector<bool> excluded;
    for (const TableRow &r : rows)
        excluded.push_back(r.excluded);
    std::vector<std::string> machines = sweepMachines(res, sweep);
    double base_gm = geomean(excludeFromMeans(
        sweepColumn(res, sweep, machines[0]), excluded));
    for (size_t c = 1; c < machines.size(); ++c) {
        double gm = geomean(excludeFromMeans(
            sweepColumn(res, sweep, machines[c]), excluded));
        std::printf("  %-10s %+6.1f%%\n", machines[c].c_str(),
                    100.0 * (gm / base_gm - 1.0));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    ArgList args(argc, argv);
    bool regular = args.flag("--regular");
    bool irregular = args.flag("--irregular");
    Fig7Options fopts;
    fopts.ablate_sbi_fallback = args.flag("--ablate-sbi-fallback");
    fopts.no_mem_splits = args.flag("--no-mem-splits");
    RunOptions opts;
    args.intOption("-j", &opts.jobs);
    std::string json_path;
    args.option("--json", &json_path);
    if (!runner::finishArgs(args, "fig7_performance"))
        return 2;
    if (!regular && !irregular)
        regular = irregular = true;

    std::printf("Reproduction of Figure 7 (Brunie, Collange, "
                "Diamos, ISCA 2012)\n");
    std::printf("Paper reference gmean speedups vs baseline:\n"
                "  regular:   SBI +15%%, SWI +25%%, SBI+SWI +23%%\n"
                "  irregular: SBI +41%%, SWI +33%%, SBI+SWI "
                "+40%%\n");

    std::vector<SweepSpec> sweeps;
    if (regular) {
        sweeps.push_back(
            fig7Sweep(true, workloads::SizeClass::Full, fopts));
    }
    if (irregular) {
        sweeps.push_back(
            fig7Sweep(false, workloads::SizeClass::Full, fopts));
    }
    opts.suite_label = "fig7";
    Results res = runSweeps(sweeps, opts);

    if (regular)
        printSet(res, "fig7_regular", "regular");
    if (irregular)
        printSet(res, "fig7_irregular", "irregular");

    return finishBench(res, json_path);
}
