/**
 * @file
 * Figure 8(b) + Table 1 reproduction: speedup of each lane-shuffle
 * policy over Identity for SWI on the irregular applications.
 *
 * Paper: XorRev is the most consistent; gains range up to +7.7%
 * (Needleman-Wunsch), gmeans +0.3% regular / +1.4% irregular.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace siwi;
using namespace siwi::bench;
using pipeline::LaneShufflePolicy;
using pipeline::PipelineMode;
using pipeline::SMConfig;

int
main(int argc, char **argv)
{
    std::printf("Reproduction of Figure 8(b): SWI lane-shuffle "
                "policies (Table 1), speedup vs Identity\n\n");

    const LaneShufflePolicy policies[] = {
        LaneShufflePolicy::MirrorOdd, LaneShufflePolicy::MirrorHalf,
        LaneShufflePolicy::Xor, LaneShufflePolicy::XorRev};

    bool include_regular = hasFlag(argc, argv, "--regular");
    auto wls = include_regular ? workloads::regularWorkloads()
                               : workloads::irregularWorkloads();

    // Identity reference.
    std::vector<double> ident;
    for (const workloads::Workload *wl : wls) {
        SMConfig cfg = SMConfig::make(PipelineMode::SWI);
        cfg.shuffle = LaneShufflePolicy::Identity;
        ident.push_back(runCell(*wl, cfg).ipc);
    }

    std::vector<std::string> names;
    std::vector<std::vector<double>> cols;
    for (LaneShufflePolicy p : policies) {
        names.push_back(laneShuffleName(p));
        std::vector<double> col;
        for (size_t i = 0; i < wls.size(); ++i) {
            SMConfig cfg = SMConfig::make(PipelineMode::SWI);
            cfg.shuffle = p;
            col.push_back(runCell(*wls[i], cfg).ipc / ident[i]);
        }
        cols.push_back(col);
    }

    printRatioTable(wls, names, cols);
    std::printf("\n(paper gmean: +0.3%% regular, +1.4%% irregular; "
                "XorRev most consistent)\n");
    return 0;
}
