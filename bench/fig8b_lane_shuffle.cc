/**
 * @file
 * Figure 8(b) + Table 1 reproduction: speedup of each lane-shuffle
 * policy over Identity for SWI, executed concurrently by the
 * experiment runner.
 *
 * Paper: XorRev is the most consistent; gains range up to +7.7%
 * (Needleman-Wunsch), gmeans +0.3% regular / +1.4% irregular.
 *
 * Flags: --regular (use the regular apps), -j N, --json PATH.
 */

#include <cstdio>

#include "runner/runner.hh"

using namespace siwi;
using namespace siwi::runner;

int
main(int argc, char **argv)
{
    ArgList args(argc, argv);
    bool include_regular = args.flag("--regular");
    RunOptions opts;
    args.intOption("-j", &opts.jobs);
    std::string json_path;
    args.option("--json", &json_path);
    if (!finishArgs(args, "fig8b_lane_shuffle"))
        return 2;

    std::printf("Reproduction of Figure 8(b): SWI lane-shuffle "
                "policies (Table 1), speedup vs Identity\n\n");

    const std::vector<SweepSpec> sweeps = {fig8bSweep(
        include_regular, workloads::SizeClass::Full)};
    opts.suite_label = "fig8b";
    Results res = runSweeps(sweeps, opts);

    const std::string sweep = sweeps[0].name;
    std::vector<double> ident =
        sweepColumn(res, sweep, "Identity");

    std::vector<std::string> names;
    std::vector<std::vector<double>> cols;
    for (const std::string &m : sweepMachines(res, sweep)) {
        if (m == "Identity")
            continue;
        names.push_back(m);
        std::vector<double> col = sweepColumn(res, sweep, m);
        for (size_t i = 0; i < col.size(); ++i)
            col[i] /= ident[i];
        cols.push_back(std::move(col));
    }

    std::fputs(formatRatioTable(sweepRows(res, sweep), names, cols)
                   .c_str(),
               stdout);
    std::printf("\n(paper gmean: +0.3%% regular, +1.4%% irregular; "
                "XorRev most consistent)\n");

    return finishBench(res, json_path);
}
