/**
 * @file
 * Table 2 reproduction: micro-architecture parameters of each
 * simulated configuration.
 */

#include <cstdio>

#include "core/siwi.hh"

using namespace siwi;
using pipeline::PipelineMode;
using pipeline::SMConfig;

int
main()
{
    std::printf("Reproduction of Table 2: micro-architecture "
                "parameters\n");
    for (PipelineMode m :
         {PipelineMode::Baseline, PipelineMode::Warp64,
          PipelineMode::SBI, PipelineMode::SWI,
          PipelineMode::SBISWI}) {
        SMConfig c = SMConfig::make(m);
        std::printf("\n### %s\n%s", pipelineModeName(m),
                    c.summary().c_str());
    }
    std::printf("\nPaper Table 2 reference:\n"
                "  Baseline: 32x32 warps, sched 1cyc, delivery "
                "0cyc\n"
                "  SBI: 16x64, sched 1cyc, delivery 1cyc\n"
                "  SWI: 16x64, sched 2cyc, delivery 1cyc\n"
                "  common: 1GHz, exec 8cyc, scoreboard 6/warp, L1 "
                "48K 6-way 128B 3cyc, mem 10GB/s 330ns\n");
    return 0;
}
