/**
 * @file
 * Table 2 reproduction: micro-architecture parameters of each
 * simulated configuration. With --json PATH the parameters are
 * also written as a machine-readable document.
 */

#include <cstdio>

#include "common/json.hh"
#include "core/siwi.hh"
#include "pipeline/config_io.hh"
#include "runner/cli.hh"

using namespace siwi;
using pipeline::PipelineMode;
using pipeline::SMConfig;

int
main(int argc, char **argv)
{
    runner::ArgList args(argc, argv);
    std::string json_path;
    args.option("--json", &json_path);
    if (!runner::finishArgs(args, "table2_parameters"))
        return 2;

    std::printf("Reproduction of Table 2: micro-architecture "
                "parameters\n");
    Json doc = Json::object();
    for (PipelineMode m :
         {PipelineMode::Baseline, PipelineMode::Warp64,
          PipelineMode::SBI, PipelineMode::SWI,
          PipelineMode::SBISWI}) {
        SMConfig c = SMConfig::make(m);
        std::printf("\n### %s\n%s", pipelineModeName(m),
                    c.summary().c_str());
        // The full field-table dump (pipeline/config_io.hh), so
        // the JSON form of Table 2 carries every knob a machine
        // file could override.
        doc.set(pipelineModeName(m), pipeline::smConfigToJson(c));
    }
    std::printf("\nPaper Table 2 reference:\n"
                "  Baseline: 32x32 warps, sched 1cyc, delivery "
                "0cyc\n"
                "  SBI: 16x64, sched 1cyc, delivery 1cyc\n"
                "  SWI: 16x64, sched 2cyc, delivery 1cyc\n"
                "  common: 1GHz, exec 8cyc, scoreboard 6/warp, L1 "
                "48K 6-way 128B 3cyc, mem 10GB/s 330ns\n");

    if (!json_path.empty()) {
        std::string err;
        if (!doc.writeFile(json_path, 2, &err)) {
            std::fprintf(stderr, "%s\n", err.c_str());
            return 1;
        }
    }
    return 0;
}
