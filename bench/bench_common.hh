/**
 * @file
 * Shared harness for the table/figure reproduction benches.
 */

#ifndef SIWI_BENCH_BENCH_COMMON_HH
#define SIWI_BENCH_BENCH_COMMON_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/siwi.hh"

namespace siwi::bench {

/** Result of one (workload, configuration) run. */
struct Cell
{
    double ipc = 0.0;
    core::SimStats stats;
    bool verified = false;
};

/** Run one workload on one configuration at Full size. */
Cell runCell(const workloads::Workload &wl,
             const pipeline::SMConfig &cfg);

/** Geometric mean of a vector of positive values. */
double geomean(const std::vector<double> &v);

/**
 * Print a table: rows = workloads, columns = labeled
 * configurations, values = IPC (plus a geomean row honoring the
 * paper's TMD exclusion).
 */
void printIpcTable(
    const std::vector<const workloads::Workload *> &wls,
    const std::vector<std::string> &col_names,
    const std::vector<std::vector<double>> &cols);

/**
 * Print a ratio table (e.g. speedup vs a reference column).
 */
void printRatioTable(
    const std::vector<const workloads::Workload *> &wls,
    const std::vector<std::string> &col_names,
    const std::vector<std::vector<double>> &cols);

/** True when the argument list contains the flag. */
bool hasFlag(int argc, char **argv, const std::string &flag);

} // namespace siwi::bench

#endif // SIWI_BENCH_BENCH_COMMON_HH
