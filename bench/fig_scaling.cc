/**
 * @file
 * Multi-SM scaling study (beyond the paper): IPC of Baseline and
 * SBI+SWI chips with 1, 2, 4 and 8 SMs behind a shared L2 and a
 * single DRAM channel, over a mixed regular/irregular workload
 * panel. The 1-SM column is the paper's single-SM methodology
 * (private DRAM channel); the chip channel's bandwidth scales
 * linearly up to 4 SMs and then saturates, so the 8-SM column
 * shows bandwidth contention (see core::GpuConfig::make).
 *
 * Flags:
 *   --machine NAME    keep only this machine (repeatable)
 *   --sms N           override the SM-count axis (repeatable)
 *   -j N              worker threads (default: all cores)
 *   --json PATH       write machine-readable results
 */

#include <cstdio>
#include <string>
#include <vector>

#include "runner/runner.hh"

using namespace siwi;
using namespace siwi::runner;

int
main(int argc, char **argv)
{
    ArgList args(argc, argv);
    RunOptions opts;
    args.intOption("-j", &opts.jobs);
    std::string json_path;
    args.option("--json", &json_path);
    std::vector<std::string> machines = args.options("--machine");
    std::vector<unsigned> sms_axis;
    if (!smsAxisOption(args, "fig_scaling", &sms_axis))
        return 2;
    if (!runner::finishArgs(args, "fig_scaling"))
        return 2;

    SweepSpec sweep = scalingSweep(workloads::SizeClass::Chip);
    sweep.filterMachines(machines);
    if (!sms_axis.empty())
        sweep.sms = sms_axis;

    std::printf("Multi-SM scaling study (shared L2 + one DRAM "
                "channel)\n");
    std::printf("chips: ");
    for (unsigned n : sweep.sms)
        std::printf("%usm ", n);
    std::printf("\n");

    opts.suite_label = "scaling";
    Results res = runSweeps({sweep}, opts);

    std::printf("\n=== Scaling: IPC per chip ===\n");
    std::fputs(formatSweepTable(res, sweep.name).c_str(), stdout);

    // Parallel efficiency: chip IPC relative to num_sms x the
    // same machine's 1-SM IPC.
    std::printf("\n--- scaling vs 1 SM (gmean IPC ratio) ---\n");
    for (const MachineSpec &m : sweep.machines) {
        std::vector<double> base =
            sweepColumn(res, sweep.name, m.name);
        double base_gm = geomean(base);
        if (base_gm <= 0.0)
            continue;
        for (unsigned n : sweep.sms) {
            if (n == 1)
                continue;
            std::string label =
                m.name + "@" + std::to_string(n) + "sm";
            double gm =
                geomean(sweepColumn(res, sweep.name, label));
            std::printf("  %-16s %5.2fx  (efficiency %5.1f%%)\n",
                        label.c_str(), gm / base_gm,
                        100.0 * gm / base_gm / double(n));
        }
    }

    return finishBench(res, json_path);
}
