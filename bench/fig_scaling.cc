/**
 * @file
 * Multi-SM scaling study (beyond the paper), two chips per
 * machine:
 *
 *  - fig_scaling: the legacy single-pipe chip (monolithic shared
 *    L2, one DRAM channel whose bandwidth saturates at 4 SMs —
 *    see core::GpuConfig::make) over 1..8 SMs;
 *  - fig_scaling_banked: the banked chip memory system (8 L2
 *    slices, 4 DRAM channels at the same aggregate bandwidth,
 *    contended SM<->L2 interconnect) out to 64 SMs, locating the
 *    scaling knee past the legacy backend's 8-SM wall.
 *
 * The 1-SM legacy column is the paper's single-SM methodology.
 *
 * Flags:
 *   --machine NAME    keep only this machine (repeatable)
 *   --sms N           override the SM-count axis (repeatable)
 *   -j N              worker threads (default: all cores)
 *   --json PATH       write machine-readable results
 */

#include <cstdio>
#include <string>
#include <vector>

#include "runner/runner.hh"

using namespace siwi;
using namespace siwi::runner;

int
main(int argc, char **argv)
{
    ArgList args(argc, argv);
    RunOptions opts;
    args.intOption("-j", &opts.jobs);
    std::string json_path;
    args.option("--json", &json_path);
    std::vector<std::string> machines = args.options("--machine");
    std::vector<unsigned> sms_axis;
    if (!smsAxisOption(args, "fig_scaling", &sms_axis))
        return 2;
    if (!runner::finishArgs(args, "fig_scaling"))
        return 2;

    std::vector<SweepSpec> sweeps = {
        scalingSweep(workloads::SizeClass::Chip),
        scalingBankedSweep(workloads::SizeClass::Chip),
    };
    for (SweepSpec &sweep : sweeps) {
        sweep.filterMachines(machines);
        if (!sms_axis.empty())
            sweep.sms = sms_axis;
    }

    std::printf("Multi-SM scaling study (legacy single-pipe chip "
                "vs banked memory system)\n");

    opts.suite_label = "scaling";
    Results res = runSweeps(sweeps, opts);

    for (const SweepSpec &sweep : sweeps) {
        std::printf("\n=== %s: IPC per chip ===\n",
                    sweep.name.c_str());
        std::fputs(formatSweepTable(res, sweep.name).c_str(),
                   stdout);

        // Parallel efficiency: chip IPC relative to num_sms x
        // the same machine's 1-SM IPC.
        std::printf(
            "\n--- %s vs 1 SM (gmean IPC ratio) ---\n",
            sweep.name.c_str());
        for (const MachineSpec &m : sweep.machines) {
            std::vector<double> base =
                sweepColumn(res, sweep.name, m.name);
            double base_gm = geomean(base);
            if (base_gm <= 0.0)
                continue;
            for (unsigned n : sweep.sms) {
                if (n == 1)
                    continue;
                std::string label =
                    m.name + "@" + std::to_string(n) + "sm";
                double gm = geomean(
                    sweepColumn(res, sweep.name, label));
                std::printf(
                    "  %-16s %5.2fx  (efficiency %5.1f%%)\n",
                    label.c_str(), gm / base_gm,
                    100.0 * gm / base_gm / double(n));
            }
        }
    }

    return finishBench(res, json_path);
}
