#include "exec/functional.hh"

#include <bit>
#include <cmath>

#include "common/log.hh"

namespace siwi::exec {

using isa::Instruction;
using isa::Opcode;
using isa::SpecialReg;

namespace {

float
asF(u32 x)
{
    return std::bit_cast<float>(x);
}

u32
asU(float x)
{
    return std::bit_cast<u32>(x);
}

u32
readSreg(const ThreadInfo &ti, SpecialReg sr)
{
    switch (sr) {
      case SpecialReg::TID: return u32(ti.tid);
      case SpecialReg::NTID: return u32(ti.ntid);
      case SpecialReg::CTAID: return u32(ti.ctaid);
      case SpecialReg::NCTAID: return u32(ti.nctaid);
      case SpecialReg::GTID: return u32(ti.gtid);
      case SpecialReg::LANE: return u32(ti.lane);
      case SpecialReg::WID: return u32(ti.wid);
      default: panic("bad special register");
    }
}

/** Compute one lane's result for a dst-writing ALU/SFU op. */
u32
aluLane(const Instruction &inst, const WarpState &warp, unsigned lane)
{
    auto rd = [&](RegIdx r) { return warp.reg(lane, r); };
    // Second operand: register or immediate.
    auto b = [&]() {
        return inst.b_is_imm ? u32(inst.imm) : rd(inst.sb);
    };
    auto ia = [&]() { return i32(rd(inst.sa)); };
    auto ib = [&]() { return i32(b()); };
    auto fa = [&]() { return asF(rd(inst.sa)); };
    auto fb = [&]() { return asF(b()); };

    switch (inst.op) {
      case Opcode::MOV: return rd(inst.sa);
      case Opcode::MOVI: return u32(inst.imm);
      case Opcode::S2R: return readSreg(warp.info(lane), inst.sreg);
      // Arithmetic wraps mod 2^32 (two's complement); compute in
      // unsigned to keep host-side signed overflow UB out of it.
      case Opcode::IADD: return rd(inst.sa) + b();
      case Opcode::ISUB: return rd(inst.sa) - b();
      case Opcode::IMUL: return rd(inst.sa) * b();
      case Opcode::IMAD:
        return rd(inst.sa) * b() + rd(inst.sc);
      case Opcode::IMIN: return u32(std::min(ia(), ib()));
      case Opcode::IMAX: return u32(std::max(ia(), ib()));
      case Opcode::IABS: {
        i32 v = ia();
        return v < 0 ? 0u - u32(v) : u32(v);
      }
      case Opcode::AND: return rd(inst.sa) & b();
      case Opcode::OR: return rd(inst.sa) | b();
      case Opcode::XOR: return rd(inst.sa) ^ b();
      case Opcode::NOT: return ~rd(inst.sa);
      case Opcode::SHL: return rd(inst.sa) << (b() & 31);
      case Opcode::SHR: return rd(inst.sa) >> (b() & 31);
      case Opcode::SRA: return u32(ia() >> (b() & 31));
      case Opcode::ISETLT: return ia() < ib() ? 1 : 0;
      case Opcode::ISETLE: return ia() <= ib() ? 1 : 0;
      case Opcode::ISETEQ: return ia() == ib() ? 1 : 0;
      case Opcode::ISETNE: return ia() != ib() ? 1 : 0;
      case Opcode::ISETGE: return ia() >= ib() ? 1 : 0;
      case Opcode::ISETGT: return ia() > ib() ? 1 : 0;
      case Opcode::SEL:
        return rd(inst.sa) != 0 ? rd(inst.sb) : rd(inst.sc);
      case Opcode::FADD: return asU(fa() + fb());
      case Opcode::FSUB: return asU(fa() - fb());
      case Opcode::FMUL: return asU(fa() * fb());
      case Opcode::FMAD:
        return asU(fa() * fb() + asF(rd(inst.sc)));
      case Opcode::FMIN: return asU(std::fmin(fa(), fb()));
      case Opcode::FMAX: return asU(std::fmax(fa(), fb()));
      case Opcode::FABS: return asU(std::fabs(fa()));
      case Opcode::FNEG: return asU(-fa());
      case Opcode::FSETLT: return fa() < fb() ? 1 : 0;
      case Opcode::FSETLE: return fa() <= fb() ? 1 : 0;
      case Opcode::FSETEQ: return fa() == fb() ? 1 : 0;
      case Opcode::FSETNE: return fa() != fb() ? 1 : 0;
      case Opcode::FSETGE: return fa() >= fb() ? 1 : 0;
      case Opcode::FSETGT: return fa() > fb() ? 1 : 0;
      case Opcode::I2F: return asU(float(ia()));
      case Opcode::F2I: return u32(i32(fa()));
      case Opcode::RCP: return asU(1.0f / fa());
      case Opcode::RSQ: return asU(1.0f / std::sqrt(fa()));
      case Opcode::SQRT: return asU(std::sqrt(fa()));
      case Opcode::SIN: return asU(std::sin(fa()));
      case Opcode::COS: return asU(std::cos(fa()));
      case Opcode::EXP2: return asU(std::exp2(fa()));
      case Opcode::LOG2: return asU(std::log2(fa()));
      default:
        panic("aluLane: not an ALU op: ", isa::opName(inst.op));
    }
}

} // namespace

void
executeAlu(const Instruction &inst, WarpState &warp, LaneMask mask)
{
    if (inst.op == Opcode::NOP)
        return;
    siwi_assert(inst.writesDst(), "executeAlu on non-ALU op");
    for (unsigned lane = 0; lane < warp.width(); ++lane) {
        if (mask.test(lane))
            warp.setReg(lane, inst.dst, aluLane(inst, warp, lane));
    }
}

LaneMask
evalBranch(const Instruction &inst, const WarpState &warp,
           LaneMask mask)
{
    switch (inst.op) {
      case Opcode::BRA:
        return mask;
      case Opcode::BNZ: {
        LaneMask taken;
        for (unsigned lane = 0; lane < warp.width(); ++lane) {
            if (mask.test(lane) && warp.reg(lane, inst.sa) != 0)
                taken.set(lane);
        }
        return taken;
      }
      case Opcode::BZ: {
        LaneMask taken;
        for (unsigned lane = 0; lane < warp.width(); ++lane) {
            if (mask.test(lane) && warp.reg(lane, inst.sa) == 0)
                taken.set(lane);
        }
        return taken;
      }
      default:
        panic("evalBranch: not a branch: ", isa::opName(inst.op));
    }
}

std::vector<MemRequest>
memAddresses(const Instruction &inst, const WarpState &warp,
             LaneMask mask)
{
    siwi_assert(isa::isMemory(inst.op), "memAddresses: not a mem op");
    std::vector<MemRequest> out;
    out.reserve(mask.count());
    for (unsigned lane = 0; lane < warp.width(); ++lane) {
        if (!mask.test(lane))
            continue;
        Addr a = Addr(warp.reg(lane, inst.sa)) + Addr(i64(inst.imm));
        out.push_back({lane, a});
    }
    return out;
}

void
executeMem(const Instruction &inst, WarpState &warp, LaneMask mask,
           mem::MemoryImage &memory)
{
    for (const MemRequest &req : memAddresses(inst, warp, mask)) {
        if (inst.op == Opcode::LD) {
            warp.setReg(req.lane, inst.dst, memory.read32(req.addr));
        } else {
            memory.write32(req.addr, warp.reg(req.lane, inst.sb));
        }
    }
}

} // namespace siwi::exec
