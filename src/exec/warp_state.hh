/**
 * @file
 * Architectural state of the threads mapped onto one hardware warp.
 */

#ifndef SIWI_EXEC_WARP_STATE_HH
#define SIWI_EXEC_WARP_STATE_HH

#include <array>
#include <vector>

#include "common/lane_mask.hh"
#include "common/types.hh"

namespace siwi::exec {

/** Identity of the thread occupying a lane (for S2R). */
struct ThreadInfo
{
    i32 tid = 0;    //!< thread index within its block
    i32 ntid = 0;   //!< threads per block
    i32 ctaid = 0;  //!< block index
    i32 nctaid = 0; //!< blocks in grid
    i32 gtid = 0;   //!< global thread index
    i32 lane = 0;   //!< physical lane (post lane-shuffle)
    i32 wid = 0;    //!< hardware warp slot
    bool valid = false;
};

/**
 * Register files and thread identities of one warp, indexed by
 * physical lane.
 *
 * Values are raw 32-bit words; float semantics are applied by the
 * functional unit via bit casts.
 */
class WarpState
{
  public:
    explicit WarpState(unsigned width);

    unsigned width() const { return width_; }

    u32 reg(unsigned lane, RegIdx r) const;
    void setReg(unsigned lane, RegIdx r, u32 value);

    ThreadInfo &info(unsigned lane);
    const ThreadInfo &info(unsigned lane) const;

    /** Mask of lanes holding a valid (launched, unexited) thread. */
    LaneMask validMask() const;

    /** Reset to empty (no valid threads, zeroed registers). */
    void clear();

  private:
    unsigned width_;
    std::vector<std::array<u32, num_arch_regs>> regs_;
    std::vector<ThreadInfo> info_;
};

} // namespace siwi::exec

#endif // SIWI_EXEC_WARP_STATE_HH
