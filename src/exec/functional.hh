/**
 * @file
 * Functional semantics of the SIMT ISA.
 *
 * This is the role the Barra functional simulator played for the
 * paper's evaluation: it defines what each instruction computes,
 * independent of the timing model. The timing pipeline calls into
 * this module at issue time; results are deterministic regardless of
 * the schedule, which the cross-configuration integration tests rely
 * on.
 */

#ifndef SIWI_EXEC_FUNCTIONAL_HH
#define SIWI_EXEC_FUNCTIONAL_HH

#include <vector>

#include "common/lane_mask.hh"
#include "exec/warp_state.hh"
#include "isa/instruction.hh"
#include "mem/memory_image.hh"

namespace siwi::exec {

/** One lane's memory request. */
struct MemRequest
{
    unsigned lane;
    Addr addr;
};

/**
 * Execute an ALU/SFU instruction for every lane in @p mask.
 * @pre the instruction is not a branch, memory op, or BAR/EXIT/SYNC.
 */
void executeAlu(const isa::Instruction &inst, WarpState &warp,
                LaneMask mask);

/**
 * Evaluate a conditional or unconditional branch.
 * @return the sub-mask of @p mask that takes the branch.
 */
LaneMask evalBranch(const isa::Instruction &inst, const WarpState &warp,
                    LaneMask mask);

/**
 * Per-lane addresses of a memory instruction for lanes in @p mask,
 * in ascending lane order.
 */
std::vector<MemRequest> memAddresses(const isa::Instruction &inst,
                                     const WarpState &warp,
                                     LaneMask mask);

/**
 * Functionally perform a load or store for lanes in @p mask against
 * @p memory (values move immediately; timing is handled elsewhere).
 */
void executeMem(const isa::Instruction &inst, WarpState &warp,
                LaneMask mask, mem::MemoryImage &memory);

} // namespace siwi::exec

#endif // SIWI_EXEC_FUNCTIONAL_HH
