#include "exec/warp_state.hh"

#include "common/log.hh"

namespace siwi::exec {

WarpState::WarpState(unsigned width)
    : width_(width), regs_(width), info_(width)
{
    siwi_assert(width >= 1 && width <= max_warp_width,
                "bad warp width");
    clear();
}

u32
WarpState::reg(unsigned lane, RegIdx r) const
{
    siwi_assert(lane < width_ && r < num_arch_regs, "bad reg access");
    return regs_[lane][r];
}

void
WarpState::setReg(unsigned lane, RegIdx r, u32 value)
{
    siwi_assert(lane < width_ && r < num_arch_regs, "bad reg access");
    regs_[lane][r] = value;
}

ThreadInfo &
WarpState::info(unsigned lane)
{
    siwi_assert(lane < width_, "bad lane");
    return info_[lane];
}

const ThreadInfo &
WarpState::info(unsigned lane) const
{
    siwi_assert(lane < width_, "bad lane");
    return info_[lane];
}

LaneMask
WarpState::validMask() const
{
    LaneMask m;
    for (unsigned i = 0; i < width_; ++i) {
        if (info_[i].valid)
            m.set(i);
    }
    return m;
}

void
WarpState::clear()
{
    for (unsigned i = 0; i < width_; ++i) {
        regs_[i].fill(0);
        info_[i] = ThreadInfo{};
    }
}

} // namespace siwi::exec
