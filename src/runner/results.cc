#include "runner/results.hh"

#include <algorithm>
#include <sstream>

#include "core/config_io.hh"
#include "core/stats_io.hh"

namespace siwi::runner {

const MachineRecord *
Results::findMachine(const std::string &sweep,
                     const std::string &machine) const
{
    for (const MachineRecord &m : machines) {
        if (m.sweep == sweep && m.machine == machine)
            return &m;
    }
    return nullptr;
}

Json
machinesToJson(const std::vector<MachineRecord> &machines)
{
    Json jm = Json::array();
    for (const MachineRecord &m : machines) {
        Json e = Json::object();
        e.set("sweep", Json(m.sweep));
        e.set("machine", Json(m.machine));
        e.set("config", core::gpuConfigToJson(m.config));
        jm.push(std::move(e));
    }
    return jm;
}

const CellResult *
Results::find(const std::string &sweep, const std::string &machine,
              const std::string &workload) const
{
    for (const CellResult &c : cells) {
        if (c.sweep == sweep && c.machine == machine &&
            c.workload == workload)
            return &c;
    }
    return nullptr;
}

std::vector<std::string>
Results::sweepNames() const
{
    std::vector<std::string> names;
    for (const CellResult &c : cells) {
        if (std::find(names.begin(), names.end(), c.sweep) ==
            names.end())
            names.push_back(c.sweep);
    }
    return names;
}

std::vector<const CellResult *>
Results::sweepCells(const std::string &sweep) const
{
    std::vector<const CellResult *> out;
    for (const CellResult &c : cells) {
        if (c.sweep == sweep)
            out.push_back(&c);
    }
    return out;
}

size_t
Results::verificationFailures() const
{
    size_t n = 0;
    for (const CellResult &c : cells)
        n += !c.verified;
    return n;
}

size_t
Results::timeouts() const
{
    size_t n = 0;
    for (const CellResult &c : cells)
        n += c.timed_out;
    return n;
}

Json
cellToJson(const CellResult &c)
{
    Json jc = Json::object();
    jc.set("sweep", Json(c.sweep));
    jc.set("machine", Json(c.machine));
    jc.set("workload", Json(c.workload));
    jc.set("size", Json(c.size));
    jc.set("num_sms", Json(c.num_sms));
    jc.set("policy", Json(c.policy));
    jc.set("excluded_from_means", Json(c.excluded_from_means));
    jc.set("verified", Json(c.verified));
    if (!c.verified)
        jc.set("verify_msg", Json(c.verify_msg));
    jc.set("timed_out", Json(c.timed_out));
    jc.set("ipc", Json(c.ipc));
    jc.set("stats", core::statsToJson(c.stats));
    return jc;
}

bool
cellFromJson(const Json &jc, CellResult *out, std::string *err)
{
    if (!jc.isObject()) {
        if (err)
            *err = "results: cell entry must be an object";
        return false;
    }
    CellResult c;
    c.sweep = jc.getString("sweep");
    c.machine = jc.getString("machine");
    c.workload = jc.getString("workload");
    c.size = jc.getString("size");
    c.num_sms = unsigned(jc.getInt("num_sms", 1));
    c.policy = jc.getString("policy");
    c.excluded_from_means = jc.getBool("excluded_from_means");
    c.verified = jc.getBool("verified");
    c.verify_msg = jc.getString("verify_msg");
    c.timed_out = jc.getBool("timed_out");
    c.ipc = jc.getDouble("ipc");
    const Json *stats = jc.find("stats");
    if (!stats) {
        if (err)
            *err = "results: cell '" + c.machine + "/" +
                   c.workload + "' lacks 'stats'";
        return false;
    }
    if (!core::statsFromJson(*stats, &c.stats, err))
        return false;
    *out = std::move(c);
    return true;
}

Json
Results::toJson() const
{
    Json j = Json::object();
    j.set("schema_version", Json(core::stats_schema_version));
    j.set("generator", Json("siwi-run"));
    j.set("suite", Json(suite));
    j.set("machines", machinesToJson(machines));
    Json arr = Json::array();
    for (const CellResult &c : cells)
        arr.push(cellToJson(c));
    j.set("cells", std::move(arr));
    return j;
}

std::string
Results::toJsonText() const
{
    return toJson().dump(2) + "\n";
}

std::string
Results::toCsv() const
{
    std::ostringstream os;
    os << "sweep,machine,workload,size,num_sms,policy,"
          "excluded_from_means,"
          "verified,timed_out,ipc,cycles,instructions,"
          "thread_instructions,"
          "l1_hits,l1_misses,l2_hits,l2_misses,dram_transactions,"
          "dram_bytes\n";
    os.precision(17);
    for (const CellResult &c : cells) {
        os << c.sweep << ',' << c.machine << ',' << c.workload
           << ',' << c.size << ',' << c.num_sms << ','
           << c.policy << ','
           << (c.excluded_from_means ? 1 : 0)
           << ',' << (c.verified ? 1 : 0) << ','
           << (c.timed_out ? 1 : 0) << ',' << c.ipc << ','
           << c.stats.cycles << ',' << c.stats.instructions << ','
           << c.stats.thread_instructions << ',' << c.stats.l1_hits
           << ',' << c.stats.l1_misses << ',' << c.stats.l2_hits
           << ',' << c.stats.l2_misses << ','
           << c.stats.dram_transactions << ',' << c.stats.dram_bytes
           << '\n';
    }
    return os.str();
}

bool
Results::fromJson(const Json &j, Results *out, std::string *err)
{
    if (!j.isObject()) {
        if (err)
            *err = "results: expected a JSON object";
        return false;
    }
    i64 version = j.getInt("schema_version", -1);
    if (version != core::stats_schema_version) {
        if (err)
            *err = "results: schema_version " +
                   std::to_string(version) + " != supported " +
                   std::to_string(core::stats_schema_version);
        return false;
    }
    Results r;
    r.suite = j.getString("suite");
    if (const Json *jm = j.find("machines")) {
        if (!jm->isArray()) {
            if (err)
                *err = "results: 'machines' must be an array";
            return false;
        }
        for (const Json &je : jm->arr()) {
            if (!je.isObject()) {
                if (err)
                    *err = "results: machine entry must be an "
                           "object";
                return false;
            }
            MachineRecord m;
            m.sweep = je.getString("sweep");
            m.machine = je.getString("machine");
            const Json *cfg = je.find("config");
            if (!cfg) {
                if (err)
                    *err = "results: machine entry '" +
                           m.machine + "' lacks 'config'";
                return false;
            }
            if (!core::gpuConfigApplyJson(*cfg, &m.config, err))
                return false;
            r.machines.push_back(std::move(m));
        }
    }
    const Json *arr = j.find("cells");
    if (!arr || !arr->isArray()) {
        if (err)
            *err = "results: missing 'cells' array";
        return false;
    }
    for (const Json &jc : arr->arr()) {
        CellResult c;
        if (!cellFromJson(jc, &c, err))
            return false;
        r.cells.push_back(std::move(c));
    }
    *out = std::move(r);
    return true;
}

bool
Results::load(const std::string &path, Results *out,
              std::string *err)
{
    std::string parse_err;
    Json j = Json::parseFile(path, &parse_err);
    if (!parse_err.empty()) {
        if (err)
            *err = parse_err;
        return false;
    }
    return fromJson(j, out, err);
}

bool
Results::save(const std::string &path, std::string *err) const
{
    return toJson().writeFile(path, 2, err);
}

const char *
sizeClassName(workloads::SizeClass sc)
{
    switch (sc) {
      case workloads::SizeClass::Tiny: return "tiny";
      case workloads::SizeClass::Full: return "full";
      case workloads::SizeClass::Chip: return "chip";
    }
    return "?";
}

bool
parseSizeClass(std::string_view name, workloads::SizeClass *out)
{
    for (workloads::SizeClass sc :
         {workloads::SizeClass::Tiny, workloads::SizeClass::Full,
          workloads::SizeClass::Chip}) {
        if (name == sizeClassName(sc)) {
            *out = sc;
            return true;
        }
    }
    return false;
}

} // namespace siwi::runner
