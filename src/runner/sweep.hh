/**
 * @file
 * Declarative experiment sweeps: machines x workloads x config
 * overrides.
 *
 * A SweepSpec names the grid one paper figure measures; the
 * ExperimentRunner expands it into independent cells and executes
 * them concurrently. Cells are pure functions of their spec (every
 * cell builds its own GPU and generates its own inputs), which is
 * what makes both the parallelism and the bit-identical JSON
 * output possible.
 */

#ifndef SIWI_RUNNER_SWEEP_HH
#define SIWI_RUNNER_SWEEP_HH

#include <functional>
#include <string>
#include <vector>

#include "frontend/sched_policy.hh"
#include "pipeline/config.hh"
#include "workloads/workload.hh"

namespace siwi::runner {

/** One column of a sweep: a named, fully-resolved configuration. */
struct MachineSpec
{
    std::string name;
    pipeline::SMConfig config;
};

/** Canonical machine for a pipeline mode, named after the mode. */
MachineSpec makeMachine(pipeline::PipelineMode mode);

/** Canonical machine with a custom name and a config tweak. */
MachineSpec makeMachine(
    std::string name, pipeline::PipelineMode mode,
    const std::function<void(pipeline::SMConfig &)> &tweak = {});

/**
 * A named configuration mutation, used to derive machine variants
 * declaratively (e.g. the Figure 9 associativity ladder).
 */
struct Override
{
    std::string label;
    std::function<void(pipeline::SMConfig &)> apply;
};

/**
 * Cross a base machine with each override: one variant per
 * override, named "<base>/<label>" (or just "<label>" when the
 * override label is self-describing, see @p label_only).
 */
std::vector<MachineSpec> crossMachine(
    const MachineSpec &base, const std::vector<Override> &overrides,
    bool label_only = false);

/** The full grid one figure (or figure panel) measures. */
struct SweepSpec
{
    std::string name; //!< e.g. "fig7_regular"
    std::vector<MachineSpec> machines;
    std::vector<const workloads::Workload *> wls;
    workloads::SizeClass size = workloads::SizeClass::Full;
    /**
     * SM-count axis: every machine x workload cell runs once per
     * entry (core::GpuConfig::make chips; 1 = the paper's
     * single-SM setup). Cells with more than one SM carry an
     * "@<n>sm" suffix on their machine label.
     */
    std::vector<unsigned> sms = {1};
    /**
     * Scheduling-policy axis: every cell runs once per entry,
     * with SMConfig::sched_policy overridden (the front-end
     * SchedPolicy strategy). Non-default policies carry a
     * "/<policy>" suffix on their machine label; the default
     * oldest-first keeps the plain label, so existing baselines
     * stay keyed the same.
     */
    std::vector<frontend::SchedPolicyKind> policies = {
        frontend::SchedPolicyKind::OldestFirst};

    size_t cellCount() const
    {
        return machines.size() * wls.size() * sms.size() *
               policies.size();
    }

    /** Drop machines whose name is not in @p keep (empty = all). */
    void filterMachines(const std::vector<std::string> &keep);
    /** Drop workloads whose name is not in @p keep (empty = all). */
    void filterWorkloads(const std::vector<std::string> &keep);
};

/**
 * One executable cell of a sweep: indices into the owning spec.
 * Expansion order (sweep-major, then workload, then SM count,
 * then policy, then machine) is the canonical result order
 * regardless of execution schedule.
 */
struct CellSpec
{
    size_t sweep = 0;
    size_t machine = 0;
    size_t wl = 0;
    size_t sms = 0;    //!< index into SweepSpec::sms
    size_t policy = 0; //!< index into SweepSpec::policies
};

/** Flatten @p sweeps into cells in canonical order. */
std::vector<CellSpec> expandCells(
    const std::vector<SweepSpec> &sweeps);

} // namespace siwi::runner

#endif // SIWI_RUNNER_SWEEP_HH
