/**
 * @file
 * Declarative experiment sweeps: machines x workloads x config
 * overrides.
 *
 * A SweepSpec names the grid one paper figure measures; the
 * ExperimentRunner expands it into independent cells and executes
 * them concurrently. Cells are pure functions of their spec (every
 * cell builds its own GPU and generates its own inputs), which is
 * what makes both the parallelism and the bit-identical JSON
 * output possible.
 */

#ifndef SIWI_RUNNER_SWEEP_HH
#define SIWI_RUNNER_SWEEP_HH

#include <string>
#include <vector>

#include "common/json.hh"
#include "core/gpu.hh"
#include "frontend/sched_policy.hh"
#include "pipeline/config.hh"
#include "workloads/workload.hh"

namespace siwi::runner {

/** One column of a sweep: a named, fully-resolved configuration. */
struct MachineSpec
{
    std::string name;
    pipeline::SMConfig config;
    /**
     * Chip-level "key=value" overrides (GpuConfig field table:
     * l2_slices, dram_channels, noc_*, ...), validated when
     * recorded and applied on top of core::GpuConfig::make() when
     * each cell's chip is resolved — the SM-level config cannot
     * express them, and make()'s derived defaults must see the SM
     * config first. Part of the machine identity (dedupe compares
     * them alongside the SM config).
     */
    std::vector<std::string> chip_sets;
};

/**
 * Apply "key=value" mutations through the SMConfig field table
 * (pipeline/config_io.hh). Panics on a malformed entry: callers
 * with user-supplied strings go through machineApplyKeyValue() for
 * a soft error.
 */
void applyConfigSets(pipeline::SMConfig *cfg,
                     const std::vector<std::string> &sets);

/**
 * Route one "key=value" override onto a machine: SM-level keys
 * mutate the SMConfig immediately; chip-level keys (the GpuConfig
 * field table) are validated and recorded in chip_sets for
 * deferred application. Dots in the key are accepted as
 * underscores ("l2.slices=4" == "l2_slices=4"). This is the
 * single override path shared by the suites, spec files and the
 * CLI --set flag. num_sms and shared_backend are rejected: the
 * SM count is the sweep's sms axis, and the backend choice is
 * derived from it. A key present in both tables
 * (dram_bytes_per_cycle_x10, dram_latency_cycles) routes to the
 * chip: the override then pins the resolved chip's value, exempt
 * from GpuConfig::make()'s SM-count bandwidth scaling.
 * @return false and set @p err on a malformed entry.
 */
bool machineApplyKeyValue(MachineSpec *m, std::string_view kv,
                          std::string *err);

/** machineApplyKeyValue over a list; panics on a malformed entry
 *  (trusted compiled-in suite definitions). */
void applyMachineSets(MachineSpec *m,
                      const std::vector<std::string> &sets);

/**
 * Apply a JSON "set" object (machine-file / spec-file overrides)
 * onto a machine through the same chip/SM routing as
 * machineApplyKeyValue: each member becomes one "key=value"
 * mutation. Values must be scalars matching the field's type.
 * @return false and set @p err on the first bad member.
 */
bool machineApplyJson(MachineSpec *m, const Json &set,
                      std::string *err);

/** Canonical machine for a pipeline mode, named after the mode. */
MachineSpec makeMachine(pipeline::PipelineMode mode);

/** Canonical machine with a custom name and key=value tweaks. */
MachineSpec makeMachine(std::string name,
                        pipeline::PipelineMode mode,
                        const std::vector<std::string> &sets = {});

/**
 * A named configuration mutation, used to derive machine variants
 * declaratively (e.g. the Figure 9 associativity ladder): data,
 * not code — the key=value strings go through the same applier as
 * spec files and --set.
 */
struct Override
{
    std::string label;
    std::vector<std::string> sets; //!< "key=value" mutations
};

/**
 * Cross a base machine with each override: one variant per
 * override, named "<base>/<label>" (or just "<label>" when the
 * override label is self-describing, see @p label_only).
 */
std::vector<MachineSpec> crossMachine(
    const MachineSpec &base, const std::vector<Override> &overrides,
    bool label_only = false);

/** The full grid one figure (or figure panel) measures. */
struct SweepSpec
{
    std::string name; //!< e.g. "fig7_regular"
    std::vector<MachineSpec> machines;
    std::vector<const workloads::Workload *> wls;
    workloads::SizeClass size = workloads::SizeClass::Full;
    /**
     * SM-count axis: every machine x workload cell runs once per
     * entry (core::GpuConfig::make chips; 1 = the paper's
     * single-SM setup). Cells with more than one SM carry an
     * "@<n>sm" suffix on their machine label.
     */
    std::vector<unsigned> sms = {1};
    /**
     * Scheduling-policy axis: every cell runs once per entry,
     * with SMConfig::sched_policy overridden (the front-end
     * SchedPolicy strategy). Non-default policies carry a
     * "/<policy>" suffix on their machine label; the default
     * oldest-first keeps the plain label, so existing baselines
     * stay keyed the same.
     */
    std::vector<frontend::SchedPolicyKind> policies = {
        frontend::SchedPolicyKind::OldestFirst};

    size_t cellCount() const
    {
        return machines.size() * wls.size() * sms.size() *
               policies.size();
    }

    /** Drop machines whose name is not in @p keep (empty = all). */
    void filterMachines(const std::vector<std::string> &keep);
    /** Drop workloads whose name is not in @p keep (empty = all). */
    void filterWorkloads(const std::vector<std::string> &keep);
    /**
     * Drop machines whose config equals an earlier column (field
     * table operator==), warning for each duplicate: two named
     * machines that resolve to the same configuration would run
     * (and cost) identical cells. runSweeps() applies this to its
     * own copy of every sweep.
     */
    void dedupeMachines();

    /**
     * Reject axis combinations that would expand to duplicate
     * cells with colliding labels: duplicate sms entries, and
     * duplicate *effective* policies for any machine (the
     * default oldest entry resolves to the machine's own
     * sched_policy — see effectivePolicy()). Returns a
     * diagnostic, or empty when the axes are sound. The spec
     * loader and siwi-run report this as a parse/usage error.
     */
    std::string checkAxes() const;

    /** SM count of the @p sms_idx axis entry (1 when empty). */
    unsigned smsAt(size_t sms_idx) const
    {
        return sms.empty() ? 1u : sms[sms_idx];
    }
    /** Policy of the @p policy_idx axis entry. */
    frontend::SchedPolicyKind policyAt(size_t policy_idx) const
    {
        return policies.empty()
                   ? frontend::SchedPolicyKind::OldestFirst
                   : policies[policy_idx];
    }
};

/**
 * The scheduling policy one cell actually runs: the sweep's
 * policy-axis entry, except that the default oldest-first entry
 * respects a policy the machine itself configured (a machine
 * file's or --set's "sched_policy" field) — an explicit
 * non-default axis entry overrides it.
 */
frontend::SchedPolicyKind effectivePolicy(const SweepSpec &sweep,
                                          size_t machine,
                                          size_t policy_idx);

/**
 * Decorated machine label of a cell: "/<policy>" for non-default
 * scheduling policies, "@<n>sm" for multi-SM cells. Baselines and
 * tables key on this label, so it is part of the cell identity.
 */
std::string cellMachineLabel(const std::string &machine,
                             frontend::SchedPolicyKind policy,
                             unsigned num_sms);

/**
 * The fully-resolved chip configuration of one cell — exactly
 * what the simulator will be built from (policy override applied,
 * chip derived via core::GpuConfig::make, then the machine's
 * chip_sets applied on top). This block is embedded into results
 * artifacts and printed by siwi-run --dump-config.
 */
core::GpuConfig resolvedCellConfig(const SweepSpec &sweep,
                                   size_t machine, size_t sms_idx,
                                   size_t policy_idx);

/**
 * Validate every chip configuration @p sweep resolves to
 * (machines x sms axis): chip_sets can request topologies that
 * violate chip invariants (e.g. more L2 slices than sets), which
 * only materialize after GpuConfig::make(). Returns a diagnostic
 * naming the machine and SM count, or empty when all are sound.
 * The spec loader and siwi-run report this as a parse/usage
 * error.
 */
std::string checkResolvedConfigs(const SweepSpec &sweep);

/**
 * One executable cell of a sweep: indices into the owning spec.
 * Expansion order (sweep-major, then workload, then SM count,
 * then policy, then machine) is the canonical result order
 * regardless of execution schedule.
 */
struct CellSpec
{
    size_t sweep = 0;
    size_t machine = 0;
    size_t wl = 0;
    size_t sms = 0;    //!< index into SweepSpec::sms
    size_t policy = 0; //!< index into SweepSpec::policies
};

/** Flatten @p sweeps into cells in canonical order. */
std::vector<CellSpec> expandCells(
    const std::vector<SweepSpec> &sweeps);

} // namespace siwi::runner

#endif // SIWI_RUNNER_SWEEP_HH
