/**
 * @file
 * Baseline comparison: the CI bench-regression gate.
 *
 * Compares a freshly-produced Results file against the committed
 * bench/baseline.json cell by cell, on IPC, with a relative
 * tolerance. The simulator is deterministic, so the tolerance only
 * absorbs *explained* drift (a PR that intentionally changes
 * timing regenerates the baseline via scripts/update_baseline.sh);
 * anything beyond it fails the gate.
 */

#ifndef SIWI_RUNNER_BASELINE_HH
#define SIWI_RUNNER_BASELINE_HH

#include <string>
#include <vector>

#include "runner/results.hh"

namespace siwi::runner {

/** IPC delta of one cell present in both files. */
struct CellDelta
{
    std::string sweep;
    std::string machine;
    std::string workload;
    double baseline_ipc = 0.0;
    double candidate_ipc = 0.0;
    /** (candidate - baseline) / baseline; 0 when baseline is 0. */
    double relative = 0.0;
};

/** Full comparison outcome. */
struct CompareReport
{
    double tolerance = 0.0; //!< relative, e.g. 0.02 for 2%
    std::vector<CellDelta> deltas;
    /** Cells beyond tolerance, worst regression first. */
    std::vector<CellDelta> regressions;
    /** Improvements beyond tolerance (reported, not fatal). */
    std::vector<CellDelta> improvements;
    /** Baseline cells absent from the candidate. */
    std::vector<std::string> missing;
    /** Candidate cells absent from the baseline. */
    std::vector<std::string> added;
    /** Candidate cells that failed functional verification. */
    std::vector<std::string> unverified;
    /** Candidate cells truncated at the cycle cap. */
    std::vector<std::string> timed_out;

    /** Gate verdict: no regressions, nothing missing, all
     *  candidate cells verified and none timed out. */
    bool pass() const
    {
        return regressions.empty() && missing.empty() &&
               unverified.empty() && timed_out.empty();
    }

    /** Human-readable report for the CI log. */
    std::string format() const;
};

/**
 * Compare @p candidate against @p baseline with @p tolerance
 * (relative IPC, e.g. 0.02 = 2%).
 */
CompareReport compareResults(const Results &baseline,
                             const Results &candidate,
                             double tolerance);

} // namespace siwi::runner

#endif // SIWI_RUNNER_BASELINE_HH
