/**
 * @file
 * Summary metrics shared by the benches, the siwi-run CLI and the
 * CI regression gate (previously private to bench/bench_common).
 */

#ifndef SIWI_RUNNER_METRICS_HH
#define SIWI_RUNNER_METRICS_HH

#include <vector>

namespace siwi::runner {

/**
 * Geometric mean of @p v.
 *
 * Edge cases are explicit rather than falling out of log()/exp():
 *  - empty vector: no data, returns 0.0;
 *  - any value <= 0 (a failed or zero-IPC cell): the geometric
 *    mean is not meaningful, returns 0.0 instead of -inf/NaN
 *    artifacts.
 */
double geomean(const std::vector<double> &v);

/**
 * Filter @p values down to the entries whose matching flag in
 * @p excluded is false — the paper's "TMD excluded from means"
 * rule (section 5.1), applied to any per-workload column. The two
 * vectors must be the same length.
 */
std::vector<double> excludeFromMeans(
    const std::vector<double> &values,
    const std::vector<bool> &excluded);

} // namespace siwi::runner

#endif // SIWI_RUNNER_METRICS_HH
