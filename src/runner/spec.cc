#include "runner/spec.hh"

#include <algorithm>
#include <filesystem>

#include "frontend/registry.hh"
#include "pipeline/config_io.hh"
#include "runner/results.hh"

namespace siwi::runner {

namespace {

namespace fs = std::filesystem;

std::string
joinPath(const std::string &base_dir, const std::string &path)
{
    fs::path p(path);
    if (p.is_absolute() || base_dir.empty())
        return path;
    return (fs::path(base_dir) / p).string();
}

/** The valid-name list for an "unknown machine" diagnostic. */
std::string
knownMachineNames(const MachineRegistry &reg)
{
    std::string out;
    for (const MachineSpec &m : reg.machines()) {
        if (!out.empty())
            out += ", ";
        out += m.name;
    }
    return out;
}

/**
 * Reject unknown members of object @p j: every key must appear in
 * @p allowed. Returns the diagnostic to keep call sites short.
 */
bool
checkKeys(const Json &j,
          std::initializer_list<const char *> allowed,
          const char *what, std::string *err)
{
    for (const Json::Member &m : j.obj()) {
        bool known = false;
        for (const char *a : allowed) {
            if (m.first == a) {
                known = true;
                break;
            }
        }
        if (!known) {
            if (err)
                *err = std::string(what) + ": unknown key '" +
                       m.first + "'";
            return false;
        }
    }
    return true;
}

} // namespace

MachineRegistry::MachineRegistry()
{
    for (const frontend::MachineEntry &m :
         frontend::machineRegistry())
        machines_.push_back(
            {m.name, pipeline::SMConfig::make(m.mode)});
}

bool
MachineRegistry::add(MachineSpec m, std::string *err)
{
    if (const MachineSpec *existing = find(m.name)) {
        if (err)
            *err = "machine name '" + m.name +
                   "' is already registered (as '" +
                   existing->name + "')";
        return false;
    }
    machines_.push_back(std::move(m));
    return true;
}

const MachineSpec *
MachineRegistry::find(std::string_view name) const
{
    for (const MachineSpec &m : machines_) {
        if (configNameEquals(name, m.name))
            return &m;
    }
    return nullptr;
}

bool
machineFromJson(const Json &j, const std::string &base_dir,
                const MachineRegistry &reg, MachineSpec *out,
                std::string *err)
{
    if (!j.isObject()) {
        if (err)
            *err = "machine: expected a JSON object";
        return false;
    }
    if (const Json *file = j.find("file")) {
        if (!checkKeys(j, {"file"}, "machine", err))
            return false;
        if (!file->isString()) {
            if (err)
                *err = "machine: 'file' needs a path string";
            return false;
        }
        return loadMachineFile(joinPath(base_dir, file->str()),
                               reg, out, err);
    }
    if (!checkKeys(j, {"name", "base", "set"}, "machine", err))
        return false;
    const Json *base = j.find("base");
    if (!base || !base->isString()) {
        if (err)
            *err = "machine: needs a 'base' machine name";
        return false;
    }
    const MachineSpec *b = reg.find(base->str());
    if (!b) {
        if (err)
            *err = "machine: unknown base '" + base->str() +
                   "' (known: " + knownMachineNames(reg) + ")";
        return false;
    }
    MachineSpec m = *b;
    m.name = j.getString("name");
    if (m.name.empty()) {
        if (err)
            *err = "machine: needs a 'name'";
        return false;
    }
    if (const Json *set = j.find("set")) {
        if (set->isObject() && set->find("mode")) {
            // The mode tag is the base machine's identity; a
            // "set" that changes only the tag would make the
            // self-describing artifacts lie.
            if (err)
                *err = "machine '" + m.name +
                       "': 'mode' is fixed by the base machine "
                       "(pick a different 'base' instead)";
            return false;
        }
        if (!machineApplyJson(&m, *set, err)) {
            if (err)
                *err = "machine '" + m.name + "': " + *err;
            return false;
        }
    }
    std::string inv = m.config.checkInvariants();
    if (!inv.empty()) {
        if (err)
            *err = "machine '" + m.name + "': " + inv;
        return false;
    }
    *out = std::move(m);
    return true;
}

bool
loadMachineFile(const std::string &path,
                const MachineRegistry &reg, MachineSpec *out,
                std::string *err)
{
    std::string parse_err;
    Json j = Json::parseFile(path, &parse_err);
    if (!parse_err.empty()) {
        if (err)
            *err = parse_err;
        return false;
    }
    if (!j.isObject()) {
        if (err)
            *err = path + ": expected a machine object";
        return false;
    }
    // No file-to-file indirection: it buys nothing a spec's
    // "machines" section does not, and a self-reference would
    // recurse forever.
    if (j.find("file")) {
        if (err)
            *err = path +
                   ": a machine file cannot reference another "
                   "machine file";
        return false;
    }
    // Default the name to the file stem, so small machine files
    // need only "base" and "set".
    if (!j.find("name"))
        j.set("name", Json(fs::path(path).stem().string()));
    std::string parent = fs::path(path).parent_path().string();
    if (!machineFromJson(j, parent, reg, out, err)) {
        if (err)
            *err = path + ": " + *err;
        return false;
    }
    return true;
}

namespace {

bool
sweepFromJson(const Json &j, const std::string &base_dir,
              const MachineRegistry &reg, SweepSpec *out,
              std::string *err)
{
    if (!j.isObject()) {
        if (err)
            *err = "sweep: expected a JSON object";
        return false;
    }
    if (!checkKeys(j,
                   {"name", "machines", "workloads", "size",
                    "sms", "policies", "set"},
                   "sweep", err))
        return false;
    SweepSpec s;
    s.name = j.getString("name");
    if (s.name.empty()) {
        if (err)
            *err = "sweep: needs a non-empty 'name'";
        return false;
    }
    auto fail = [&](const std::string &msg) {
        if (err)
            *err = "sweep '" + s.name + "': " + msg;
        return false;
    };

    // --- machines ---
    const Json *jm = j.find("machines");
    if (!jm || !jm->isArray() || jm->arr().empty())
        return fail("needs a non-empty 'machines' array");
    for (const Json &e : jm->arr()) {
        MachineSpec m;
        if (e.isString()) {
            const MachineSpec *r = reg.find(e.str());
            if (!r) {
                return fail("unknown machine '" + e.str() +
                            "' (known: " +
                            knownMachineNames(reg) + ")");
            }
            m = *r;
        } else {
            std::string merr;
            if (!machineFromJson(e, base_dir, reg, &m, &merr))
                return fail(merr);
        }
        for (const MachineSpec &prev : s.machines) {
            if (configNameEquals(prev.name, m.name))
                return fail("duplicate machine '" + m.name + "'");
        }
        s.machines.push_back(std::move(m));
    }

    // --- workloads ---
    const Json *jw = j.find("workloads");
    if (!jw || !jw->isArray() || jw->arr().empty())
        return fail("needs a non-empty 'workloads' array");
    auto addWorkload = [&](const workloads::Workload *w) {
        if (std::find(s.wls.begin(), s.wls.end(), w) !=
            s.wls.end())
            return fail("duplicate workload '" +
                        std::string(w->name()) + "'");
        s.wls.push_back(w);
        return true;
    };
    for (const Json &e : jw->arr()) {
        if (!e.isString())
            return fail("workload entries must be names");
        const std::string &name = e.str();
        std::vector<const workloads::Workload *> group;
        if (name == "regular") {
            group = workloads::regularWorkloads();
        } else if (name == "irregular") {
            group = workloads::irregularWorkloads();
        } else if (name == "all") {
            group = workloads::allWorkloads();
        } else if (const workloads::Workload *w =
                       workloads::findWorkload(name)) {
            group = {w};
        } else {
            return fail("unknown workload '" + name +
                        "' (a name, or regular | irregular | "
                        "all)");
        }
        for (const workloads::Workload *w : group) {
            if (!addWorkload(w))
                return false;
        }
    }

    // --- size ---
    std::string size_str = j.getString("size", "full");
    if (!parseSizeClass(size_str, &s.size))
        return fail("bad size '" + size_str +
                    "' (tiny | full | chip)");

    // --- sms axis ---
    if (const Json *js = j.find("sms")) {
        if (!js->isArray() || js->arr().empty())
            return fail("'sms' needs a non-empty array");
        s.sms.clear();
        for (const Json &e : js->arr()) {
            if (!e.isInt() || e.integer() < 1 ||
                e.integer() > 1024)
                return fail("'sms' entries must be integers in "
                            "1..1024");
            s.sms.push_back(unsigned(e.integer()));
        }
    }

    // --- policy axis ---
    if (const Json *jp = j.find("policies")) {
        if (!jp->isArray() || jp->arr().empty())
            return fail("'policies' needs a non-empty array");
        s.policies.clear();
        for (const Json &e : jp->arr()) {
            frontend::SchedPolicyKind kind;
            if (!e.isString() ||
                !frontend::parseSchedPolicy(e.str(), &kind)) {
                std::string names;
                for (const frontend::PolicyEntry &p :
                     frontend::policyRegistry()) {
                    if (!names.empty())
                        names += " | ";
                    names += p.name;
                }
                return fail("bad policy (" + names + ")");
            }
            s.policies.push_back(kind);
        }
    }

    // --- per-sweep overrides ---
    if (const Json *set = j.find("set")) {
        if (set->isObject() && set->find("mode"))
            return fail("'mode' is fixed by the base machine "
                        "(pick a different 'base' instead)");
        for (MachineSpec &m : s.machines) {
            std::string serr;
            if (!machineApplyJson(&m, *set, &serr))
                return fail(serr);
        }
    }
    for (const MachineSpec &m : s.machines) {
        std::string inv = m.config.checkInvariants();
        if (!inv.empty())
            return fail("machine '" + m.name + "': " + inv);
    }
    std::string axes = s.checkAxes();
    if (!axes.empty()) {
        if (err)
            *err = axes;
        return false;
    }
    // Chip-level overrides can violate invariants that only
    // materialize on the resolved chip (e.g. more L2 slices than
    // sets), so check every cell configuration the sweep expands
    // to.
    std::string chips = checkResolvedConfigs(s);
    if (!chips.empty()) {
        if (err)
            *err = chips;
        return false;
    }
    *out = std::move(s);
    return true;
}

} // namespace

bool
sweepsFromSpecJson(const Json &j, const std::string &base_dir,
                   MachineRegistry *reg,
                   std::vector<SweepSpec> *out, std::string *label,
                   std::string *err)
{
    if (!j.isObject()) {
        if (err)
            *err = "spec: expected a JSON object";
        return false;
    }
    if (!checkKeys(j, {"name", "machines", "sweeps"}, "spec", err))
        return false;
    std::string name = j.getString("name");
    if (name.empty()) {
        if (err)
            *err = "spec: needs a non-empty 'name'";
        return false;
    }
    if (const Json *jm = j.find("machines")) {
        if (!jm->isArray()) {
            if (err)
                *err = "spec: 'machines' must be an array";
            return false;
        }
        for (const Json &e : jm->arr()) {
            MachineSpec m;
            if (!machineFromJson(e, base_dir, *reg, &m, err))
                return false;
            if (!reg->add(std::move(m), err))
                return false;
        }
    }
    const Json *js = j.find("sweeps");
    if (!js || !js->isArray() || js->arr().empty()) {
        if (err)
            *err = "spec: needs a non-empty 'sweeps' array";
        return false;
    }
    std::vector<SweepSpec> sweeps;
    for (const Json &e : js->arr()) {
        SweepSpec s;
        if (!sweepFromJson(e, base_dir, *reg, &s, err))
            return false;
        for (const SweepSpec &prev : sweeps) {
            if (prev.name == s.name) {
                if (err)
                    *err = "spec: duplicate sweep name '" +
                           s.name + "'";
                return false;
            }
        }
        sweeps.push_back(std::move(s));
    }
    *out = std::move(sweeps);
    *label = std::move(name);
    return true;
}

bool
loadSpecFile(const std::string &path, MachineRegistry *reg,
             std::vector<SweepSpec> *out, std::string *label,
             std::string *err)
{
    std::string parse_err;
    Json j = Json::parseFile(path, &parse_err);
    if (!parse_err.empty()) {
        if (err)
            *err = parse_err;
        return false;
    }
    std::string parent = fs::path(path).parent_path().string();
    if (!sweepsFromSpecJson(j, parent, reg, out, label, err)) {
        if (err)
            *err = path + ": " + *err;
        return false;
    }
    return true;
}

} // namespace siwi::runner
