#include "runner/experiment_runner.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

namespace siwi::runner {

unsigned
resolveJobs(unsigned jobs)
{
    if (jobs)
        return jobs;
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

unsigned
effectiveJobs(unsigned jobs, size_t cells)
{
    return unsigned(std::min<size_t>(resolveJobs(jobs),
                                     std::max<size_t>(cells, 1)));
}

CellExecutor::CellExecutor(unsigned jobs)
{
    unsigned n = resolveJobs(jobs);
    threads_.reserve(n);
    for (unsigned t = 0; t < n; ++t)
        threads_.emplace_back([this] { workerLoop(); });
}

CellExecutor::~CellExecutor()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
CellExecutor::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(job));
    }
    cv_.notify_one();
}

size_t
CellExecutor::outstanding() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size() + active_;
}

void
CellExecutor::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] {
                return stop_ || !queue_.empty();
            });
            // Drain before stopping: a destructor-raced submit
            // still runs, so a server shutdown cannot drop cells
            // whose results a client is already waiting on.
            if (queue_.empty())
                return;
            job = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        job();
        {
            std::lock_guard<std::mutex> lock(mu_);
            --active_;
        }
    }
}

CellResult
runCell(const SweepSpec &sweep, size_t machine, size_t wl,
        size_t sms, size_t policy, bool cycle_skip)
{
    const MachineSpec &m = sweep.machines[machine];
    const workloads::Workload &w = *sweep.wls[wl];
    const unsigned num_sms = sweep.smsAt(sms);
    const frontend::SchedPolicyKind pol =
        effectivePolicy(sweep, machine, policy);

    // The exact chip the machineRecords block advertises — chip
    // overrides (L2 slicing, DRAM channels, NoC) included.
    core::GpuConfig chip =
        resolvedCellConfig(sweep, machine, sms, policy);
    workloads::RunResult res = workloads::runWorkload(
        w, chip, sweep.size, cycle_skip);

    CellResult c;
    c.sweep = sweep.name;
    // Policy and SM count are part of the cell identity (baselines
    // and tables key on the machine label), so non-default cells
    // carry them in the label; plain oldest-first single-SM labels
    // stay unchanged.
    c.machine = cellMachineLabel(m.name, pol, num_sms);
    c.num_sms = num_sms;
    c.policy = frontend::schedPolicyName(pol);
    c.workload = w.name();
    c.size = sizeClassName(sweep.size);
    c.excluded_from_means = w.excludedFromMeans();
    c.verified = res.verified;
    c.verify_msg = res.verify_msg;
    c.timed_out = res.stats.timed_out;
    c.stats = res.stats;
    c.ipc = res.stats.ipc();
    return c;
}

std::vector<MachineRecord>
machineRecords(const std::vector<SweepSpec> &sweeps)
{
    std::vector<MachineRecord> out;
    for (const SweepSpec &s : sweeps) {
        for (size_t n = 0; n < s.sms.size(); ++n) {
            for (size_t p = 0; p < s.policies.size(); ++p) {
                for (size_t m = 0; m < s.machines.size(); ++m) {
                    out.push_back(
                        {s.name,
                         cellMachineLabel(
                             s.machines[m].name,
                             effectivePolicy(s, m, p),
                             s.smsAt(n)),
                         resolvedCellConfig(s, m, n, p)});
                }
            }
        }
    }
    return out;
}

Results
runSweeps(const std::vector<SweepSpec> &sweeps_in,
          const RunOptions &opts)
{
    // Normalize a private copy: identical machine columns would
    // run identical cells, so they are dropped (with a warning)
    // before expansion.
    std::vector<SweepSpec> sweeps = sweeps_in;
    for (SweepSpec &s : sweeps)
        s.dedupeMachines();

    const std::vector<CellSpec> cells = expandCells(sweeps);
    const unsigned jobs = effectiveJobs(opts.jobs, cells.size());

    Results out;
    out.suite = opts.suite_label;
    out.machines = machineRecords(sweeps);
    out.cells.resize(cells.size());

    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex io_mutex;
    std::mutex cb_mutex;

    auto worker = [&] {
        for (;;) {
            size_t i = next.fetch_add(1);
            if (i >= cells.size())
                return;
            const CellSpec &cs = cells[i];
            CellResult c =
                runCell(sweeps[cs.sweep], cs.machine, cs.wl,
                        cs.sms, cs.policy, opts.cycle_skip);
            size_t n = done.fetch_add(1) + 1;
            if (opts.progress || !c.verified || c.timed_out) {
                std::lock_guard<std::mutex> lock(io_mutex);
                if (opts.progress) {
                    std::fprintf(stderr,
                                 "[%zu/%zu] %s %s %s  ipc %.2f%s%s\n",
                                 n, cells.size(), c.sweep.c_str(),
                                 c.machine.c_str(),
                                 c.workload.c_str(), c.ipc,
                                 c.verified ? "" : "  VERIFY FAIL",
                                 c.timed_out ? "  TIMED OUT" : "");
                } else if (!c.verified) {
                    std::fprintf(
                        stderr,
                        "VERIFICATION FAILED: %s on %s: %s\n",
                        c.workload.c_str(), c.machine.c_str(),
                        c.verify_msg.c_str());
                } else {
                    std::fprintf(
                        stderr,
                        "TIMED OUT: %s on %s truncated at the "
                        "cycle cap; counters cover only the "
                        "simulated prefix\n",
                        c.workload.c_str(), c.machine.c_str());
                }
            }
            if (opts.on_cell) {
                std::lock_guard<std::mutex> lock(cb_mutex);
                opts.on_cell(i, c);
            }
            out.cells[i] = std::move(c);
        }
    };

    if (jobs <= 1) {
        worker();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(jobs);
        for (unsigned t = 0; t < jobs; ++t)
            threads.emplace_back(worker);
        for (std::thread &t : threads)
            t.join();
    }
    return out;
}

} // namespace siwi::runner
