#include "runner/experiment_runner.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

namespace siwi::runner {

unsigned
resolveJobs(unsigned jobs)
{
    if (jobs)
        return jobs;
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

unsigned
effectiveJobs(unsigned jobs, size_t cells)
{
    return unsigned(std::min<size_t>(resolveJobs(jobs),
                                     std::max<size_t>(cells, 1)));
}

CellResult
runCell(const SweepSpec &sweep, size_t machine, size_t wl,
        size_t sms)
{
    const MachineSpec &m = sweep.machines[machine];
    const workloads::Workload &w = *sweep.wls[wl];
    const unsigned num_sms =
        sweep.sms.empty() ? 1 : sweep.sms[sms];

    workloads::RunResult res =
        workloads::runWorkload(w, m.config, sweep.size, num_sms);

    CellResult c;
    c.sweep = sweep.name;
    // The SM count is part of the cell identity (baselines and
    // tables key on the machine label), so multi-SM cells carry
    // it in the label; plain single-SM labels stay unchanged.
    c.machine = num_sms == 1
                    ? m.name
                    : m.name + "@" + std::to_string(num_sms) +
                          "sm";
    c.num_sms = num_sms;
    c.workload = w.name();
    c.size = sizeClassName(sweep.size);
    c.excluded_from_means = w.excludedFromMeans();
    c.verified = res.verified;
    c.verify_msg = res.verify_msg;
    c.stats = res.stats;
    c.ipc = res.stats.ipc();
    return c;
}

Results
runSweeps(const std::vector<SweepSpec> &sweeps,
          const RunOptions &opts)
{
    const std::vector<CellSpec> cells = expandCells(sweeps);
    const unsigned jobs = effectiveJobs(opts.jobs, cells.size());

    Results out;
    out.suite = opts.suite_label;
    out.cells.resize(cells.size());

    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex io_mutex;

    auto worker = [&] {
        for (;;) {
            size_t i = next.fetch_add(1);
            if (i >= cells.size())
                return;
            const CellSpec &cs = cells[i];
            CellResult c = runCell(sweeps[cs.sweep], cs.machine,
                                   cs.wl, cs.sms);
            size_t n = done.fetch_add(1) + 1;
            if (opts.progress || !c.verified) {
                std::lock_guard<std::mutex> lock(io_mutex);
                if (opts.progress) {
                    std::fprintf(stderr,
                                 "[%zu/%zu] %s %s %s  ipc %.2f%s\n",
                                 n, cells.size(), c.sweep.c_str(),
                                 c.machine.c_str(),
                                 c.workload.c_str(), c.ipc,
                                 c.verified ? "" : "  VERIFY FAIL");
                } else {
                    std::fprintf(
                        stderr,
                        "VERIFICATION FAILED: %s on %s: %s\n",
                        c.workload.c_str(), c.machine.c_str(),
                        c.verify_msg.c_str());
                }
            }
            out.cells[i] = std::move(c);
        }
    };

    if (jobs <= 1) {
        worker();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(jobs);
        for (unsigned t = 0; t < jobs; ++t)
            threads.emplace_back(worker);
        for (std::thread &t : threads)
            t.join();
    }
    return out;
}

} // namespace siwi::runner
