/**
 * @file
 * The named sweeps of the paper's evaluation, shared by the
 * figure-reproduction benches and the siwi-run CLI.
 */

#ifndef SIWI_RUNNER_SUITES_HH
#define SIWI_RUNNER_SUITES_HH

#include "runner/sweep.hh"

namespace siwi::runner {

/** Options mirroring the historical bench binary flags. */
struct Fig7Options
{
    /** Extra SBI column without the secondary fallback. */
    bool ablate_sbi_fallback = false;
    /** Disable DWS-style memory splits on every machine. */
    bool no_mem_splits = false;
};

/**
 * Figure 7 panel: Baseline / SBI / SWI / SBI+SWI / Warp64 over
 * the regular (7a) or irregular (7b) applications.
 */
SweepSpec fig7Sweep(bool regular, workloads::SizeClass size,
                    const Fig7Options &opts = {});

/**
 * Figure 8(a): SBI reconvergence constraints ON vs OFF, for SBI
 * and SBI+SWI ("-nc" suffix = no constraints).
 */
SweepSpec fig8aSweep(bool regular, workloads::SizeClass size);

/** Figure 8(b) / Table 1: SWI lane-shuffle policies. */
SweepSpec fig8bSweep(bool regular, workloads::SizeClass size);

/**
 * Figure 9: SWI mask-lookup associativity ladder (full / 11-way /
 * 3-way / direct-mapped) plus the Baseline reference.
 */
SweepSpec fig9Sweep(bool regular, workloads::SizeClass size);

/**
 * Scheduling-policy study (beyond the paper): the Figure 7 grid
 * crossed with every primary scheduling policy of the frontend
 * registry (oldest / rr / gto / minpc). Oldest-first cells
 * reproduce fig7 bit-exactly.
 */
SweepSpec policySweep(bool regular, workloads::SizeClass size);

/**
 * Multi-SM scaling study (beyond the paper): Baseline and SBI+SWI
 * chips over num_sms in {1, 2, 4, 8} on a mixed
 * regular/irregular workload panel, sharing one L2 + DRAM channel
 * (see core::GpuConfig::make for the bandwidth model).
 */
SweepSpec scalingSweep(workloads::SizeClass size);

/**
 * The banked-memory scaling study: the scalingSweep() panel on
 * chips with 8 L2 slices, 4 DRAM channels (aggregate bandwidth
 * pinned to the legacy chip's 4-SM saturation point) and a
 * modeled SM<->L2 interconnect, out to 64 SMs — where the
 * single-pipe chip's knee sits versus a memory system whose
 * concurrency scales.
 */
SweepSpec scalingBankedSweep(workloads::SizeClass size);

/** Names accepted by figureSweeps(). */
const std::vector<std::string> &knownFigures();

/**
 * Both panels of one figure ("fig7", "fig8a", "fig8b", "fig9")
 * at @p size. Empty when the name is unknown.
 */
std::vector<SweepSpec> figureSweeps(const std::string &figure,
                                    workloads::SizeClass size);

/** Names accepted by suiteSweeps(). */
const std::vector<std::string> &knownSuites();

/**
 * A named suite:
 *  - "fast": the Figure 7 grid at Tiny size — seconds, used by
 *    the CI regression gate;
 *  - "fig7": the Figure 7 grid at Full size;
 *  - "full": every figure sweep at Full size.
 * Empty when the name is unknown.
 */
std::vector<SweepSpec> suiteSweeps(const std::string &suite);

} // namespace siwi::runner

#endif // SIWI_RUNNER_SUITES_HH
