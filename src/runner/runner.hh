/**
 * @file
 * Umbrella header: the experiment-runner subsystem.
 *
 * Typical use:
 * @code
 *   #include "runner/runner.hh"
 *
 *   using namespace siwi;
 *   auto sweeps = {runner::fig7Sweep(true,
 *                      workloads::SizeClass::Full)};
 *   runner::RunOptions opts;
 *   opts.jobs = 8;
 *   runner::Results res = runner::runSweeps(sweeps, opts);
 *   std::fputs(runner::formatSweepTable(res, "fig7_regular")
 *                  .c_str(), stdout);
 *   res.save("fig7.json", nullptr);
 * @endcode
 */

#ifndef SIWI_RUNNER_RUNNER_HH
#define SIWI_RUNNER_RUNNER_HH

#include "runner/baseline.hh"
#include "runner/cli.hh"
#include "runner/experiment_runner.hh"
#include "runner/metrics.hh"
#include "runner/results.hh"
#include "runner/spec.hh"
#include "runner/suites.hh"
#include "runner/sweep.hh"
#include "runner/table.hh"

#endif // SIWI_RUNNER_RUNNER_HH
