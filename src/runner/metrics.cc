#include "runner/metrics.hh"

#include <cmath>

#include "common/log.hh"

namespace siwi::runner {

double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : v) {
        if (x <= 0.0)
            return 0.0;
        acc += std::log(x);
    }
    return std::exp(acc / double(v.size()));
}

std::vector<double>
excludeFromMeans(const std::vector<double> &values,
                 const std::vector<bool> &excluded)
{
    siwi_assert(values.size() == excluded.size(),
                "excludeFromMeans: ", values.size(), " values vs ",
                excluded.size(), " flags");
    std::vector<double> kept;
    for (size_t i = 0; i < values.size(); ++i) {
        if (!excluded[i])
            kept.push_back(values[i]);
    }
    return kept;
}

} // namespace siwi::runner
