#include "runner/baseline.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace siwi::runner {

namespace {

std::string
cellKey(const CellResult &c)
{
    return c.sweep + " / " + c.machine + " / " + c.workload;
}

} // namespace

CompareReport
compareResults(const Results &baseline, const Results &candidate,
               double tolerance)
{
    CompareReport rep;
    rep.tolerance = tolerance;

    for (const CellResult &b : baseline.cells) {
        const CellResult *c =
            candidate.find(b.sweep, b.machine, b.workload);
        if (!c) {
            rep.missing.push_back(cellKey(b));
            continue;
        }
        CellDelta d;
        d.sweep = b.sweep;
        d.machine = b.machine;
        d.workload = b.workload;
        d.baseline_ipc = b.ipc;
        d.candidate_ipc = c->ipc;
        d.relative = b.ipc != 0.0
                         ? (c->ipc - b.ipc) / b.ipc
                         : (c->ipc != 0.0 ? 1.0 : 0.0);
        rep.deltas.push_back(d);
        if (d.relative < -tolerance)
            rep.regressions.push_back(d);
        else if (d.relative > tolerance)
            rep.improvements.push_back(d);
    }

    for (const CellResult &c : candidate.cells) {
        if (!baseline.find(c.sweep, c.machine, c.workload))
            rep.added.push_back(cellKey(c));
        if (!c.verified)
            rep.unverified.push_back(cellKey(c));
        if (c.timed_out)
            rep.timed_out.push_back(cellKey(c));
    }

    auto worst_first = [](const CellDelta &a, const CellDelta &b) {
        return a.relative < b.relative;
    };
    std::sort(rep.regressions.begin(), rep.regressions.end(),
              worst_first);
    std::sort(rep.improvements.begin(), rep.improvements.end(),
              [](const CellDelta &a, const CellDelta &b) {
                  return a.relative > b.relative;
              });
    return rep;
}

std::string
CompareReport::format() const
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(2);

    os << "baseline comparison: " << deltas.size()
       << " cells compared, tolerance " << 100.0 * tolerance
       << "%\n";

    auto list = [&](const char *title,
                    const std::vector<CellDelta> &v) {
        if (v.empty())
            return;
        os << title << " (" << v.size() << "):\n";
        for (const CellDelta &d : v) {
            os << "  " << d.sweep << " / " << d.machine << " / "
               << d.workload << ": " << d.baseline_ipc << " -> "
               << d.candidate_ipc << " ("
               << (d.relative >= 0 ? "+" : "")
               << 100.0 * d.relative << "%)\n";
        }
    };
    list("REGRESSIONS beyond tolerance", regressions);
    list("improvements beyond tolerance", improvements);

    auto names = [&](const char *title,
                     const std::vector<std::string> &v) {
        if (v.empty())
            return;
        os << title << " (" << v.size() << "):\n";
        for (const std::string &s : v)
            os << "  " << s << "\n";
    };
    names("MISSING cells (in baseline, not in candidate)",
          missing);
    names("added cells (not in baseline)", added);
    names("UNVERIFIED candidate cells", unverified);
    names("TIMED-OUT candidate cells (cycle cap hit)", timed_out);

    os << (pass() ? "PASS" : "FAIL") << "\n";
    return os.str();
}

} // namespace siwi::runner
