#include "runner/cli.hh"

#include <cstdio>
#include <cstdlib>

namespace siwi::runner {

ArgList::ArgList(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        args_.push_back(argv[i]);
}

bool
ArgList::flag(const std::string &name)
{
    for (size_t i = 0; i < args_.size(); ++i) {
        if (args_[i] == name) {
            args_.erase(args_.begin() + long(i));
            return true;
        }
    }
    return false;
}

bool
ArgList::option(const std::string &name, std::string *value)
{
    for (size_t i = 0; i < args_.size(); ++i) {
        if (args_[i] != name)
            continue;
        if (i + 1 >= args_.size()) {
            errors_.push_back(name + " requires a value");
            args_.erase(args_.begin() + long(i));
            return false;
        }
        *value = args_[i + 1];
        args_.erase(args_.begin() + long(i),
                    args_.begin() + long(i) + 2);
        return true;
    }
    return false;
}

std::vector<std::string>
ArgList::options(const std::string &name)
{
    std::vector<std::string> values;
    std::string v;
    while (option(name, &v))
        values.push_back(v);
    return values;
}

bool
ArgList::intOption(const std::string &name, unsigned *value)
{
    std::string v;
    if (!option(name, &v))
        return false;
    // strtoul would wrap a leading '-'; reject it explicitly.
    char *end = nullptr;
    unsigned long n = std::strtoul(v.c_str(), &end, 10);
    if (v.empty() || v[0] == '-' || !end || end == v.c_str() ||
        *end != '\0') {
        errors_.push_back(name +
                          ": not a non-negative number: " + v);
        return false;
    }
    *value = unsigned(n);
    return true;
}

bool
ArgList::doubleOption(const std::string &name, double *value)
{
    std::string v;
    if (!option(name, &v))
        return false;
    char *end = nullptr;
    double d = std::strtod(v.c_str(), &end);
    if (!end || end == v.c_str() || *end != '\0') {
        errors_.push_back(name + ": not a number: " + v);
        return false;
    }
    *value = d;
    return true;
}

int
finishBench(const Results &res, const std::string &json_path)
{
    if (!json_path.empty()) {
        std::string err;
        if (!res.save(json_path, &err)) {
            std::fprintf(stderr, "%s\n", err.c_str());
            return 1;
        }
    }
    if (res.timeouts()) {
        std::fprintf(stderr,
                     "%zu cell(s) timed out at the cycle cap\n",
                     res.timeouts());
        return 1;
    }
    return res.verificationFailures() ? 1 : 0;
}

bool
smsAxisOption(ArgList &args, const char *prog,
              std::vector<unsigned> *out)
{
    for (const std::string &s : args.options("--sms")) {
        char *end = nullptr;
        unsigned long v = std::strtoul(s.c_str(), &end, 10);
        if (s.empty() || s[0] == '-' || !end || *end != '\0' ||
            v < 1 || v > 1024) {
            std::fprintf(stderr, "%s: bad --sms: %s\n", prog,
                         s.c_str());
            return false;
        }
        // A repeated count would expand to duplicate cells with
        // colliding "@<n>sm" labels.
        for (unsigned prev : *out) {
            if (prev == unsigned(v)) {
                std::fprintf(stderr,
                             "%s: duplicate --sms %lu\n", prog,
                             v);
                return false;
            }
        }
        out->push_back(unsigned(v));
    }
    return true;
}

bool
finishArgs(const ArgList &args, const char *prog)
{
    for (const std::string &e : args.errors())
        std::fprintf(stderr, "%s: %s\n", prog, e.c_str());
    for (const std::string &a : args.remaining())
        std::fprintf(stderr, "%s: unknown argument: %s\n", prog,
                     a.c_str());
    return args.errors().empty() && args.remaining().empty();
}

} // namespace siwi::runner
