/**
 * @file
 * Concurrent execution of experiment sweeps.
 *
 * Cells are embarrassingly parallel: each one compiles its kernel,
 * builds its own GPU, generates its own inputs and verifies its
 * own outputs, with no shared mutable state (workload objects are
 * immutable singletons, RNGs are per-cell). The runner therefore
 * uses a plain std::thread pool pulling cell indices off one
 * atomic counter; results land in a pre-sized vector slot per
 * cell, so the output order — and the serialized JSON — is
 * byte-identical for any thread count.
 */

#ifndef SIWI_RUNNER_EXPERIMENT_RUNNER_HH
#define SIWI_RUNNER_EXPERIMENT_RUNNER_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

#include "runner/results.hh"
#include "runner/sweep.hh"

namespace siwi::runner {

/** Execution knobs of one runner invocation. */
struct RunOptions
{
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned jobs = 0;
    /** Per-cell progress lines on stderr. */
    bool progress = false;
    /** Label copied into Results::suite. */
    std::string suite_label;
    /**
     * Event-driven cycle skipping (core::LaunchConfig::cycle_skip).
     * Results are bit-identical either way; off (siwi-run
     * --no-skip) is the cross-check mode the stepping-equivalence
     * gate runs.
     */
    bool cycle_skip = true;
    /**
     * Completion hook: called once per finished cell with its
     * canonical index (the slot in Results::cells) and result,
     * as soon as the cell completes — execution order, not
     * canonical order. Invoked from worker threads, serialized
     * under an internal mutex, so the callback itself need not
     * lock. Streaming consumers (serve/cached_run.hh) hang their
     * cache stores and progress wires off this; it cannot affect
     * the returned Results.
     */
    std::function<void(size_t index, const CellResult &)> on_cell;
};

/**
 * A persistent pool of cell-running worker threads, the sharding
 * substrate the serve layer keeps alive across submissions (one
 * runSweeps() call owns its threads for one sweep; a server
 * executes cells from many concurrent submissions on one pool).
 * Jobs are arbitrary closures drained FIFO; submission never
 * blocks. Destruction drains the queue, then joins.
 */
class CellExecutor
{
  public:
    /** @p jobs as in RunOptions (0 = hardware concurrency). */
    explicit CellExecutor(unsigned jobs = 0);
    ~CellExecutor();

    CellExecutor(const CellExecutor &) = delete;
    CellExecutor &operator=(const CellExecutor &) = delete;

    /** Enqueue @p job; runs on some worker thread. */
    void submit(std::function<void()> job);

    /** Worker thread count. */
    unsigned jobs() const { return unsigned(threads_.size()); }

    /** Jobs submitted but not yet finished. */
    size_t outstanding() const;

  private:
    void workerLoop();

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    size_t active_ = 0;
    bool stop_ = false;
    std::vector<std::thread> threads_;
};

/** Number of workers @p jobs resolves to on this host. */
unsigned resolveJobs(unsigned jobs);

/** Workers runSweeps() will actually use for @p cells cells. */
unsigned effectiveJobs(unsigned jobs, size_t cells);

/**
 * Resolved config per (sweep, decorated machine label) of
 * @p sweeps, in canonical order — the "machines" block of the
 * results, also printed by siwi-run --dump-config.
 */
std::vector<MachineRecord> machineRecords(
    const std::vector<SweepSpec> &sweeps);

/**
 * Run every cell of @p sweeps and collect the results in
 * canonical order (see expandCells()). Thread-count and execution
 * schedule cannot affect the returned value. Machine columns that
 * resolve to the same configuration are deduplicated first (with
 * a warning), so identical cells are never paid for twice.
 */
Results runSweeps(const std::vector<SweepSpec> &sweeps,
                  const RunOptions &opts = {});

/**
 * Run one (workload, config, SM count, policy) cell, the
 * primitive the benches used to call runCell() for. @p sms and
 * @p policy index the sweep's SM-count and scheduling-policy axes
 * (default: their first entries); @p cycle_skip as in RunOptions.
 */
CellResult runCell(const SweepSpec &sweep, size_t machine,
                   size_t wl, size_t sms = 0, size_t policy = 0,
                   bool cycle_skip = true);

} // namespace siwi::runner

#endif // SIWI_RUNNER_EXPERIMENT_RUNNER_HH
