/**
 * @file
 * Machine-readable results of an experiment sweep.
 *
 * Results is the one container every consumer shares: the bench
 * table printers, the siwi-run CLI, the JSON/CSV serializers and
 * the CI baseline gate. The JSON layout is versioned via
 * core::stats_schema_version (see core/stats_io.hh); bench/README.md
 * documents the schema.
 */

#ifndef SIWI_RUNNER_RESULTS_HH
#define SIWI_RUNNER_RESULTS_HH

#include <string>
#include <string_view>
#include <vector>

#include "common/json.hh"
#include "core/gpu.hh"
#include "core/stats.hh"
#include "workloads/workload.hh"

namespace siwi::runner {

/** Outcome of one (sweep, machine, workload) cell. */
struct CellResult
{
    std::string sweep;
    /**
     * Machine label; includes "/<policy>" for non-default
     * scheduling policies and "@<n>sm" for multi-SM cells.
     */
    std::string machine;
    std::string workload;
    std::string size;      //!< "tiny" | "full" | "chip"
    unsigned num_sms = 1;  //!< chip SM count of this cell
    std::string policy;    //!< scheduling policy ("oldest", ...)
    bool excluded_from_means = false;
    bool verified = false;
    /**
     * The run hit the cycle cap: stats cover only the simulated
     * prefix and ipc is not a result. Tables render "T/O", the
     * gate treats it like a verification failure.
     */
    bool timed_out = false;
    double ipc = 0.0;
    core::SimStats stats;
    std::string verify_msg; //!< diagnostic when !verified

    bool operator==(const CellResult &) const = default;
};

/**
 * The fully-resolved configuration behind one machine column of
 * one sweep. Embedded into the serialized results ("machines"),
 * so an artifact carries everything needed to re-run it; cells
 * reference records by their decorated machine label.
 */
struct MachineRecord
{
    std::string sweep;
    std::string machine; //!< decorated label, matches cell labels
    core::GpuConfig config;

    bool operator==(const MachineRecord &rhs) const
    {
        return sweep == rhs.sweep && machine == rhs.machine &&
               config == rhs.config;
    }
};

/**
 * Serialize machine records as the results "machines" array —
 * shared by Results::toJson and siwi-run --dump-config so the
 * two cannot drift.
 */
Json machinesToJson(const std::vector<MachineRecord> &machines);

/**
 * Serialize one cell exactly as it appears in the results "cells"
 * array — shared by Results::toJson, the serve-layer result cache
 * (one blob per cell) and the streaming protocol, so a cell that
 * travels through the cache or the wire re-serializes
 * byte-identically to a locally computed one.
 */
Json cellToJson(const CellResult &c);

/**
 * Rebuild a cell from cellToJson() output (tolerant member reads,
 * strict stats block). @return false and set @p err on malformed
 * input.
 */
bool cellFromJson(const Json &jc, CellResult *out,
                  std::string *err);

/** All cells of one runner invocation, in canonical sweep order. */
class Results
{
  public:
    std::string suite; //!< label of what was run, e.g. "fast"
    /** Resolved config per (sweep, machine label), in canonical
     *  order (sweep-major, then SM count, policy, machine). */
    std::vector<MachineRecord> machines;
    std::vector<CellResult> cells;

    /** Machine record by key; nullptr when absent. */
    const MachineRecord *findMachine(
        const std::string &sweep,
        const std::string &machine) const;

    /** Cell lookup by key; nullptr when absent. */
    const CellResult *find(const std::string &sweep,
                           const std::string &machine,
                           const std::string &workload) const;

    /** Distinct sweep names, in first-appearance order. */
    std::vector<std::string> sweepNames() const;

    /** Cells of one sweep, in stored order. */
    std::vector<const CellResult *> sweepCells(
        const std::string &sweep) const;

    /** Number of cells that failed functional verification. */
    size_t verificationFailures() const;

    /** Number of cells truncated at the cycle cap. */
    size_t timeouts() const;

    Json toJson() const;

    /** Pretty-printed JSON document with trailing newline. */
    std::string toJsonText() const;

    /**
     * Flat CSV: one row per cell with the headline counters (the
     * full record is the JSON form).
     */
    std::string toCsv() const;

    /**
     * Parse toJson() output. Fails on schema-version mismatch.
     * @return false and set @p err on malformed input.
     */
    static bool fromJson(const Json &j, Results *out,
                         std::string *err);

    /** Read and parse a JSON results file. */
    static bool load(const std::string &path, Results *out,
                     std::string *err);

    /** Write toJsonText() to @p path. */
    bool save(const std::string &path, std::string *err) const;

    bool operator==(const Results &) const = default;
};

/** "tiny" / "full" / "chip" label of a SizeClass. */
const char *sizeClassName(workloads::SizeClass sc);

/** Parse a sizeClassName() label; false when unknown. */
bool parseSizeClass(std::string_view name,
                    workloads::SizeClass *out);

} // namespace siwi::runner

#endif // SIWI_RUNNER_RESULTS_HH
