#include "runner/table.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "common/log.hh"
#include "runner/metrics.hh"

namespace siwi::runner {

namespace {

void
appendf(std::string &out, const char *fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    if (n > 0)
        out.append(buf, std::min(size_t(n), sizeof(buf) - 1));
}

std::string
formatTable(const std::vector<TableRow> &rows,
            const std::vector<std::string> &col_names,
            const std::vector<std::vector<double>> &cols,
            const char *fmt,
            const std::vector<std::vector<bool>> *invalid = nullptr)
{
    siwi_assert(cols.size() == col_names.size(),
                "table: ", cols.size(), " columns vs ",
                col_names.size(), " names");
    for (const auto &col : cols) {
        siwi_assert(col.size() == rows.size(),
                    "table: column with ", col.size(),
                    " values vs ", rows.size(), " rows");
    }

    auto cellInvalid = [&](size_t c, size_t r) {
        return invalid && (*invalid)[c][r];
    };

    std::string out;
    appendf(out, "%-22s", "");
    for (const std::string &n : col_names)
        appendf(out, "%12s", n.c_str());
    out += '\n';

    bool any_invalid = false;
    for (size_t r = 0; r < rows.size(); ++r) {
        appendf(out, "%-22s", rows[r].name.c_str());
        for (size_t c = 0; c < cols.size(); ++c) {
            if (cellInvalid(c, r)) {
                // A truncated run has no meaningful IPC; never
                // print a plausible-looking number for it.
                appendf(out, "%12s", "T/O");
                any_invalid = true;
            } else {
                appendf(out, fmt, cols[c][r]);
            }
        }
        out += '\n';
    }

    // Geomean over non-excluded rows (paper: TMD not counted);
    // timed-out cells are dropped from their column's mean.
    appendf(out, "%-22s", "Gmean");
    for (size_t c = 0; c < cols.size(); ++c) {
        std::vector<bool> excluded;
        for (size_t r = 0; r < rows.size(); ++r)
            excluded.push_back(rows[r].excluded ||
                               cellInvalid(c, r));
        appendf(out, fmt,
                geomean(excludeFromMeans(cols[c], excluded)));
    }
    out += '\n';
    if (any_invalid)
        out += "(T/O = timed out at the cycle cap; excluded from "
               "Gmean)\n";
    return out;
}

} // namespace

std::string
formatIpcTable(const std::vector<TableRow> &rows,
               const std::vector<std::string> &col_names,
               const std::vector<std::vector<double>> &cols,
               const std::vector<std::vector<bool>> *invalid)
{
    return formatTable(rows, col_names, cols, "%12.2f", invalid);
}

std::string
formatRatioTable(const std::vector<TableRow> &rows,
                 const std::vector<std::string> &col_names,
                 const std::vector<std::vector<double>> &cols,
                 const std::vector<std::vector<bool>> *invalid)
{
    return formatTable(rows, col_names, cols, "%12.3f", invalid);
}

std::vector<TableRow>
sweepRows(const Results &results, const std::string &sweep)
{
    std::vector<TableRow> rows;
    for (const CellResult *c : results.sweepCells(sweep)) {
        if (std::none_of(rows.begin(), rows.end(),
                         [&](const TableRow &r) {
                             return r.name == c->workload;
                         }))
            rows.push_back({c->workload, c->excluded_from_means});
    }
    return rows;
}

std::vector<std::string>
sweepMachines(const Results &results, const std::string &sweep)
{
    std::vector<std::string> names;
    for (const CellResult *c : results.sweepCells(sweep)) {
        if (std::find(names.begin(), names.end(), c->machine) ==
            names.end())
            names.push_back(c->machine);
    }
    return names;
}

SweepColumnData
sweepColumnData(const Results &results, const std::string &sweep,
                const std::string &machine)
{
    SweepColumnData col;
    for (const CellResult *c : results.sweepCells(sweep)) {
        if (c->machine == machine) {
            col.ipc.push_back(c->ipc);
            col.timed_out.push_back(c->timed_out);
        }
    }
    return col;
}

std::vector<double>
sweepColumn(const Results &results, const std::string &sweep,
            const std::string &machine)
{
    return sweepColumnData(results, sweep, machine).ipc;
}

std::string
formatSweepTable(const Results &results, const std::string &sweep)
{
    std::vector<std::string> machines =
        sweepMachines(results, sweep);
    std::vector<std::vector<double>> cols;
    std::vector<std::vector<bool>> timed_out;
    for (const std::string &m : machines) {
        SweepColumnData col = sweepColumnData(results, sweep, m);
        cols.push_back(std::move(col.ipc));
        timed_out.push_back(std::move(col.timed_out));
    }
    return formatIpcTable(sweepRows(results, sweep), machines,
                          cols, &timed_out);
}

} // namespace siwi::runner
