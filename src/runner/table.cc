#include "runner/table.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "common/log.hh"
#include "runner/metrics.hh"

namespace siwi::runner {

namespace {

void
appendf(std::string &out, const char *fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    if (n > 0)
        out.append(buf, std::min(size_t(n), sizeof(buf) - 1));
}

std::string
formatTable(const std::vector<TableRow> &rows,
            const std::vector<std::string> &col_names,
            const std::vector<std::vector<double>> &cols,
            const char *fmt)
{
    siwi_assert(cols.size() == col_names.size(),
                "table: ", cols.size(), " columns vs ",
                col_names.size(), " names");
    for (const auto &col : cols) {
        siwi_assert(col.size() == rows.size(),
                    "table: column with ", col.size(),
                    " values vs ", rows.size(), " rows");
    }

    std::string out;
    appendf(out, "%-22s", "");
    for (const std::string &n : col_names)
        appendf(out, "%12s", n.c_str());
    out += '\n';

    for (size_t r = 0; r < rows.size(); ++r) {
        appendf(out, "%-22s", rows[r].name.c_str());
        for (const auto &col : cols)
            appendf(out, fmt, col[r]);
        out += '\n';
    }

    // Geomean over non-excluded rows (paper: TMD not counted).
    std::vector<bool> excluded;
    for (const TableRow &r : rows)
        excluded.push_back(r.excluded);
    appendf(out, "%-22s", "Gmean");
    for (const auto &col : cols)
        appendf(out, fmt, geomean(excludeFromMeans(col, excluded)));
    out += '\n';
    return out;
}

} // namespace

std::string
formatIpcTable(const std::vector<TableRow> &rows,
               const std::vector<std::string> &col_names,
               const std::vector<std::vector<double>> &cols)
{
    return formatTable(rows, col_names, cols, "%12.2f");
}

std::string
formatRatioTable(const std::vector<TableRow> &rows,
                 const std::vector<std::string> &col_names,
                 const std::vector<std::vector<double>> &cols)
{
    return formatTable(rows, col_names, cols, "%12.3f");
}

std::vector<TableRow>
sweepRows(const Results &results, const std::string &sweep)
{
    std::vector<TableRow> rows;
    for (const CellResult *c : results.sweepCells(sweep)) {
        if (std::none_of(rows.begin(), rows.end(),
                         [&](const TableRow &r) {
                             return r.name == c->workload;
                         }))
            rows.push_back({c->workload, c->excluded_from_means});
    }
    return rows;
}

std::vector<std::string>
sweepMachines(const Results &results, const std::string &sweep)
{
    std::vector<std::string> names;
    for (const CellResult *c : results.sweepCells(sweep)) {
        if (std::find(names.begin(), names.end(), c->machine) ==
            names.end())
            names.push_back(c->machine);
    }
    return names;
}

std::vector<double>
sweepColumn(const Results &results, const std::string &sweep,
            const std::string &machine)
{
    std::vector<double> col;
    for (const CellResult *c : results.sweepCells(sweep)) {
        if (c->machine == machine)
            col.push_back(c->ipc);
    }
    return col;
}

std::string
formatSweepTable(const Results &results, const std::string &sweep)
{
    std::vector<std::string> machines =
        sweepMachines(results, sweep);
    std::vector<std::vector<double>> cols;
    for (const std::string &m : machines)
        cols.push_back(sweepColumn(results, sweep, m));
    return formatIpcTable(sweepRows(results, sweep), machines,
                          cols);
}

} // namespace siwi::runner
