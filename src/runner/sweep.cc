#include "runner/sweep.hh"

#include <algorithm>

#include "common/log.hh"
#include "core/config_io.hh"
#include "pipeline/config_io.hh"

namespace siwi::runner {

void
applyConfigSets(pipeline::SMConfig *cfg,
                const std::vector<std::string> &sets)
{
    for (const std::string &kv : sets) {
        std::string err;
        if (!pipeline::smConfigApplyKeyValue(kv, cfg, &err))
            panic("bad config override '", kv, "': ", err);
    }
}

bool
machineApplyKeyValue(MachineSpec *m, std::string_view kv,
                     std::string *err)
{
    // Accept "l2.slices=4" for "l2_slices=4": the dotted spelling
    // reads naturally on a command line, the flat one is the
    // canonical field-table key.
    std::string norm(kv);
    size_t eq = norm.find('=');
    size_t key_end = eq == std::string::npos ? norm.size() : eq;
    std::replace(norm.begin(), norm.begin() + long(key_end), '.',
                 '_');
    std::string_view key = std::string_view(norm).substr(0,
                                                         key_end);

    bool chip_key = false;
    for (const ConfigField<core::GpuConfig> &f :
         core::gpuConfigFields()) {
        if (key == f.key) {
            chip_key = true;
            break;
        }
    }
    if (!chip_key)
        return pipeline::smConfigApplyKeyValue(norm, &m->config,
                                               err);
    if (key == "num_sms" || key == "shared_backend") {
        if (err)
            *err = "'" + std::string(key) +
                   "' is not a machine override: the SM count is "
                   "the sweep's sms axis, and the backend choice "
                   "is derived from it";
        return false;
    }
    // Validate the value now (on a scratch chip), record the
    // normalized override for application after GpuConfig::make().
    core::GpuConfig scratch;
    if (!core::gpuConfigApplyKeyValue(norm, &scratch, err))
        return false;
    m->chip_sets.push_back(std::move(norm));
    return true;
}

void
applyMachineSets(MachineSpec *m,
                 const std::vector<std::string> &sets)
{
    for (const std::string &kv : sets) {
        std::string err;
        if (!machineApplyKeyValue(m, kv, &err))
            panic("bad config override '", kv, "': ", err);
    }
}

bool
machineApplyJson(MachineSpec *m, const Json &set,
                 std::string *err)
{
    if (!set.isObject()) {
        if (err)
            *err = "'set' must be a JSON object";
        return false;
    }
    for (const Json::Member &member : set.obj()) {
        const Json &v = member.second;
        std::string val;
        if (v.isInt()) {
            val = std::to_string(v.integer());
        } else if (v.isBool()) {
            val = v.boolean() ? "true" : "false";
        } else if (v.isString()) {
            val = v.str();
        } else {
            if (err)
                *err = "config key '" + member.first +
                       "' needs a scalar value";
            return false;
        }
        if (!machineApplyKeyValue(m, member.first + "=" + val,
                                  err))
            return false;
    }
    return true;
}

MachineSpec
makeMachine(pipeline::PipelineMode mode)
{
    return {pipeline::pipelineModeName(mode),
            pipeline::SMConfig::make(mode)};
}

MachineSpec
makeMachine(std::string name, pipeline::PipelineMode mode,
            const std::vector<std::string> &sets)
{
    MachineSpec m{std::move(name), pipeline::SMConfig::make(mode)};
    applyMachineSets(&m, sets);
    return m;
}

std::vector<MachineSpec>
crossMachine(const MachineSpec &base,
             const std::vector<Override> &overrides,
             bool label_only)
{
    std::vector<MachineSpec> out;
    for (const Override &o : overrides) {
        MachineSpec m = base;
        m.name = label_only ? o.label
                            : base.name + "/" + o.label;
        applyMachineSets(&m, o.sets);
        out.push_back(std::move(m));
    }
    return out;
}

namespace {

bool
keepName(const std::vector<std::string> &keep,
         const std::string &name)
{
    return keep.empty() ||
           std::find(keep.begin(), keep.end(), name) != keep.end();
}

} // namespace

void
SweepSpec::filterMachines(const std::vector<std::string> &keep)
{
    std::erase_if(machines, [&](const MachineSpec &m) {
        return !keepName(keep, m.name);
    });
}

void
SweepSpec::filterWorkloads(const std::vector<std::string> &keep)
{
    std::erase_if(wls, [&](const workloads::Workload *w) {
        return !keepName(keep, w->name());
    });
}

void
SweepSpec::dedupeMachines()
{
    std::vector<MachineSpec> unique;
    for (MachineSpec &m : machines) {
        const MachineSpec *dup = nullptr;
        for (const MachineSpec &u : unique) {
            if (u.config == m.config &&
                u.chip_sets == m.chip_sets) {
                dup = &u;
                break;
            }
        }
        if (dup) {
            warn("sweep '", name, "': machines '", dup->name,
                 "' and '", m.name,
                 "' resolve to the same configuration; dropping "
                 "'", m.name, "'");
        } else {
            unique.push_back(std::move(m));
        }
    }
    machines = std::move(unique);
}

std::string
SweepSpec::checkAxes() const
{
    for (size_t i = 0; i < sms.size(); ++i) {
        for (size_t j = i + 1; j < sms.size(); ++j) {
            if (sms[i] == sms[j])
                return "sweep '" + name +
                       "': duplicate sms entry " +
                       std::to_string(sms[i]);
        }
    }
    for (size_t m = 0; m < machines.size(); ++m) {
        for (size_t i = 0; i < policies.size(); ++i) {
            for (size_t j = i + 1; j < policies.size(); ++j) {
                if (effectivePolicy(*this, m, i) ==
                    effectivePolicy(*this, m, j))
                    return "sweep '" + name +
                           "': machine '" + machines[m].name +
                           "' runs policy '" +
                           frontend::schedPolicyName(
                               effectivePolicy(*this, m, i)) +
                           "' twice (the oldest axis entry "
                           "resolves to the machine's own "
                           "sched_policy)";
            }
        }
    }
    return {};
}

frontend::SchedPolicyKind
effectivePolicy(const SweepSpec &sweep, size_t machine,
                size_t policy_idx)
{
    frontend::SchedPolicyKind pol = sweep.policyAt(policy_idx);
    if (pol == frontend::SchedPolicyKind::OldestFirst)
        return sweep.machines[machine].config.sched_policy;
    return pol;
}

std::string
cellMachineLabel(const std::string &machine,
                 frontend::SchedPolicyKind policy,
                 unsigned num_sms)
{
    std::string label = machine;
    if (policy != frontend::SchedPolicyKind::OldestFirst) {
        label += '/';
        label += frontend::schedPolicyName(policy);
    }
    if (num_sms != 1) {
        label += '@';
        label += std::to_string(num_sms);
        label += "sm";
    }
    return label;
}

core::GpuConfig
resolvedCellConfig(const SweepSpec &sweep, size_t machine,
                   size_t sms_idx, size_t policy_idx)
{
    pipeline::SMConfig cfg = sweep.machines[machine].config;
    cfg.sched_policy = effectivePolicy(sweep, machine,
                                       policy_idx);
    core::GpuConfig chip = core::GpuConfig::make(
        cfg, sweep.smsAt(sms_idx));
    for (const std::string &kv :
         sweep.machines[machine].chip_sets) {
        std::string err;
        bool ok = core::gpuConfigApplyKeyValue(kv, &chip, &err);
        // chip_sets entries were validated when recorded; only a
        // programming error gets here.
        siwi_assert(ok, err);
    }
    return chip;
}

std::string
checkResolvedConfigs(const SweepSpec &sweep)
{
    for (size_t m = 0; m < sweep.machines.size(); ++m) {
        for (size_t n = 0; n < std::max<size_t>(
                                   sweep.sms.size(), 1);
             ++n) {
            std::string inv =
                resolvedCellConfig(sweep, m, n, 0)
                    .checkInvariants();
            if (!inv.empty())
                return "sweep '" + sweep.name + "' machine '" +
                       sweep.machines[m].name + "' @" +
                       std::to_string(sweep.smsAt(n)) +
                       "sm: " + inv;
        }
    }
    return {};
}

std::vector<CellSpec>
expandCells(const std::vector<SweepSpec> &sweeps)
{
    std::vector<CellSpec> cells;
    for (size_t s = 0; s < sweeps.size(); ++s) {
        for (size_t w = 0; w < sweeps[s].wls.size(); ++w) {
            for (size_t n = 0; n < sweeps[s].sms.size(); ++n) {
                for (size_t p = 0;
                     p < sweeps[s].policies.size(); ++p) {
                    for (size_t m = 0;
                         m < sweeps[s].machines.size(); ++m)
                        cells.push_back({s, m, w, n, p});
                }
            }
        }
    }
    return cells;
}

} // namespace siwi::runner
