#include "runner/sweep.hh"

#include <algorithm>

namespace siwi::runner {

MachineSpec
makeMachine(pipeline::PipelineMode mode)
{
    return {pipeline::pipelineModeName(mode),
            pipeline::SMConfig::make(mode)};
}

MachineSpec
makeMachine(std::string name, pipeline::PipelineMode mode,
            const std::function<void(pipeline::SMConfig &)> &tweak)
{
    MachineSpec m{std::move(name), pipeline::SMConfig::make(mode)};
    if (tweak)
        tweak(m.config);
    return m;
}

std::vector<MachineSpec>
crossMachine(const MachineSpec &base,
             const std::vector<Override> &overrides,
             bool label_only)
{
    std::vector<MachineSpec> out;
    for (const Override &o : overrides) {
        MachineSpec m = base;
        m.name = label_only ? o.label
                            : base.name + "/" + o.label;
        if (o.apply)
            o.apply(m.config);
        out.push_back(std::move(m));
    }
    return out;
}

namespace {

bool
keepName(const std::vector<std::string> &keep,
         const std::string &name)
{
    return keep.empty() ||
           std::find(keep.begin(), keep.end(), name) != keep.end();
}

} // namespace

void
SweepSpec::filterMachines(const std::vector<std::string> &keep)
{
    std::erase_if(machines, [&](const MachineSpec &m) {
        return !keepName(keep, m.name);
    });
}

void
SweepSpec::filterWorkloads(const std::vector<std::string> &keep)
{
    std::erase_if(wls, [&](const workloads::Workload *w) {
        return !keepName(keep, w->name());
    });
}

std::vector<CellSpec>
expandCells(const std::vector<SweepSpec> &sweeps)
{
    std::vector<CellSpec> cells;
    for (size_t s = 0; s < sweeps.size(); ++s) {
        for (size_t w = 0; w < sweeps[s].wls.size(); ++w) {
            for (size_t n = 0; n < sweeps[s].sms.size(); ++n) {
                for (size_t p = 0;
                     p < sweeps[s].policies.size(); ++p) {
                    for (size_t m = 0;
                         m < sweeps[s].machines.size(); ++m)
                        cells.push_back({s, m, w, n, p});
                }
            }
        }
    }
    return cells;
}

} // namespace siwi::runner
