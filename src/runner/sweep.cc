#include "runner/sweep.hh"

#include <algorithm>

#include "common/log.hh"
#include "pipeline/config_io.hh"

namespace siwi::runner {

void
applyConfigSets(pipeline::SMConfig *cfg,
                const std::vector<std::string> &sets)
{
    for (const std::string &kv : sets) {
        std::string err;
        if (!pipeline::smConfigApplyKeyValue(kv, cfg, &err))
            panic("bad config override '", kv, "': ", err);
    }
}

MachineSpec
makeMachine(pipeline::PipelineMode mode)
{
    return {pipeline::pipelineModeName(mode),
            pipeline::SMConfig::make(mode)};
}

MachineSpec
makeMachine(std::string name, pipeline::PipelineMode mode,
            const std::vector<std::string> &sets)
{
    MachineSpec m{std::move(name), pipeline::SMConfig::make(mode)};
    applyConfigSets(&m.config, sets);
    return m;
}

std::vector<MachineSpec>
crossMachine(const MachineSpec &base,
             const std::vector<Override> &overrides,
             bool label_only)
{
    std::vector<MachineSpec> out;
    for (const Override &o : overrides) {
        MachineSpec m = base;
        m.name = label_only ? o.label
                            : base.name + "/" + o.label;
        applyConfigSets(&m.config, o.sets);
        out.push_back(std::move(m));
    }
    return out;
}

namespace {

bool
keepName(const std::vector<std::string> &keep,
         const std::string &name)
{
    return keep.empty() ||
           std::find(keep.begin(), keep.end(), name) != keep.end();
}

} // namespace

void
SweepSpec::filterMachines(const std::vector<std::string> &keep)
{
    std::erase_if(machines, [&](const MachineSpec &m) {
        return !keepName(keep, m.name);
    });
}

void
SweepSpec::filterWorkloads(const std::vector<std::string> &keep)
{
    std::erase_if(wls, [&](const workloads::Workload *w) {
        return !keepName(keep, w->name());
    });
}

void
SweepSpec::dedupeMachines()
{
    std::vector<MachineSpec> unique;
    for (MachineSpec &m : machines) {
        const MachineSpec *dup = nullptr;
        for (const MachineSpec &u : unique) {
            if (u.config == m.config) {
                dup = &u;
                break;
            }
        }
        if (dup) {
            warn("sweep '", name, "': machines '", dup->name,
                 "' and '", m.name,
                 "' resolve to the same configuration; dropping "
                 "'", m.name, "'");
        } else {
            unique.push_back(std::move(m));
        }
    }
    machines = std::move(unique);
}

std::string
SweepSpec::checkAxes() const
{
    for (size_t i = 0; i < sms.size(); ++i) {
        for (size_t j = i + 1; j < sms.size(); ++j) {
            if (sms[i] == sms[j])
                return "sweep '" + name +
                       "': duplicate sms entry " +
                       std::to_string(sms[i]);
        }
    }
    for (size_t m = 0; m < machines.size(); ++m) {
        for (size_t i = 0; i < policies.size(); ++i) {
            for (size_t j = i + 1; j < policies.size(); ++j) {
                if (effectivePolicy(*this, m, i) ==
                    effectivePolicy(*this, m, j))
                    return "sweep '" + name +
                           "': machine '" + machines[m].name +
                           "' runs policy '" +
                           frontend::schedPolicyName(
                               effectivePolicy(*this, m, i)) +
                           "' twice (the oldest axis entry "
                           "resolves to the machine's own "
                           "sched_policy)";
            }
        }
    }
    return {};
}

frontend::SchedPolicyKind
effectivePolicy(const SweepSpec &sweep, size_t machine,
                size_t policy_idx)
{
    frontend::SchedPolicyKind pol = sweep.policyAt(policy_idx);
    if (pol == frontend::SchedPolicyKind::OldestFirst)
        return sweep.machines[machine].config.sched_policy;
    return pol;
}

std::string
cellMachineLabel(const std::string &machine,
                 frontend::SchedPolicyKind policy,
                 unsigned num_sms)
{
    std::string label = machine;
    if (policy != frontend::SchedPolicyKind::OldestFirst) {
        label += '/';
        label += frontend::schedPolicyName(policy);
    }
    if (num_sms != 1) {
        label += '@';
        label += std::to_string(num_sms);
        label += "sm";
    }
    return label;
}

core::GpuConfig
resolvedCellConfig(const SweepSpec &sweep, size_t machine,
                   size_t sms_idx, size_t policy_idx)
{
    pipeline::SMConfig cfg = sweep.machines[machine].config;
    cfg.sched_policy = effectivePolicy(sweep, machine,
                                       policy_idx);
    return core::GpuConfig::make(cfg, sweep.smsAt(sms_idx));
}

std::vector<CellSpec>
expandCells(const std::vector<SweepSpec> &sweeps)
{
    std::vector<CellSpec> cells;
    for (size_t s = 0; s < sweeps.size(); ++s) {
        for (size_t w = 0; w < sweeps[s].wls.size(); ++w) {
            for (size_t n = 0; n < sweeps[s].sms.size(); ++n) {
                for (size_t p = 0;
                     p < sweeps[s].policies.size(); ++p) {
                    for (size_t m = 0;
                         m < sweeps[s].machines.size(); ++m)
                        cells.push_back({s, m, w, n, p});
                }
            }
        }
    }
    return cells;
}

} // namespace siwi::runner
