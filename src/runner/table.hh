/**
 * @file
 * Text table rendering for sweep results (moved here from
 * bench/bench_common so the benches, siwi-run and the tests share
 * one implementation).
 */

#ifndef SIWI_RUNNER_TABLE_HH
#define SIWI_RUNNER_TABLE_HH

#include <string>
#include <vector>

#include "runner/results.hh"

namespace siwi::runner {

/** One table row label plus its exclude-from-means flag. */
struct TableRow
{
    std::string name;
    bool excluded = false;
};

/**
 * Render rows x columns of IPC values, with a trailing Gmean row
 * honoring the paper's TMD-exclusion rule. Columns are parallel to
 * @p col_names; each column holds one value per row. Cells flagged
 * in the optional @p invalid mask (same shape as @p cols) render
 * "T/O" instead of their number — a truncated run has no
 * meaningful IPC — and are dropped from their column's Gmean.
 */
std::string formatIpcTable(
    const std::vector<TableRow> &rows,
    const std::vector<std::string> &col_names,
    const std::vector<std::vector<double>> &cols,
    const std::vector<std::vector<bool>> *invalid = nullptr);

/** Same layout with ratio formatting (speedups, slowdowns). */
std::string formatRatioTable(
    const std::vector<TableRow> &rows,
    const std::vector<std::string> &col_names,
    const std::vector<std::vector<double>> &cols,
    const std::vector<std::vector<bool>> *invalid = nullptr);

/** IPC table of one sweep of @p results (rows = workloads). */
std::string formatSweepTable(const Results &results,
                             const std::string &sweep);

/** Row labels of one sweep, in stored (workload) order. */
std::vector<TableRow> sweepRows(const Results &results,
                                const std::string &sweep);

/**
 * IPC column of one machine within one sweep, in workload order.
 */
std::vector<double> sweepColumn(const Results &results,
                                const std::string &sweep,
                                const std::string &machine);

/**
 * One machine's column with its per-cell timed-out mask — the one
 * filter shared by sweepColumn() and the table renderers, so the
 * mask can never misalign with the values.
 */
struct SweepColumnData
{
    std::vector<double> ipc;
    std::vector<bool> timed_out;
};
SweepColumnData sweepColumnData(const Results &results,
                                const std::string &sweep,
                                const std::string &machine);

/** Machine names of one sweep, in first-appearance order. */
std::vector<std::string> sweepMachines(const Results &results,
                                       const std::string &sweep);

} // namespace siwi::runner

#endif // SIWI_RUNNER_TABLE_HH
