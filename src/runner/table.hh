/**
 * @file
 * Text table rendering for sweep results (moved here from
 * bench/bench_common so the benches, siwi-run and the tests share
 * one implementation).
 */

#ifndef SIWI_RUNNER_TABLE_HH
#define SIWI_RUNNER_TABLE_HH

#include <string>
#include <vector>

#include "runner/results.hh"

namespace siwi::runner {

/** One table row label plus its exclude-from-means flag. */
struct TableRow
{
    std::string name;
    bool excluded = false;
};

/**
 * Render rows x columns of IPC values, with a trailing Gmean row
 * honoring the paper's TMD-exclusion rule. Columns are parallel to
 * @p col_names; each column holds one value per row.
 */
std::string formatIpcTable(
    const std::vector<TableRow> &rows,
    const std::vector<std::string> &col_names,
    const std::vector<std::vector<double>> &cols);

/** Same layout with ratio formatting (speedups, slowdowns). */
std::string formatRatioTable(
    const std::vector<TableRow> &rows,
    const std::vector<std::string> &col_names,
    const std::vector<std::vector<double>> &cols);

/** IPC table of one sweep of @p results (rows = workloads). */
std::string formatSweepTable(const Results &results,
                             const std::string &sweep);

/** Row labels of one sweep, in stored (workload) order. */
std::vector<TableRow> sweepRows(const Results &results,
                                const std::string &sweep);

/**
 * IPC column of one machine within one sweep, in workload order.
 */
std::vector<double> sweepColumn(const Results &results,
                                const std::string &sweep,
                                const std::string &machine);

/** Machine names of one sweep, in first-appearance order. */
std::vector<std::string> sweepMachines(const Results &results,
                                       const std::string &sweep);

} // namespace siwi::runner

#endif // SIWI_RUNNER_TABLE_HH
