/**
 * @file
 * Tiny command-line helpers for the benches and siwi-run
 * (replacing bench_common's hasFlag).
 */

#ifndef SIWI_RUNNER_CLI_HH
#define SIWI_RUNNER_CLI_HH

#include <string>
#include <vector>

#include "runner/results.hh"

namespace siwi::runner {

/**
 * A consumable view of argv. Flags and options remove themselves
 * as they are recognized, so whatever is left at the end is an
 * unknown-argument error the caller can report.
 */
class ArgList
{
  public:
    ArgList(int argc, char **argv);

    /** Consume "--name"; true when present. */
    bool flag(const std::string &name);

    /**
     * Consume "--name value"; true when present and a value
     * followed. A trailing "--name" without a value leaves
     * @p value untouched and records a usage error.
     */
    bool option(const std::string &name, std::string *value);

    /** All occurrences of "--name value". */
    std::vector<std::string> options(const std::string &name);

    /** option() parsed as a non-negative integer. */
    bool intOption(const std::string &name, unsigned *value);

    /** option() parsed as a double. */
    bool doubleOption(const std::string &name, double *value);

    /** Arguments not consumed so far (excluding argv[0]). */
    const std::vector<std::string> &remaining() const
    {
        return args_;
    }

    /** Usage errors accumulated by option()/intOption(). */
    const std::vector<std::string> &errors() const
    {
        return errors_;
    }

  private:
    std::vector<std::string> args_;
    std::vector<std::string> errors_;
};

/**
 * End-of-parse check every main() should call: reports usage
 * errors and unrecognized arguments to stderr under @p prog.
 * @return true when the argument list was fully consumed cleanly.
 */
bool finishArgs(const ArgList &args, const char *prog);

/**
 * Consume every repeatable "--sms N" occurrence into an SM-count
 * axis (shared by siwi-run and the scaling bench). Reports bad
 * values to stderr under @p prog.
 * @return false on a malformed entry; @p out untouched when the
 *         flag is absent.
 */
bool smsAxisOption(ArgList &args, const char *prog,
                   std::vector<unsigned> *out);

/**
 * Shared bench epilogue: write @p json_path when non-empty, then
 * map the run outcome to a process exit code (0 = all cells
 * verified, 1 = verification or I/O failure).
 */
int finishBench(const Results &res, const std::string &json_path);

} // namespace siwi::runner

#endif // SIWI_RUNNER_CLI_HH
