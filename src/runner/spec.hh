/**
 * @file
 * The declarative SimSpec layer: machines, chips and whole
 * experiments as data.
 *
 * Three file-level concepts, all built on the config field tables
 * (pipeline/config_io.hh, core/config_io.hh):
 *
 *  - A *machine file* describes one named machine as a base
 *    machine plus a "set" block of field overrides:
 *
 *        {"name": "SBI+SWI-cct8-xor",
 *         "base": "sbi+swi",
 *         "set": {"cct_capacity": 8, "lane_shuffle": "xor"}}
 *
 *  - The *machine registry* resolves machine names: the five
 *    paper machines are built-in rows, user machines loaded from
 *    machine files (or defined inline in a spec) join them at
 *    runtime. Lookup is case-insensitive.
 *
 *  - A *spec file* describes an entire experiment — a list of
 *    sweeps, each machines x workloads x size x sms x policies
 *    with optional per-sweep overrides — and expands to the same
 *    SweepSpec grid the compiled suites build, so
 *    `siwi-run --spec fig7_custom.json` replaces hand-written
 *    SweepSpec construction (see bench/specs/ and docs/CONFIG.md
 *    for the schema and worked examples).
 *
 * Parsing is strict throughout: unknown keys, unknown machine /
 * workload / policy names, bad enum values and configurations
 * that violate SMConfig invariants are errors that name the
 * offending entity, never silent skips — that is what makes
 * `siwi-run --spec f.json --dry-run` a meaningful CI gate.
 */

#ifndef SIWI_RUNNER_SPEC_HH
#define SIWI_RUNNER_SPEC_HH

#include <string>
#include <vector>

#include "common/json.hh"
#include "runner/sweep.hh"

namespace siwi::runner {

/**
 * Machine-name resolution: the five paper machines (built-in,
 * from frontend::machineRegistry()) plus user machines registered
 * at runtime. Names are matched case-insensitively; user machines
 * cannot shadow an existing name.
 */
class MachineRegistry
{
  public:
    /** Seeds the built-in paper machines. */
    MachineRegistry();

    /**
     * Register a user machine. Fails (naming the clash) when the
     * name — case-insensitively — is already taken.
     */
    bool add(MachineSpec m, std::string *err);

    /** Lookup by name (case-insensitive); nullptr when absent. */
    const MachineSpec *find(std::string_view name) const;

    /** Every registered machine, built-ins first. */
    const std::vector<MachineSpec> &machines() const
    {
        return machines_;
    }

  private:
    std::vector<MachineSpec> machines_;
};

/**
 * Build a machine from a JSON machine object:
 *   {"name"?: str, "base": str, "set"?: {field: value, ...}}
 * @p base_dir resolves a {"file": path} reference instead (the
 * referenced file holds a machine object; a relative path is
 * relative to @p base_dir). When "name" is absent a file's stem
 * names the machine; an inline object must carry one.
 * @return false and set @p err on any problem.
 */
bool machineFromJson(const Json &j, const std::string &base_dir,
                     const MachineRegistry &reg, MachineSpec *out,
                     std::string *err);

/**
 * Load one machine file. The machine is named by its "name"
 * member, or the file stem when absent.
 */
bool loadMachineFile(const std::string &path,
                     const MachineRegistry &reg, MachineSpec *out,
                     std::string *err);

/**
 * Expand a parsed spec document into sweeps. Top-level schema:
 *
 *   {"name": str,                 — suite label of the run
 *    "machines"?: [machine...],   — registered for this spec
 *    "sweeps": [
 *      {"name": str,
 *       "machines": [str | machine-object | {"file": path}, ...],
 *       "workloads": [name | "regular" | "irregular" | "all",...],
 *       "size"?: "tiny" | "full" | "chip"      (default "full")
 *       "sms"?: [int, ...]                     (default [1])
 *       "policies"?: [policy-name, ...]        (default
 *                                               ["oldest"])
 *       "set"?: {field: value, ...}} — applied to every machine
 *      , ...]}
 *
 * @p reg is extended by the spec's own "machines" section, so a
 * caller-preloaded registry (--machine-file) is visible to the
 * spec and vice versa.
 * @return false and set @p err on any problem.
 */
bool sweepsFromSpecJson(const Json &j, const std::string &base_dir,
                        MachineRegistry *reg,
                        std::vector<SweepSpec> *out,
                        std::string *label, std::string *err);

/** Read, parse and expand a spec file. */
bool loadSpecFile(const std::string &path, MachineRegistry *reg,
                  std::vector<SweepSpec> *out, std::string *label,
                  std::string *err);

} // namespace siwi::runner

#endif // SIWI_RUNNER_SPEC_HH
