#include "runner/suites.hh"

#include "frontend/registry.hh"

namespace siwi::runner {

using pipeline::LaneShufflePolicy;
using pipeline::PipelineMode;
using pipeline::SMConfig;

namespace {

std::vector<const workloads::Workload *>
panelWorkloads(bool regular)
{
    return regular ? workloads::regularWorkloads()
                   : workloads::irregularWorkloads();
}

std::string
panelName(const char *figure, bool regular)
{
    return std::string(figure) +
           (regular ? "_regular" : "_irregular");
}

/** The five paper machines, straight from the registry. */
std::vector<MachineSpec>
paperMachines()
{
    std::vector<MachineSpec> out;
    for (const frontend::MachineEntry &m :
         frontend::machineRegistry())
        out.push_back({m.name, pipeline::SMConfig::make(m.mode)});
    return out;
}

} // namespace

SweepSpec
fig7Sweep(bool regular, workloads::SizeClass size,
          const Fig7Options &opts)
{
    SweepSpec s;
    s.name = panelName("fig7", regular);
    s.size = size;
    s.wls = panelWorkloads(regular);
    s.machines = paperMachines();
    if (opts.ablate_sbi_fallback) {
        s.machines.push_back(
            makeMachine("SBI-nofb", PipelineMode::SBI,
                        {"sbi_secondary_fallback=false"}));
    }
    if (opts.no_mem_splits) {
        for (MachineSpec &m : s.machines) {
            applyConfigSets(&m.config,
                            {"split_on_memory_divergence=false"});
        }
    }
    return s;
}

SweepSpec
fig8aSweep(bool regular, workloads::SizeClass size)
{
    const std::vector<std::string> no_constraints = {
        "sbi_constraints=false"};
    SweepSpec s;
    s.name = panelName("fig8a", regular);
    s.size = size;
    s.wls = panelWorkloads(regular);
    s.machines = {
        makeMachine(PipelineMode::SBI),
        makeMachine("SBI-nc", PipelineMode::SBI, no_constraints),
        makeMachine(PipelineMode::SBISWI),
        makeMachine("SBI+SWI-nc", PipelineMode::SBISWI,
                    no_constraints),
    };
    return s;
}

SweepSpec
fig8bSweep(bool regular, workloads::SizeClass size)
{
    std::vector<Override> shuffles;
    for (LaneShufflePolicy p :
         {LaneShufflePolicy::Identity, LaneShufflePolicy::MirrorOdd,
          LaneShufflePolicy::MirrorHalf, LaneShufflePolicy::Xor,
          LaneShufflePolicy::XorRev}) {
        const char *name = pipeline::laneShuffleName(p);
        shuffles.push_back(
            {name, {std::string("lane_shuffle=") + name}});
    }
    SweepSpec s;
    s.name = panelName("fig8b", regular);
    s.size = size;
    s.wls = panelWorkloads(regular);
    s.machines = crossMachine(makeMachine(PipelineMode::SWI),
                              shuffles, /*label_only=*/true);
    return s;
}

SweepSpec
fig9Sweep(bool regular, workloads::SizeClass size)
{
    // 16 warps per pool: sets 1/2/8/16 stand in for the paper's
    // full / 11-way / 3-way / direct-mapped ladder.
    const std::vector<Override> ladder = {
        {"SWI-full", {"lookup_sets=1"}},
        {"SWI-11way", {"lookup_sets=2"}},
        {"SWI-3way", {"lookup_sets=8"}},
        {"SWI-direct", {"lookup_sets=16"}},
    };
    SweepSpec s;
    s.name = panelName("fig9", regular);
    s.size = size;
    s.wls = panelWorkloads(regular);
    s.machines = {makeMachine(PipelineMode::Baseline)};
    for (MachineSpec &m :
         crossMachine(makeMachine(PipelineMode::SWI), ladder,
                      /*label_only=*/true))
        s.machines.push_back(std::move(m));
    return s;
}

SweepSpec
policySweep(bool regular, workloads::SizeClass size)
{
    // Policy study (beyond the paper): the Figure 7 grid crossed
    // with every primary scheduling policy. Oldest-first cells
    // reproduce fig7 exactly; the others show how much of each
    // machine's gain survives a different primary ordering.
    SweepSpec s;
    s.name = panelName("fig_policy", regular);
    s.size = size;
    s.wls = panelWorkloads(regular);
    s.machines = paperMachines();
    s.policies.clear();
    for (const frontend::PolicyEntry &p :
         frontend::policyRegistry())
        s.policies.push_back(p.kind);
    return s;
}

SweepSpec
scalingSweep(workloads::SizeClass size)
{
    // The grid-scalable panel: gtid-indexed kernels with no block
    // cooperation, so their Chip-size grids (64-128 CTAs) spread
    // over any SM count. Three regular (streaming, MAD-bound,
    // LSU-bound) and two irregular (boundary-divergent,
    // data-dependent-branch) applications.
    static const char *const panel[] = {
        "BlackScholes", "MatrixMul",
        "Transpose",    "ConvolutionSeparable",
        "SRAD",
    };
    SweepSpec s;
    s.name = "fig_scaling";
    s.size = size;
    for (const char *name : panel) {
        const workloads::Workload *w =
            workloads::findWorkload(name);
        if (w)
            s.wls.push_back(w);
    }
    s.machines = {
        makeMachine(PipelineMode::Baseline),
        makeMachine(PipelineMode::SBISWI),
    };
    s.sms = {1, 2, 4, 8};
    return s;
}

SweepSpec
scalingBankedSweep(workloads::SizeClass size)
{
    // The chip-scale memory system: the same workload panel and
    // machines as fig_scaling, but behind 8 L2 slices with
    // per-slice MSHRs and tag pipelines, 4 DRAM channels with
    // bounded queues, and a latency/bandwidth-modeled SM<->L2
    // interconnect. dram_bytes_per_cycle_x10 is pinned per
    // channel, so aggregate DRAM bandwidth (4 x 10 B/cyc) equals
    // the legacy chip's 4-SM saturation point — any separation
    // between the two sweeps' knees is memory-system concurrency,
    // not extra raw bandwidth.
    const std::vector<std::string> banked = {
        "l2_slices=8",
        "l2_mshrs_per_slice=32",
        "l2_tag_cycles=1",
        "dram_channels=4",
        "dram_queue_depth=16",
        "dram_bytes_per_cycle_x10=100",
        "noc_request_latency=2",
        "noc_response_latency=2",
        "noc_port_bytes_per_cycle_x10=320",
    };
    SweepSpec s = scalingSweep(size);
    s.name = "fig_scaling_banked";
    for (MachineSpec &m : s.machines)
        applyMachineSets(&m, banked);
    s.sms = {1, 2, 4, 8, 16, 32, 64};
    return s;
}

namespace {

/**
 * The cheap multi-SM cells the CI regression gate watches. Full
 * size (not Tiny): the smoke must actually spread CTAs over
 * several SMs, and Tiny grids are a single CTA.
 */
SweepSpec
scalingSmokeSweep()
{
    SweepSpec s = scalingSweep(workloads::SizeClass::Full);
    s.name = "scaling_smoke";
    s.filterMachines({"SBI+SWI"});
    s.filterWorkloads({"MatrixMul", "ConvolutionSeparable"});
    s.sms = {2, 4};
    return s;
}

} // namespace

const std::vector<std::string> &
knownFigures()
{
    static const std::vector<std::string> v = {
        "fig7", "fig8a", "fig8b", "fig9", "policy", "scaling"};
    return v;
}

std::vector<SweepSpec>
figureSweeps(const std::string &figure, workloads::SizeClass size)
{
    std::vector<SweepSpec> out;
    if (figure == "scaling") {
        out.push_back(scalingSweep(size));
        out.push_back(scalingBankedSweep(size));
        return out;
    }
    for (bool regular : {true, false}) {
        if (figure == "fig7")
            out.push_back(fig7Sweep(regular, size));
        else if (figure == "fig8a")
            out.push_back(fig8aSweep(regular, size));
        else if (figure == "fig8b")
            out.push_back(fig8bSweep(regular, size));
        else if (figure == "fig9")
            out.push_back(fig9Sweep(regular, size));
        else if (figure == "policy")
            out.push_back(policySweep(regular, size));
    }
    return out;
}

const std::vector<std::string> &
knownSuites()
{
    static const std::vector<std::string> v = {"fast", "fig7",
                                               "scaling", "full"};
    return v;
}

std::vector<SweepSpec>
suiteSweeps(const std::string &suite)
{
    using workloads::SizeClass;
    std::vector<SweepSpec> out;
    if (suite == "fast") {
        out = figureSweeps("fig7", SizeClass::Tiny);
        // A multi-SM smoke so the regression gate covers the
        // shared-L2 chip path too.
        out.push_back(scalingSmokeSweep());
    } else if (suite == "fig7") {
        out = figureSweeps("fig7", SizeClass::Full);
    } else if (suite == "scaling") {
        out = figureSweeps("scaling", SizeClass::Chip);
    } else if (suite == "full") {
        for (const std::string &f : knownFigures()) {
            // The scaling figure needs chip-size grids; the paper
            // figures run their single-SM Full size.
            SizeClass sz = f == "scaling" ? SizeClass::Chip
                                          : SizeClass::Full;
            for (SweepSpec &s : figureSweeps(f, sz))
                out.push_back(std::move(s));
        }
    }
    return out;
}

} // namespace siwi::runner
