/**
 * @file
 * Basic block representation used by the kernel compiler passes.
 */

#ifndef SIWI_CFG_BASIC_BLOCK_HH
#define SIWI_CFG_BASIC_BLOCK_HH

#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace siwi::cfg {

/** Sentinel for "no block". */
constexpr u32 no_block = 0xffffffffu;

/**
 * One basic block of a kernel CFG.
 *
 * While a program is in CFG form, the control-flow operands of its
 * instructions (branch @c target, @c reconv, SYNC @c div) hold BLOCK
 * IDS, not PCs; Cfg::linearize() translates them back to PCs.
 */
struct BasicBlock
{
    u32 id = no_block;

    /** Instructions, including a trailing branch/EXIT terminator. */
    std::vector<isa::Instruction> insts;

    /** Taken successor of a trailing branch (block id). */
    u32 taken = no_block;

    /** Fall-through successor (block id). */
    u32 fall = no_block;

    /** Predecessor block ids. */
    std::vector<u32> preds;

    /** First PC of the block in the source program (informational). */
    Pc orig_pc = invalid_pc;

    /** True when the block ends the kernel (EXIT terminator). */
    bool isExit() const;

    /** Successors in a flat list (taken first). */
    std::vector<u32> succs() const;

    /** One-line summary for debugging. */
    std::string toString() const;
};

} // namespace siwi::cfg

#endif // SIWI_CFG_BASIC_BLOCK_HH
