/**
 * @file
 * Reconvergence analysis and SYNC-marker insertion (paper §3.3).
 */

#ifndef SIWI_CFG_SYNC_INSERTION_HH
#define SIWI_CFG_SYNC_INSERTION_HH

#include "cfg/cfg.hh"

namespace siwi::cfg {

/** Outcome of the reconvergence pass, for diagnostics and tests. */
struct SyncStats
{
    unsigned divergent_branches = 0; //!< cond branches annotated
    unsigned sync_points = 0;        //!< SYNC instructions inserted
    unsigned unresolved = 0;         //!< branches without an ipdom
};

/**
 * Annotate every conditional branch with its reconvergence point
 * (immediate post-dominator) and prepend a SYNC instruction to every
 * reconvergence block.
 *
 * The SYNC payload names the divergence point: the immediate
 * dominator of the reconvergence block (its last instruction once
 * linearized) -- the paper's conservative choice that tolerates
 * unstructured control flow with several divergence points per
 * reconvergence point.
 *
 * Must run on CFG form (block-id operands); linearize() translates
 * the annotations into PCs.
 */
SyncStats insertSyncMarkers(Cfg &cfg);

} // namespace siwi::cfg

#endif // SIWI_CFG_SYNC_INSERTION_HH
