#include "cfg/compiler.hh"

#include "common/log.hh"

namespace siwi::cfg {

CompiledKernel
compileKernel(const isa::Program &raw, const CompileOptions &opts)
{
    std::string err = raw.validate();
    siwi_assert(err.empty(), "compileKernel: invalid input: ", err);

    Cfg cfg = Cfg::fromProgram(raw);

    CompiledKernel out;
    if (opts.insert_sync)
        out.sync = insertSyncMarkers(cfg);

    std::vector<u32> order = layoutOrder(cfg, opts.layout);
    out.program = cfg.linearize(order);
    out.layout_violations = countLayoutViolations(out.program);

    err = out.program.validate();
    siwi_assert(err.empty(), "compileKernel: invalid output: ", err);
    return out;
}

} // namespace siwi::cfg
