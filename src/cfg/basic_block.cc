#include "cfg/basic_block.hh"

#include <sstream>

namespace siwi::cfg {

bool
BasicBlock::isExit() const
{
    return !insts.empty() && insts.back().op == isa::Opcode::EXIT;
}

std::vector<u32>
BasicBlock::succs() const
{
    std::vector<u32> out;
    if (taken != no_block)
        out.push_back(taken);
    if (fall != no_block && fall != taken)
        out.push_back(fall);
    return out;
}

std::string
BasicBlock::toString() const
{
    std::ostringstream os;
    os << "B" << id << "(" << insts.size() << " insts";
    if (taken != no_block)
        os << ", taken=B" << taken;
    if (fall != no_block)
        os << ", fall=B" << fall;
    os << ")";
    return os.str();
}

} // namespace siwi::cfg
