/**
 * @file
 * Dominator and post-dominator trees (Cooper-Harvey-Kennedy).
 *
 * Sync-instruction insertion (section 3.3 of the paper) needs both:
 * the reconvergence point of a divergent branch is its immediate
 * post-dominator, and the SYNC payload PCdiv is the last instruction
 * of the immediate dominator of that reconvergence point.
 */

#ifndef SIWI_CFG_DOMINATORS_HH
#define SIWI_CFG_DOMINATORS_HH

#include <vector>

#include "cfg/cfg.hh"

namespace siwi::cfg {

/**
 * Dominator tree over a Cfg, in either direction.
 *
 * Forward direction: classic dominators rooted at the entry block.
 * Reverse direction: post-dominators, rooted at a virtual exit that
 * every EXIT-terminated block feeds.
 */
class DominatorTree
{
  public:
    /** Compute the (forward) dominator tree. */
    static DominatorTree dominators(const Cfg &cfg);

    /** Compute the post-dominator tree. */
    static DominatorTree postDominators(const Cfg &cfg);

    /**
     * Immediate (post-)dominator of @p b; no_block for the root,
     * unreachable blocks, and (in the reverse tree) blocks that
     * cannot reach an exit.
     */
    u32 idom(u32 b) const;

    /** True when @p a (post-)dominates @p b (reflexive). */
    bool dominates(u32 a, u32 b) const;

    /** True when @p b was reachable during the computation. */
    bool reachable(u32 b) const;

  private:
    DominatorTree() = default;

    /**
     * Generic CHK solver over an abstract graph with nodes
     * [0, n), root @p root, and predecessor lists @p preds.
     */
    static std::vector<u32> solve(
        u32 n, u32 root,
        const std::vector<std::vector<u32>> &preds,
        const std::vector<std::vector<u32>> &succs);

    std::vector<u32> idom_;  //!< per block; no_block when undefined
    u32 root_ = no_block;
    u32 virtual_exit_ = no_block; //!< only set for post-dominators
};

} // namespace siwi::cfg

#endif // SIWI_CFG_DOMINATORS_HH
