#include "cfg/cfg.hh"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "common/log.hh"

namespace siwi::cfg {

using isa::Instruction;
using isa::Opcode;

const BasicBlock &
Cfg::block(u32 id) const
{
    siwi_assert(id < blocks_.size(), "block id out of range");
    return blocks_[id];
}

BasicBlock &
Cfg::block(u32 id)
{
    siwi_assert(id < blocks_.size(), "block id out of range");
    return blocks_[id];
}

Cfg
Cfg::fromProgram(const isa::Program &prog)
{
    siwi_assert(!prog.empty(), "empty program");

    // Leaders: entry, branch targets, instructions following a
    // terminator (branch or EXIT).
    std::set<Pc> leaders;
    leaders.insert(0);
    for (Pc pc = 0; pc < prog.size(); ++pc) {
        const Instruction &inst = prog.at(pc);
        if (isa::isBranch(inst.op)) {
            leaders.insert(inst.target);
            if (pc + 1 < prog.size())
                leaders.insert(pc + 1);
        } else if (inst.op == Opcode::EXIT) {
            if (pc + 1 < prog.size())
                leaders.insert(pc + 1);
        }
    }

    Cfg cfg;
    cfg.name_ = prog.name();
    std::map<Pc, u32> block_of_pc; // leader pc -> block id
    for (Pc leader : leaders) {
        u32 id = u32(cfg.blocks_.size());
        cfg.blocks_.push_back(BasicBlock{});
        cfg.blocks_.back().id = id;
        cfg.blocks_.back().orig_pc = leader;
        block_of_pc[leader] = id;
    }

    // Fill instructions and edges.
    auto leader_it = leaders.begin();
    for (u32 b = 0; b < cfg.numBlocks(); ++b, ++leader_it) {
        Pc start = *leader_it;
        auto next_it = std::next(leader_it);
        Pc end = next_it == leaders.end() ? prog.size() : *next_it;
        BasicBlock &bb = cfg.blocks_[b];
        for (Pc pc = start; pc < end; ++pc)
            bb.insts.push_back(prog.at(pc));

        Instruction &last = bb.insts.back();
        if (isa::isBranch(last.op)) {
            bb.taken = block_of_pc.at(last.target);
            last.target = bb.taken; // block-id form
            if (isa::isCondBranch(last.op) && end < prog.size())
                bb.fall = block_of_pc.at(end);
            // Translate a pre-existing reconvergence annotation.
            if (isa::isCondBranch(last.op) &&
                last.reconv != invalid_pc) {
                auto it = block_of_pc.find(last.reconv);
                last.reconv =
                    it == block_of_pc.end() ? no_block : it->second;
            }
        } else if (last.op != Opcode::EXIT) {
            siwi_assert(end < prog.size(),
                        "program falls off the end");
            bb.fall = block_of_pc.at(end);
        }
        // Translate SYNC payloads (pc -> owning block id).
        for (Instruction &inst : bb.insts) {
            if (inst.op == Opcode::SYNC && inst.div != invalid_pc) {
                auto it = block_of_pc.upper_bound(inst.div);
                siwi_assert(it != block_of_pc.begin(),
                            "sync payload before entry");
                inst.div = std::prev(it)->second;
            }
        }
    }

    cfg.recomputePreds();
    return cfg;
}

void
Cfg::recomputePreds()
{
    for (BasicBlock &bb : blocks_)
        bb.preds.clear();
    for (BasicBlock &bb : blocks_) {
        for (u32 s : bb.succs())
            blocks_[s].preds.push_back(bb.id);
    }
}

isa::Program
Cfg::linearize(const std::vector<u32> &order) const
{
    siwi_assert(!order.empty() && order.front() == 0,
                "linearize order must start at entry");

    // Decide, per placed block, whether a fall-through BRA must be
    // appended because its fall successor is not physically next.
    std::vector<bool> needs_bra(order.size(), false);
    for (size_t i = 0; i < order.size(); ++i) {
        const BasicBlock &bb = block(order[i]);
        u32 next = i + 1 < order.size() ? order[i + 1] : no_block;
        if (bb.fall != no_block && bb.fall != next)
            needs_bra[i] = true;
        if (bb.fall == no_block && bb.taken == no_block &&
            !bb.isExit()) {
            panic("block B", bb.id, " has no terminator");
        }
    }

    // First pass: start PC of every block.
    std::vector<Pc> start_pc(numBlocks(), invalid_pc);
    Pc pc = 0;
    for (size_t i = 0; i < order.size(); ++i) {
        start_pc[order[i]] = pc;
        pc += Pc(block(order[i]).insts.size());
        if (needs_bra[i])
            ++pc;
    }

    // Last PC of every placed block (used for SYNC payloads, which
    // point at "the last instruction of the immediate dominator" --
    // including a fall-through BRA if one got inserted).
    std::vector<Pc> last_pc(numBlocks(), invalid_pc);
    for (size_t i = 0; i < order.size(); ++i) {
        const BasicBlock &bb = block(order[i]);
        Pc sz = Pc(bb.insts.size()) + (needs_bra[i] ? 1 : 0);
        last_pc[order[i]] = start_pc[order[i]] + sz - 1;
    }

    // Second pass: emit, translating block ids to PCs.
    isa::Program out(name_);
    for (size_t i = 0; i < order.size(); ++i) {
        const BasicBlock &bb = block(order[i]);
        for (const Instruction &src : bb.insts) {
            Instruction inst = src;
            if (isa::isBranch(inst.op)) {
                siwi_assert(inst.target < numBlocks() &&
                            start_pc[inst.target] != invalid_pc,
                            "branch to unplaced block");
                inst.target = start_pc[inst.target];
                if (isa::isCondBranch(inst.op) &&
                    inst.reconv != invalid_pc &&
                    inst.reconv != no_block) {
                    inst.reconv = start_pc[inst.reconv];
                } else {
                    inst.reconv = invalid_pc;
                }
            }
            if (inst.op == Opcode::SYNC) {
                if (inst.div != invalid_pc && inst.div != no_block) {
                    siwi_assert(last_pc[inst.div] != invalid_pc,
                                "sync payload block unplaced");
                    inst.div = last_pc[inst.div];
                } else {
                    inst.div = invalid_pc;
                }
            }
            out.push(inst);
        }
        if (needs_bra[i]) {
            Instruction bra;
            bra.op = Opcode::BRA;
            bra.target = start_pc[bb.fall];
            out.push(bra);
        }
    }
    return out;
}

std::string
Cfg::toString() const
{
    std::ostringstream os;
    os << "cfg " << name_ << " (" << numBlocks() << " blocks)\n";
    for (const BasicBlock &bb : blocks_) {
        os << "  " << bb.toString() << " preds={";
        for (size_t i = 0; i < bb.preds.size(); ++i)
            os << (i ? "," : "") << "B" << bb.preds[i];
        os << "}\n";
    }
    return os.str();
}

} // namespace siwi::cfg
