#include "cfg/dominators.hh"

#include <algorithm>

#include "common/log.hh"

namespace siwi::cfg {

namespace {

/** Iterative DFS producing a reverse post-order over @p succs. */
std::vector<u32>
reversePostOrder(u32 n, u32 root,
                 const std::vector<std::vector<u32>> &succs)
{
    std::vector<u32> postorder;
    std::vector<u8> state(n, 0); // 0 unvisited, 1 on stack, 2 done
    // Explicit stack of (node, next-succ-index).
    std::vector<std::pair<u32, size_t>> stack;
    stack.push_back({root, 0});
    state[root] = 1;
    while (!stack.empty()) {
        auto &[node, idx] = stack.back();
        if (idx < succs[node].size()) {
            u32 s = succs[node][idx++];
            if (state[s] == 0) {
                state[s] = 1;
                stack.push_back({s, 0});
            }
        } else {
            state[node] = 2;
            postorder.push_back(node);
            stack.pop_back();
        }
    }
    std::reverse(postorder.begin(), postorder.end());
    return postorder;
}

} // namespace

std::vector<u32>
DominatorTree::solve(u32 n, u32 root,
                     const std::vector<std::vector<u32>> &preds,
                     const std::vector<std::vector<u32>> &succs)
{
    std::vector<u32> rpo = reversePostOrder(n, root, succs);
    std::vector<u32> rpo_num(n, no_block);
    for (u32 i = 0; i < rpo.size(); ++i)
        rpo_num[rpo[i]] = i;

    std::vector<u32> idom(n, no_block);
    idom[root] = root;

    auto intersect = [&](u32 a, u32 b) {
        while (a != b) {
            while (rpo_num[a] > rpo_num[b])
                a = idom[a];
            while (rpo_num[b] > rpo_num[a])
                b = idom[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (u32 b : rpo) {
            if (b == root)
                continue;
            u32 new_idom = no_block;
            for (u32 p : preds[b]) {
                if (rpo_num[p] == no_block || idom[p] == no_block)
                    continue; // unreachable or not yet processed
                new_idom = new_idom == no_block
                               ? p
                               : intersect(p, new_idom);
            }
            if (new_idom != no_block && idom[b] != new_idom) {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }
    return idom;
}

DominatorTree
DominatorTree::dominators(const Cfg &cfg)
{
    u32 n = cfg.numBlocks();
    std::vector<std::vector<u32>> preds(n), succs(n);
    for (u32 b = 0; b < n; ++b) {
        preds[b] = cfg.block(b).preds;
        succs[b] = cfg.block(b).succs();
    }
    DominatorTree t;
    t.root_ = 0;
    t.idom_ = solve(n, 0, preds, succs);
    t.idom_[0] = no_block; // root has no idom externally
    return t;
}

DominatorTree
DominatorTree::postDominators(const Cfg &cfg)
{
    u32 n = cfg.numBlocks();
    u32 vexit = n; // virtual exit node
    std::vector<std::vector<u32>> preds(n + 1), succs(n + 1);
    // Reverse graph: succ(reverse) = preds(forward), plus edges from
    // the virtual exit to every EXIT block.
    for (u32 b = 0; b < n; ++b) {
        preds[b] = cfg.block(b).succs(); // reverse preds
        succs[b] = cfg.block(b).preds;   // reverse succs
        if (cfg.block(b).isExit()) {
            succs[vexit].push_back(b);
            preds[b].push_back(vexit);
        }
    }
    DominatorTree t;
    t.root_ = vexit;
    t.virtual_exit_ = vexit;
    t.idom_ = solve(n + 1, vexit, preds, succs);
    // Blocks whose ipdom is the virtual exit have no real ipdom.
    for (u32 b = 0; b < n; ++b) {
        if (t.idom_[b] == vexit)
            t.idom_[b] = no_block;
    }
    t.idom_[vexit] = no_block;
    return t;
}

u32
DominatorTree::idom(u32 b) const
{
    siwi_assert(b < idom_.size(), "block out of range");
    return idom_[b];
}

bool
DominatorTree::dominates(u32 a, u32 b) const
{
    if (!reachable(b))
        return false;
    u32 cur = b;
    while (true) {
        if (cur == a)
            return true;
        u32 up = idom_[cur];
        if (up == no_block || up == cur)
            return false;
        cur = up;
    }
}

bool
DominatorTree::reachable(u32 b) const
{
    siwi_assert(b < idom_.size(), "block out of range");
    return b == root_ || idom_[b] != no_block;
}

} // namespace siwi::cfg
