#include "cfg/sync_insertion.hh"

#include <map>

#include "cfg/dominators.hh"
#include "common/log.hh"

namespace siwi::cfg {

using isa::Instruction;
using isa::Opcode;

SyncStats
insertSyncMarkers(Cfg &cfg)
{
    SyncStats stats;
    DominatorTree dom = DominatorTree::dominators(cfg);
    DominatorTree pdom = DominatorTree::postDominators(cfg);

    // reconvergence block -> divergence block (idom of the reconv
    // point; shared by all branches reconverging there).
    std::map<u32, u32> sync_blocks;

    for (u32 b = 0; b < cfg.numBlocks(); ++b) {
        BasicBlock &bb = cfg.block(b);
        if (bb.insts.empty())
            continue;
        Instruction &term = bb.insts.back();
        if (!isa::isCondBranch(term.op))
            continue;
        if (bb.taken == bb.fall || bb.fall == no_block) {
            // Degenerate branch: cannot diverge.
            term.reconv = no_block;
            continue;
        }
        u32 r = pdom.idom(b);
        if (r == no_block) {
            // No post-dominator (e.g. both paths exit separately):
            // divergence never reconverges; nothing to annotate.
            term.reconv = no_block;
            ++stats.unresolved;
            continue;
        }
        term.reconv = r;
        ++stats.divergent_branches;

        u32 d = dom.idom(r);
        if (d == no_block)
            continue; // reconvergence at entry: no divergence point
        auto it = sync_blocks.find(r);
        if (it == sync_blocks.end())
            sync_blocks[r] = d;
        else
            siwi_assert(it->second == d, "idom mismatch");
    }

    // Prepend SYNC to each reconvergence block. Payload carries the
    // divergence *block id*; linearize() turns it into the PC of
    // that block's last instruction.
    for (auto [r, d] : sync_blocks) {
        Instruction sync;
        sync.op = Opcode::SYNC;
        sync.div = d;
        BasicBlock &rb = cfg.block(r);
        rb.insts.insert(rb.insts.begin(), sync);
        ++stats.sync_points;
    }

    return stats;
}

} // namespace siwi::cfg
