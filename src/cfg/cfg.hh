/**
 * @file
 * Control-flow graph construction and re-linearization.
 */

#ifndef SIWI_CFG_CFG_HH
#define SIWI_CFG_CFG_HH

#include <string>
#include <vector>

#include "cfg/basic_block.hh"
#include "isa/program.hh"

namespace siwi::cfg {

/**
 * Control-flow graph of a kernel.
 *
 * Built from a linear Program; passes mutate the blocks; linearize()
 * re-emits a Program in a chosen block order, inserting fall-through
 * BRAs where the order breaks adjacency and translating block-id
 * control operands back into PCs.
 */
class Cfg
{
  public:
    /** Build the CFG of @p prog. Entry is block 0. */
    static Cfg fromProgram(const isa::Program &prog);

    u32 numBlocks() const { return u32(blocks_.size()); }
    const BasicBlock &block(u32 id) const;
    BasicBlock &block(u32 id);
    const std::vector<BasicBlock> &blocks() const { return blocks_; }

    const std::string &name() const { return name_; }

    /** Recompute every block's predecessor list from the edges. */
    void recomputePreds();

    /**
     * Emit the program with blocks in @p order (which must contain
     * every reachable block exactly once, entry first).
     */
    isa::Program linearize(const std::vector<u32> &order) const;

    /** Multi-line dump for debugging and golden tests. */
    std::string toString() const;

  private:
    std::string name_;
    std::vector<BasicBlock> blocks_;
};

} // namespace siwi::cfg

#endif // SIWI_CFG_CFG_HH
