/**
 * @file
 * Thread-frontier code layout (Diamos et al. [10], as used in
 * section 3.3 of the paper).
 *
 * The property the rest of the system relies on: every reconvergence
 * point is placed at a higher address than its divergence point, so
 * that min-PC warp-split scheduling reconverges at the earliest
 * possible point and the selective synchronization barrier intervals
 * [PCdiv, PCrec) are well-formed.
 */

#ifndef SIWI_CFG_LAYOUT_HH
#define SIWI_CFG_LAYOUT_HH

#include <vector>

#include "cfg/cfg.hh"

namespace siwi::cfg {

/** Block-ordering strategy for linearization. */
enum class LayoutMode {
    /**
     * Keep the builder's emission order (reachable blocks only).
     * Used to reproduce the paper's TMD1 benchmark, whose CUDA
     * binary was laid out in a non-thread-frontier order.
     */
    Preserve,
    /** Thread-frontier order (reverse post-order walk). */
    ThreadFrontier,
};

/**
 * Compute a block order for @p cfg. Unreachable blocks are dropped.
 * The entry block is always first.
 */
std::vector<u32> layoutOrder(const Cfg &cfg, LayoutMode mode);

/**
 * Check the thread-frontier property on a *linearized* program:
 * every conditional branch's reconvergence annotation must lie at a
 * strictly higher address than the branch itself.
 * @return number of violations.
 */
unsigned countLayoutViolations(const isa::Program &prog);

} // namespace siwi::cfg

#endif // SIWI_CFG_LAYOUT_HH
