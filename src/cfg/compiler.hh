/**
 * @file
 * Kernel compilation driver: CFG build, thread-frontier layout, and
 * reconvergence marker insertion, producing an executable Program.
 */

#ifndef SIWI_CFG_COMPILER_HH
#define SIWI_CFG_COMPILER_HH

#include "cfg/layout.hh"
#include "cfg/sync_insertion.hh"
#include "isa/program.hh"

namespace siwi::cfg {

/** Options controlling kernel compilation. */
struct CompileOptions
{
    LayoutMode layout = LayoutMode::ThreadFrontier;
    /** Insert SYNC markers and reconvergence annotations. */
    bool insert_sync = true;
};

/** A compiled kernel with compilation diagnostics. */
struct CompiledKernel
{
    isa::Program program;
    SyncStats sync;
    /** Thread-frontier violations remaining after layout. */
    unsigned layout_violations = 0;
};

/**
 * Compile a raw (builder- or assembler-produced) program into its
 * executable form: blocks laid out per @p opts, SYNC markers at
 * reconvergence points, conditional branches annotated with their
 * reconvergence PC (consumed by the baseline divergence stack).
 */
CompiledKernel compileKernel(const isa::Program &raw,
                             const CompileOptions &opts = {});

} // namespace siwi::cfg

#endif // SIWI_CFG_COMPILER_HH
