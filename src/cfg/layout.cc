#include "cfg/layout.hh"

#include <algorithm>

#include "common/log.hh"

namespace siwi::cfg {

namespace {

/**
 * Reverse post-order over the CFG. Successors are visited
 * fall-through first so that a branch's not-taken path (usually the
 * 'then' block, at lower addresses in the original program) keeps a
 * lower address than the taken path, mirroring the layout NVIDIA's
 * compiler produces (section 5.1 of the paper).
 */
std::vector<u32>
rpoOrder(const Cfg &cfg)
{
    std::vector<u32> postorder;
    std::vector<u8> state(cfg.numBlocks(), 0);
    std::vector<std::pair<u32, size_t>> stack;
    stack.push_back({0, 0});
    state[0] = 1;
    while (!stack.empty()) {
        auto &[node, idx] = stack.back();
        const BasicBlock &bb = cfg.block(node);
        // Descend into the taken path first so the fall-through
        // path finishes last and lands immediately after this block
        // in the reversed post-order.
        u32 order[2] = {bb.taken, bb.fall};
        bool pushed = false;
        while (idx < 2) {
            u32 s = order[idx++];
            if (s != no_block && state[s] == 0) {
                state[s] = 1;
                stack.push_back({s, 0});
                pushed = true;
                break;
            }
        }
        if (!pushed && idx >= 2) {
            state[node] = 2;
            postorder.push_back(node);
            stack.pop_back();
        }
    }
    std::reverse(postorder.begin(), postorder.end());
    return postorder;
}

} // namespace

std::vector<u32>
layoutOrder(const Cfg &cfg, LayoutMode mode)
{
    if (mode == LayoutMode::ThreadFrontier)
        return rpoOrder(cfg);

    // Preserve: original block order, restricted to reachable blocks.
    std::vector<u8> reach(cfg.numBlocks(), 0);
    std::vector<u32> work{0};
    reach[0] = 1;
    while (!work.empty()) {
        u32 b = work.back();
        work.pop_back();
        for (u32 s : cfg.block(b).succs()) {
            if (!reach[s]) {
                reach[s] = 1;
                work.push_back(s);
            }
        }
    }
    std::vector<u32> order;
    for (u32 b = 0; b < cfg.numBlocks(); ++b) {
        if (reach[b])
            order.push_back(b);
    }
    return order;
}

unsigned
countLayoutViolations(const isa::Program &prog)
{
    unsigned violations = 0;
    for (Pc pc = 0; pc < prog.size(); ++pc) {
        const isa::Instruction &inst = prog.at(pc);
        if (isa::isCondBranch(inst.op) && inst.reconv != invalid_pc &&
            inst.reconv <= pc) {
            ++violations;
        }
    }
    return violations;
}

} // namespace siwi::cfg
