#include "divergence/split_heap.hh"

#include <algorithm>

#include "common/log.hh"

namespace siwi::divergence {

SplitHeap::SplitHeap(const SplitHeapConfig &cfg, LaneMask initial,
                     Pc entry_pc)
    : cfg_(cfg),
      pool_(num_hot + cfg.cct_capacity),
      cct_(cfg.cct_capacity, cfg.cct_steps_per_cycle)
{
    hot_.fill(no_ctx);
    for (u32 i = 0; i < pool_.size(); ++i)
        free_.push_back(u32(pool_.size() - 1 - i));
    if (initial.any()) {
        u32 id = alloc(entry_pc, initial);
        hot_[0] = id;
    }
}

u32
SplitHeap::alloc(Pc pc, LaneMask mask)
{
    siwi_assert(!free_.empty(), "context pool exhausted");
    u32 id = free_.back();
    free_.pop_back();
    SplitContext &c = pool_[id];
    c.pc = pc;
    c.mask = mask;
    c.valid = true;
    c.branch_pending = false;
    c.barrier_blocked = false;
    ++c.version;
    stats_.max_live_contexts =
        std::max(stats_.max_live_contexts, liveContexts());
    return id;
}

void
SplitHeap::freeCtx(u32 id)
{
    siwi_assert(pool_[id].valid, "freeing invalid context");
    pool_[id].valid = false;
    ++pool_[id].version;
    free_.push_back(id);
}

u32
SplitHeap::hotId(unsigned slot) const
{
    siwi_assert(slot < num_hot, "bad hot slot");
    return hot_[slot];
}

const SplitContext &
SplitHeap::ctx(u32 id) const
{
    siwi_assert(id < pool_.size(), "bad context id");
    return pool_[id];
}

SplitContext &
SplitHeap::ctxMut(u32 id)
{
    siwi_assert(id < pool_.size(), "bad context id");
    // The caller may flip scheduling-relevant flags (barrier,
    // branch-pending) through this reference.
    dirty_ = true;
    return pool_[id];
}

bool
SplitHeap::done() const
{
    return hot_[0] == no_ctx && hot_[1] == no_ctx && cct_.empty();
}

LaneMask
SplitHeap::liveMask() const
{
    LaneMask m;
    for (const SplitContext &c : pool_) {
        if (c.valid)
            m |= c.mask;
    }
    return m;
}

Pc
SplitHeap::cpc1() const
{
    Pc best = invalid_pc;
    for (const SplitContext &c : pool_) {
        if (c.valid && c.pc < best)
            best = c.pc;
    }
    return best;
}

unsigned
SplitHeap::liveContexts() const
{
    unsigned n = 0;
    for (const SplitContext &c : pool_) {
        if (c.valid)
            ++n;
    }
    return n;
}

bool
SplitHeap::canSplit() const
{
    return !free_.empty() && !cct_.full();
}

SorterEntry
SplitHeap::toEntry(u32 id) const
{
    SorterEntry e;
    if (id == no_ctx)
        return e;
    const SplitContext &c = pool_[id];
    e.pc = c.pc;
    e.mask = c.mask;
    e.valid = c.valid;
    e.pinned = c.branch_pending;
    e.barrier = c.barrier_blocked;
    e.id = id;
    return e;
}

bool
SplitHeap::restructure(std::optional<u32> incoming, Cycle now)
{
    // Run the sorter network over (hot0, hot1, incoming); apply the
    // result; pop from the CCT into empty slots and re-sort until
    // stable (pops can enable further merges). The returned flag
    // reports whether anything moved: an already-sorted heap with
    // nothing incoming must come back false, or the SM's
    // quiet-cycle detector would never let a stalled warp sleep.
    bool changed = incoming.has_value();
    std::optional<u32> extra = incoming;
    for (int iter = 0; iter < 8; ++iter) {
        SorterEntry a = toEntry(hot_[0]);
        SorterEntry b = toEntry(hot_[1]);
        SorterEntry c = extra ? toEntry(*extra) : SorterEntry{};
        extra.reset();

        SorterResult res = hctSort(a, b, c);

        // Contexts merged away must be freed: inputs - outputs.
        for (const SorterEntry *in : {&a, &b, &c}) {
            if (!in->valid)
                continue;
            bool survives = res.spill.valid && res.spill.id == in->id;
            for (const SorterEntry &out : res.hot) {
                if (out.valid && out.id == in->id)
                    survives = true;
            }
            if (!survives) {
                freeCtx(in->id);
                changed = true;
            }
        }
        // Surviving merged entries absorb the freed masks.
        for (const SorterEntry &out : res.hot) {
            if (!out.valid)
                continue;
            SplitContext &ctx = pool_[out.id];
            if (ctx.mask != out.mask) {
                ctx.mask = out.mask;
                ++ctx.version;
                changed = true;
            }
        }
        stats_.merges += res.merges;

        u32 h0 = res.hot[0].valid ? res.hot[0].id : no_ctx;
        u32 h1 = res.hot[1].valid ? res.hot[1].id : no_ctx;
        changed |= hot_[0] != h0 || hot_[1] != h1;
        hot_[0] = h0;
        hot_[1] = h1;

        if (res.spill.valid) {
            coldInsert(res.spill.id, now);
            changed = true;
        }

        if (!res.want_pop || cct_.empty())
            break;
        auto popped = cct_.pop(now);
        siwi_assert(popped, "pop from non-empty CCT failed");
        extra = popped->id;
        changed = true;
    }
    return changed;
}

bool
SplitHeap::promote(Cycle now)
{
    // Keep the hot slots holding the lowest PCs: if a cold context
    // beats an unpinned hot one, swap them. This restores heap order
    // after degraded (stack-mode) CCT insertions and guarantees
    // progress when hot contexts are suspended at SYNC barriers.
    auto cold_min = cct_.minPc();
    if (!cold_min)
        return false;

    int victim = -1;
    Pc victim_pc = 0;
    bool victim_blocked = false;
    for (unsigned s = 0; s < num_hot; ++s) {
        u32 id = hot_[s];
        if (id == no_ctx)
            continue;
        const SplitContext &c = pool_[id];
        // Branch-pending contexts are pinned hot; barrier-blocked
        // ones may be demoted (release scans the whole pool), which
        // is required for progress when cold splits still have to
        // reach the barrier. A blocked context may even be demoted
        // for an equal-PC cold one: the cold split has not issued
        // its barrier arrival yet and must get a hot slot to do so.
        if (c.branch_pending)
            continue;
        bool beats = c.pc > *cold_min ||
                     (c.barrier_blocked && c.pc >= *cold_min);
        if (!beats)
            continue;
        if (victim < 0 || c.pc > victim_pc ||
            (c.pc == victim_pc && c.barrier_blocked &&
             !victim_blocked)) {
            victim = int(s);
            victim_pc = c.pc;
            victim_blocked = c.barrier_blocked;
        }
    }
    if (victim < 0)
        return false;

    auto popped = cct_.popMin(now);
    siwi_assert(popped, "promotion pop failed");
    u32 demoted = hot_[unsigned(victim)];
    hot_[unsigned(victim)] = no_ctx;
    ++pool_[demoted].version;
    coldInsert(demoted, now);
    ++stats_.promotions;
    restructure(popped->id, now);
    return true;
}

void
SplitHeap::coldInsert(u32 id, Cycle now)
{
    SplitContext &c = pool_[id];
    siwi_assert(c.valid && !c.branch_pending,
                "cold-inserting a pinned context");
    // Equal-PC compaction in the cold store: the sideband sorter
    // walks the PC-sorted list anyway, so reconverged cold splits
    // merge there (required for forward progress when blocked
    // contexts pile up behind a barrier while a hot slot is pinned).
    if (auto other = cct_.findByPc(c.pc)) {
        SplitContext &o = pool_[*other];
        if (!o.branch_pending &&
            o.barrier_blocked == c.barrier_blocked) {
            siwi_assert(!o.mask.intersects(c.mask),
                        "merging overlapping cold splits");
            o.mask |= c.mask;
            ++o.version;
            freeCtx(id);
            ++stats_.merges;
            return;
        }
    }
    cct_.insert(id, c.pc, now);
}

void
SplitHeap::advance(u32 id, Pc next, Cycle now)
{
    dirty_ = true;
    SplitContext &c = pool_[id];
    siwi_assert(c.valid, "advance on dead context");
    c.pc = next;
    ++c.version;
    restructure(std::nullopt, now);
}

void
SplitHeap::branchResolve(u32 id, Pc pc_a, LaneMask m_a, Pc pc_b,
                         LaneMask m_b, Cycle now)
{
    dirty_ = true;
    SplitContext &c = pool_[id];
    siwi_assert(c.valid, "branchResolve on dead context");
    siwi_assert((m_a | m_b) == c.mask && !m_a.intersects(m_b),
                "branch masks must partition the context");
    c.branch_pending = false;

    if (m_b.none()) {
        siwi_assert(m_a == c.mask, "uniform branch with partial mask");
        c.pc = pc_a;
        ++c.version;
        restructure(std::nullopt, now);
        return;
    }
    siwi_assert(m_a.any(), "branchResolve with empty path A");

    // Divergence: the original context keeps the lower-PC path.
    ++stats_.splits;
    Pc lo_pc = pc_a, hi_pc = pc_b;
    LaneMask lo_m = m_a, hi_m = m_b;
    if (hi_pc < lo_pc) {
        std::swap(lo_pc, hi_pc);
        std::swap(lo_m, hi_m);
    }
    c.pc = lo_pc;
    c.mask = lo_m;
    ++c.version;
    u32 split = alloc(hi_pc, hi_m);
    restructure(split, now);
}

void
SplitHeap::exitResolve(u32 id, Cycle now)
{
    dirty_ = true;
    SplitContext &c = pool_[id];
    siwi_assert(c.valid, "exitResolve on dead context");
    c.branch_pending = false;
    for (unsigned s = 0; s < num_hot; ++s) {
        if (hot_[s] == id)
            hot_[s] = no_ctx;
    }
    freeCtx(id);
    restructure(std::nullopt, now);
}

void
SplitHeap::memorySplit(u32 id, LaneMask advancing, Pc next, Cycle now)
{
    dirty_ = true;
    SplitContext &c = pool_[id];
    siwi_assert(c.valid, "memorySplit on dead context");
    siwi_assert(advancing.any() && advancing.subsetOf(c.mask) &&
                advancing != c.mask,
                "memorySplit mask must be a strict subset");
    ++stats_.splits;
    c.mask &= ~advancing;
    ++c.version;
    u32 split = alloc(next, advancing);
    restructure(split, now);
}

void
SplitHeap::barrierRelease(Cycle now)
{
    dirty_ = true;
    for (SplitContext &c : pool_) {
        if (c.valid && c.barrier_blocked) {
            c.barrier_blocked = false;
            c.pc = c.pc + 1;
            ++c.version;
        }
    }
    restructure(std::nullopt, now);
}

bool
SplitHeap::tick(Cycle now)
{
    bool changed = cct_.tick(now);
    if (changed)
        dirty_ = true;
    if (!dirty_)
        return false;
    changed |= restructure(std::nullopt, now);
    changed |= promote(now);
    // A pass that moved something may have enabled another (e.g. a
    // promotion freeing a slot): stay dirty and settle next tick.
    dirty_ = changed;
    return changed;
}

} // namespace siwi::divergence
