/**
 * @file
 * Cold Context Table: linked-list store for inactive warp-splits
 * with an asynchronous sideband insertion sorter (paper §3.4).
 */

#ifndef SIWI_DIVERGENCE_CCT_HH
#define SIWI_DIVERGENCE_CCT_HH

#include <optional>
#include <vector>

#include "common/types.hh"

namespace siwi::divergence {

/** CCT statistics. */
struct CctStats
{
    u64 inserts = 0;
    u64 degraded_inserts = 0; //!< sorter busy: pushed at list head
    u64 pops = 0;
    unsigned max_size = 0;
};

/**
 * Per-warp cold context store.
 *
 * Entries are (context id, PC) pairs; the owning SplitHeap keeps the
 * actual context state. The sideband sorter walks the list to insert
 * in PC order, taking one list step per cycle (configurable). If an
 * insertion arrives while the sorter is busy, the table degrades to
 * a stack: the entry is pushed at the head, exactly the fallback the
 * paper describes. Pops always take the head.
 */
class Cct
{
  public:
    struct Entry
    {
        u32 id;
        Pc pc;
    };

    Cct(unsigned capacity, unsigned steps_per_cycle);

    /** Entries stored, including one parked in the sorter. */
    unsigned size() const;
    bool empty() const { return size() == 0; }
    bool full() const { return size() >= capacity_; }

    /**
     * Request insertion of a context. Timed: the sideband sorter
     * parks it until the list walk finishes; a second insertion
     * meanwhile degrades to a head push.
     */
    void insert(u32 id, Pc pc, Cycle now);

    /**
     * Pop the head entry (lowest PC when the sorter kept up).
     * Falls back to the parked sorter entry when the list is empty.
     */
    std::optional<Entry> pop(Cycle now);

    /** Lowest PC over all stored entries (exact scan), for CPC1. */
    std::optional<Pc> minPc() const;

    /** Exact min-PC removal, used by the hot-promotion rule. */
    std::optional<Entry> popMin(Cycle now);

    /**
     * Id of a stored context with the given PC, if any (the
     * sideband sorter passes equal-PC entries during its walk, so
     * the owning heap can compact reconverged cold splits).
     */
    std::optional<u32> findByPc(Pc pc) const;

    /** Remove a specific context (after an external merge). */
    void eraseId(u32 id);

    /**
     * Advance the sideband sorter one cycle. True when the parked
     * entry folded into the list this cycle — the only transition
     * this table makes on its own (everything else is driven by
     * the owning heap).
     */
    bool tick(Cycle now);

    /**
     * Cycle the parked sorter entry is due to fold into the list,
     * or no_wake when the sorter is idle. The fold changes what
     * pop()/minPc()/findByPc() can return, so a caller skipping
     * quiet cycles must not jump past this bound.
     */
    Cycle nextWake() const
    {
        return pending_ ? pending_ready_ : no_wake;
    }

    const CctStats &stats() const { return stats_; }
    unsigned capacity() const { return capacity_; }

  private:
    void finishPending();

    unsigned capacity_;
    unsigned steps_per_cycle_;
    // Capacity-bounded (a handful of entries), so a flat vector
    // beats a node container: head is the front, inserts/erases
    // are tiny contiguous moves, storage is reused across splits.
    std::vector<Entry> list_;

    std::optional<Entry> pending_;
    Cycle pending_ready_ = 0;

    CctStats stats_;
};

} // namespace siwi::divergence

#endif // SIWI_DIVERGENCE_CCT_HH
