/**
 * @file
 * Hot Context Table sorter network (paper Figure 5(b)).
 *
 * The HCT keeps the two active warp-split contexts of each warp
 * sorted by PC. Each cycle the sorter receives the updated CPC1 and
 * CPC2 and, on divergence, an additional CPC3, then sorts, compacts
 * and merges them: equal PCs merge their activity masks, at most two
 * entries stay hot, a third spills to the CCT, and an emptied slot
 * requests a pop from the CCT.
 */

#ifndef SIWI_DIVERGENCE_HCT_HH
#define SIWI_DIVERGENCE_HCT_HH

#include <array>

#include "common/lane_mask.hh"
#include "common/types.hh"

namespace siwi::divergence {

/** One context flowing through the sorter network. */
struct SorterEntry
{
    Pc pc = invalid_pc;
    LaneMask mask;
    bool valid = false;
    /**
     * Pinned contexts (branch in flight) keep their identity and may
     * not be merged or spilled this cycle.
     */
    bool pinned = false;
    /**
     * Waiting at a thread-block barrier (arrival already counted).
     * Two barrier-blocked contexts at the same PC may merge; a
     * blocked and an unblocked one may not, or the unblocked
     * threads would skip their barrier arrival.
     */
    bool barrier = false;
    /** Opaque context identity carried through the network. */
    u32 id = 0xffffffffu;
};

/** Result of one sorter pass. */
struct SorterResult
{
    /** The (up to) two hot entries, sorted by ascending PC. */
    std::array<SorterEntry, 2> hot;
    /** Valid when a third context must spill to the CCT. */
    SorterEntry spill;
    /** True when a hot slot is empty and a CCT pop is wanted. */
    bool want_pop = false;
    /** Number of merges performed (statistics). */
    unsigned merges = 0;
};

/**
 * Combinational sort + compact + merge of up to three contexts.
 *
 * Merging ORs the masks of entries with equal PCs (reconvergence).
 * Pinned entries never merge and are preferentially kept hot, since
 * their in-flight instructions are bound to a hot slot.
 */
SorterResult hctSort(const SorterEntry &a, const SorterEntry &b,
                     const SorterEntry &c);

} // namespace siwi::divergence

#endif // SIWI_DIVERGENCE_HCT_HH
