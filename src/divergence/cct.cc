#include "divergence/cct.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/log.hh"

namespace siwi::divergence {

Cct::Cct(unsigned capacity, unsigned steps_per_cycle)
    : capacity_(capacity),
      steps_per_cycle_(std::max(1u, steps_per_cycle))
{
}

unsigned
Cct::size() const
{
    return unsigned(list_.size()) + (pending_ ? 1 : 0);
}

void
Cct::finishPending()
{
    if (!pending_)
        return;
    // Sorted insertion at the position the walk found.
    auto it = std::find_if(list_.begin(), list_.end(),
                           [&](const Entry &e) {
                               return e.pc > pending_->pc;
                           });
    list_.insert(it, *pending_);
    pending_.reset();
}

void
Cct::insert(u32 id, Pc pc, Cycle now)
{
    siwi_assert(!full(), "CCT overflow");
    ++stats_.inserts;

    if (pending_) {
        // Sideband sorter busy: degrade to a stack (head push).
        ++stats_.degraded_inserts;
        list_.insert(list_.begin(), {id, pc});
    } else {
        // Walk length: entries passed before the insertion point.
        unsigned walk = 0;
        for (const Entry &e : list_) {
            if (e.pc > pc)
                break;
            ++walk;
        }
        Cycle latency = divCeil(walk + 1, steps_per_cycle_);
        pending_ = Entry{id, pc};
        pending_ready_ = now + latency;
    }
    stats_.max_size = std::max(stats_.max_size, size());
}

bool
Cct::tick(Cycle now)
{
    if (pending_ && now >= pending_ready_) {
        finishPending();
        return true;
    }
    return false;
}

std::optional<Cct::Entry>
Cct::pop(Cycle now)
{
    (void)now;
    if (!list_.empty()) {
        Entry e = list_.front();
        list_.erase(list_.begin());
        ++stats_.pops;
        return e;
    }
    if (pending_) {
        Entry e = *pending_;
        pending_.reset();
        ++stats_.pops;
        return e;
    }
    return std::nullopt;
}

std::optional<Pc>
Cct::minPc() const
{
    std::optional<Pc> best;
    for (const Entry &e : list_) {
        if (!best || e.pc < *best)
            best = e.pc;
    }
    if (pending_ && (!best || pending_->pc < *best))
        best = pending_->pc;
    return best;
}

std::optional<u32>
Cct::findByPc(Pc pc) const
{
    for (const Entry &e : list_) {
        if (e.pc == pc)
            return e.id;
    }
    if (pending_ && pending_->pc == pc)
        return pending_->id;
    return std::nullopt;
}

void
Cct::eraseId(u32 id)
{
    for (auto it = list_.begin(); it != list_.end(); ++it) {
        if (it->id == id) {
            list_.erase(it);
            return;
        }
    }
    if (pending_ && pending_->id == id) {
        pending_.reset();
        return;
    }
    panic("Cct::eraseId: id not stored");
}

std::optional<Cct::Entry>
Cct::popMin(Cycle now)
{
    (void)now;
    if (empty())
        return std::nullopt;
    // Consider the parked entry too.
    auto it = std::min_element(list_.begin(), list_.end(),
                               [](const Entry &a, const Entry &b) {
                                   return a.pc < b.pc;
                               });
    if (pending_ &&
        (it == list_.end() || pending_->pc < it->pc)) {
        Entry e = *pending_;
        pending_.reset();
        ++stats_.pops;
        return e;
    }
    Entry e = *it;
    list_.erase(it);
    ++stats_.pops;
    return e;
}

} // namespace siwi::divergence
