#include "divergence/reconv_stack.hh"

#include "common/log.hh"

namespace siwi::divergence {

ReconvStack::ReconvStack(LaneMask initial, Pc entry_pc)
{
    if (initial.any())
        stack_.push_back({invalid_pc, entry_pc, initial});
}

Pc
ReconvStack::pc() const
{
    siwi_assert(!stack_.empty(), "pc() on empty stack");
    return stack_.back().pc;
}

LaneMask
ReconvStack::mask() const
{
    siwi_assert(!stack_.empty(), "mask() on empty stack");
    return stack_.back().mask;
}

void
ReconvStack::popConverged()
{
    while (stack_.size() > 1 &&
           (stack_.back().pc == stack_.back().rpc ||
            stack_.back().mask.none())) {
        if (stack_.back().mask.any())
            ++reconvergences_;
        stack_.pop_back();
        ++version_;
    }
}

void
ReconvStack::advance(Pc next)
{
    siwi_assert(!stack_.empty(), "advance() on empty stack");
    stack_.back().pc = next;
    ++version_;
    popConverged();
}

bool
ReconvStack::branch(Pc taken_target, Pc fallthrough, Pc reconv,
                    LaneMask taken)
{
    siwi_assert(!stack_.empty(), "branch() on empty stack");
    Entry &top = stack_.back();
    LaneMask taken_m = taken & top.mask;
    LaneMask fall_m = top.mask & ~taken;

    if (fall_m.none()) {
        advance(taken_target);
        return false;
    }
    if (taken_m.none()) {
        advance(fallthrough);
        return false;
    }

    ++divergences_;
    ++version_;
    if (reconv == invalid_pc) {
        // No reconvergence point (paths exit separately): serialize
        // the two paths under the current entry's reconvergence PC.
        Pc rpc = top.rpc;
        top.pc = fallthrough;
        top.mask = fall_m;
        stack_.push_back({rpc, taken_target, taken_m});
    } else {
        // The current entry becomes the reconvergence entry.
        top.pc = reconv;
        stack_.push_back({reconv, fallthrough, fall_m});
        stack_.push_back({reconv, taken_target, taken_m});
    }
    max_depth_ = std::max(max_depth_, unsigned(stack_.size()));
    // A pushed path may already sit at the reconvergence point
    // (if-without-else: the taken target IS the join). It must wait
    // there, not run ahead.
    popConverged();
    return true;
}

void
ReconvStack::exitThreads(LaneMask m)
{
    for (Entry &e : stack_)
        e.mask &= ~m;
    ++version_;
    // Drop empty entries from the top; interior empties pop when
    // they surface.
    while (!stack_.empty() && stack_.back().mask.none()) {
        stack_.pop_back();
    }
    popConverged();
}

} // namespace siwi::divergence
