/**
 * @file
 * Baseline stack-based reconvergence (section 2 of the paper).
 *
 * Implements the classic SIMT divergence stack: on a divergent
 * branch the current entry becomes the reconvergence entry (its PC
 * set to the branch's reconvergence point, the immediate
 * post-dominator annotated by the compiler), and one entry per path
 * is pushed. An entry whose PC reaches its reconvergence PC is
 * popped. This subsumes Tesla's dedicated break/return support:
 * break-style branches carry the loop exit as their reconvergence
 * point and nest correctly.
 */

#ifndef SIWI_DIVERGENCE_RECONV_STACK_HH
#define SIWI_DIVERGENCE_RECONV_STACK_HH

#include <vector>

#include "common/lane_mask.hh"
#include "common/types.hh"

namespace siwi::divergence {

/**
 * Per-warp hardware divergence stack.
 *
 * Only the top entry executes; the pipeline reads pc()/mask(),
 * reports control outcomes, and the stack handles push/pop.
 */
class ReconvStack
{
  public:
    /** Stack entry: (reconvergence PC, next PC, activity mask). */
    struct Entry
    {
        Pc rpc;
        Pc pc;
        LaneMask mask;
    };

    explicit ReconvStack(LaneMask initial, Pc entry_pc = 0);

    /** All threads exited? */
    bool done() const { return stack_.empty(); }

    /** PC of the executing (top) entry. */
    Pc pc() const;

    /** Activity mask of the executing entry. */
    LaneMask mask() const;

    /** Non-control instruction retired: move to @p next. */
    void advance(Pc next);

    /**
     * Branch resolved. @p taken is the sub-mask (of the top mask)
     * that takes the branch; the rest falls through. @p reconv is
     * the compiler annotation (invalid_pc when none).
     * @return true when the branch diverged (pushed entries).
     */
    bool branch(Pc taken_target, Pc fallthrough, Pc reconv,
                LaneMask taken);

    /** Threads in @p m executed EXIT: remove them everywhere. */
    void exitThreads(LaneMask m);

    unsigned depth() const { return unsigned(stack_.size()); }
    unsigned maxDepth() const { return max_depth_; }
    u64 divergences() const { return divergences_; }
    u64 reconvergences() const { return reconvergences_; }

    /** Version counter, bumped whenever pc()/mask() change. */
    u32 version() const { return version_; }

  private:
    void popConverged();

    std::vector<Entry> stack_;
    unsigned max_depth_ = 1;
    u64 divergences_ = 0;
    u64 reconvergences_ = 0;
    u32 version_ = 0;
};

} // namespace siwi::divergence

#endif // SIWI_DIVERGENCE_RECONV_STACK_HH
