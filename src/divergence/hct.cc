#include "divergence/hct.hh"

#include <algorithm>
#include <vector>

#include "common/log.hh"

namespace siwi::divergence {

SorterResult
hctSort(const SorterEntry &a, const SorterEntry &b,
        const SorterEntry &c)
{
    SorterResult res;

    std::vector<SorterEntry> live;
    for (const SorterEntry *e : {&a, &b, &c}) {
        if (e->valid)
            live.push_back(*e);
    }

    // Sort by PC; stable so earlier inputs keep priority on ties.
    std::stable_sort(live.begin(), live.end(),
                     [](const SorterEntry &x, const SorterEntry &y) {
                         return x.pc < y.pc;
                     });

    // Compact/merge adjacent equal-PC entries (reconvergence),
    // unless either side is pinned or their barrier states differ.
    std::vector<SorterEntry> merged;
    for (const SorterEntry &e : live) {
        if (!merged.empty() && merged.back().pc == e.pc &&
            !merged.back().pinned && !e.pinned &&
            merged.back().barrier == e.barrier) {
            siwi_assert(!merged.back().mask.intersects(e.mask),
                        "merging overlapping warp-splits");
            merged.back().mask |= e.mask;
            ++res.merges;
        } else {
            merged.push_back(e);
        }
    }

    // Keep (up to) two hot; spill the third. Prefer spilling the
    // highest-PC unpinned entry.
    if (merged.size() > 2) {
        siwi_assert(merged.size() == 3, "more than 3 sorter inputs");
        int spill_idx = -1;
        for (int i = 2; i >= 0; --i) {
            if (!merged[size_t(i)].pinned) {
                spill_idx = i;
                break;
            }
        }
        siwi_assert(spill_idx >= 0, "all three sorter entries pinned");
        res.spill = merged[size_t(spill_idx)];
        merged.erase(merged.begin() + spill_idx);
    }

    for (size_t i = 0; i < merged.size(); ++i)
        res.hot[i] = merged[i];
    res.want_pop = merged.size() < 2;
    return res;
}

} // namespace siwi::divergence
