#include "divergence/hct.hh"

#include <cstddef>

#include "common/log.hh"

namespace siwi::divergence {

SorterResult
hctSort(const SorterEntry &a, const SorterEntry &b,
        const SorterEntry &c)
{
    SorterResult res;

    // This runs on the hot path of every heap restructure, so it
    // stays allocation-free: at most three live entries in fixed
    // storage, ordered by a stable insertion sort.
    SorterEntry live[3];
    size_t n = 0;
    for (const SorterEntry *e : {&a, &b, &c}) {
        if (e->valid)
            live[n++] = *e;
    }

    // Sort by PC; stable so earlier inputs keep priority on ties.
    for (size_t i = 1; i < n; ++i) {
        SorterEntry key = live[i];
        size_t j = i;
        for (; j > 0 && key.pc < live[j - 1].pc; --j)
            live[j] = live[j - 1];
        live[j] = key;
    }

    // Compact/merge adjacent equal-PC entries (reconvergence),
    // unless either side is pinned or their barrier states differ.
    SorterEntry merged[3];
    size_t m = 0;
    for (size_t i = 0; i < n; ++i) {
        const SorterEntry &e = live[i];
        if (m > 0 && merged[m - 1].pc == e.pc &&
            !merged[m - 1].pinned && !e.pinned &&
            merged[m - 1].barrier == e.barrier) {
            siwi_assert(!merged[m - 1].mask.intersects(e.mask),
                        "merging overlapping warp-splits");
            merged[m - 1].mask |= e.mask;
            ++res.merges;
        } else {
            merged[m++] = e;
        }
    }

    // Keep (up to) two hot; spill the third. Prefer spilling the
    // highest-PC unpinned entry.
    if (m > 2) {
        siwi_assert(m == 3, "more than 3 sorter inputs");
        int spill_idx = -1;
        for (int i = 2; i >= 0; --i) {
            if (!merged[size_t(i)].pinned) {
                spill_idx = i;
                break;
            }
        }
        siwi_assert(spill_idx >= 0, "all three sorter entries pinned");
        res.spill = merged[size_t(spill_idx)];
        for (size_t i = size_t(spill_idx); i + 1 < m; ++i)
            merged[i] = merged[i + 1];
        --m;
    }

    for (size_t i = 0; i < m; ++i)
        res.hot[i] = merged[i];
    res.want_pop = m < 2;
    return res;
}

} // namespace siwi::divergence
