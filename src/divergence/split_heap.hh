/**
 * @file
 * Per-warp sorted heap of warp-split contexts (paper section 3.4).
 *
 * Composes the Hot Context Table (two schedulable contexts, kept
 * PC-sorted by the sorter network) with the Cold Context Table
 * (linked-list overflow store with an asynchronous sideband sorter).
 * Thread-frontier reconvergence emerges from the merge-on-equal-PC
 * rule; SBI schedules both hot contexts simultaneously.
 */

#ifndef SIWI_DIVERGENCE_SPLIT_HEAP_HH
#define SIWI_DIVERGENCE_SPLIT_HEAP_HH

#include <array>
#include <optional>
#include <vector>

#include "divergence/cct.hh"
#include "divergence/hct.hh"

namespace siwi::divergence {

/** Sentinel context id. */
constexpr u32 no_ctx = 0xffffffffu;

/** One warp-split context. */
struct SplitContext
{
    Pc pc = invalid_pc;
    LaneMask mask;
    bool valid = false;

    /** Branch/exit issued, resolution in flight: pinned hot. */
    bool branch_pending = false;
    /** Waiting at a thread-block barrier. */
    bool barrier_blocked = false;

    /**
     * Bumped whenever pc or mask changes; instruction-buffer entries
     * snapshot it and refetch when stale.
     */
    u32 version = 0;
};

/** Heap configuration (per warp). */
struct SplitHeapConfig
{
    unsigned cct_capacity = 8;
    unsigned cct_steps_per_cycle = 1;
};

/** Heap statistics. */
struct SplitHeapStats
{
    u64 splits = 0;
    u64 merges = 0;
    u64 promotions = 0;
    unsigned max_live_contexts = 0;
};

/**
 * The warp-split heap of one warp.
 *
 * The pipeline addresses contexts by id (stable across slot moves),
 * schedules only the hot slots, and reports control outcomes through
 * the mutation methods. The heap keeps hot = lowest PCs, merges
 * reconverging splits, spills to / refills from the CCT, and
 * promotes lower-PC cold contexts over unpinned hot ones.
 */
class SplitHeap
{
  public:
    static constexpr unsigned num_hot = 2;

    SplitHeap(const SplitHeapConfig &cfg, LaneMask initial,
              Pc entry_pc = 0);

    /** Context id in hot slot @p slot, or no_ctx. */
    u32 hotId(unsigned slot) const;

    const SplitContext &ctx(u32 id) const;
    /** Mutable context access; marks the heap for re-sorting. */
    SplitContext &ctxMut(u32 id);

    /** All threads exited? */
    bool done() const;

    /** Lanes still live across all contexts. */
    LaneMask liveMask() const;

    /** Exact minimum PC over all live contexts (the paper's CPC1). */
    Pc cpc1() const;

    /** Number of live contexts (hot + cold). */
    unsigned liveContexts() const;

    /** Room to create one more warp-split? */
    bool canSplit() const;

    /** Non-control instruction issued: advance @p id to @p next. */
    void advance(u32 id, Pc next, Cycle now);

    /**
     * Branch resolved for @p id: path A (pc_a/m_a) and optional path
     * B. Empty m_b = uniform branch. Clears branch_pending.
     */
    void branchResolve(u32 id, Pc pc_a, LaneMask m_a, Pc pc_b,
                       LaneMask m_b, Cycle now);

    /** EXIT resolved: threads of @p id are done. */
    void exitResolve(u32 id, Cycle now);

    /**
     * Memory divergence split: lanes in @p advancing move to
     * @p next; the rest stay at the current PC to replay.
     */
    void memorySplit(u32 id, LaneMask advancing, Pc next, Cycle now);

    /** Release every barrier-blocked context to @p next-of-its-pc. */
    void barrierRelease(Cycle now);

    /**
     * Per-cycle maintenance: CCT sorter step, promotion rule.
     * @return true when any heap state changed (a sorter fold,
     *         merge, spill, pop, hot-slot move or promotion) —
     *         the SM's quiet-cycle detector keys on this.
     */
    bool tick(Cycle now);

    /**
     * Earliest future cycle this heap changes state on its own:
     * the parked CCT sorter entry's fold time, or no_wake. Every
     * other transition is driven by the pipeline (advance, branch
     * and exit resolution, memory splits, barrier release).
     */
    Cycle nextWake() const { return cct_.nextWake(); }

    /**
     * No restructuring work is pending: the last tick() pass found
     * nothing to do and no mutation has happened since, so until
     * the owning warp acts or nextWake() arrives, repeating tick()
     * provably returns false. The warp sleep/wake machinery keys
     * on this — a sleeping warp's heap must not want maintenance.
     */
    bool quiescent() const { return !dirty_; }

    const SplitHeapStats &stats() const { return stats_; }
    const CctStats &cctStats() const { return cct_.stats(); }

  private:
    u32 alloc(Pc pc, LaneMask mask);
    void freeCtx(u32 id);
    bool restructure(std::optional<u32> incoming, Cycle now);
    bool promote(Cycle now);
    /** Insert into the CCT, compacting with an equal-PC entry. */
    void coldInsert(u32 id, Cycle now);
    SorterEntry toEntry(u32 id) const;

    SplitHeapConfig cfg_;
    std::vector<SplitContext> pool_;
    std::vector<u32> free_;
    std::array<u32, num_hot> hot_;
    Cct cct_;
    SplitHeapStats stats_;

    /**
     * Set by every mutation, cleared when a full tick() pass finds
     * nothing to do. A no-change pass is side-effect-free and pure
     * in the heap state, so until the next mutation (or a sideband
     * sorter fold, which tick() checks first) repeating it must
     * return false again — tick() short-circuits to exactly that.
     */
    bool dirty_ = true;
};

} // namespace siwi::divergence

#endif // SIWI_DIVERGENCE_SPLIT_HEAP_HH
