/**
 * @file
 * The SM front-end layer: instruction select + issue, decoupled
 * from the SM's warp/block/memory state.
 *
 * The paper's whole contribution lives here — stack vs.
 * thread-frontier scheduling (§3), SBI's dual issue over CPC1 and
 * CPC2 (§3.3), and SWI's cascaded mask-fit secondary scheduler
 * (§4) — so the front-end is a first-class layer: a FrontEnd
 * object owns the per-cycle select/issue decision and its private
 * scheduler state (cascade register, mask-inclusion lookup,
 * tie-break RNG), while the hosting SM keeps warp contexts,
 * blocks, barriers, events and the memory pipeline, exposed
 * through the narrow FrontEndHost interface.
 *
 * Two concrete front-ends cover the paper's five machines:
 *
 *   StackFrontEnd      Fermi-like baseline — per-pool primary
 *                      schedulers over stack-reconvergent warps.
 *   InterweaveFrontEnd the 64-wide thread-frontier machines
 *                      (TF64, SBI, SWI, SBI+SWI) — composes the
 *                      split-heap context slots, the SBI second
 *                      front-end, the mask-inclusion lookup and
 *                      the SWI cascade register.
 *
 * Primary-candidate ordering is delegated to a SchedPolicy
 * strategy (see sched_policy.hh), selected via
 * SMConfig::sched_policy; oldest-first reproduces the paper
 * bit-exactly.
 */

#ifndef SIWI_FRONTEND_FRONT_END_HH
#define SIWI_FRONTEND_FRONT_END_HH

#include <memory>
#include <optional>
#include <vector>

#include "common/lane_mask.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "core/stats.hh"
#include "frontend/sched_policy.hh"
#include "isa/opcode.hh"
#include "pipeline/ibuffer.hh"
#include "pipeline/mask_lookup.hh"
#include "pipeline/warp_set.hh"

namespace siwi::pipeline {
class ExecGroup;
struct SMConfig;
} // namespace siwi::pipeline

namespace siwi::frontend {

/** Scheduling view of one warp context slot. */
struct CtxView
{
    bool valid = false; //!< exists and is schedulable
    u32 id = 0;
    Pc pc = invalid_pc;
    LaneMask mask;
    u32 version = 0;
};

/** Row occupancy info of the primary issue this cycle. */
struct PrimaryIssueInfo
{
    bool valid = false;
    WarpId w = 0;
    u32 ctx_id = 0;
    pipeline::ExecGroup *group = nullptr;
    LaneMask mask;
    isa::UnitClass unit = isa::UnitClass::MAD;
};

/**
 * What a front-end needs from its hosting SM: candidate
 * visibility (context views, buffered entries, readiness) and the
 * issue primitive. The host keeps ownership of warps, the
 * instruction buffer, the scoreboard and the execution groups;
 * the front-end only decides *what* to issue.
 */
class FrontEndHost
{
  public:
    virtual const pipeline::SMConfig &config() const = 0;
    virtual Cycle now() const = 0;
    virtual unsigned numWarps() const = 0;

    /** Scheduling view of context slot (w, slot). */
    virtual CtxView ctxView(WarpId w, unsigned slot) const = 0;

    /** Fresh buffered entry of the context in (w, slot), or null. */
    virtual const pipeline::IBufEntry *entryFor(
        WarpId w, unsigned slot) const = 0;
    virtual pipeline::IBufEntry *entryFor(WarpId w,
                                          unsigned slot) = 0;

    /** Valid buffered entry of context @p ctx_id, or null. */
    virtual pipeline::IBufEntry *findCtx(WarpId w, u32 ctx_id) = 0;

    /** May (w, slot) issue this cycle? */
    virtual bool ready(WarpId w, unsigned slot,
                       bool check_group) const = 0;

    /**
     * The runnable active list: active warps not parked by the
     * host's sleep/wake machinery. A sleeping warp is provably
     * not ready, not fetchable and free of claimed entries, so
     * every candidate scan may iterate this set instead of all
     * warps and see identical candidates in identical (ascending)
     * order. The set can grow mid-cycle (a barrier release wakes
     * warps), so scans must read it where they run, not cache it.
     */
    virtual const pipeline::WarpSet &awakeWarps() const = 0;

    /** A free execution group of class @p cls, or null. */
    virtual pipeline::ExecGroup *freeGroup(isa::UnitClass cls) = 0;

    /**
     * Issue the instruction buffered for context slot (w, slot).
     * @param primary row-sharing context, null for primary issues
     * @param row_share issue onto the primary's row
     * @return true on success
     */
    virtual bool issueCand(WarpId w, unsigned slot, bool secondary,
                           PrimaryIssueInfo *primary,
                           bool row_share) = 0;

    /** Primary issued this cycle (filled by issueCand). */
    virtual const PrimaryIssueInfo &lastPrimary() const = 0;

    /** Reset lastPrimary() at the top of the issue stage. */
    virtual void clearLastPrimary() = 0;

    /** Mutable statistics (front-end counters). */
    virtual core::SimStats &stats() = 0;

  protected:
    ~FrontEndHost() = default;
};

/**
 * One SM front-end: selects and issues instructions for one cycle.
 *
 * The candidate domains (per-pool warp lists, the SBI CPC2 slots)
 * are rebuilt each select from the host's runnable active list —
 * the machine geometry fixes only their shape. The scratch vectors
 * are reused, so the per-cycle hot loop still never allocates in
 * steady state, and now visits O(runnable) warps, not all of them.
 */
class FrontEnd
{
  public:
    virtual ~FrontEnd() = default;

    /**
     * Select + issue for one cycle (the SM issue stage).
     * @return true when the front-end made progress or mutated any
     *         state: an issue, a cascade-register park or
     *         stale-drop, or a squashed conflict. False means the
     *         cycle was a pure (state-free) selection pass, so an
     *         identical cycle would repeat until something else in
     *         the SM changes — the contract the event-driven
     *         cycle-skipping loop relies on.
     */
    virtual bool issueCycle() = 0;

    const SchedPolicy &schedPolicy(unsigned pool = 0) const
    {
        return *policy_[pool];
    }

  protected:
    explicit FrontEnd(FrontEndHost &host);

    /**
     * Policy-ordered pick over @p cands by @p pool's scheduler.
     * Pure selection: the caller reports the outcome through
     * notifyIssued() only when the pick actually issues, so
     * stateful policies (the RR cursor, GTO's last warp) never
     * advance past a warp that was denied by a structural stall.
     */
    std::optional<Cand> selectPrimary(unsigned pool,
                                      std::span<const Cand> cands,
                                      bool check_group);

    /** Report a successful primary issue to @p pool's policy. */
    void notifyIssued(unsigned pool, const Cand &c)
    {
        policy_[pool]->notifyIssued(c);
    }

    /**
     * The simple (1-cycle scheduler) issue stage shared by the
     * Fermi baseline and the non-cascaded interweave machines:
     * two alternating pools, or one pool plus the SBI secondary.
     * @return true when any instruction issued
     */
    bool issueSimple();

    /**
     * Oldest ready CPC2 entry, row-shared when possible (§3.3).
     * @return true when an instruction issued
     */
    bool issueSecondarySimple(const PrimaryIssueInfo &pinfo);

    /**
     * Primary candidate domain of @p pool right now: the awake
     * warps of the pool, ascending, slot 0 — the same candidates
     * the old full-warp scan offered, minus provably unready ones.
     * Returns a span over reused scratch; valid until the next
     * call for the same pool.
     */
    std::span<const Cand> poolDomain(unsigned pool);

    FrontEndHost &host_;
    /**
     * One policy instance per scheduler pool: pooled machines
     * model two independent schedulers, so stateful policies (RR
     * cursor, GTO last-warp) must not leak across pools.
     * Single-pool machines only use index 0.
     */
    std::unique_ptr<SchedPolicy> policy_[2];
    /** Reusable poolDomain() scratch (hot loop: no allocation). */
    std::vector<Cand> pool_scratch_[2];
};

/** Fermi-like baseline: stack reconvergence, per-pool schedulers. */
class StackFrontEnd final : public FrontEnd
{
  public:
    explicit StackFrontEnd(FrontEndHost &host);
    bool issueCycle() override;
};

/**
 * Thread-frontier front-end for the 64-wide machines: TF64's
 * pooled schedulers, SBI's dual issue, and SWI's cascaded
 * secondary scheduler with mask-inclusion lookup.
 */
class InterweaveFrontEnd final : public FrontEnd
{
  public:
    explicit InterweaveFrontEnd(FrontEndHost &host);
    bool issueCycle() override;

    const pipeline::MaskLookup &maskLookup() const
    {
        return lookup_;
    }

  private:
    /** Primary pick parked between select and issue (SWI). */
    struct CascadeReg
    {
        bool valid = false;
        WarpId w = 0;
        u32 ctx_id = 0;
        u32 ctx_version = 0;
    };

    bool issueCascaded();
    std::optional<Cand> pickSecondaryCascaded(
        const PrimaryIssueInfo &pinfo, bool *row_share_out);
    std::optional<Cand> pickSubstitute();

    pipeline::MaskLookup lookup_;
    Rng rng_;
    CascadeReg cascade_;
    // Reusable per-cycle scratch (hot loop: no allocation).
    std::vector<pipeline::LookupCandidate> lookup_scratch_;
    std::vector<Cand> cand_scratch_;
};

/**
 * Build the front-end matching @p host's configuration: cascaded
 * or thread-frontier machines get the InterweaveFrontEnd, plain
 * stack machines the StackFrontEnd.
 */
std::unique_ptr<FrontEnd> makeFrontEnd(FrontEndHost &host);

} // namespace siwi::frontend

#endif // SIWI_FRONTEND_FRONT_END_HH
