/**
 * @file
 * The machine / scheduling-policy registry.
 *
 * The five evaluated machines (Figure 7) and the four primary
 * scheduling policies are data, not code: one table each, shared
 * by the runner suites, the siwi-run CLI and the benches, so a
 * new machine variant or policy is one added row instead of
 * another `if (mode == ...)` branch.
 */

#ifndef SIWI_FRONTEND_REGISTRY_HH
#define SIWI_FRONTEND_REGISTRY_HH

#include <span>
#include <string_view>

#include "frontend/sched_policy.hh"
#include "pipeline/config.hh"

namespace siwi::frontend {

/** One registered machine: a named canonical configuration. */
struct MachineEntry
{
    const char *name;            //!< sweep/CLI label
    pipeline::PipelineMode mode; //!< SMConfig::make() input
    const char *paper_ref;       //!< where the paper defines it
};

/** The five paper machines, in Figure 7 column order. */
std::span<const MachineEntry> machineRegistry();

/** Registry row by name, or null. */
const MachineEntry *findMachineEntry(std::string_view name);

/** One registered primary scheduling policy. */
struct PolicyEntry
{
    const char *name; //!< CLI label ("oldest", "rr", ...)
    SchedPolicyKind kind;
    const char *description;
};

/** Every scheduling policy (oldest-first = the paper's). */
std::span<const PolicyEntry> policyRegistry();

/** Registry row by name, or null. */
const PolicyEntry *findPolicyEntry(std::string_view name);

} // namespace siwi::frontend

#endif // SIWI_FRONTEND_REGISTRY_HH
