#include "frontend/sched_policy.hh"

#include "common/log.hh"
#include "frontend/front_end.hh"

namespace siwi::frontend {

const char *
schedPolicyName(SchedPolicyKind kind)
{
    switch (kind) {
      case SchedPolicyKind::OldestFirst: return "oldest";
      case SchedPolicyKind::RoundRobin: return "rr";
      case SchedPolicyKind::GreedyThenOldest: return "gto";
      case SchedPolicyKind::MinPc: return "minpc";
    }
    return "?";
}

namespace {

constexpr SchedPolicyKind all_policies[] = {
    SchedPolicyKind::OldestFirst,
    SchedPolicyKind::RoundRobin,
    SchedPolicyKind::GreedyThenOldest,
    SchedPolicyKind::MinPc,
};

} // namespace

std::span<const SchedPolicyKind>
allSchedPolicies()
{
    return all_policies;
}

bool
parseSchedPolicy(std::string_view name, SchedPolicyKind *out)
{
    for (SchedPolicyKind k : all_policies) {
        if (name == schedPolicyName(k)) {
            *out = k;
            return true;
        }
    }
    return false;
}

namespace {

/** The paper's policy: minimum fetch sequence (age). */
class OldestFirstPolicy final : public SchedPolicy
{
  public:
    SchedPolicyKind kind() const override
    {
        return SchedPolicyKind::OldestFirst;
    }

    std::optional<Cand> select(const FrontEndHost &host,
                               std::span<const Cand> cands,
                               bool check_group) const override
    {
        std::optional<Cand> best;
        u64 best_seq = ~u64(0);
        for (const Cand &c : cands) {
            if (!host.ready(c.w, c.slot, check_group))
                continue;
            const pipeline::IBufEntry *e =
                host.entryFor(c.w, c.slot);
            if (e->seq < best_seq) {
                best_seq = e->seq;
                best = c;
            }
        }
        return best;
    }
};

/**
 * Loose round-robin: the first ready candidate at or after the
 * cursor warp wins; the cursor advances past the issued warp.
 * "Loose" because a warp with nothing ready is skipped rather
 * than stalling the scheduler.
 */
class RoundRobinPolicy final : public SchedPolicy
{
  public:
    explicit RoundRobinPolicy(unsigned num_warps)
        : num_warps_(num_warps)
    {
    }

    SchedPolicyKind kind() const override
    {
        return SchedPolicyKind::RoundRobin;
    }

    std::optional<Cand> select(const FrontEndHost &host,
                               std::span<const Cand> cands,
                               bool check_group) const override
    {
        // The domain is warp-ordered, so scanning it twice —
        // first the tail at/after the cursor, then the wrapped
        // head — visits candidates in round-robin order.
        for (int pass = 0; pass < 2; ++pass) {
            for (const Cand &c : cands) {
                bool tail = c.w >= cursor_;
                if ((pass == 0) != tail)
                    continue;
                if (host.ready(c.w, c.slot, check_group))
                    return c;
            }
        }
        return std::nullopt;
    }

    void notifyIssued(const Cand &c) override
    {
        cursor_ = WarpId((c.w + 1) % num_warps_);
    }

  private:
    unsigned num_warps_;
    WarpId cursor_ = 0;
};

/**
 * Greedy-then-oldest: keep issuing from the last issued warp
 * while it has something ready (exploits intra-warp row reuse and
 * cache locality), falling back to oldest-first.
 */
class GreedyThenOldestPolicy final : public SchedPolicy
{
  public:
    SchedPolicyKind kind() const override
    {
        return SchedPolicyKind::GreedyThenOldest;
    }

    std::optional<Cand> select(const FrontEndHost &host,
                               std::span<const Cand> cands,
                               bool check_group) const override
    {
        std::optional<Cand> best;
        u64 best_seq = ~u64(0);
        std::optional<Cand> greedy;
        u64 greedy_seq = ~u64(0);
        for (const Cand &c : cands) {
            if (!host.ready(c.w, c.slot, check_group))
                continue;
            u64 seq = host.entryFor(c.w, c.slot)->seq;
            if (have_last_ && c.w == last_warp_ &&
                seq < greedy_seq) {
                greedy_seq = seq;
                greedy = c;
            }
            if (seq < best_seq) {
                best_seq = seq;
                best = c;
            }
        }
        return greedy ? greedy : best;
    }

    void notifyIssued(const Cand &c) override
    {
        have_last_ = true;
        last_warp_ = c.w;
    }

  private:
    bool have_last_ = false;
    WarpId last_warp_ = 0;
};

/**
 * Minimum PC first (oldest-first tie-break): favors trailing
 * warp-splits, pulling divergent contexts back together — the
 * scheduling analogue of thread-frontier reconvergence.
 */
class MinPcPolicy final : public SchedPolicy
{
  public:
    SchedPolicyKind kind() const override
    {
        return SchedPolicyKind::MinPc;
    }

    std::optional<Cand> select(const FrontEndHost &host,
                               std::span<const Cand> cands,
                               bool check_group) const override
    {
        std::optional<Cand> best;
        Pc best_pc = invalid_pc;
        u64 best_seq = ~u64(0);
        for (const Cand &c : cands) {
            if (!host.ready(c.w, c.slot, check_group))
                continue;
            const pipeline::IBufEntry *e =
                host.entryFor(c.w, c.slot);
            if (!best || e->pc < best_pc ||
                (e->pc == best_pc && e->seq < best_seq)) {
                best_pc = e->pc;
                best_seq = e->seq;
                best = c;
            }
        }
        return best;
    }
};

} // namespace

std::unique_ptr<SchedPolicy>
makeSchedPolicy(SchedPolicyKind kind, unsigned num_warps)
{
    switch (kind) {
      case SchedPolicyKind::OldestFirst:
        return std::make_unique<OldestFirstPolicy>();
      case SchedPolicyKind::RoundRobin:
        return std::make_unique<RoundRobinPolicy>(num_warps);
      case SchedPolicyKind::GreedyThenOldest:
        return std::make_unique<GreedyThenOldestPolicy>();
      case SchedPolicyKind::MinPc:
        return std::make_unique<MinPcPolicy>();
    }
    panic("unknown scheduling policy");
}

} // namespace siwi::frontend
