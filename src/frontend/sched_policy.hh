/**
 * @file
 * Primary-scheduler selection policies.
 *
 * The paper's machines all select their primary instruction
 * oldest-first (section 4: "the primary scheduler still selects
 * the oldest ready instruction"), but the policy is orthogonal to
 * the front-end structure: any ordering of the ready primary
 * candidates yields a working machine. SchedPolicy is that
 * strategy seam. Besides the paper's oldest-first it provides the
 * classic alternatives of the GPU-scheduling literature: loose
 * round-robin (fairness), greedy-then-oldest (GTO: stick with the
 * last warp to exploit intra-warp locality), and minimum-PC
 * (favor trailing warp-splits, which accelerates reconvergence on
 * thread-frontier machines).
 */

#ifndef SIWI_FRONTEND_SCHED_POLICY_HH
#define SIWI_FRONTEND_SCHED_POLICY_HH

#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "common/types.hh"

namespace siwi::frontend {

class FrontEndHost;

/**
 * A scheduling candidate: warp + context slot (0 = primary /
 * CPC1, 1 = secondary / CPC2). The instruction-buffer entry is
 * resolved through the context id, so HCT re-sorting does not
 * orphan buffered instructions.
 */
struct Cand
{
    WarpId w;
    unsigned slot;
};

/** The selectable primary-scheduler policies. */
enum class SchedPolicyKind {
    OldestFirst,      //!< minimum fetch sequence (the paper)
    RoundRobin,       //!< loose round-robin over warps
    GreedyThenOldest, //!< GTO: last warp first, then oldest
    MinPc,            //!< minimum PC, oldest-first tie-break
};

/** CLI name of a policy: "oldest", "rr", "gto", "minpc". */
const char *schedPolicyName(SchedPolicyKind kind);

/** Parse a CLI policy name; false when unknown. */
bool parseSchedPolicy(std::string_view name, SchedPolicyKind *out);

/** Every policy, in registry order. */
std::span<const SchedPolicyKind> allSchedPolicies();

/**
 * Primary-candidate ordering strategy.
 *
 * select() scans @p cands (a precomputed, static domain — the
 * per-pool warp lists) and returns the best candidate that is
 * ready to issue, or nullopt. Policies with internal state (the
 * round-robin cursor, GTO's last warp) advance it through
 * notifyIssued(), which the front-end calls only when the pick
 * actually issues — a selection denied by a structural stall
 * must not advance the cursor past the stalled warp. Pooled
 * machines get one policy instance per pool.
 */
class SchedPolicy
{
  public:
    virtual ~SchedPolicy() = default;

    virtual SchedPolicyKind kind() const = 0;

    /**
     * Pick the best ready candidate of @p cands, or nullopt.
     * @param check_group also require a free execution group
     */
    virtual std::optional<Cand> select(
        const FrontEndHost &host, std::span<const Cand> cands,
        bool check_group) const = 0;

    /** Candidate @p c issued; advance any cursor state. */
    virtual void notifyIssued(const Cand &c) { (void)c; }

  protected:
    SchedPolicy() = default;
};

/** Build the policy strategy for @p kind. */
std::unique_ptr<SchedPolicy> makeSchedPolicy(SchedPolicyKind kind,
                                             unsigned num_warps);

} // namespace siwi::frontend

#endif // SIWI_FRONTEND_SCHED_POLICY_HH
