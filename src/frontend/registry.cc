#include "frontend/registry.hh"

#include <vector>

namespace siwi::frontend {

using pipeline::PipelineMode;

namespace {

constexpr MachineEntry machines[] = {
    {"Baseline", PipelineMode::Baseline,
     "Figure 1 (Fermi-like, 32x32, stack reconvergence)"},
    {"SBI", PipelineMode::SBI,
     "section 3.3 (dual front-end over CPC1/CPC2)"},
    {"SWI", PipelineMode::SWI,
     "section 4 (cascaded mask-fit secondary scheduler)"},
    {"SBI+SWI", PipelineMode::SBISWI,
     "section 4.4 (both techniques combined)"},
    {"Warp64", PipelineMode::Warp64,
     "section 3 (16x64 thread-frontier reference)"},
};

const char *
policyDescription(SchedPolicyKind kind)
{
    switch (kind) {
      case SchedPolicyKind::OldestFirst:
        return "oldest ready instruction first (the paper's "
               "machines)";
      case SchedPolicyKind::RoundRobin:
        return "loose round-robin over warps";
      case SchedPolicyKind::GreedyThenOldest:
        return "greedy-then-oldest: last issued warp first";
      case SchedPolicyKind::MinPc:
        return "minimum PC first (favors trailing warp-splits)";
    }
    return "?";
}

/**
 * Derived from allSchedPolicies()/schedPolicyName() — the single
 * source of the name/kind mapping — so the names the CLI lists
 * and the names parseSchedPolicy() accepts cannot diverge.
 */
const std::vector<PolicyEntry> &
policyTable()
{
    static const std::vector<PolicyEntry> v = [] {
        std::vector<PolicyEntry> out;
        for (SchedPolicyKind k : allSchedPolicies())
            out.push_back({schedPolicyName(k), k,
                           policyDescription(k)});
        return out;
    }();
    return v;
}

} // namespace

std::span<const MachineEntry>
machineRegistry()
{
    return machines;
}

const MachineEntry *
findMachineEntry(std::string_view name)
{
    for (const MachineEntry &m : machines) {
        if (name == m.name)
            return &m;
    }
    return nullptr;
}

std::span<const PolicyEntry>
policyRegistry()
{
    return policyTable();
}

const PolicyEntry *
findPolicyEntry(std::string_view name)
{
    for (const PolicyEntry &p : policyTable()) {
        if (name == p.name)
            return &p;
    }
    return nullptr;
}

} // namespace siwi::frontend
