#include "frontend/front_end.hh"

#include "common/log.hh"
#include "pipeline/config.hh"
#include "pipeline/exec_unit.hh"

namespace siwi::frontend {

using isa::UnitClass;
using pipeline::IBufEntry;
using pipeline::LookupCandidate;
using pipeline::SMConfig;

namespace {

/** Execution-group class an opcode is routed to (CTRL -> MAD). */
UnitClass
effectiveClass(UnitClass cls)
{
    return cls == UnitClass::CTRL ? UnitClass::MAD : cls;
}

} // namespace

// ----------------------------------------------------------------
// FrontEnd base: policy selection + the simple issue stage
// ----------------------------------------------------------------

FrontEnd::FrontEnd(FrontEndHost &host) : host_(host)
{
    const SMConfig &cfg = host_.config();
    for (unsigned pool = 0; pool < 2; ++pool) {
        policy_[pool] = makeSchedPolicy(cfg.sched_policy,
                                        host_.numWarps());
        pool_scratch_[pool].reserve(host_.numWarps());
    }
}

std::span<const Cand>
FrontEnd::poolDomain(unsigned pool)
{
    // Rebuilt per select from the runnable active list: sleeping
    // warps are provably unready, so the policies rank the same
    // ready candidates, in the same ascending-warp order, as the
    // full scan did — only the provably fruitless probes are gone.
    const SMConfig &cfg = host_.config();
    std::vector<Cand> &d = pool_scratch_[pool];
    d.clear();
    host_.awakeWarps().forEach([&](WarpId w) {
        if (cfg.num_pools == 2 && (w % 2) != pool)
            return;
        d.push_back({w, 0});
    });
    return d;
}

std::optional<Cand>
FrontEnd::selectPrimary(unsigned pool, std::span<const Cand> cands,
                        bool check_group)
{
    return policy_[pool]->select(host_, cands, check_group);
}

bool
FrontEnd::issueSimple()
{
    host_.clearLastPrimary();
    const SMConfig &cfg = host_.config();
    bool issued = false;

    if (cfg.num_pools == 2) {
        // Two symmetric schedulers; alternate arbitration priority
        // for the shared SFU/LSU groups.
        unsigned first = unsigned(host_.now() & 1);
        for (unsigned k = 0; k < 2; ++k) {
            unsigned pool = (first + k) % 2;
            auto c = selectPrimary(pool, poolDomain(pool), true);
            if (c && host_.issueCand(c->w, c->slot, false, nullptr,
                                     false)) {
                notifyIssued(pool, *c);
                issued = true;
            }
        }
        return issued;
    }

    // SBI: primary over CPC1 entries, secondary over CPC2 entries.
    auto c = selectPrimary(0, poolDomain(0), true);
    if (c &&
        host_.issueCand(c->w, c->slot, false, nullptr, false)) {
        notifyIssued(0, *c);
        issued = true;
    }
    issued |= issueSecondarySimple(host_.lastPrimary());
    return issued;
}

bool
FrontEnd::issueSecondarySimple(const PrimaryIssueInfo &pinfo)
{
    // Secondary front-end: oldest ready CPC2 (hot slot 1) entry.
    // Same warp as the primary may share the primary's row (their
    // masks are disjoint by construction); any other candidate needs
    // a free execution group.
    std::optional<Cand> best;
    bool best_row = false;
    u64 best_seq = ~u64(0);
    host_.awakeWarps().forEach([&](WarpId w) {
        if (!host_.ready(w, 1, false))
            return;
        const IBufEntry *e = host_.entryFor(w, 1);
        UnitClass cls = effectiveClass(e->inst.unit());
        bool row = pinfo.valid && w == pinfo.w &&
                   cls == pinfo.unit && cls != UnitClass::LSU;
        if (!row && !host_.freeGroup(cls))
            return;
        if (e->seq < best_seq) {
            best_seq = e->seq;
            best = Cand{w, 1};
            best_row = row;
        }
    });
    if (best) {
        PrimaryIssueInfo pcopy = pinfo;
        return host_.issueCand(best->w, best->slot, true, &pcopy,
                               best_row);
    }

    if (!host_.config().sbi_secondary_fallback)
        return false;

    // Fallback: issue another warp's primary-context instruction to
    // a different SIMD group (docs/DESIGN.md interpretation note).
    best.reset();
    best_seq = ~u64(0);
    host_.awakeWarps().forEach([&](WarpId w) {
        if (pinfo.valid && w == pinfo.w)
            return;
        if (!host_.ready(w, 0, true))
            return;
        const IBufEntry *e = host_.entryFor(w, 0);
        if (e->seq < best_seq) {
            best_seq = e->seq;
            best = Cand{w, 0};
        }
    });
    if (best) {
        if (host_.issueCand(best->w, best->slot, true, nullptr,
                            false)) {
            host_.stats().fallback_issues += 1;
            return true;
        }
    }
    return false;
}

// ----------------------------------------------------------------
// StackFrontEnd
// ----------------------------------------------------------------

StackFrontEnd::StackFrontEnd(FrontEndHost &host) : FrontEnd(host)
{
}

bool
StackFrontEnd::issueCycle()
{
    return issueSimple();
}

// ----------------------------------------------------------------
// InterweaveFrontEnd
// ----------------------------------------------------------------

InterweaveFrontEnd::InterweaveFrontEnd(FrontEndHost &host)
    : FrontEnd(host),
      lookup_(host.numWarps(), host.config().lookup_sets, 0xdecaf),
      rng_(0xc0ffee)
{
}

bool
InterweaveFrontEnd::issueCycle()
{
    if (host_.config().cascaded())
        return issueCascaded();
    return issueSimple();
}

std::optional<Cand>
InterweaveFrontEnd::pickSubstitute()
{
    // The secondary scheduler substituting for an absent primary
    // (section 4). Its policy must stay decorrelated from the
    // primary's oldest-first selection -- best-fit with
    // pseudo-random tie-breaking -- or the two would keep picking
    // the same instruction and squash each other forever.
    // The domain (section 4) is every CPC1 slot, plus every CPC2
    // slot on SBI machines, visited slot-major over the active
    // list — the order the static full-warp domain had, which the
    // RNG tie-break stream depends on. Sleeping warps are never
    // ready, so skipping them cannot perturb a draw.
    std::optional<Cand> best;
    unsigned best_count = 0;
    unsigned ties = 0;
    auto consider = [&](WarpId w, unsigned slot) {
        if (!host_.ready(w, slot, true))
            return;
        unsigned count = host_.entryFor(w, slot)->mask.count();
        if (!best || count > best_count) {
            best = Cand{w, slot};
            best_count = count;
            ties = 1;
        } else if (count == best_count) {
            ++ties;
            if (rng_.below(ties) == 0)
                best = Cand{w, slot};
        }
    };
    host_.awakeWarps().forEach(
        [&](WarpId w) { consider(w, 0); });
    if (host_.config().sbi) {
        host_.awakeWarps().forEach(
            [&](WarpId w) { consider(w, 1); });
    }
    return best;
}

std::optional<Cand>
InterweaveFrontEnd::pickSecondaryCascaded(
    const PrimaryIssueInfo &pinfo, bool *row_share_out)
{
    *row_share_out = false;

    if (!pinfo.valid)
        return pickSubstitute();

    // Mask-inclusion lookup (section 4): candidates either fit the
    // free lanes of the primary's row or can go to a free group.
    LaneMask free_lanes = ~pinfo.mask;
    bool primary_row_shareable = pinfo.unit != UnitClass::LSU;

    std::vector<LookupCandidate> &lc = lookup_scratch_;
    std::vector<Cand> &cands = cand_scratch_;
    lc.clear();
    cands.clear();
    host_.awakeWarps().forEach([&](WarpId w) {
        for (unsigned slot = 0; slot < 2; ++slot) {
            if (slot == 1 && !host_.config().sbi)
                continue;
            if (slot == 0 && w == pinfo.w)
                continue; // primary context just issued
            if (!host_.ready(w, slot, false))
                continue;
            const IBufEntry *e = host_.entryFor(w, slot);
            UnitClass cls = effectiveClass(e->inst.unit());
            LookupCandidate c;
            c.key = u32(cands.size());
            c.warp = w;
            c.mask = e->mask;
            c.same_unit = primary_row_shareable && cls == pinfo.unit;
            c.other_unit_free = host_.freeGroup(cls) != nullptr;
            // Same-warp CPC2 co-issue is the SBI path: structural,
            // not set-restricted (mask disjointness is guaranteed).
            if (w == pinfo.w || lookup_.eligible(pinfo.w, w)) {
                lc.push_back(c);
                cands.push_back({w, slot});
            }
        }
    });
    auto picked = lookup_.pick(pinfo.w, free_lanes, lc);
    if (!picked)
        return std::nullopt;
    const LookupCandidate &sel = lc[*picked];
    *row_share_out =
        sel.same_unit && sel.mask.subsetOf(free_lanes);
    return cands[*picked];
}

bool
InterweaveFrontEnd::issueCascaded()
{
    host_.clearLastPrimary();

    // Activity tracking for the cycle-skipping loop: issues, the
    // cascade-register transitions (stale drop, park) and squashed
    // conflicts all mutate state and count; a held pick is a net
    // no-op (claimed toggles off and back on) and does not.
    bool activity = false;

    // Phase B snapshot: the primary scheduler selects its next pick
    // in parallel with this cycle's issue (cascaded scheduling,
    // section 4). Claimed entries (the parked pick) are skipped.
    std::optional<Cand> next_pick =
        selectPrimary(0, poolDomain(0), false);
    u32 next_pick_ctx = 0;
    if (next_pick)
        next_pick_ctx =
            host_.entryFor(next_pick->w, next_pick->slot)->ctx_id;

    // Phase A: issue the parked primary pick.
    bool held = false;
    if (cascade_.valid) {
        // Re-locate the parked context (the sorter may have moved
        // it between hot slots).
        IBufEntry *e = host_.findCtx(cascade_.w, cascade_.ctx_id);
        int slot = -1;
        for (unsigned s = 0; s < 2; ++s) {
            CtxView cv = host_.ctxView(cascade_.w, s);
            if (cv.valid && cv.id == cascade_.ctx_id &&
                cv.version == cascade_.ctx_version) {
                slot = int(s);
            }
        }
        if (!e || slot < 0 ||
            e->ctx_version != cascade_.ctx_version) {
            // The warp-split branched, merged or was demoted under
            // the parked pick: drop it.
            host_.stats().cascade_stale += 1;
            if (e && e->claimed)
                e->claimed = false;
            cascade_.valid = false;
            activity = true;
        } else {
            e->claimed = false; // allow ready() to see it
            if (host_.ready(cascade_.w, unsigned(slot), true)) {
                if (host_.issueCand(cascade_.w, unsigned(slot),
                                    false, nullptr, false)) {
                    // The pick issued for real: only now advance
                    // the policy's cursor state.
                    notifyIssued(
                        0, Cand{cascade_.w, unsigned(slot)});
                }
                cascade_.valid = false;
                activity = true;
            } else {
                // Structural stall: hold the pick, retry next cycle.
                e->claimed = true;
                held = true;
            }
        }
    }

    // Secondary scheduler (one pipeline stage behind the primary).
    bool row_share = false;
    std::optional<u32> sec_issued_ctx;
    WarpId sec_issued_warp = 0;
    auto sec =
        pickSecondaryCascaded(host_.lastPrimary(), &row_share);
    if (sec) {
        u32 ctx = host_.entryFor(sec->w, sec->slot)->ctx_id;
        PrimaryIssueInfo pcopy = host_.lastPrimary();
        if (host_.issueCand(sec->w, sec->slot, true,
                            pcopy.valid ? &pcopy : nullptr,
                            row_share)) {
            sec_issued_ctx = ctx;
            sec_issued_warp = sec->w;
            activity = true;
        }
    }

    // Phase B: park the next primary pick; detect the a-posteriori
    // conflict where the secondary issued the same instruction this
    // cycle (the primary's copy is discarded, section 4).
    if (held)
        return activity;
    if (!next_pick)
        return activity;
    if (sec_issued_ctx && sec_issued_warp == next_pick->w &&
        *sec_issued_ctx == next_pick_ctx) {
        host_.stats().conflicts_squashed += 1;
        return true;
    }
    IBufEntry *e = host_.entryFor(next_pick->w, next_pick->slot);
    if (!e)
        return activity; // consumed or invalidated this cycle
    cascade_.valid = true;
    cascade_.w = next_pick->w;
    cascade_.ctx_id = e->ctx_id;
    cascade_.ctx_version = e->ctx_version;
    e->claimed = true;
    return true;
}

// ----------------------------------------------------------------
// factory
// ----------------------------------------------------------------

std::unique_ptr<FrontEnd>
makeFrontEnd(FrontEndHost &host)
{
    const SMConfig &cfg = host.config();
    if (cfg.reconv == pipeline::ReconvMode::Stack &&
        !cfg.cascaded())
        return std::make_unique<StackFrontEnd>(host);
    return std::make_unique<InterweaveFrontEnd>(host);
}

} // namespace siwi::frontend
