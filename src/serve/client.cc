#include "serve/client.hh"

#include <unistd.h>

#include "core/stats_io.hh"
#include "serve/protocol.hh"

namespace siwi::serve {

namespace {

/** Close-on-destruction socket wrapper. */
struct Socket
{
    int fd = -1;

    ~Socket()
    {
        if (fd >= 0)
            ::close(fd);
    }
};

/**
 * Read the next message line, mapping every non-Line outcome to
 * an error (the client sets no receive timeout: it is prepared to
 * wait as long as the simulation takes).
 */
bool
readMessage(LineReader *reader, Json *msg, std::string *err)
{
    std::string line, rerr;
    LineReader::Status st = reader->readLine(&line, &rerr);
    if (st != LineReader::Status::Line) {
        if (err)
            *err = "server connection lost" +
                   (rerr.empty() ? "" : ": " + rerr);
        return false;
    }
    std::string perr;
    *msg = Json::parse(line, &perr);
    if (!perr.empty() || !msg->isObject()) {
        if (err)
            *err = "malformed server message: " +
                   (perr.empty() ? "expected a JSON object"
                                 : perr);
        return false;
    }
    if (msg->getString("type") == "error") {
        if (err)
            *err = "server: " + msg->getString("message");
        return false;
    }
    return true;
}

} // namespace

bool
parseHostPort(const std::string &arg, std::string *host,
              unsigned *port, std::string *err)
{
    size_t colon = arg.rfind(':');
    if (colon == std::string::npos || colon + 1 == arg.size()) {
        if (err)
            *err = "expected HOST:PORT, got '" + arg + "'";
        return false;
    }
    const std::string port_str = arg.substr(colon + 1);
    unsigned long p = 0;
    size_t used = 0;
    try {
        p = std::stoul(port_str, &used);
    } catch (...) {
        used = 0;
    }
    if (used != port_str.size() || p == 0 || p > 65535) {
        if (err)
            *err = "bad port '" + port_str + "' in '" + arg + "'";
        return false;
    }
    *host = arg.substr(0, colon);
    *port = unsigned(p);
    return true;
}

bool
submitSpec(const std::string &host, unsigned port,
           const Json &spec, SubmitOutcome *out, std::string *err,
           const SubmitProgress &progress)
{
    Socket sock;
    sock.fd = connectTcp(host, port, err);
    if (sock.fd < 0)
        return false;
    Json req = Json::object();
    req.set("type", Json("submit"));
    req.set("spec", spec);
    if (!sendMessage(sock.fd, req, err))
        return false;

    LineReader reader(sock.fd);
    Json accepted;
    if (!readMessage(&reader, &accepted, err))
        return false;
    if (accepted.getString("type") != "accepted") {
        if (err)
            *err = "expected 'accepted', got '" +
                   accepted.getString("type") + "'";
        return false;
    }
    const size_t n = size_t(accepted.getInt("cells"));
    const Json *machines = accepted.find("machines");
    if (n == 0 || !machines || !machines->isArray()) {
        if (err)
            *err = "malformed 'accepted' message";
        return false;
    }

    // Reassemble the results document in the Results::toJson()
    // member order, machines verbatim, cells dropped into their
    // canonical slot as they stream in: the dump is then
    // byte-identical to a local run of the same spec.
    Json doc = Json::object();
    doc.set("schema_version", Json(core::stats_schema_version));
    doc.set("generator", Json("siwi-run"));
    doc.set("suite", Json(accepted.getString("suite")));
    doc.set("machines", *machines);
    Json cells = Json::array();
    for (size_t i = 0; i < n; ++i)
        cells.push(Json());
    std::vector<bool> seen(n, false);
    size_t done = 0;

    SubmitOutcome o;
    o.cells = n;
    for (;;) {
        Json msg;
        if (!readMessage(&reader, &msg, err))
            return false;
        const std::string type = msg.getString("type");
        if (type == "cell") {
            const size_t index = size_t(msg.getInt("index", -1));
            const Json *cell = msg.find("cell");
            if (index >= n || !cell || seen[index]) {
                if (err)
                    *err = "bad cell message (index " +
                           std::to_string(index) + ")";
                return false;
            }
            cells.arr()[index] = *cell;
            seen[index] = true;
            ++done;
            if (progress) {
                runner::CellResult c;
                std::string perr;
                if (runner::cellFromJson(*cell, &c, &perr))
                    progress(done, n, c,
                             msg.getBool("cached"));
            }
            continue;
        }
        if (type == "done") {
            if (done != n) {
                if (err)
                    *err = "server finished after " +
                           std::to_string(done) + " of " +
                           std::to_string(n) + " cells";
                return false;
            }
            o.hits = u64(msg.getInt("hits"));
            o.misses = u64(msg.getInt("misses"));
            o.joined = u64(msg.getInt("joined"));
            o.verify_failures =
                u64(msg.getInt("verify_failures"));
            o.timeouts = u64(msg.getInt("timeouts"));
            o.server_ms = u64(msg.getInt("server_ms"));
            break;
        }
        if (err)
            *err = "unexpected message type '" + type + "'";
        return false;
    }

    doc.set("cells", std::move(cells));
    if (!runner::Results::fromJson(doc, &o.results, err))
        return false;
    o.document = std::move(doc);
    *out = std::move(o);
    return true;
}

bool
request(const std::string &host, unsigned port, const Json &req,
        Json *reply, std::string *err)
{
    Socket sock;
    sock.fd = connectTcp(host, port, err);
    if (sock.fd < 0)
        return false;
    if (!sendMessage(sock.fd, req, err))
        return false;
    LineReader reader(sock.fd);
    return readMessage(&reader, reply, err);
}

} // namespace siwi::serve
