/**
 * @file
 * siwi-serve: the simulation grid as a long-running service.
 *
 * One Server owns the persistent result cache and one
 * runner::CellExecutor worker pool. Clients connect over TCP
 * (serve/protocol.hh) and submit experiment spec documents — the
 * same JSON schema as spec files (runner/spec.hh). Each submitted
 * cell is keyed by content (serve/cache_key.hh) and resolved in
 * one of three ways:
 *
 *   - cache hit: the validated blob streams back immediately;
 *   - in-flight elsewhere: an identical cell already computing
 *     for any connection is joined, not recomputed — the result
 *     fans out to every waiter when it lands;
 *   - miss: the cell is enqueued on the shared pool, and on
 *     completion is stored to the cache and streamed to every
 *     waiter.
 *
 * Results stream per cell as they complete, so an interrupted
 * client (or server) loses only in-flight work: everything
 * completed is in the cache, and re-submitting the same spec
 * re-uses it (resumable sweeps). Connections are handled on one
 * thread each; all simulation runs on the shared pool, so N
 * clients share the machine fairly FIFO.
 */

#ifndef SIWI_SERVE_SERVER_HH
#define SIWI_SERVE_SERVER_HH

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "runner/experiment_runner.hh"
#include "serve/result_cache.hh"

namespace siwi::serve {

struct ServerOptions
{
    std::string host = "127.0.0.1";
    /** 0 = ephemeral; the bound port is Server::port(). */
    unsigned port = 0;
    /** Result cache directory (required). */
    std::string cache_dir;
    /** Worker threads, as runner::RunOptions::jobs. */
    unsigned jobs = 0;
    /** Cache entry bound (0 = unbounded). */
    u64 cache_max_entries = 0;
    /** Honor {"type":"shutdown"} requests. */
    bool allow_remote_shutdown = true;
};

/** Aggregate server-side counters (the "status" reply). */
struct ServerStatus
{
    u64 uptime_ms = 0;
    u64 submissions = 0;
    u64 cells_submitted = 0;
    u64 cells_hit = 0;      //!< served from cache
    u64 cells_joined = 0;   //!< deduped onto an in-flight cell
    u64 cells_computed = 0;
    u64 inflight = 0;       //!< distinct cells computing now
    u64 compute_ms_total = 0;
    u64 compute_ms_max = 0;
    CacheCounters cache;
    u64 cache_entries = 0;

    Json toJson() const;
};

class Server
{
  public:
    Server();
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Open the cache and start listening (no requests are served
     * until run()). @return false and set @p err on bind/cache
     * failure.
     */
    bool start(const ServerOptions &opts, std::string *err);

    /** Bound port (after start; resolves ephemeral port 0). */
    unsigned port() const { return port_; }

    /**
     * Serve until stop() (or a shutdown request). Blocks; run it
     * on a dedicated thread for in-process use.
     */
    void run();

    /** Request shutdown; run() returns after draining. */
    void stop();

    ServerStatus status() const;

    ResultCache &cache() { return cache_; }

  private:
    struct Connection;
    struct Submission;

    void handleConnection(std::shared_ptr<Connection> conn);
    bool handleRequest(const std::shared_ptr<Connection> &conn,
                       const Json &req);
    void handleSubmit(const std::shared_ptr<Connection> &conn,
                      const Json &req);
    void scheduleCell(const std::shared_ptr<Submission> &sub,
                      size_t index, const std::string &key);
    void computeAndDeliver(const std::shared_ptr<Submission> &sub,
                           size_t index, const std::string &key);

    ServerOptions opts_;
    ResultCache cache_;
    std::unique_ptr<runner::CellExecutor> pool_;
    int listen_fd_ = -1;
    unsigned port_ = 0;
    std::atomic<bool> stop_{false};
    u64 started_ms_ = 0;

    mutable std::mutex mu_; //!< stats + in-flight + threads
    ServerStatus stats_;
    /** Waiters per in-flight cell key (cross-submission dedupe). */
    std::map<std::string,
             std::vector<std::pair<std::shared_ptr<Submission>,
                                   size_t>>>
        inflight_;
    std::vector<std::thread> conn_threads_;
};

} // namespace siwi::serve

#endif // SIWI_SERVE_SERVER_HH
