#include "serve/server.hh"

#include <condition_variable>
#include <cstdio>

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "core/stats_io.hh"
#include "runner/spec.hh"
#include "serve/cache_key.hh"
#include "serve/clock.hh"
#include "serve/protocol.hh"

namespace siwi::serve {

namespace {

/** Receive/send timeouts on accepted connections: long enough to
 *  never trip mid-message, short enough that idle connection
 *  threads notice a server stop promptly. */
constexpr unsigned kRecvTimeoutMs = 500;
constexpr unsigned kSendTimeoutMs = 10'000;

void
setSocketTimeout(int fd, int which, unsigned ms)
{
    timeval tv = {};
    tv.tv_sec = long(ms / 1000);
    tv.tv_usec = long(ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, which, &tv, sizeof(tv));
}

} // namespace

Json
ServerStatus::toJson() const
{
    Json j = Json::object();
    j.set("type", Json("status"));
    j.set("protocol", Json(protocol_version));
    j.set("schema_version", Json(core::stats_schema_version));
    j.set("uptime_ms", Json(uptime_ms));
    j.set("submissions", Json(submissions));
    j.set("cells_submitted", Json(cells_submitted));
    j.set("cells_hit", Json(cells_hit));
    j.set("cells_joined", Json(cells_joined));
    j.set("cells_computed", Json(cells_computed));
    j.set("inflight", Json(inflight));
    j.set("compute_ms_total", Json(compute_ms_total));
    j.set("compute_ms_max", Json(compute_ms_max));
    Json jc = Json::object();
    jc.set("hits", Json(cache.hits));
    jc.set("misses", Json(cache.misses));
    jc.set("corrupt", Json(cache.corrupt));
    jc.set("stores", Json(cache.stores));
    jc.set("evictions", Json(cache.evictions));
    jc.set("entries", Json(cache_entries));
    j.set("cache", std::move(jc));
    return j;
}

/** One client connection: the fd plus a write lock so worker
 *  threads can stream cells while the connection thread owns the
 *  read side. A failed send marks the connection dead; the
 *  computation it was waiting on still completes and is cached. */
struct Server::Connection
{
    int fd = -1;
    std::mutex write_mu;
    std::atomic<bool> alive{true};

    explicit Connection(int f) : fd(f) {}

    ~Connection()
    {
        if (fd >= 0)
            ::close(fd);
    }

    bool send(const Json &msg)
    {
        if (!alive.load())
            return false;
        std::lock_guard<std::mutex> lock(write_mu);
        std::string err;
        if (!sendMessage(fd, msg, &err)) {
            alive.store(false);
            return false;
        }
        return true;
    }
};

/** One submit request in flight: the expanded grid, the waiters'
 *  bookkeeping, and the stream back to the client. */
struct Server::Submission
{
    std::shared_ptr<Connection> conn;
    std::vector<runner::SweepSpec> sweeps;
    std::vector<runner::CellSpec> cells;

    std::mutex mu;
    std::condition_variable cv;
    size_t remaining = 0;
    u64 hits = 0;
    u64 misses = 0;
    u64 joined = 0;
    u64 verify_failures = 0;
    u64 timeouts = 0;

    void deliver(size_t index, const runner::CellResult &c,
                 bool cached, u64 compute_ms)
    {
        Json msg = Json::object();
        msg.set("type", Json("cell"));
        msg.set("index", Json(u64(index)));
        msg.set("cached", Json(cached));
        msg.set("compute_ms", Json(compute_ms));
        msg.set("cell", runner::cellToJson(c));
        conn->send(msg);
        {
            std::lock_guard<std::mutex> lock(mu);
            verify_failures += !c.verified;
            timeouts += c.timed_out;
            --remaining;
        }
        cv.notify_all();
    }
};

Server::Server() = default;

Server::~Server()
{
    stop();
    // run() owns the teardown; a server that was started but
    // never run still holds the listening fd.
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
}

bool
Server::start(const ServerOptions &opts, std::string *err)
{
    opts_ = opts;
    if (opts_.cache_dir.empty()) {
        if (err)
            *err = "siwi-serve: a cache directory is required";
        return false;
    }
    if (!cache_.open(opts_.cache_dir, opts_.cache_max_entries,
                     err))
        return false;
    listen_fd_ = listenTcp(opts_.host, opts_.port, err);
    if (listen_fd_ < 0)
        return false;
    port_ = boundPort(listen_fd_);
    pool_ = std::make_unique<runner::CellExecutor>(opts_.jobs);
    started_ms_ = monoMillis();
    stop_.store(false);
    return true;
}

void
Server::run()
{
    while (!stop_.load()) {
        pollfd pfd = {};
        pfd.fd = listen_fd_;
        pfd.events = POLLIN;
        int rc = ::poll(&pfd, 1, 200);
        if (rc <= 0)
            continue;
        int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        setSocketTimeout(fd, SO_RCVTIMEO, kRecvTimeoutMs);
        setSocketTimeout(fd, SO_SNDTIMEO, kSendTimeoutMs);
        auto conn = std::make_shared<Connection>(fd);
        std::lock_guard<std::mutex> lock(mu_);
        conn_threads_.emplace_back(
            [this, conn] { handleConnection(conn); });
    }
    // Teardown order matters: connection threads are the only
    // job submitters, so join them first (their submissions drain
    // on the still-live pool), then drop the pool, then the fd.
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(mu_);
        threads.swap(conn_threads_);
    }
    for (std::thread &t : threads)
        t.join();
    pool_.reset();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
}

void
Server::stop()
{
    stop_.store(true);
}

ServerStatus
Server::status() const
{
    ServerStatus s;
    {
        std::lock_guard<std::mutex> lock(mu_);
        s = stats_;
    }
    s.uptime_ms = monoMillis() - started_ms_;
    s.cache = cache_.counters();
    s.cache_entries = cache_.entries();
    return s;
}

void
Server::handleConnection(std::shared_ptr<Connection> conn)
{
    LineReader reader(conn->fd);
    std::string line, err;
    while (!stop_.load() && conn->alive.load()) {
        LineReader::Status st = reader.readLine(&line, &err);
        if (st == LineReader::Status::Timeout)
            continue; // idle; re-check the stop flag
        if (st != LineReader::Status::Line)
            return;
        std::string perr;
        Json req = Json::parse(line, &perr);
        if (!perr.empty() || !req.isObject()) {
            // A framing error leaves the stream unparseable;
            // answer and drop the connection.
            conn->send(errorMessage(
                "bad request: " +
                (perr.empty() ? "expected a JSON object" : perr)));
            return;
        }
        if (!handleRequest(conn, req))
            return;
    }
}

bool
Server::handleRequest(const std::shared_ptr<Connection> &conn,
                      const Json &req)
{
    const std::string type = req.getString("type");
    if (type == "ping") {
        Json j = Json::object();
        j.set("type", Json("pong"));
        j.set("protocol", Json(protocol_version));
        j.set("schema_version",
              Json(core::stats_schema_version));
        j.set("cache_key_version", Json(cache_key_version));
        return conn->send(j);
    }
    if (type == "status")
        return conn->send(status().toJson());
    if (type == "fsck") {
        FsckReport rep = cache_.fsck(req.getBool("repair"));
        Json j = Json::object();
        j.set("type", Json("fsck_report"));
        j.set("scanned", Json(u64(rep.scanned)));
        j.set("valid", Json(u64(rep.valid)));
        j.set("corrupt", Json(u64(rep.corrupt)));
        j.set("removed", Json(u64(rep.removed)));
        j.set("index_rebuilt", Json(rep.index_rebuilt));
        Json probs = Json::array();
        for (const std::string &p : rep.problems)
            probs.push(Json(p));
        j.set("problems", std::move(probs));
        return conn->send(j);
    }
    if (type == "shutdown") {
        if (!opts_.allow_remote_shutdown) {
            conn->send(errorMessage(
                "remote shutdown is disabled on this server"));
            return true;
        }
        Json j = Json::object();
        j.set("type", Json("ok"));
        conn->send(j);
        stop();
        return false;
    }
    if (type == "submit") {
        handleSubmit(conn, req);
        return conn->alive.load();
    }
    conn->send(errorMessage("unknown request type '" + type +
                            "'"));
    return true;
}

void
Server::handleSubmit(const std::shared_ptr<Connection> &conn,
                     const Json &req)
{
    const u64 t0 = monoMillis();
    const Json *spec = req.find("spec");
    if (!spec || !spec->isObject()) {
        conn->send(errorMessage(
            "submit: missing 'spec' object (a spec-file "
            "document)"));
        return;
    }
    // The spec parser validates axes and resolved chip configs;
    // machine {"file": ...} references resolve against the
    // server's working directory, so submitted specs should be
    // self-contained (docs/SERVE.md).
    auto sub = std::make_shared<Submission>();
    sub->conn = conn;
    runner::MachineRegistry registry;
    std::string label, err;
    if (!runner::sweepsFromSpecJson(*spec, ".", &registry,
                                    &sub->sweeps, &label, &err)) {
        conn->send(errorMessage(err));
        return;
    }
    // Identical machine columns never run (or stream) twice —
    // the same normalization runSweeps applies.
    for (runner::SweepSpec &s : sub->sweeps)
        s.dedupeMachines();
    std::erase_if(sub->sweeps, [](const runner::SweepSpec &s) {
        return s.cellCount() == 0;
    });
    sub->cells = runner::expandCells(sub->sweeps);
    if (sub->cells.empty()) {
        conn->send(errorMessage("submit: spec expands to no "
                                "cells"));
        return;
    }

    Json accepted = Json::object();
    accepted.set("type", Json("accepted"));
    accepted.set("suite", Json(label));
    accepted.set("cells", Json(u64(sub->cells.size())));
    accepted.set("machines", runner::machinesToJson(
                                 runner::machineRecords(
                                     sub->sweeps)));
    if (!conn->send(accepted))
        return;

    sub->remaining = sub->cells.size();
    for (size_t i = 0; i < sub->cells.size(); ++i) {
        const std::string key =
            cellCacheKey(sub->sweeps[sub->cells[i].sweep],
                         sub->cells[i]);
        runner::CellResult cell;
        if (cache_.lookup(key, &cell)) {
            ++sub->hits;
            sub->deliver(i, cell, /*cached=*/true, 0);
            continue;
        }
        scheduleCell(sub, i, key);
    }
    {
        std::unique_lock<std::mutex> lock(sub->mu);
        sub->cv.wait(lock, [&] { return sub->remaining == 0; });
    }

    Json done = Json::object();
    done.set("type", Json("done"));
    done.set("cells", Json(u64(sub->cells.size())));
    done.set("hits", Json(sub->hits));
    done.set("misses", Json(sub->misses));
    done.set("joined", Json(sub->joined));
    done.set("verify_failures", Json(sub->verify_failures));
    done.set("timeouts", Json(sub->timeouts));
    done.set("server_ms", Json(monoMillis() - t0));
    conn->send(done);

    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submissions;
    stats_.cells_submitted += sub->cells.size();
    stats_.cells_hit += sub->hits;
    stats_.cells_joined += sub->joined;
}

void
Server::scheduleCell(const std::shared_ptr<Submission> &sub,
                     size_t index, const std::string &key)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = inflight_.find(key);
        if (it != inflight_.end()) {
            // The same cell is already computing for some
            // submission (possibly another client's): join it.
            it->second.emplace_back(sub, index);
            ++sub->joined;
            return;
        }
        inflight_[key].emplace_back(sub, index);
        ++stats_.inflight;
    }
    ++sub->misses;
    pool_->submit([this, sub, index, key] {
        computeAndDeliver(sub, index, key);
    });
}

void
Server::computeAndDeliver(const std::shared_ptr<Submission> &sub,
                          size_t index, const std::string &key)
{
    // Re-check the cache at execution time: another process
    // sharing the cache directory may have stored the cell while
    // this one sat queued.
    runner::CellResult cell;
    u64 ms = 0;
    bool computed = false;
    if (!cache_.lookup(key, &cell)) {
        const runner::CellSpec &cs = sub->cells[index];
        const u64 c0 = monoMillis();
        cell = runner::runCell(sub->sweeps[cs.sweep], cs.machine,
                               cs.wl, cs.sms, cs.policy);
        ms = monoMillis() - c0;
        computed = true;
        std::string serr;
        if (!cache_.store(key, cell, &serr))
            std::fprintf(stderr, "siwi-serve: %s\n",
                         serr.c_str());
    }
    std::vector<std::pair<std::shared_ptr<Submission>, size_t>>
        waiters;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = inflight_.find(key);
        if (it != inflight_.end()) {
            waiters = std::move(it->second);
            inflight_.erase(it);
        }
        --stats_.inflight;
        if (computed) {
            ++stats_.cells_computed;
            stats_.compute_ms_total += ms;
            stats_.compute_ms_max =
                std::max(stats_.compute_ms_max, ms);
        }
    }
    for (auto &[wsub, widx] : waiters)
        wsub->deliver(widx, cell, !computed, ms);
}

} // namespace siwi::serve
