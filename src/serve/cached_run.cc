#include "serve/cached_run.hh"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>

#include "serve/cache_key.hh"

namespace siwi::serve {

runner::Results
runSweepsCached(const std::vector<runner::SweepSpec> &sweeps_in,
                const runner::RunOptions &opts, ResultCache *cache,
                CachedRunCounters *counters)
{
    // Same grid normalization as runner::runSweeps(): identical
    // machine columns are dropped before expansion, so the cell
    // order — and the serialized output — match a plain run.
    std::vector<runner::SweepSpec> sweeps = sweeps_in;
    for (runner::SweepSpec &s : sweeps)
        s.dedupeMachines();

    const std::vector<runner::CellSpec> cells =
        runner::expandCells(sweeps);
    const unsigned jobs =
        runner::effectiveJobs(opts.jobs, cells.size());

    runner::Results out;
    out.suite = opts.suite_label;
    out.machines = runner::machineRecords(sweeps);
    out.cells.resize(cells.size());

    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::atomic<u64> hits{0};
    std::atomic<u64> misses{0};
    std::mutex io_mutex;
    std::mutex cb_mutex;

    auto worker = [&] {
        for (;;) {
            size_t i = next.fetch_add(1);
            if (i >= cells.size())
                return;
            const runner::CellSpec &cs = cells[i];
            const std::string key =
                cellCacheKey(sweeps[cs.sweep], cs);
            runner::CellResult c;
            bool cached = cache->lookup(key, &c);
            if (cached) {
                hits.fetch_add(1);
            } else {
                misses.fetch_add(1);
                c = runner::runCell(sweeps[cs.sweep], cs.machine,
                                    cs.wl, cs.sms, cs.policy,
                                    opts.cycle_skip);
                std::string serr;
                if (!cache->store(key, c, &serr)) {
                    std::lock_guard<std::mutex> lock(io_mutex);
                    std::fprintf(stderr, "siwi-run: %s\n",
                                 serr.c_str());
                }
            }
            size_t n = done.fetch_add(1) + 1;
            if (opts.progress || !c.verified || c.timed_out) {
                std::lock_guard<std::mutex> lock(io_mutex);
                if (opts.progress) {
                    std::fprintf(
                        stderr,
                        "[%zu/%zu] %s %s %s  ipc %.2f%s%s%s\n", n,
                        cells.size(), c.sweep.c_str(),
                        c.machine.c_str(), c.workload.c_str(),
                        c.ipc, cached ? "  (cached)" : "",
                        c.verified ? "" : "  VERIFY FAIL",
                        c.timed_out ? "  TIMED OUT" : "");
                } else if (!c.verified) {
                    std::fprintf(
                        stderr,
                        "VERIFICATION FAILED: %s on %s: %s\n",
                        c.workload.c_str(), c.machine.c_str(),
                        c.verify_msg.c_str());
                } else {
                    std::fprintf(
                        stderr,
                        "TIMED OUT: %s on %s truncated at the "
                        "cycle cap; counters cover only the "
                        "simulated prefix\n",
                        c.workload.c_str(), c.machine.c_str());
                }
            }
            if (opts.on_cell) {
                std::lock_guard<std::mutex> lock(cb_mutex);
                opts.on_cell(i, c);
            }
            out.cells[i] = std::move(c);
        }
    };

    if (jobs <= 1) {
        worker();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(jobs);
        for (unsigned t = 0; t < jobs; ++t)
            threads.emplace_back(worker);
        for (std::thread &t : threads)
            t.join();
    }
    if (counters) {
        counters->hits = hits.load();
        counters->misses = misses.load();
    }
    return out;
}

} // namespace siwi::serve
