#include "serve/result_cache.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include <unistd.h>

#include "common/sha256.hh"
#include "core/stats_io.hh"

namespace fs = std::filesystem;

namespace siwi::serve {

namespace {

/**
 * Write @p text to @p path atomically: temp file in the same
 * directory (rename is only atomic within a filesystem), fflush +
 * fclose checked, then rename over the target. The temp name
 * carries the pid so concurrent processes sharing a cache
 * directory cannot collide mid-write.
 */
bool
writeFileAtomic(const std::string &path, const std::string &text,
                std::string *err)
{
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        if (err)
            *err = "cannot write " + tmp;
        return false;
    }
    size_t written = std::fwrite(text.data(), 1, text.size(), f);
    bool ok = written == text.size() && std::fclose(f) == 0;
    if (!ok) {
        if (f && written != text.size())
            std::fclose(f);
        std::remove(tmp.c_str());
        if (err)
            *err = "write error on " + tmp;
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        if (err)
            *err = "cannot rename " + tmp + " -> " + path;
        return false;
    }
    return true;
}

Json
blobJson(const std::string &key, const runner::CellResult &cell)
{
    Json cell_json = runner::cellToJson(cell);
    // The checksum covers the compact canonical dump of the cell
    // payload: any bit flip that changes the parsed value fails
    // validation, and re-serialization is deterministic, so a
    // round-trip through the blob cannot drift the checksum.
    std::string sum = sha256Hex(cell_json.dump(-1));
    Json j = Json::object();
    j.set("siwi_cache_blob", Json(cache_blob_version));
    j.set("key", Json(key));
    j.set("schema_version", Json(core::stats_schema_version));
    j.set("cell_sha256", Json(sum));
    j.set("cell", std::move(cell_json));
    return j;
}

} // namespace

std::string
ResultCache::objectPath(const std::string &key) const
{
    // Git-style fan-out: 256 subdirectories keep any single
    // directory small even for huge grids.
    return dir_ + "/objects/" + key.substr(0, 2) + "/" +
           key.substr(2) + ".json";
}

bool
ResultCache::open(const std::string &dir, u64 max_entries,
                  std::string *err)
{
    std::lock_guard<std::mutex> lock(mu_);
    dir_ = dir;
    max_entries_ = max_entries;
    index_.clear();
    next_seq_ = 1;
    std::error_code ec;
    fs::create_directories(fs::path(dir_) / "objects", ec);
    if (ec) {
        if (err)
            *err = "cannot create cache directory " + dir_ + ": " +
                   ec.message();
        return false;
    }
    // The index is advisory: unreadable or stale metadata never
    // blocks opening — lookups go straight to the object files,
    // and fsck() rebuilds the index from them.
    std::string perr;
    Json j = Json::parseFile(dir_ + "/index.json", &perr);
    if (perr.empty() && j.isObject()) {
        if (const Json *entries = j.find("entries")) {
            if (entries->isArray()) {
                for (const Json &e : entries->arr()) {
                    IndexEntry ie;
                    ie.key = e.getString("key");
                    ie.seq = u64(e.getInt("seq"));
                    if (!ie.key.empty())
                        index_.push_back(std::move(ie));
                }
            }
        }
        std::sort(index_.begin(), index_.end(),
                  [](const IndexEntry &a, const IndexEntry &b) {
                      return a.seq < b.seq;
                  });
        for (const IndexEntry &e : index_)
            next_seq_ = std::max(next_seq_, e.seq + 1);
    }
    return true;
}

bool
ResultCache::validateBlob(const Json &blob, const std::string &key,
                          runner::CellResult *out,
                          std::string *why) const
{
    if (!blob.isObject() ||
        blob.getInt("siwi_cache_blob", -1) != cache_blob_version) {
        if (why)
            *why = "not a v" +
                   std::to_string(cache_blob_version) +
                   " cache blob";
        return false;
    }
    if (blob.getString("key") != key) {
        if (why)
            *why = "key mismatch (blob stored under '" +
                   blob.getString("key") + "')";
        return false;
    }
    i64 schema = blob.getInt("schema_version", -1);
    if (schema != core::stats_schema_version) {
        if (why)
            *why = "stale stats schema v" +
                   std::to_string(schema) + " (current v" +
                   std::to_string(core::stats_schema_version) +
                   ")";
        return false;
    }
    const Json *cell = blob.find("cell");
    if (!cell) {
        if (why)
            *why = "blob lacks 'cell' payload";
        return false;
    }
    std::string sum = sha256Hex(cell->dump(-1));
    if (sum != blob.getString("cell_sha256")) {
        if (why)
            *why = "payload checksum mismatch (corrupt blob)";
        return false;
    }
    std::string perr;
    if (out && !runner::cellFromJson(*cell, out, &perr)) {
        if (why)
            *why = "payload unparseable: " + perr;
        return false;
    }
    return true;
}

bool
ResultCache::lookup(const std::string &key,
                    runner::CellResult *out, std::string *why)
{
    std::lock_guard<std::mutex> lock(mu_);
    const std::string path = objectPath(key);
    std::string perr;
    Json blob = Json::parseFile(path, &perr);
    if (!perr.empty()) {
        std::error_code ec;
        if (!fs::exists(path, ec)) {
            ++counters_.misses;
            if (why)
                *why = "absent";
        } else {
            // Present but unreadable/unparseable: corruption.
            ++counters_.corrupt;
            if (why)
                *why = perr;
        }
        return false;
    }
    std::string vwhy;
    if (!validateBlob(blob, key, out, &vwhy)) {
        ++counters_.corrupt;
        if (why)
            *why = vwhy;
        return false;
    }
    ++counters_.hits;
    return true;
}

bool
ResultCache::store(const std::string &key,
                   const runner::CellResult &cell,
                   std::string *err)
{
    std::lock_guard<std::mutex> lock(mu_);
    const std::string path = objectPath(key);
    std::error_code ec;
    fs::create_directories(fs::path(path).parent_path(), ec);
    if (ec) {
        if (err)
            *err = "cannot create " + path + ": " + ec.message();
        return false;
    }
    if (!writeFileAtomic(path, blobJson(key, cell).dump(2) + "\n",
                         err))
        return false;
    ++counters_.stores;
    auto it = std::find_if(index_.begin(), index_.end(),
                           [&](const IndexEntry &e) {
                               return e.key == key;
                           });
    if (it == index_.end())
        index_.push_back({key, next_seq_++});
    while (max_entries_ && index_.size() > max_entries_) {
        // Oldest-stored-first: index order is insertion order, a
        // deterministic policy with no clock involved.
        fs::remove(objectPath(index_.front().key), ec);
        index_.erase(index_.begin());
        ++counters_.evictions;
    }
    // The index is derived metadata; a failed index write leaves
    // the object (the truth) in place, so it degrades the
    // eviction order, not correctness — fsck rebuilds it.
    std::string ierr;
    writeIndexLocked(&ierr);
    return true;
}

bool
ResultCache::writeIndexLocked(std::string *err)
{
    Json j = Json::object();
    j.set("siwi_cache_index", Json(cache_blob_version));
    j.set("schema_version", Json(core::stats_schema_version));
    Json arr = Json::array();
    for (const IndexEntry &e : index_) {
        Json je = Json::object();
        je.set("key", Json(e.key));
        je.set("seq", Json(e.seq));
        arr.push(std::move(je));
    }
    j.set("entries", std::move(arr));
    return writeFileAtomic(dir_ + "/index.json",
                           j.dump(2) + "\n", err);
}

FsckReport
ResultCache::fsck(bool repair)
{
    std::lock_guard<std::mutex> lock(mu_);
    FsckReport rep;
    std::vector<std::string> valid_keys;
    std::error_code ec;
    const fs::path objects = fs::path(dir_) / "objects";
    for (auto it = fs::recursive_directory_iterator(objects, ec);
         it != fs::recursive_directory_iterator();
         it.increment(ec)) {
        if (ec)
            break;
        if (!it->is_regular_file())
            continue;
        const fs::path p = it->path();
        if (p.extension() != ".json")
            continue; // in-flight temp files and strays
        ++rep.scanned;
        // objects/<2-char fanout>/<62-char rest>.json
        const std::string key =
            p.parent_path().filename().string() +
            p.stem().string();
        std::string why, perr;
        Json blob = Json::parseFile(p.string(), &perr);
        bool ok = perr.empty() &&
                  validateBlob(blob, key, nullptr, &why);
        if (ok) {
            ++rep.valid;
            valid_keys.push_back(key);
            continue;
        }
        ++rep.corrupt;
        rep.problems.push_back(
            key + ": " + (perr.empty() ? why : perr));
        if (repair) {
            fs::remove(p, ec);
            ++rep.removed;
        }
    }
    std::sort(valid_keys.begin(), valid_keys.end());
    // Index drift: entries for absent objects, or objects the
    // index never learned about (another process stored them).
    std::vector<std::string> indexed;
    indexed.reserve(index_.size());
    for (const IndexEntry &e : index_)
        indexed.push_back(e.key);
    std::sort(indexed.begin(), indexed.end());
    if (indexed != valid_keys) {
        rep.problems.push_back(
            "index out of sync: " +
            std::to_string(indexed.size()) + " indexed vs " +
            std::to_string(valid_keys.size()) +
            " valid object(s)");
        if (repair) {
            index_.clear();
            next_seq_ = 1;
            for (const std::string &k : valid_keys)
                index_.push_back({k, next_seq_++});
            std::string ierr;
            writeIndexLocked(&ierr);
            rep.index_rebuilt = true;
        }
    } else if (repair && rep.removed) {
        std::string ierr;
        writeIndexLocked(&ierr);
    }
    return rep;
}

u64
ResultCache::entries() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return index_.size();
}

CacheCounters
ResultCache::counters() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
}

} // namespace siwi::serve
