/**
 * @file
 * The serve layer's single wall-clock access point.
 *
 * Simulation state must never depend on host time (the siwi-lint
 * nondet check bans clock use under src/ outright), but a server
 * legitimately measures per-cell latency, uptime and timeouts.
 * Every such read goes through monoMillis() so exactly one line in
 * src/serve/ touches the clock — that line carries the allowlist
 * entry, and any other clock use in serve code is a lint finding.
 * Nothing returned here may flow into a CellResult, a cache blob
 * or any other replayed artifact; it feeds the status/latency
 * report only.
 */

#ifndef SIWI_SERVE_CLOCK_HH
#define SIWI_SERVE_CLOCK_HH

#include <chrono>

#include "common/types.hh"

namespace siwi::serve {

/** Monotonic host time in milliseconds (latency/uptime only). */
inline u64
monoMillis()
{
    return u64(std::chrono::duration_cast<std::chrono::milliseconds>(
                   std::chrono::steady_clock::now()
                       .time_since_epoch())
                   .count());
}

} // namespace siwi::serve

#endif // SIWI_SERVE_CLOCK_HH
