/**
 * @file
 * Persistent content-addressed result cache.
 *
 * One JSON blob per cell key (serve/cache_key.hh) under
 *
 *     <dir>/objects/<k[0:2]>/<k[2:]>.json
 *     <dir>/index.json
 *
 * Blobs are written atomically (temp file + rename within the
 * objects directory), so a killed writer leaves either the old
 * blob or the new one, never a torn file — that is what makes
 * interrupted sweeps resumable. Each blob carries the key it was
 * stored under, the stats schema version it was produced by, and
 * a SHA-256 checksum of its canonical cell payload; lookup
 * re-validates all three, so a corrupted (bit-flipped) or
 * stale-schema blob is a miss that triggers recomputation, never
 * a served result. The object files are the ground truth; the
 * index is derived metadata (insertion order for eviction, entry
 * count for status) and is rebuilt by fsck() when it drifts —
 * e.g. when several processes share one cache directory.
 */

#ifndef SIWI_SERVE_RESULT_CACHE_HH
#define SIWI_SERVE_RESULT_CACHE_HH

#include <mutex>
#include <string>
#include <vector>

#include "runner/results.hh"

namespace siwi::serve {

/** Version of the on-disk blob/index layout. */
constexpr int cache_blob_version = 1;

/** Lifetime operation counters of one ResultCache instance. */
struct CacheCounters
{
    u64 hits = 0;
    u64 misses = 0;    //!< absent entries
    u64 corrupt = 0;   //!< present but failed validation (miss)
    u64 stores = 0;
    u64 evictions = 0;
};

/** Outcome of one fsck() pass. */
struct FsckReport
{
    size_t scanned = 0;  //!< object files visited
    size_t valid = 0;
    size_t corrupt = 0;  //!< failed validation
    size_t removed = 0;  //!< corrupt blobs deleted (repair mode)
    bool index_rebuilt = false;
    std::vector<std::string> problems; //!< one line per finding

    bool clean() const { return corrupt == 0; }
};

class ResultCache
{
  public:
    /**
     * Open (creating directories as needed) the cache at @p dir.
     * A missing or malformed index is tolerated — entries stay
     * reachable by key; fsck() rebuilds the metadata.
     * @p max_entries > 0 bounds the cache: store() evicts
     * oldest-stored entries beyond it.
     * @return false and set @p err when the directories cannot
     *         be created.
     */
    bool open(const std::string &dir, u64 max_entries,
              std::string *err);

    /**
     * Fetch the cell stored under @p key. Returns true on a
     * validated hit. On a miss returns false; @p why (optional)
     * distinguishes an absent entry from a corrupt or
     * schema-stale blob — both are misses, but the caller's log
     * should say why a recompute happened.
     */
    bool lookup(const std::string &key, runner::CellResult *out,
                std::string *why = nullptr);

    /**
     * Store @p cell under @p key (atomic write; overwrites any
     * existing blob, e.g. one that failed validation). Evicts
     * oldest entries beyond the entry bound.
     * @return false and set @p err on an I/O failure.
     */
    bool store(const std::string &key,
               const runner::CellResult &cell, std::string *err);

    /**
     * Validate every object blob against its path-derived key,
     * schema version and payload checksum, and check the index
     * for drift. With @p repair, corrupt blobs are deleted and
     * the index rebuilt from the valid objects (sorted by key);
     * otherwise problems are only reported.
     */
    FsckReport fsck(bool repair);

    /** Entries currently in the index. */
    u64 entries() const;

    /** Lifetime counters (server status report). */
    CacheCounters counters() const;

    const std::string &dir() const { return dir_; }

  private:
    struct IndexEntry
    {
        std::string key;
        u64 seq = 0;
    };

    std::string objectPath(const std::string &key) const;
    bool writeIndexLocked(std::string *err);
    bool validateBlob(const Json &blob, const std::string &key,
                      runner::CellResult *out,
                      std::string *why) const;

    mutable std::mutex mu_;
    std::string dir_;
    u64 max_entries_ = 0;
    u64 next_seq_ = 1;
    std::vector<IndexEntry> index_; //!< seq-ascending
    CacheCounters counters_;
};

} // namespace siwi::serve

#endif // SIWI_SERVE_RESULT_CACHE_HH
