/**
 * @file
 * siwi-serve wire protocol: line-delimited JSON over TCP.
 *
 * Every message is one JSON object on one line, terminated by
 * '\n' (the serializer is the deterministic common/json.hh dump,
 * which never emits a newline in compact mode). Requests carry a
 * "type" member:
 *
 *   {"type":"ping"}
 *   {"type":"status"}
 *   {"type":"fsck","repair":bool}
 *   {"type":"submit","spec":{...spec-file document...}}
 *   {"type":"shutdown"}
 *
 * A submit streams back, in completion order:
 *
 *   {"type":"accepted","suite":s,"cells":n,"machines":[...]}
 *   {"type":"cell","index":i,"cached":b,"compute_ms":m,
 *    "cell":{...}}                                  x n
 *   {"type":"done","cells":n,"hits":h,"misses":m,
 *    "verify_failures":v,"timeouts":t,"server_ms":w}
 *
 * "index" is the cell's canonical slot (runner expansion order),
 * so the client reassembles a Results that serializes
 * byte-identically to a local run no matter how completion
 * interleaved. Any request can instead produce
 * {"type":"error","message":...}. docs/SERVE.md is the
 * normative description.
 *
 * This header also carries the small POSIX socket helpers shared
 * by the server, the client and the tests: connection-oriented,
 * IPv4/IPv6 via getaddrinfo, no external dependencies.
 */

#ifndef SIWI_SERVE_PROTOCOL_HH
#define SIWI_SERVE_PROTOCOL_HH

#include <string>

#include "common/json.hh"

namespace siwi::serve {

/** Protocol revision, echoed by ping. */
constexpr int protocol_version = 1;

/**
 * Listen on @p host:@p port (port 0 = ephemeral).
 * @return the listening fd, or -1 with @p err set.
 */
int listenTcp(const std::string &host, unsigned port,
              std::string *err);

/** Port a listening fd is actually bound to (ephemeral ports). */
unsigned boundPort(int fd);

/**
 * Connect to @p host:@p port.
 * @return the connected fd, or -1 with @p err set.
 */
int connectTcp(const std::string &host, unsigned port,
               std::string *err);

/**
 * Send @p line plus a terminating newline, looping over partial
 * sends, SIGPIPE suppressed. @return false and set @p err on a
 * closed or broken peer.
 */
bool sendLine(int fd, const std::string &line, std::string *err);

/** Serialize @p msg compactly and sendLine() it. */
bool sendMessage(int fd, const Json &msg, std::string *err);

/** One {"type":"error"} message. */
Json errorMessage(const std::string &text);

/**
 * Buffered newline-framed reader over a socket fd. A read that
 * hits a receive timeout (SO_RCVTIMEO on the fd) reports Timeout
 * so servers can poll their stop flag on idle connections.
 */
class LineReader
{
  public:
    explicit LineReader(int fd) : fd_(fd) {}

    enum class Status { Line, Eof, Timeout, Error };

    /** Read the next full line (without the newline). */
    Status readLine(std::string *line, std::string *err);

  private:
    int fd_;
    std::string buf_;
};

} // namespace siwi::serve

#endif // SIWI_SERVE_PROTOCOL_HH
