#include "serve/protocol.hh"

#include <cerrno>
#include <cstring>

#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace siwi::serve {

namespace {

/** getaddrinfo over host/port for listen (passive) or connect. */
struct AddrList
{
    addrinfo *head = nullptr;

    AddrList(const std::string &host, unsigned port, bool passive,
             std::string *err)
    {
        addrinfo hints = {};
        hints.ai_family = AF_UNSPEC;
        hints.ai_socktype = SOCK_STREAM;
        hints.ai_flags = passive ? AI_PASSIVE : 0;
        int rc = ::getaddrinfo(host.c_str(),
                               std::to_string(port).c_str(),
                               &hints, &head);
        if (rc != 0) {
            head = nullptr;
            if (err)
                *err = "cannot resolve " + host + ": " +
                       ::gai_strerror(rc);
        }
    }

    ~AddrList()
    {
        if (head)
            ::freeaddrinfo(head);
    }
};

} // namespace

int
listenTcp(const std::string &host, unsigned port, std::string *err)
{
    AddrList addrs(host, port, /*passive=*/true, err);
    if (!addrs.head)
        return -1;
    for (addrinfo *a = addrs.head; a; a = a->ai_next) {
        int fd = ::socket(a->ai_family, a->ai_socktype,
                          a->ai_protocol);
        if (fd < 0)
            continue;
        int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        if (::bind(fd, a->ai_addr, a->ai_addrlen) == 0 &&
            ::listen(fd, 16) == 0)
            return fd;
        ::close(fd);
    }
    if (err)
        *err = "cannot listen on " + host + ":" +
               std::to_string(port) + ": " + std::strerror(errno);
    return -1;
}

unsigned
boundPort(int fd)
{
    sockaddr_storage ss = {};
    socklen_t len = sizeof(ss);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&ss),
                      &len) != 0)
        return 0;
    if (ss.ss_family == AF_INET)
        return ntohs(
            reinterpret_cast<sockaddr_in *>(&ss)->sin_port);
    if (ss.ss_family == AF_INET6)
        return ntohs(
            reinterpret_cast<sockaddr_in6 *>(&ss)->sin6_port);
    return 0;
}

int
connectTcp(const std::string &host, unsigned port,
           std::string *err)
{
    AddrList addrs(host, port, /*passive=*/false, err);
    if (!addrs.head)
        return -1;
    for (addrinfo *a = addrs.head; a; a = a->ai_next) {
        int fd = ::socket(a->ai_family, a->ai_socktype,
                          a->ai_protocol);
        if (fd < 0)
            continue;
        if (::connect(fd, a->ai_addr, a->ai_addrlen) == 0)
            return fd;
        ::close(fd);
    }
    if (err)
        *err = "cannot connect to " + host + ":" +
               std::to_string(port) + ": " + std::strerror(errno);
    return -1;
}

bool
sendLine(int fd, const std::string &line, std::string *err)
{
    std::string framed = line + "\n";
    size_t off = 0;
    while (off < framed.size()) {
        ssize_t n = ::send(fd, framed.data() + off,
                           framed.size() - off, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            if (err)
                *err = "send failed: " + std::string(
                           n < 0 ? std::strerror(errno)
                                 : "peer closed");
            return false;
        }
        off += size_t(n);
    }
    return true;
}

bool
sendMessage(int fd, const Json &msg, std::string *err)
{
    return sendLine(fd, msg.dump(-1), err);
}

Json
errorMessage(const std::string &text)
{
    Json j = Json::object();
    j.set("type", Json("error"));
    j.set("message", Json(text));
    return j;
}

LineReader::Status
LineReader::readLine(std::string *line, std::string *err)
{
    for (;;) {
        size_t nl = buf_.find('\n');
        if (nl != std::string::npos) {
            *line = buf_.substr(0, nl);
            buf_.erase(0, nl + 1);
            return Status::Line;
        }
        char chunk[4096];
        ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n > 0) {
            buf_.append(chunk, size_t(n));
            continue;
        }
        if (n == 0) {
            if (!buf_.empty() && err)
                *err = "peer closed mid-line";
            return Status::Eof;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return Status::Timeout;
        if (err)
            *err = "recv failed: " +
                   std::string(std::strerror(errno));
        return Status::Error;
    }
}

} // namespace siwi::serve
