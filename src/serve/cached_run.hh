/**
 * @file
 * Cache-backed local sweep execution: `siwi-run --cache DIR`.
 *
 * The offline counterpart of the server's submit path, sharing
 * the same key derivation (serve/cache_key.hh) and blob store
 * (serve/result_cache.hh): every cell is looked up before it is
 * run, and every computed cell is stored. A siwi-run invocation
 * and a siwi-serve instance pointed at the same directory
 * therefore share results — in either direction.
 *
 * Because cells are bit-identical functions of their resolved
 * configuration, a cache hit is exact: the returned Results — and
 * its serialized JSON — are byte-identical whether every cell was
 * computed, cached, or any mix of the two.
 */

#ifndef SIWI_SERVE_CACHED_RUN_HH
#define SIWI_SERVE_CACHED_RUN_HH

#include <vector>

#include "runner/experiment_runner.hh"
#include "serve/result_cache.hh"

namespace siwi::serve {

/** Cache traffic of one runSweepsCached() invocation. */
struct CachedRunCounters
{
    u64 hits = 0;
    u64 misses = 0; //!< computed this run (and stored)
};

/**
 * runner::runSweeps() with a read-through / write-through result
 * cache: identical grid normalization, canonical cell order,
 * RunOptions semantics (jobs, progress, on_cell, cycle_skip) and
 * return value. @p counters (optional) reports the hit/miss
 * split.
 */
runner::Results runSweepsCached(
    const std::vector<runner::SweepSpec> &sweeps,
    const runner::RunOptions &opts, ResultCache *cache,
    CachedRunCounters *counters = nullptr);

} // namespace siwi::serve

#endif // SIWI_SERVE_CACHED_RUN_HH
