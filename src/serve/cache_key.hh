/**
 * @file
 * Content-addressed cell keys.
 *
 * A simulation cell is a pure function of its fully-resolved
 * description: the chip configuration (which embeds the SM config,
 * SM count and scheduling policy), the workload, and the size
 * class. Results are bit-identical across thread counts and
 * stepping modes, so that description — canonicalized to
 * deterministic JSON and hashed — is a sound exact cache key: two
 * cells with equal keys have byte-identical results, and any
 * config-field, workload, size, SM-count or policy change hashes
 * differently because every field flows through the ConfigField
 * tables into the canonical JSON (tests/serve/cache_key_test.cc
 * sweeps the tables to keep that honest).
 *
 * The stats schema version is folded in as well: a blob cached
 * under schema v5 must be a miss for a v6 reader, not a
 * mis-parsed hit, so schema bumps invalidate the whole cache by
 * construction. Execution knobs that cannot change results
 * (cycle skipping, thread count, progress) are deliberately NOT
 * part of the key.
 */

#ifndef SIWI_SERVE_CACHE_KEY_HH
#define SIWI_SERVE_CACHE_KEY_HH

#include <string>
#include <string_view>

#include "core/config_io.hh"
#include "core/stats_io.hh"
#include "runner/sweep.hh"

namespace siwi::serve {

/** Version of the key derivation itself: bump when the canonical
 *  key JSON layout changes (old caches then miss cleanly). */
constexpr int cache_key_version = 1;

/**
 * The canonical JSON document a cell key hashes: key-derivation
 * version, stats schema version, workload, size label, and the
 * full resolved chip config dump. Exposed for tests and for
 * `siwi-serve --explain-key`.
 */
Json cellKeyJson(const core::GpuConfig &resolved,
                 std::string_view workload, std::string_view size,
                 int schema_version = core::stats_schema_version);

/**
 * Content hash of one resolved cell: SHA-256 hex (64 chars) of
 * the compact cellKeyJson() dump.
 */
std::string cellCacheKey(
    const core::GpuConfig &resolved, std::string_view workload,
    std::string_view size,
    int schema_version = core::stats_schema_version);

/**
 * Key of one cell of an expanded sweep (the runner-facing
 * overload): resolves the cell's chip exactly like runCell() does
 * and hashes it with the sweep's workload and size.
 */
std::string cellCacheKey(const runner::SweepSpec &sweep,
                         const runner::CellSpec &cell);

} // namespace siwi::serve

#endif // SIWI_SERVE_CACHE_KEY_HH
