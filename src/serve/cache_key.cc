#include "serve/cache_key.hh"

#include "common/sha256.hh"
#include "runner/results.hh"

namespace siwi::serve {

Json
cellKeyJson(const core::GpuConfig &resolved,
            std::string_view workload, std::string_view size,
            int schema_version)
{
    // Member order is part of the canonical form: Json objects
    // preserve insertion order and the config dump is in table
    // order, so the same cell always serializes to the same
    // bytes.
    Json j = Json::object();
    j.set("siwi_cache_key", Json(cache_key_version));
    j.set("stats_schema", Json(schema_version));
    j.set("workload", Json(std::string(workload)));
    j.set("size", Json(std::string(size)));
    j.set("config", core::gpuConfigToJson(resolved));
    return j;
}

std::string
cellCacheKey(const core::GpuConfig &resolved,
             std::string_view workload, std::string_view size,
             int schema_version)
{
    return sha256Hex(
        cellKeyJson(resolved, workload, size, schema_version)
            .dump(-1));
}

std::string
cellCacheKey(const runner::SweepSpec &sweep,
             const runner::CellSpec &cell)
{
    // The exact chip runCell() will build — policy override and
    // chip_sets applied — so key identity matches run identity.
    core::GpuConfig chip = runner::resolvedCellConfig(
        sweep, cell.machine, cell.sms, cell.policy);
    return cellCacheKey(chip, sweep.wls[cell.wl]->name(),
                        runner::sizeClassName(sweep.size));
}

} // namespace siwi::serve
