/**
 * @file
 * Client side of the siwi-serve protocol.
 *
 * submitSpec() drives one submit round-trip: send the spec
 * document, collect the per-cell stream, and reassemble the
 * results document. Streamed cells carry their canonical slot
 * index and arrive as the server's own cellToJson() output
 * verbatim, so the assembled document is byte-identical to what a
 * local `siwi-run --spec` of the same spec would have written —
 * regardless of cache state, sharding or completion order.
 *
 * request() covers the single-shot request types (ping, status,
 * fsck, shutdown): one message out, one reply back.
 */

#ifndef SIWI_SERVE_CLIENT_HH
#define SIWI_SERVE_CLIENT_HH

#include <functional>
#include <string>

#include "common/json.hh"
#include "runner/results.hh"

namespace siwi::serve {

/**
 * Split "HOST:PORT" (the --submit argument; the last ':' splits,
 * so bracketless IPv6 still parses). @return false and set @p err
 * on a missing or non-numeric port.
 */
bool parseHostPort(const std::string &arg, std::string *host,
                   unsigned *port, std::string *err);

/** What one submit round-trip produced. */
struct SubmitOutcome
{
    runner::Results results;
    /** The reassembled results document (Results::toJson layout),
     *  serialized byte-identically to a local run. */
    Json document;
    u64 cells = 0;
    u64 hits = 0;   //!< served from the server's cache
    u64 misses = 0; //!< computed (or joined in-flight) remotely
    u64 joined = 0;
    u64 verify_failures = 0;
    u64 timeouts = 0;
    u64 server_ms = 0; //!< server-side wall clock of the submit
};

/**
 * Per-cell progress hook: @p done of @p total cells received so
 * far; @p cached is true for cells served from the cache.
 */
using SubmitProgress = std::function<void(
    size_t done, size_t total, const runner::CellResult &cell,
    bool cached)>;

/**
 * Submit @p spec (a spec-file document) to the server at
 * @p host:@p port and collect the streamed results.
 * @return false and set @p err on connection, protocol or
 * server-reported errors.
 */
bool submitSpec(const std::string &host, unsigned port,
                const Json &spec, SubmitOutcome *out,
                std::string *err,
                const SubmitProgress &progress = nullptr);

/**
 * Send one single-shot request (ping / status / fsck / shutdown)
 * and return the reply. A {"type":"error"} reply fails with its
 * message in @p err; any other reply is returned as-is.
 */
bool request(const std::string &host, unsigned port,
             const Json &req, Json *reply, std::string *err);

} // namespace siwi::serve

#endif // SIWI_SERVE_CLIENT_HH
