/**
 * @file
 * The nine non-TMD irregular workloads of Figure 7(b).
 *
 * Each reproduces the divergence signature of its namesake: BFS's
 * data-dependent frontier expansion, Eigenvalues' balanced bisection
 * branches, Mandelbrot's escape-time loops behind a block barrier,
 * Needleman-Wunsch's growing wavefront, SortingNetworks' data-
 * dependent compare-exchanges, and so on (see docs/DESIGN.md).
 */

#include "workloads/suite.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/log.hh"
#include "common/rng.hh"
#include "isa/builder.hh"

namespace siwi::workloads {

namespace {

using isa::Imm;
using isa::KernelBuilder;
using isa::Reg;
using isa::SpecialReg;

constexpr Addr in_a = 0x0100000;
constexpr Addr in_b = 0x0200000;
constexpr Addr in_c = 0x0300000;
constexpr Addr out_a = 0x0400000;

bool
failMsg(std::string *why, const char *what, size_t i, double expect,
        double got)
{
    if (why) {
        std::ostringstream os;
        os << what << "[" << i << "]: expected " << expect
           << ", got " << got;
        *why = os.str();
    }
    return false;
}

bool
checkF(const mem::MemoryImage &mem, Addr addr, float expect,
       const char *what, size_t i, std::string *why)
{
    float got = mem.readF32(addr);
    float tol = 1e-4f * (1.0f + std::fabs(expect));
    if (std::fabs(got - expect) <= tol)
        return true;
    return failMsg(why, what, i, expect, got);
}

bool
checkI(const mem::MemoryImage &mem, Addr addr, u32 expect,
       const char *what, size_t i, std::string *why)
{
    u32 got = mem.read32(addr);
    if (got == expect)
        return true;
    return failMsg(why, what, i, expect, got);
}

Reg
emitGtidAddr(KernelBuilder &b, Reg gtid, Addr base)
{
    Reg addr = b.reg();
    b.shl(addr, gtid, Imm(2));
    b.iadd(addr, addr, Imm(i32(base)));
    return addr;
}

// ================================================================
// BFS: level-synchronous frontier expansion; degrees vary per node.
// ================================================================
class Bfs final : public Workload
{
  public:
    const char *name() const override { return "BFS"; }
    bool regular() const override { return false; }

    unsigned nodes(SizeClass sc) const
    {
        return sc == SizeClass::Full ? 1024 : 128;
    }
    static constexpr unsigned max_levels = 8;

    unsigned degreeOf(unsigned i) const { return 1 + (i * 37) % 8; }
    unsigned
    edgeTo(unsigned i, unsigned j, unsigned n) const
    {
        return (i * 7 + j * 13 + 1) % n;
    }

    Instance
    instance(SizeClass sc) const override
    {
        const unsigned n = nodes(sc);
        KernelBuilder b("bfs");
        Reg tid = b.reg();
        b.s2r(tid, SpecialReg::TID);

        Reg lvaddr = emitGtidAddr(b, tid, out_a);
        Reg rpaddr = emitGtidAddr(b, tid, in_a);
        Reg level = b.reg(), cond = b.reg();
        b.movi(level, 0);
        b.loop();
        {
            Reg mylv = b.reg(), active = b.reg();
            b.ld(mylv, lvaddr);
            b.iseteq(active, mylv, level);
            b.if_(active);
            {
                // edges [row[i], row[i+1])
                Reg e = b.reg(), eend = b.reg(), econd = b.reg();
                b.ld(e, rpaddr);
                b.ld(eend, rpaddr, 4);
                b.loop();
                {
                    Reg eaddr = b.reg(), nb = b.reg(),
                        nlv = b.reg(), unvisited = b.reg(),
                        nlvaddr = b.reg(), next = b.reg();
                    b.shl(eaddr, e, Imm(2));
                    b.iadd(eaddr, eaddr, Imm(i32(in_b)));
                    b.ld(nb, eaddr);
                    b.shl(nlvaddr, nb, Imm(2));
                    b.iadd(nlvaddr, nlvaddr, Imm(i32(out_a)));
                    b.ld(nlv, nlvaddr);
                    b.isetlt(unvisited, nlv, Imm(0));
                    b.if_(unvisited);
                    {
                        b.iadd(next, level, Imm(1));
                        b.st(nlvaddr, 0, next);
                    }
                    b.endIf();
                    b.iadd(e, e, Imm(1));
                    b.isetlt(econd, e, eend);
                }
                b.endLoopIf(econd);
            }
            b.endIf();
            b.bar();
            b.iadd(level, level, Imm(1));
            b.isetlt(cond, level, Imm(i32(max_levels)));
        }
        b.endLoopIf(cond);

        Instance inst;
        inst.raw = b.build();
        inst.block_threads = n;
        inst.grid_blocks = 1;
        return inst;
    }

    void
    init(mem::MemoryImage &mem, SizeClass sc) const override
    {
        const unsigned n = nodes(sc);
        unsigned off = 0;
        for (unsigned i = 0; i < n; ++i) {
            mem.write32(in_a + Addr(i) * 4, off);
            off += degreeOf(i);
        }
        mem.write32(in_a + Addr(n) * 4, off);
        unsigned e = 0;
        for (unsigned i = 0; i < n; ++i) {
            for (unsigned j = 0; j < degreeOf(i); ++j)
                mem.write32(in_b + Addr(e++) * 4, edgeTo(i, j, n));
        }
        for (unsigned i = 0; i < n; ++i)
            mem.write32(out_a + Addr(i) * 4, u32(i32(-1)));
        mem.write32(out_a, 0); // source node
    }

    bool
    verify(const mem::MemoryImage &mem, SizeClass sc,
           std::string *why) const override
    {
        const unsigned n = nodes(sc);
        std::vector<i32> lv(n, -1);
        lv[0] = 0;
        for (unsigned level = 0; level < max_levels; ++level) {
            for (unsigned i = 0; i < n; ++i) {
                if (lv[i] != i32(level))
                    continue;
                for (unsigned j = 0; j < degreeOf(i); ++j) {
                    unsigned nb = edgeTo(i, j, n);
                    if (lv[nb] < 0)
                        lv[nb] = i32(level) + 1;
                }
            }
        }
        for (unsigned i = 0; i < n; ++i) {
            if (!checkI(mem, out_a + Addr(i) * 4, u32(lv[i]), "lv",
                        i, why)) {
                return false;
            }
        }
        return true;
    }
};

// ================================================================
// ConvolutionSeparable: fast interior path, clamped boundary path.
// ================================================================
class ConvSep final : public Workload
{
  public:
    const char *name() const override
    {
        return "ConvolutionSeparable";
    }
    bool regular() const override { return false; }

    unsigned n(SizeClass sc) const
    {
        // Chip: 128 CTAs, enough to keep a 64-SM chip busy.
        return sc == SizeClass::Chip   ? 131072
               : sc == SizeClass::Full ? 4096
                                       : 256;
    }
    static constexpr unsigned radius = 8;
    static constexpr unsigned seg = 64; //!< row length

    Instance
    instance(SizeClass sc) const override
    {
        KernelBuilder b("convsep");
        Reg gtid = b.reg();
        b.s2r(gtid, SpecialReg::GTID);
        Reg x = b.reg();
        b.and_(x, gtid, Imm(i32(seg - 1)));

        Reg lo = b.reg(), hi = b.reg(), boundary = b.reg(),
            t = b.reg();
        b.isetlt(lo, x, Imm(i32(radius)));
        b.isetge(hi, x, Imm(i32(seg - radius)));
        b.or_(boundary, lo, hi);

        Reg acc = b.reg(), w = b.reg(), v = b.reg(),
            addr = b.reg(), idx = b.reg();
        b.fmovi(acc, 0.0f);

        Reg rowbase = b.reg();
        b.isub(rowbase, gtid, x); // row start index

        b.if_(boundary);
        {
            // Clamped taps (extra min/max work on the minority).
            Reg zero = b.reg(), maxi = b.reg();
            b.movi(zero, 0);
            b.movi(maxi, i32(seg - 1));
            for (int o = -int(radius); o <= int(radius); ++o) {
                b.iadd(idx, x, Imm(o));
                b.imax(idx, idx, zero);
                b.imin(idx, idx, maxi);
                b.iadd(t, rowbase, idx);
                b.shl(addr, t, Imm(2));
                b.iadd(addr, addr, Imm(i32(in_a)));
                b.ld(v, addr);
                b.fmovi(w, 1.0f / (1.0f + float(o < 0 ? -o : o)));
                b.fmad(acc, v, w, acc);
            }
        }
        b.else_();
        {
            for (int o = -int(radius); o <= int(radius); ++o) {
                b.iadd(idx, x, Imm(o));
                b.iadd(t, rowbase, idx);
                b.shl(addr, t, Imm(2));
                b.iadd(addr, addr, Imm(i32(in_a)));
                b.ld(v, addr);
                b.fmovi(w, 1.0f / (1.0f + float(o < 0 ? -o : o)));
                b.fmad(acc, v, w, acc);
            }
        }
        b.endIf();

        Reg oaddr = emitGtidAddr(b, gtid, out_a);
        b.st(oaddr, 0, acc);

        Instance inst;
        inst.raw = b.build();
        inst.block_threads = std::min(n(sc), 1024u);
        inst.grid_blocks = n(sc) / inst.block_threads;
        return inst;
    }

    void
    init(mem::MemoryImage &mem, SizeClass sc) const override
    {
        Rng rng(31);
        for (unsigned i = 0; i < n(sc); ++i)
            mem.writeF32(in_a + Addr(i) * 4, rng.uniform(-1.f, 1.f));
    }

    bool
    verify(const mem::MemoryImage &mem, SizeClass sc,
           std::string *why) const override
    {
        const unsigned nn = n(sc);
        std::vector<float> in(nn);
        Rng rng(31);
        for (auto &v : in)
            v = rng.uniform(-1.f, 1.f);
        for (unsigned i = 0; i < nn; ++i) {
            unsigned x = i % seg;
            unsigned row = i - x;
            float acc = 0.0f;
            for (int o = -int(radius); o <= int(radius); ++o) {
                int idx = int(x) + o;
                idx = std::clamp(idx, 0, int(seg) - 1);
                float w = 1.0f / (1.0f + float(o < 0 ? -o : o));
                acc = in[row + unsigned(idx)] * w + acc;
            }
            if (!checkF(mem, out_a + Addr(i) * 4, acc, "conv", i,
                        why)) {
                return false;
            }
        }
        return true;
    }
};

// ================================================================
// Eigenvalues: bisection with balanced data-dependent branches.
// ================================================================
class Eigenvalues final : public Workload
{
  public:
    const char *name() const override { return "Eigenvalues"; }
    bool regular() const override { return false; }

    unsigned n(SizeClass sc) const
    {
        return sc == SizeClass::Full ? 1024 : 128;
    }
    unsigned iters(SizeClass sc) const
    {
        return sc == SizeClass::Full ? 16 : 6;
    }
    static constexpr unsigned diag = 8;

    Instance
    instance(SizeClass sc) const override
    {
        KernelBuilder b("eigen");
        Reg gtid = b.reg();
        b.s2r(gtid, SpecialReg::GTID);

        // Spread the bisection intervals across [0, 24) *within*
        // each warp (scrambled by tid*5 mod 64) so the per-element
        // comparisons diverge heavily, like the eigenvalue
        // bisection kernel's per-thread intervals.
        Reg lo = b.reg(), hi = b.reg(), t = b.reg();
        Reg scramble = b.reg();
        b.imul(scramble, gtid, Imm(5));
        b.and_(scramble, scramble, Imm(63));
        b.i2f(lo, scramble);
        Reg c = b.reg();
        b.fmovi(c, 24.0f / 64.0f);
        b.fmul(lo, lo, c);
        b.fmovi(t, 12.0f);
        b.fadd(hi, lo, t);

        Reg it = b.reg(), cond = b.reg();
        b.movi(it, 0);
        b.loop();
        {
            Reg mid = b.reg(), half = b.reg(), count = b.reg(),
                j = b.reg(), jcond = b.reg();
            b.fadd(mid, lo, hi);
            b.fmovi(half, 0.5f);
            b.fmul(mid, mid, half);

            b.movi(count, 0);
            b.movi(j, 0);
            b.loop();
            {
                Reg daddr = b.reg(), dv = b.reg(), less = b.reg();
                b.shl(daddr, j, Imm(2));
                b.iadd(daddr, daddr, Imm(i32(in_a)));
                b.ld(dv, daddr);
                b.fsetlt(less, dv, mid);
                // Balanced if/else: divergence on the comparison.
                b.if_(less);
                {
                    b.iadd(count, count, Imm(1));
                }
                b.else_();
                {
                    b.iadd(count, count, Imm(-1));
                }
                b.endIf();
                b.iadd(j, j, Imm(1));
                b.isetlt(jcond, j, Imm(i32(diag)));
            }
            b.endLoopIf(jcond);

            // Each thread bisects toward a different quantile of
            // the spectrum (its own eigenvalue index), keeping the
            // intervals spread and the branches divergent.
            Reg pos = b.reg(), target = b.reg();
            b.and_(target, gtid, Imm(15));
            b.iadd(target, target, Imm(-8));
            b.isetgt(pos, count, target);
            b.if_(pos);
            {
                b.mov(hi, mid);
            }
            b.else_();
            {
                b.mov(lo, mid);
            }
            b.endIf();

            b.iadd(it, it, Imm(1));
            b.isetlt(cond, it, Imm(i32(iters(sc))));
        }
        b.endLoopIf(cond);

        Reg mid = b.reg(), half = b.reg();
        b.fadd(mid, lo, hi);
        b.fmovi(half, 0.5f);
        b.fmul(mid, mid, half);
        Reg oaddr = emitGtidAddr(b, gtid, out_a);
        b.st(oaddr, 0, mid);

        Instance inst;
        inst.raw = b.build();
        inst.block_threads = std::min(n(sc), 1024u);
        inst.grid_blocks = n(sc) / inst.block_threads;
        return inst;
    }

    void
    init(mem::MemoryImage &mem, SizeClass) const override
    {
        Rng rng(37);
        for (unsigned i = 0; i < diag; ++i)
            mem.writeF32(in_a + Addr(i) * 4, rng.uniform(0.f, 24.f));
    }

    bool
    verify(const mem::MemoryImage &mem, SizeClass sc,
           std::string *why) const override
    {
        std::vector<float> d(diag);
        Rng rng(37);
        for (auto &v : d)
            v = rng.uniform(0.f, 24.f);
        for (unsigned i = 0; i < n(sc); ++i) {
            float lo = float(i32((i * 5) & 63)) * (24.0f / 64.0f);
            float hi = lo + 12.0f;
            i32 target = i32(i & 15) - 8;
            for (unsigned it = 0; it < iters(sc); ++it) {
                float mid = (lo + hi) * 0.5f;
                i32 count = 0;
                for (unsigned j = 0; j < diag; ++j)
                    count += d[j] < mid ? 1 : -1;
                if (count > target)
                    hi = mid;
                else
                    lo = mid;
            }
            float mid = (lo + hi) * 0.5f;
            if (!checkF(mem, out_a + Addr(i) * 4, mid, "eig", i,
                        why)) {
                return false;
            }
        }
        return true;
    }
};

// ================================================================
// Histogram: per-thread register bins selected by a data-dependent
// branch chain.
//
// The SDK kernel keeps per-warp histograms in shared memory, which
// this ISA does not model; binning into registers through a chain
// of minority-taken ifs reproduces the same divergence signature
// (rare, data-dependent branch paths) without inventing off-chip
// traffic the original never had.
// ================================================================
class Histogram final : public Workload
{
  public:
    const char *name() const override { return "Histogram"; }
    bool regular() const override { return false; }

    unsigned threads(SizeClass sc) const
    {
        return sc == SizeClass::Full ? 1024 : 128;
    }
    unsigned items(SizeClass sc) const
    {
        return sc == SizeClass::Full ? 24 : 6;
    }
    static constexpr unsigned bins = 8;

    Instance
    instance(SizeClass sc) const override
    {
        const unsigned per = items(sc);
        KernelBuilder b("histogram");
        Reg gtid = b.reg();
        b.s2r(gtid, SpecialReg::GTID);

        Reg daddr = b.reg();
        // Coalesced streaming: item k of thread t at data[k*T + t].
        b.shl(daddr, gtid, Imm(2));
        b.iadd(daddr, daddr, Imm(i32(in_a)));

        Reg count[bins];
        for (unsigned i = 0; i < bins; ++i) {
            count[i] = b.reg();
            b.movi(count[i], 0);
        }

        Reg k = b.reg(), cond = b.reg(), v = b.reg(),
            bin = b.reg(), hit = b.reg();
        b.movi(k, 0);
        b.loop();
        {
            b.ld(v, daddr);
            b.and_(bin, v, Imm(i32(bins - 1)));
            // Minority-taken if per bin: the paper's histogram
            // divergence pattern.
            for (unsigned i = 0; i < bins; ++i) {
                b.iseteq(hit, bin, Imm(i32(i)));
                b.if_(hit);
                b.iadd(count[i], count[i], Imm(1));
                b.endIf();
            }
            b.iadd(daddr, daddr, Imm(i32(threads(sc) * 4)));
            b.iadd(k, k, Imm(1));
            b.isetlt(cond, k, Imm(i32(per)));
        }
        b.endLoopIf(cond);

        Reg hbase = b.reg();
        b.imul(hbase, gtid, Imm(i32(bins * 4)));
        b.iadd(hbase, hbase, Imm(i32(out_a)));
        for (unsigned i = 0; i < bins; ++i)
            b.st(hbase, i32(i * 4), count[i]);

        Instance inst;
        inst.raw = b.build();
        inst.block_threads = std::min(threads(sc), 1024u);
        inst.grid_blocks = threads(sc) / inst.block_threads;
        return inst;
    }

    void
    init(mem::MemoryImage &mem, SizeClass sc) const override
    {
        Rng rng(41);
        for (unsigned i = 0; i < threads(sc) * items(sc); ++i)
            mem.write32(in_a + Addr(i) * 4, u32(rng.next()));
    }

    bool
    verify(const mem::MemoryImage &mem, SizeClass sc,
           std::string *why) const override
    {
        Rng rng(41);
        const unsigned per = items(sc);
        const unsigned t_count = threads(sc);
        std::vector<u32> data(t_count * per);
        for (auto &v : data)
            v = u32(rng.next());
        for (unsigned t = 0; t < t_count; ++t) {
            std::vector<u32> hist(bins, 0);
            for (unsigned k = 0; k < per; ++k)
                hist[data[k * t_count + t] % bins] += 1;
            for (unsigned bin = 0; bin < bins; ++bin) {
                if (!checkI(mem,
                            out_a + Addr(t) * bins * 4 +
                                Addr(bin) * 4,
                            hist[bin], "hist", t * bins + bin,
                            why)) {
                    return false;
                }
            }
        }
        return true;
    }
};

// ================================================================
// LUD (forward-substitution phase): shrinking tid-correlated work.
// ================================================================
class Lud final : public Workload
{
  public:
    const char *name() const override { return "LUD"; }
    bool regular() const override { return false; }

    unsigned n(SizeClass sc) const
    {
        return sc == SizeClass::Full ? 1024 : 128;
    }
    unsigned steps(SizeClass sc) const
    {
        return sc == SizeClass::Full ? 48 : 12;
    }

    Instance
    instance(SizeClass sc) const override
    {
        const unsigned nn = n(sc);
        KernelBuilder b("lud");
        Reg tid = b.reg();
        b.s2r(tid, SpecialReg::TID);

        Reg xaddr = emitGtidAddr(b, tid, out_a);
        Reg x = b.reg();
        b.ld(x, xaddr);

        Reg k = b.reg(), cond = b.reg();
        b.movi(k, 0);
        b.loop();
        {
            Reg active = b.reg();
            b.isetgt(active, tid, k);
            b.if_(active);
            {
                // x[tid] -= M[k][tid] * x[k]
                Reg maddr = b.reg(), mv = b.reg(), xkaddr = b.reg(),
                    xk = b.reg(), prod = b.reg();
                b.imul(maddr, k, Imm(i32(nn * 4)));
                b.iadd(maddr, maddr, xaddr);
                b.isub(maddr, maddr, Imm(i32(out_a)));
                b.iadd(maddr, maddr, Imm(i32(in_a)));
                b.ld(mv, maddr);
                b.shl(xkaddr, k, Imm(2));
                b.iadd(xkaddr, xkaddr, Imm(i32(out_a)));
                b.ld(xk, xkaddr);
                b.fmul(prod, mv, xk);
                b.fsub(x, x, prod);
                b.st(xaddr, 0, x);
            }
            b.endIf();
            b.bar();
            b.iadd(k, k, Imm(1));
            b.isetlt(cond, k, Imm(i32(steps(sc))));
        }
        b.endLoopIf(cond);

        Instance inst;
        inst.raw = b.build();
        inst.block_threads = nn;
        inst.grid_blocks = 1;
        return inst;
    }

    void
    init(mem::MemoryImage &mem, SizeClass sc) const override
    {
        const unsigned nn = n(sc);
        Rng rng(43);
        for (unsigned k = 0; k < steps(sc); ++k) {
            for (unsigned i = 0; i < nn; ++i) {
                mem.writeF32(in_a + Addr(k * nn + i) * 4,
                             rng.uniform(-0.01f, 0.01f));
            }
        }
        for (unsigned i = 0; i < nn; ++i)
            mem.writeF32(out_a + Addr(i) * 4, rng.uniform(-1.f, 1.f));
    }

    bool
    verify(const mem::MemoryImage &mem, SizeClass sc,
           std::string *why) const override
    {
        const unsigned nn = n(sc);
        Rng rng(43);
        std::vector<float> m(steps(sc) * nn);
        for (auto &v : m)
            v = rng.uniform(-0.01f, 0.01f);
        std::vector<float> x(nn);
        for (auto &v : x)
            v = rng.uniform(-1.f, 1.f);
        for (unsigned k = 0; k < steps(sc); ++k) {
            std::vector<float> nx = x;
            for (unsigned t = k + 1; t < nn; ++t)
                nx[t] = x[t] - m[k * nn + t] * x[k];
            x = nx;
        }
        for (unsigned i = 0; i < nn; ++i) {
            if (!checkF(mem, out_a + Addr(i) * 4, x[i], "lud", i,
                        why)) {
                return false;
            }
        }
        return true;
    }
};

// ================================================================
// Mandelbrot: escape-time loops, block barrier per row.
// ================================================================
class Mandelbrot final : public Workload
{
  public:
    const char *name() const override { return "Mandelbrot"; }
    bool regular() const override { return false; }

    unsigned width(SizeClass sc) const
    {
        return sc == SizeClass::Full ? 1024 : 128;
    }
    unsigned rows(SizeClass sc) const
    {
        return sc == SizeClass::Full ? 8 : 2;
    }
    static constexpr unsigned max_iter = 24;

    Instance
    instance(SizeClass sc) const override
    {
        const unsigned w = width(sc);
        KernelBuilder b("mandelbrot");
        Reg tid = b.reg();
        b.s2r(tid, SpecialReg::TID);

        Reg cre = b.reg(), scale = b.reg(), off = b.reg();
        b.i2f(cre, tid);
        b.fmovi(scale, 3.0f / float(w));
        b.fmul(cre, cre, scale);
        b.fmovi(off, -2.0f);
        b.fadd(cre, cre, off);

        Reg row = b.reg(), rcond = b.reg();
        b.movi(row, 0);
        b.loop();
        {
            Reg cim = b.reg(), rscale = b.reg(), roff = b.reg();
            b.i2f(cim, row);
            b.fmovi(rscale, 2.0f / float(rows(sc)));
            b.fmul(cim, cim, rscale);
            b.fmovi(roff, -1.0f);
            b.fadd(cim, cim, roff);

            Reg zr = b.reg(), zi = b.reg(), it = b.reg(),
                icond = b.reg(), zr2 = b.reg(), zi2 = b.reg(),
                mag = b.reg(), esc = b.reg(), t = b.reg(),
                four = b.reg(), two = b.reg();
            b.fmovi(zr, 0.0f);
            b.fmovi(zi, 0.0f);
            b.fmovi(four, 4.0f);
            b.fmovi(two, 2.0f);
            b.movi(it, 0);
            b.loop();
            {
                b.fmul(zr2, zr, zr);
                b.fmul(zi2, zi, zi);
                b.fadd(mag, zr2, zi2);
                b.fsetgt(esc, mag, four);
                b.breakIf(esc);
                // z = z^2 + c
                b.fmul(t, zr, zi);
                b.fsub(zr, zr2, zi2);
                b.fadd(zr, zr, cre);
                b.fmad(zi, t, two, cim);
                b.iadd(it, it, Imm(1));
                b.isetlt(icond, it, Imm(i32(max_iter)));
            }
            b.endLoopIf(icond);

            Reg idx = b.reg(), oaddr = b.reg();
            b.imul(idx, row, Imm(i32(w)));
            b.iadd(idx, idx, tid);
            b.shl(oaddr, idx, Imm(2));
            b.iadd(oaddr, oaddr, Imm(i32(out_a)));
            b.st(oaddr, 0, it);

            // The thread-block barrier the paper calls out: it
            // prevents warp-splits from running ahead across rows.
            b.bar();
            b.iadd(row, row, Imm(1));
            b.isetlt(rcond, row, Imm(i32(rows(sc))));
        }
        b.endLoopIf(rcond);

        Instance inst;
        inst.raw = b.build();
        inst.block_threads = w;
        inst.grid_blocks = 1;
        return inst;
    }

    void
    init(mem::MemoryImage &, SizeClass) const override
    {
    }

    bool
    verify(const mem::MemoryImage &mem, SizeClass sc,
           std::string *why) const override
    {
        const unsigned w = width(sc);
        for (unsigned row = 0; row < rows(sc); ++row) {
            float cim =
                float(i32(row)) * (2.0f / float(rows(sc))) - 1.0f;
            for (unsigned x = 0; x < w; ++x) {
                float cre =
                    float(i32(x)) * (3.0f / float(w)) - 2.0f;
                float zr = 0.f, zi = 0.f;
                u32 it = 0;
                while (true) {
                    float zr2 = zr * zr, zi2 = zi * zi;
                    if (zr2 + zi2 > 4.0f)
                        break;
                    float t = zr * zi;
                    zr = zr2 - zi2 + cre;
                    zi = t * 2.0f + cim;
                    ++it;
                    if (it >= max_iter)
                        break;
                }
                if (!checkI(mem, out_a + Addr(row * w + x) * 4, it,
                            "mandel", row * w + x, why)) {
                    return false;
                }
            }
        }
        return true;
    }
};

// ================================================================
// Needleman-Wunsch: anti-diagonal wavefront, growing active set.
// ================================================================
class NeedlemanWunsch final : public Workload
{
  public:
    const char *name() const override { return "Needleman-Wunsch"; }
    bool regular() const override { return false; }

    unsigned dim(SizeClass sc) const
    {
        return sc == SizeClass::Full ? 128 : 32;
    }
    unsigned blocks(SizeClass sc) const
    {
        return sc == SizeClass::Full ? 4 : 1;
    }

    // Each block aligns its own pair of sequences. The score matrix
    // is stored diagonal-major -- cell (i, j) lives at
    // (diag = i + j, pos = i) -- the standard GPU layout that makes
    // the wavefront's loads and stores coalesced.
    Addr
    hAddr(unsigned blk, unsigned i, unsigned j, unsigned n) const
    {
        unsigned diag = i + j, pos = i;
        return out_a +
               (Addr(blk) * (2 * n + 1) * (n + 1) +
                Addr(diag * (n + 1) + pos)) *
                   4;
    }

    Instance
    instance(SizeClass sc) const override
    {
        const unsigned n = dim(sc);
        KernelBuilder b("nw");
        Reg tid = b.reg(), cta = b.reg(), hbase = b.reg(),
            abase = b.reg(), bbase = b.reg();
        b.s2r(tid, SpecialReg::TID);
        b.s2r(cta, SpecialReg::CTAID);
        b.imul(hbase, cta, Imm(i32((2 * n + 1) * (n + 1) * 4)));
        b.iadd(hbase, hbase, Imm(i32(out_a)));
        b.imul(abase, cta, Imm(i32(n * 4)));
        b.iadd(bbase, abase, Imm(i32(in_b)));
        b.iadd(abase, abase, Imm(i32(in_a)));

        Reg d = b.reg(), dcond = b.reg();
        b.movi(d, 0);
        b.loop();
        {
            // i = tid+1, j = d - tid + 1 ; active if 0<=d-tid<n
            Reg j0 = b.reg(), active = b.reg(), t = b.reg();
            b.isub(j0, d, tid);
            b.isetge(active, j0, Imm(0));
            b.isetlt(t, j0, Imm(i32(n)));
            b.and_(active, active, t);
            b.if_(active);
            {
                // Diagonal-major addressing: for the cell (i, j) =
                // (tid+1, j0+1) on interior diagonal d, the north /
                // west neighbors sit at (diag d+1, pos tid / tid+1)
                // of the previous wavefront, the diagonal neighbor
                // at (d, tid) -- all coalesced in tid.
                auto diagAddr = [&](Reg pos, i32 diag_off,
                                    i32 pos_off, Reg dst, Reg dd) {
                    Reg idx = b.reg();
                    b.iadd(idx, dd, Imm(diag_off));
                    b.imul(idx, idx, Imm(i32(n + 1)));
                    b.iadd(idx, idx, pos);
                    b.iadd(idx, idx, Imm(pos_off));
                    b.shl(dst, idx, Imm(2));
                    b.iadd(dst, dst, hbase);
                };

                Reg an = b.reg(), aw = b.reg(), ad = b.reg(),
                    vn = b.reg(), vw = b.reg(), vd = b.reg();
                diagAddr(tid, 1, 0, an, d);
                diagAddr(tid, 1, 1, aw, d);
                diagAddr(tid, 0, 0, ad, d);
                b.ld(vn, an);
                b.ld(vw, aw);
                b.ld(vd, ad);

                // score: +2 match / -1 mismatch via sequences
                Reg sa = b.reg(), sb_ = b.reg(), av = b.reg(),
                    bv = b.reg(), eq = b.reg(), sc_ = b.reg(),
                    m2 = b.reg(), m1 = b.reg();
                b.shl(sa, tid, Imm(2));
                b.iadd(sa, sa, abase);
                b.shl(sb_, j0, Imm(2));
                b.iadd(sb_, sb_, bbase);
                b.ld(av, sa);
                b.ld(bv, sb_);
                b.iseteq(eq, av, bv);
                b.movi(m2, 2);
                b.movi(m1, -1);
                b.sel(sc_, eq, m2, m1);

                Reg best = b.reg(), gap = b.reg();
                b.movi(gap, -1);
                b.iadd(vn, vn, gap);
                b.iadd(vw, vw, gap);
                b.iadd(vd, vd, sc_);
                b.imax(best, vn, vw);
                b.imax(best, best, vd);

                Reg out = b.reg();
                diagAddr(tid, 2, 1, out, d);
                b.st(out, 0, best);
            }
            b.endIf();
            b.bar();
            b.iadd(d, d, Imm(1));
            b.isetlt(dcond, d, Imm(i32(2 * n - 1)));
        }
        b.endLoopIf(dcond);

        Instance inst;
        inst.raw = b.build();
        inst.block_threads = n;
        inst.grid_blocks = blocks(sc);
        return inst;
    }

    void
    init(mem::MemoryImage &mem, SizeClass sc) const override
    {
        const unsigned n = dim(sc);
        Rng rng(47);
        for (unsigned blk = 0; blk < blocks(sc); ++blk) {
            for (unsigned i = 0; i < n; ++i) {
                mem.write32(in_a + Addr(blk * n + i) * 4,
                            u32(rng.below(4)));
                mem.write32(in_b + Addr(blk * n + i) * 4,
                            u32(rng.below(4)));
            }
            for (unsigned i = 0; i <= n; ++i) {
                mem.write32(hAddr(blk, i, 0, n), u32(-i32(i)));
                mem.write32(hAddr(blk, 0, i, n), u32(-i32(i)));
            }
        }
    }

    bool
    verify(const mem::MemoryImage &mem, SizeClass sc,
           std::string *why) const override
    {
        const unsigned n = dim(sc);
        Rng rng(47);
        for (unsigned blk = 0; blk < blocks(sc); ++blk) {
            std::vector<u32> a(n), bseq(n);
            for (unsigned i = 0; i < n; ++i) {
                a[i] = u32(rng.below(4));
                bseq[i] = u32(rng.below(4));
            }
            std::vector<i32> h((n + 1) * (n + 1));
            for (unsigned i = 0; i <= n; ++i) {
                h[i * (n + 1)] = -i32(i);
                h[i] = -i32(i);
            }
            for (unsigned i = 1; i <= n; ++i) {
                for (unsigned j = 1; j <= n; ++j) {
                    i32 sc_ = a[i - 1] == bseq[j - 1] ? 2 : -1;
                    i32 best = std::max(
                        {h[(i - 1) * (n + 1) + j] - 1,
                         h[i * (n + 1) + j - 1] - 1,
                         h[(i - 1) * (n + 1) + j - 1] + sc_});
                    h[i * (n + 1) + j] = best;
                }
            }
            for (unsigned i = 1; i <= n; ++i) {
                for (unsigned j = 1; j <= n; ++j) {
                    if (!checkI(mem, hAddr(blk, i, j, n),
                                u32(h[i * (n + 1) + j]), "nw",
                                i * (n + 1) + j, why)) {
                        return false;
                    }
                }
            }
        }
        return true;
    }
};

// ================================================================
// SortingNetworks: bitonic sort, data-dependent swaps per stage.
// ================================================================
class SortingNetworks final : public Workload
{
  public:
    const char *name() const override { return "SortingNetworks"; }
    bool regular() const override { return false; }

    unsigned elems(SizeClass sc) const
    {
        return sc == SizeClass::Full ? 2048 : 256;
    }

    Instance
    instance(SizeClass sc) const override
    {
        const unsigned n = elems(sc);
        KernelBuilder b("bitonic");
        Reg tid = b.reg();
        b.s2r(tid, SpecialReg::TID);

        Reg k = b.reg(), kcond = b.reg();
        b.movi(k, 2);
        b.loop();
        {
            Reg j = b.reg(), jcond = b.reg();
            b.shr(j, k, Imm(1));
            b.loop();
            {
                // idx = 2*tid - (tid & (j-1)); partner = idx + j
                Reg jm = b.reg(), idx = b.reg(), t2 = b.reg(),
                    partner = b.reg();
                b.iadd(jm, j, Imm(-1));
                b.and_(jm, tid, jm);
                b.shl(t2, tid, Imm(1));
                b.isub(idx, t2, jm);
                b.iadd(partner, idx, j);

                // ascending if (idx & k) == 0
                Reg dir = b.reg();
                b.and_(dir, idx, k);
                b.iseteq(dir, dir, Imm(0));

                Reg a0 = b.reg(), a1 = b.reg(), va = b.reg(),
                    vb = b.reg();
                b.shl(a0, idx, Imm(2));
                b.iadd(a0, a0, Imm(i32(out_a)));
                b.shl(a1, partner, Imm(2));
                b.iadd(a1, a1, Imm(i32(out_a)));
                b.ld(va, a0);
                b.ld(vb, a1);

                // swap if (va > vb) == dir
                Reg gt = b.reg(), swap = b.reg();
                b.isetgt(gt, va, vb);
                b.iseteq(swap, gt, dir);
                b.if_(swap);
                {
                    b.st(a0, 0, vb);
                    b.st(a1, 0, va);
                }
                b.endIf();
                b.bar();
                b.shr(j, j, Imm(1));
                b.isetgt(jcond, j, Imm(0));
            }
            b.endLoopIf(jcond);
            b.shl(k, k, Imm(1));
            b.isetle(kcond, k, Imm(i32(n)));
        }
        b.endLoopIf(kcond);

        Instance inst;
        inst.raw = b.build();
        inst.block_threads = n / 2;
        inst.grid_blocks = 1;
        return inst;
    }

    void
    init(mem::MemoryImage &mem, SizeClass sc) const override
    {
        Rng rng(53);
        for (unsigned i = 0; i < elems(sc); ++i)
            mem.write32(out_a + Addr(i) * 4,
                        u32(rng.below(1u << 30)));
    }

    bool
    verify(const mem::MemoryImage &mem, SizeClass sc,
           std::string *why) const override
    {
        const unsigned n = elems(sc);
        Rng rng(53);
        std::vector<u32> v(n);
        for (auto &x : v)
            x = u32(rng.below(1u << 30));
        std::sort(v.begin(), v.end());
        for (unsigned i = 0; i < n; ++i) {
            if (!checkI(mem, out_a + Addr(i) * 4, v[i], "sort", i,
                        why)) {
                return false;
            }
        }
        return true;
    }
};

// ================================================================
// SRAD: diffusion coefficient with balanced branch on gradient.
// ================================================================
class Srad final : public Workload
{
  public:
    const char *name() const override { return "SRAD"; }
    bool regular() const override { return false; }

    unsigned dim(SizeClass sc) const
    {
        // Chip: 256x256 image = 64 CTAs of 1024 threads.
        return sc == SizeClass::Chip   ? 256
               : sc == SizeClass::Full ? 64
                                       : 16;
    }

    Instance
    instance(SizeClass sc) const override
    {
        const unsigned n = dim(sc);
        KernelBuilder b("srad");
        Reg gtid = b.reg();
        b.s2r(gtid, SpecialReg::GTID);
        Reg x = b.reg(), y = b.reg();
        b.and_(x, gtid, Imm(i32(n - 1)));
        b.shr(y, gtid, Imm(i32(std::countr_zero(n))));

        Reg zero = b.reg(), maxi = b.reg();
        b.movi(zero, 0);
        b.movi(maxi, i32(n - 1));

        auto loadAt = [&](Reg xx, Reg yy, Reg dst) {
            Reg idx = b.reg(), addr = b.reg();
            b.imul(idx, yy, Imm(i32(n)));
            b.iadd(idx, idx, xx);
            b.shl(addr, idx, Imm(2));
            b.iadd(addr, addr, Imm(i32(in_a)));
            b.ld(dst, addr);
        };

        Reg xm = b.reg(), xp = b.reg(), ym = b.reg(), yp = b.reg();
        b.iadd(xm, x, Imm(-1));
        b.imax(xm, xm, zero);
        b.iadd(xp, x, Imm(1));
        b.imin(xp, xp, maxi);
        b.iadd(ym, y, Imm(-1));
        b.imax(ym, ym, zero);
        b.iadd(yp, y, Imm(1));
        b.imin(yp, yp, maxi);

        Reg c = b.reg(), l = b.reg(), r = b.reg(), u = b.reg(),
            d = b.reg();
        loadAt(x, y, c);
        loadAt(xm, y, l);
        loadAt(xp, y, r);
        loadAt(x, ym, u);
        loadAt(x, yp, d);

        // gradient magnitude ~ sum of squared differences
        Reg g = b.reg(), t = b.reg();
        b.fsub(t, l, c);
        b.fmul(g, t, t);
        b.fsub(t, r, c);
        b.fmad(g, t, t, g);
        b.fsub(t, u, c);
        b.fmad(g, t, t, g);
        b.fsub(t, d, c);
        b.fmad(g, t, t, g);

        // Smooth region: SFU-based coefficient; edge region: MAD
        // polynomial fallback -- a balanced branch whose two paths
        // exercise *different* unit classes, so SBI can overlap
        // them on distinct groups.
        Reg thresh = b.reg(), lt = b.reg(), coeff = b.reg();
        b.fmovi(thresh, 0.5f);
        b.fsetlt(lt, g, thresh);
        b.if_(lt);
        {
            Reg one = b.reg();
            b.fmovi(one, 1.0f);
            b.fadd(coeff, g, one);
            b.rcp(coeff, coeff);
        }
        b.else_();
        {
            Reg half = b.reg(), eighth = b.reg(), one = b.reg();
            b.fmovi(half, -0.5f);
            b.fmovi(eighth, 0.125f);
            b.fmovi(one, 1.0f);
            b.fmul(coeff, g, eighth);
            b.fmad(coeff, coeff, g, one);
            b.fmad(coeff, g, half, coeff);
            b.fabs_(coeff, coeff);
        }
        b.endIf();

        Reg out = b.reg();
        b.fmul(out, coeff, c);
        Reg oaddr = emitGtidAddr(b, gtid, out_a);
        b.st(oaddr, 0, out);

        Instance inst;
        inst.raw = b.build();
        unsigned total = n * n;
        inst.block_threads = std::min(total, 1024u);
        inst.grid_blocks = total / inst.block_threads;
        return inst;
    }

    void
    init(mem::MemoryImage &mem, SizeClass sc) const override
    {
        const unsigned n = dim(sc);
        Rng rng(59);
        for (unsigned i = 0; i < n * n; ++i)
            mem.writeF32(in_a + Addr(i) * 4, rng.uniform(0.f, 1.5f));
    }

    bool
    verify(const mem::MemoryImage &mem, SizeClass sc,
           std::string *why) const override
    {
        const unsigned n = dim(sc);
        std::vector<float> img(n * n);
        Rng rng(59);
        for (auto &v : img)
            v = rng.uniform(0.f, 1.5f);
        auto at = [&](int xx, int yy) {
            xx = std::clamp(xx, 0, int(n) - 1);
            yy = std::clamp(yy, 0, int(n) - 1);
            return img[size_t(yy) * n + size_t(xx)];
        };
        for (unsigned y = 0; y < n; ++y) {
            for (unsigned x = 0; x < n; ++x) {
                float c = at(int(x), int(y));
                float g = 0.f, t;
                t = at(int(x) - 1, int(y)) - c;
                g = t * t;
                t = at(int(x) + 1, int(y)) - c;
                g = t * t + g;
                t = at(int(x), int(y) - 1) - c;
                g = t * t + g;
                t = at(int(x), int(y) + 1) - c;
                g = t * t + g;
                float coeff;
                if (g < 0.5f) {
                    coeff = 1.0f / (g + 1.0f);
                } else {
                    coeff = g * 0.125f;
                    coeff = coeff * g + 1.0f;
                    coeff = g * -0.5f + coeff;
                    coeff = std::fabs(coeff);
                }
                float out = coeff * c;
                if (!checkF(mem, out_a + Addr(y * n + x) * 4, out,
                            "srad", y * n + x, why)) {
                    return false;
                }
            }
        }
        return true;
    }
};

} // namespace

std::vector<const Workload *>
irregularSuite()
{
    static const Bfs bfs;
    static const ConvSep conv;
    static const Eigenvalues eig;
    static const Histogram hist;
    static const Lud lud;
    static const Mandelbrot mandel;
    static const NeedlemanWunsch nw;
    static const SortingNetworks sort;
    static const Srad srad;
    return {&bfs, &conv, &eig, &hist, &lud, &mandel, &nw, &sort,
            &srad};
}

} // namespace siwi::workloads
