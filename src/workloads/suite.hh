/**
 * @file
 * Internal: per-suite workload factories feeding the registry.
 */

#ifndef SIWI_WORKLOADS_SUITE_HH
#define SIWI_WORKLOADS_SUITE_HH

#include <vector>

#include "workloads/workload.hh"

namespace siwi::workloads {

/** The ten regular workloads (Figure 7a). */
std::vector<const Workload *> regularSuite();

/** The nine non-TMD irregular workloads (Figure 7b). */
std::vector<const Workload *> irregularSuite();

/** TMD1 and TMD2 (Figure 7b, excluded from means). */
std::vector<const Workload *> tmdSuite();

} // namespace siwi::workloads

#endif // SIWI_WORKLOADS_SUITE_HH
