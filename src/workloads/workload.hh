/**
 * @file
 * The benchmark suite of the paper's evaluation (section 5.1).
 *
 * Each workload reproduces the divergence and memory signature of
 * one Rodinia / CUDA SDK / TMD benchmark as a kernel in our ISA (see
 * the substitution table in docs/DESIGN.md). Workloads generate their own
 * deterministic inputs and verify the device results against a host
 * reference implementation, so every pipeline configuration is
 * checked for functional correctness, not just timed.
 */

#ifndef SIWI_WORKLOADS_WORKLOAD_HH
#define SIWI_WORKLOADS_WORKLOAD_HH

#include <string>
#include <string_view>
#include <vector>

#include "cfg/compiler.hh"
#include "core/gpu.hh"
#include "core/stats.hh"
#include "isa/program.hh"
#include "mem/memory_image.hh"
#include "pipeline/config.hh"

namespace siwi::workloads {

/**
 * Problem size: Tiny for unit tests, Full for the single-SM paper
 * benches (grids sized for one SM), Chip for the multi-SM scaling
 * study — the same kernels over working sets large enough to keep
 * a 64-SM chip busy (>=64 CTAs). Only the workloads named by
 * runner::scalingSweep() implement Chip; the rest fall back to
 * their Tiny size.
 */
enum class SizeClass { Tiny, Full, Chip };

/** A concrete kernel instance ready to compile and launch. */
struct Instance
{
    isa::Program raw;            //!< uncompiled program
    cfg::CompileOptions compile; //!< layout options (TMD1!)
    unsigned grid_blocks = 1;
    unsigned block_threads = 256;
};

/**
 * One benchmark.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual const char *name() const = 0;

    /** Regular vs irregular classification (Figure 7a vs 7b). */
    virtual bool regular() const = 0;

    /**
     * Excluded from the Figure 7 means? The paper excludes TMD1/2:
     * they measure thread-frontier reconvergence, not SBI/SWI.
     */
    virtual bool excludedFromMeans() const { return false; }

    virtual Instance instance(SizeClass sc) const = 0;

    /** Write the input data set into @p mem. */
    virtual void init(mem::MemoryImage &mem, SizeClass sc) const = 0;

    /**
     * Check device results against the host reference.
     * @param why filled with a diagnostic on failure (may be null)
     */
    virtual bool verify(const mem::MemoryImage &mem, SizeClass sc,
                        std::string *why) const = 0;
};

/** All 21 workloads, regular first, in the paper's plot order. */
const std::vector<const Workload *> &allWorkloads();

/** Lookup by name; nullptr if unknown. */
const Workload *findWorkload(std::string_view name);

std::vector<const Workload *> regularWorkloads();
std::vector<const Workload *> irregularWorkloads();

/** Outcome of a complete run (compile, init, launch, verify). */
struct RunResult
{
    core::SimStats stats;
    bool verified = false;
    std::string verify_msg;
    unsigned layout_violations = 0;
    /**
     * Cycles fast-forwarded by event-driven skipping (see
     * core::LaunchConfig::cycle_skip). Diagnostic only — stats is
     * bit-identical whether or not skipping ran; zero when
     * cycle_skip was off or every cycle had work.
     */
    u64 skipped_cycles = 0;
};

/** Compile, initialize, launch and verify one workload. */
RunResult runWorkload(const Workload &wl,
                      const pipeline::SMConfig &cfg, SizeClass sc);

/**
 * As above on a chip of @p num_sms SMs (core::GpuConfig::make):
 * num_sms == 1 is the paper's private-channel single-SM setup,
 * more SMs share the chip L2 + DRAM channel. @p cycle_skip
 * forwards to core::LaunchConfig::cycle_skip (observationally
 * equivalent either way; off is the cross-check mode).
 */
RunResult runWorkload(const Workload &wl,
                      const pipeline::SMConfig &cfg, SizeClass sc,
                      unsigned num_sms, bool cycle_skip = true);

/**
 * As above from a fully-resolved chip configuration — the runner
 * uses this so chip-level overrides (L2 slicing, DRAM channels,
 * the interconnect) reach the simulator instead of being
 * re-derived from the SM config alone.
 */
RunResult runWorkload(const Workload &wl,
                      const core::GpuConfig &chip, SizeClass sc,
                      bool cycle_skip = true);

} // namespace siwi::workloads

#endif // SIWI_WORKLOADS_WORKLOAD_HH
