/**
 * @file
 * The ten regular workloads of Figure 7(a).
 *
 * "Regular" per the paper: average IPC with 64-wide warps above 30 --
 * little or no branch divergence. Each kernel mirrors the arithmetic
 * and memory signature of its namesake (see docs/DESIGN.md).
 */

#include "workloads/suite.hh"

#include <cmath>
#include <sstream>

#include "common/log.hh"
#include "common/rng.hh"
#include "isa/builder.hh"

namespace siwi::workloads {

namespace {

using isa::Imm;
using isa::KernelBuilder;
using isa::Reg;
using isa::SpecialReg;

constexpr Addr in_a = 0x0100000;
constexpr Addr in_b = 0x0200000;
constexpr Addr out_a = 0x0400000;
constexpr Addr out_b = 0x0500000;

/** Shared verification helper: compare one float word. */
bool
checkF(const mem::MemoryImage &mem, Addr addr, float expect,
       const char *what, size_t i, std::string *why)
{
    float got = mem.readF32(addr);
    float tol = 1e-4f * (1.0f + std::fabs(expect));
    if (std::fabs(got - expect) <= tol)
        return true;
    if (why) {
        std::ostringstream os;
        os << what << "[" << i << "]: expected " << expect << ", got "
           << got;
        *why = os.str();
    }
    return false;
}

bool
checkI(const mem::MemoryImage &mem, Addr addr, u32 expect,
       const char *what, size_t i, std::string *why)
{
    u32 got = mem.read32(addr);
    if (got == expect)
        return true;
    if (why) {
        std::ostringstream os;
        os << what << "[" << i << "]: expected " << expect << ", got "
           << got;
        *why = os.str();
    }
    return false;
}

/** Emit gtid -> r, and byte address base + gtid*4 -> addr. */
Reg
emitGtidAddr(KernelBuilder &b, Reg gtid, Addr base)
{
    Reg addr = b.reg();
    b.shl(addr, gtid, Imm(2));
    b.iadd(addr, addr, Imm(i32(base)));
    return addr;
}

// ================================================================
// BlackScholes: pure streaming float arithmetic with SFU calls.
// ================================================================
class BlackScholes final : public Workload
{
  public:
    const char *name() const override { return "BlackScholes"; }
    bool regular() const override { return true; }

    unsigned n(SizeClass sc) const
    {
        // Chip: 128 CTAs, enough to keep a 64-SM chip busy.
        return sc == SizeClass::Chip   ? 131072
               : sc == SizeClass::Full ? 4096
                                       : 256;
    }

    Instance
    instance(SizeClass sc) const override
    {
        KernelBuilder b("blackscholes");
        Reg gtid = b.reg();
        b.s2r(gtid, SpecialReg::GTID);
        Reg sa = emitGtidAddr(b, gtid, in_a);
        Reg ka = emitGtidAddr(b, gtid, in_b);
        Reg s = b.reg(), k = b.reg();
        b.ld(s, sa);
        b.ld(k, ka);

        Reg ratio = b.reg(), d1 = b.reg();
        b.rcp(ratio, k);
        b.fmul(ratio, s, ratio); // s/k
        b.log2_(d1, ratio);
        Reg half = b.reg();
        b.fmovi(half, 0.75f);
        b.fmad(d1, d1, half, half); // d1 = log2(s/k)*0.75 + 0.75

        // cdf(x) ~ 1 / (1 + exp2(-1.5 x))
        Reg cdf = b.reg(), e = b.reg(), c15 = b.reg(), one = b.reg();
        b.fmovi(c15, -1.5f);
        b.fmovi(one, 1.0f);
        b.fmul(e, d1, c15);
        b.exp2_(e, e);
        b.fadd(e, e, one);
        b.rcp(cdf, e);

        // call = s*cdf - k*(cdf*0.8); put = call - s + k
        Reg call = b.reg(), put = b.reg(), kc = b.reg(),
            c08 = b.reg();
        b.fmovi(c08, 0.8f);
        b.fmul(kc, cdf, c08);
        b.fmul(kc, k, kc);
        b.fmul(call, s, cdf);
        b.fsub(call, call, kc);
        b.fsub(put, call, s);
        b.fadd(put, put, k);

        Reg oa = emitGtidAddr(b, gtid, out_a);
        Reg ob = emitGtidAddr(b, gtid, out_b);
        b.st(oa, 0, call);
        b.st(ob, 0, put);

        Instance inst;
        inst.raw = b.build();
        inst.grid_blocks = n(sc) / std::min(n(sc), 1024u);
        inst.block_threads = std::min(n(sc), 1024u);
        return inst;
    }

    void
    init(mem::MemoryImage &mem, SizeClass sc) const override
    {
        Rng rng(42);
        for (unsigned i = 0; i < n(sc); ++i) {
            mem.writeF32(in_a + Addr(i) * 4, rng.uniform(5.f, 30.f));
            mem.writeF32(in_b + Addr(i) * 4, rng.uniform(1.f, 100.f));
        }
    }

    bool
    verify(const mem::MemoryImage &mem, SizeClass sc,
           std::string *why) const override
    {
        Rng rng(42);
        for (unsigned i = 0; i < n(sc); ++i) {
            float s = rng.uniform(5.f, 30.f);
            float k = rng.uniform(1.f, 100.f);
            float ratio = s * (1.0f / k);
            float d1 = std::log2(ratio) * 0.75f + 0.75f;
            float e = std::exp2(d1 * -1.5f) + 1.0f;
            float cdf = 1.0f / e;
            float call = s * cdf - k * (cdf * 0.8f);
            float put = call - s + k;
            if (!checkF(mem, out_a + Addr(i) * 4, call, "call", i,
                        why) ||
                !checkF(mem, out_b + Addr(i) * 4, put, "put", i,
                        why)) {
                return false;
            }
        }
        return true;
    }
};

// ================================================================
// MatrixMul: tiled dense GEMM slice; broadcast + coalesced loads.
// ================================================================
class MatrixMul final : public Workload
{
  public:
    const char *name() const override { return "MatrixMul"; }
    bool regular() const override { return true; }

    unsigned dim(SizeClass sc) const
    {
        // Chip: 256x256 output = 64 CTAs of 1024 threads.
        return sc == SizeClass::Chip   ? 256
               : sc == SizeClass::Full ? 64
                                       : 16;
    }
    static constexpr unsigned kdim = 16;

    Instance
    instance(SizeClass sc) const override
    {
        const unsigned n = dim(sc);
        KernelBuilder b("matrixmul");
        Reg gtid = b.reg();
        b.s2r(gtid, SpecialReg::GTID);
        Reg r = b.reg(), c = b.reg();
        b.shr(r, gtid, Imm(i32(std::countr_zero(n))));
        b.and_(c, gtid, Imm(i32(n - 1)));

        // acc = sum_k A[r*kdim+k] * B[k*n+c]
        Reg acc = b.reg(), k = b.reg(), aaddr = b.reg(),
            baddr = b.reg(), av = b.reg(), bv = b.reg();
        b.fmovi(acc, 0.0f);
        b.movi(k, 0);
        // aaddr = in_a + (r*kdim)*4 ; baddr = in_b + c*4
        b.imul(aaddr, r, Imm(i32(kdim * 4)));
        b.iadd(aaddr, aaddr, Imm(i32(in_a)));
        b.shl(baddr, c, Imm(2));
        b.iadd(baddr, baddr, Imm(i32(in_b)));

        Reg cond = b.reg();
        b.loop();
        {
            b.ld(av, aaddr);
            b.ld(bv, baddr);
            b.fmad(acc, av, bv, acc);
            b.iadd(aaddr, aaddr, Imm(4));
            b.iadd(baddr, baddr, Imm(i32(n * 4)));
            b.iadd(k, k, Imm(1));
            b.isetlt(cond, k, Imm(i32(kdim)));
        }
        b.endLoopIf(cond);

        Reg oaddr = emitGtidAddr(b, gtid, out_a);
        b.st(oaddr, 0, acc);

        Instance inst;
        inst.raw = b.build();
        unsigned total = n * n;
        inst.block_threads = std::min(total, 1024u);
        inst.grid_blocks = total / inst.block_threads;
        return inst;
    }

    void
    init(mem::MemoryImage &mem, SizeClass sc) const override
    {
        const unsigned n = dim(sc);
        Rng rng(7);
        for (unsigned i = 0; i < n * kdim; ++i)
            mem.writeF32(in_a + Addr(i) * 4, rng.uniform(-1.f, 1.f));
        for (unsigned i = 0; i < kdim * n; ++i)
            mem.writeF32(in_b + Addr(i) * 4, rng.uniform(-1.f, 1.f));
    }

    bool
    verify(const mem::MemoryImage &mem, SizeClass sc,
           std::string *why) const override
    {
        const unsigned n = dim(sc);
        std::vector<float> a(n * kdim), bm(kdim * n);
        Rng rng(7);
        for (auto &v : a)
            v = rng.uniform(-1.f, 1.f);
        for (auto &v : bm)
            v = rng.uniform(-1.f, 1.f);
        for (unsigned r = 0; r < n; ++r) {
            for (unsigned c = 0; c < n; ++c) {
                float acc = 0.0f;
                for (unsigned k = 0; k < kdim; ++k)
                    acc = a[r * kdim + k] * bm[k * n + c] + acc;
                if (!checkF(mem, out_a + Addr(r * n + c) * 4, acc,
                            "C", r * n + c, why)) {
                    return false;
                }
            }
        }
        return true;
    }
};

// ================================================================
// Transpose: coalesced loads, maximally strided stores (LSU-bound).
// ================================================================
class Transpose final : public Workload
{
  public:
    const char *name() const override { return "Transpose"; }
    bool regular() const override { return true; }

    unsigned dim(SizeClass sc) const
    {
        // Chip: 256x256 matrix = 64 CTAs of 1024 threads.
        return sc == SizeClass::Chip   ? 256
               : sc == SizeClass::Full ? 64
                                       : 16;
    }

    Instance
    instance(SizeClass sc) const override
    {
        const unsigned n = dim(sc);
        KernelBuilder b("transpose");
        Reg gtid = b.reg();
        b.s2r(gtid, SpecialReg::GTID);
        Reg x = b.reg(), y = b.reg();
        b.and_(x, gtid, Imm(i32(n - 1)));
        b.shr(y, gtid, Imm(i32(std::countr_zero(n))));

        Reg iaddr = emitGtidAddr(b, gtid, in_a);
        Reg v = b.reg();
        b.ld(v, iaddr);

        Reg oaddr = b.reg(), t = b.reg();
        b.imul(oaddr, x, Imm(i32(n * 4)));
        b.shl(t, y, Imm(2));
        b.iadd(oaddr, oaddr, t);
        b.iadd(oaddr, oaddr, Imm(i32(out_a)));
        b.st(oaddr, 0, v);

        Instance inst;
        inst.raw = b.build();
        unsigned total = n * n;
        inst.block_threads = std::min(total, 1024u);
        inst.grid_blocks = total / inst.block_threads;
        return inst;
    }

    void
    init(mem::MemoryImage &mem, SizeClass sc) const override
    {
        const unsigned n = dim(sc);
        for (unsigned i = 0; i < n * n; ++i)
            mem.write32(in_a + Addr(i) * 4, i * 2654435761u);
    }

    bool
    verify(const mem::MemoryImage &mem, SizeClass sc,
           std::string *why) const override
    {
        const unsigned n = dim(sc);
        for (unsigned y = 0; y < n; ++y) {
            for (unsigned x = 0; x < n; ++x) {
                u32 expect = (y * n + x) * 2654435761u;
                if (!checkI(mem, out_a + Addr(x * n + y) * 4, expect,
                            "T", x * n + y, why)) {
                    return false;
                }
            }
        }
        return true;
    }
};

// ================================================================
// 3DFD: finite-difference stencil, branchless clamped halo.
// ================================================================
class Fd3d final : public Workload
{
  public:
    const char *name() const override { return "3DFD"; }
    bool regular() const override { return true; }

    unsigned n(SizeClass sc) const
    {
        return sc == SizeClass::Full ? 4096 : 256;
    }

    Instance
    instance(SizeClass sc) const override
    {
        const unsigned nn = n(sc);
        KernelBuilder b("fd3d");
        Reg gtid = b.reg();
        b.s2r(gtid, SpecialReg::GTID);

        Reg zero = b.reg(), maxi = b.reg();
        b.movi(zero, 0);
        b.movi(maxi, i32(nn - 1));

        Reg acc = b.reg(), idx = b.reg(), addr = b.reg(),
            v = b.reg(), w = b.reg();
        b.fmovi(acc, 0.0f);
        const float weights[5] = {0.1f, 0.2f, 0.4f, 0.2f, 0.1f};
        for (int off = -2; off <= 2; ++off) {
            b.iadd(idx, gtid, Imm(off));
            b.imax(idx, idx, zero);
            b.imin(idx, idx, maxi);
            b.shl(addr, idx, Imm(2));
            b.iadd(addr, addr, Imm(i32(in_a)));
            b.ld(v, addr);
            b.fmovi(w, weights[off + 2]);
            b.fmad(acc, v, w, acc);
        }
        Reg oaddr = emitGtidAddr(b, gtid, out_a);
        b.st(oaddr, 0, acc);

        Instance inst;
        inst.raw = b.build();
        inst.block_threads = std::min(nn, 1024u);
        inst.grid_blocks = nn / inst.block_threads;
        return inst;
    }

    void
    init(mem::MemoryImage &mem, SizeClass sc) const override
    {
        Rng rng(11);
        for (unsigned i = 0; i < n(sc); ++i)
            mem.writeF32(in_a + Addr(i) * 4, rng.uniform(-2.f, 2.f));
    }

    bool
    verify(const mem::MemoryImage &mem, SizeClass sc,
           std::string *why) const override
    {
        const unsigned nn = n(sc);
        std::vector<float> in(nn);
        Rng rng(11);
        for (auto &v : in)
            v = rng.uniform(-2.f, 2.f);
        const float weights[5] = {0.1f, 0.2f, 0.4f, 0.2f, 0.1f};
        for (unsigned i = 0; i < nn; ++i) {
            float acc = 0.0f;
            for (int off = -2; off <= 2; ++off) {
                int idx = std::clamp<int>(int(i) + off, 0,
                                          int(nn) - 1);
                acc = in[size_t(idx)] * weights[off + 2] + acc;
            }
            if (!checkF(mem, out_a + Addr(i) * 4, acc, "fd", i, why))
                return false;
        }
        return true;
    }
};

// ================================================================
// BinomialOptions: compute-bound uniform per-thread iteration.
// ================================================================
class BinomialOptions final : public Workload
{
  public:
    const char *name() const override { return "BinomialOptions"; }
    bool regular() const override { return true; }

    unsigned n(SizeClass sc) const
    {
        return sc == SizeClass::Full ? 2048 : 256;
    }
    unsigned steps(SizeClass sc) const
    {
        return sc == SizeClass::Full ? 32 : 8;
    }

    Instance
    instance(SizeClass sc) const override
    {
        KernelBuilder b("binomial");
        Reg gtid = b.reg();
        b.s2r(gtid, SpecialReg::GTID);
        Reg iaddr = emitGtidAddr(b, gtid, in_a);
        Reg s = b.reg();
        b.ld(s, iaddr);

        Reg v = b.reg(), scale = b.reg();
        b.fmovi(scale, 0.03125f);
        b.fmul(v, s, scale);
        b.exp2_(v, v);

        // Two independent recombination chains (the real kernel
        // walks many independent tree nodes per thread).
        Reg w = b.reg(), up = b.reg(), down = b.reg(), k = b.reg(),
            cond = b.reg();
        b.fmul(w, s, scale);
        b.fmovi(up, 1.01f);
        b.fmovi(down, 0.02f);
        b.movi(k, 0);
        b.loop();
        {
            b.fmad(v, v, up, down);
            b.fmad(w, w, down, up);
            b.fmul(v, v, scale);
            b.fmul(w, w, scale);
            b.fmad(v, v, up, down);
            b.fmad(w, w, up, down);
            b.iadd(k, k, Imm(1));
            b.isetlt(cond, k, Imm(i32(steps(sc))));
        }
        b.endLoopIf(cond);
        b.fadd(v, v, w);

        Reg oaddr = emitGtidAddr(b, gtid, out_a);
        b.st(oaddr, 0, v);

        Instance inst;
        inst.raw = b.build();
        inst.block_threads = std::min(n(sc), 1024u);
        inst.grid_blocks = n(sc) / inst.block_threads;
        return inst;
    }

    void
    init(mem::MemoryImage &mem, SizeClass sc) const override
    {
        Rng rng(13);
        for (unsigned i = 0; i < n(sc); ++i)
            mem.writeF32(in_a + Addr(i) * 4, rng.uniform(1.f, 64.f));
    }

    bool
    verify(const mem::MemoryImage &mem, SizeClass sc,
           std::string *why) const override
    {
        Rng rng(13);
        for (unsigned i = 0; i < n(sc); ++i) {
            float s = rng.uniform(1.f, 64.f);
            float v = std::exp2(s * 0.03125f);
            float w = s * 0.03125f;
            for (unsigned k = 0; k < steps(sc); ++k) {
                v = v * 1.01f + 0.02f;
                w = w * 0.02f + 1.01f;
                v = v * 0.03125f;
                w = w * 0.03125f;
                v = v * 1.01f + 0.02f;
                w = w * 1.01f + 0.02f;
            }
            v = v + w;
            if (!checkF(mem, out_a + Addr(i) * 4, v, "bin", i, why))
                return false;
        }
        return true;
    }
};

// ================================================================
// FastWalshTransform: barrier-separated butterfly stages.
// ================================================================
class FastWalsh final : public Workload
{
  public:
    const char *name() const override { return "FastWalshTransform"; }
    bool regular() const override { return true; }

    unsigned elems(SizeClass sc) const
    {
        return sc == SizeClass::Full ? 2048 : 256;
    }

    Instance
    instance(SizeClass sc) const override
    {
        const unsigned n = elems(sc);
        const unsigned threads = n / 2;
        KernelBuilder b("fwt");
        Reg tid = b.reg();
        b.s2r(tid, SpecialReg::TID);

        // for stride s = n/2 .. 1 (halving): butterfly on
        // (i0, i0+s) where i0 = 2*t - (t & (s-1)).
        Reg s = b.reg(), cond = b.reg();
        b.movi(s, i32(n / 2));
        b.loop();
        {
            Reg smask = b.reg(), i0 = b.reg(), t2 = b.reg();
            b.iadd(smask, s, Imm(-1));
            b.and_(smask, tid, smask); // t & (s-1)
            b.shl(t2, tid, Imm(1));
            b.isub(i0, t2, smask);
            // i0 = 2t - (t&(s-1)) ... wrong: need 2t - (t&(s-1))?
            // Standard: i0 = 2*t - (t mod s). Keep as computed.
            Reg a0 = b.reg(), a1 = b.reg(), va = b.reg(),
                vb = b.reg(), sum = b.reg(), diff = b.reg();
            b.shl(a0, i0, Imm(2));
            b.iadd(a0, a0, Imm(i32(out_a)));
            b.shl(a1, s, Imm(2));
            b.iadd(a1, a0, a1);
            b.ld(va, a0);
            b.ld(vb, a1);
            b.fadd(sum, va, vb);
            b.fsub(diff, va, vb);
            b.bar();
            b.st(a0, 0, sum);
            b.st(a1, 0, diff);
            b.bar();
            b.shr(s, s, Imm(1));
            b.isetgt(cond, s, Imm(0));
        }
        b.endLoopIf(cond);

        Instance inst;
        inst.raw = b.build();
        inst.block_threads = threads;
        inst.grid_blocks = 1;
        return inst;
    }

    void
    init(mem::MemoryImage &mem, SizeClass sc) const override
    {
        Rng rng(17);
        // In-place in out_a.
        for (unsigned i = 0; i < elems(sc); ++i)
            mem.writeF32(out_a + Addr(i) * 4,
                         rng.uniform(-4.f, 4.f));
    }

    bool
    verify(const mem::MemoryImage &mem, SizeClass sc,
           std::string *why) const override
    {
        const unsigned n = elems(sc);
        std::vector<float> v(n);
        Rng rng(17);
        for (auto &x : v)
            x = rng.uniform(-4.f, 4.f);
        for (unsigned s = n / 2; s >= 1; s /= 2) {
            std::vector<float> nv = v;
            for (unsigned t = 0; t < n / 2; ++t) {
                unsigned i0 = 2 * t - (t & (s - 1));
                nv[i0] = v[i0] + v[i0 + s];
                nv[i0 + s] = v[i0] - v[i0 + s];
            }
            v = nv;
        }
        for (unsigned i = 0; i < n; ++i) {
            if (!checkF(mem, out_a + Addr(i) * 4, v[i], "fwt", i,
                        why)) {
                return false;
            }
        }
        return true;
    }
};

// ================================================================
// DWTHaar1D: single wavelet level; stride-2 gathers.
// ================================================================
class DwtHaar final : public Workload
{
  public:
    const char *name() const override { return "DWTHaar1D"; }
    bool regular() const override { return true; }

    unsigned n(SizeClass sc) const
    {
        return sc == SizeClass::Full ? 4096 : 256;
    }

    Instance
    instance(SizeClass sc) const override
    {
        const unsigned nn = n(sc);
        KernelBuilder b("dwt");
        Reg gtid = b.reg();
        b.s2r(gtid, SpecialReg::GTID);
        Reg a0 = b.reg();
        b.shl(a0, gtid, Imm(3)); // (2*gtid)*4
        b.iadd(a0, a0, Imm(i32(in_a)));
        Reg va = b.reg(), vb = b.reg();
        b.ld(va, a0);
        b.ld(vb, a0, 4);
        Reg half = b.reg(), avg = b.reg(), diff = b.reg();
        b.fmovi(half, 0.70710678f);
        b.fadd(avg, va, vb);
        b.fmul(avg, avg, half);
        b.fsub(diff, va, vb);
        b.fmul(diff, diff, half);
        Reg oa = emitGtidAddr(b, gtid, out_a);
        Reg ob = b.reg();
        b.iadd(ob, oa, Imm(i32(nn * 4)));
        b.st(oa, 0, avg);
        b.st(ob, 0, diff);

        Instance inst;
        inst.raw = b.build();
        inst.block_threads = std::min(nn, 1024u);
        inst.grid_blocks = nn / inst.block_threads;
        return inst;
    }

    void
    init(mem::MemoryImage &mem, SizeClass sc) const override
    {
        Rng rng(19);
        for (unsigned i = 0; i < 2 * n(sc); ++i)
            mem.writeF32(in_a + Addr(i) * 4, rng.uniform(-8.f, 8.f));
    }

    bool
    verify(const mem::MemoryImage &mem, SizeClass sc,
           std::string *why) const override
    {
        const unsigned nn = n(sc);
        std::vector<float> in(2 * nn);
        Rng rng(19);
        for (auto &x : in)
            x = rng.uniform(-8.f, 8.f);
        for (unsigned i = 0; i < nn; ++i) {
            float avg = (in[2 * i] + in[2 * i + 1]) * 0.70710678f;
            float diff = (in[2 * i] - in[2 * i + 1]) * 0.70710678f;
            if (!checkF(mem, out_a + Addr(i) * 4, avg, "avg", i,
                        why) ||
                !checkF(mem, out_a + Addr(nn + i) * 4, diff, "diff",
                        i, why)) {
                return false;
            }
        }
        return true;
    }
};

// ================================================================
// Hotspot: 2D 5-point stencil, two input grids, clamped borders.
// ================================================================
class Hotspot final : public Workload
{
  public:
    const char *name() const override { return "Hotspot"; }
    bool regular() const override { return true; }

    unsigned dim(SizeClass sc) const
    {
        return sc == SizeClass::Full ? 64 : 16;
    }

    Instance
    instance(SizeClass sc) const override
    {
        const unsigned n = dim(sc);
        KernelBuilder b("hotspot");
        Reg gtid = b.reg();
        b.s2r(gtid, SpecialReg::GTID);
        Reg x = b.reg(), y = b.reg();
        b.and_(x, gtid, Imm(i32(n - 1)));
        b.shr(y, gtid, Imm(i32(std::countr_zero(n))));

        Reg zero = b.reg(), maxi = b.reg();
        b.movi(zero, 0);
        b.movi(maxi, i32(n - 1));

        auto loadAt = [&](Reg xx, Reg yy, Reg dst) {
            Reg idx = b.reg(), addr = b.reg();
            b.imul(idx, yy, Imm(i32(n)));
            b.iadd(idx, idx, xx);
            b.shl(addr, idx, Imm(2));
            b.iadd(addr, addr, Imm(i32(in_a)));
            b.ld(dst, addr);
        };

        Reg xm = b.reg(), xp = b.reg(), ym = b.reg(), yp = b.reg();
        b.iadd(xm, x, Imm(-1));
        b.imax(xm, xm, zero);
        b.iadd(xp, x, Imm(1));
        b.imin(xp, xp, maxi);
        b.iadd(ym, y, Imm(-1));
        b.imax(ym, ym, zero);
        b.iadd(yp, y, Imm(1));
        b.imin(yp, yp, maxi);

        Reg c = b.reg(), l = b.reg(), r = b.reg(), u = b.reg(),
            d = b.reg();
        loadAt(x, y, c);
        loadAt(xm, y, l);
        loadAt(xp, y, r);
        loadAt(x, ym, u);
        loadAt(x, yp, d);

        Reg p = b.reg();
        {
            Reg paddr = emitGtidAddr(b, gtid, in_b);
            b.ld(p, paddr);
        }

        // t' = c + 0.2*(l+r+u+d-4c) + 0.05*p
        Reg acc = b.reg(), w = b.reg(), four = b.reg();
        b.fadd(acc, l, r);
        b.fadd(acc, acc, u);
        b.fadd(acc, acc, d);
        b.fmovi(four, -4.0f);
        b.fmad(acc, c, four, acc);
        b.fmovi(w, 0.2f);
        b.fmul(acc, acc, w);
        b.fadd(acc, acc, c);
        b.fmovi(w, 0.05f);
        b.fmad(acc, p, w, acc);

        Reg oaddr = emitGtidAddr(b, gtid, out_a);
        b.st(oaddr, 0, acc);

        Instance inst;
        inst.raw = b.build();
        unsigned total = n * n;
        inst.block_threads = std::min(total, 1024u);
        inst.grid_blocks = total / inst.block_threads;
        return inst;
    }

    void
    init(mem::MemoryImage &mem, SizeClass sc) const override
    {
        const unsigned n = dim(sc);
        Rng rng(23);
        for (unsigned i = 0; i < n * n; ++i) {
            mem.writeF32(in_a + Addr(i) * 4, rng.uniform(40.f, 90.f));
            mem.writeF32(in_b + Addr(i) * 4, rng.uniform(0.f, 2.f));
        }
    }

    bool
    verify(const mem::MemoryImage &mem, SizeClass sc,
           std::string *why) const override
    {
        const unsigned n = dim(sc);
        std::vector<float> t(n * n), p(n * n);
        Rng rng(23);
        for (unsigned i = 0; i < n * n; ++i) {
            t[i] = rng.uniform(40.f, 90.f);
            p[i] = rng.uniform(0.f, 2.f);
        }
        auto at = [&](int x, int y) {
            x = std::clamp(x, 0, int(n) - 1);
            y = std::clamp(y, 0, int(n) - 1);
            return t[size_t(y) * n + size_t(x)];
        };
        for (unsigned y = 0; y < n; ++y) {
            for (unsigned x = 0; x < n; ++x) {
                float c = at(int(x), int(y));
                float acc = at(int(x) - 1, int(y)) +
                            at(int(x) + 1, int(y)) +
                            at(int(x), int(y) - 1) +
                            at(int(x), int(y) + 1);
                acc = c * -4.0f + acc;
                acc = acc * 0.2f + c;
                acc = p[y * n + x] * 0.05f + acc;
                if (!checkF(mem, out_a + Addr(y * n + x) * 4, acc,
                            "hs", y * n + x, why)) {
                    return false;
                }
            }
        }
        return true;
    }
};

// ================================================================
// Backprop: dense layer forward pass; coalesced weight streaming.
// ================================================================
class Backprop final : public Workload
{
  public:
    const char *name() const override { return "Backprop"; }
    bool regular() const override { return true; }

    unsigned n(SizeClass sc) const
    {
        return sc == SizeClass::Full ? 4096 : 256;
    }
    static constexpr unsigned fan_in = 16;

    Instance
    instance(SizeClass sc) const override
    {
        const unsigned nn = n(sc);
        KernelBuilder b("backprop");
        Reg gtid = b.reg();
        b.s2r(gtid, SpecialReg::GTID);

        Reg acc = b.reg(), k = b.reg(), cond = b.reg(),
            waddr = b.reg(), xaddr = b.reg(), wv = b.reg(),
            xv = b.reg();
        b.fmovi(acc, 0.0f);
        b.movi(k, 0);
        // W[k*nn + gtid] (coalesced), X[k] (broadcast)
        b.shl(waddr, gtid, Imm(2));
        b.iadd(waddr, waddr, Imm(i32(in_a)));
        b.movi(xaddr, i32(in_b));
        b.loop();
        {
            b.ld(wv, waddr);
            b.ld(xv, xaddr);
            b.fmad(acc, wv, xv, acc);
            b.iadd(waddr, waddr, Imm(i32(nn * 4)));
            b.iadd(xaddr, xaddr, Imm(4));
            b.iadd(k, k, Imm(1));
            b.isetlt(cond, k, Imm(i32(fan_in)));
        }
        b.endLoopIf(cond);

        // sigmoid ~ 1/(1+exp2(-acc))
        Reg e = b.reg(), one = b.reg();
        b.fneg(e, acc);
        b.exp2_(e, e);
        b.fmovi(one, 1.0f);
        b.fadd(e, e, one);
        b.rcp(e, e);

        Reg oaddr = emitGtidAddr(b, gtid, out_a);
        b.st(oaddr, 0, e);

        Instance inst;
        inst.raw = b.build();
        inst.block_threads = std::min(nn, 1024u);
        inst.grid_blocks = nn / inst.block_threads;
        return inst;
    }

    void
    init(mem::MemoryImage &mem, SizeClass sc) const override
    {
        const unsigned nn = n(sc);
        Rng rng(29);
        for (unsigned i = 0; i < fan_in * nn; ++i)
            mem.writeF32(in_a + Addr(i) * 4,
                         rng.uniform(-0.5f, 0.5f));
        for (unsigned i = 0; i < fan_in; ++i)
            mem.writeF32(in_b + Addr(i) * 4, rng.uniform(-1.f, 1.f));
    }

    bool
    verify(const mem::MemoryImage &mem, SizeClass sc,
           std::string *why) const override
    {
        const unsigned nn = n(sc);
        std::vector<float> w(fan_in * nn), x(fan_in);
        Rng rng(29);
        for (auto &v : w)
            v = rng.uniform(-0.5f, 0.5f);
        for (auto &v : x)
            v = rng.uniform(-1.f, 1.f);
        for (unsigned i = 0; i < nn; ++i) {
            float acc = 0.0f;
            for (unsigned k = 0; k < fan_in; ++k)
                acc = w[k * nn + i] * x[k] + acc;
            float sig = 1.0f / (std::exp2(-acc) + 1.0f);
            if (!checkF(mem, out_a + Addr(i) * 4, sig, "bp", i, why))
                return false;
        }
        return true;
    }
};

// ================================================================
// MonteCarlo: per-thread LCG paths, branchless payoff max.
// ================================================================
class MonteCarlo final : public Workload
{
  public:
    const char *name() const override { return "MonteCarlo"; }
    bool regular() const override { return true; }

    unsigned n(SizeClass sc) const
    {
        return sc == SizeClass::Full ? 2048 : 256;
    }
    unsigned paths(SizeClass sc) const
    {
        return sc == SizeClass::Full ? 32 : 8;
    }

    Instance
    instance(SizeClass sc) const override
    {
        KernelBuilder b("montecarlo");
        Reg gtid = b.reg();
        b.s2r(gtid, SpecialReg::GTID);

        Reg x = b.reg();
        b.imul(x, gtid, Imm(747796405));
        b.iadd(x, x, Imm(i32(2891336453u)));

        // Two independent LCG streams per thread (path batching).
        Reg y = b.reg();
        b.imul(y, gtid, Imm(i32(2246822519u)));
        b.iadd(y, y, Imm(i32(3266489917u)));

        Reg acc = b.reg(), acc2 = b.reg(), k = b.reg(),
            cond = b.reg(), u = b.reg(), u2 = b.reg(),
            strike = b.reg(), pay = b.reg(), pay2 = b.reg(),
            zero = b.reg(), scale = b.reg();
        b.fmovi(acc, 0.0f);
        b.fmovi(acc2, 0.0f);
        b.fmovi(strike, 0.4f);
        b.fmovi(zero, 0.0f);
        b.fmovi(scale, 1.0f / 16777216.0f);
        b.movi(k, 0);
        b.loop();
        {
            b.imul(x, x, Imm(1664525));
            b.imul(y, y, Imm(22695477));
            b.iadd(x, x, Imm(1013904223));
            b.iadd(y, y, Imm(1));
            b.shr(u, x, Imm(8));
            b.shr(u2, y, Imm(8));
            b.i2f(u, u);
            b.i2f(u2, u2);
            b.fmul(u, u, scale);
            b.fmul(u2, u2, scale);
            b.fsub(pay, u, strike);
            b.fsub(pay2, u2, strike);
            b.fmax(pay, pay, zero);
            b.fmax(pay2, pay2, zero);
            b.fadd(acc, acc, pay);
            b.fadd(acc2, acc2, pay2);
            b.iadd(k, k, Imm(1));
            b.isetlt(cond, k, Imm(i32(paths(sc))));
        }
        b.endLoopIf(cond);

        Reg inv = b.reg();
        b.fadd(acc, acc, acc2);
        b.fmovi(inv, 0.5f / float(paths(sc)));
        b.fmul(acc, acc, inv);

        Reg oaddr = emitGtidAddr(b, gtid, out_a);
        b.st(oaddr, 0, acc);

        Instance inst;
        inst.raw = b.build();
        inst.block_threads = std::min(n(sc), 1024u);
        inst.grid_blocks = n(sc) / inst.block_threads;
        return inst;
    }

    void
    init(mem::MemoryImage &, SizeClass) const override
    {
    }

    bool
    verify(const mem::MemoryImage &mem, SizeClass sc,
           std::string *why) const override
    {
        for (unsigned i = 0; i < n(sc); ++i) {
            u32 x = u32(i) * 747796405u + 2891336453u;
            u32 y = u32(i) * 2246822519u + 3266489917u;
            float acc = 0.0f, acc2 = 0.0f;
            for (unsigned k = 0; k < paths(sc); ++k) {
                x = x * 1664525u + 1013904223u;
                y = y * 22695477u + 1u;
                float u = float(i32(x >> 8)) * (1.0f / 16777216.0f);
                float u2 = float(i32(y >> 8)) * (1.0f / 16777216.0f);
                acc += std::fmax(u - 0.4f, 0.0f);
                acc2 += std::fmax(u2 - 0.4f, 0.0f);
            }
            acc = (acc + acc2) * (0.5f / float(paths(sc)));
            if (!checkF(mem, out_a + Addr(i) * 4, acc, "mc", i, why))
                return false;
        }
        return true;
    }
};

} // namespace

std::vector<const Workload *>
regularSuite()
{
    static const Fd3d fd3d;
    static const Backprop backprop;
    static const BinomialOptions binomial;
    static const BlackScholes blackscholes;
    static const DwtHaar dwt;
    static const FastWalsh fwt;
    static const Hotspot hotspot;
    static const MatrixMul matmul;
    static const MonteCarlo montecarlo;
    static const Transpose transpose;
    return {&fd3d,    &backprop, &binomial,   &blackscholes,
            &dwt,     &fwt,      &hotspot,    &matmul,
            &montecarlo, &transpose};
}

} // namespace siwi::workloads
