#include "workloads/workload.hh"

#include "common/log.hh"
#include "workloads/suite.hh"

namespace siwi::workloads {

const std::vector<const Workload *> &
allWorkloads()
{
    static const std::vector<const Workload *> all = [] {
        std::vector<const Workload *> v;
        for (const Workload *w : regularSuite())
            v.push_back(w);
        for (const Workload *w : irregularSuite())
            v.push_back(w);
        for (const Workload *w : tmdSuite())
            v.push_back(w);
        return v;
    }();
    return all;
}

const Workload *
findWorkload(std::string_view name)
{
    for (const Workload *w : allWorkloads()) {
        if (name == w->name())
            return w;
    }
    return nullptr;
}

std::vector<const Workload *>
regularWorkloads()
{
    std::vector<const Workload *> v;
    for (const Workload *w : allWorkloads()) {
        if (w->regular())
            v.push_back(w);
    }
    return v;
}

std::vector<const Workload *>
irregularWorkloads()
{
    std::vector<const Workload *> v;
    for (const Workload *w : allWorkloads()) {
        if (!w->regular())
            v.push_back(w);
    }
    return v;
}

RunResult
runWorkload(const Workload &wl, const pipeline::SMConfig &cfg,
            SizeClass sc)
{
    return runWorkload(wl, cfg, sc, 1);
}

RunResult
runWorkload(const Workload &wl, const pipeline::SMConfig &cfg,
            SizeClass sc, unsigned num_sms, bool cycle_skip)
{
    return runWorkload(wl, core::GpuConfig::make(cfg, num_sms),
                       sc, cycle_skip);
}

RunResult
runWorkload(const Workload &wl, const core::GpuConfig &chip,
            SizeClass sc, bool cycle_skip)
{
    Instance inst = wl.instance(sc);
    core::Kernel kernel = core::Kernel::compile(inst.raw,
                                                inst.compile);

    core::Gpu gpu(chip);
    wl.init(gpu.memory(), sc);

    core::LaunchConfig lc;
    lc.grid_blocks = inst.grid_blocks;
    lc.block_threads = inst.block_threads;
    lc.cycle_skip = cycle_skip;

    RunResult res;
    res.stats = gpu.launch(kernel, lc);
    res.layout_violations = kernel.layoutViolations();
    res.verified = wl.verify(gpu.memory(), sc, &res.verify_msg);
    res.skipped_cycles = gpu.skippedCycles();
    return res;
}

} // namespace siwi::workloads
