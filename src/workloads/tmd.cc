/**
 * @file
 * TMD1 / TMD2: the Table Maker's Dilemma search kernels
 * (Fortin, Gouicem, Graillat [13] in the paper).
 *
 * A hard-to-round case search: each thread scans candidate
 * arguments, computes the fractional part of a polynomial
 * approximation, and walks deeply nested, rarely-taken refinement
 * paths when the fraction falls close to 0 or 1 -- highly irregular,
 * unstructured control flow.
 *
 * The paper found NVIDIA's compiler laid TMD1 out in a
 * non-thread-frontier order, making it the one benchmark where
 * thread-frontier reconvergence loses to the stack. We reproduce
 * both: the kernel is emitted with its join blocks *before* the
 * divergent branches; TMD1 compiles with LayoutMode::Preserve
 * (keeping the violating order), TMD2 with the thread-frontier
 * layout pass (fixing it).
 */

#include "workloads/suite.hh"

#include <cmath>
#include <sstream>

#include "common/log.hh"
#include "isa/builder.hh"

namespace siwi::workloads {

namespace {

using isa::Imm;
using isa::KernelBuilder;
using isa::Label;
using isa::Reg;
using isa::SpecialReg;

constexpr Addr out_a = 0x0400000;

/** Shared TMD kernel body; layout mode differs between TMD1/TMD2. */
class TmdBase : public Workload
{
  public:
    bool regular() const override { return false; }
    bool excludedFromMeans() const override { return true; }

    unsigned n(SizeClass sc) const
    {
        return sc == SizeClass::Full ? 1024 : 128;
    }
    unsigned candidates(SizeClass sc) const
    {
        return sc == SizeClass::Full ? 24 : 8;
    }

    virtual cfg::LayoutMode layout() const = 0;

    Instance
    instance(SizeClass sc) const override
    {
        KernelBuilder b(name());
        Reg gtid = b.reg();
        b.s2r(gtid, SpecialReg::GTID);

        Reg x0 = b.reg(), scale = b.reg();
        b.i2f(x0, gtid);
        b.fmovi(scale, 1.0f / 1024.0f);
        b.fmul(x0, x0, scale);

        Reg hits = b.reg(), k = b.reg(), kcond = b.reg(),
            probes = b.reg();
        b.movi(hits, 0);
        b.movi(probes, 0);
        b.movi(k, 0);

        // Emitted with raw labels so the join block -- the
        // reconvergence point of the hit/miss branches in the deep
        // and medium paths -- sits at a LOWER address than those
        // divergent branches: a deliberate thread-frontier layout
        // violation that LayoutMode::Preserve keeps (TMD1) and the
        // thread-frontier pass repairs (TMD2).
        Label loop_top = b.label();
        Label deep = b.label();
        Label deep_hit = b.label();
        Label medium = b.label();
        Label med_hit = b.label();
        Label join = b.label();
        Label next = b.label();
        Label done = b.label();

        b.bra(loop_top);

        // ---- loop latch (low address: the MAIN reconvergence
        // point of the fallthrough/deep/medium three-way divergence
        // sits *before* the divergent branches) ----
        b.bind(next);
        {
            Reg kcap = b.reg();
            b.iadd(k, k, Imm(1));
            b.movi(kcap, i32(candidates(sc)));
            b.isetlt(kcond, k, kcap);
            b.bnz(kcond, loop_top);
            b.bra(done);
        }

        // ---- shared tail of the refinement paths (low address) ----
        b.bind(join);
        {
            b.iadd(probes, probes, Imm(1));
            b.bra(next);
        }

        // ---- loop header & fraction computation ----
        b.bind(loop_top);
        Reg x = b.reg(), kf = b.reg(), step = b.reg(), y = b.reg(),
            yi = b.reg(), frac = b.reg();
        {
            b.i2f(kf, k);
            b.fmovi(step, 0.03125f);
            b.fmad(x, kf, step, x0);
            // y = frac(x * C) via y - trunc(y)
            Reg cc = b.reg();
            b.fmovi(cc, 13.4567f);
            b.fmul(y, x, cc);
            b.f2i(yi, y);
            b.i2f(yi, yi);
            b.fsub(frac, y, yi);

            Reg eps = b.reg(), is_low = b.reg();
            b.fmovi(eps, 0.06f);
            b.fsetlt(is_low, frac, eps);
            b.bnz(is_low, deep);

            Reg hi_thresh = b.reg(), is_high = b.reg();
            b.fmovi(hi_thresh, 0.94f);
            b.fsetgt(is_high, frac, hi_thresh);
            b.bnz(is_high, medium);
            b.bra(next);
        }

        // ---- deep refinement path (rare) ----
        b.bind(deep);
        {
            Reg acc = b.reg(), j = b.reg(), jcond = b.reg(),
                c1 = b.reg();
            b.mov(acc, frac);
            b.fmovi(c1, 1.5f);
            b.movi(j, 0);
            b.loop();
            {
                b.fmad(acc, acc, c1, acc);
                b.iadd(j, j, Imm(1));
                b.isetlt(jcond, j, Imm(8));
            }
            b.endLoopIf(jcond);
            Reg lim = b.reg(), ok = b.reg();
            b.fmovi(lim, 4.0f);
            b.fsetlt(ok, acc, lim);
            // Divergent hit/miss branch reconverging at the early
            // join block.
            b.bnz(ok, deep_hit);
            b.fmul(acc, acc, c1); // miss-path work
            b.bra(join);
        }
        b.bind(deep_hit);
        {
            b.iadd(hits, hits, Imm(1));
            b.bra(join);
        }

        // ---- medium path (rare) ----
        b.bind(medium);
        {
            Reg acc = b.reg(), one = b.reg(), j = b.reg(),
                jcond = b.reg();
            b.fmovi(one, 1.0f);
            b.fsub(acc, one, frac);
            b.movi(j, 0);
            b.loop();
            {
                b.fadd(acc, acc, acc);
                b.iadd(j, j, Imm(1));
                b.isetlt(jcond, j, Imm(4));
            }
            b.endLoopIf(jcond);
            Reg lim = b.reg(), ok = b.reg();
            b.fmovi(lim, 0.8f);
            b.fsetlt(ok, acc, lim);
            b.bnz(ok, med_hit);
            b.fadd(acc, acc, acc); // miss-path work
            b.bra(join);
        }
        b.bind(med_hit);
        {
            b.iadd(hits, hits, Imm(1));
            b.bra(join);
        }

        b.bind(done);
        Reg oaddr = b.reg();
        b.shl(oaddr, gtid, Imm(2));
        b.iadd(oaddr, oaddr, Imm(i32(out_a)));
        b.st(oaddr, 0, hits);
        b.exit_();

        Instance inst;
        inst.raw = b.build();
        inst.compile.layout = layout();
        inst.block_threads = std::min(n(sc), 1024u);
        inst.grid_blocks = n(sc) / inst.block_threads;
        return inst;
    }

    void
    init(mem::MemoryImage &, SizeClass) const override
    {
    }

    bool
    verify(const mem::MemoryImage &mem, SizeClass sc,
           std::string *why) const override
    {
        for (unsigned i = 0; i < n(sc); ++i) {
            float x0 = float(i32(i)) * (1.0f / 1024.0f);
            u32 hits = 0;
            for (unsigned k = 0; k < candidates(sc); ++k) {
                float x = float(i32(k)) * 0.03125f + x0;
                float y = x * 13.4567f;
                float yi = float(i32(y));
                float frac = y - yi;
                if (frac < 0.06f) {
                    float acc = frac;
                    for (int j = 0; j < 8; ++j)
                        acc = acc * 1.5f + acc;
                    if (acc < 4.0f)
                        ++hits;
                } else if (frac > 0.94f) {
                    float acc = 1.0f - frac;
                    for (int j = 0; j < 4; ++j)
                        acc = acc + acc;
                    if (acc < 0.8f)
                        ++hits;
                }
            }
            u32 got = mem.read32(out_a + Addr(i) * 4);
            if (got != hits) {
                if (why) {
                    std::ostringstream os;
                    os << "tmd[" << i << "]: expected " << hits
                       << ", got " << got;
                    *why = os.str();
                }
                return false;
            }
        }
        return true;
    }
};

class Tmd1 final : public TmdBase
{
  public:
    const char *name() const override { return "TMD1"; }
    cfg::LayoutMode layout() const override
    {
        return cfg::LayoutMode::Preserve;
    }
};

class Tmd2 final : public TmdBase
{
  public:
    const char *name() const override { return "TMD2"; }
    cfg::LayoutMode layout() const override
    {
        return cfg::LayoutMode::ThreadFrontier;
    }
};

} // namespace

std::vector<const Workload *>
tmdSuite()
{
    static const Tmd1 tmd1;
    static const Tmd2 tmd2;
    return {&tmd1, &tmd2};
}

} // namespace siwi::workloads
