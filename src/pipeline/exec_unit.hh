/**
 * @file
 * SIMD execution groups (MAD / SFU / LSU) with wave decomposition.
 *
 * A group narrower than the warp breaks an instruction into waves;
 * the group stays occupied one cycle per wave (paper section 2:
 * "the warp is broken down into several waves sent through the
 * pipeline"). The LSU additionally serializes one 128-byte
 * transaction per cycle, so divergent memory instructions occupy it
 * for one cycle per replayed transaction.
 */

#ifndef SIWI_PIPELINE_EXEC_UNIT_HH
#define SIWI_PIPELINE_EXEC_UNIT_HH

#include <string>

#include "common/types.hh"
#include "isa/opcode.hh"

namespace siwi::pipeline {

/** Occupancy statistics of one group. */
struct ExecGroupStats
{
    u64 issues = 0;
    u64 busy_cycles = 0;
    u64 thread_instructions = 0;
};

/**
 * One SIMD execution group.
 */
class ExecGroup
{
  public:
    ExecGroup(std::string name, isa::UnitClass cls, unsigned width);

    const std::string &name() const { return name_; }
    isa::UnitClass unitClass() const { return cls_; }
    unsigned width() const { return width_; }

    /** Can a new instruction start at @p now? */
    bool canAccept(Cycle now) const { return now >= busy_until_; }

    /** First cycle a new instruction can start (next-event bound). */
    Cycle busyUntil() const { return busy_until_; }

    /**
     * Occupy the group for @p cycles starting at @p now, executing
     * @p threads thread-instructions.
     */
    void occupy(Cycle now, unsigned cycles, unsigned threads);

    /**
     * Account a second instruction sharing the row this cycle (SBI /
     * SWI co-issue): no extra occupancy, more thread-instructions.
     */
    void shareRow(unsigned threads);

    /** Waves needed for a @p warp_width-wide instruction. */
    unsigned wavesFor(unsigned warp_width) const;

    const ExecGroupStats &stats() const { return stats_; }

  private:
    std::string name_;
    isa::UnitClass cls_;
    unsigned width_;
    Cycle busy_until_ = 0;
    ExecGroupStats stats_;
};

} // namespace siwi::pipeline

#endif // SIWI_PIPELINE_EXEC_UNIT_HH
