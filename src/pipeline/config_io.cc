#include "pipeline/config_io.hh"

#include <array>
#include <vector>

#include "frontend/sched_policy.hh"

namespace siwi::pipeline {

namespace {

// Canonical enum name arrays; index == enum value. The unit tests
// assert these stay in sync with pipelineModeName() /
// laneShuffleName() / frontend::schedPolicyName(), the display
// functions the rest of the simulator uses.
constexpr const char *mode_names[] = {
    "Baseline", "Warp64", "SBI", "SWI", "SBI+SWI",
};
constexpr const char *reconv_names[] = {
    "stack",
    "thread_frontier",
};
constexpr const char *shuffle_names[] = {
    "Identity", "MirrorOdd", "MirrorHalf", "Xor", "XorRev",
};
constexpr const char *policy_names[] = {
    "oldest",
    "rr",
    "gto",
    "minpc",
};

// Field-definition shorthand over the shared SIWI_CFG_* macros
// (common/config_reflect.hh). U32 fields accept any unsigned
// integral member; enums store their index.
#define F_U32(key, member, doc) \
    SIWI_CFG_U32(SMConfig, key, member, doc)
#define F_BOOL(key, member, doc) \
    SIWI_CFG_BOOL(SMConfig, key, member, doc)
#define F_ENUM(key, member, names, doc) \
    SIWI_CFG_ENUM(SMConfig, key, member, names, doc)

/**
 * The one table. Order is the serialization order of
 * smConfigToJson() and the row order of docs/CONFIG.md. Every
 * data member of SMConfig (including the nested heap/mem structs)
 * must appear here: a member missing from the table is invisible
 * to spec files, machine files, results artifacts and
 * operator== alike.
 */
const std::vector<ConfigField<SMConfig>> &
fieldTable()
{
    static const std::vector<ConfigField<SMConfig>> v = {
        F_ENUM("mode", mode, mode_names,
               "pipeline mode label of the base machine "
               "(pick via a machine's \"base\", not via set)"),
        // --- machine geometry ---
        F_U32("warp_width", warp_width,
              "threads per warp (32 = Fermi, 64 = interweaving "
              "machines)"),
        F_U32("num_warps", num_warps,
              "resident warps per SM"),
        F_U32("num_pools", num_pools,
              "independent scheduler pools (1 or 2)"),
        F_U32("mad_groups", mad_groups,
              "number of MAD SIMD groups"),
        F_U32("mad_width", mad_width, "lanes per MAD group"),
        F_U32("sfu_width", sfu_width, "SFU lanes"),
        F_U32("lsu_width", lsu_width, "LSU lanes"),
        // --- divergence handling ---
        F_ENUM("reconv", reconv, reconv_names,
               "divergence-tracking substrate"),
        F_BOOL("sbi", sbi,
               "secondary front-end over CPC2 contexts "
               "(paper 3.3)"),
        F_BOOL("swi", swi,
               "cascaded mask-fit secondary scheduler "
               "(paper 4)"),
        F_BOOL("sbi_constraints", sbi_constraints,
               "honor SYNC selective synchronization barriers"),
        F_BOOL("sbi_secondary_fallback", sbi_secondary_fallback,
               "SBI secondary may issue another warp's primary "
               "context (docs/DESIGN.md)"),
        F_BOOL("split_on_memory_divergence",
               split_on_memory_divergence,
               "DWS-style warp-splits on memory divergence "
               "(paper 3.4)"),
        F_U32("cct_capacity", heap.cct_capacity,
              "Cold Context Table entries per warp"),
        F_U32("cct_steps_per_cycle", heap.cct_steps_per_cycle,
              "CCT sideband-sorter steps per cycle"),
        // --- scheduling ---
        F_ENUM("sched_policy", sched_policy, policy_names,
               "primary-scheduler candidate ordering (the "
               "machine's default; a non-default --policy axis "
               "entry overrides it)"),
        F_ENUM("lane_shuffle", shuffle, shuffle_names,
               "static SWI lane-shuffle policy (paper Table 1)"),
        F_U32("lookup_sets", lookup_sets,
              "mask-inclusion lookup sets; 1 = fully "
              "associative, num_warps = direct mapped"),
        // --- timing (Table 2) ---
        F_U32("scheduler_latency", scheduler_latency,
              "scheduler cycles (2 = cascaded secondary)"),
        F_U32("delivery_latency", delivery_latency,
              "instruction-delivery stage cycles"),
        F_U32("exec_latency", exec_latency,
              "execution latency in cycles"),
        F_U32("scoreboard_entries", scoreboard_entries,
              "scoreboard entries per warp"),
        // --- memory ---
        F_U32("l1_size_bytes", mem.l1.size_bytes,
              "L1 data cache size in bytes"),
        F_U32("l1_ways", mem.l1.ways, "L1 associativity"),
        F_U32("l1_block_bytes", mem.l1.block_bytes,
              "L1 block size in bytes"),
        F_U32("l1_hit_latency", mem.l1.hit_latency,
              "L1 hit latency in cycles"),
        F_U32("dram_bytes_per_cycle_x10",
              mem.dram.bytes_per_cycle_x10,
              "DRAM bandwidth in 0.1 byte/cycle units "
              "(100 = the paper's 10 GB/s)"),
        F_U32("dram_latency_cycles", mem.dram.latency_cycles,
              "flat DRAM access latency in cycles"),
        F_U32("mshrs", mem.mshrs,
              "max in-flight missed blocks"),
        F_U32("write_buffer_entries", mem.write_buffer_entries,
              "write-combining buffer entries"),
        // --- occupancy ---
        F_U32("max_blocks_resident", max_blocks_resident,
              "thread blocks resident per SM"),
    };
    return v;
}

#undef F_U32
#undef F_BOOL
#undef F_ENUM

} // namespace

std::span<const ConfigField<SMConfig>>
smConfigFields()
{
    return fieldTable();
}

Json
smConfigToJson(const SMConfig &c)
{
    return configToJson<SMConfig>(c, smConfigFields());
}

bool
smConfigApplyJson(const Json &j, SMConfig *c, std::string *err)
{
    return configApplyJson<SMConfig>(j, smConfigFields(), c, err);
}

bool
smConfigApplyKeyValue(std::string_view kv, SMConfig *c,
                      std::string *err)
{
    return configApplyKeyValue<SMConfig>(kv, smConfigFields(), c,
                                         err);
}

Json
smConfigSchema()
{
    return configSchema<SMConfig>(SMConfig{}, smConfigFields());
}

bool
operator==(const SMConfig &a, const SMConfig &b)
{
    return configEqual<SMConfig>(a, b, smConfigFields());
}

} // namespace siwi::pipeline
