/**
 * @file
 * Dense warp-id set backed by 64-bit words: the runnable active
 * list of the per-warp sleep/wake machinery.
 *
 * The per-cycle hot loops (fetch, select, issue, heap upkeep)
 * iterate this set instead of scanning every warp slot, making a
 * cycle O(runnable warps) instead of O(num_warps). Iteration is
 * ascending warp order — the same order the full scans used — so
 * scheduling policies see identical candidate sequences; a cyclic
 * variant serves the round-robin fetch cursor.
 */

#ifndef SIWI_PIPELINE_WARP_SET_HH
#define SIWI_PIPELINE_WARP_SET_HH

#include <bit>
#include <vector>

#include "common/types.hh"

namespace siwi::pipeline {

/** Fixed-capacity bitset over warp ids with ordered iteration. */
class WarpSet
{
  public:
    explicit WarpSet(unsigned num_warps = 0)
    {
        reset(num_warps);
    }

    /** Resize to @p num_warps and clear every member. */
    void reset(unsigned num_warps)
    {
        num_warps_ = num_warps;
        words_.assign((num_warps + 63) / 64, 0);
    }

    bool contains(WarpId w) const
    {
        return (words_[w >> 6] >> (w & 63)) & 1;
    }

    void insert(WarpId w) { words_[w >> 6] |= bit(w); }
    void erase(WarpId w) { words_[w >> 6] &= ~bit(w); }

    unsigned count() const
    {
        unsigned n = 0;
        for (u64 word : words_)
            n += unsigned(std::popcount(word));
        return n;
    }

    bool empty() const
    {
        for (u64 word : words_) {
            if (word)
                return false;
        }
        return true;
    }

    /**
     * Visit members in ascending order. Erasing the warp currently
     * being visited is allowed (the word is iterated from a local
     * copy); inserting during iteration is not.
     */
    template <typename F> void forEach(F &&f) const
    {
        for (size_t i = 0; i < words_.size(); ++i) {
            u64 word = words_[i];
            while (word) {
                unsigned b = unsigned(std::countr_zero(word));
                word &= word - 1;
                f(WarpId(i * 64 + b));
            }
        }
    }

    /**
     * Visit members cyclically: first those >= @p start ascending,
     * then those < @p start ascending. @p f returns true to stop
     * the scan (a fetch slot was consumed).
     * @return true when @p f stopped the scan
     */
    template <typename F> bool forEachWrapped(WarpId start, F &&f) const
    {
        size_t start_word = start >> 6;
        // Tail: members at or after the cursor.
        for (size_t i = start_word; i < words_.size(); ++i) {
            u64 word = words_[i];
            if (i == start_word)
                word &= ~u64(0) << (start & 63);
            while (word) {
                unsigned b = unsigned(std::countr_zero(word));
                word &= word - 1;
                if (f(WarpId(i * 64 + b)))
                    return true;
            }
        }
        // Wrapped head: members strictly before the cursor.
        for (size_t i = 0; i <= start_word && i < words_.size();
             ++i) {
            u64 word = words_[i];
            if (i == start_word)
                word &= ~(~u64(0) << (start & 63));
            while (word) {
                unsigned b = unsigned(std::countr_zero(word));
                word &= word - 1;
                if (f(WarpId(i * 64 + b)))
                    return true;
            }
        }
        return false;
    }

  private:
    static u64 bit(WarpId w) { return u64(1) << (w & 63); }

    unsigned num_warps_ = 0;
    std::vector<u64> words_;
};

} // namespace siwi::pipeline

#endif // SIWI_PIPELINE_WARP_SET_HH
