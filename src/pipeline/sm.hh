/**
 * @file
 * The streaming-multiprocessor cycle-level model.
 *
 * One SM object simulates one kernel grid on one SM, in any of the
 * five pipeline configurations of the paper's evaluation (Figure 7):
 * the Fermi-like stack baseline, the 64-wide thread-frontier
 * reference, SBI, SWI, and SBI+SWI. See docs/DESIGN.md for the pipeline
 * structure and the interpretation notes.
 */

#ifndef SIWI_PIPELINE_SM_HH
#define SIWI_PIPELINE_SM_HH

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/stats.hh"
#include "divergence/reconv_stack.hh"
#include "divergence/split_heap.hh"
#include "exec/warp_state.hh"
#include "isa/program.hh"
#include "mem/memory_image.hh"
#include "mem/memory_system.hh"
#include "pipeline/config.hh"
#include "pipeline/exec_unit.hh"
#include "pipeline/ibuffer.hh"
#include "pipeline/mask_lookup.hh"
#include "pipeline/scoreboard.hh"

namespace siwi::pipeline {

/** One issue, for pipeline-diagram tracing (Figure 2). */
struct IssueEvent
{
    Cycle cycle;
    WarpId warp;
    Pc pc;
    LaneMask mask;
    std::string unit;    //!< execution group name
    bool secondary;      //!< issued by the secondary scheduler
    unsigned occupancy;  //!< group cycles (waves / transactions)
};

/**
 * Cycle-level SM simulator.
 */
class SM
{
  public:
    /**
     * @param backend chip-shared memory backend; null for a
     *        private DRAM channel (the paper's single-SM setup)
     */
    SM(const SMConfig &cfg, mem::MemoryImage &memory,
       mem::MemoryBackend *backend = nullptr);

    /** Start a grid of @p grid_blocks x @p block_threads threads. */
    void launch(const isa::Program &prog, unsigned grid_blocks,
                unsigned block_threads);

    /**
     * Chip-level CTA scheduler hook: returns the next global CTA
     * id this SM should run, or -1 when the grid is exhausted.
     * When set, the SM stops self-assigning CTAs from the launch
     * grid and instead pulls at most one CTA per cycle from the
     * source (so a fresh chip distributes CTAs round-robin and a
     * retiring SM picks up the next pending CTA).
     */
    using CtaSource = std::function<int()>;
    void setCtaSource(CtaSource src)
    {
        cta_source_ = std::move(src);
    }

    /** All blocks retired? */
    bool done() const;

    /** Advance one cycle. */
    void step();

    /**
     * Run to completion (or @p max_cycles) and return statistics.
     */
    core::SimStats run(Cycle max_cycles = 50'000'000);

    Cycle now() const { return now_; }
    const SMConfig &config() const { return cfg_; }

    using TraceHook = std::function<void(const IssueEvent &)>;
    void setTraceHook(TraceHook hook) { trace_ = std::move(hook); }

    /** Statistics snapshot (finalized by run()). */
    core::SimStats &stats() { return stats_; }

    /**
     * Fold warp/cache/unit counters into stats_ and return it.
     * run() calls this; a chip driving step() itself calls it once
     * per SM after the lockstep loop finishes. With a shared
     * backend the chip-level counters (l2_*, dram_*) stay zero
     * here — the chip fills them into its aggregate.
     */
    core::SimStats finalizeStats();

    /** Multi-line dump of warp/context/barrier state (debugging). */
    std::string debugState() const;

  private:
    // ------------------------------------------------------------
    // internal structures
    // ------------------------------------------------------------
    struct WarpSlot
    {
        bool active = false;
        int block = -1;
        std::unique_ptr<exec::WarpState> state;
        std::unique_ptr<divergence::ReconvStack> stack;
        std::unique_ptr<divergence::SplitHeap> heap;
        bool stack_branch_pending = false;
        bool stack_barrier_blocked = false;
        Cycle last_divergence = ~Cycle(0);
    };

    struct BlockSlot
    {
        bool active = false;
        int cta = -1;
        unsigned live_threads = 0;
        unsigned barrier_arrived = 0;
        std::vector<WarpId> warps;
    };

    /** Scheduling view of one warp context slot. */
    struct CtxView
    {
        bool valid = false; //!< exists and is schedulable
        u32 id = 0;
        Pc pc = invalid_pc;
        LaneMask mask;
        u32 version = 0;
    };

    /** Deferred completion / resolution event. */
    struct Event
    {
        enum class Kind { Writeback, Branch, Exit };
        Kind kind;
        WarpId warp;
        u32 ctx_id = 0;
        int sb_entry = -1;
        isa::Instruction inst;
        LaneMask mask;
        LaneMask taken;
        Pc pc = invalid_pc;
    };

    /**
     * A scheduling candidate: warp + context slot (0 = primary /
     * CPC1, 1 = secondary / CPC2). The instruction-buffer entry is
     * resolved through the context id, so HCT re-sorting does not
     * orphan buffered instructions.
     */
    struct Cand
    {
        WarpId w;
        unsigned slot;
    };

    /** Primary pick parked between select and issue (SWI cascade). */
    struct CascadeReg
    {
        bool valid = false;
        WarpId w = 0;
        u32 ctx_id = 0;
        u32 ctx_version = 0;
    };

    /** Row occupancy info of the primary issue this cycle. */
    struct PrimaryIssueInfo
    {
        bool valid = false;
        WarpId w = 0;
        u32 ctx_id = 0;
        ExecGroup *group = nullptr;
        LaneMask mask;
        isa::UnitClass unit = isa::UnitClass::MAD;
    };

    // ------------------------------------------------------------
    // pipeline stages
    // ------------------------------------------------------------
    void processEvents();
    void heapMaintenance();
    void issueStageSimple();
    void issueStageCascaded();
    void fetchStage();

    // --- scheduling helpers ---
    CtxView ctxView(WarpId w, unsigned slot) const;
    /** Fresh buffered entry of the context in (w, slot), or null. */
    const IBufEntry *entryFor(WarpId w, unsigned slot) const;
    IBufEntry *entryFor(WarpId w, unsigned slot);
    bool syncGated(WarpId w, const IBufEntry &e) const;
    bool ready(WarpId w, unsigned slot, bool check_group) const;
    std::optional<Cand> selectOldest(const std::vector<Cand> &cands,
                                     bool check_group) const;
    std::vector<Cand> primaryDomain(unsigned pool) const;
    ExecGroup *freeGroup(isa::UnitClass cls);

    /**
     * Issue the instruction buffered for context slot (w, slot).
     * @param primary row-sharing context, null for primary issues
     * @param row_share issue onto the primary's row
     * @return true on success
     */
    bool issueCand(WarpId w, unsigned slot, bool secondary,
                   PrimaryIssueInfo *primary, bool row_share);

    void issueSecondarySimple(const PrimaryIssueInfo &pinfo);
    std::optional<Cand> pickSecondaryCascaded(
        const PrimaryIssueInfo &pinfo, bool *row_share_out);
    std::optional<Cand> pickSubstitute();

    // --- semantics helpers ---
    void advanceCtx(WarpId w, u32 ctx_id, Pc next);
    void resolveBranch(const Event &ev);
    void resolveExit(const Event &ev);
    void arriveBarrier(WarpId w, u32 ctx_id, LaneMask mask);
    void checkBarrierRelease(int block_slot);
    void retireWarpIfDone(WarpId w);
    void accumulateWarpStats(WarpSlot &ws);
    bool issueMemory(WarpId w, const IBufEntry &e, const CtxView &cv,
                     ExecGroup *group, bool row_share, Cycle when,
                     unsigned *occupancy, LaneMask *issued_mask);

    // --- block management ---
    void launchBlocks();
    void initWarp(WarpId w, int block_slot, unsigned first_tid,
                  unsigned thread_count);

    // ------------------------------------------------------------
    // state
    // ------------------------------------------------------------
    SMConfig cfg_;
    mem::MemoryImage &memory_;
    mem::MemorySystem memsys_;

    isa::Program prog_;
    unsigned grid_blocks_ = 0;
    unsigned block_threads_ = 0;
    unsigned next_cta_ = 0;
    CtaSource cta_source_;
    bool cta_source_dry_ = false;

    std::vector<WarpSlot> warps_;
    std::vector<BlockSlot> blocks_;

    IBuffer ibuf_;
    Scoreboard sb_;
    std::vector<ExecGroup> groups_;
    MaskLookup lookup_;
    Rng rng_;

    std::multimap<Cycle, Event> events_;
    CascadeReg cascade_;
    PrimaryIssueInfo last_primary_; //!< issued this cycle

    Cycle now_ = 0;
    u64 fetch_seq_ = 1;
    std::vector<WarpId> fe_rr_; //!< per-front-end round-robin cursor

    core::SimStats stats_;
    TraceHook trace_;
};

} // namespace siwi::pipeline

#endif // SIWI_PIPELINE_SM_HH
