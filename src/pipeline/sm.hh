/**
 * @file
 * The streaming-multiprocessor cycle-level model.
 *
 * One SM object simulates one kernel grid on one SM, in any of the
 * five pipeline configurations of the paper's evaluation (Figure 7):
 * the Fermi-like stack baseline, the 64-wide thread-frontier
 * reference, SBI, SWI, and SBI+SWI. See docs/DESIGN.md for the pipeline
 * structure and the interpretation notes.
 *
 * The SM is a policy host: it owns warp/block/barrier/event state,
 * the instruction buffer, the scoreboard, the execution groups and
 * the memory pipeline, and implements frontend::FrontEndHost. The
 * per-cycle select/issue decision lives in the frontend layer (a
 * StackFrontEnd or InterweaveFrontEnd built by
 * frontend::makeFrontEnd from the configuration; see
 * src/frontend/front_end.hh).
 */

#ifndef SIWI_PIPELINE_SM_HH
#define SIWI_PIPELINE_SM_HH

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "core/stats.hh"
#include "divergence/reconv_stack.hh"
#include "divergence/split_heap.hh"
#include "exec/warp_state.hh"
#include "frontend/front_end.hh"
#include "isa/program.hh"
#include "mem/memory_image.hh"
#include "mem/memory_system.hh"
#include "pipeline/config.hh"
#include "pipeline/exec_unit.hh"
#include "pipeline/ibuffer.hh"
#include "pipeline/scoreboard.hh"
#include "pipeline/warp_set.hh"

namespace siwi::pipeline {

/** One issue, for pipeline-diagram tracing (Figure 2). */
struct IssueEvent
{
    Cycle cycle;
    WarpId warp;
    Pc pc;
    LaneMask mask;
    /**
     * Execution group name. A view into the group's name storage
     * — stable while the SM lives, but the SM may not outlive
     * the launch call (core::Gpu builds its SMs per launch), so
     * a hook that retains events beyond the launch must copy
     * this field (std::string(e.unit)). It is a view so that
     * tracing never allocates and cannot perturb
     * timing-sensitive debugging runs.
     */
    std::string_view unit;
    bool secondary;      //!< issued by the secondary scheduler
    unsigned occupancy;  //!< group cycles (waves / transactions)
};

/**
 * Cycle-level SM simulator (front-end host).
 */
class SM final : public frontend::FrontEndHost
{
  public:
    /**
     * @param backend chip-shared memory backend; null for a
     *        private DRAM channel (the paper's single-SM setup)
     * @param port this SM's interconnect port on a shared backend
     *        (its SM index); ignored for a private channel
     */
    SM(const SMConfig &cfg, mem::MemoryImage &memory,
       mem::MemoryBackend *backend = nullptr, unsigned port = 0);

    // The front-end keeps a reference to its host SM.
    SM(const SM &) = delete;
    SM &operator=(const SM &) = delete;

    /** Start a grid of @p grid_blocks x @p block_threads threads. */
    void launch(const isa::Program &prog, unsigned grid_blocks,
                unsigned block_threads);

    /**
     * Chip-level CTA scheduler hook: returns the next global CTA
     * id this SM should run, or -1 when the grid is exhausted.
     * When set, the SM stops self-assigning CTAs from the launch
     * grid and instead pulls at most one CTA per cycle from the
     * source (so a fresh chip distributes CTAs round-robin and a
     * retiring SM picks up the next pending CTA).
     */
    using CtaSource = std::function<int()>;
    void setCtaSource(CtaSource src)
    {
        cta_source_ = std::move(src);
    }

    /** All blocks retired? */
    bool done() const;

    /**
     * Advance one cycle.
     *
     * Hot-loop cost is O(runnable warps), not O(num_warps): warps
     * proven unable to act (sleepEligible) are parked off the
     * runnable active list at the end of each cycle and every
     * per-cycle scan — fetch, heap maintenance, the front-end
     * candidate domains — iterates the list, not the warp array.
     * Events, barrier releases and timed heap folds wake their
     * warps back onto it (wakeWarp), so parking is invisible to
     * results; setSleepAudit() re-proves it every cycle.
     *
     * @return true when the cycle made progress: an event fired, a
     *         heap restructured, the front-end issued or mutated
     *         scheduler state, a fetch or CTA launch happened, or
     *         a statistic that counts per-cycle attempts (SYNC
     *         suspensions) moved. A false return means the SM is
     *         fully asleep — re-stepping it changes nothing until
     *         nextWake(), so the caller may jump time there.
     */
    bool step();

    /**
     * Conservative next-event estimate: the earliest cycle at
     * which anything in this SM can change — the next deferred
     * event (writebacks, branch/exit resolutions and their
     * retries), the earliest execution-group release, the next L1
     * fill or backend wake, the next CCT sorter fold of any awake
     * warp, and the earliest sleeping warp's recorded wake bound
     * (min_sleep_wake_, which carries the folds of parked warps).
     * Every other transition (scoreboard, barriers, fetch, CTA
     * launch) happens only as a consequence of one of these, so
     * after a quiet step() the SM provably re-enters the same
     * quiet state on every cycle before the returned bound.
     * no_wake when no timed state is pending (the SM is dead in
     * the water until the cycle limit).
     */
    Cycle nextWake() const;

    /**
     * Jump the SM clock to @p target (>= now()) without stepping,
     * accounting the difference in skippedCycles(). Only valid
     * after a quiet step() and for target <= nextWake(): the SM
     * state is by construction identical to having stepped every
     * intervening cycle.
     */
    void skipTo(Cycle target);

    /**
     * Cycles fast-forwarded by skipTo() so far. Diagnostic only —
     * deliberately not part of SimStats, so skip-enabled and
     * per-cycle runs produce identical statistics blocks.
     */
    u64 skippedCycles() const { return skipped_cycles_; }

    /**
     * Run to completion (or @p max_cycles) and return statistics.
     * @param cycle_skip fast-forward over quiet stretches (see
     *        step()/nextWake()); observationally equivalent to
     *        per-cycle stepping, bit-identical statistics included
     */
    core::SimStats run(Cycle max_cycles = 50'000'000,
                       bool cycle_skip = true);

    Cycle now() const override { return now_; }
    const SMConfig &config() const override { return cfg_; }

    using TraceHook = std::function<void(const IssueEvent &)>;
    void setTraceHook(TraceHook hook) { trace_ = std::move(hook); }

    /** Statistics snapshot (finalized by run()). */
    core::SimStats &stats() override { return stats_; }

    /** The select/issue layer driving this SM. */
    const frontend::FrontEnd &frontEnd() const
    {
        return *frontend_;
    }

    /**
     * Fold warp/cache/unit counters into stats_ and return it.
     * run() calls this; a chip driving step() itself calls it once
     * per SM after the lockstep loop finishes. With a shared
     * backend the chip-level counters (l2_*, dram_*) stay zero
     * here — the chip fills them into its aggregate.
     */
    core::SimStats finalizeStats();

    /** Multi-line dump of warp/context/barrier state (debugging). */
    std::string debugState() const;

    /**
     * Per-warp sleep oracle (test hook): verify that every warp
     * currently parked off the active list provably cannot issue,
     * fetch, bump an observable counter, or self-mutate before its
     * recorded wake bound. Pure — uses only non-counting probes.
     * @return false with a diagnostic in @p why on any violation
     */
    bool auditSleepingWarps(std::string *why) const;

    /**
     * Process-wide audit switch: when on, every step() of every SM
     * runs auditSleepingWarps() before the issue stage and again
     * after fetch, and panics on a violation. Test-only (the
     * integration oracles flip it around full suite runs); the per
     * -step cost is two relaxed atomic loads when off.
     */
    static void setSleepAudit(bool on);

  private:
    // ------------------------------------------------------------
    // internal structures
    // ------------------------------------------------------------
    struct WarpSlot
    {
        bool active = false;
        int block = -1;
        std::unique_ptr<exec::WarpState> state;
        std::unique_ptr<divergence::ReconvStack> stack;
        std::unique_ptr<divergence::SplitHeap> heap;
        bool stack_branch_pending = false;
        bool stack_barrier_blocked = false;
        Cycle last_divergence = ~Cycle(0);

        // --- sleep/wake state (see ARCHITECTURE.md) ---
        /** Parked off the active list: provably unschedulable. */
        bool asleep = false;
        /**
         * Conservative timed wake bound while asleep: the earliest
         * cycle this warp can change state *on its own* (its CCT
         * sorter fold). Every other unblocking — scoreboard
         * release, branch/exit resolution, barrier release — is an
         * event that wakes the warp explicitly, so the bound never
         * needs to cover those.
         */
        Cycle wake_at = ~Cycle(0);
        /** First slept cycle (warp_sleep_cycles accounting). */
        Cycle sleep_since = 0;
    };

    struct BlockSlot
    {
        bool active = false;
        int cta = -1;
        unsigned live_threads = 0;
        unsigned barrier_arrived = 0;
        std::vector<WarpId> warps;
    };

    /** Deferred completion / resolution event. */
    struct Event
    {
        enum class Kind { Writeback, Branch, Exit };
        Kind kind;
        WarpId warp;
        u32 ctx_id = 0;
        int sb_entry = -1;
        isa::Instruction inst;
        LaneMask mask;
        LaneMask taken;
        Pc pc = invalid_pc;
    };

    // ------------------------------------------------------------
    // FrontEndHost interface (the scheduling view of this SM)
    // ------------------------------------------------------------
    unsigned numWarps() const override
    {
        return unsigned(warps_.size());
    }
    frontend::CtxView ctxView(WarpId w,
                              unsigned slot) const override;
    const IBufEntry *entryFor(WarpId w,
                              unsigned slot) const override;
    IBufEntry *entryFor(WarpId w, unsigned slot) override;
    IBufEntry *findCtx(WarpId w, u32 ctx_id) override;
    bool ready(WarpId w, unsigned slot,
               bool check_group) const override;
    ExecGroup *freeGroup(isa::UnitClass cls) override;
    bool issueCand(WarpId w, unsigned slot, bool secondary,
                   frontend::PrimaryIssueInfo *primary,
                   bool row_share) override;
    const frontend::PrimaryIssueInfo &lastPrimary() const override
    {
        return last_primary_;
    }
    void clearLastPrimary() override
    {
        last_primary_ = frontend::PrimaryIssueInfo{};
    }
    const WarpSet &awakeWarps() const override { return awake_; }

    // ------------------------------------------------------------
    // pipeline stages
    // ------------------------------------------------------------
    bool processEvents();
    bool heapMaintenance();
    void fetchStage();

    // --- scheduling helpers ---
    bool syncGated(WarpId w, const IBufEntry &e) const;

    // --- per-warp sleep/wake ---
    /** A buffered entry still backs a live context (fetch victim rule). */
    bool ibufEntryLive(WarpId w, const IBufEntry &e) const;
    /**
     * May warp @p w be parked? True only when no context slot can
     * issue (ignoring execution-group availability, which is
     * shared and timed), no fetch is possible, no SYNC gate would
     * bump the suspension counter, nothing is parked in the
     * cascade register, and the heap has no pending maintenance.
     * Pure: never bumps statistics. On true, *wake_out holds the
     * timed self-change bound (the heap's next sorter fold).
     */
    bool sleepEligible(WarpId w, Cycle *wake_out) const;
    /** Park every provably blocked awake warp (end of step()). */
    void sleepEvaluate();
    /** Wake warps whose timed bound has arrived (start of step()). */
    void timedWakes();
    /** Return @p w to the active list (no-op when awake). */
    void wakeWarp(WarpId w);
    /** Advance the runnable-warp integral to time @p t. */
    void accrueRunnable(Cycle t);
    /** Add @p w to the active list (init / wake paths). */
    void awakeInsert(WarpId w);
    /** Drop @p w from the active list at time @p t (sleep/retire). */
    void awakeErase(WarpId w, Cycle t);

    // --- semantics helpers ---
    void advanceCtx(WarpId w, u32 ctx_id, Pc next);
    void resolveBranch(const Event &ev);
    void resolveExit(const Event &ev);
    void arriveBarrier(WarpId w, u32 ctx_id, LaneMask mask);
    void checkBarrierRelease(int block_slot);
    void retireWarpIfDone(WarpId w);
    void accumulateWarpStats(WarpSlot &ws);
    bool issueMemory(WarpId w, const IBufEntry &e,
                     const frontend::CtxView &cv, ExecGroup *group,
                     bool row_share, Cycle when,
                     unsigned *occupancy, LaneMask *issued_mask);

    // --- block management ---
    void launchBlocks();
    void initWarp(WarpId w, int block_slot, unsigned first_tid,
                  unsigned thread_count);

    // ------------------------------------------------------------
    // state
    // ------------------------------------------------------------
    SMConfig cfg_;
    mem::MemoryImage &memory_;
    mem::MemorySystem memsys_;

    isa::Program prog_;
    unsigned grid_blocks_ = 0;
    unsigned block_threads_ = 0;
    unsigned next_cta_ = 0;
    CtaSource cta_source_;
    bool cta_source_dry_ = false;

    std::vector<WarpSlot> warps_;
    std::vector<BlockSlot> blocks_;

    IBuffer ibuf_;
    Scoreboard sb_;
    std::vector<ExecGroup> groups_;

    std::multimap<Cycle, Event> events_;
    frontend::PrimaryIssueInfo last_primary_; //!< issued this cycle
    std::unique_ptr<frontend::FrontEnd> frontend_;

    Cycle now_ = 0;
    u64 skipped_cycles_ = 0;
    u64 fetch_seq_ = 1;
    std::vector<WarpId> fe_rr_; //!< per-front-end round-robin cursor

    // --- per-warp sleep/wake state ---
    WarpSet awake_;  //!< active, schedulable warps (the hot-loop domain)
    WarpSet asleep_; //!< active warps parked off the active list
    /**
     * Cached min over sleeping warps' wake_at. May go stale-low
     * when an event wakes the minimum holder early; that only
     * costs one no-op timedWakes() scan, never a missed wake.
     */
    Cycle min_sleep_wake_ = ~Cycle(0);
    unsigned awake_count_ = 0;     //!< |awake_|
    u64 runnable_integral_ = 0;    //!< sum of awake_count_ over time
    Cycle runnable_mark_ = 0;      //!< integral accrued up to here

    core::SimStats stats_;
    TraceHook trace_;
};

} // namespace siwi::pipeline

#endif // SIWI_PIPELINE_SM_HH
