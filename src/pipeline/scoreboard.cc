#include "pipeline/scoreboard.hh"

#include "common/log.hh"

namespace siwi::pipeline {

Scoreboard::Scoreboard(unsigned num_warps, unsigned entries_per_warp)
    : entries_per_warp_(entries_per_warp),
      entries_(size_t(num_warps) * entries_per_warp)
{
}

const Scoreboard::Entry &
Scoreboard::entry(WarpId w, unsigned i) const
{
    siwi_assert(i < entries_per_warp_, "bad scoreboard index");
    return entries_[size_t(w) * entries_per_warp_ + i];
}

Scoreboard::Entry &
Scoreboard::entry(WarpId w, unsigned i)
{
    siwi_assert(i < entries_per_warp_, "bad scoreboard index");
    return entries_[size_t(w) * entries_per_warp_ + i];
}

bool
Scoreboard::hasFreeEntry(WarpId w) const
{
    for (unsigned i = 0; i < entries_per_warp_; ++i) {
        if (!entry(w, i).valid)
            return true;
    }
    return false;
}

unsigned
Scoreboard::used(WarpId w) const
{
    unsigned n = 0;
    for (unsigned i = 0; i < entries_per_warp_; ++i)
        n += entry(w, i).valid ? 1 : 0;
    return n;
}

unsigned
Scoreboard::allocate(WarpId w, RegIdx dst, LaneMask mask)
{
    for (unsigned i = 0; i < entries_per_warp_; ++i) {
        Entry &e = entry(w, i);
        if (!e.valid) {
            e.valid = true;
            e.dst = dst;
            e.mask = mask;
            return i;
        }
    }
    panic("scoreboard full on allocate");
}

void
Scoreboard::release(WarpId w, unsigned idx)
{
    Entry &e = entry(w, idx);
    siwi_assert(e.valid, "releasing free scoreboard entry");
    e.valid = false;
}

bool
Scoreboard::conflicts(WarpId w, const isa::Instruction &inst,
                      LaneMask mask) const
{
    for (unsigned i = 0; i < entries_per_warp_; ++i) {
        const Entry &e = entry(w, i);
        if (!e.valid || !e.mask.intersects(mask))
            continue;
        // RAW: a source reads an in-flight destination.
        for (RegIdx src : inst.srcRegs()) {
            if (src == e.dst)
                return true;
        }
        // WAW: double write with undefined completion order.
        if (inst.writesDst() && inst.dst == e.dst)
            return true;
    }
    return false;
}

void
Scoreboard::flushWarp(WarpId w)
{
    for (unsigned i = 0; i < entries_per_warp_; ++i)
        entry(w, i).valid = false;
}

} // namespace siwi::pipeline
