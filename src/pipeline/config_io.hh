/**
 * @file
 * The SMConfig field table: every Table 2 knob and mode switch as
 * data (common/config_reflect.hh), driving JSON read/write, --set
 * style key=value parsing, operator== and the schema dump that
 * docs/CONFIG.md is generated from.
 *
 * Nested members are exposed under flat keys (heap.cct_capacity as
 * "cct_capacity", mem.l1.size_bytes as "l1_size_bytes", ...) so
 * spec files and the CLI address one flat namespace.
 */

#ifndef SIWI_PIPELINE_CONFIG_IO_HH
#define SIWI_PIPELINE_CONFIG_IO_HH

#include <string>

#include "common/config_reflect.hh"
#include "pipeline/config.hh"

namespace siwi::pipeline {

/** Every serializable field of SMConfig, in schema order. */
std::span<const ConfigField<SMConfig>> smConfigFields();

/** Full dump of @p c, one member per table field. */
Json smConfigToJson(const SMConfig &c);

/**
 * Apply JSON object @p j (a full dump or a partial "set" block)
 * onto @p c. Unknown keys, type mismatches and bad enum names are
 * strict errors naming the key; @p c is unchanged on failure.
 */
bool smConfigApplyJson(const Json &j, SMConfig *c,
                       std::string *err);

/** Apply one "key=value" mutation (the --set / Override path). */
bool smConfigApplyKeyValue(std::string_view kv, SMConfig *c,
                           std::string *err);

/** Schema dump (key/type/default/values/doc per field). */
Json smConfigSchema();

} // namespace siwi::pipeline

#endif // SIWI_PIPELINE_CONFIG_IO_HH
