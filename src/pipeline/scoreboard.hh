/**
 * @file
 * Per-warp scoreboard tracking in-flight register writes.
 *
 * This is the "brute-force" design the paper mentions in §3.4: each
 * entry stores the destination register and the execution mask of
 * the in-flight instruction, so dependencies between
 * non-intersecting warp-splits are ignored exactly. The paper's
 * storage-optimized dependency-matrix variant lives in
 * dep_matrix.hh and is validated against this one.
 */

#ifndef SIWI_PIPELINE_SCOREBOARD_HH
#define SIWI_PIPELINE_SCOREBOARD_HH

#include <vector>

#include "common/lane_mask.hh"
#include "isa/instruction.hh"

namespace siwi::pipeline {

/**
 * SM-wide scoreboard, partitioned per warp with a fixed number of
 * entries per warp (6 in Table 2). Instructions that write a
 * register allocate an entry at issue and release it at writeback.
 */
class Scoreboard
{
  public:
    Scoreboard(unsigned num_warps, unsigned entries_per_warp);

    /** Any entry free for warp @p w? */
    bool hasFreeEntry(WarpId w) const;

    /** Entries in use for warp @p w. */
    unsigned used(WarpId w) const;

    /**
     * Allocate an entry for an in-flight write of @p dst by lanes
     * @p mask. @return entry index for release().
     */
    unsigned allocate(WarpId w, RegIdx dst, LaneMask mask);

    /** Writeback: release entry @p idx of warp @p w. */
    void release(WarpId w, unsigned idx);

    /**
     * Would issuing @p inst with execution mask @p mask conflict
     * with any in-flight write (RAW on sources, WAW on the
     * destination)? Lane masks that do not intersect never conflict
     * (warp-splits are independent).
     */
    bool conflicts(WarpId w, const isa::Instruction &inst,
                   LaneMask mask) const;

    /** Drop all entries of a warp (kernel/block boundary). */
    void flushWarp(WarpId w);

  private:
    struct Entry
    {
        bool valid = false;
        RegIdx dst = 0;
        LaneMask mask;
    };

    const Entry &entry(WarpId w, unsigned i) const;
    Entry &entry(WarpId w, unsigned i);

    unsigned entries_per_warp_;
    std::vector<Entry> entries_;
};

} // namespace siwi::pipeline

#endif // SIWI_PIPELINE_SCOREBOARD_HH
