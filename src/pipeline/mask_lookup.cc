#include "pipeline/mask_lookup.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/mask_kernels.hh"

namespace siwi::pipeline {

MaskLookup::MaskLookup(unsigned num_warps, unsigned sets, u64 seed)
    : num_warps_(num_warps), sets_(sets), rng_(seed)
{
    siwi_assert(sets >= 1 && sets <= num_warps,
                "bad lookup set count");
}

bool
MaskLookup::eligible(WarpId prim, WarpId cand) const
{
    return setOf(prim) == setOf(cand);
}

std::optional<size_t>
MaskLookup::pick(WarpId primary_warp, LaneMask free_lanes,
                 const std::vector<LookupCandidate> &cands)
{
    ++searches_;

    // Gather the primary set's candidates into contiguous scratch:
    // the inclusion tests and popcounts then run as flat batched
    // passes instead of branchy per-candidate checks.
    elig_idx_.clear();
    elig_bits_.clear();
    for (size_t i = 0; i < cands.size(); ++i) {
        if (!eligible(primary_warp, cands[i].warp))
            continue;
        elig_idx_.push_back(u32(i));
        elig_bits_.push_back(cands[i].mask.bits());
    }
    examined_ += elig_idx_.size();

    const size_t n = elig_idx_.size();
    elig_cnt_.resize(n);
    maskPopcounts(elig_bits_.data(), n, elig_cnt_.data());

    std::optional<size_t> best;
    unsigned best_count = 0;
    unsigned ties = 0;

    for (size_t base = 0; base < n; base += 64) {
        const size_t chunk = std::min<size_t>(64, n - base);
        const u64 fits_bm = maskInclusionBitmap(
            free_lanes.bits(), elig_bits_.data() + base, chunk);
        for (size_t j = 0; j < chunk; ++j) {
            const LookupCandidate &c = cands[elig_idx_[base + j]];
            bool fits_row = c.same_unit && ((fits_bm >> j) & 1);
            if (!fits_row && !c.other_unit_free)
                continue;
            unsigned count = elig_cnt_[base + j];
            if (!best || count > best_count) {
                best = elig_idx_[base + j];
                best_count = count;
                ties = 1;
            } else if (count == best_count) {
                // Reservoir-style pseudo-random tie-breaking.
                ++ties;
                if (rng_.below(ties) == 0)
                    best = elig_idx_[base + j];
            }
        }
    }
    return best;
}

} // namespace siwi::pipeline
