#include "pipeline/mask_lookup.hh"

#include "common/log.hh"

namespace siwi::pipeline {

MaskLookup::MaskLookup(unsigned num_warps, unsigned sets, u64 seed)
    : num_warps_(num_warps), sets_(sets), rng_(seed)
{
    siwi_assert(sets >= 1 && sets <= num_warps,
                "bad lookup set count");
}

bool
MaskLookup::eligible(WarpId prim, WarpId cand) const
{
    return setOf(prim) == setOf(cand);
}

std::optional<size_t>
MaskLookup::pick(WarpId primary_warp, LaneMask free_lanes,
                 const std::vector<LookupCandidate> &cands)
{
    ++searches_;
    std::optional<size_t> best;
    unsigned best_count = 0;
    unsigned ties = 0;

    for (size_t i = 0; i < cands.size(); ++i) {
        const LookupCandidate &c = cands[i];
        if (!eligible(primary_warp, c.warp))
            continue;
        ++examined_;
        bool fits_row = c.same_unit && c.mask.subsetOf(free_lanes);
        if (!fits_row && !c.other_unit_free)
            continue;
        unsigned count = c.mask.count();
        if (!best || count > best_count) {
            best = i;
            best_count = count;
            ties = 1;
        } else if (count == best_count) {
            // Reservoir-style pseudo-random tie-breaking.
            ++ties;
            if (rng_.below(ties) == 0)
                best = i;
        }
    }
    return best;
}

} // namespace siwi::pipeline
