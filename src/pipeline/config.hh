/**
 * @file
 * SM configuration (the paper's Table 2 plus mode switches).
 */

#ifndef SIWI_PIPELINE_CONFIG_HH
#define SIWI_PIPELINE_CONFIG_HH

#include <string>

#include "divergence/split_heap.hh"
#include "frontend/sched_policy.hh"
#include "mem/memory_system.hh"

namespace siwi::pipeline {

/** The five simulated machines of the evaluation (Figure 7). */
enum class PipelineMode {
    Baseline, //!< 32x32 warps, stack reconvergence (Fermi-like)
    Warp64,   //!< 16x64, thread-frontier heap, sequential splits
    SBI,      //!< 16x64, + dual front-end over CPC1/CPC2
    SWI,      //!< 16x64, + cascaded mask-fit secondary scheduler
    SBISWI,   //!< both techniques combined
};

/** Divergence-tracking substrate. */
enum class ReconvMode { Stack, ThreadFrontier };

/** Static lane-shuffle policies (paper Table 1). */
enum class LaneShufflePolicy {
    Identity,
    MirrorOdd,
    MirrorHalf,
    Xor,
    XorRev,
};

const char *pipelineModeName(PipelineMode m);
const char *laneShuffleName(LaneShufflePolicy p);

/** Full SM parameter set. */
struct SMConfig
{
    PipelineMode mode = PipelineMode::Baseline;

    // --- machine geometry ---
    unsigned warp_width = 32;
    unsigned num_warps = 32;
    unsigned num_pools = 2;   //!< independent scheduler pools
    unsigned mad_groups = 2;  //!< number of MAD SIMD groups
    unsigned mad_width = 32;
    unsigned sfu_width = 8;
    unsigned lsu_width = 32;

    // --- divergence handling ---
    ReconvMode reconv = ReconvMode::Stack;
    bool sbi = false; //!< secondary front-end over CPC2 contexts
    bool swi = false; //!< cascaded mask-fit secondary scheduler
    /** Honor SYNC selective synchronization barriers (paper 3.3). */
    bool sbi_constraints = true;
    /**
     * Let the SBI secondary front-end issue another warp's primary
     * context to a different SIMD group when no secondary warp-split
     * is ready (interpretation note in docs/DESIGN.md).
     */
    bool sbi_secondary_fallback = true;
    /** DWS-style warp-splits on memory address divergence (3.4). */
    bool split_on_memory_divergence = true;
    divergence::SplitHeapConfig heap;

    /**
     * Primary-scheduler candidate ordering (frontend layer). The
     * paper's machines are all oldest-first; the alternatives are
     * an orthogonal sweep axis (siwi-run --policy).
     */
    frontend::SchedPolicyKind sched_policy =
        frontend::SchedPolicyKind::OldestFirst;

    // --- SWI scheduler ---
    LaneShufflePolicy shuffle = LaneShufflePolicy::Identity;
    /**
     * Set count of the mask-inclusion lookup; 1 = fully associative
     * (a CAM), num_warps = direct mapped (Figure 9).
     */
    unsigned lookup_sets = 1;

    // --- timing (Table 2) ---
    unsigned scheduler_latency = 1;  //!< 2 = cascaded secondary
    unsigned delivery_latency = 0;   //!< instruction delivery stage
    unsigned exec_latency = 8;
    unsigned scoreboard_entries = 6; //!< per warp

    // --- memory ---
    mem::MemConfig mem;

    // --- occupancy ---
    unsigned max_blocks_resident = 8;

    /** Threads resident at full occupancy. */
    unsigned maxThreads() const { return warp_width * num_warps; }

    /** True for cascaded-secondary (SWI-style) scheduling. */
    bool cascaded() const { return scheduler_latency >= 2; }

    /** Build the canonical configuration of a pipeline mode. */
    static SMConfig make(PipelineMode mode);

    /** Table 2-style multi-line summary. */
    std::string summary() const;

    /**
     * Check invariants without stopping: returns an empty string
     * when the configuration is consistent, else a diagnostic.
     * The non-fatal path exists for user-supplied configurations
     * (spec files, machine files, --set) which must produce a
     * parse error, not a simulator panic.
     */
    std::string checkInvariants() const;

    /** Sanity-check invariants; panics on nonsense. */
    void validate() const;
};

/**
 * Field-wise equality over the SMConfig field table (see
 * pipeline/config_io.hh); != is derived. Used to deduplicate
 * identical machine columns in sweep expansion.
 */
bool operator==(const SMConfig &a, const SMConfig &b);

} // namespace siwi::pipeline

#endif // SIWI_PIPELINE_CONFIG_HH
