/**
 * @file
 * Instruction buffer: one decoded entry per warp context slot.
 */

#ifndef SIWI_PIPELINE_IBUFFER_HH
#define SIWI_PIPELINE_IBUFFER_HH

#include <vector>

#include "common/lane_mask.hh"
#include "isa/instruction.hh"

namespace siwi::pipeline {

/** One decoded, ready-to-schedule instruction. */
struct IBufEntry
{
    bool valid = false;
    /** Parked in the cascade register; fetch must not overwrite. */
    bool claimed = false;

    u32 ctx_id = 0;      //!< owning warp-split context
    u32 ctx_version = 0; //!< context version at fetch time

    isa::Instruction inst;
    Pc pc = invalid_pc;
    LaneMask mask;
    u64 seq = 0; //!< fetch sequence number (age for oldest-first)
};

/**
 * The SM instruction buffer: per warp, one entry per front-end slot
 * (two in SBI configurations, Figure 3). Entries are tagged with the
 * context id and version; a stale tag means the warp-split has
 * branched, merged or been re-sorted, and the slot must refetch.
 */
class IBuffer
{
  public:
    IBuffer(unsigned num_warps, unsigned slots_per_warp);

    unsigned slotsPerWarp() const { return slots_; }

    IBufEntry &entry(WarpId w, unsigned slot);
    const IBufEntry &entry(WarpId w, unsigned slot) const;

    /** Find a valid entry for context @p ctx_id of warp @p w. */
    IBufEntry *findCtx(WarpId w, u32 ctx_id);
    const IBufEntry *findCtx(WarpId w, u32 ctx_id) const
    {
        return const_cast<IBuffer *>(this)->findCtx(w, ctx_id);
    }

    /** Drop every entry of warp @p w (kernel/block boundary). */
    void flushWarp(WarpId w);

  private:
    unsigned slots_;
    std::vector<IBufEntry> entries_;
};

} // namespace siwi::pipeline

#endif // SIWI_PIPELINE_IBUFFER_HH
