/**
 * @file
 * Static lane-shuffle functions (paper Table 1, section 4).
 *
 * SWI benefits when activity masks of different warps are
 * decorrelated; these bijective thread-to-lane mappings break the
 * correlation of regular per-warp imbalance patterns while keeping
 * threads of a warp together (preserving memory coalescing, which
 * depends on addresses, not lanes).
 */

#ifndef SIWI_PIPELINE_LANE_SHUFFLE_HH
#define SIWI_PIPELINE_LANE_SHUFFLE_HH

#include "pipeline/config.hh"

namespace siwi::pipeline {

/**
 * Physical lane of thread-in-warp @p tid for warp @p wid.
 *
 * @param tid thread position within the warp [0, width)
 * @param wid warp identifier
 * @param width warp width (power of two)
 * @param num_warps warps per SM (for MirrorHalf)
 */
unsigned laneOf(LaneShufflePolicy policy, unsigned tid, unsigned wid,
                unsigned width, unsigned num_warps);

/**
 * Inverse mapping: which thread-in-warp occupies @p lane. All five
 * policies are involutions, so this equals laneOf, but callers
 * should use this name for intent.
 */
unsigned threadOfLane(LaneShufflePolicy policy, unsigned lane,
                      unsigned wid, unsigned width,
                      unsigned num_warps);

} // namespace siwi::pipeline

#endif // SIWI_PIPELINE_LANE_SHUFFLE_HH
