#include "pipeline/dep_matrix.hh"

#include "common/log.hh"

namespace siwi::pipeline {

DepMatrix
DepMatrix::identity()
{
    DepMatrix m;
    for (unsigned i = 0; i < dim; ++i)
        m.set(i, i);
    return m;
}

DepMatrix
DepMatrix::fromMasks(const std::array<LaneMask, dim> &at_t,
                     const std::array<LaneMask, dim> &at_t1)
{
    DepMatrix m;
    for (unsigned i = 0; i < dim; ++i) {
        for (unsigned j = 0; j < dim; ++j) {
            if (at_t[i].intersects(at_t1[j]))
                m.set(i, j);
        }
    }
    return m;
}

bool
DepMatrix::get(unsigned r, unsigned c) const
{
    siwi_assert(r < dim && c < dim, "bad matrix index");
    return (bits_ >> (r * dim + c)) & 1;
}

void
DepMatrix::set(unsigned r, unsigned c)
{
    siwi_assert(r < dim && c < dim, "bad matrix index");
    bits_ |= u16(1) << (r * dim + c);
}

DepMatrix
DepMatrix::multiply(const DepMatrix &rhs) const
{
    DepMatrix out;
    for (unsigned i = 0; i < dim; ++i) {
        for (unsigned j = 0; j < dim; ++j) {
            for (unsigned k = 0; k < dim; ++k) {
                if (get(i, k) && rhs.get(k, j)) {
                    out.set(i, j);
                    break;
                }
            }
        }
    }
    return out;
}

DepMatrixScoreboard::DepMatrixScoreboard(unsigned entries)
    : entries_(entries)
{
}

bool
DepMatrixScoreboard::hasFreeEntry() const
{
    for (const Entry &e : entries_) {
        if (!e.valid)
            return true;
    }
    return false;
}

unsigned
DepMatrixScoreboard::used() const
{
    unsigned n = 0;
    for (const Entry &e : entries_)
        n += e.valid ? 1 : 0;
    return n;
}

unsigned
DepMatrixScoreboard::allocate(RegIdx dst, unsigned slot)
{
    siwi_assert(slot < DepMatrix::dim, "bad issue slot");
    for (unsigned i = 0; i < entries_.size(); ++i) {
        Entry &e = entries_[i];
        if (!e.valid) {
            e.valid = true;
            e.dst = dst;
            e.slot = slot;
            e.matrix = DepMatrix::identity();
            return i;
        }
    }
    panic("dep-matrix scoreboard full on allocate");
}

void
DepMatrixScoreboard::release(unsigned idx)
{
    siwi_assert(idx < entries_.size() && entries_[idx].valid,
                "bad release");
    entries_[idx].valid = false;
}

void
DepMatrixScoreboard::step(
    const std::array<LaneMask, DepMatrix::dim> &at_t,
    const std::array<LaneMask, DepMatrix::dim> &at_t1)
{
    DepMatrix one_step = DepMatrix::fromMasks(at_t, at_t1);
    for (Entry &e : entries_) {
        if (e.valid)
            e.matrix = e.matrix.multiply(one_step);
    }
}

bool
DepMatrixScoreboard::conflicts(const isa::Instruction &inst,
                               unsigned slot) const
{
    siwi_assert(slot < DepMatrix::dim, "bad issue slot");
    for (const Entry &e : entries_) {
        if (!e.valid || !e.matrix.get(e.slot, slot))
            continue;
        for (RegIdx src : inst.srcRegs()) {
            if (src == e.dst)
                return true;
        }
        if (inst.writesDst() && inst.dst == e.dst)
            return true;
    }
    return false;
}

} // namespace siwi::pipeline
