#include "pipeline/exec_unit.hh"

#include "common/bits.hh"
#include "common/log.hh"

namespace siwi::pipeline {

ExecGroup::ExecGroup(std::string name, isa::UnitClass cls,
                     unsigned width)
    : name_(std::move(name)), cls_(cls), width_(width)
{
    siwi_assert(width >= 1, "zero-width exec group");
}

void
ExecGroup::occupy(Cycle now, unsigned cycles, unsigned threads)
{
    siwi_assert(canAccept(now), "group busy at occupy");
    siwi_assert(cycles >= 1, "zero occupancy");
    busy_until_ = now + cycles;
    ++stats_.issues;
    stats_.busy_cycles += cycles;
    stats_.thread_instructions += threads;
}

void
ExecGroup::shareRow(unsigned threads)
{
    ++stats_.issues;
    stats_.thread_instructions += threads;
}

unsigned
ExecGroup::wavesFor(unsigned warp_width) const
{
    return unsigned(divCeil(warp_width, width_));
}

} // namespace siwi::pipeline
