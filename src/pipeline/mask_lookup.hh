/**
 * @file
 * Mask-inclusion lookup for the SWI secondary scheduler (paper §4).
 *
 * The secondary scheduler searches the instruction buffer for a
 * ready instruction whose activity mask fits in the lanes left free
 * by the primary instruction. A CAM would search every entry; the
 * set-associative variant partitions warps into sets indexed by the
 * low-order bits of the primary warp identifier and only searches
 * the primary's set (Figure 9 sweeps the associativity).
 */

#ifndef SIWI_PIPELINE_MASK_LOOKUP_HH
#define SIWI_PIPELINE_MASK_LOOKUP_HH

#include <optional>
#include <vector>

#include "common/lane_mask.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace siwi::pipeline {

/** One instruction-buffer entry visible to the secondary scheduler. */
struct LookupCandidate
{
    u32 key = 0;     //!< caller-defined identifier
    WarpId warp = 0; //!< owning warp (for set filtering)
    LaneMask mask;   //!< activity mask
    /** True when the entry may share the primary's SIMD row. */
    bool same_unit = false;
    /** True when the entry could issue to another free unit group. */
    bool other_unit_free = false;
};

/**
 * Set-associative mask-inclusion lookup with best-fit selection.
 */
class MaskLookup
{
  public:
    /**
     * @param num_warps warps per pool
     * @param sets set count; 1 = fully associative CAM
     * @param seed pseudo-random tie-breaking seed
     */
    MaskLookup(unsigned num_warps, unsigned sets, u64 seed = 1);

    unsigned sets() const { return sets_; }

    /** Set index of a warp (low-order bits of the identifier). */
    unsigned setOf(WarpId w) const { return w % sets_; }

    /** May the secondary consider @p cand for primary @p prim? */
    bool eligible(WarpId prim, WarpId cand) const;

    /**
     * Best-fit selection: among candidates in the primary's set that
     * either fit in @p free_lanes on the same unit or can use a free
     * other unit, pick the one maximizing occupancy (mask
     * population), breaking ties pseudo-randomly (section 4,
     * "scheduler conflict avoidance").
     *
     * Internally the set filter gathers the eligible masks into a
     * contiguous scratch array and runs the inclusion tests as one
     * batched, branch-free pass (common/mask_kernels.hh); the
     * selection walk, the examined-entry count, and the RNG
     * tie-break sequence are identical to testing one candidate at
     * a time.
     *
     * @return index into @p cands, or nullopt.
     */
    std::optional<size_t> pick(WarpId primary_warp,
                               LaneMask free_lanes,
                               const std::vector<LookupCandidate>
                                   &cands);

    u64 searchesPerformed() const { return searches_; }
    u64 entriesExamined() const { return examined_; }

  private:
    unsigned num_warps_;
    unsigned sets_;
    Rng rng_;
    u64 searches_ = 0;
    u64 examined_ = 0;

    // Gather scratch reused across pick() calls (no per-cycle
    // allocation once warmed up).
    std::vector<u32> elig_idx_;
    std::vector<u64> elig_bits_;
    std::vector<u8> elig_cnt_;
};

} // namespace siwi::pipeline

#endif // SIWI_PIPELINE_MASK_LOOKUP_HH
