/**
 * @file
 * Dependency-matrix scoreboard (paper §3.4, Figure 6).
 *
 * Instead of storing the execution mask of every in-flight
 * instruction, the paper tracks, per scoreboard entry, a 3x3 boolean
 * matrix D(t-k, t): D[i][j] is set when some thread that executed in
 * slot i (I1 = primary, I2 = secondary, I3 = all inactive heap
 * entries) at issue cycle t-k is now in slot j. Dependencies are the
 * register-ID match ANDed with the matrix bit; matrices are updated
 * each scheduling cycle by a boolean product with the one-step
 * matrix D(t, t+1) derived from the warp-split masks.
 *
 * The approximation is conservative: tracking thread movement
 * through the aggregated I3 slot can only add dependencies, never
 * lose one. The property test in tests/pipeline/dep_matrix_test.cc
 * checks this against the exact-mask Scoreboard.
 */

#ifndef SIWI_PIPELINE_DEP_MATRIX_HH
#define SIWI_PIPELINE_DEP_MATRIX_HH

#include <array>
#include <vector>

#include "common/lane_mask.hh"
#include "isa/instruction.hh"

namespace siwi::pipeline {

/** 3x3 boolean matrix packed into a u16. */
class DepMatrix
{
  public:
    static constexpr unsigned dim = 3;

    /** Zero matrix. */
    constexpr DepMatrix() : bits_(0) {}

    /** Identity matrix (threads stay in their slots). */
    static DepMatrix identity();

    /**
     * One-step matrix from the slot masks at cycle t to the masks at
     * cycle t+1: D[i][j] = (at_t[i] & at_t1[j]) != 0.
     */
    static DepMatrix fromMasks(const std::array<LaneMask, dim> &at_t,
                               const std::array<LaneMask, dim> &at_t1);

    bool get(unsigned r, unsigned c) const;
    void set(unsigned r, unsigned c);

    /** Boolean matrix product: this * rhs. */
    DepMatrix multiply(const DepMatrix &rhs) const;

    bool operator==(const DepMatrix &) const = default;

    u16 raw() const { return bits_; }

  private:
    u16 bits_;
};

/**
 * Per-warp scoreboard built on dependency matrices.
 *
 * Entries store (dst register, issue slot, matrix); each scheduling
 * step multiplies every live matrix by the one-step matrix. Slot
 * indices: 0 = primary warp-split, 1 = secondary, 2 = I3 (all other
 * contexts).
 */
class DepMatrixScoreboard
{
  public:
    explicit DepMatrixScoreboard(unsigned entries);

    bool hasFreeEntry() const;
    unsigned used() const;

    /** Record an issue from @p slot writing @p dst. */
    unsigned allocate(RegIdx dst, unsigned slot);

    void release(unsigned idx);

    /**
     * Advance one scheduling step: current slot masks @p at_t became
     * @p at_t1; all live matrices are multiplied by the one-step
     * matrix.
     */
    void step(const std::array<LaneMask, DepMatrix::dim> &at_t,
              const std::array<LaneMask, DepMatrix::dim> &at_t1);

    /**
     * Does an instruction now in @p slot reading @p srcs / writing
     * @p dst depend on any in-flight entry?
     */
    bool conflicts(const isa::Instruction &inst, unsigned slot) const;

  private:
    struct Entry
    {
        bool valid = false;
        RegIdx dst = 0;
        unsigned slot = 0;
        DepMatrix matrix;
    };

    std::vector<Entry> entries_;
};

} // namespace siwi::pipeline

#endif // SIWI_PIPELINE_DEP_MATRIX_HH
