#include "pipeline/ibuffer.hh"

#include "common/log.hh"

namespace siwi::pipeline {

IBuffer::IBuffer(unsigned num_warps, unsigned slots_per_warp)
    : slots_(slots_per_warp),
      entries_(size_t(num_warps) * slots_per_warp)
{
}

IBufEntry &
IBuffer::entry(WarpId w, unsigned slot)
{
    siwi_assert(slot < slots_, "bad ibuffer slot");
    return entries_[size_t(w) * slots_ + slot];
}

const IBufEntry &
IBuffer::entry(WarpId w, unsigned slot) const
{
    siwi_assert(slot < slots_, "bad ibuffer slot");
    return entries_[size_t(w) * slots_ + slot];
}

IBufEntry *
IBuffer::findCtx(WarpId w, u32 ctx_id)
{
    for (unsigned s = 0; s < slots_; ++s) {
        IBufEntry &e = entry(w, s);
        if (e.valid && e.ctx_id == ctx_id)
            return &e;
    }
    return nullptr;
}

void
IBuffer::flushWarp(WarpId w)
{
    for (unsigned s = 0; s < slots_; ++s)
        entry(w, s) = IBufEntry{};
}

} // namespace siwi::pipeline
