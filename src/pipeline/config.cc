#include "pipeline/config.hh"

#include <sstream>

#include "common/bits.hh"
#include "common/log.hh"

namespace siwi::pipeline {

const char *
pipelineModeName(PipelineMode m)
{
    switch (m) {
      case PipelineMode::Baseline: return "Baseline";
      case PipelineMode::Warp64: return "Warp64";
      case PipelineMode::SBI: return "SBI";
      case PipelineMode::SWI: return "SWI";
      case PipelineMode::SBISWI: return "SBI+SWI";
    }
    return "?";
}

const char *
laneShuffleName(LaneShufflePolicy p)
{
    switch (p) {
      case LaneShufflePolicy::Identity: return "Identity";
      case LaneShufflePolicy::MirrorOdd: return "MirrorOdd";
      case LaneShufflePolicy::MirrorHalf: return "MirrorHalf";
      case LaneShufflePolicy::Xor: return "Xor";
      case LaneShufflePolicy::XorRev: return "XorRev";
    }
    return "?";
}

SMConfig
SMConfig::make(PipelineMode mode)
{
    SMConfig c;
    c.mode = mode;
    switch (mode) {
      case PipelineMode::Baseline:
        // Figure 1: two 32-wide pools, stack reconvergence.
        c.warp_width = 32;
        c.num_warps = 32;
        c.num_pools = 2;
        c.mad_groups = 2;
        c.mad_width = 32;
        c.reconv = ReconvMode::Stack;
        c.scheduler_latency = 1;
        c.delivery_latency = 0;
        c.split_on_memory_divergence = false; // stack cannot split
        break;
      case PipelineMode::Warp64:
        c.warp_width = 64;
        c.num_warps = 16;
        c.num_pools = 2;
        c.mad_groups = 1;
        c.mad_width = 64;
        c.reconv = ReconvMode::ThreadFrontier;
        c.scheduler_latency = 1;
        c.delivery_latency = 1;
        break;
      case PipelineMode::SBI:
        c.warp_width = 64;
        c.num_warps = 16;
        c.num_pools = 1;
        c.mad_groups = 1;
        c.mad_width = 64;
        c.reconv = ReconvMode::ThreadFrontier;
        c.sbi = true;
        c.scheduler_latency = 1;
        c.delivery_latency = 1;
        break;
      case PipelineMode::SWI:
        c.warp_width = 64;
        c.num_warps = 16;
        c.num_pools = 1;
        c.mad_groups = 1;
        c.mad_width = 64;
        c.reconv = ReconvMode::ThreadFrontier;
        c.swi = true;
        c.scheduler_latency = 2;
        c.delivery_latency = 1;
        c.shuffle = LaneShufflePolicy::XorRev;
        break;
      case PipelineMode::SBISWI:
        c.warp_width = 64;
        c.num_warps = 16;
        c.num_pools = 1;
        c.mad_groups = 1;
        c.mad_width = 64;
        c.reconv = ReconvMode::ThreadFrontier;
        c.sbi = true;
        c.swi = true;
        c.scheduler_latency = 2;
        c.delivery_latency = 1;
        c.shuffle = LaneShufflePolicy::XorRev;
        break;
    }
    c.validate();
    return c;
}

std::string
SMConfig::checkInvariants() const
{
    if (warp_width < 1 || warp_width > max_warp_width)
        return "warp_width out of range (1..64)";
    if (!isPow2(warp_width))
        return "warp_width must be a power of two";
    if (num_warps < 1)
        return "need at least one warp";
    if (num_pools != 1 && num_pools != 2)
        return "num_pools must be 1 or 2";
    if (num_warps % num_pools != 0)
        return "warps must split evenly across pools";
    if (mad_groups < 1)
        return "need at least one MAD group";
    if (mad_width < 1 || sfu_width < 1 || lsu_width < 1)
        return "unit widths must be at least 1";
    if (warp_width % sfu_width != 0 ||
        warp_width % std::min(lsu_width, warp_width) != 0)
        return "unit widths must divide warp_width";
    if (sbi && reconv == ReconvMode::Stack)
        return "sbi requires thread-frontier reconvergence";
    if (split_on_memory_divergence && reconv == ReconvMode::Stack)
        return "memory splits require thread-frontier "
               "reconvergence";
    if (swi && !cascaded())
        return "swi requires cascaded scheduling "
               "(scheduler_latency >= 2)";
    if (lookup_sets < 1 || lookup_sets > num_warps)
        return "lookup_sets out of range (1..num_warps)";
    if (scoreboard_entries < 1)
        return "scoreboard_entries must be at least 1";
    if (heap.cct_capacity < 1)
        return "cct_capacity must be at least 1";
    if (mem.mshrs < 1)
        return "mshrs must be at least 1";
    if (mem.l1.block_bytes < 1 || !isPow2(mem.l1.block_bytes))
        return "l1_block_bytes must be a power of two";
    // Mirror the L1Cache constructor asserts: whole sets only
    // (division first, so no u32 product can wrap).
    u32 l1_blocks = mem.l1.size_bytes / mem.l1.block_bytes;
    if (mem.l1.ways < 1 || l1_blocks < mem.l1.ways ||
        l1_blocks % mem.l1.ways != 0)
        return "l1_size_bytes must be a whole number of sets "
               "(a multiple of l1_ways * l1_block_bytes)";
    if (mem.dram.bytes_per_cycle_x10 < 1)
        return "dram_bytes_per_cycle_x10 must be at least 1";
    return {};
}

void
SMConfig::validate() const
{
    std::string err = checkInvariants();
    siwi_assert(err.empty(), err);
}

std::string
SMConfig::summary() const
{
    std::ostringstream os;
    os << "mode:               " << pipelineModeName(mode) << "\n"
       << "warps x width:      " << num_warps << " x " << warp_width
       << "\n"
       << "scheduler pools:    " << num_pools << "\n"
       << "reconvergence:      "
       << (reconv == ReconvMode::Stack ? "stack" : "thread frontier")
       << "\n"
       << "scheduler latency:  " << scheduler_latency << " cycle(s)\n"
       << "delivery latency:   " << delivery_latency << " cycle(s)\n"
       << "execution latency:  " << exec_latency << " cycles\n"
       << "scoreboard:         " << scoreboard_entries
       << " entries/warp\n"
       << "exec units:         " << mad_groups << "x MAD(x"
       << mad_width << "), SFU(x" << sfu_width << "), LSU(x"
       << lsu_width << ")\n"
       << "L1 cache:           " << mem.l1.size_bytes / 1024 << "K, "
       << mem.l1.ways << "-way, " << mem.l1.block_bytes
       << "B blocks, " << mem.l1.hit_latency << " cycles\n"
       << "memory:             "
       << double(mem.dram.bytes_per_cycle_x10) / 10.0
       << " B/cycle, " << mem.dram.latency_cycles << " cycles\n"
       << "sched policy:       "
       << frontend::schedPolicyName(sched_policy) << "\n"
       << "SBI:                " << (sbi ? "on" : "off")
       << (sbi && sbi_constraints ? " (constraints)" : "") << "\n"
       << "SWI:                " << (swi ? "on" : "off")
       << ", lookup sets " << lookup_sets << "\n"
       << "lane shuffle:       " << laneShuffleName(shuffle) << "\n"
       << "memory splits:      "
       << (split_on_memory_divergence ? "on" : "off") << "\n";
    return os.str();
}

} // namespace siwi::pipeline
