#include "pipeline/lane_shuffle.hh"

#include "common/bits.hh"
#include "common/log.hh"

namespace siwi::pipeline {

unsigned
laneOf(LaneShufflePolicy policy, unsigned tid, unsigned wid,
       unsigned width, unsigned num_warps)
{
    siwi_assert(tid < width && isPow2(width), "bad laneOf input");
    switch (policy) {
      case LaneShufflePolicy::Identity:
        return tid;
      case LaneShufflePolicy::MirrorOdd:
        return (wid & 1) ? width - 1 - tid : tid;
      case LaneShufflePolicy::MirrorHalf:
        return (wid >= num_warps / 2) ? width - 1 - tid : tid;
      case LaneShufflePolicy::Xor:
        return tid ^ (wid & (width - 1));
      case LaneShufflePolicy::XorRev:
        return tid ^ unsigned(bitReverse(wid, log2Ceil(width)) &
                              (width - 1));
    }
    panic("bad shuffle policy");
}

unsigned
threadOfLane(LaneShufflePolicy policy, unsigned lane, unsigned wid,
             unsigned width, unsigned num_warps)
{
    // Every policy is an involution: mirror and xor-with-constant
    // are self-inverse.
    return laneOf(policy, lane, wid, width, num_warps);
}

} // namespace siwi::pipeline
