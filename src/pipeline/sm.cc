#include "pipeline/sm.hh"

#include <algorithm>
#include <atomic>

#include "common/bits.hh"
#include "common/log.hh"
#include "exec/functional.hh"
#include "mem/coalescer.hh"
#include "pipeline/lane_shuffle.hh"

namespace siwi::pipeline {

using frontend::CtxView;
using frontend::PrimaryIssueInfo;
using isa::Instruction;
using isa::Opcode;
using isa::UnitClass;

namespace {

/** Execution-group class an opcode is routed to (CTRL -> MAD). */
UnitClass
effectiveClass(UnitClass cls)
{
    return cls == UnitClass::CTRL ? UnitClass::MAD : cls;
}

/** Process-wide sleep-oracle switch (test hook, see sm.hh). */
std::atomic<bool> sleep_audit{false};

} // namespace

void
SM::setSleepAudit(bool on)
{
    sleep_audit.store(on, std::memory_order_relaxed);
}

SM::SM(const SMConfig &cfg, mem::MemoryImage &memory,
       mem::MemoryBackend *backend, unsigned port)
    : cfg_(cfg),
      memory_(memory),
      memsys_(backend ? mem::MemorySystem(cfg.mem, *backend, port)
                      : mem::MemorySystem(cfg.mem)),
      warps_(cfg.num_warps),
      blocks_(cfg.max_blocks_resident),
      ibuf_(cfg.num_warps, 2),
      sb_(cfg.num_warps, cfg.scoreboard_entries),
      fe_rr_(2, 0),
      awake_(cfg.num_warps),
      asleep_(cfg.num_warps)
{
    cfg_.validate();
    for (unsigned g = 0; g < cfg_.mad_groups; ++g) {
        groups_.emplace_back("MAD" + std::to_string(g),
                             UnitClass::MAD, cfg_.mad_width);
    }
    groups_.emplace_back("SFU", UnitClass::SFU, cfg_.sfu_width);
    groups_.emplace_back("LSU", UnitClass::LSU, cfg_.lsu_width);

    for (WarpSlot &ws : warps_)
        ws.state = std::make_unique<exec::WarpState>(cfg_.warp_width);

    frontend_ = frontend::makeFrontEnd(*this);
}

void
SM::launch(const isa::Program &prog, unsigned grid_blocks,
           unsigned block_threads)
{
    siwi_assert(!prog.empty(), "launching empty program");
    siwi_assert(grid_blocks >= 1 && block_threads >= 1,
                "empty grid");
    siwi_assert(block_threads <= cfg_.maxThreads(),
                "block larger than the SM");
    siwi_assert(prog.regsUsed() <= num_arch_regs,
                "program uses too many registers");

    prog_ = prog;
    grid_blocks_ = grid_blocks;
    block_threads_ = block_threads;
    next_cta_ = 0;
    launchBlocks();
}

bool
SM::done() const
{
    if (cta_source_) {
        if (!cta_source_dry_)
            return false;
    } else if (next_cta_ < grid_blocks_) {
        return false;
    }
    for (const BlockSlot &b : blocks_) {
        if (b.active)
            return false;
    }
    return true;
}

core::SimStats
SM::run(Cycle max_cycles, bool cycle_skip)
{
    while (!done()) {
        if (now_ >= max_cycles) {
            warn("SM cycle limit hit at ", now_);
            stats_.timed_out = true;
            break;
        }
        bool progress = step();
        if (cycle_skip && !progress) {
            // Everything is stalled: jump straight to the next
            // event. Clamping to max_cycles keeps the timeout path
            // (and its cycles counter) identical to per-cycle
            // stepping; the wake can equal now_ (an event due this
            // very cycle), in which case there is nothing to skip.
            Cycle wake = std::min(nextWake(), max_cycles);
            if (wake > now_)
                skipTo(wake);
        }
    }
    finalizeStats();
    return stats_;
}

bool
SM::step()
{
    bool progress = false;

    // Under a chip CTA scheduler, poll for work every cycle: slots
    // may be free while other SMs still drain the grid. Taking a
    // CTA — or discovering the grid just ran dry, which flips
    // done() — is progress.
    if (cta_source_ && !cta_source_dry_) {
        u64 blocks_before = stats_.blocks_launched;
        launchBlocks();
        progress |= stats_.blocks_launched != blocks_before ||
                    cta_source_dry_;
    }

    // Fill retirement is batch-equivalent under time jumps (no
    // query can observe a fill before the next load, which only
    // happens on an issue), so it does not count as progress.
    memsys_.tick(now_);

    // Timed wakes first: a warp whose self-change bound (CCT fold)
    // is due must be back on the active list before maintenance
    // and issue see this cycle. Waking itself is not progress —
    // the woken warp's actions are what count.
    if (min_sleep_wake_ <= now_)
        timedWakes();

    progress |= processEvents();
    progress |= heapMaintenance();

    if (sleep_audit.load(std::memory_order_relaxed)) {
        std::string why;
        if (!auditSleepingWarps(&why))
            panic("sleep audit (pre-issue): ", why, "\n",
                  debugState());
    }

    // The front-end reports issues and scheduler-state mutations
    // itself; SYNC-suspension attempts are statistics bumped per
    // ready() probe, so a cycle that moved the counter must not be
    // skipped over or the counts would diverge from per-cycle
    // stepping.
    u64 sync_before = stats_.sync_suspensions;
    progress |= frontend_->issueCycle();
    progress |= stats_.sync_suspensions != sync_before;

    u64 fetches_before = stats_.fetches;
    fetchStage();
    progress |= stats_.fetches != fetches_before;

    if (sleep_audit.load(std::memory_order_relaxed)) {
        std::string why;
        if (!auditSleepingWarps(&why))
            panic("sleep audit (post-fetch): ", why, "\n",
                  debugState());
    }

    // Park every warp that provably cannot act next cycle. Takes
    // effect at now_ + 1: the warp was fully schedulable this
    // cycle, so parking is not an observable state change.
    sleepEvaluate();

    ++now_;
    return progress;
}

Cycle
SM::nextWake() const
{
    Cycle wake = no_wake;
    if (!events_.empty())
        wake = std::min(wake, events_.begin()->first);
    for (const ExecGroup &g : groups_) {
        // canAccept(c) is c >= busyUntil(), so a group that was
        // busy during the just-stepped cycle (busyUntil == now_)
        // frees exactly at the next cycle: >= here, not >.
        if (g.busyUntil() >= now_)
            wake = std::min(wake, g.busyUntil());
    }
    wake = std::min(wake, memsys_.nextWake(now_));
    // Awake warps contribute their heap's next sorter fold;
    // sleeping warps contribute the same bound via the cached
    // min_sleep_wake_ (their wake_at is exactly that fold time).
    awake_.forEach([&](WarpId w) {
        const WarpSlot &ws = warps_[w];
        if (ws.heap)
            wake = std::min(wake, ws.heap->nextWake());
    });
    wake = std::min(wake, min_sleep_wake_);
    return wake;
}

void
SM::skipTo(Cycle target)
{
    siwi_assert(target >= now_, "skipTo into the past");
    skipped_cycles_ += target - now_;
    now_ = target;
}

// ----------------------------------------------------------------
// per-warp sleep/wake
// ----------------------------------------------------------------

void
SM::accrueRunnable(Cycle t)
{
    // Integral of the awake-warp count over time. Transition
    // points are identical whether intervening quiet cycles were
    // stepped or jumped, so the serialized counters derived from
    // it stay bit-identical across skip modes.
    runnable_integral_ += u64(awake_count_) * (t - runnable_mark_);
    runnable_mark_ = t;
}

void
SM::awakeInsert(WarpId w)
{
    if (awake_.contains(w))
        return;
    accrueRunnable(now_);
    awake_.insert(w);
    ++awake_count_;
}

void
SM::awakeErase(WarpId w, Cycle t)
{
    if (!awake_.contains(w))
        return;
    accrueRunnable(t);
    awake_.erase(w);
    --awake_count_;
}

void
SM::wakeWarp(WarpId w)
{
    WarpSlot &ws = warps_[w];
    if (!ws.asleep)
        return;
    ws.asleep = false;
    ws.wake_at = no_wake;
    stats_.warp_sleep_cycles += now_ - ws.sleep_since;
    asleep_.erase(w);
    awakeInsert(w);
}

void
SM::timedWakes()
{
    // Scan only when the cached bound is due; wake every due warp
    // and recompute the bound over the remainder. The sleeping set
    // is scanned, not the full warp array.
    Cycle next = no_wake;
    asleep_.forEach([&](WarpId w) {
        WarpSlot &ws = warps_[w];
        if (ws.wake_at <= now_)
            wakeWarp(w); // erases w from asleep_ (safe mid-scan)
        else
            next = std::min(next, ws.wake_at);
    });
    min_sleep_wake_ = next;
}

bool
SM::sleepEligible(WarpId w, Cycle *wake_out) const
{
    const WarpSlot &ws = warps_[w];
    if (!ws.active)
        return false;

    // A cascade-parked entry is re-probed (claimed toggled off and
    // back on) by the front-end every cycle: never park its warp.
    for (unsigned s = 0; s < ibuf_.slotsPerWarp(); ++s) {
        const IBufEntry &e = ibuf_.entry(w, s);
        if (e.valid && e.claimed)
            return false;
    }

    // Pending heap maintenance (an unsettled restructure pass)
    // can move hot slots next cycle; only a quiescent heap has a
    // well-defined timed self-change bound.
    if (ws.heap && !ws.heap->quiescent())
        return false;

    for (unsigned slot = 0; slot < 2; ++slot) {
        CtxView cv = ctxView(w, slot);
        if (!cv.valid)
            continue; // blocked ctx: unblocks only via events
        const IBufEntry *e = ibuf_.findCtx(w, cv.id);
        bool fresh = e && e->ctx_version == cv.version;
        if (!fresh) {
            // The slot wants a fetch. A stale same-context entry
            // is reused in place, and a dead entry is a victim:
            // either way the fetch stage could act on this warp.
            if (e)
                return false;
            for (unsigned s = 0; s < ibuf_.slotsPerWarp(); ++s) {
                if (!ibufEntryLive(w, ibuf_.entry(w, s)))
                    return false;
            }
            // Buffer full of live entries: a victim can only
            // appear through this warp's own issues or events.
            continue;
        }
        // Fresh entry: mirror ready() without the counting probe.
        // A SYNC-gated entry bumps sync_suspensions every cycle
        // the warp is scanned, so its warp must stay awake.
        if (syncGated(w, *e))
            return false;
        if (e->inst.writesDst() && !sb_.hasFreeEntry(w))
            continue; // unblocks via a Writeback event
        if (sb_.conflicts(w, e->inst, e->mask))
            continue; // unblocks via a Writeback event
        // Issuable (execution-group availability deliberately
        // ignored: groups are shared, timed resources, so a
        // group-stalled warp stays on the active list).
        return false;
    }

    *wake_out = ws.heap ? ws.heap->nextWake() : no_wake;
    return true;
}

void
SM::sleepEvaluate()
{
    awake_.forEach([&](WarpId w) {
        Cycle wake = no_wake;
        if (!sleepEligible(w, &wake))
            return;
        WarpSlot &ws = warps_[w];
        ws.asleep = true;
        ws.wake_at = wake;
        ws.sleep_since = now_ + 1;
        awakeErase(w, now_ + 1); // parked from the next cycle on
        asleep_.insert(w);
        min_sleep_wake_ = std::min(min_sleep_wake_, wake);
    });
}

bool
SM::auditSleepingWarps(std::string *why) const
{
    bool ok = true;
    asleep_.forEach([&](WarpId w) {
        if (!ok)
            return;
        const WarpSlot &ws = warps_[w];
        auto fail = [&](const char *what) {
            ok = false;
            if (why) {
                *why = "warp " + std::to_string(w) + " at cycle " +
                       std::to_string(now_) + ": " + what;
            }
        };
        if (!ws.active || !ws.asleep || awake_.contains(w)) {
            fail("sleeping-set / slot state mismatch");
            return;
        }
        if (ws.wake_at <= now_) {
            fail("timed wake bound passed while asleep");
            return;
        }
        Cycle wake = no_wake;
        if (!sleepEligible(w, &wake)) {
            fail("slept warp is schedulable (could issue, fetch, "
                 "probe a SYNC gate, or restructure its heap)");
            return;
        }
        if (wake < ws.wake_at)
            fail("recorded wake bound later than the heap's fold");
    });
    return ok;
}

// ----------------------------------------------------------------
// block / warp management
// ----------------------------------------------------------------

void
SM::launchBlocks()
{
    unsigned warps_per_block =
        unsigned(divCeil(block_threads_, cfg_.warp_width));

    for (;;) {
        if (cta_source_ ? cta_source_dry_
                        : next_cta_ >= grid_blocks_)
            return;

        // Find a free block slot.
        int bslot = -1;
        for (unsigned i = 0; i < blocks_.size(); ++i) {
            if (!blocks_[i].active) {
                bslot = int(i);
                break;
            }
        }
        if (bslot < 0)
            return;

        // Find enough free warp slots.
        std::vector<WarpId> free_warps;
        for (WarpId w = 0; w < warps_.size(); ++w) {
            if (!warps_[w].active)
                free_warps.push_back(w);
            if (free_warps.size() == warps_per_block)
                break;
        }
        if (free_warps.size() < warps_per_block)
            return;

        // Pick the CTA: self-assigned from the launch grid, or
        // pulled from the chip scheduler.
        int cta;
        if (cta_source_) {
            cta = cta_source_();
            if (cta < 0) {
                cta_source_dry_ = true;
                return;
            }
        } else {
            cta = int(next_cta_);
        }

        BlockSlot &blk = blocks_[unsigned(bslot)];
        blk.active = true;
        blk.cta = cta;
        blk.live_threads = block_threads_;
        blk.barrier_arrived = 0;
        blk.warps = free_warps;

        for (unsigned i = 0; i < warps_per_block; ++i) {
            unsigned first = i * cfg_.warp_width;
            unsigned count = std::min(cfg_.warp_width,
                                      block_threads_ - first);
            initWarp(free_warps[i], bslot, first, count);
        }
        stats_.blocks_launched += 1;
        stats_.threads_launched += block_threads_;
        ++next_cta_;

        // Chip mode admits one CTA per cycle (GigaThread-style
        // dispatch), which is what makes the initial distribution
        // round-robin across SMs.
        if (cta_source_)
            return;
    }
}

void
SM::initWarp(WarpId w, int block_slot, unsigned first_tid,
             unsigned thread_count)
{
    WarpSlot &ws = warps_[w];
    ws.active = true;
    ws.block = block_slot;
    ws.stack_branch_pending = false;
    ws.stack_barrier_blocked = false;
    ws.last_divergence = ~Cycle(0);
    ws.asleep = false;
    ws.wake_at = no_wake;
    awakeInsert(w);
    ws.state->clear();

    const BlockSlot &blk = blocks_[unsigned(block_slot)];
    LaneMask mask;
    for (unsigned t = 0; t < thread_count; ++t) {
        unsigned lane = laneOf(cfg_.shuffle, t, w, cfg_.warp_width,
                               cfg_.num_warps);
        exec::ThreadInfo &ti = ws.state->info(lane);
        ti.valid = true;
        ti.tid = i32(first_tid + t);
        ti.ntid = i32(block_threads_);
        ti.ctaid = blk.cta;
        ti.nctaid = i32(grid_blocks_);
        ti.gtid = i32(u32(blk.cta) * block_threads_ + first_tid + t);
        ti.lane = i32(lane);
        ti.wid = i32(w);
        mask.set(lane);
    }

    if (cfg_.reconv == ReconvMode::Stack) {
        ws.stack =
            std::make_unique<divergence::ReconvStack>(mask, Pc(0));
        ws.heap.reset();
    } else {
        ws.heap = std::make_unique<divergence::SplitHeap>(
            cfg_.heap, mask, Pc(0));
        ws.stack.reset();
    }
    ibuf_.flushWarp(w);
    sb_.flushWarp(w);
}

void
SM::accumulateWarpStats(WarpSlot &ws)
{
    if (ws.stack) {
        stats_.max_stack_depth =
            std::max(stats_.max_stack_depth, ws.stack->maxDepth());
        stats_.merges += ws.stack->reconvergences();
    }
    if (ws.heap) {
        const auto &hs = ws.heap->stats();
        stats_.warp_splits += hs.splits;
        stats_.merges += hs.merges;
        stats_.promotions += hs.promotions;
        stats_.max_live_contexts = std::max(
            stats_.max_live_contexts, hs.max_live_contexts);
        stats_.cct_degraded_inserts +=
            ws.heap->cctStats().degraded_inserts;
    }
}

void
SM::retireWarpIfDone(WarpId w)
{
    WarpSlot &ws = warps_[w];
    if (!ws.active)
        return;
    bool finished = ws.stack ? ws.stack->done() : ws.heap->done();
    if (!finished)
        return;

    accumulateWarpStats(ws);
    ws.active = false;
    // The exit event that finished the warp woke it, so it retires
    // from the awake set; wakeWarp guards the defensive case.
    wakeWarp(w);
    awakeErase(w, now_);
    ibuf_.flushWarp(w);

    BlockSlot &blk = blocks_[unsigned(ws.block)];
    bool block_done = true;
    for (WarpId bw : blk.warps) {
        if (warps_[bw].active)
            block_done = false;
    }
    if (block_done) {
        blk.active = false;
        blk.warps.clear();
        launchBlocks();
    }
}

// ----------------------------------------------------------------
// context views (FrontEndHost)
// ----------------------------------------------------------------

CtxView
SM::ctxView(WarpId w, unsigned slot) const
{
    CtxView cv;
    const WarpSlot &ws = warps_[w];
    if (!ws.active)
        return cv;

    if (ws.stack) {
        if (slot != 0 || ws.stack->done() ||
            ws.stack_branch_pending || ws.stack_barrier_blocked) {
            return cv;
        }
        cv.valid = true;
        cv.id = 0;
        cv.pc = ws.stack->pc();
        cv.mask = ws.stack->mask();
        cv.version = ws.stack->version();
        return cv;
    }

    // Heap: slot 1 is only schedulable with the SBI second front-end.
    if (slot >= divergence::SplitHeap::num_hot)
        return cv;
    if (slot == 1 && !cfg_.sbi)
        return cv;
    u32 id = ws.heap->hotId(slot);
    if (id == divergence::no_ctx)
        return cv;
    const divergence::SplitContext &c = ws.heap->ctx(id);
    if (!c.valid || c.branch_pending || c.barrier_blocked)
        return cv;
    cv.valid = true;
    cv.id = id;
    cv.pc = c.pc;
    cv.mask = c.mask;
    cv.version = c.version;
    return cv;
}

const IBufEntry *
SM::entryFor(WarpId w, unsigned slot) const
{
    return const_cast<SM *>(this)->entryFor(w, slot);
}

IBufEntry *
SM::entryFor(WarpId w, unsigned slot)
{
    CtxView cv = ctxView(w, slot);
    if (!cv.valid)
        return nullptr;
    IBufEntry *e = ibuf_.findCtx(w, cv.id);
    if (!e || e->ctx_version != cv.version)
        return nullptr;
    return e;
}

IBufEntry *
SM::findCtx(WarpId w, u32 ctx_id)
{
    return ibuf_.findCtx(w, ctx_id);
}

bool
SM::syncGated(WarpId w, const IBufEntry &e) const
{
    if (e.inst.op != Opcode::SYNC || !cfg_.sbi_constraints)
        return false;
    if (cfg_.reconv != ReconvMode::ThreadFrontier)
        return false;
    if (e.inst.div == invalid_pc)
        return false;
    // Selective synchronization barrier (paper 3.3): the warp-split
    // at PCrec is suspended while CPC1 lies in [PCdiv, PCrec).
    Pc cpc1 = warps_[w].heap->cpc1();
    return cpc1 >= e.inst.div && cpc1 < e.pc;
}

bool
SM::ready(WarpId w, unsigned slot, bool check_group) const
{
    const IBufEntry *e = entryFor(w, slot);
    if (!e || e->claimed)
        return false;
    if (syncGated(w, *e)) {
        // Count suspension attempts (statistics only).
        const_cast<SM *>(this)->stats_.sync_suspensions += 1;
        return false;
    }
    if (e->inst.writesDst() && !sb_.hasFreeEntry(w))
        return false;
    if (sb_.conflicts(w, e->inst, e->mask))
        return false;
    if (check_group) {
        UnitClass cls = effectiveClass(e->inst.unit());
        for (const ExecGroup &g : groups_) {
            if (g.unitClass() == cls && g.canAccept(now_))
                return true;
        }
        return false;
    }
    return true;
}

ExecGroup *
SM::freeGroup(UnitClass cls)
{
    cls = effectiveClass(cls);
    for (ExecGroup &g : groups_) {
        if (g.unitClass() == cls && g.canAccept(now_))
            return &g;
    }
    return nullptr;
}

// ----------------------------------------------------------------
// issue (FrontEndHost)
// ----------------------------------------------------------------

void
SM::advanceCtx(WarpId w, u32 ctx_id, Pc next)
{
    WarpSlot &ws = warps_[w];
    if (ws.stack)
        ws.stack->advance(next);
    else
        ws.heap->advance(ctx_id, next, now_);
}

bool
SM::issueMemory(WarpId w, const IBufEntry &e, const CtxView &cv,
                ExecGroup *group, bool row_share, Cycle when,
                unsigned *occupancy, LaneMask *issued_mask)
{
    siwi_assert(!row_share, "memory ops never share a row");
    WarpSlot &ws = warps_[w];
    const Instruction &inst = e.inst;

    auto reqs = exec::memAddresses(inst, *ws.state, cv.mask);
    std::vector<mem::LaneAccess> accesses;
    accesses.reserve(reqs.size());
    for (const auto &r : reqs)
        accesses.push_back({r.lane, r.addr});
    auto txns = mem::coalesce(accesses, cfg_.mem.l1.block_bytes);
    siwi_assert(!txns.empty(), "memory op with no transactions");

    Cycle base = when + cfg_.delivery_latency;

    bool do_split = cfg_.split_on_memory_divergence && ws.heap &&
                    txns.size() > 1 && ws.heap->canSplit() &&
                    ws.last_divergence != now_;

    if (do_split) {
        // Serve the first transaction; its lanes advance as a new
        // warp-split, the remaining lanes replay the instruction
        // (section 2 replay + section 3.4 memory divergence).
        const mem::Transaction &t = txns[0];
        exec::executeMem(inst, *ws.state, t.lanes, memory_);
        if (inst.op == Opcode::LD) {
            Cycle data = memsys_.load(base, t.block);
            unsigned idx = sb_.allocate(w, inst.dst, t.lanes);
            Event ev;
            ev.kind = Event::Kind::Writeback;
            ev.warp = w;
            ev.sb_entry = int(idx);
            events_.insert({data, ev});
        } else {
            memsys_.store(base, t.block, t.lanes.count() * 4);
        }
        ws.heap->memorySplit(cv.id, t.lanes, e.pc + 1, now_);
        ws.last_divergence = now_;
        stats_.memory_splits += 1;
        *occupancy = 1;
        // Only the first transaction's lanes execute this issue;
        // the rest replay as their own issues later.
        *issued_mask = t.lanes;
        return true;
    }

    // Replay all transactions back-to-back through the single L1
    // port; the LSU stays occupied one cycle per transaction.
    exec::executeMem(inst, *ws.state, cv.mask, memory_);
    Cycle last_data = 0;
    for (size_t i = 0; i < txns.size(); ++i) {
        Cycle t_when = base + Cycle(i);
        if (inst.op == Opcode::LD) {
            last_data =
                std::max(last_data, memsys_.load(t_when,
                                                 txns[i].block));
        } else {
            memsys_.store(t_when, txns[i].block,
                          txns[i].lanes.count() * 4);
        }
    }
    if (inst.op == Opcode::LD) {
        unsigned idx = sb_.allocate(w, inst.dst, cv.mask);
        Event ev;
        ev.kind = Event::Kind::Writeback;
        ev.warp = w;
        ev.sb_entry = int(idx);
        events_.insert({last_data, ev});
    }
    advanceCtx(w, cv.id, e.pc + 1);
    *occupancy = unsigned(txns.size());
    *issued_mask = cv.mask;
    (void)group;
    return true;
}

bool
SM::issueCand(WarpId w, unsigned slot, bool secondary,
              PrimaryIssueInfo *primary, bool row_share)
{
    IBufEntry *ep = entryFor(w, slot);
    siwi_assert(ep != nullptr, "issuing stale entry");
    IBufEntry &e = *ep;
    WarpSlot &ws = warps_[w];
    CtxView cv = ctxView(w, slot);

    const Instruction inst = e.inst;
    UnitClass cls = effectiveClass(inst.unit());

    ExecGroup *group;
    if (row_share) {
        siwi_assert(primary && primary->valid, "row share w/o primary");
        group = primary->group;
    } else {
        group = freeGroup(cls);
        if (!group)
            return false;
    }

    unsigned occupancy = group->wavesFor(cfg_.warp_width);
    Cycle when = now_;
    LaneMask issued_mask = cv.mask;

    switch (inst.op) {
      case Opcode::LD:
      case Opcode::ST:
        if (!issueMemory(w, e, cv, group, row_share, when,
                         &occupancy, &issued_mask)) {
            return false;
        }
        break;

      case Opcode::BRA:
      case Opcode::BNZ:
      case Opcode::BZ: {
        LaneMask taken = exec::evalBranch(inst, *ws.state, cv.mask);
        if (ws.stack)
            ws.stack_branch_pending = true;
        else
            ws.heap->ctxMut(cv.id).branch_pending = true;
        Event ev;
        ev.kind = Event::Kind::Branch;
        ev.warp = w;
        ev.ctx_id = cv.id;
        ev.inst = inst;
        ev.mask = cv.mask;
        ev.taken = taken;
        ev.pc = e.pc;
        events_.insert(
            {when + cfg_.delivery_latency + cfg_.exec_latency, ev});
        break;
      }

      case Opcode::EXIT: {
        if (ws.stack)
            ws.stack_branch_pending = true;
        else
            ws.heap->ctxMut(cv.id).branch_pending = true;
        Event ev;
        ev.kind = Event::Kind::Exit;
        ev.warp = w;
        ev.ctx_id = cv.id;
        ev.mask = cv.mask;
        events_.insert(
            {when + cfg_.delivery_latency + cfg_.exec_latency, ev});
        break;
      }

      case Opcode::BAR:
        arriveBarrier(w, cv.id, cv.mask);
        break;

      case Opcode::SYNC:
      case Opcode::NOP:
        advanceCtx(w, cv.id, e.pc + 1);
        break;

      default: {
        // ALU / SFU
        exec::executeAlu(inst, *ws.state, cv.mask);
        advanceCtx(w, cv.id, e.pc + 1);
        if (inst.writesDst()) {
            unsigned idx = sb_.allocate(w, inst.dst, cv.mask);
            Event ev;
            ev.kind = Event::Kind::Writeback;
            ev.warp = w;
            ev.sb_entry = int(idx);
            events_.insert({when + cfg_.delivery_latency +
                                cfg_.exec_latency + (occupancy - 1),
                            ev});
        }
        break;
      }
    }

    // Unit occupancy and statistics.
    unsigned threads = issued_mask.count();
    if (row_share) {
        group->shareRow(threads);
        stats_.row_share_issues += 1;
    } else {
        group->occupy(when, occupancy, threads);
    }
    stats_.instructions += 1;
    stats_.thread_instructions += threads;
    if (secondary)
        stats_.secondary_issues += 1;
    else
        stats_.primary_issues += 1;

    if (!secondary) {
        last_primary_.valid = true;
        last_primary_.w = w;
        last_primary_.ctx_id = cv.id;
        last_primary_.group = group;
        last_primary_.mask = issued_mask;
        last_primary_.unit = cls;
    }

    if (trace_) {
        IssueEvent tev;
        tev.cycle = when;
        tev.warp = w;
        tev.pc = e.pc;
        tev.mask = issued_mask;
        tev.unit = group->name();
        tev.secondary = secondary;
        tev.occupancy = row_share ? 0 : occupancy;
        trace_(tev);
    }

    e.valid = false;
    e.claimed = false;
    return true;
}

// ----------------------------------------------------------------
// events
// ----------------------------------------------------------------

bool
SM::processEvents()
{
    bool fired = false;
    while (!events_.empty() && events_.begin()->first <= now_) {
        Event ev = events_.begin()->second;
        events_.erase(events_.begin());
        fired = true;
        // Every event can unblock its warp (scoreboard release,
        // branch/exit resolution mutate schedulability), so the
        // warp rejoins the active list before the event applies.
        wakeWarp(ev.warp);
        switch (ev.kind) {
          case Event::Kind::Writeback:
            sb_.release(ev.warp, unsigned(ev.sb_entry));
            break;
          case Event::Kind::Branch:
            resolveBranch(ev);
            break;
          case Event::Kind::Exit:
            resolveExit(ev);
            break;
        }
    }
    return fired;
}

void
SM::resolveBranch(const Event &ev)
{
    WarpSlot &ws = warps_[ev.warp];
    LaneMask taken = ev.taken;
    LaneMask fall = ev.mask & ~taken;
    bool divergent = taken.any() && fall.any();

    if (divergent && ws.heap) {
        // One divergence (branch or memory) per warp per cycle, and
        // the heap must have room for the new warp-split.
        if (ws.last_divergence == now_ || !ws.heap->canSplit()) {
            if (!ws.heap->canSplit())
                stats_.heap_full_stalls += 1;
            Event retry = ev;
            events_.insert({now_ + 1, retry});
            return;
        }
    }

    if (ws.stack) {
        ws.stack_branch_pending = false;
        bool d = ws.stack->branch(ev.inst.target, ev.pc + 1,
                                  ev.inst.reconv, taken);
        if (d)
            stats_.branch_divergences += 1;
    } else {
        if (taken.none()) {
            ws.heap->branchResolve(ev.ctx_id, ev.pc + 1, fall, 0,
                                   LaneMask{}, now_);
        } else if (fall.none()) {
            ws.heap->branchResolve(ev.ctx_id, ev.inst.target, taken,
                                   0, LaneMask{}, now_);
        } else {
            ws.heap->branchResolve(ev.ctx_id, ev.inst.target, taken,
                                   ev.pc + 1, fall, now_);
            stats_.branch_divergences += 1;
            ws.last_divergence = now_;
        }
    }
}

void
SM::resolveExit(const Event &ev)
{
    WarpSlot &ws = warps_[ev.warp];
    if (ws.stack) {
        ws.stack_branch_pending = false;
        ws.stack->exitThreads(ev.mask);
    } else {
        ws.heap->exitResolve(ev.ctx_id, now_);
    }

    BlockSlot &blk = blocks_[unsigned(ws.block)];
    siwi_assert(blk.live_threads >= ev.mask.count(),
                "exit underflow");
    blk.live_threads -= ev.mask.count();
    checkBarrierRelease(ws.block);
    retireWarpIfDone(ev.warp);
}

void
SM::arriveBarrier(WarpId w, u32 ctx_id, LaneMask mask)
{
    WarpSlot &ws = warps_[w];
    if (ws.stack)
        ws.stack_barrier_blocked = true;
    else
        ws.heap->ctxMut(ctx_id).barrier_blocked = true;

    BlockSlot &blk = blocks_[unsigned(ws.block)];
    blk.barrier_arrived += mask.count();
    checkBarrierRelease(ws.block);
}

void
SM::checkBarrierRelease(int block_slot)
{
    BlockSlot &blk = blocks_[unsigned(block_slot)];
    if (blk.barrier_arrived == 0 ||
        blk.barrier_arrived < blk.live_threads) {
        return;
    }
    for (WarpId w : blk.warps) {
        WarpSlot &ws = warps_[w];
        if (!ws.active)
            continue;
        if (ws.stack) {
            if (ws.stack_barrier_blocked) {
                ws.stack_barrier_blocked = false;
                ws.stack->advance(ws.stack->pc() + 1);
            }
        } else {
            ws.heap->barrierRelease(now_);
        }
        // Released warps become schedulable mid-cycle; any stage
        // that runs after this (secondary pick, fetch) must see
        // them, exactly as the full scans did.
        wakeWarp(w);
    }
    blk.barrier_arrived = 0;
    stats_.barrier_releases += 1;
}

// ----------------------------------------------------------------
// heap upkeep + fetch
// ----------------------------------------------------------------

bool
SM::heapMaintenance()
{
    // Only awake warps can have pending heap work: sleeping
    // requires a quiescent heap, every mutation wakes the owning
    // warp, and a due sorter fold is a timed wake processed before
    // this stage runs.
    bool changed = false;
    awake_.forEach([&](WarpId w) {
        WarpSlot &ws = warps_[w];
        if (ws.heap)
            changed |= ws.heap->tick(now_);
    });
    return changed;
}

bool
SM::ibufEntryLive(WarpId w, const IBufEntry &e) const
{
    // An entry is live while it matches a current context (by
    // id and version) or is parked in the cascade register.
    if (!e.valid)
        return false;
    if (e.claimed)
        return true;
    for (unsigned s = 0; s < 2; ++s) {
        CtxView cv = ctxView(w, s);
        if (cv.valid && cv.id == e.ctx_id)
            return cv.version == e.ctx_version;
    }
    return false;
}

void
SM::fetchStage()
{
    unsigned nw = unsigned(warps_.size());

    // Fetch for context slot (w, ctx_slot) if it needs it; true
    // when a fetch happened (at most one per front-end per cycle).
    auto tryFetch = [&](unsigned fe, WarpId w, unsigned ctx_slot) {
        CtxView cv = ctxView(w, ctx_slot);
        if (!cv.valid)
            return false;
        IBufEntry *have = ibuf_.findCtx(w, cv.id);
        if (have &&
            (have->claimed || have->ctx_version == cv.version))
            return false; // already buffered (possibly claimed)
        // Pick a victim slot: reuse this context's stale entry,
        // else any dead slot.
        IBufEntry *target = have;
        if (!target) {
            for (unsigned s = 0; s < ibuf_.slotsPerWarp(); ++s) {
                IBufEntry &e = ibuf_.entry(w, s);
                if (!ibufEntryLive(w, e)) {
                    target = &e;
                    break;
                }
            }
        }
        if (!target)
            return false; // buffer full of live work
        siwi_assert(cv.pc < prog_.size(), "fetch past program");
        target->valid = true;
        target->claimed = false;
        target->ctx_id = cv.id;
        target->ctx_version = cv.version;
        target->inst = prog_.at(cv.pc);
        target->pc = cv.pc;
        target->mask = cv.mask;
        target->seq = fetch_seq_++;
        stats_.fetches += 1;
        fe_rr_[fe] = WarpId((w + 1) % nw);
        return true;
    };

    // Cyclic scan over the active list only: a sleeping warp is by
    // definition non-fetchable (sleepEligible mirrors tryFetch),
    // so skipping it visits the same successful candidate the full
    // warp scan would, in the same round-robin order.
    for (unsigned fe = 0; fe < 2; ++fe) {
        bool fetched;
        if (cfg_.num_pools == 2) {
            fetched = awake_.forEachWrapped(fe_rr_[fe], [&](WarpId w) {
                if ((w % 2) != fe)
                    return false;
                return tryFetch(fe, w, 0);
            });
        } else {
            unsigned ctx_slot = (cfg_.sbi && fe == 1) ? 1 : 0;
            fetched = awake_.forEachWrapped(fe_rr_[fe], [&](WarpId w) {
                return tryFetch(fe, w, ctx_slot);
            });
        }
        if (!fetched && cfg_.num_pools == 1 && cfg_.sbi &&
            fe == 1 && cfg_.sbi_secondary_fallback) {
            // Secondary front-end helps fetch primary contexts when
            // it has nothing of its own to do.
            awake_.forEachWrapped(fe_rr_[fe], [&](WarpId w) {
                return tryFetch(fe, w, 0);
            });
        }
    }
}

std::string
SM::debugState() const
{
    std::ostringstream os;
    os << "cycle " << now_ << ", events " << events_.size() << "\n";
    for (unsigned bi = 0; bi < blocks_.size(); ++bi) {
        const BlockSlot &blk = blocks_[bi];
        if (!blk.active)
            continue;
        os << "block " << bi << " cta=" << blk.cta << " live="
           << blk.live_threads << " arrived="
           << blk.barrier_arrived << "\n";
    }
    for (WarpId w = 0; w < warps_.size(); ++w) {
        const WarpSlot &ws = warps_[w];
        if (!ws.active)
            continue;
        os << " warp " << w << ":";
        if (ws.asleep)
            os << " asleep(wake=" << ws.wake_at << ")";
        if (ws.stack) {
            os << " stack depth=" << ws.stack->depth();
            if (!ws.stack->done()) {
                os << " pc=" << ws.stack->pc() << " mask="
                   << ws.stack->mask().count();
            }
            os << (ws.stack_branch_pending ? " PEND" : "")
               << (ws.stack_barrier_blocked ? " BAR" : "");
        } else {
            for (unsigned s = 0; s < divergence::SplitHeap::num_hot;
                 ++s) {
                u32 id = ws.heap->hotId(s);
                if (id == divergence::no_ctx) {
                    os << " hot" << s << "=-";
                    continue;
                }
                const auto &c = ws.heap->ctx(id);
                os << " hot" << s << "={pc=" << c.pc << " n="
                   << c.mask.count()
                   << (c.branch_pending ? " PEND" : "")
                   << (c.barrier_blocked ? " BAR" : "") << "}";
            }
            os << " live=" << ws.heap->liveContexts();
        }
        os << "\n";
    }
    return os.str();
}

core::SimStats
SM::finalizeStats()
{
    stats_.cycles = now_;
    for (WarpSlot &ws : warps_) {
        if (ws.active)
            accumulateWarpStats(ws);
    }
    // Close out sleep/runnable accounting at the final cycle (a
    // timed-out run can end with warps still parked). Both folds
    // are idempotent: the marks advance to now_.
    asleep_.forEach([&](WarpId w) {
        WarpSlot &ws = warps_[w];
        stats_.warp_sleep_cycles += now_ - ws.sleep_since;
        ws.sleep_since = now_;
    });
    accrueRunnable(now_);
    stats_.runnable_warp_cycles = runnable_integral_;
    stats_.avg_runnable_warps_x10 =
        now_ ? (10 * runnable_integral_) / now_ : 0;
    stats_.l1_hits = memsys_.cacheStats().hits;
    stats_.l1_misses = memsys_.cacheStats().misses;
    stats_.l1_evictions = memsys_.cacheStats().evictions;
    stats_.load_transactions = memsys_.stats().load_transactions;
    stats_.store_transactions = memsys_.stats().store_transactions;
    stats_.write_forwards = memsys_.stats().write_forwards;
    stats_.mshr_merges = memsys_.stats().mshr_merges;
    stats_.mshr_stalls = memsys_.stats().mshr_stalls;
    if (memsys_.ownsBackend()) {
        // Private channel: the backend traffic is this SM's.
        // Shared backends are chip-level; the chip reports them
        // once in its aggregate instead of once per SM.
        stats_.dram_transactions = memsys_.dramStats().transactions;
        stats_.dram_bytes = memsys_.dramStats().bytes;
    }

    stats_.units.clear();
    for (const ExecGroup &g : groups_) {
        core::UnitStats us;
        us.name = g.name();
        us.issues = g.stats().issues;
        us.busy_cycles = g.stats().busy_cycles;
        us.thread_instructions = g.stats().thread_instructions;
        stats_.units.push_back(us);
    }
    return stats_;
}

} // namespace siwi::pipeline
