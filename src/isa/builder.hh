/**
 * @file
 * KernelBuilder: a fluent, structured-control API for authoring
 * kernels in the SIMT ISA.
 *
 * Workloads build their kernels through this class; the result is a
 * raw Program that cfg::compileKernel post-processes (layout + SYNC
 * insertion + branch reconvergence annotation).
 */

#ifndef SIWI_ISA_BUILDER_HH
#define SIWI_ISA_BUILDER_HH

#include <string>
#include <vector>

#include "isa/program.hh"

namespace siwi::isa {

/** Strongly-typed register handle handed out by KernelBuilder. */
struct Reg
{
    RegIdx idx = 0;
};

/** Strongly-typed immediate operand (avoids int->Reg confusion). */
struct Imm
{
    i32 v = 0;
    constexpr explicit Imm(i32 value) : v(value) {}
};

/** Handle to a (possibly not yet bound) code label. */
struct Label
{
    u32 id = 0;
};

/**
 * Fluent kernel authoring interface.
 *
 * Supports both structured control flow (if_/else_/endIf,
 * loop/endLoopIf, with break/continue) and raw labels + branches for
 * unstructured code such as the TMD kernels. Structured constructs
 * are validated for proper nesting at build() time.
 */
class KernelBuilder
{
  public:
    explicit KernelBuilder(std::string name);

    /** Allocate a fresh register. */
    Reg reg();

    /** Number of registers allocated so far. */
    unsigned regsAllocated() const { return next_reg_; }

    // --- moves / special registers ---
    Pc nop();
    Pc mov(Reg d, Reg a);
    Pc movi(Reg d, i32 imm);
    Pc s2r(Reg d, SpecialReg sr);

    // --- integer ALU ---
    Pc iadd(Reg d, Reg a, Reg b);
    Pc iadd(Reg d, Reg a, Imm b);
    Pc isub(Reg d, Reg a, Reg b);
    Pc isub(Reg d, Reg a, Imm b);
    Pc imul(Reg d, Reg a, Reg b);
    Pc imul(Reg d, Reg a, Imm b);
    Pc imad(Reg d, Reg a, Reg b, Reg c);
    Pc imin(Reg d, Reg a, Reg b);
    Pc imax(Reg d, Reg a, Reg b);
    Pc iabs(Reg d, Reg a);
    Pc and_(Reg d, Reg a, Reg b);
    Pc and_(Reg d, Reg a, Imm b);
    Pc or_(Reg d, Reg a, Reg b);
    Pc or_(Reg d, Reg a, Imm b);
    Pc xor_(Reg d, Reg a, Reg b);
    Pc xor_(Reg d, Reg a, Imm b);
    Pc not_(Reg d, Reg a);
    Pc shl(Reg d, Reg a, Imm b);
    Pc shl(Reg d, Reg a, Reg b);
    Pc shr(Reg d, Reg a, Imm b);
    Pc sra(Reg d, Reg a, Imm b);

    // --- integer compares (result: 0 / 1) ---
    Pc isetlt(Reg d, Reg a, Reg b);
    Pc isetlt(Reg d, Reg a, Imm b);
    Pc isetle(Reg d, Reg a, Reg b);
    Pc isetle(Reg d, Reg a, Imm b);
    Pc iseteq(Reg d, Reg a, Reg b);
    Pc iseteq(Reg d, Reg a, Imm b);
    Pc isetne(Reg d, Reg a, Reg b);
    Pc isetne(Reg d, Reg a, Imm b);
    Pc isetge(Reg d, Reg a, Reg b);
    Pc isetge(Reg d, Reg a, Imm b);
    Pc isetgt(Reg d, Reg a, Reg b);
    Pc isetgt(Reg d, Reg a, Imm b);
    Pc sel(Reg d, Reg cond, Reg t, Reg f);

    // --- float ALU ---
    Pc fadd(Reg d, Reg a, Reg b);
    Pc fsub(Reg d, Reg a, Reg b);
    Pc fmul(Reg d, Reg a, Reg b);
    Pc fmad(Reg d, Reg a, Reg b, Reg c);
    Pc fmin(Reg d, Reg a, Reg b);
    Pc fmax(Reg d, Reg a, Reg b);
    Pc fabs_(Reg d, Reg a);
    Pc fneg(Reg d, Reg a);
    Pc fsetlt(Reg d, Reg a, Reg b);
    Pc fsetle(Reg d, Reg a, Reg b);
    Pc fseteq(Reg d, Reg a, Reg b);
    Pc fsetgt(Reg d, Reg a, Reg b);
    Pc fsetge(Reg d, Reg a, Reg b);
    Pc i2f(Reg d, Reg a);
    Pc f2i(Reg d, Reg a);
    /** Load a float constant (bit pattern as immediate). */
    Pc fmovi(Reg d, float value);

    // --- SFU ---
    Pc rcp(Reg d, Reg a);
    Pc rsq(Reg d, Reg a);
    Pc sqrt_(Reg d, Reg a);
    Pc sin_(Reg d, Reg a);
    Pc cos_(Reg d, Reg a);
    Pc exp2_(Reg d, Reg a);
    Pc log2_(Reg d, Reg a);

    // --- memory ---
    Pc ld(Reg d, Reg addr, i32 offset = 0);
    Pc st(Reg addr, i32 offset, Reg value);

    // --- barriers / termination ---
    Pc bar();
    Pc exit_();

    // --- raw labels & branches (unstructured control flow) ---
    Label label();
    void bind(Label l);
    Pc bra(Label l);
    Pc bnz(Reg cond, Label l);
    Pc bz(Reg cond, Label l);

    // --- structured control flow ---
    /** Open a block executed when @p cond != 0. */
    void if_(Reg cond);
    /** Open a block executed when @p cond == 0. */
    void ifz(Reg cond);
    void else_();
    void endIf();

    /** Open a do { } while loop; body starts here. */
    void loop();
    /** Close loop: repeat while @p cond != 0. */
    void endLoopIf(Reg cond);
    /** Close loop: repeat while @p cond == 0. */
    void endLoopIfz(Reg cond);
    /** Branch past endLoopIf when @p cond != 0. */
    void breakIf(Reg cond);
    /** Branch past endLoopIf when @p cond == 0. */
    void breakIfz(Reg cond);
    /** Branch back to loop start when @p cond != 0. */
    void continueIf(Reg cond);

    /** Current emission PC (next instruction's address). */
    Pc here() const { return prog_.size(); }

    /**
     * Finalize: patch all label references, append a terminal EXIT if
     * the program does not end with one, and validate.
     */
    Program build();

  private:
    struct LabelInfo
    {
        Pc bound = invalid_pc;
        std::vector<Pc> uses; //!< instructions whose target awaits this
    };

    enum class FrameKind { If, IfElse, Loop };

    struct Frame
    {
        FrameKind kind;
        Label a; //!< If: else/end label. Loop: start label.
        Label b; //!< If: end label.     Loop: break/end label.
    };

    Pc emit(const Instruction &inst);
    Pc emit2(Opcode op, Reg d, Reg a, Reg b);
    Pc emit2i(Opcode op, Reg d, Reg a, i32 imm);
    Pc emit1(Opcode op, Reg d, Reg a);
    Pc branchTo(Opcode op, Reg cond, Label l);

    Program prog_;
    std::vector<LabelInfo> labels_;
    std::vector<Frame> frames_;
    unsigned next_reg_ = 0;
    bool built_ = false;
};

} // namespace siwi::isa

#endif // SIWI_ISA_BUILDER_HH
